// Coverage map: waveform-level BER over a range x angle grid.
//
// The paper's evaluation sweeps one axis at a time (range in Fig. 7,
// angle in Fig. 5). A deployment planner wants the product: for every
// (range, bearing) cell around the reader, does the link close, at what
// tier, and what BER does the sample-level modem actually measure there?
// That grid is 42 independent Monte-Carlo simulations — exactly the
// workload the parallel sweep engine shards across cores. Each cell gets
// its own deterministic RNG stream (seed = hash(base_seed, cell index)),
// so the map is bit-identical no matter how many threads build it.
//
// Flags: --threads N (worker threads), --seed S (Monte-Carlo base seed).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/channel/environment.hpp"
#include "src/core/tag.hpp"
#include "src/phy/rate_table.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/reader/reader.hpp"
#include "src/sim/link_sim.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/sweep.hpp"
#include "src/sim/table.hpp"

namespace {

struct Cell {
  double snr_db = 0.0;
  double rate_bps = 0.0;
  mmtag::sim::BerMeasurement ber;
  bool usable = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mmtag;

  int threads = 0;  // 0 = MMTAG_THREADS / hardware concurrency.
  std::uint64_t base_seed = 2024;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      base_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
  }

  const channel::Environment env;
  const phy::RateTable rates = phy::RateTable::mmtag_standard();
  const core::MmTag tag = core::MmTag::prototype_at(core::Pose{{0, 0}, 0.0});

  const std::vector<double> feet = sim::linspace(2.0, 12.0, 6);
  const std::vector<double> degrees = sim::linspace(-60.0, 60.0, 7);

  sim::MonteCarloLink::Params params;
  params.min_bits = 2'000;
  params.block_bits = 500;
  params.target_bit_errors = 50;
  params.max_bits = 8'000;
  const sim::MonteCarloLink link_sim{params};

  sim::ThreadPool pool(threads);
  sim::SweepStats stats;
  const std::size_t cells = feet.size() * degrees.size();
  const auto grid = sim::parallel_monte_carlo(
      pool, cells, base_seed,
      [&](std::mt19937_64& rng, std::size_t index) {
        const double d = phys::feet_to_m(feet[index / degrees.size()]);
        const double bearing =
            phys::deg_to_rad(degrees[index % degrees.size()]);
        // Reader on a circle around the tag, horn facing back at it.
        const auto reader = reader::MmWaveReader::prototype_at(core::Pose{
            {d * std::cos(bearing), d * std::sin(bearing)},
            bearing + phys::kPi});
        const auto link = reader.evaluate_link(tag, env, rates);

        Cell cell;
        cell.rate_bps = link.achievable_rate_bps;
        const auto tier = rates.best_tier(link.received_power_dbm);
        if (!tier) return cell;  // Below the slowest tier: dead cell.
        cell.usable = true;
        cell.snr_db = link.received_power_dbm -
                      rates.noise().power_dbm(tier->bandwidth_hz);
        cell.ber = link_sim.measure_ber(cell.snr_db, rng);
        return cell;
      },
      &stats);
  std::uint64_t total_bits = 0;
  for (const Cell& cell : grid) total_bits += cell.ber.bits_sent;
  stats.units = total_bits;

  std::vector<std::string> headers = {"range_ft"};
  for (const double deg : degrees) {
    headers.push_back(sim::Table::fmt(deg, 0) + "deg");
  }
  sim::Table ber_map(headers);
  sim::Table rate_map(headers);
  for (std::size_t r = 0; r < feet.size(); ++r) {
    std::vector<std::string> ber_row = {sim::Table::fmt(feet[r], 0)};
    std::vector<std::string> rate_row = {sim::Table::fmt(feet[r], 0)};
    for (std::size_t a = 0; a < degrees.size(); ++a) {
      const Cell& cell = grid[r * degrees.size() + a];
      if (!cell.usable) {
        ber_row.push_back("-");
        rate_row.push_back("-");
        continue;
      }
      char ber_text[32];
      std::snprintf(ber_text, sizeof(ber_text), "%.0e", cell.ber.ber());
      ber_row.push_back(cell.ber.bit_errors == 0 ? "<1e-4" : ber_text);
      rate_row.push_back(sim::Table::fmt_rate(cell.rate_bps));
    }
    ber_map.add_row(std::move(ber_row));
    rate_map.add_row(std::move(rate_row));
  }

  rate_map.print("Coverage map — achievable tier per (range, bearing)");
  ber_map.print("Coverage map — measured OOK BER per (range, bearing)");
  sim::sweep_stats_table(stats, "bits").print("coverage sweep throughput");
  std::printf(
      "\nThe retrodirective aperture holds the full tier set across the "
      "+/-60 deg sector; range, not bearing, is what retires tiers — the "
      "planner's rule of thumb from Figs. 5 and 7 combined.\n");
  return 0;
}
