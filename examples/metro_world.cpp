// Metro world: a city-block reader grid serves 100k batteryless tags.
//
// The deploy fleet (warehouse_fleet) tops out around a few thousand tags;
// this example drives the scale layer instead — SoA tag store, uniform
// grid spatial index, and SIMD epoch batching (DESIGN.md Sec. 14) — over
// a 200 x 200 m block with a 4 x 4 reader grid. Each epoch every reader
// gathers its neighbourhood from the index, evaluates the whole slab
// through the kern layer, and polls detected tags under an
// energy-harvesting duty cycle while 5% of tags wander between epochs.
// Prints per-epoch service and the final aggregate with the world state
// fingerprint (bit-identical at any --threads value).
//
// Flags: --tags N, --epochs E, --threads N, --seed S.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/scale/world.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;

  int tags = 100000;
  int epochs = 8;
  int threads = 0;  // 0 = sim::default_thread_count().
  std::uint64_t seed = 2026;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tags") == 0 && i + 1 < argc)
      tags = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc)
      epochs = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
  }

  scale::MetroConfig config;
  config.tags = static_cast<std::size_t>(tags);
  config.seed = seed;

  scale::MetroWorld world(config);
  sim::ThreadPool pool(threads);

  sim::Table per_epoch({"epoch", "candidates", "detected", "successes",
                        "new_reads", "moved", "handoffs"});
  for (int e = 0; e < epochs; ++e) {
    const scale::MetroEpochStats stats = world.run_epoch(pool);
    per_epoch.add_row({std::to_string(e), std::to_string(stats.candidates),
                       std::to_string(stats.detected),
                       std::to_string(stats.successes),
                       std::to_string(stats.new_reads),
                       std::to_string(stats.moved),
                       std::to_string(stats.handoffs)});
  }
  char title[96];
  std::snprintf(title, sizeof title,
                "Metro world — %d tags, %dx%d readers, %d threads", tags,
                config.readers_x, config.readers_y, pool.size());
  per_epoch.print(title);

  const scale::MetroStats stats = world.stats();
  std::printf(
      "\n%" PRIu64 "/%zu tags read, %.2f Mbit delivered, %" PRIu64
      " interference pairs, %" PRIu64 " handoffs\n",
      stats.tags_read, config.tags, stats.delivered_bits / 1e6,
      stats.interference_pairs, stats.handoffs);
  std::printf("state fingerprint %016" PRIx64
              " (invariant under --threads)\n",
              world.state_fingerprint());
  return stats.tags_read > 0 ? 0 : 1;
}
