// NLOS fallback demo (paper Sec. 4): a person repeatedly walks through the
// line of sight between a reader and a sensor tag; the reader's beam
// tracker switches to the whiteboard reflection and back, and the example
// verifies data still gets through in the NLOS phase by running a frame
// through the waveform pipeline at the NLOS operating point.
#include <cstdio>

#include "src/channel/mobility.hpp"
#include "src/channel/raytrace.hpp"
#include "src/core/tag.hpp"
#include "src/phy/rate_table.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/reader/receive_chain.hpp"
#include "src/reader/reader.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/table.hpp"

int main() {
  using namespace mmtag;
  auto rng = sim::make_rng(99);

  const phy::RateTable rates = phy::RateTable::mmtag_standard();
  const core::MmTag tag = core::MmTag::prototype_at(
      core::Pose{{0.0, 0.0}, 0.0}, 55);
  auto reader = reader::MmWaveReader::prototype_at(
      core::Pose{{phys::feet_to_m(3.0), 0.0}, phys::kPi});

  // Corridor with a smooth metal cabinet along one side.
  const channel::Wall cabinet{channel::Segment{{-2.0, 0.3}, {2.0, 0.3}},
                              /*roughness=*/0.1};
  // A person pacing back and forth across the link at 0.8 m/s.
  const channel::WaypointMobility person(
      {{0.45, -0.6}, {0.45, 0.6}, {0.45, -0.6}}, 0.8);

  sim::Table table({"t_s", "path", "power_dbm", "rate", "frame"});
  const reader::ReceiveChain chain(reader::ReceiveChain::Params{8, true});
  int delivered = 0;
  int attempts = 0;
  for (double t = 0.0; t <= person.total_duration_s(); t += 0.25) {
    channel::Environment env;
    env.add_wall(cabinet);
    const channel::Vec2 p = person.position(t);
    env.add_obstacle(channel::Obstacle{
        channel::Segment{{p.x, p.y - 0.1}, {p.x, p.y + 0.1}}});

    const auto paths =
        channel::trace_paths(env, reader.pose().position, tag.pose().position);
    reader.steer_to_world(paths.front().departure_rad);
    const auto link = reader.evaluate_link(tag, env, rates);

    // Attempt one sensor-reading frame at this operating point.
    std::string frame_status = "-";
    if (const auto tier = rates.best_tier(link.received_power_dbm)) {
      ++attempts;
      const double snr_db = link.received_power_dbm -
                            rates.noise().power_dbm(tier->bandwidth_hz);
      phy::TagFrame frame;
      frame.tag_id = tag.id();
      frame.payload = phy::BitVector(64, false);
      phy::Waveform wave = chain.encode(frame, link.modulation_depth_db);
      phy::add_awgn(wave,
                    phy::noise_power_for_snr(phy::mean_power(wave), snr_db),
                    rng);
      const auto rx = chain.receive(wave);
      const bool ok = rx.frame.has_value() && *rx.frame == frame;
      if (ok) ++delivered;
      frame_status = ok ? "ok" : "lost";
    }

    table.add_row(
        {sim::Table::fmt(t, 2),
         link.path.kind == channel::PathKind::kReflected ? "NLOS(cab)"
                                                         : "LOS",
         sim::Table::fmt(link.received_power_dbm, 1),
         sim::Table::fmt_rate(link.achievable_rate_bps), frame_status});
  }
  table.print("NLOS mobility — blocker pacing across the link");
  std::printf("\nframes delivered: %d / %d attempts\n", delivered, attempts);
  return delivered > 0 && attempts > 0 ? 0 : 1;
}
