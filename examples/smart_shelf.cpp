// Smart shelf: inventory + localization in one pass.
//
// The RFID application literature the paper cites (Konark, RF-IDraw) wants
// to know not just *which* tags are present but *where* they are. A
// beam-scanning mmWave reader gets both from the same sweep: the winning
// beam bears on the tag, and inverting the link budget on the measured
// power yields range. This example scans a shelf of tagged items and
// prints estimated vs true positions.
#include <cstdio>

#include "src/antenna/codebook.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/reader/localization.hpp"
#include "src/reader/scanner.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/table.hpp"

int main() {
  using namespace mmtag;
  auto rng = sim::make_rng(404);

  // Five items on a shelf arc, 2-5 ft from the shelf-edge reader.
  struct Item {
    const char* name;
    channel::Vec2 position;
  };
  const Item items[] = {
      {"cereal", {0.7, -0.25}}, {"coffee", {0.9, 0.1}},
      {"pasta", {1.1, 0.45}},   {"flour", {1.3, -0.5}},
      {"rice", {1.5, 0.2}},
  };

  reader::BeamScanner scanner(
      reader::MmWaveReader::prototype_at(core::Pose{{0.0, 0.0}, 0.0}),
      reader::PowerDetector::mmtag_default());
  const auto rates = phy::RateTable::mmtag_standard();
  // Finer beams than the tag's own: 9-degree codebook for a tighter fix.
  const auto codebook = antenna::uniform_codebook(
      phys::deg_to_rad(-60.0), phys::deg_to_rad(60.0), 9.0);
  const reader::TagLocator locator = reader::TagLocator::mmtag_default();
  const channel::Environment shelf;

  sim::Table table({"item", "true_pos", "est_pos", "err_cm", "bearing_err_deg",
                    "rate"});
  int located = 0;
  for (const Item& item : items) {
    const core::MmTag tag = core::MmTag::prototype_at(core::Pose{
        item.position, channel::bearing_rad(item.position, {0.0, 0.0})});
    const auto scan = scanner.scan(codebook, tag, shelf, rates, rng);
    char truth_text[32];
    std::snprintf(truth_text, sizeof(truth_text), "(%.2f,%.2f)",
                  item.position.x, item.position.y);
    const auto estimate = locator.locate(scan, core::Pose{{0.0, 0.0}, 0.0});
    if (!estimate) {
      table.add_row({item.name, truth_text, "not found", "-", "-", "-"});
      continue;
    }
    ++located;
    char est_text[32];
    std::snprintf(est_text, sizeof(est_text), "(%.2f,%.2f)",
                  estimate->position.x, estimate->position.y);
    const double err_cm =
        channel::distance(estimate->position, item.position) * 100.0;
    const double truth_bearing =
        channel::bearing_rad({0.0, 0.0}, item.position);
    const double bearing_err = phys::rad_to_deg(phys::wrap_angle_rad(
        estimate->bearing_rad - truth_bearing));
    const auto& winner = scan.probes[static_cast<std::size_t>(
        scan.best_beam_index)];
    table.add_row({item.name, truth_text, est_text,
                   sim::Table::fmt(err_cm, 1),
                   sim::Table::fmt(bearing_err, 2),
                   sim::Table::fmt_rate(winner.achievable_rate_bps)});
  }
  table.print("Smart shelf — joint inventory + localization from one scan");
  std::printf("\nlocated %d / 5 items\n", located);
  return located == 5 ? 0 : 1;
}
