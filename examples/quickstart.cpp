// Quickstart: the smallest complete mmtag-sim program.
//
// Builds the paper's prototype tag and reader 4 ft apart, evaluates the
// backscatter link, and pushes one CRC-protected frame through the
// waveform-level pipeline at the SNR the link budget predicts.
//
//   $ ./quickstart
#include <cstdio>

#include "src/channel/environment.hpp"
#include "src/core/tag.hpp"
#include "src/phy/rate_table.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/reader/receive_chain.hpp"
#include "src/reader/reader.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/table.hpp"

int main() {
  using namespace mmtag;

  // 1. A tag at the origin facing +x, and a reader 4 ft away facing back.
  const core::MmTag tag =
      core::MmTag::prototype_at(core::Pose{{0.0, 0.0}, 0.0}, /*id=*/7);
  const auto reader = reader::MmWaveReader::prototype_at(
      core::Pose{{phys::feet_to_m(4.0), 0.0}, phys::kPi});

  // 2. Evaluate the two-way link (free space, like the paper's bench).
  const phy::RateTable rates = phy::RateTable::mmtag_standard();
  const auto link =
      reader.evaluate_link(tag, channel::Environment{}, rates);
  std::printf("tag power at reader : %.1f dBm\n", link.received_power_dbm);
  std::printf("modulation depth    : %.1f dB\n", link.modulation_depth_db);
  std::printf("achievable rate     : %s\n",
              sim::Table::fmt_rate(link.achievable_rate_bps).c_str());

  // 3. Send one frame at that operating point.
  const auto tier = rates.best_tier(link.received_power_dbm);
  if (!tier) {
    std::printf("link below the slowest tier — move the reader closer\n");
    return 1;
  }
  const double snr_db = link.received_power_dbm -
                        rates.noise().power_dbm(tier->bandwidth_hz);
  std::printf("SNR in %.0f MHz     : %.1f dB\n", tier->bandwidth_hz / 1e6,
              snr_db);

  const reader::ReceiveChain chain(reader::ReceiveChain::Params{8, true});
  phy::TagFrame frame;
  frame.tag_id = tag.id();
  frame.payload = phy::BitVector(96, true);  // An EPC-96-style identifier.
  phy::Waveform wave = chain.encode(frame, link.modulation_depth_db);
  auto rng = sim::make_rng(1);
  phy::add_awgn(wave, phy::noise_power_for_snr(phy::mean_power(wave), snr_db),
                rng);

  const auto received = chain.receive(wave);
  if (received.frame.has_value() && *received.frame == frame) {
    std::printf("frame from tag %u received, CRC OK\n",
                received.frame->tag_id);
    return 0;
  }
  std::printf("frame lost (preamble %s, CRC %s)\n",
              received.preamble_ok ? "ok" : "bad",
              received.crc_ok ? "ok" : "bad");
  return 1;
}
