// Warehouse inventory: read a shelf of 30 tagged items with one beam-
// scanning reader (paper Sec. 9: SDM + Aloha).
//
// The reader sits at the aisle end, sweeps a 120-degree sector in
// 17-degree beams, and inventories each responding beam with EPC-style
// framed slotted Aloha. Prints the per-beam breakdown and totals — note
// how gigabit-class links shrink a full inventory to milliseconds.
#include <cstdio>

#include "src/channel/geometry.hpp"
#include "src/mac/inventory.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/table.hpp"

int main() {
  using namespace mmtag;

  // 30 items on two shelf rows flanking the aisle, 2-9 ft from the reader.
  std::vector<core::MmTag> tags;
  auto rng = sim::make_rng(2026);
  std::uniform_real_distribution<double> along(0.6, 2.8);
  for (int i = 0; i < 30; ++i) {
    const double x = along(rng);
    const double y = (i % 2 == 0) ? 0.9 : -0.9;
    const channel::Vec2 pos{x, y};
    // Tags face across the aisle, not at the reader — retrodirectivity
    // covers the rest.
    tags.push_back(core::MmTag::prototype_at(
        core::Pose{pos, channel::bearing_rad(pos, {0.0, 0.0})},
        static_cast<std::uint32_t>(1000 + i)));
  }

  const auto reader =
      reader::MmWaveReader::prototype_at(core::Pose{{0.0, 0.0}, 0.0});
  const auto rates = phy::RateTable::mmtag_standard();
  const auto codebook = antenna::uniform_codebook(
      phys::deg_to_rad(-60.0), phys::deg_to_rad(60.0), 17.0);

  mac::InventoryConfig config;
  config.payload_bits = 96;
  mac::SdmInventory inventory(reader, rates, config);
  const channel::Environment warehouse;  // Open aisle.
  const auto result = inventory.run(codebook, tags, warehouse, rng);

  sim::Table table({"beam_deg", "tags", "rounds", "slots", "collisions",
                    "link_rate", "dwell_ms"});
  for (const auto& beam : result.beams) {
    table.add_row({sim::Table::fmt(
                       phys::rad_to_deg(beam.beam.boresight_rad), 0),
                   std::to_string(beam.tags_in_beam),
                   std::to_string(beam.aloha.rounds),
                   std::to_string(beam.aloha.slots_total),
                   std::to_string(beam.aloha.slots_collision),
                   sim::Table::fmt_rate(beam.link_rate_bps),
                   sim::Table::fmt(beam.dwell_time_s * 1e3, 3)});
  }
  table.print("Warehouse aisle inventory — per-beam breakdown");
  std::printf("\nread %d / %d tags in %.2f ms  (%s of identifiers)\n",
              result.tags_read, result.tags_total,
              result.total_time_s * 1e3,
              sim::Table::fmt_rate(result.aggregate_throughput_bps(
                                       config.payload_bits))
                  .c_str());
  return result.tags_read == result.tags_total ? 0 : 1;
}
