// Warehouse inventory: read a shelf of 30 tagged items with one beam-
// scanning reader (paper Sec. 9: SDM + Aloha).
//
// The reader sits at the aisle end, sweeps a 120-degree sector in
// 17-degree beams, and inventories each responding beam with EPC-style
// framed slotted Aloha. A parallel site-survey pass first evaluates every
// tag's link budget on the thread pool (bit-identical at any thread
// count), then the sequential MAC run prints the per-beam breakdown and
// totals — note how gigabit-class links shrink a full inventory to
// milliseconds.
//
// Flags: --threads N (site-survey workers), --seed S (placement + Aloha).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/channel/geometry.hpp"
#include "src/mac/inventory.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;

  int threads = 0;  // 0 = MMTAG_THREADS / hardware concurrency.
  std::uint64_t seed = 2026;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
  }

  // 30 items on two shelf rows flanking the aisle, 2-9 ft from the reader.
  std::vector<core::MmTag> tags;
  auto rng = sim::make_rng(seed);
  std::uniform_real_distribution<double> along(0.6, 2.8);
  for (int i = 0; i < 30; ++i) {
    const double x = along(rng);
    const double y = (i % 2 == 0) ? 0.9 : -0.9;
    const channel::Vec2 pos{x, y};
    // Tags face across the aisle, not at the reader — retrodirectivity
    // covers the rest.
    tags.push_back(core::MmTag::prototype_at(
        core::Pose{pos, channel::bearing_rad(pos, {0.0, 0.0})},
        static_cast<std::uint32_t>(1000 + i)));
  }

  const auto reader =
      reader::MmWaveReader::prototype_at(core::Pose{{0.0, 0.0}, 0.0});
  const auto rates = phy::RateTable::mmtag_standard();
  const auto codebook = antenna::uniform_codebook(
      phys::deg_to_rad(-60.0), phys::deg_to_rad(60.0), 17.0);

  mac::InventoryConfig config;
  config.payload_bits = 96;
  mac::SdmInventory inventory(reader, rates, config);
  const channel::Environment warehouse;  // Open aisle.

  // Site survey: per-tag link budgets are independent, so shard them
  // across the pool before committing to the MAC schedule.
  sim::ThreadPool pool(threads);
  const auto survey = sim::parallel_sweep(
      pool, tags.size(), [&](std::size_t i) {
        reader::MmWaveReader probe = reader;  // Steer a copy at the tag.
        probe.steer_to_world(channel::bearing_rad(
            probe.pose().position, tags[i].pose().position));
        return probe.evaluate_link(tags[i], warehouse, rates)
            .achievable_rate_bps;
      });
  int reachable = 0;
  double slowest = 0.0;
  for (const double rate : survey) {
    if (rate <= 0.0) continue;
    ++reachable;
    slowest = (reachable == 1) ? rate : std::min(slowest, rate);
  }
  std::printf("site survey (%d threads): %d/%zu tags reachable, "
              "slowest link %s\n\n",
              pool.size(), reachable, tags.size(),
              sim::Table::fmt_rate(slowest).c_str());

  const auto result = inventory.run(codebook, tags, warehouse, rng);

  sim::Table table({"beam_deg", "tags", "rounds", "slots", "collisions",
                    "link_rate", "dwell_ms"});
  for (const auto& beam : result.beams) {
    table.add_row({sim::Table::fmt(
                       phys::rad_to_deg(beam.beam.boresight_rad), 0),
                   std::to_string(beam.tags_in_beam),
                   std::to_string(beam.aloha.rounds),
                   std::to_string(beam.aloha.slots_total),
                   std::to_string(beam.aloha.slots_collision),
                   sim::Table::fmt_rate(beam.link_rate_bps),
                   sim::Table::fmt(beam.dwell_time_s * 1e3, 3)});
  }
  table.print("Warehouse aisle inventory — per-beam breakdown");
  std::printf("\nread %d / %d tags in %.2f ms  (%s of identifiers)\n",
              result.tags_read, result.tags_total,
              result.total_time_s * 1e3,
              sim::Table::fmt_rate(result.aggregate_throughput_bps(
                                       config.payload_bits))
                  .c_str());
  return result.tags_read == result.tags_total ? 0 : 1;
}
