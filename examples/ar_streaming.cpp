// AR-glasses streaming: the paper's motivating application (Sec. 1 names
// "augmented reality (AR) lenses" among the emerging applications that
// need far more than a Mbps on a harvested-energy budget).
//
// A user wearing a tagged AR headset walks a loop through an office while
// two corner readers track them. The tag's retrodirective aperture covers
// its front half-plane, so a single reader loses the wearer whenever they
// face away; with a reader in each of two opposite corners, whichever one
// the headset faces carries the stream (a realistic deployment, and a
// mini handover protocol). The energy model then checks whether the
// headset could sustain the session's average modulation rate from
// harvested light.
#include <cstdio>

#include "src/channel/mobility.hpp"
#include "src/core/energy.hpp"
#include "src/mac/event_queue.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/reader/reader.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/table.hpp"

namespace {

struct WalkStep {
  double t_s = 0.0;
  mmtag::channel::Vec2 pos{0.0, 0.0};
  int reader = 0;
  double range_ft = 0.0;
  bool nlos = false;
  double power_dbm = -300.0;
  double rate_bps = 0.0;
};

}  // namespace

int main() {
  using namespace mmtag;

  // Office room (5 x 4 m, smooth north wall) with the reader in the
  // south-west corner looking into the room.
  const channel::Environment office = channel::Environment::office_room();
  std::vector<reader::MmWaveReader> readers = {
      reader::MmWaveReader::prototype_at(
          core::Pose{{0.3, 0.3}, phys::deg_to_rad(45.0)}),     // SW corner.
      reader::MmWaveReader::prototype_at(
          core::Pose{{4.7, 3.7}, phys::deg_to_rad(-135.0)}),   // NE corner.
  };
  const auto rates = phy::RateTable::mmtag_standard();

  // The wearer walks a loop: desk -> window -> whiteboard -> desk.
  const channel::WaypointMobility walk(
      {{1.2, 1.0}, {4.2, 1.2}, {4.0, 3.2}, {1.5, 3.0}, {1.2, 1.0}},
      /*speed_m_per_s=*/1.0);

  mac::EventQueue clock;
  const double kStep = 0.5;  // Report every half second.
  const std::size_t steps =
      static_cast<std::size_t>(walk.total_duration_s() / kStep) + 1;

  // Every half-second snapshot of the walk is independent: shard the
  // timeline across the parallel sweep engine. Each task steers private
  // copies of the readers, so the shared deployment is never mutated.
  sim::ThreadPool pool;
  sim::SweepStats stats;
  const auto timeline = sim::parallel_sweep(
      pool, steps,
      [&](std::size_t s) {
        WalkStep step;
        step.t_s = static_cast<double>(s) * kStep;
        step.pos = walk.position(step.t_s);
        // Headset orientation follows the walking direction (worst case
        // for a fixed-beam tag; irrelevant for the retrodirective one).
        const channel::Vec2 ahead = walk.position(step.t_s + 0.1);
        const double heading =
            (ahead.x != step.pos.x || ahead.y != step.pos.y)
                ? channel::bearing_rad(step.pos, ahead)
                : 0.0;
        const core::MmTag headset = core::MmTag::prototype_at(
            core::Pose{step.pos, heading}, 77);

        // Handover: each reader beam-tracks the headset; the session
        // rides on whichever link is stronger this step.
        reader::LinkReport best_link;
        for (std::size_t r = 0; r < readers.size(); ++r) {
          reader::MmWaveReader tracked = readers[r];
          const auto paths = channel::trace_paths(
              office, tracked.pose().position, step.pos);
          tracked.steer_to_world(paths.front().departure_rad);
          const auto link = tracked.evaluate_link(headset, office, rates);
          if (link.received_power_dbm > best_link.received_power_dbm) {
            best_link = link;
            step.reader = static_cast<int>(r);
          }
        }
        step.range_ft = phys::m_to_feet(channel::distance(
            readers[static_cast<std::size_t>(step.reader)].pose().position,
            step.pos));
        step.nlos = best_link.path.kind == channel::PathKind::kReflected;
        step.power_dbm = best_link.received_power_dbm;
        step.rate_bps = best_link.achievable_rate_bps;
        return step;
      },
      &stats);

  sim::Table table(
      {"t_s", "pos", "reader", "range_ft", "path", "power_dbm", "rate"});
  double bits_delivered = 0.0;
  double time_connected = 0.0;
  for (const WalkStep& step : timeline) {
    clock.run(step.t_s);
    bits_delivered += step.rate_bps * kStep;
    if (step.rate_bps > 0.0) time_connected += kStep;
    char pos_text[32];
    std::snprintf(pos_text, sizeof(pos_text), "(%.1f,%.1f)", step.pos.x,
                  step.pos.y);
    table.add_row({sim::Table::fmt(step.t_s, 1), pos_text,
                   step.reader == 0 ? "SW" : "NE",
                   sim::Table::fmt(step.range_ft, 1),
                   step.nlos ? "NLOS" : "LOS",
                   sim::Table::fmt(step.power_dbm, 1),
                   sim::Table::fmt_rate(step.rate_bps)});
  }
  table.print("AR headset walking loop — tracked backscatter link");
  sim::sweep_stats_table(stats).print("walk timeline sweep throughput");

  const double duration = walk.total_duration_s();
  const double mean_rate = bits_delivered / duration;
  std::printf("\nconnected %.0f%% of the walk, mean goodput %s\n",
              100.0 * time_connected / duration,
              sim::Table::fmt_rate(mean_rate).c_str());

  // Could the headset modulate at that average rate batteryless?
  const core::TagEnergyModel energy = core::TagEnergyModel::mmtag_prototype();
  const double indoor = core::TagEnergyModel::harvested_power_w(
      core::HarvestSource::kIndoorLight);
  std::printf(
      "modulation power at mean rate: %sW; indoor-light harvest: %sW -> %s\n",
      sim::Table::fmt_si(energy.modulation_power_w(mean_rate), 2).c_str(),
      sim::Table::fmt_si(indoor, 2).c_str(),
      energy.modulation_power_w(mean_rate) < indoor
          ? "sustainable continuously"
          : "needs duty cycling / storage");
  return 0;
}
