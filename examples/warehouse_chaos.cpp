// Warehouse chaos: the four-reader fleet under increasing fault pressure.
//
// Takes the warehouse_fleet deployment (12 x 8 m floor, four ceiling
// readers, 200 tags) and sweeps fault intensity from a healthy fleet to
// full chaos(1.0): reader outages, harvester brownouts, stuck RF
// switches, mmWave blockage bursts and clock drift, all injected
// deterministically from the run seed. Recovery is left on (orphan
// re-handoff, restart cache invalidation, poll retry/quarantine), so the
// table shows goodput and Jain fairness degrading gracefully instead of
// cliff-diving — and the availability/MTTR columns quantify what the
// recovery machinery buys at each intensity.
//
// Flags: --threads N (worker threads), --seed S, --steps K (sweep points).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/deploy/fleet.hpp"
#include "src/fault/engine.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;

  int threads = 0;  // 0 = sim::default_thread_count().
  std::uint64_t seed = 2026;
  int steps = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc)
      steps = std::atoi(argv[++i]);
  }
  if (steps < 2) steps = 2;

  deploy::FleetConfig base;
  base.layout.width_m = 12.0;
  base.layout.height_m = 8.0;
  base.layout.readers = 4;
  base.layout.tags = 200;
  base.layout.seed = seed;
  base.epochs = 6;
  base.epoch_duration_s = 0.1;
  base.seed = seed;
  base.threads = threads;

  sim::Table table({"intensity", "coverage", "goodput_mean", "jain",
                    "avail", "mttr_ms", "outages", "rehandoffs",
                    "brownouts", "blocked", "quarantines"});
  double healthy_goodput = 0.0;
  double chaos_goodput = 0.0;
  for (int k = 0; k < steps; ++k) {
    const double intensity =
        static_cast<double>(k) / static_cast<double>(steps - 1);
    deploy::FleetConfig config = base;
    config.faults = fault::FaultSchedule::chaos(intensity);
    const deploy::FleetResult result = deploy::FleetSimulator(config).run();
    const deploy::FleetStats& s = result.stats;
    const fault::FaultReport& f = result.fault;
    if (k == 0) healthy_goodput = s.goodput_mean_bps;
    if (k + 1 == steps) chaos_goodput = s.goodput_mean_bps;
    table.add_row({sim::Table::fmt(intensity, 2),
                   sim::Table::fmt(s.coverage(), 3),
                   sim::Table::fmt_rate(s.goodput_mean_bps),
                   sim::Table::fmt(s.jain, 3),
                   sim::Table::fmt(f.availability, 4),
                   sim::Table::fmt(f.mttr_mean_s * 1e3, 2),
                   std::to_string(f.reader_outages),
                   std::to_string(f.orphan_handoffs),
                   std::to_string(f.tag_brownout_epochs),
                   std::to_string(f.tag_blocked_epochs),
                   std::to_string(f.quarantines)});
  }

  table.print(
      "Warehouse chaos — fault intensity sweep (4 readers / 200 tags, "
      "recovery on)");
  if (healthy_goodput > 0.0) {
    std::printf("\ngoodput retained at full chaos: %.1f%%\n",
                100.0 * chaos_goodput / healthy_goodput);
  }
  return healthy_goodput > 0.0 ? 0 : 1;
}
