// Vibration sensing through the backscatter phase.
//
// The RFID sensing literature the paper cites (Sec. 3) reads the physical
// world through tag reflections. At 24 GHz the two-way phase is so
// sensitive (2 k0 ~ 1 rad per millimetre) that a tag bolted to a machine
// turns the reader into a vibrometer for free: the mmTag link carries
// data AND the carrier phase carries the machine's vibration signature.
// This example recovers amplitude and frequency of a bearing vibration
// from the simulated phase series and checks them against ground truth.
#include <cmath>
#include <cstdio>

#include "src/channel/doppler.hpp"
#include "src/phy/fft.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/table.hpp"

namespace {

// A machine panel vibrating along the line of sight.
class PanelVibration final : public mmtag::channel::Mobility {
 public:
  PanelVibration(double amplitude_m, double frequency_hz)
      : amplitude_m_(amplitude_m), frequency_hz_(frequency_hz) {}

  [[nodiscard]] mmtag::channel::Vec2 position(double t_s) const override {
    return {1.5 + amplitude_m_ * std::sin(mmtag::phys::kTwoPi *
                                          frequency_hz_ * t_s),
            0.0};
  }

 private:
  double amplitude_m_;
  double frequency_hz_;
};

}  // namespace

namespace {

struct VibrationCase {
  double amplitude_um;
  double freq_hz;
};

struct VibrationReading {
  double displacement_um = 0.0;
  double measured_hz = 0.0;
  double swing_rad = 0.0;
  bool good = false;
};

}  // namespace

int main() {
  using namespace mmtag;

  const VibrationCase kCases[] = {
      {250.0, 12.0}, {80.0, 30.0}, {25.0, 60.0}, {8.0, 120.0}};
  constexpr std::size_t kCaseCount = sizeof(kCases) / sizeof(kCases[0]);

  // Each vibration case is an independent simulation — shard them across
  // the parallel sweep engine (MMTAG_THREADS controls the pool size).
  sim::ThreadPool pool;
  sim::SweepStats stats;
  const auto readings = sim::parallel_sweep(
      pool, kCaseCount,
      [&](std::size_t c) {
        const VibrationCase& test_case = kCases[c];
        const PanelVibration panel(test_case.amplitude_um * 1e-6 / 2.0,
                                   test_case.freq_hz);
        const double sample_rate = 2000.0;
        const auto phase = channel::backscatter_phase_series(
            panel, {0.0, 0.0}, phys::kMmTagCarrierHz, /*duration_s=*/1.0,
            sample_rate);

        VibrationReading reading;
        // Amplitude from the phase swing.
        reading.displacement_um =
            channel::displacement_from_phase_m(phase,
                                               phys::kMmTagCarrierHz) *
            1e6;

        // Frequency from the phase spectrum (remove the dc/static range
        // term).
        double mean = 0.0;
        for (const double p : phase) mean += p;
        mean /= static_cast<double>(phase.size());
        std::vector<phy::Complex> centered;
        centered.reserve(phase.size());
        for (const double p : phase) centered.emplace_back(p - mean, 0.0);
        std::vector<double> freqs;
        const auto spectrum =
            phy::power_spectrum(centered, sample_rate, freqs);
        std::size_t peak = 0;
        for (std::size_t i = 0; i < spectrum.size(); ++i) {
          if (freqs[i] > 1.0 && spectrum[i] > spectrum[peak]) peak = i;
        }
        reading.measured_hz = freqs[peak];

        for (const double p : phase) {
          reading.swing_rad = std::max(reading.swing_rad, std::abs(p - mean));
        }
        reading.good =
            std::abs(reading.displacement_um - test_case.amplitude_um) <=
                0.1 * test_case.amplitude_um &&
            std::abs(reading.measured_hz - test_case.freq_hz) <= 2.5;
        return reading;
      },
      &stats);

  sim::Table table({"truth_um_pp", "truth_hz", "measured_um_pp",
                    "measured_hz", "phase_swing_mrad"});
  bool all_good = true;
  for (std::size_t c = 0; c < kCaseCount; ++c) {
    table.add_row({sim::Table::fmt(kCases[c].amplitude_um, 0),
                   sim::Table::fmt(kCases[c].freq_hz, 0),
                   sim::Table::fmt(readings[c].displacement_um, 1),
                   sim::Table::fmt(readings[c].measured_hz, 1),
                   sim::Table::fmt(2.0 * readings[c].swing_rad * 1e3, 2)});
    if (!readings[c].good) all_good = false;
  }
  table.print("Vibration sensing via backscatter phase (tag at 1.5 m, "
              "24 GHz)");
  sim::sweep_stats_table(stats).print("vibration case sweep throughput");
  std::printf(
      "\nEven an 8 um vibration swings the two-way phase by ~8 mrad — "
      "readable at the SNRs the data link already needs. The same tag "
      "streams data and monitors the machine.\n");
  return all_good ? 0 : 1;
}
