// Calibration probe: prints the raw model outputs the paper's figures pin
// down, so the calibrated constants in DESIGN.md Sec. 4 can be verified (or
// re-derived) at any time. Not part of the documented examples; kept as a
// maintenance tool.
#include <cstdio>

#include "src/baselines/fixed_beam_tag.hpp"
#include "src/baselines/specular_plate.hpp"
#include "src/channel/environment.hpp"
#include "src/core/tag.hpp"
#include "src/core/van_atta.hpp"
#include "src/em/patch_element.hpp"
#include "src/phy/rate_table.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/reader/reader.hpp"
#include "src/sim/table.hpp"

int main() {
  using namespace mmtag;

  // --- Fig. 6: S11 of one element, switch off vs on.
  const em::PatchElement element = em::PatchElement::mmtag();
  for (double f_ghz : {23.5, 23.75, 24.0, 24.25, 24.5}) {
    const double f = phys::ghz(f_ghz);
    std::printf("S11 @ %.2f GHz: off=%.2f dB  on=%.2f dB\n", f_ghz,
                element.s11_db(em::SwitchState::kOff, f),
                element.s11_db(em::SwitchState::kOn, f));
  }

  // --- Tag array properties.
  core::VanAttaArray array = core::VanAttaArray::mmtag_prototype();
  std::printf("retro beamwidth @0deg: %.2f deg\n",
              array.retro_beamwidth_deg(0.0));
  for (double deg : {0.0, 15.0, 30.0, 45.0, 60.0}) {
    const double theta = phys::deg_to_rad(deg);
    std::printf("mono gain @%2.0f deg: VanAtta=%.2f dB  fixed=%.2f dB  "
                "plate=%.2f dB | retro peak dir=%.2f deg\n",
                deg, array.monostatic_gain_db(theta),
                baselines::FixedBeamTag::like_mmtag_prototype()
                    .monostatic_gain_db(theta),
                baselines::SpecularPlate::like_mmtag_prototype()
                    .monostatic_gain_db(theta),
                phys::rad_to_deg(array.peak_reradiation_direction_rad(theta)));
  }

  // --- Fig. 7: received power vs range.
  const channel::Environment empty_env;
  const phy::RateTable rates = phy::RateTable::mmtag_standard();
  core::MmTag tag = core::MmTag::prototype_at(
      core::Pose{{0.0, 0.0}, 0.0});
  for (double feet : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0}) {
    const double d = phys::feet_to_m(feet);
    core::Pose reader_pose{{d, 0.0}, phys::kPi};  // Facing the tag.
    const auto reader = reader::MmWaveReader::prototype_at(reader_pose);
    const auto link = reader.evaluate_link(tag, empty_env, rates);
    std::printf("range %4.1f ft: P=%.2f dBm depth=%.2f dB rate=%s\n", feet,
                link.received_power_dbm, link.modulation_depth_db,
                mmtag::sim::Table::fmt_rate(link.achievable_rate_bps).c_str());
  }

  // --- Noise floors (paper footnote 4).
  const phys::NoiseModel noise = phys::NoiseModel::mmtag_reader();
  std::printf("noise floors: 2GHz=%.2f  200MHz=%.2f  20MHz=%.2f dBm\n",
              noise.power_dbm(phys::ghz(2)), noise.power_dbm(phys::mhz(200)),
              noise.power_dbm(phys::mhz(20)));
  return 0;
}
