// Forklift tracking: the scenario engine end to end.
//
// A tag is bolted to a forklift, boresight forward. The Van Atta array
// self-aligns across its entire front half-plane (the paper's point), but
// physics still rules the back: while the forklift drives *away* from the
// reader the tag's ground plane hides it, and the link returns the moment
// the loop turns around — plus NLOS dips when a worker crosses the beam.
// One LinkScenario call produces the whole timeline; the example prints a
// table plus an ASCII strip chart of the controlled rate.
#include <cstdio>
#include <memory>

#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/sim/ascii_plot.hpp"
#include "src/sim/scenario.hpp"
#include "src/sim/table.hpp"

int main() {
  using namespace mmtag;

  sim::LinkScenario::Config config;
  config.step_s = 0.2;
  config.orientation = sim::TagOrientation::kFollowVelocity;
  config.tracking.miss_budget = 1;  // Re-acquire promptly when blocked.

  sim::LinkScenario scenario(
      reader::MmWaveReader::prototype_at(core::Pose{{0.0, 0.0}, 0.3}),
      phy::RateTable::mmtag_standard(), config);

  // Racking face along one side of the aisle: a good NLOS reflector.
  channel::Environment warehouse;
  warehouse.add_wall(
      channel::Wall{channel::Segment{{-1.0, 1.4}, {6.0, 1.4}}, 0.3});
  scenario.set_static_environment(warehouse);

  // The forklift loops: out along the aisle, turn, and back.
  scenario.set_tag_trajectory(std::make_shared<channel::WaypointMobility>(
      std::vector<channel::Vec2>{
          {0.8, 0.2}, {2.8, 0.6}, {3.0, 1.0}, {1.0, 0.9}, {0.8, 0.2}},
      /*speed_m_per_s=*/0.7));

  // A worker pacing across the reader's field of view.
  scenario.add_moving_blocker(
      std::make_shared<channel::WaypointMobility>(
          std::vector<channel::Vec2>{
              {0.5, -0.6}, {0.5, 0.8}, {0.5, -0.6}},
          /*speed_m_per_s=*/0.35),
      0.12);

  const sim::ScenarioResult result = scenario.run(9.0, 2026);

  sim::Table table({"t_s", "pos", "path", "power_dbm", "rate_in_force"});
  std::vector<double> t_axis;
  sim::Series rate_series{"controlled rate (Mbps)", {}, '*'};
  for (const sim::TimelineRecord& record : result.timeline) {
    char pos_text[32];
    std::snprintf(pos_text, sizeof(pos_text), "(%.1f,%.1f)",
                  record.tag_position.x, record.tag_position.y);
    table.add_row(
        {sim::Table::fmt(record.t_s, 1), pos_text,
         record.path_kind == channel::PathKind::kReflected ? "NLOS" : "LOS",
         sim::Table::fmt(record.received_power_dbm, 1),
         sim::Table::fmt_rate(record.controlled_rate_bps)});
    t_axis.push_back(record.t_s);
    rate_series.y.push_back(record.controlled_rate_bps / 1e6);
  }
  table.print("Forklift loop — tracked link timeline");

  sim::PlotOptions plot;
  plot.x_label = "time (s)";
  plot.y_label = "Mbps";
  plot.height = 12;
  std::printf("\n%s", sim::ascii_plot(t_axis, {rate_series}, plot).c_str());

  std::printf(
      "\nconnected %.0f%% of the loop | mean rate %s | %.2f Gbit moved | "
      "%d re-acquisition scans | %d rate switches\n"
      "(the dead first leg is the forklift driving away — a forward-facing "
      "tag covers only its front half-plane; a second tag on the rear mast "
      "or a second reader closes the loop)\n",
      100.0 * result.connectivity,
      sim::Table::fmt_rate(result.mean_rate_bps).c_str(),
      result.delivered_bits / 1e9, result.full_scans, result.rate_switches);
  return result.connectivity > 0.5 ? 0 : 1;
}
