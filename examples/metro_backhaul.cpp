// Metro backhaul: a 16-reader hall draining inventory over the reader mesh.
//
// The deployment story ROADMAP item 2 asks for, end to end: a 24 x 24 m
// metro hall with sixteen ceiling readers, two of them wired as gateways
// (opposite corners), everyone else reaching a gateway over multi-hop
// 24 GHz backhaul links (6 m reader spacing, 10 m backhaul range, so the
// far half of the hall is two to three hops out). Each fleet epoch the
// readers inventory their cells, the inventory is framed into zero-copy
// net::Packet
// buffers and forwarded hop by hop to the nearest gateway, and a chaos
// outage schedule (Poisson reader outages plus one scripted two-epoch
// incident taking out both of gateway 0's nearest transits) keeps the
// topology honest: frames shift to precomputed K-shortest alternates the
// instant their primary next hop is dark, the link-state flood reconverges
// at the epoch boundary, and orphaned tags re-home only to readers that
// can still reach a gateway.
//
// The run is printed twice — failover on vs the frozen-table baseline —
// so the delivery-ratio margin the mesh buys is visible in one screen.
//
// Flags: --threads N (worker threads), --seed S, --epochs E.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/deploy/fleet_stats.hpp"
#include "src/fault/schedule.hpp"
#include "src/mesh/backhaul.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;

  int threads = 0;  // 0 = sim::default_thread_count().
  std::uint64_t seed = 2026;
  int epochs = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc)
      epochs = std::atoi(argv[++i]);
  }
  if (epochs < 3) epochs = 3;  // The scripted incident spans epochs 1-2.

  mesh::BackhaulConfig base;
  base.fleet.layout.width_m = 24.0;
  base.fleet.layout.height_m = 24.0;
  base.fleet.layout.readers = 16;
  base.fleet.layout.tags = 400;
  base.fleet.layout.seed = seed;
  base.fleet.epochs = epochs;
  base.fleet.epoch_duration_s = 0.2;
  base.fleet.seed = seed;
  base.fleet.threads = threads;
  // Wired egress at opposite corners of the 4x4 reader grid; 10 m range
  // keeps the far half of the hall multi-hop (grid spacing is 6 m).
  base.topology.gateways = {0, 15};
  base.topology.link.max_range_m = 10.0;
  // ~10% reader downtime plus a scripted incident: readers 1 and 4 (both
  // one grid step from gateway 0) dark for epochs 1-2 whole.
  base.fleet.faults.outages.rate_hz = 0.25;
  base.fleet.faults.outages.mean_duration_s = 0.08;
  const double epoch_s = base.fleet.epoch_duration_s;
  base.fleet.faults.outages.scripted.push_back(
      {1, epoch_s, 2.0 * epoch_s + 0.01});
  base.fleet.faults.outages.scripted.push_back(
      {4, epoch_s, 2.0 * epoch_s + 0.01});

  std::printf("metro backhaul: 16 readers / 2 gateways / %d epochs, "
              "10%% outages + scripted incident (seed %llu)\n\n",
              epochs, static_cast<unsigned long long>(seed));

  for (const bool failover : {true, false}) {
    mesh::BackhaulConfig config = base;
    config.forwarding.failover = failover;
    config.forwarding.reconverge = failover;
    const mesh::BackhaulReport report =
        mesh::BackhaulSimulator(config).run();

    char title[96];
    std::snprintf(title, sizeof title, "mesh backhaul — failover %s",
                  failover ? "ON (K-shortest alternates)"
                           : "OFF (frozen tables)");
    mesh::backhaul_table(report).print(title);
    std::printf("  epochs converged in %d flood rounds, %llu LSA "
                "transmissions; %llu frames rerouted mid-flight, "
                "%llu of them delivered\n\n",
                report.mesh.convergence_rounds,
                static_cast<unsigned long long>(
                    report.mesh.lsa_transmissions),
                static_cast<unsigned long long>(report.mesh.reroutes),
                static_cast<unsigned long long>(
                    report.mesh.rerouted_delivered));

    if (failover) {
      deploy::fleet_stats_table(report.fleet.stats)
          .print("radio side (identical in both runs)");
      std::printf("  availability %.4f, %d orphan re-handoffs — tags only "
                  "re-home to gateway-reachable readers\n\n",
                  report.fleet.fault.availability,
                  report.fleet.fault.orphan_handoffs);
    }
  }

  std::printf("The failover run delivers every frame the baseline drops at "
              "dead transits;\nrun with --seed to watch the margin persist "
              "across incident realizations.\n");
  return 0;
}
