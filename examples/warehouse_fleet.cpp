// Warehouse fleet: four ceiling readers inventory 200 tags cooperatively.
//
// Scales the single-aisle warehouse_inventory example up to a deployment:
// a 12 x 8 m floor, four readers on a grid each owning a cell of ~50 tags,
// TDM coordination (E6: same-channel readers do not coexist at room
// scale), and a tenth of the tags walking between epochs to exercise
// cache invalidation and inter-cell handoff. Prints per-cell service and
// the fleet aggregate — p50/p95/p99 time-to-first-read, per-tag goodput,
// Jain fairness, reader utilization.
//
// Flags: --threads N (worker threads), --seed S (layout + MAC streams).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/deploy/fleet.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;

  int threads = 0;  // 0 = sim::default_thread_count().
  std::uint64_t seed = 2026;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
  }

  deploy::FleetConfig config;
  config.layout.width_m = 12.0;
  config.layout.height_m = 8.0;
  config.layout.readers = 4;
  config.layout.tags = 200;
  config.layout.seed = seed;
  config.epochs = 4;
  config.epoch_duration_s = 0.1;
  config.mobile_fraction = 0.1;  // Forklifts and pickers keep moving.
  config.seed = seed;
  config.threads = threads;

  deploy::FleetSimulator fleet(config);
  const deploy::FleetResult result = fleet.run();

  sim::Table cells({"cell", "tags", "discovered", "airtime_ms", "util"});
  for (const deploy::CellEpochResult& cell : result.last_epoch) {
    cells.add_row({std::to_string(cell.cell_index),
                   std::to_string(cell.tags_assigned),
                   std::to_string(cell.tags_discovered),
                   sim::Table::fmt(cell.airtime_s * 1e3, 2),
                   sim::Table::fmt(cell.utilization, 3)});
  }
  cells.print("Warehouse fleet — last epoch per cell (TDM, 4 readers)");

  deploy::fleet_stats_table(result.stats)
      .print("Warehouse fleet — aggregate over all epochs");
  std::printf("\n%d/%d tags read in %.1f s simulated "
              "(%.3f s wall on %d threads, %d handoffs)\n",
              result.stats.tags_read, result.stats.tags_total,
              result.stats.duration_s, result.sweep.wall_s,
              result.sweep.threads, result.stats.handoffs);
  return result.stats.tags_read > 0 ? 0 : 1;
}
