// Batteryless sensor with burst uploads: the full energy story end to end.
//
// A vibration-monitoring tag on a machine harvests from the machine's own
// vibration (~4 uW/cm^2), buffers samples, and uploads in gigabit bursts
// whenever its storage capacitor fills. The example walks one duty cycle:
// charge -> burst (fragmented, ARQ-checked transfer) -> recharge, and
// reports the sustainable long-run sensor data rate — the honest version
// of "batteryless wireless networking at gigabit speeds".
#include <cmath>
#include <cstdio>

#include "src/channel/environment.hpp"
#include "src/core/harvester.hpp"
#include "src/core/tag.hpp"
#include "src/net/fragmentation.hpp"
#include "src/net/session.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/reader/reader.hpp"
#include "src/sim/table.hpp"

int main() {
  using namespace mmtag;

  // Link: reader on the wall, tag on the machine 6 ft away.
  const core::MmTag tag = core::MmTag::prototype_at(
      core::Pose{{0.0, 0.0}, 0.0}, 321);
  const auto reader = reader::MmWaveReader::prototype_at(
      core::Pose{{phys::feet_to_m(6.0), 0.0}, phys::kPi});
  const auto rates = phy::RateTable::mmtag_standard();
  const auto link =
      reader.evaluate_link(tag, channel::Environment{}, rates);
  std::printf("link: %.1f dBm -> %s tier\n", link.received_power_dbm,
              sim::Table::fmt_rate(link.achievable_rate_bps).c_str());

  // Energy: vibration harvesting into the 100 uF cap.
  const core::TagEnergyModel energy = core::TagEnergyModel::mmtag_prototype();
  const core::EnergyHarvester cap =
      core::EnergyHarvester::mmtag_with(core::HarvestSource::kVibration);
  const double burst_load_w =
      energy.modulation_power_w(link.achievable_rate_bps);
  const double burst_s = cap.max_burst_s(burst_load_w);
  const double recharge_s = cap.recharge_time_s();
  std::printf("burst budget: %.1f ms of %s modulation, then %.1f s of "
              "recharge (duty %.2f%%)\n",
              burst_s * 1e3,
              sim::Table::fmt_rate(link.achievable_rate_bps).c_str(),
              recharge_s, 100.0 * cap.duty_cycle(burst_load_w));

  // Transfer: how much sensor data one burst moves, ARQ and framing paid.
  const net::TransferSession session = net::TransferSession::mmtag_default();
  const net::SessionReport report = session.analyze(link, 1);  // Per-bit.
  const double burst_payload_bits = report.goodput_bps * burst_s;
  std::printf("one burst delivers %.1f kB of payload (goodput %s)\n",
              burst_payload_bits / 8.0 / 1e3,
              sim::Table::fmt_rate(report.goodput_bps).c_str());

  // Long-run sensor budget.
  const double cycle_s = burst_s + recharge_s;
  const double sustained_bps = burst_payload_bits / cycle_s;
  std::printf("sustained sensor data rate: %s\n",
              sim::Table::fmt_rate(sustained_bps).c_str());

  // Sanity: a 3-axis accelerometer at 10 kHz x 16 bit = 480 kbps.
  const double sensor_demand_bps = 3.0 * 10e3 * 16.0;
  std::printf("3-axis 10 kHz accelerometer needs %s -> %s\n",
              sim::Table::fmt_rate(sensor_demand_bps).c_str(),
              sustained_bps >= sensor_demand_bps
                  ? "sustainable, batteryless"
                  : "needs a bigger harvester or duty-cycled sensing");
  return 0;
}
