// Mesh M1: the reader-backhaul mesh under chaos.
//
// ROADMAP item 2 end to end: per-cell inventory leaves the building over
// the reader mesh, and the claims that matter are measured under failure:
//   1. mesh determinism — a chaos-faulted backhaul run (fleet + link-state
//      + forwarding) produces a bit-identical combined fingerprint at
//      every thread count (hard failure on mismatch: the mesh runs at the
//      epoch barrier, so threads must never reach it);
//   2. failover pays — under a 10% reader-outage schedule, K-shortest
//      failover with epoch reconvergence must deliver a strictly higher
//      fraction of offered frames than the frozen-table no-failover
//      baseline (hard failure otherwise);
//   3. a 64-reader grid vs random topology sweep quotes goodput, path
//      stretch, tail latency and reroutes under the same chaos schedule
//      for EXPERIMENTS.md.
// With MMTAG_OBS=ON the JSON report embeds the mesh.* registry metrics
// (mesh.delivery_latency_us, mesh.path_stretch_x1000, ...) under
// "metrics".
//
// Standard harness flags plus --readers M, --tags N, --epochs E.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_main.hpp"
#include "src/deploy/layout.hpp"
#include "src/fault/engine.hpp"
#include "src/mac/event_queue.hpp"
#include "src/mesh/backhaul.hpp"
#include "src/net/packet.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/table.hpp"

namespace {

using namespace mmtag;

/// ~10% expected downtime per reader (rate * mean = 0.1) plus a scripted
/// incident taking the gateway's two nearest transit readers down for
/// epochs 1-2 whole, so the failover margin is visible at any seed —
/// Poisson outages alone can miss every transit in a short run.
fault::ReaderOutageModel ten_percent_outages(int readers, double epoch_s) {
  fault::ReaderOutageModel outages;
  outages.rate_hz = 0.25;
  outages.mean_duration_s = 0.4;
  const int cols = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(readers))));
  const int right = readers > 1 ? 1 : 0;             // Gateway's row mate.
  const int below = readers > cols ? cols : right;   // Gateway's column mate.
  outages.scripted.push_back(
      fault::ScriptedOutage{right, epoch_s, 2.0 * epoch_s + 0.01});
  outages.scripted.push_back(
      fault::ScriptedOutage{below, epoch_s, 2.0 * epoch_s + 0.01});
  return outages;
}

mesh::BackhaulConfig backhaul_config(int readers, int tags,
                                     std::uint64_t seed, int epochs) {
  mesh::BackhaulConfig config;
  const double side = 4.0 * std::max(1.0, std::sqrt(readers));
  config.fleet.layout.width_m = side;
  config.fleet.layout.height_m = side;
  config.fleet.layout.readers = readers;
  config.fleet.layout.tags = tags;
  config.fleet.layout.seed = seed;
  config.fleet.epochs = epochs;
  config.fleet.epoch_duration_s = 0.4;
  config.fleet.seed = seed;
  config.fleet.faults.outages =
      ten_percent_outages(readers, config.fleet.epoch_duration_s);
  // Two wired sinks at opposite corners of the grid; backhaul range of
  // 1.5 grid spacings (spacing is 4 m at any --readers) keeps the mesh
  // genuinely multi-hop, so transit outages have something to break.
  config.topology.gateways = {0, readers - 1};
  config.topology.link.max_range_m = 6.0;
  return config;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return std::string(buf);
}

}  // namespace

int main(int argc, char** argv) {
  int readers = 64;
  int tags = 1024;
  int epochs = 3;
  bench::Parser parser("m1_mesh",
                       "reader-backhaul mesh: determinism, failover margin, "
                       "topology sweep under chaos outages");
  parser.add_int("--readers", &readers, "reader count");
  parser.add_int("--tags", &tags, "tag count");
  parser.add_int("--epochs", &epochs, "epochs per run");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());
  const std::uint64_t seed = parser.options().seed;
  bool fail = false;

  // --- 1. Mesh determinism across thread counts -------------------------
  const int hw = sim::default_thread_count();
  std::vector<int> grid;
  for (const int t : {1, 4, hw}) {
    if (t >= 1 && t <= hw) grid.push_back(t);
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

  const std::vector<std::string> det_headers = {
      "threads", "wall_s", "frames", "delivery", "reroutes", "backhaul_fp"};
  sim::Table det_table(det_headers);

  harness.add("mesh_determinism", [&](bench::CaseContext& ctx) {
    det_table = sim::Table(det_headers);
    std::uint64_t ref = 0;
    double frames = 0.0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      mesh::BackhaulConfig config =
          backhaul_config(readers, tags, seed, epochs);
      config.fleet.threads = grid[i];
      const mesh::BackhaulReport report =
          mesh::BackhaulSimulator(config).run();
      const std::uint64_t fp = mesh::fingerprint(report);
      if (i == 0) {
        ref = fp;
      } else if (fp != ref) {
        std::fprintf(stderr,
                     "FAIL: backhaul run diverged at threads=%d (%s vs %s)\n",
                     grid[i], hex64(fp).c_str(), hex64(ref).c_str());
        fail = true;
      }
      det_table.add_row({std::to_string(grid[i]),
                         sim::Table::fmt(report.fleet.sweep.wall_s, 3),
                         std::to_string(report.mesh.offered),
                         sim::Table::fmt(report.mesh.delivery_ratio(), 4),
                         std::to_string(report.mesh.reroutes),
                         hex64(fp)});
      frames += static_cast<double>(report.mesh.offered);
    }
    ctx.set_units(frames, "mesh frames");
  });

  // --- 2. Failover vs frozen-table baseline under 10% outages -----------
  const std::vector<std::string> fo_headers = {
      "failover", "frames", "delivery", "reroutes", "rerouted_ok",
      "no_route", "stretch", "p99_us"};
  sim::Table fo_table(fo_headers);

  harness.add("failover_vs_none", [&](bench::CaseContext& ctx) {
    fo_table = sim::Table(fo_headers);
    double delivery[2] = {0.0, 0.0};
    double frames = 0.0;
    for (const bool failover : {false, true}) {
      mesh::BackhaulConfig config =
          backhaul_config(readers, tags, seed, epochs);
      config.forwarding.failover = failover;
      config.forwarding.reconverge = failover;
      const mesh::BackhaulReport report =
          mesh::BackhaulSimulator(config).run();
      const mesh::MeshStats& m = report.mesh;
      delivery[failover ? 1 : 0] = m.delivery_ratio();
      fo_table.add_row({failover ? "on" : "off",
                        std::to_string(m.offered),
                        sim::Table::fmt(m.delivery_ratio(), 4),
                        std::to_string(m.reroutes),
                        std::to_string(m.rerouted_delivered),
                        std::to_string(m.dropped_no_route),
                        sim::Table::fmt(m.stretch_mean, 3),
                        sim::Table::fmt(m.latency_p99_s * 1e6, 1)});
      frames += static_cast<double>(m.offered);
    }
    if (delivery[1] <= delivery[0]) {
      std::fprintf(stderr,
                   "FAIL: failover delivery %.4f <= baseline %.4f\n",
                   delivery[1], delivery[0]);
      fail = true;
    }
    ctx.set_units(frames, "mesh frames");
  });

  // --- 3. Grid vs random 64-reader topologies ---------------------------
  const std::vector<std::string> topo_headers = {
      "topology", "links", "rounds", "goodput", "delivery", "stretch",
      "stretch_max", "p99_us", "reroutes"};
  sim::Table topo_table(topo_headers);

  harness.add("topology_sweep", [&](bench::CaseContext& ctx) {
    topo_table = sim::Table(topo_headers);
    const double side = 4.0 * std::max(1.0, std::sqrt(readers));
    const double epoch_s = 0.4;
    const int frames_per_node = 4;
    const std::size_t payload = 256;
    double frames = 0.0;

    for (const bool random : {false, true}) {
      // Grid poses come from the deploy layout (same generator the fleet
      // uses); random poses are uniform draws, re-seeded deterministically
      // until the topology is fully connected.
      std::vector<core::Pose> poses;
      mesh::TopologyConfig topo_config;
      topo_config.gateways = {0, readers - 1};
      topo_config.link.max_range_m = 6.0;
      if (!random) {
        deploy::LayoutConfig layout;
        layout.width_m = side;
        layout.height_m = side;
        layout.readers = readers;
        layout.tags = 0;
        layout.seed = seed;
        poses = deploy::make_layout(layout).reader_poses;
      } else {
        for (int attempt = 0; attempt < 32; ++attempt) {
          poses.clear();
          auto rng = sim::make_rng(sim::derive_seed(seed, 7000 + attempt));
          std::uniform_real_distribution<double> u(0.5, side - 0.5);
          for (int r = 0; r < readers; ++r) {
            const double x = u(rng);
            const double y = u(rng);
            poses.push_back(core::Pose{{x, y}, 0.0});
          }
          if (mesh::MeshTopology(poses, topo_config).fully_connected()) break;
        }
      }
      const mesh::MeshTopology topo(poses, topo_config);
      if (!topo.fully_connected()) {
        std::fprintf(stderr, "FAIL: %s topology is not connected\n",
                     random ? "random" : "grid");
        fail = true;
        continue;
      }

      net::PacketPool pool(512, payload, 32);
      mesh::MeshNetwork net(&topo, mesh::ForwardingConfig{}, &pool);
      fault::FaultSchedule schedule;
      schedule.outages = ten_percent_outages(readers, epoch_s);
      fault::FaultEngine engine(schedule, static_cast<std::size_t>(readers),
                                0, epochs, epoch_s, seed);
      for (int e = 0; e < epochs; ++e) {
        const fault::EpochFaults& faults = engine.begin_epoch(e);
        std::vector<std::uint8_t> live(static_cast<std::size_t>(readers), 1);
        for (int r = 0; r < readers; ++r) {
          live[static_cast<std::size_t>(r)] =
              faults.reader_up[static_cast<std::size_t>(r)] > 0.0 ? 1 : 0;
        }
        net.begin_epoch(live);
        mac::EventQueue queue;
        const double start_s = e * epoch_s;
        for (int r = 0; r < readers; ++r) {
          if (live[static_cast<std::size_t>(r)] == 0) continue;
          for (int f = 0; f < frames_per_node; ++f) {
            (void)net.send(queue, r, payload,
                           start_s + 1e-3 * (r * frames_per_node + f + 1));
          }
        }
        queue.run();
        net.reconverge();
      }
      const mesh::MeshStats m = net.finish(epochs * epoch_s);
      const double goodput_bps =
          static_cast<double>(m.payload_bytes_delivered) * 8.0 /
          (epochs * epoch_s);
      topo_table.add_row({random ? "random" : "grid",
                          std::to_string(topo.links().size()),
                          std::to_string(m.convergence_rounds),
                          sim::Table::fmt_rate(goodput_bps),
                          sim::Table::fmt(m.delivery_ratio(), 4),
                          sim::Table::fmt(m.stretch_mean, 3),
                          sim::Table::fmt(m.stretch_max, 3),
                          sim::Table::fmt(m.latency_p99_s * 1e6, 1),
                          std::to_string(m.reroutes)});
      frames += static_cast<double>(m.offered);
    }
    ctx.set_units(frames, "mesh frames");
  });

  const int rc = harness.run();
  if (rc != 0) return rc;

  if (parser.csv()) {
    std::fputs(det_table.to_csv().c_str(), stdout);
    std::fputs(fo_table.to_csv().c_str(), stdout);
    std::fputs(topo_table.to_csv().c_str(), stdout);
  } else {
    char title[128];
    std::snprintf(title, sizeof title,
                  "M1 — mesh determinism (%d readers / %d tags, 10%% "
                  "outages, hw=%d)",
                  readers, tags, hw);
    det_table.print(title);
    fo_table.print("M1 — failover vs frozen tables (10% reader outages)");
    topo_table.print("M1 — grid vs random topology under chaos");
  }
  return fail ? 1 : 0;
}
