// Reproduces paper Fig. 6: S11 of one tag antenna element vs frequency,
// switch off (reflective) and switch on (absorptive).
//
// Paper readings: off-state dip of -15 dB at 24 GHz; on-state around -5 dB
// at the carrier. Run with --csv for machine-readable output.
#include <cstdio>

#include "bench/bench_main.hpp"
#include "src/em/patch_element.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/sim/ascii_plot.hpp"
#include "src/sim/sweep.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("fig6_s11",
                       "element S11 vs frequency, switch off/on (Fig. 6)");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const em::PatchElement element = em::PatchElement::mmtag();
  const std::vector<std::string> headers = {"freq_ghz", "s11_off_db",
                                            "s11_on_db"};
  sim::Table table(headers);
  std::vector<double> freq_axis;
  sim::Series off_series{"switch off", {}, 'o'};
  sim::Series on_series{"switch on", {}, 'x'};

  harness.add("s11_sweep", [&](bench::CaseContext& ctx) {
    table = sim::Table(headers);
    freq_axis.clear();
    off_series.y.clear();
    on_series.y.clear();
    for (const double f_ghz : sim::linspace(23.5, 24.5, 41)) {
      const double f = phys::ghz(f_ghz);
      const double off = element.s11_db(em::SwitchState::kOff, f);
      const double on = element.s11_db(em::SwitchState::kOn, f);
      table.add_row({sim::Table::fmt(f_ghz, 3), sim::Table::fmt(off),
                     sim::Table::fmt(on)});
      freq_axis.push_back(f_ghz);
      off_series.y.push_back(off);
      on_series.y.push_back(on);
    }
    ctx.set_units(freq_axis.size(), "frequency points");
  });

  if (const int rc = harness.run(); rc != 0) return rc;
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("Fig. 6 — element S11 vs frequency (switch off / on)");

  sim::PlotOptions plot;
  plot.x_label = "frequency (GHz)";
  plot.y_label = "S11 dB";
  plot.height = 14;
  std::printf("\n%s", sim::ascii_plot(freq_axis, {off_series, on_series},
                                      plot)
                          .c_str());

  const double carrier = phys::kMmTagCarrierHz;
  std::printf(
      "\nAt the 24 GHz carrier: off = %.2f dB (paper: -15 dB), "
      "on = %.2f dB (paper: ~-5 dB)\n",
      element.s11_db(em::SwitchState::kOff, carrier),
      element.s11_db(em::SwitchState::kOn, carrier));
  std::printf("Element modulation depth at carrier: %.2f dB\n",
              element.modulation_depth_db(carrier));
  return 0;
}
