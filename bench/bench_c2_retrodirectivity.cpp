// Claim C2 (paper Sec. 5.2, Fig. 3): the Van Atta tag reflects back to the
// direction of arrival for ANY incidence angle, while a fixed-beam tag
// (Kimionis et al. [18]) and an ordinary specular reflector collapse
// off-axis.
//
// Sweeps the incidence angle and prints the monostatic response of all
// three reflectors plus the direction error of the Van Atta's re-radiated
// peak.
#include <algorithm>
#include <cstdio>

#include "bench/bench_main.hpp"
#include "src/baselines/fixed_beam_tag.hpp"
#include "src/baselines/specular_plate.hpp"
#include "src/core/van_atta.hpp"
#include "src/phys/units.hpp"
#include "src/sim/ascii_plot.hpp"
#include "src/sim/sweep.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("c2_retrodirectivity",
                       "monostatic response of three reflector types");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const core::VanAttaArray van_atta = core::VanAttaArray::mmtag_prototype();
  const baselines::FixedBeamTag fixed =
      baselines::FixedBeamTag::like_mmtag_prototype();
  const baselines::SpecularPlate plate =
      baselines::SpecularPlate::like_mmtag_prototype();

  const std::vector<std::string> headers = {
      "incidence_deg", "van_atta_db", "fixed_beam_db", "plate_db",
      "retro_peak_error_deg"};
  sim::Table table(headers);
  std::vector<double> angle_axis;
  sim::Series va_series{"Van Atta", {}, 'v'};
  sim::Series fixed_series{"fixed beam", {}, 'f'};

  harness.add("incidence_sweep", [&](bench::CaseContext& ctx) {
    table = sim::Table(headers);
    angle_axis.clear();
    va_series.y.clear();
    fixed_series.y.clear();
    for (const double deg : sim::linspace(-60.0, 60.0, 25)) {
      const double theta = phys::deg_to_rad(deg);
      const double peak_deg =
          phys::rad_to_deg(van_atta.peak_reradiation_direction_rad(theta));
      const double va_db = van_atta.monostatic_gain_db(theta);
      const double fixed_db = fixed.monostatic_gain_db(theta);
      table.add_row({sim::Table::fmt(deg, 0), sim::Table::fmt(va_db, 1),
                     sim::Table::fmt(fixed_db, 1),
                     sim::Table::fmt(plate.monostatic_gain_db(theta), 1),
                     sim::Table::fmt(peak_deg - deg, 2)});
      angle_axis.push_back(deg);
      va_series.y.push_back(va_db);
      fixed_series.y.push_back(std::max(fixed_db, -40.0));  // Clip.
    }
    ctx.set_units(angle_axis.size(), "angles");
  });

  if (const int rc = harness.run(); rc != 0) return rc;
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("C2 — monostatic response vs incidence (retrodirectivity)");

  sim::PlotOptions plot;
  plot.x_label = "incidence (deg)";
  plot.y_label = "monostatic gain dB, fixed-beam clipped at -40";
  plot.height = 14;
  std::printf("\n%s", sim::ascii_plot(angle_axis, {va_series, fixed_series},
                                      plot)
                          .c_str());

  const double va0 = van_atta.monostatic_gain_db(0.0);
  const double va45 = van_atta.monostatic_gain_db(phys::deg_to_rad(45.0));
  const double fx45 = fixed.monostatic_gain_db(phys::deg_to_rad(45.0));
  std::printf(
      "\nAt 45 deg incidence the Van Atta loses %.1f dB from boresight; the "
      "fixed-beam tag sits %.1f dB below it — the beam-alignment problem, "
      "solved passively.\n",
      va0 - va45, va45 - fx45);
  return 0;
}
