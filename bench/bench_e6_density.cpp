// Extension E6: reader density — how many readers can share a room?
//
// Multi-reader deployments (the AR example uses two) interfere through
// each other's carriers. mmWave directionality is the defence the paper
// proposes for self-interference (Sec. 9); this bench measures how far it
// stretches across *readers*: N readers around the office-room walls, each
// serving its own tag at 4 ft, all transmitting simultaneously. Reports
// the per-reader interference and SINR-limited rate as N grows.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_main.hpp"
#include "src/channel/environment.hpp"
#include "src/core/tag.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/reader/interference.hpp"
#include "src/reader/reader.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("e6_density",
                       "coexistence of N simultaneous readers in a room");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const channel::Environment office = channel::Environment::office_room();
  const phy::RateTable rates = phy::RateTable::mmtag_standard();

  // Coexistence strategies compared:
  //  * same-channel simultaneous (raw SINR),
  //  * channelized: neighbours on adjacent ISM sub-channels, the victim's
  //    filter buys ~30 dB of adjacent-channel rejection,
  //  * TDM: readers take turns; no interference but 1/N airtime.
  constexpr double kAdjacentChannelRejectionDb = 30.0;
  const std::vector<std::string> headers = {
      "readers", "worst_interf_dbm", "worst_rate_same_ch",
      "worst_rate_channelized", "per_reader_rate_tdm"};
  sim::Table table(headers);

  harness.add("density_sweep", [&](bench::CaseContext& ctx) {
    table = sim::Table(headers);
    int total_readers = 0;
    for (const int n : {1, 2, 3, 4, 6, 8, 12}) {
      // Readers spaced around a circle at the room centre, each looking
      // outward at its own tag 4 ft away.
      std::vector<reader::MmWaveReader> readers;
      std::vector<double> tag_power(static_cast<std::size_t>(n));
      const channel::Vec2 center{2.5, 2.0};
      const double ring = 0.8;
      for (int i = 0; i < n; ++i) {
        const double bearing = phys::kTwoPi * i / n;
        const channel::Vec2 pos{center.x + ring * std::cos(bearing),
                                center.y + ring * std::sin(bearing)};
        reader::MmWaveReader reader =
            reader::MmWaveReader::prototype_at(core::Pose{pos, bearing});
        reader.steer_to_world(bearing);
        // The reader's own tag sits 4 ft out along its boresight.
        const double d = phys::feet_to_m(4.0);
        const channel::Vec2 tag_pos{pos.x + d * std::cos(bearing),
                                    pos.y + d * std::sin(bearing)};
        const core::MmTag tag = core::MmTag::prototype_at(
            core::Pose{tag_pos, phys::wrap_angle_rad(bearing + phys::kPi)});
        tag_power[static_cast<std::size_t>(i)] =
            reader.evaluate_link(tag, office, rates).received_power_dbm;
        readers.push_back(std::move(reader));
      }

      double worst_interf = -300.0;
      double worst_same = 1e18;
      double worst_channelized = 1e18;
      double worst_tdm = 1e18;
      for (std::size_t v = 0; v < readers.size(); ++v) {
        const double interference = readers.size() > 1
            ? reader::total_interference_dbm(readers, v, office)
            : -300.0;
        worst_interf = std::max(worst_interf, interference);
        worst_same = std::min(worst_same, reader::sinr_limited_rate_bps(
            tag_power[v], interference, rates));
        worst_channelized = std::min(
            worst_channelized,
            reader::sinr_limited_rate_bps(
                tag_power[v], interference - kAdjacentChannelRejectionDb,
                rates));
        worst_tdm = std::min(
            worst_tdm,
            rates.achievable_rate_bps(tag_power[v]) / n);
      }
      table.add_row({std::to_string(n), sim::Table::fmt(worst_interf, 1),
                     sim::Table::fmt_rate(worst_same),
                     sim::Table::fmt_rate(worst_channelized),
                     sim::Table::fmt_rate(worst_tdm)});
      total_readers += n;
    }
    ctx.set_units(total_readers, "reader placements");
  });

  if (const int rc = harness.run(); rc != 0) return rc;
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("E6 — coexistence of N readers in the 5x4 m office (each "
              "serving a tag at 4 ft)");
  std::printf(
      "\nSame-channel simultaneous readers do NOT coexist at room scale — "
      "wall bounces deliver ~-50 dBm of carrier against a -64 dBm tag. "
      "30 dB of channelization restores every link; TDM trades aggregate "
      "airtime instead. The 24 GHz ISM band's 250 MHz only fits one "
      "2 GHz-tier channel, so dense gigabit deployments must TDM — a "
      "concrete constraint for the paper's MAC future work.\n");
  return 0;
}
