// Ablation A4 (paper Sec. 1's "low spectral efficiency" lament): what
// would higher-order tag modulation buy mmTag?
//
// For each scheme, the bench reports the SNR needed at BER 1e-3, the rate
// in the 2 GHz tier, and — pushing that SNR requirement through the Fig. 7
// link budget — the range at which that rate is actually available. The
// shape to notice: 4-ASK doubles the peak rate but its SNR premium
// ~halves the range; QPSK doubles rate at only 3 dB (but needs a
// phase-modulating tag, i.e. switched line lengths instead of shunt FETs).
#include <cstdio>

#include "bench/bench_main.hpp"
#include "src/phy/modulation.hpp"
#include "src/phy/rate_table.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/link_budget.hpp"
#include "src/phys/units.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("a4_modulation",
                       "rate/range trade of higher-order tag modulation");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const phys::NoiseModel noise = phys::NoiseModel::mmtag_reader();
  const auto budget = phys::BackscatterLinkBudget::mmtag_prototype();
  const double bandwidth = phys::ghz(2.0);
  const double floor_dbm = noise.power_dbm(bandwidth);

  const std::vector<std::string> headers = {
      "scheme", "bits_per_sym", "snr_req_db", "rate_2ghz",
      "range_at_rate_ft", "tag_hardware"};
  sim::Table table(headers);

  harness.add("scheme_table", [&](bench::CaseContext& ctx) {
    table = sim::Table(headers);
    const struct {
      phy::Scheme scheme;
      const char* hardware;
    } kRows[] = {
        {phy::Scheme::kOok, "shunt FET (the prototype)"},
        {phy::Scheme::kBpsk, "0/180deg switched line"},
        {phy::Scheme::kQpsk, "quadrature switched lines"},
        {phy::Scheme::kAsk4, "4-state shunt impedance"},
    };
    for (const auto& row : kRows) {
      const double snr_req = phy::scheme_snr_for_ber_db(row.scheme, 1e-3);
      const double required_dbm = floor_dbm + snr_req;
      const double reach_ft =
          phys::m_to_feet(budget.max_range_m(required_dbm));
      table.add_row({phy::scheme_name(row.scheme),
                     std::to_string(phy::bits_per_symbol(row.scheme)),
                     sim::Table::fmt(snr_req, 1),
                     sim::Table::fmt_rate(
                         phy::scheme_rate_bps(row.scheme, bandwidth)),
                     sim::Table::fmt(reach_ft, 1), row.hardware});
    }
    ctx.set_units(4, "schemes");
  });

  if (const int rc = harness.run(); rc != 0) return rc;
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("A4 — tag modulation schemes in the 2 GHz tier (BER 1e-3, "
              "coherent reception)");
  std::printf(
      "\nPSK gets 2 Gbps at nearly OOK's range but requires phase-agile "
      "reflection hardware; 4-ASK's 8.4 dB premium costs ~40%% of the "
      "range per the 40 dB/decade slope. The paper's OOK choice is the "
      "pragmatic corner: one FET per element.\n");
  return 0;
}
