// Ablation A2: manufacturing tolerance of the Van Atta interconnect.
//
// Eq. (4)'s retrodirectivity requires *equal* line phases. A real PCB etch
// has length tolerance; this bench Monte-Carlos random per-pair length
// errors at increasing sigma and reports the surviving monostatic gain and
// the worst retro-peak pointing error — i.e. how much fab sloppiness the
// design absorbs before the passive alignment breaks (a design-margin
// number HFSS would otherwise be asked for).
#include <cmath>
#include <cstdio>
#include <random>

#include "bench/bench_main.hpp"
#include "src/core/van_atta.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/table.hpp"

namespace {

mmtag::core::VanAttaArray array_with_length_errors(double sigma_m,
                                                   std::mt19937_64& rng) {
  using namespace mmtag;
  core::VanAttaArray::Config config;
  config.elements = 6;
  config.frequency_hz = phys::kMmTagCarrierHz;
  const em::TransmissionLine ref = em::TransmissionLine::mmtag_interconnect(0.0);
  const double nominal = ref.guided_wavelength_m(config.frequency_hz);
  std::normal_distribution<double> error(0.0, sigma_m);
  std::vector<em::TransmissionLine> lines;
  for (int p = 0; p < 3; ++p) {
    const double length = std::max(0.0, nominal + error(rng));
    lines.push_back(em::TransmissionLine::mmtag_interconnect(length));
  }
  return core::VanAttaArray(config, em::PatchElement::mmtag(),
                            std::move(lines));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("a2_tolerance",
                       "Monte-Carlo fab tolerance of the Van Atta lines");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const core::VanAttaArray nominal = core::VanAttaArray::mmtag_prototype();
  const double nominal_gain = nominal.monostatic_gain_db(0.0);
  const double lambda_g_um =
      em::TransmissionLine::mmtag_interconnect(0.0).guided_wavelength_m(
          phys::kMmTagCarrierHz) *
      1e6;

  const std::vector<std::string> headers = {
      "sigma_um", "sigma_deg_phase", "mean_gain_loss_db",
      "worst_gain_loss_db", "worst_peak_error_deg"};
  sim::Table table(headers);
  constexpr int kTrials = 40;

  harness.add("tolerance_sweep", [&](bench::CaseContext& ctx) {
    table = sim::Table(headers);
    int boards = 0;
    for (const double sigma_um : {0.0, 25.0, 50.0, 100.0, 200.0, 400.0,
                                  800.0}) {
      auto rng = sim::make_rng(
          sim::derive_seed(ctx.seed(),
                           7000 + static_cast<std::uint64_t>(sigma_um)));
      double loss_sum = 0.0;
      double worst_loss = 0.0;
      double worst_peak_err = 0.0;
      for (int trial = 0; trial < kTrials; ++trial) {
        const auto array = array_with_length_errors(sigma_um * 1e-6, rng);
        const double loss = nominal_gain - array.monostatic_gain_db(0.0);
        loss_sum += loss;
        if (loss > worst_loss) worst_loss = loss;
        const double peak_deg = phys::rad_to_deg(
            array.peak_reradiation_direction_rad(phys::deg_to_rad(30.0)));
        const double err = std::abs(peak_deg - phys::rad_to_deg(
            nominal.peak_reradiation_direction_rad(phys::deg_to_rad(30.0))));
        if (err > worst_peak_err) worst_peak_err = err;
        ++boards;
      }
      const double sigma_phase_deg = 360.0 * sigma_um / lambda_g_um;
      table.add_row({sim::Table::fmt(sigma_um, 0),
                     sim::Table::fmt(sigma_phase_deg, 1),
                     sim::Table::fmt(loss_sum / kTrials, 2),
                     sim::Table::fmt(worst_loss, 2),
                     sim::Table::fmt(worst_peak_err, 2)});
    }
    ctx.set_units(boards, "boards");
  });

  if (const int rc = harness.run(); rc != 0) return rc;
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("A2 — interconnect length tolerance (40 Monte-Carlo boards "
              "per row, 6-element tag)");
  std::printf(
      "\nStandard PCB etch tolerance (~50 um on %.0f um of guided "
      "wavelength, i.e. a few degrees of phase) costs well under 1 dB — "
      "the Van Atta's passive alignment is manufacturable without trimming."
      "\n",
      lambda_g_um);
  return 0;
}
