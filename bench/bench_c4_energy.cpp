// Claim C4 (paper Sec. 1): backscatter reduces IoT power "by orders of
// magnitude", enough to run batteryless from harvested energy.
//
// Prints energy-per-bit for the mmTag prototype against active radios, and
// the continuous bit rate each harvesting source can sustain.
#include <cmath>
#include <cstdio>

#include "bench/bench_main.hpp"
#include "src/baselines/active_radio.hpp"
#include "src/core/energy.hpp"
#include "src/core/harvester.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("c4_energy",
                       "energy per bit and harvested-power budgets");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const core::TagEnergyModel tag = core::TagEnergyModel::mmtag_prototype();

  const std::vector<std::string> radio_headers = {
      "radio", "dc_power_w", "energy_per_bit_j", "vs_mmtag_tag"};
  const std::vector<std::string> harvest_headers = {"source", "harvested_w",
                                                    "sustained_rate"};
  const std::vector<std::string> burst_headers = {
      "source", "gbps_burst_ms", "recharge_ms", "duty_cycle",
      "effective_rate"};
  sim::Table radios(radio_headers);
  sim::Table harvest(harvest_headers);
  sim::Table bursts(burst_headers);

  const struct {
    core::HarvestSource source;
    const char* name;
  } kSources[] = {
      {core::HarvestSource::kOutdoorLight, "outdoor light (small PV)"},
      {core::HarvestSource::kThermal, "thermal gradient (TEG)"},
      {core::HarvestSource::kIndoorLight, "indoor light (office PV)"},
      {core::HarvestSource::kVibration, "vibration (piezo)"},
      {core::HarvestSource::kRfAmbient, "ambient RF (rectenna)"},
  };

  harness.add("energy_tables", [&](bench::CaseContext& ctx) {
    radios = sim::Table(radio_headers);
    radios.add_row({"mmTag tag (6 FET switches, random data)",
                    sim::Table::fmt(tag.modulation_power_w(1e9), 4),
                    sim::Table::fmt_si(tag.energy_per_bit_j(), 2) + "J",
                    "1x"});
    int rows = 1;
    for (const auto& radio : baselines::all_active_radios()) {
      radios.add_row(
          {radio.name, sim::Table::fmt(radio.dc_power_w, 3),
           sim::Table::fmt_si(radio.energy_per_bit_j(), 2) + "J",
           sim::Table::fmt(
               radio.energy_per_bit_j() / tag.energy_per_bit_j(), 0) +
               "x"});
      ++rows;
    }

    harvest = sim::Table(harvest_headers);
    for (const auto& entry : kSources) {
      const double power =
          core::TagEnergyModel::harvested_power_w(entry.source);
      harvest.add_row({entry.name, sim::Table::fmt_si(power, 2) + "W",
                       sim::Table::fmt_rate(tag.max_bit_rate_bps(power))});
      ++rows;
    }

    // Burst operation through the 100 uF storage cap: how "Gbps
    // batteryless" actually runs when the harvester is weaker than the
    // burst load.
    bursts = sim::Table(burst_headers);
    for (const auto& entry : kSources) {
      const core::EnergyHarvester cap =
          core::EnergyHarvester::mmtag_with(entry.source);
      const double load = tag.modulation_power_w(1e9);
      const double burst = cap.max_burst_s(load);
      const double duty = cap.duty_cycle(load);
      bursts.add_row(
          {entry.name,
           std::isinf(burst) ? "cont." : sim::Table::fmt(burst * 1e3, 1),
           std::isinf(cap.recharge_time_s())
               ? "never"
               : sim::Table::fmt(cap.recharge_time_s() * 1e3, 1),
           sim::Table::fmt(duty, 4),
           sim::Table::fmt_rate(tag.energy_per_bit_j() > 0.0
                                    ? cap.effective_throughput_bps(1e9, tag)
                                    : 0.0)});
      ++rows;
    }
    ctx.set_units(rows, "rows");
  });

  if (const int rc = harness.run(); rc != 0) return rc;
  if (parser.csv()) {
    std::fputs(radios.to_csv().c_str(), stdout);
    std::fputs(harvest.to_csv().c_str(), stdout);
    std::fputs(bursts.to_csv().c_str(), stdout);
    return 0;
  }
  radios.print("C4a — energy per bit: mmTag tag vs active radios");
  std::printf("\n(The tag's 'dc_power_w' column is its modulation power at "
              "1 Gbps; active radios are at their own peak rates.)\n");
  harvest.print("C4b — batteryless operation from harvested energy "
                "(60 x 45 mm tag, continuous modulation)");
  bursts.print("C4c — Gbps bursts through a 100 uF storage capacitor");
  std::printf(
      "\nIndoor light sustains tens of Mbps continuously; at 1 Gbps the "
      "tag bursts for ~45 ms and recharges for ~1.4 s (duty ~3%%) — "
      "'batteryless at gigabit speeds' means gigabit *bursts*, with the "
      "long-run average set by the harvester.\n");
  return 0;
}
