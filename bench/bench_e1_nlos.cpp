// Extension E1 (paper Sec. 4): NLOS fallback. A blocker walks through the
// line of sight while the reader tracks the best available path; the link
// should drop from its LOS rate to the wall-bounce rate and back, never to
// zero.
#include <cstdio>

#include "bench/bench_main.hpp"
#include "src/channel/mobility.hpp"
#include "src/channel/raytrace.hpp"
#include "src/core/tag.hpp"
#include "src/phy/rate_table.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/reader/reader.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("e1_nlos",
                       "link vs time while a blocker crosses the LOS");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const phy::RateTable rates = phy::RateTable::mmtag_standard();
  const core::MmTag tag = core::MmTag::prototype_at(core::Pose{{0, 0}, 0.0});
  auto reader = reader::MmWaveReader::prototype_at(
      core::Pose{{phys::feet_to_m(3.0), 0.0}, phys::kPi});

  // A person (0.2 m wide at mmWave-relevant cross-section) walks across the
  // corridor at 1 m/s, crossing the LOS around t = 0.45 s.
  const channel::LinearMobility walker({0.45, -0.45}, {0.0, 1.0});

  const std::vector<std::string> headers = {"t_s", "blocker_y", "path",
                                            "power_dbm", "rate"};
  sim::Table table(headers);
  int nlos_steps = 0;
  int dead_steps = 0;

  harness.add("blocker_walk", [&](bench::CaseContext& ctx) {
    table = sim::Table(headers);
    nlos_steps = 0;
    dead_steps = 0;
    for (int step = 0; step <= 18; ++step) {
      const double t = step * 0.05;
      const channel::Vec2 person = walker.position(t);
      channel::Environment env;
      env.add_wall(
          channel::Wall{channel::Segment{{-2, 0.3}, {2, 0.3}}, 0.15});
      env.add_obstacle(channel::Obstacle{
          channel::Segment{{person.x, person.y - 0.1},
                           {person.x, person.y + 0.1}}});

      // The reader re-aims at the strongest path each step (beam
      // tracking).
      const auto paths = channel::trace_paths(env, reader.pose().position,
                                              tag.pose().position);
      reader.steer_to_world(paths.front().departure_rad);
      const auto link = reader.evaluate_link(tag, env, rates);

      const bool nlos = link.path.kind == channel::PathKind::kReflected;
      if (nlos) ++nlos_steps;
      if (link.achievable_rate_bps == 0.0) ++dead_steps;
      table.add_row({sim::Table::fmt(t, 2), sim::Table::fmt(person.y, 2),
                     nlos ? "NLOS(wall)" : "LOS",
                     sim::Table::fmt(link.received_power_dbm, 1),
                     sim::Table::fmt_rate(link.achievable_rate_bps)});
    }
    ctx.set_units(19, "time steps");
  });

  if (const int rc = harness.run(); rc != 0) return rc;
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("E1 — link vs time while a blocker crosses the LOS");
  std::printf(
      "\n%d of 19 steps rode the wall reflection; %d steps were dead. "
      "Paper Sec. 4: 'when the LOS path is blocked, the tag and the reader "
      "choose an NLOS path.'\n",
      nlos_steps, dead_steps);
  return 0;
}
