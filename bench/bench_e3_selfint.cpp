// Extension E3 (paper Sec. 9): self-interference at the reader. Sweeps the
// TX->RX isolation and reports the residual carrier, the SINR of a tag at
// 4 ft, and the surviving rate — quantifying how much isolation the
// "directionality property of mmWave" must buy before full-duplex tricks
// become unnecessary.
#include <cstdio>

#include "bench/bench_main.hpp"
#include "src/channel/environment.hpp"
#include "src/core/tag.hpp"
#include "src/phy/rate_table.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/reader/reader.hpp"
#include "src/reader/self_interference.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("e3_selfint",
                       "residual self-interference vs TX/RX isolation");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  // Tag power at 4 ft from the Fig. 7 model.
  const phy::RateTable rates = phy::RateTable::mmtag_standard();
  const core::MmTag tag = core::MmTag::prototype_at(core::Pose{{0, 0}, 0.0});
  const auto reader = reader::MmWaveReader::prototype_at(
      core::Pose{{phys::feet_to_m(4.0), 0.0}, phys::kPi});
  const auto link =
      reader.evaluate_link(tag, channel::Environment{}, rates);
  const double tag_dbm = link.received_power_dbm;
  const double tx_dbm = reader.params().tx_power_dbm;

  const std::vector<std::string> headers = {
      "isolation_db", "residual_dbm", "sinr_2ghz_db", "sinr_20mhz_db",
      "rate"};
  sim::Table table(headers);

  harness.add("isolation_sweep", [&](bench::CaseContext& ctx) {
    table = sim::Table(headers);
    int points = 0;
    for (double isolation = 20.0; isolation <= 100.0; isolation += 10.0) {
      reader::SelfInterferenceModel::Params p;
      p.antenna_isolation_db = isolation;
      const reader::SelfInterferenceModel model(p);
      table.add_row(
          {sim::Table::fmt(isolation, 0),
           sim::Table::fmt(model.residual_dbm(tx_dbm), 1),
           sim::Table::fmt(
               model.sinr_db(tag_dbm, tx_dbm, phys::ghz(2.0),
                             rates.noise()),
               1),
           sim::Table::fmt(
               model.sinr_db(tag_dbm, tx_dbm, phys::mhz(20.0),
                             rates.noise()),
               1),
           sim::Table::fmt_rate(
               model.achievable_rate_bps(tag_dbm, tx_dbm, rates))});
      ++points;
    }
    ctx.set_units(points, "isolation points");
  });

  if (const int rc = harness.run(); rc != 0) return rc;
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("E3 — self-interference vs TX/RX isolation (tag at 4 ft, "
              "-63.7 dBm)");
  std::printf(
      "\nTwo co-located 18-degree horns plus mmWave directionality supply "
      "~40-60 dB for free; the gigabit tier returns once total suppression "
      "approaches ~85-90 dB, i.e. directional isolation plus one modest "
      "analog cancellation stage — no BackFi-style full-duplex radio.\n");
  return 0;
}
