// Ablation A1 (paper Sec. 7, footnote 3): "our design can be easily tuned
// to higher frequency bands (such as 60 GHz) which results in even smaller
// antennas."
//
// Sweeps the carrier across mmWave bands and reports what actually changes:
// tag aperture size, free-space + atmospheric loss, and the rate reach when
// the tag keeps (a) the same element count — smaller but lossier — or
// (b) the same physical footprint — packing more elements recovers the
// loss, the quantitative version of the footnote.
#include <cmath>
#include <cstdio>

#include "bench/bench_main.hpp"
#include "src/channel/propagation.hpp"
#include "src/core/van_atta.hpp"
#include "src/phy/rate_table.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/link_budget.hpp"
#include "src/phys/units.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("a1_frequency",
                       "carrier-frequency scaling of tag size and reach");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const phy::RateTable rates = phy::RateTable::mmtag_standard();
  const phy::RateTier gbps = rates.tiers().front();

  // The prototype's 6-element aperture at 24 GHz spans 6 * lambda/2.
  const double footprint_m =
      6.0 * phys::wavelength_m(phys::kMmTagCarrierHz) / 2.0;

  const std::vector<std::string> headers = {
      "carrier_ghz",      "lambda_mm",          "gas_db_per_km",
      "tag_width_mm_6el", "reach_1gbps_ft_6el", "elements_same_size",
      "reach_1gbps_ft_same_size"};
  sim::Table table(headers);

  harness.add("carrier_sweep", [&](bench::CaseContext& ctx) {
    table = sim::Table(headers);
    int carriers = 0;
    for (const double f_ghz : {24.0, 28.0, 39.0, 60.0, 77.0, 94.0}) {
      const double f = phys::ghz(f_ghz);
      const double lambda = phys::wavelength_m(f);
      const int same_size_elements = std::max(
          1, static_cast<int>(std::floor(footprint_m / (lambda / 2.0))));

      // Budget (a): 6 elements at the new carrier.
      const auto budget_at = [&](int elements) {
        phys::BackscatterLinkBudget budget =
            phys::BackscatterLinkBudget::mmtag_prototype();
        budget.frequency_hz = f;
        const double side =
            5.0 + phys::ratio_to_db(static_cast<double>(elements));
        budget.tag_rx_gain_dbi = side;
        budget.tag_tx_gain_dbi = side;
        return budget;
      };
      const double required = rates.required_power_dbm(gbps);
      // Include two-way atmospheric loss in the reach (bisect).
      const auto reach_ft = [&](int elements) {
        const phys::BackscatterLinkBudget budget = budget_at(elements);
        double lo = 0.01, hi = 100.0;
        for (int i = 0; i < 60; ++i) {
          const double mid = (lo + hi) / 2.0;
          const double gas_db =
              2.0 * channel::atmospheric_attenuation_db_per_km(f) * mid /
              1000.0;
          (budget.received_power_dbm(mid) - gas_db >= required ? lo : hi) =
              mid;
        }
        return phys::m_to_feet(lo);
      };

      table.add_row({sim::Table::fmt(f_ghz, 0),
                     sim::Table::fmt(lambda * 1e3, 2),
                     sim::Table::fmt(
                         channel::atmospheric_attenuation_db_per_km(f), 2),
                     sim::Table::fmt(6.0 * lambda / 2.0 * 1e3, 1),
                     sim::Table::fmt(reach_ft(6), 1),
                     std::to_string(same_size_elements),
                     sim::Table::fmt(reach_ft(same_size_elements), 1)});
      ++carriers;
    }
    ctx.set_units(carriers, "carriers");
  });

  if (const int rc = harness.run(); rc != 0) return rc;
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("A1 — carrier-frequency scaling (same elements vs same "
              "footprint)");
  std::printf(
      "\nSix elements at 60 GHz shrink the tag 2.5x but lose reach to the "
      "lambda^2 aperture term; refilling the original 60 x 45 mm footprint "
      "with more elements recovers it — the footnote's claim, quantified. "
      "The 60 GHz oxygen line only matters outdoors.\n");
  return 0;
}
