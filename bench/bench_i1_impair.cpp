// Experiment I1 (DESIGN.md Sec. 16, docs/IMPAIRMENTS.md): hardware-
// impairment realism. The paper folds every front-end non-ideality into
// one implementation-loss scalar; this bench turns the calibrated stages
// (PA, LO phase noise, IQ imbalance, ADC) on one at a time and measures
// what each costs in waveform-level BER and frame goodput, next to the
// analytic per-stage loss from the decomposed budget.
//
// Hard self-checks (exit 1 on violation) enforce the suite's contracts:
//   * bypass (all stages off) is bit-identical to the legacy chain,
//   * the all-on sweep is bit-identical for {1, 4, hw} threads,
//   * the all-on sweep is bit-identical under scalar and auto kern
//     backends.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_main.hpp"
#include "src/impair/chain.hpp"
#include "src/impair/loss.hpp"
#include "src/kern/kern.hpp"
#include "src/sim/link_sim.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/sweep.hpp"
#include "src/sim/table.hpp"

namespace {

using namespace mmtag;

struct Variant {
  std::string name;
  impair::ImpairmentConfig config;
};

// off, each calibrated stage alone, then everything at once.
std::vector<Variant> make_variants() {
  const impair::ImpairmentConfig all = impair::ImpairmentConfig::cmos_24ghz();
  std::vector<Variant> variants;
  variants.push_back({"off", impair::ImpairmentConfig::off()});

  Variant pa{"pa", impair::ImpairmentConfig::off()};
  pa.config.pa = all.pa;
  variants.push_back(pa);

  Variant pn{"phase_noise", impair::ImpairmentConfig::off()};
  pn.config.phase_noise = all.phase_noise;
  variants.push_back(pn);

  Variant iq{"iq", impair::ImpairmentConfig::off()};
  iq.config.iq = all.iq;
  variants.push_back(iq);

  Variant adc{"adc", impair::ImpairmentConfig::off()};
  adc.config.adc = all.adc;
  variants.push_back(adc);

  variants.push_back({"all", all});
  return variants;
}

sim::MonteCarloLink::Params link_params(const impair::ImpairmentConfig& config,
                                        std::size_t bits) {
  sim::MonteCarloLink::Params params;
  params.min_bits = bits;
  params.max_bits = bits;
  params.impairments = config;
  return params;
}

// Contract 1: the bypass chain must reproduce the legacy chain's exact
// error counts (it draws nothing from the point streams).
int check_bypass(std::uint64_t seed) {
  const sim::MonteCarloLink legacy{
      link_params(impair::ImpairmentConfig{}, 10'000)};
  const sim::MonteCarloLink bypass{
      link_params(impair::ImpairmentConfig::off(), 10'000)};
  for (const double snr : {4.0, 8.0, 12.0}) {
    const auto a = legacy.measure_ber_point(snr, seed + 17);
    const auto b = bypass.measure_ber_point(snr, seed + 17);
    if (a.bits_sent != b.bits_sent || a.bit_errors != b.bit_errors) {
      std::fprintf(stderr,
                   "FAIL: bypass != legacy at %.1f dB (%zu/%zu vs %zu/%zu)\n",
                   snr, a.bit_errors, a.bits_sent, b.bit_errors, b.bits_sent);
      return 1;
    }
  }
  std::printf("check: bypass == legacy chain on 3 SNR points\n");
  return 0;
}

// Contracts 2+3: with every stage on, error counts must not depend on
// the thread count or the kern backend.
int check_determinism(std::uint64_t seed) {
  const sim::MonteCarloLink link{
      link_params(impair::ImpairmentConfig::cmos_24ghz(), 10'000)};
  const std::vector<double> snrs = sim::linspace(4.0, 12.0, 3);

  std::vector<std::size_t> reference;
  for (const int threads : {1, 4, sim::default_thread_count()}) {
    sim::ThreadPool pool(threads);
    const auto sweep = link.measure_ber_sweep(snrs, seed + 29, pool);
    std::vector<std::size_t> errors;
    for (const auto& p : sweep.points) errors.push_back(p.bit_errors);
    if (reference.empty()) {
      reference = errors;
    } else if (errors != reference) {
      std::fprintf(stderr, "FAIL: impaired sweep differs at %d threads\n",
                   threads);
      return 1;
    }
  }
  std::printf("check: impaired sweep identical for {1, 4, %d} threads\n",
              sim::default_thread_count());

  sim::ThreadPool pool(2);
  if (!kern::set_backend(kern::Backend::kScalar)) return 2;
  const auto scalar_sweep = link.measure_ber_sweep(snrs, seed + 31, pool);
  if (!kern::set_backend(kern::Backend::kAuto)) return 2;
  const auto auto_sweep = link.measure_ber_sweep(snrs, seed + 31, pool);
  for (std::size_t i = 0; i < snrs.size(); ++i) {
    if (scalar_sweep.points[i].bit_errors != auto_sweep.points[i].bit_errors ||
        scalar_sweep.points[i].bits_sent != auto_sweep.points[i].bits_sent) {
      std::fprintf(stderr, "FAIL: scalar vs %s differ at %.1f dB\n",
                   kern::dispatch().name, snrs[i]);
      return 1;
    }
  }
  std::printf("check: impaired sweep identical under scalar and %s\n",
              kern::dispatch().name);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Parser parser("i1_impair",
                       "per-stage hardware-impairment BER/goodput deltas");
  std::string kern_name;
  bench::add_kern_flag(parser, &kern_name);
  if (!parser.parse(argc, argv)) return parser.exit_code();
  if (!bench::apply_kern_flag(kern_name)) return 2;

  if (const int rc = check_bypass(parser.options().seed); rc != 0) return rc;
  if (const int rc = check_determinism(parser.options().seed); rc != 0) {
    return rc;
  }

  bench::Harness harness(parser.options());
  sim::ThreadPool pool = bench::make_pool(parser.options());

  const std::vector<Variant> variants = make_variants();
  // One BER point at 8 dB and one FER point at 9 dB per variant: the
  // deltas against "off" are the per-stage realism cost.
  const std::vector<double> ber_snrs = {8.0};
  const std::vector<double> fer_snrs = {9.0};
  const int fer_frames = 60;
  const std::size_t payload_bits = 96;

  std::vector<sim::BerSweepResult> ber(variants.size());
  std::vector<sim::FerSweepResult> fer(variants.size());
  for (std::size_t v = 0; v < variants.size(); ++v) {
    const sim::MonteCarloLink link{
        link_params(variants[v].config, 60'000)};
    harness.add("sweep_" + variants[v].name, [&, v, link](
                                                 bench::CaseContext& ctx) {
      ber[v] = link.measure_ber_sweep(ber_snrs, ctx.seed() + 100, pool);
      fer[v] = link.measure_fer_sweep(fer_snrs, fer_frames, payload_bits,
                                      ctx.seed() + 200, pool);
      ctx.set_units(static_cast<double>(ber[v].stats.units), "bits");
    });
  }

  if (const int rc = harness.run(); rc != 0) return rc;

  const double ber_off = ber[0].points[0].ber();
  const double goodput_off = 1.0 - fer[0].points[0].fer();

  sim::Table table({"variant", "evm2", "loss_db", "ber_8db", "x_ber",
                    "fer_9db", "goodput_frac", "d_goodput"});
  for (std::size_t v = 0; v < variants.size(); ++v) {
    const impair::ImpairmentChain chain(variants[v].config);
    const impair::LossReport loss = impair::decompose(variants[v].config);
    const double b = ber[v].points[0].ber();
    const double goodput = 1.0 - fer[v].points[0].fer();
    char evm2[32];
    std::snprintf(evm2, sizeof(evm2), "%.2e", chain.evm_squared_total());
    char berstr[32];
    std::snprintf(berstr, sizeof(berstr), "%.2e", b);
    table.add_row({variants[v].name, evm2,
                   sim::Table::fmt(loss.modelled_db, 3), berstr,
                   sim::Table::fmt(ber_off > 0.0 ? b / ber_off : 0.0, 2),
                   sim::Table::fmt(fer[v].points[0].fer(), 2),
                   sim::Table::fmt(goodput, 2),
                   sim::Table::fmt(goodput - goodput_off, 2)});
  }

  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("I1 — per-stage impairment cost (BER at 8 dB, FER at 9 dB)");
  std::printf(
      "\nloss_db is the analytic stand-alone stage loss at the 7 dB required"
      " SNR; x_ber is measured BER relative to the clean chain. The 'all'"
      " variant is the calibrated 24 GHz CMOS front end whose decomposed"
      " total reproduces the prototype's 14 dB budget"
      " (docs/IMPAIRMENTS.md).\n");
  return 0;
}
