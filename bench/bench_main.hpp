// Shared entry-point kit for every bench_* executable.
//
// Each bench does:
//
//   mmtag::bench::Parser parser("e4_ber", "what this bench shows");
//   parser.add_int("--points", &points, "SNR grid size");   // extras
//   if (!parser.parse(argc, argv)) return parser.exit_code();
//   mmtag::bench::Harness harness(parser.options());
//   harness.add("ber_sweep", [&](mmtag::bench::CaseContext& ctx) {
//     result = compute();            // assign, don't append: the body
//     ctx.set_units(bits, "bits");   // runs warmup+repeat times
//   });
//   if (const int rc = harness.run(); rc != 0) return rc;
//   ...print the human tables from the last repetition's results...
//
// That buys every bench the standard CLI (--threads --seed --warmup
// --repeat --json --compare --threshold --csv, unknown flags are errors),
// median/p90 wall+cpu timing, BENCH_<name>.json reports, and baseline
// comparison — see src/obs/bench.hpp for the harness itself.
#pragma once

#include "src/obs/bench.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/parallel.hpp"

namespace mmtag::bench {

/// Thread pool honouring the standard --threads flag (0 = default count).
[[nodiscard]] inline sim::ThreadPool make_pool(const Options& options) {
  return sim::ThreadPool(options.threads);
}

}  // namespace mmtag::bench
