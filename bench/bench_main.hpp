// Shared entry-point kit for every bench_* executable.
//
// Each bench does:
//
//   mmtag::bench::Parser parser("e4_ber", "what this bench shows");
//   parser.add_int("--points", &points, "SNR grid size");   // extras
//   if (!parser.parse(argc, argv)) return parser.exit_code();
//   mmtag::bench::Harness harness(parser.options());
//   harness.add("ber_sweep", [&](mmtag::bench::CaseContext& ctx) {
//     result = compute();            // assign, don't append: the body
//     ctx.set_units(bits, "bits");   // runs warmup+repeat times
//   });
//   if (const int rc = harness.run(); rc != 0) return rc;
//   ...print the human tables from the last repetition's results...
//
// That buys every bench the standard CLI (--threads --seed --warmup
// --repeat --json --compare --threshold --csv, unknown flags are errors),
// median/p90 wall+cpu timing, BENCH_<name>.json reports, and baseline
// comparison — see src/obs/bench.hpp for the harness itself.
#pragma once

#include <cstdio>
#include <string>

#include "src/kern/kern.hpp"
#include "src/obs/bench.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/parallel.hpp"

namespace mmtag::bench {

/// Thread pool honouring the standard --threads flag (0 = default count).
[[nodiscard]] inline sim::ThreadPool make_pool(const Options& options) {
  return sim::ThreadPool(options.threads);
}

/// Register the shared --kern flag. `value` holds the parsed backend name
/// and must outlive parse(); pass it to apply_kern_flag afterwards.
inline void add_kern_flag(Parser& parser, std::string* value) {
  parser.add_string("--kern", value,
                    "force SIMD backend: scalar|sse4.2|avx2|neon|auto "
                    "(default: auto / $MMTAG_KERN)");
}

/// Apply a parsed --kern value to the process-wide dispatch table.
/// Empty string means "leave the default resolution alone". Returns
/// false (with a message on stderr) for unknown or unavailable backends
/// so benches can exit 2 like any other malformed flag.
[[nodiscard]] inline bool apply_kern_flag(const std::string& value) {
  if (value.empty()) return true;
  const auto backend = kern::parse_backend(value);
  if (!backend.has_value()) {
    std::fprintf(stderr, "error: unknown --kern backend '%s'\n",
                 value.c_str());
    return false;
  }
  if (!kern::set_backend(*backend)) {
    std::fprintf(stderr, "error: --kern backend '%s' not available on this "
                         "host\n",
                 value.c_str());
    return false;
  }
  return true;
}

}  // namespace mmtag::bench
