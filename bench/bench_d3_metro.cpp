// Deployment D3: metro-scale world model — 2k -> 100k -> 1M tags.
//
// The deploy fleet tops out around 10^4 tags (per-object layout, O(tags)
// queries). This bench exercises the scale layer (SoA TagStore + uniform
// grid + SIMD epoch batching, DESIGN.md Sec. 14) three orders of
// magnitude further and verifies its engineering claims:
//   1. determinism under sharding — a full epoch sweep over the default
//      1M-tag world produces bit-identical state fingerprints (every
//      per-tag byte hashed) at {1, 4, hw} threads, hard failure on
//      mismatch;
//   2. the spatial index pays — at 100k tags the indexed query path hands
//      the batcher >= 10x fewer candidates than a linear scan, for
//      bit-identical simulation state (both hard-checked);
//   3. scaling shape — a tag sweep 2k -> 100k -> 1M quotes wall time and
//      per-epoch query cost so EXPERIMENTS.md can track the O(cell
//      occupancy) claim.
//
// Standard harness flags plus --tags N, --margin-tags N, --epochs E,
// --grid G (G x G readers).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_main.hpp"
#include "src/scale/world.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/table.hpp"

namespace {

using namespace mmtag;

scale::MetroConfig metro_config(std::size_t tags, int grid,
                                std::uint64_t seed) {
  scale::MetroConfig config;
  config.width_m = 200.0;
  config.height_m = 200.0;
  config.readers_x = grid;
  config.readers_y = grid;
  config.tags = tags;
  config.index_cell_m = 5.0;
  config.seed = seed;
  return config;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return std::string(buf);
}

}  // namespace

int main(int argc, char** argv) {
  int tags = 1000000;
  int margin_tags = 100000;
  int epochs = 3;
  int grid = 4;
  bench::Parser parser("d3_metro",
                       "metro-scale world: determinism, index margin, "
                       "tag scaling");
  parser.add_int("--tags", &tags, "tag count for the determinism sweep");
  parser.add_int("--margin-tags", &margin_tags,
                 "tag count for the index-vs-linear margin check");
  parser.add_int("--epochs", &epochs, "epochs per world run");
  parser.add_int("--grid", &grid, "reader grid side (G x G readers)");
  std::string kern_name;
  bench::add_kern_flag(parser, &kern_name);
  if (!parser.parse(argc, argv)) return parser.exit_code();
  if (!bench::apply_kern_flag(kern_name)) return 2;
  bench::Harness harness(parser.options());
  const std::uint64_t seed = parser.options().seed;
  bool fail = false;

  // --- 1. Thread scaling + hard determinism check -----------------------
  // {1, 4, hw} clipped to the machine. The state fingerprint hashes every
  // per-tag byte (pose, energy, MAC columns), so a single divergent bit
  // anywhere in the million-tag world fails the bench.
  // Oversubscription is deliberate: on a small machine threads=4 still
  // exercises the sharded epoch, and determinism must hold regardless.
  const int hw = sim::default_thread_count();
  std::vector<int> thread_grid{1, 4, hw};
  std::sort(thread_grid.begin(), thread_grid.end());
  thread_grid.erase(std::unique(thread_grid.begin(), thread_grid.end()),
                    thread_grid.end());

  const std::vector<std::string> scaling_headers = {
      "threads", "wall_s", "tag_epochs/s", "reads", "delivered_mbit",
      "state_fingerprint"};
  sim::Table scaling(scaling_headers);

  harness.add("thread_scaling", [&](bench::CaseContext& ctx) {
    scaling = sim::Table(scaling_headers);
    std::uint64_t reference = 0;
    double tag_epochs = 0.0;
    for (std::size_t i = 0; i < thread_grid.size(); ++i) {
      scale::MetroWorld world(
          metro_config(static_cast<std::size_t>(tags), grid, seed));
      sim::ThreadPool pool(thread_grid[i]);
      sim::SweepStats sweep;
      sweep.threads = pool.size();
      const auto t0 = std::chrono::steady_clock::now();
      for (int e = 0; e < epochs; ++e) (void)world.run_epoch(pool);
      sweep.wall_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
      const std::uint64_t state = world.state_fingerprint();
      const scale::MetroStats stats = world.stats();
      if (i == 0) {
        reference = state;
      } else if (state != reference) {
        std::fprintf(stderr,
                     "FAIL: state fingerprint diverged at threads=%d "
                     "(%s vs %s)\n",
                     thread_grid[i], hex64(state).c_str(),
                     hex64(reference).c_str());
        fail = true;
      }
      const double te = static_cast<double>(tags) * epochs;
      scaling.add_row(
          {std::to_string(thread_grid[i]), sim::Table::fmt(sweep.wall_s, 3),
           sim::Table::fmt(sweep.wall_s > 0.0 ? te / sweep.wall_s : 0.0, 0),
           std::to_string(stats.tags_read),
           sim::Table::fmt(stats.delivered_bits / 1e6, 2), hex64(state)});
      tag_epochs += te;
    }
    ctx.set_units(tag_epochs, "tag epochs");
  });

  // --- 2. Indexed vs linear query path ----------------------------------
  // Same world, same physics, two query strategies. Bit-identity proves
  // the index is a pure accelerator; the candidate-count margin is the
  // O(tags) -> O(cell occupancy) claim, hard-checked at >= 10x.
  const std::vector<std::string> margin_headers = {
      "path", "candidates", "cells_visited", "wall_s", "state_fingerprint"};
  sim::Table margin_table(margin_headers);
  double margin = 0.0;

  harness.add("index_vs_linear", [&](bench::CaseContext& ctx) {
    scale::MetroConfig indexed_cfg =
        metro_config(static_cast<std::size_t>(margin_tags), grid, seed);
    scale::MetroConfig linear_cfg = indexed_cfg;
    linear_cfg.use_index = false;

    scale::MetroWorld indexed(indexed_cfg);
    scale::MetroWorld linear(linear_cfg);
    sim::ThreadPool pool(parser.options().threads);

    const auto t0 = std::chrono::steady_clock::now();
    for (int e = 0; e < epochs; ++e) (void)indexed.run_epoch(pool);
    const double indexed_s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
    const auto t1 = std::chrono::steady_clock::now();
    for (int e = 0; e < epochs; ++e) (void)linear.run_epoch(pool);
    const double linear_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t1)
                                .count();

    const std::uint64_t fp_indexed = indexed.state_fingerprint();
    const std::uint64_t fp_linear = linear.state_fingerprint();
    const std::uint64_t indexed_cands = indexed.index().cost().candidates;
    const std::uint64_t linear_cands = linear.linear_candidates();

    margin_table = sim::Table(margin_headers);
    margin_table.add_row(
        {"indexed", std::to_string(indexed_cands),
         std::to_string(indexed.index().cost().cells_visited),
         sim::Table::fmt(indexed_s, 3), hex64(fp_indexed)});
    margin_table.add_row({"linear", std::to_string(linear_cands), "-",
                          sim::Table::fmt(linear_s, 3), hex64(fp_linear)});

    if (fp_indexed != fp_linear) {
      std::fprintf(stderr,
                   "FAIL: index changed the simulation (%s vs %s)\n",
                   hex64(fp_indexed).c_str(), hex64(fp_linear).c_str());
      fail = true;
    }
    if (indexed.stats().fingerprint() != linear.stats().fingerprint()) {
      std::fprintf(stderr, "FAIL: aggregate stats diverged across paths\n");
      fail = true;
    }
    margin = indexed_cands > 0 ? static_cast<double>(linear_cands) /
                                     static_cast<double>(indexed_cands)
                               : 0.0;
    if (margin < 10.0) {
      std::fprintf(stderr,
                   "FAIL: index candidate margin %.1fx < 10x at %d tags\n",
                   margin, margin_tags);
      fail = true;
    }
    ctx.set_units(static_cast<double>(linear_cands), "candidates");
  });

  // --- 3. Tag scaling sweep (hw threads) --------------------------------
  const std::size_t sweep_sizes[] = {2000, 100000,
                                     static_cast<std::size_t>(tags)};
  const std::vector<std::string> sweep_headers = {
      "tags", "wall_s", "tag_epochs/s", "cands/epoch", "detected",
      "reads", "delivered_mbit", "interference"};
  sim::Table sweep_table(sweep_headers);

  harness.add("tag_scaling", [&](bench::CaseContext& ctx) {
    sweep_table = sim::Table(sweep_headers);
    double tag_epochs = 0.0;
    sim::ThreadPool pool(parser.options().threads);
    for (const std::size_t n : sweep_sizes) {
      scale::MetroWorld world(metro_config(n, grid, seed));
      const auto t0 = std::chrono::steady_clock::now();
      for (int e = 0; e < epochs; ++e) (void)world.run_epoch(pool);
      const double wall_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
      const scale::MetroStats stats = world.stats();
      const double te = static_cast<double>(n) * epochs;
      sweep_table.add_row(
          {std::to_string(n), sim::Table::fmt(wall_s, 3),
           sim::Table::fmt(wall_s > 0.0 ? te / wall_s : 0.0, 0),
           std::to_string(world.index().cost().candidates /
                          static_cast<std::uint64_t>(epochs)),
           std::to_string(stats.detected), std::to_string(stats.tags_read),
           sim::Table::fmt(stats.delivered_bits / 1e6, 2),
           std::to_string(stats.interference_pairs)});
      tag_epochs += te;
    }
    ctx.set_units(tag_epochs, "tag epochs");
  });

  const int rc = harness.run();
  if (rc != 0) return rc;

  if (parser.csv()) {
    std::fputs(scaling.to_csv().c_str(), stdout);
    std::fputs(margin_table.to_csv().c_str(), stdout);
    std::fputs(sweep_table.to_csv().c_str(), stdout);
  } else {
    char title[128];
    std::snprintf(title, sizeof title,
                  "D3 — metro thread scaling (%d tags, %dx%d readers, "
                  "hw=%d)",
                  tags, grid, grid, hw);
    scaling.print(title);
    std::snprintf(title, sizeof title,
                  "D3 — indexed vs linear query path (%d tags)",
                  margin_tags);
    margin_table.print(title);
    std::printf("index candidate margin: %.1fx (>= 10x required)\n\n",
                margin);
    sweep_table.print("D3 — tag scaling sweep");
  }
  return fail ? 1 : 0;
}
