// Ablation A3: MAC regime vs beam-switching overhead.
//
// At gigabit link rates a 96-bit identifier takes ~0.4 us of air time, so
// the reader's beam-switching dead-time — 100 us for a mechanically swept
// horn, ~1 us for an electronically steered array — decides which MAC wins:
// per-beam batch contention (Aloha) amortizes switches over all tags in a
// beam; per-tag polling pays one switch per tag but never collides. This
// bench sweeps the overhead and reports both, quantifying the crossover
// (a consequence of the paper's Gbps rates that UHF RFID never faced).
#include <cmath>
#include <cstdio>

#include "bench/bench_main.hpp"
#include "src/mac/inventory.hpp"
#include "src/mac/polling.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/table.hpp"

namespace {

std::vector<mmtag::core::MmTag> arc_tags(int count, double radius_m) {
  using namespace mmtag;
  std::vector<core::MmTag> tags;
  for (int i = 0; i < count; ++i) {
    const double bearing =
        phys::deg_to_rad(-55.0 + 110.0 * i / std::max(1, count - 1));
    const channel::Vec2 pos{radius_m * std::cos(bearing),
                            radius_m * std::sin(bearing)};
    tags.push_back(core::MmTag::prototype_at(
        core::Pose{pos, channel::bearing_rad(pos, {0.0, 0.0})},
        static_cast<std::uint32_t>(i + 1)));
  }
  return tags;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("a3_mac_overhead",
                       "Aloha vs polling across beam-switch overhead");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const auto reader =
      reader::MmWaveReader::prototype_at(core::Pose{{0.0, 0.0}, 0.0});
  const auto rates = phy::RateTable::mmtag_standard();
  const auto codebook = antenna::uniform_codebook(
      phys::deg_to_rad(-60.0), phys::deg_to_rad(60.0), 17.0);
  const auto tags = arc_tags(32, phys::feet_to_m(4.0));
  const channel::Environment env;

  const std::vector<std::string> headers = {"switch_overhead_us", "aloha_ms",
                                            "polling_ms", "winner"};
  sim::Table table(headers);

  harness.add("overhead_sweep", [&](bench::CaseContext& ctx) {
    table = sim::Table(headers);
    int rounds = 0;
    for (const double overhead_us : {0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0,
                                     100.0}) {
      auto rng = sim::make_rng(sim::derive_seed(
          ctx.seed(), 8000 + static_cast<std::uint64_t>(overhead_us * 10)));
      mac::InventoryConfig aloha_config;
      aloha_config.beam_switch_overhead_s = overhead_us * 1e-6;
      mac::SdmInventory aloha(reader, rates, aloha_config);
      const double aloha_s =
          aloha.run(codebook, tags, env, rng).total_time_s;

      mac::PollingConfig polling_config;
      polling_config.beam_switch_overhead_s = overhead_us * 1e-6;
      mac::PollingScheduler polling(reader, rates, polling_config);
      const double polling_s = polling.run_round(tags, env).total_time_s;

      table.add_row({sim::Table::fmt(overhead_us, 1),
                     sim::Table::fmt(aloha_s * 1e3, 3),
                     sim::Table::fmt(polling_s * 1e3, 3),
                     polling_s < aloha_s ? "polling" : "aloha"});
      ++rounds;
    }
    ctx.set_units(rounds, "overhead points");
  });

  if (const int rc = harness.run(); rc != 0) return rc;
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("A3 — Aloha (discovery) vs polling (steady state), 32 tags "
              "at 4 ft, vs beam-switch overhead");
  std::printf(
      "\nWith electronic steering (microseconds) collision-free polling "
      "wins; with a mechanically swept horn (the prototype's regime) "
      "switching dominates and batching tags per beam via Aloha is "
      "faster.\n");
  return 0;
}
