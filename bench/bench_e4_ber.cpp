// Extension E4 (paper Sec. 8's modeling shortcut): the paper converts
// power to rate via "ASK requires SNR of 7 dB for BER 1e-3". This bench
// runs real bits through the sample-level OOK modem at each SNR and prints
// measured BER against the coherent and noncoherent closed forms, plus the
// frame error rate through the full Manchester+CRC receive chain.
#include <cstdio>
#include <cstring>

#include "src/phy/ber.hpp"
#include "src/sim/link_sim.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;
  const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;

  sim::MonteCarloLink::Params params;
  params.min_bits = 100'000;
  const sim::MonteCarloLink link{params};

  sim::Table table({"snr_db", "ber_measured", "ber_coherent_q",
                    "ber_noncoherent", "fer_96bit"});
  for (double snr = 0.0; snr <= 12.0; snr += 2.0) {
    auto rng = sim::make_rng(3000 + static_cast<unsigned>(snr));
    const auto measurement = link.measure_ber(snr, rng);
    const double fer = link.measure_fer(snr, 60, 96, rng);
    char measured[32];
    std::snprintf(measured, sizeof(measured), "%.2e", measurement.ber());
    char coherent[32];
    std::snprintf(coherent, sizeof(coherent), "%.2e",
                  phy::ook_coherent_ber(snr));
    char noncoherent[32];
    std::snprintf(noncoherent, sizeof(noncoherent), "%.2e",
                  phy::ook_noncoherent_ber(snr));
    table.add_row({sim::Table::fmt(snr, 0), measured, coherent, noncoherent,
                   sim::Table::fmt(fer, 2)});
  }

  if (csv) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("E4 — waveform-level OOK BER vs the analytic forms");
  std::printf(
      "\nClosed-form check: coherent OOK needs %.1f dB average SNR for BER "
      "1e-3; the paper's 7 dB figure is the peak-SNR convention (3 dB "
      "apart). The rate table uses the paper's own constant.\n",
      phy::ook_snr_for_ber_db(1e-3));
  return 0;
}
