// Extension E4 (paper Sec. 8's modeling shortcut): the paper converts
// power to rate via "ASK requires SNR of 7 dB for BER 1e-3". This bench
// runs real bits through the sample-level OOK modem at each SNR and prints
// measured BER against the coherent and noncoherent closed forms, plus the
// frame error rate through the full Manchester+CRC receive chain.
//
// The SNR grid is sharded across a sim::ThreadPool (--threads N; defaults
// to hardware concurrency) with one deterministic RNG stream per point, so
// the numbers are identical at any thread count.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_main.hpp"
#include "src/kern/kern.hpp"
#include "src/phy/ber.hpp"
#include "src/sim/link_sim.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/sweep.hpp"
#include "src/sim/table.hpp"

namespace {

// --check-kern: run a reduced sweep under the scalar reference and the
// auto-dispatched backend and require identical error counts. This is the
// executable-level version of the test_kern.cpp determinism test — CI runs
// it so a dispatch regression fails the bench stage, not just ctest.
int run_kern_determinism_check(mmtag::sim::ThreadPool& pool,
                               std::uint64_t seed) {
  using namespace mmtag;
  sim::MonteCarloLink::Params params;
  params.min_bits = 10'000;
  params.max_bits = 10'000;
  const sim::MonteCarloLink link{params};
  const std::vector<double> snrs = sim::linspace(0.0, 12.0, 7);

  if (!kern::set_backend(kern::Backend::kScalar)) return 2;
  const sim::BerSweepResult scalar_sweep =
      link.measure_ber_sweep(snrs, seed + 2999, pool);
  if (!kern::set_backend(kern::Backend::kAuto)) return 2;
  const sim::BerSweepResult auto_sweep =
      link.measure_ber_sweep(snrs, seed + 2999, pool);

  int mismatches = 0;
  for (std::size_t i = 0; i < snrs.size(); ++i) {
    const auto& s = scalar_sweep.points[i];
    const auto& a = auto_sweep.points[i];
    if (s.bits_sent != a.bits_sent || s.bit_errors != a.bit_errors) {
      std::fprintf(stderr,
                   "kern mismatch at %.1f dB: scalar %llu/%llu vs %s "
                   "%llu/%llu\n",
                   snrs[i],
                   static_cast<unsigned long long>(s.bit_errors),
                   static_cast<unsigned long long>(s.bits_sent),
                   kern::dispatch().name,
                   static_cast<unsigned long long>(a.bit_errors),
                   static_cast<unsigned long long>(a.bits_sent));
      ++mismatches;
    }
  }
  if (mismatches > 0) return 1;
  std::printf("kern determinism: scalar == %s on %zu SNR points\n",
              kern::dispatch().name, snrs.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("e4_ber",
                       "waveform-level OOK BER/FER vs the analytic forms");
  std::string kern_name;
  bench::add_kern_flag(parser, &kern_name);
  bool check_kern = false;
  parser.add_flag("--check-kern", &check_kern,
                  "verify scalar and auto backends produce identical "
                  "error counts, then exit");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  if (!bench::apply_kern_flag(kern_name)) return 2;
  if (check_kern) {
    sim::ThreadPool check_pool = bench::make_pool(parser.options());
    return run_kern_determinism_check(check_pool, parser.options().seed);
  }
  bench::Harness harness(parser.options());

  sim::MonteCarloLink::Params params;
  params.min_bits = 100'000;
  params.max_bits = 100'000;  // Equal-cost points shard evenly.
  const sim::MonteCarloLink link{params};
  sim::ThreadPool pool = bench::make_pool(parser.options());

  const std::vector<double> snrs = sim::linspace(0.0, 12.0, 7);
  sim::BerSweepResult ber;
  sim::FerSweepResult fer;

  harness.add("ber_sweep", [&](bench::CaseContext& ctx) {
    ber = link.measure_ber_sweep(snrs, ctx.seed() + 2999, pool);
    ctx.set_units(ber.stats.units, "bits");
  });
  harness.add("fer_sweep", [&](bench::CaseContext& ctx) {
    fer = link.measure_fer_sweep(snrs, 60, 96, ctx.seed() + 3000, pool);
    ctx.set_units(fer.stats.units, "frames");
  });

  if (const int rc = harness.run(); rc != 0) return rc;

  sim::Table table({"snr_db", "ber_measured", "ber_coherent_q",
                    "ber_noncoherent", "fer_96bit"});
  for (std::size_t i = 0; i < snrs.size(); ++i) {
    char measured[32];
    std::snprintf(measured, sizeof(measured), "%.2e", ber.points[i].ber());
    char coherent[32];
    std::snprintf(coherent, sizeof(coherent), "%.2e",
                  phy::ook_coherent_ber(snrs[i]));
    char noncoherent[32];
    std::snprintf(noncoherent, sizeof(noncoherent), "%.2e",
                  phy::ook_noncoherent_ber(snrs[i]));
    table.add_row({sim::Table::fmt(snrs[i], 0), measured, coherent,
                   noncoherent, sim::Table::fmt(fer.points[i].fer(), 2)});
  }

  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("E4 — waveform-level OOK BER vs the analytic forms");
  sim::sweep_stats_table(ber.stats, "bits")
      .print("E4 BER sweep throughput");
  sim::sweep_stats_table(fer.stats, "frames")
      .print("E4 FER sweep throughput");
  std::printf(
      "\nClosed-form check: coherent OOK needs %.1f dB average SNR for BER "
      "1e-3; the paper's 7 dB figure is the peak-SNR convention (3 dB "
      "apart). The rate table uses the paper's own constant.\n",
      phy::ook_snr_for_ber_db(1e-3));
  return 0;
}
