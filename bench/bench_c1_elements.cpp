// Claim C1 (paper Secs. 7-8): the 6-element prototype has a ~20-degree
// retro beam, and "the range and data-rate of mmTag can be further
// increased by using more antenna elements at the tags."
//
// Sweeps the element count: beamwidth, monostatic gain, and the maximum
// range of each rate tier when the tag aperture (and its link-side gain)
// grows.
#include <cstdio>

#include "bench/bench_main.hpp"
#include "src/core/van_atta.hpp"
#include "src/phy/rate_table.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/link_budget.hpp"
#include "src/phys/units.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("c1_elements",
                       "element-count scaling of beamwidth, gain, reach");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const phy::RateTable rates = phy::RateTable::mmtag_standard();
  const std::vector<std::string> headers = {
      "elements", "beamwidth_deg", "mono_gain_db", "reach_1gbps_ft",
      "reach_100mbps_ft", "reach_10mbps_ft"};
  sim::Table table(headers);

  harness.add("element_sweep", [&](bench::CaseContext& ctx) {
    table = sim::Table(headers);
    int arrays = 0;
    for (const int n : {2, 4, 6, 8, 12, 16, 24, 32}) {
      const core::VanAttaArray array = core::VanAttaArray::with_elements(n);
      const double beamwidth = array.retro_beamwidth_deg(0.0);
      const double gain = array.monostatic_gain_db(0.0);

      // Scalar budget with the N-element tag's side gains.
      phys::BackscatterLinkBudget budget =
          phys::BackscatterLinkBudget::mmtag_prototype();
      budget.tag_rx_gain_dbi = array.link_side_gain_dbi();
      budget.tag_tx_gain_dbi = array.link_side_gain_dbi();

      std::vector<std::string> row = {std::to_string(n),
                                      sim::Table::fmt(beamwidth, 1),
                                      sim::Table::fmt(gain, 1)};
      for (const phy::RateTier& tier : rates.tiers()) {
        const double reach_m =
            budget.max_range_m(rates.required_power_dbm(tier));
        row.push_back(sim::Table::fmt(phys::m_to_feet(reach_m), 1));
      }
      table.add_row(std::move(row));
      ++arrays;
    }
    ctx.set_units(arrays, "array sizes");
  });

  if (const int rc = harness.run(); rc != 0) return rc;
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("C1 — element-count scaling (beamwidth, gain, rate reach)");
  std::printf(
      "\nPaper anchors: 6 elements -> ~20 deg beam (model: %.1f deg); "
      "doubling N adds ~6 dB of monostatic gain (~41%% more range).\n",
      core::VanAttaArray::mmtag_prototype().retro_beamwidth_deg(0.0));
  return 0;
}
