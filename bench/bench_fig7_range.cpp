// Reproduces paper Fig. 7: backscattered tag power at the reader vs range,
// noise floors for 2 GHz / 200 MHz / 20 MHz reader bandwidths, and the
// achievable data rate at each range.
//
// Paper headline: 1 Gbps at 4 ft, 10 Mbps at 10 ft; 40 dB/decade slope;
// floors near -76 / -86 / -96 dBm.
#include <cstdio>
#include <cstring>

#include "src/channel/environment.hpp"
#include "src/core/tag.hpp"
#include "src/phy/rate_table.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/link_budget.hpp"
#include "src/phys/units.hpp"
#include "src/reader/reader.hpp"
#include "src/sim/ascii_plot.hpp"
#include "src/sim/sweep.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;
  const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;

  const channel::Environment env;  // Free-space bench, like the paper's lab.
  const phy::RateTable rates = phy::RateTable::mmtag_standard();
  const core::MmTag tag = core::MmTag::prototype_at(core::Pose{{0, 0}, 0.0});
  const phys::NoiseModel noise = phys::NoiseModel::mmtag_reader();

  sim::Table table({"range_ft", "tag_power_dbm", "floor_2ghz", "floor_200mhz",
                    "floor_20mhz", "mod_depth_db", "rate"});
  std::vector<double> x_feet;
  sim::Series tag_series{"tag signal", {}, '*'};
  sim::Series floor2g{"floor 2GHz", {}, '2'};
  sim::Series floor200m{"floor 200MHz", {}, '1'};
  sim::Series floor20m{"floor 20MHz", {}, '0'};
  for (const double feet : sim::linspace(2.0, 12.0, 21)) {
    const double d = phys::feet_to_m(feet);
    const auto reader = reader::MmWaveReader::prototype_at(
        core::Pose{{d, 0.0}, phys::kPi});
    const auto link = reader.evaluate_link(tag, env, rates);
    table.add_row({sim::Table::fmt(feet, 1),
                   sim::Table::fmt(link.received_power_dbm),
                   sim::Table::fmt(noise.power_dbm(phys::ghz(2.0))),
                   sim::Table::fmt(noise.power_dbm(phys::mhz(200.0))),
                   sim::Table::fmt(noise.power_dbm(phys::mhz(20.0))),
                   sim::Table::fmt(link.modulation_depth_db),
                   sim::Table::fmt_rate(link.achievable_rate_bps)});
    x_feet.push_back(feet);
    tag_series.y.push_back(link.received_power_dbm);
    floor2g.y.push_back(noise.power_dbm(phys::ghz(2.0)));
    floor200m.y.push_back(noise.power_dbm(phys::mhz(200.0)));
    floor20m.y.push_back(noise.power_dbm(phys::mhz(20.0)));
  }
  if (csv) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("Fig. 7 — tag signal power vs range, noise floors, rates");

  sim::PlotOptions plot_options;
  plot_options.x_label = "range (ft)";
  plot_options.y_label = "dBm";
  std::printf("\n%s", sim::ascii_plot(
                          x_feet, {tag_series, floor2g, floor200m, floor20m},
                          plot_options)
                          .c_str());

  // The crossover ranges behind the figure's rate labels.
  std::printf("\nRate-tier reach (two-way budget vs floor + 7 dB):\n");
  const auto budget = phys::BackscatterLinkBudget::mmtag_prototype();
  for (const phy::RateTier& tier : rates.tiers()) {
    const double required = rates.required_power_dbm(tier);
    // Use the circuit-model reader for consistency with the table above:
    // bisect the rate boundary on the evaluated link.
    double lo = 0.1, hi = 30.0;
    for (int i = 0; i < 60; ++i) {
      const double mid = (lo + hi) / 2.0;
      const auto reader = reader::MmWaveReader::prototype_at(
          core::Pose{{mid, 0.0}, phys::kPi});
      const double p =
          reader.evaluate_link(tag, env, rates).received_power_dbm;
      (p >= required ? lo : hi) = mid;
    }
    std::printf("  %-12s up to %5.1f ft  (scalar budget: %5.1f ft)\n",
                sim::Table::fmt_rate(tier.bit_rate_bps).c_str(),
                phys::m_to_feet(lo),
                phys::m_to_feet(budget.max_range_m(required)));
  }
  std::printf("Paper: 1 Gbps at 4 ft, 10 Mbps at 10 ft.\n");
  return 0;
}
