// Reproduces paper Fig. 7: backscattered tag power at the reader vs range,
// noise floors for 2 GHz / 200 MHz / 20 MHz reader bandwidths, and the
// achievable data rate at each range.
//
// Paper headline: 1 Gbps at 4 ft, 10 Mbps at 10 ft; 40 dB/decade slope;
// floors near -76 / -86 / -96 dBm.
//
// Both the 21-point range sweep and the per-tier reach bisections run on
// the parallel sweep engine (--threads N).
#include <cstdio>
#include <vector>

#include "bench/bench_main.hpp"
#include "src/channel/environment.hpp"
#include "src/core/tag.hpp"
#include "src/phy/rate_table.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/link_budget.hpp"
#include "src/phys/units.hpp"
#include "src/reader/reader.hpp"
#include "src/sim/ascii_plot.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/sweep.hpp"
#include "src/sim/table.hpp"

namespace {

struct RangePoint {
  double feet = 0.0;
  double power_dbm = 0.0;
  double depth_db = 0.0;
  double rate_bps = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("fig7_range",
                       "tag power, noise floors, and rate vs range (Fig. 7)");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const channel::Environment env;  // Free-space bench, like the paper's lab.
  const phy::RateTable rates = phy::RateTable::mmtag_standard();
  const core::MmTag tag = core::MmTag::prototype_at(core::Pose{{0, 0}, 0.0});
  const phys::NoiseModel noise = phys::NoiseModel::mmtag_reader();
  sim::ThreadPool pool = bench::make_pool(parser.options());

  const std::vector<double> feet_grid = sim::linspace(2.0, 12.0, 21);
  sim::SweepStats stats;
  std::vector<RangePoint> points;
  const auto& tiers = rates.tiers();
  std::vector<double> reaches;

  harness.add("range_sweep", [&](bench::CaseContext& ctx) {
    stats = sim::SweepStats{};
    points = sim::parallel_sweep(
        pool, feet_grid.size(),
        [&](std::size_t i) {
          RangePoint point;
          point.feet = feet_grid[i];
          const auto reader = reader::MmWaveReader::prototype_at(
              core::Pose{{phys::feet_to_m(point.feet), 0.0}, phys::kPi});
          const auto link = reader.evaluate_link(tag, env, rates);
          point.power_dbm = link.received_power_dbm;
          point.depth_db = link.modulation_depth_db;
          point.rate_bps = link.achievable_rate_bps;
          return point;
        },
        &stats);
    ctx.set_units(points.size(), "range points");
  });

  // The crossover ranges behind the figure's rate labels: one bisection
  // per tier, tiers sharded across the pool.
  harness.add("tier_reach_bisect", [&](bench::CaseContext& ctx) {
    reaches = sim::parallel_sweep(
        pool, tiers.size(), [&](std::size_t t) {
          const double required = rates.required_power_dbm(tiers[t]);
          // Use the circuit-model reader for consistency with the table
          // above: bisect the rate boundary on the evaluated link.
          double lo = 0.1, hi = 30.0;
          for (int i = 0; i < 60; ++i) {
            const double mid = (lo + hi) / 2.0;
            const auto reader = reader::MmWaveReader::prototype_at(
                core::Pose{{mid, 0.0}, phys::kPi});
            const double p =
                reader.evaluate_link(tag, env, rates).received_power_dbm;
            (p >= required ? lo : hi) = mid;
          }
          return lo;
        });
    ctx.set_units(tiers.size(), "tiers");
  });

  if (const int rc = harness.run(); rc != 0) return rc;

  const double floor_2ghz = noise.power_dbm(phys::ghz(2.0));
  const double floor_200mhz = noise.power_dbm(phys::mhz(200.0));
  const double floor_20mhz = noise.power_dbm(phys::mhz(20.0));

  sim::Table table({"range_ft", "tag_power_dbm", "floor_2ghz", "floor_200mhz",
                    "floor_20mhz", "mod_depth_db", "rate"});
  std::vector<double> x_feet;
  sim::Series tag_series{"tag signal", {}, '*'};
  sim::Series floor2g{"floor 2GHz", {}, '2'};
  sim::Series floor200m{"floor 200MHz", {}, '1'};
  sim::Series floor20m{"floor 20MHz", {}, '0'};
  for (const RangePoint& point : points) {
    table.add_row({sim::Table::fmt(point.feet, 1),
                   sim::Table::fmt(point.power_dbm),
                   sim::Table::fmt(floor_2ghz),
                   sim::Table::fmt(floor_200mhz),
                   sim::Table::fmt(floor_20mhz),
                   sim::Table::fmt(point.depth_db),
                   sim::Table::fmt_rate(point.rate_bps)});
    x_feet.push_back(point.feet);
    tag_series.y.push_back(point.power_dbm);
    floor2g.y.push_back(floor_2ghz);
    floor200m.y.push_back(floor_200mhz);
    floor20m.y.push_back(floor_20mhz);
  }
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("Fig. 7 — tag signal power vs range, noise floors, rates");
  sim::sweep_stats_table(stats).print("Fig. 7 range sweep throughput");

  sim::PlotOptions plot_options;
  plot_options.x_label = "range (ft)";
  plot_options.y_label = "dBm";
  std::printf("\n%s", sim::ascii_plot(
                          x_feet, {tag_series, floor2g, floor200m, floor20m},
                          plot_options)
                          .c_str());

  const auto budget = phys::BackscatterLinkBudget::mmtag_prototype();
  std::printf("\nRate-tier reach (two-way budget vs floor + 7 dB):\n");
  for (std::size_t t = 0; t < tiers.size(); ++t) {
    const double required = rates.required_power_dbm(tiers[t]);
    std::printf("  %-12s up to %5.1f ft  (scalar budget: %5.1f ft)\n",
                sim::Table::fmt_rate(tiers[t].bit_rate_bps).c_str(),
                phys::m_to_feet(reaches[t]),
                phys::m_to_feet(budget.max_range_m(required)));
  }
  std::printf("Paper: 1 Gbps at 4 ft, 10 Mbps at 10 ft.\n");
  return 0;
}
