// Resilience R1: the control plane under fire (DESIGN.md Sec. 15).
//
// PR 9's tentpole is a deterministic resilience control plane: phi-accrual
// failure detection from observed outcomes only, shared retry/backoff
// policies, circuit breakers, admission control, and degraded-mode service
// under grid-correlated outage domains. This bench hard-gates its four
// load-bearing claims:
//   1. control-plane determinism — a metro run with a scripted outage
//      domain AND the monitor steering service produces bit-identical
//      world-state and monitor fingerprints at {1, 4, hw} threads
//      (suspicion is drawn on the coordinating thread; thread count must
//      not influence a single bit);
//   2. detection lag — a HealthMonitor attached to a FleetSimulator
//      chaos(0.5) run via the epoch observer (it sees per-reader reports
//      only, never the FaultSchedule) suspects every reader that is fully
//      down for >= 2 consecutive epochs within 2 epochs of the outage
//      start, scored against timelines reconstructed ONLY for grading;
//   3. degradation pays — under a correlated 2x2-of-4x4 domain incident,
//      the control-plane-on world (suspected readers skipped, tags
//      re-homed to the nearest serving neighbor) beats the off world on
//      delivered bits by a strict margin, and suspicion clears after the
//      incident ends (half-open probes re-admit recovered readers);
//   4. legacy identity — control_plane=false plus a schedule with no
//      covering domain is bit-identical to the default legacy world, so
//      the resilience plumbing costs nothing when unused.
//
// Standard harness flags plus --readers M, --tags N, --epochs E (fleet),
// --metro-tags N, --metro-epochs E, --grid G, --margin F.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_main.hpp"
#include "src/deploy/fleet.hpp"
#include "src/fault/engine.hpp"
#include "src/phy/rate_table.hpp"
#include "src/resil/domain.hpp"
#include "src/resil/health.hpp"
#include "src/scale/world.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/table.hpp"

namespace {

using namespace mmtag;

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return std::string(buf);
}

/// Metro geometry sized for re-homing: grid spacing at 60% of the TOP
/// rate tier's range, so an adopter reaches a failed neighbor's tags at
/// a useful tier (delivered bits scale ~100x with tier; spacing at the
/// detect limit would make every adopted read worth peanuts and the
/// degraded-mode margin unmeasurable on goodput). Suspected readers
/// probe every 4 epochs so re-homed service, not half-open probing,
/// dominates an outage.
scale::MetroConfig resil_metro_config(int grid, std::size_t tags,
                                      std::uint64_t seed) {
  scale::MetroConfig config;
  const scale::BatchLinkModel model = scale::BatchLinkModel::from_budget(
      config.budget, phy::RateTable::mmtag_standard());
  const double spacing = 0.6 * std::sqrt(model.tier_r2_m2.front());
  config.readers_x = grid;
  config.readers_y = grid;
  config.width_m = spacing * grid;
  config.height_m = spacing * grid;
  config.index_cell_m = std::max(0.5, spacing / 4.0);
  config.tags = tags;
  config.polls_per_reader = 512;
  config.health.probe_interval_epochs = 4;
  config.seed = seed;
  return config;
}

deploy::FleetConfig fleet_config(int readers, int tags, std::uint64_t seed,
                                 int epochs) {
  deploy::FleetConfig config;
  const double side = 4.0 * std::max(1.0, std::sqrt(readers));
  config.layout.width_m = side;
  config.layout.height_m = side;
  config.layout.readers = readers;
  config.layout.tags = tags;
  config.layout.seed = seed;
  config.epochs = epochs;
  config.epoch_duration_s = 0.4;
  config.seed = seed;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  int readers = 8;
  int tags = 600;
  int fleet_epochs = 10;
  int metro_tags = 3000;
  int metro_epochs = 12;
  int grid = 4;
  double margin = 1.05;
  bench::Parser parser("r1_resil",
                       "resilience control plane: determinism, detection "
                       "lag, degraded-mode margin, legacy identity");
  parser.add_int("--readers", &readers, "fleet reader count");
  parser.add_int("--tags", &tags, "fleet tag count");
  parser.add_int("--epochs", &fleet_epochs, "fleet epochs (detection lag)");
  parser.add_int("--metro-tags", &metro_tags, "metro tag count");
  parser.add_int("--metro-epochs", &metro_epochs, "metro epochs");
  parser.add_int("--grid", &grid, "metro reader grid side (G x G)");
  parser.add_double("--margin", &margin,
                    "required on/off delivered-bits ratio");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());
  const std::uint64_t seed = parser.options().seed;
  bool fail = false;

  // The scripted incident every metro case shares: the lower-left 2x2
  // block of the reader grid (a quarter of a 4x4 deployment — one power
  // feeder) down for epochs [2, 10).
  const resil::OutageDomain incident{0, 0, 1, 1, 2, 10};

  const int hw = sim::default_thread_count();
  std::vector<int> thread_grid{1, 4, hw};
  std::sort(thread_grid.begin(), thread_grid.end());
  thread_grid.erase(std::unique(thread_grid.begin(), thread_grid.end()),
                    thread_grid.end());

  // --- 1. Control-plane determinism across thread counts ----------------
  const std::vector<std::string> det_headers = {
      "threads", "wall_s", "adopted", "suspected_end", "state_fp",
      "monitor_fp"};
  sim::Table det_table(det_headers);

  harness.add("thread_invariance", [&](bench::CaseContext& ctx) {
    det_table = sim::Table(det_headers);
    std::uint64_t state_ref = 0;
    std::uint64_t monitor_ref = 0;
    double reads = 0.0;
    for (std::size_t i = 0; i < thread_grid.size(); ++i) {
      scale::MetroConfig config = resil_metro_config(
          grid, static_cast<std::size_t>(metro_tags), seed);
      config.domains.domains.push_back(incident);
      config.control_plane = true;
      scale::MetroWorld world(config);
      sim::ThreadPool pool(thread_grid[i]);
      sim::SweepStats sweep;
      sweep.threads = pool.size();
      std::uint64_t adopted = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int e = 0; e < metro_epochs; ++e) {
        adopted += world.run_epoch(pool).tags_adopted;
      }
      sweep.wall_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
      const std::uint64_t state = world.state_fingerprint();
      const std::uint64_t mon = world.monitor()->fingerprint();
      if (i == 0) {
        state_ref = state;
        monitor_ref = mon;
      } else if (state != state_ref || mon != monitor_ref) {
        std::fprintf(stderr,
                     "FAIL: control-plane run diverged at threads=%d "
                     "(state %s vs %s, monitor %s vs %s)\n",
                     thread_grid[i], hex64(state).c_str(),
                     hex64(state_ref).c_str(), hex64(mon).c_str(),
                     hex64(monitor_ref).c_str());
        fail = true;
      }
      const scale::MetroStats stats = world.stats();
      det_table.add_row(
          {std::to_string(thread_grid[i]), sim::Table::fmt(sweep.wall_s, 3),
           std::to_string(adopted),
           std::to_string(world.monitor()->suspected_count()), hex64(state),
           hex64(mon)});
      reads += static_cast<double>(stats.successes);
    }
    ctx.set_units(reads, "tag reads");
  });

  // --- 2. Detection lag under chaos(0.5) --------------------------------
  const std::vector<std::string> lag_headers = {
      "episodes", "lag_max", "outages", "avail", "coverage"};
  sim::Table lag_table(lag_headers);

  harness.add("detection_lag", [&](bench::CaseContext& ctx) {
    lag_table = sim::Table(lag_headers);
    deploy::FleetConfig config =
        fleet_config(readers, tags, seed, fleet_epochs);
    config.faults = fault::FaultSchedule::chaos(0.5);
    const double dur = config.epoch_duration_s;
    // One guaranteed >= 3-full-epoch incident so the gate always has a
    // measurable episode regardless of where the Poisson arrivals land.
    config.faults.outages.scripted.push_back(
        fault::ScriptedOutage{0, 2.0 * dur, 3.0 * dur + 0.01});
    const std::size_t m = static_cast<std::size_t>(readers);

    // The monitor rides the epoch observer: it sees each reader's
    // (assigned, discovered) report — the evidence a real coordinator
    // has — and nothing else.
    resil::HealthMonitor monitor(m);
    std::vector<std::vector<std::uint8_t>> suspected(
        static_cast<std::size_t>(fleet_epochs),
        std::vector<std::uint8_t>(m, 0));
    config.epoch_observer =
        [&](int e, const std::vector<deploy::CellEpochResult>& cells,
            const std::vector<std::uint8_t>&) {
          for (std::size_t c = 0; c < cells.size(); ++c) {
            monitor.record(c,
                           static_cast<std::uint64_t>(cells[c].tags_assigned),
                           static_cast<std::uint64_t>(cells[c].tags_discovered));
          }
          monitor.end_epoch();
          for (std::size_t r = 0; r < m; ++r) {
            suspected[static_cast<std::size_t>(e)][r] =
                monitor.suspected(r) ? 1 : 0;
          }
        };
    const deploy::FleetResult result = deploy::FleetSimulator(config).run();

    // Grading only: reconstruct the exact outage timelines the fleet
    // realized (same derive_seed stream) and score the monitor against
    // them. The monitor itself never touched this.
    fault::FaultEngine oracle(config.faults, m,
                              static_cast<std::size_t>(tags), fleet_epochs,
                              dur, sim::derive_seed(seed, 0x66617574));
    int episodes = 0;
    int lag_max = 0;
    for (std::size_t r = 0; r < m; ++r) {
      std::vector<std::uint8_t> down(static_cast<std::size_t>(fleet_epochs),
                                     0);
      for (int e = 0; e < fleet_epochs; ++e) {
        const double lo = e * dur;
        const double hi = (e + 1) * dur;
        for (const fault::Outage& o : oracle.outage_timelines()[r]) {
          if (o.start_s <= lo + 1e-9 && o.end_s() >= hi - 1e-9) {
            down[static_cast<std::size_t>(e)] = 1;
            break;
          }
        }
      }
      for (int e = 0; e < fleet_epochs;) {
        if (!down[static_cast<std::size_t>(e)]) {
          ++e;
          continue;
        }
        int len = 0;
        while (e + len < fleet_epochs &&
               down[static_cast<std::size_t>(e + len)]) {
          ++len;
        }
        // Episodes of >= 2 fully-down epochs must be caught within 2.
        if (len >= 2) {
          ++episodes;
          int lag = len + 1;
          for (int k = 0; k < len; ++k) {
            if (suspected[static_cast<std::size_t>(e + k)][r]) {
              lag = k + 1;
              break;
            }
          }
          lag_max = std::max(lag_max, lag);
        }
        e += len;
      }
    }
    if (episodes == 0) {
      std::fprintf(stderr,
                   "FAIL: no measurable outage episode (scripted incident "
                   "missing?)\n");
      fail = true;
    }
    if (lag_max > 2) {
      std::fprintf(stderr,
                   "FAIL: detection lag %d epochs > 2 at chaos(0.5)\n",
                   lag_max);
      fail = true;
    }
    lag_table.add_row({std::to_string(episodes), std::to_string(lag_max),
                       std::to_string(result.fault.reader_outages),
                       sim::Table::fmt(result.fault.availability, 4),
                       sim::Table::fmt(result.stats.coverage(), 3)});
    ctx.set_units(static_cast<double>(result.sweep.units), "sim reads");
  });

  // --- 3. Degraded-mode margin under the correlated incident ------------
  const std::vector<std::string> deg_headers = {
      "control_plane", "delivered_mbit", "adopted", "down_epochs",
      "suspected_end"};
  sim::Table deg_table(deg_headers);

  harness.add("degraded_margin", [&](bench::CaseContext& ctx) {
    deg_table = sim::Table(deg_headers);
    double delivered[2] = {0.0, 0.0};
    double reads = 0.0;
    for (const bool on : {false, true}) {
      scale::MetroConfig config = resil_metro_config(
          grid, static_cast<std::size_t>(metro_tags), seed);
      config.domains.domains.push_back(incident);
      config.control_plane = on;
      scale::MetroWorld world(config);
      sim::ThreadPool pool(parser.options().threads);
      std::uint64_t adopted = 0;
      std::uint64_t down_epochs = 0;
      for (int e = 0; e < metro_epochs; ++e) {
        const scale::MetroEpochStats epoch = world.run_epoch(pool);
        adopted += epoch.tags_adopted;
        down_epochs += epoch.readers_down;
      }
      const scale::MetroStats stats = world.stats();
      delivered[on ? 1 : 0] = stats.delivered_bits;
      const std::size_t suspected_end =
          world.monitor() ? world.monitor()->suspected_count() : 0;
      if (on && suspected_end != 0) {
        std::fprintf(stderr,
                     "FAIL: %zu readers still suspected %d epochs after "
                     "the incident ended (probes did not re-admit)\n",
                     suspected_end,
                     metro_epochs - static_cast<int>(incident.end_epoch));
        fail = true;
      }
      deg_table.add_row({on ? "on" : "off",
                         sim::Table::fmt(stats.delivered_bits / 1e6, 3),
                         std::to_string(adopted),
                         std::to_string(down_epochs),
                         std::to_string(suspected_end)});
      reads += static_cast<double>(stats.successes);
    }
    if (delivered[1] < delivered[0] * margin) {
      std::fprintf(stderr,
                   "FAIL: control plane on delivered %.0f bits < %.2fx "
                   "off (%.0f bits)\n",
                   delivered[1], margin, delivered[0]);
      fail = true;
    }
    ctx.set_units(reads, "tag reads");
  });

  // --- 4. Legacy identity with the plumbing dormant ---------------------
  const std::vector<std::string> id_headers = {"world", "wall_s",
                                               "state_fp"};
  sim::Table id_table(id_headers);

  harness.add("legacy_identity", [&](bench::CaseContext& ctx) {
    id_table = sim::Table(id_headers);
    std::uint64_t fps[2] = {0, 0};
    double wall[2] = {0.0, 0.0};
    double reads = 0.0;
    for (const int variant : {0, 1}) {
      scale::MetroConfig config = resil_metro_config(
          grid, static_cast<std::size_t>(metro_tags), seed);
      if (variant == 1) {
        // Armed but vacuous: control plane off, and a schedule whose one
        // domain covers no epoch. The mask path runs; the physics must
        // not move by a single bit.
        config.control_plane = false;
        config.domains.domains.push_back(
            resil::OutageDomain{0, 0, 0, 0, 0, 0});
      }
      scale::MetroWorld world(config);
      sim::ThreadPool pool(parser.options().threads);
      const auto t0 = std::chrono::steady_clock::now();
      for (int e = 0; e < metro_epochs; ++e) (void)world.run_epoch(pool);
      wall[variant] = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      fps[variant] = world.state_fingerprint();
      id_table.add_row({variant == 0 ? "legacy" : "dormant",
                        sim::Table::fmt(wall[variant], 3),
                        hex64(fps[variant])});
      reads += static_cast<double>(world.stats().successes);
    }
    if (fps[0] != fps[1]) {
      std::fprintf(stderr,
                   "FAIL: dormant resilience plumbing changed world state "
                   "(%s vs %s)\n",
                   hex64(fps[1]).c_str(), hex64(fps[0]).c_str());
      fail = true;
    }
    ctx.set_units(reads, "tag reads");
  });

  const int rc = harness.run();
  if (rc != 0) return rc;

  if (parser.csv()) {
    std::fputs(det_table.to_csv().c_str(), stdout);
    std::fputs(lag_table.to_csv().c_str(), stdout);
    std::fputs(deg_table.to_csv().c_str(), stdout);
    std::fputs(id_table.to_csv().c_str(), stdout);
  } else {
    char title[160];
    std::snprintf(title, sizeof title,
                  "R1 — control-plane determinism (%dx%d grid, %d tags, "
                  "incident epochs [%" PRIu64 ", %" PRIu64 "), hw=%d)",
                  grid, grid, metro_tags, incident.start_epoch,
                  incident.end_epoch, hw);
    det_table.print(title);
    lag_table.print("R1 — detection lag (fleet chaos(0.5), observer-fed)");
    deg_table.print("R1 — degraded-mode margin (correlated 2x2 incident)");
    id_table.print("R1 — legacy identity (dormant plumbing)");
  }
  return fail ? 1 : 0;
}
