// Extension E2 (paper Sec. 9): multi-tag support via SDM beam scanning
// with framed-Aloha contention inside each beam, plus the MIMO multi-beam
// reader. Sweeps the tag population and reports inventory latency and
// aggregate identifier throughput.
#include <cstdio>

#include "bench/bench_main.hpp"
#include "src/channel/geometry.hpp"
#include "src/mac/inventory.hpp"
#include "src/mac/mimo_reader.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/table.hpp"

namespace {

std::vector<mmtag::core::MmTag> arc_of_tags(int count, double radius_m) {
  using namespace mmtag;
  std::vector<core::MmTag> tags;
  for (int i = 0; i < count; ++i) {
    const double bearing =
        phys::deg_to_rad(-55.0 + 110.0 * i / std::max(1, count - 1));
    const channel::Vec2 pos{radius_m * std::cos(bearing),
                            radius_m * std::sin(bearing)};
    tags.push_back(core::MmTag::prototype_at(
        core::Pose{pos, channel::bearing_rad(pos, {0.0, 0.0})},
        static_cast<std::uint32_t>(i + 1)));
  }
  return tags;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("e2_mac",
                       "SDM inventory latency vs tag population");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const auto rates = phy::RateTable::mmtag_standard();
  const channel::Environment env;
  const auto codebook = antenna::uniform_codebook(
      phys::deg_to_rad(-60.0), phys::deg_to_rad(60.0), 17.0);
  const auto reader =
      reader::MmWaveReader::prototype_at(core::Pose{{0.0, 0.0}, 0.0});
  const mac::InventoryConfig config;

  const std::vector<std::string> headers = {
      "tags", "read", "rounds_max", "slots", "efficiency", "time_ms",
      "throughput", "mimo4_time_ms", "mimo4_speedup"};
  sim::Table table(headers);

  harness.add("population_sweep", [&](bench::CaseContext& ctx) {
    table = sim::Table(headers);
    int total_tags = 0;
    for (const int population : {1, 2, 4, 8, 16, 32, 64}) {
      auto rng = sim::make_rng(sim::derive_seed(
          ctx.seed(), 1000 + static_cast<std::uint64_t>(population)));
      const auto tags = arc_of_tags(population, phys::feet_to_m(4.0));

      mac::SdmInventory sdm(reader, rates, config);
      const auto result = sdm.run(codebook, tags, env, rng);
      long slots = 0;
      int rounds_max = 0;
      for (const auto& beam : result.beams) {
        slots += beam.aloha.slots_total;
        rounds_max = std::max(rounds_max, beam.aloha.rounds);
      }
      const double efficiency =
          slots > 0 ? static_cast<double>(result.tags_read) / slots : 0.0;

      auto rng_mimo = sim::make_rng(sim::derive_seed(
          ctx.seed(), 2000 + static_cast<std::uint64_t>(population)));
      mac::MimoInventory mimo(reader, rates, config, 4);
      const auto mimo_result = mimo.run(codebook, tags, env, rng_mimo);

      table.add_row({std::to_string(population),
                     std::to_string(result.tags_read),
                     std::to_string(rounds_max), std::to_string(slots),
                     sim::Table::fmt(efficiency, 2),
                     sim::Table::fmt(result.total_time_s * 1e3, 3),
                     sim::Table::fmt_rate(result.aggregate_throughput_bps(
                         config.payload_bits)),
                     sim::Table::fmt(mimo_result.total_time_s * 1e3, 3),
                     sim::Table::fmt(mimo_result.speedup_vs_single, 2)});
      total_tags += population;
    }
    ctx.set_units(total_tags, "tags inventoried");
  });

  if (const int rc = harness.run(); rc != 0) return rc;
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("E2 — SDM inventory + in-beam framed Aloha (and 4-chain MIMO)");
  std::printf(
      "\nGigabit links make even 64-tag inventories take milliseconds; the "
      "4-beam MIMO reader (paper Sec. 9) divides the sweep time by up to "
      "4.\n");
  return 0;
}
