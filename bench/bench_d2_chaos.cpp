// Deployment D2: chaos — the fleet under fault injection.
//
// A batteryless warehouse network lives in a regime of constant partial
// failure; this bench exercises the src/fault engine end to end and
// verifies the resilience claims:
//   1. chaos determinism — with a fixed seed, a faulted run produces
//      bit-identical fleet AND fault fingerprints at every thread count
//      (hard failure on mismatch: fault realization must be scheduling-
//      independent);
//   2. recovery pays — under a 10% reader-outage schedule, availability
//      with orphan re-handoff must exceed the no-recovery baseline, and
//      MTTR must not be worse (hard failure otherwise);
//   3. an intensity sweep (chaos(0)..chaos(1)) quotes goodput, Jain
//      fairness, availability and MTTR vs fault intensity for
//      EXPERIMENTS.md.
// With MMTAG_OBS=ON the JSON report embeds the fault.* registry metrics
// (fault.mttr_us, fault.availability_ppm, ...) under "metrics".
//
// Standard harness flags plus --readers M, --tags N, --epochs E.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_main.hpp"
#include "src/deploy/fleet.hpp"
#include "src/fault/engine.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/table.hpp"

namespace {

using namespace mmtag;

deploy::FleetConfig fleet_config(int readers, int tags, std::uint64_t seed,
                                 int epochs) {
  deploy::FleetConfig config;
  const double side = 4.0 * std::max(1.0, std::sqrt(readers));
  config.layout.width_m = side;
  config.layout.height_m = side;
  config.layout.readers = readers;
  config.layout.tags = tags;
  config.layout.seed = seed;
  config.epochs = epochs;
  config.epoch_duration_s = 0.4;
  config.seed = seed;
  return config;
}

/// ~10% expected downtime per reader (rate * mean_duration = 0.1) plus
/// one scripted incident taking reader 0 down for epochs 1-2 whole, so
/// the recovery margin is visible at any seed — Poisson outages alone can
/// miss every epoch boundary in a short run.
fault::ReaderOutageModel ten_percent_outages(double epoch_s) {
  fault::ReaderOutageModel outages;
  outages.rate_hz = 0.25;
  outages.mean_duration_s = 0.4;
  outages.scripted.push_back(
      fault::ScriptedOutage{0, epoch_s, 2.0 * epoch_s + 0.01});
  return outages;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return std::string(buf);
}

}  // namespace

int main(int argc, char** argv) {
  int readers = 8;
  int tags = 600;
  int epochs = 4;
  bench::Parser parser("d2_chaos",
                       "fleet under fault injection: determinism, recovery, "
                       "intensity sweep");
  parser.add_int("--readers", &readers, "reader count");
  parser.add_int("--tags", &tags, "tag count");
  parser.add_int("--epochs", &epochs, "epochs per fleet run");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());
  const std::uint64_t seed = parser.options().seed;
  bool fail = false;

  // --- 1. Chaos determinism across thread counts ------------------------
  const int hw = sim::default_thread_count();
  std::vector<int> grid;
  for (const int t : {1, 4, hw}) {
    if (t >= 1 && t <= hw) grid.push_back(t);
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

  const std::vector<std::string> det_headers = {
      "threads", "wall_s", "coverage", "avail", "outages", "fleet_fp",
      "fault_fp"};
  sim::Table det_table(det_headers);

  harness.add("chaos_determinism", [&](bench::CaseContext& ctx) {
    det_table = sim::Table(det_headers);
    std::uint64_t fleet_ref = 0;
    std::uint64_t fault_ref = 0;
    double sim_reads = 0.0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      deploy::FleetConfig config = fleet_config(readers, tags, seed, epochs);
      config.faults = fault::FaultSchedule::chaos(0.5);
      config.threads = grid[i];
      const deploy::FleetResult result =
          deploy::FleetSimulator(config).run();
      const std::uint64_t fleet_fp = deploy::fingerprint(result.stats);
      const std::uint64_t fault_fp = fault::fingerprint(result.fault);
      if (i == 0) {
        fleet_ref = fleet_fp;
        fault_ref = fault_fp;
      } else if (fleet_fp != fleet_ref || fault_fp != fault_ref) {
        std::fprintf(stderr,
                     "FAIL: chaos run diverged at threads=%d "
                     "(fleet %s vs %s, fault %s vs %s)\n",
                     grid[i], hex64(fleet_fp).c_str(),
                     hex64(fleet_ref).c_str(), hex64(fault_fp).c_str(),
                     hex64(fault_ref).c_str());
        fail = true;
      }
      det_table.add_row({std::to_string(grid[i]),
                         sim::Table::fmt(result.sweep.wall_s, 3),
                         sim::Table::fmt(result.stats.coverage(), 3),
                         sim::Table::fmt(result.fault.availability, 4),
                         std::to_string(result.fault.reader_outages),
                         hex64(fleet_fp), hex64(fault_fp)});
      sim_reads += static_cast<double>(result.sweep.units);
    }
    ctx.set_units(sim_reads, "sim reads");
  });

  // --- 2. Recovery vs no recovery under 10% reader outages --------------
  const std::vector<std::string> rec_headers = {
      "recovery", "avail", "orphan_tag_s", "mttr_mean_ms", "mttr_max_ms",
      "rehandoffs", "coverage", "goodput_mean"};
  sim::Table rec_table(rec_headers);

  harness.add("recovery_vs_none", [&](bench::CaseContext& ctx) {
    rec_table = sim::Table(rec_headers);
    double availability[2] = {0.0, 0.0};
    double mttr[2] = {0.0, 0.0};
    double sim_reads = 0.0;
    for (const bool recover : {false, true}) {
      deploy::FleetConfig config = fleet_config(readers, tags, seed, epochs);
      config.faults.outages = ten_percent_outages(config.epoch_duration_s);
      config.recovery.reassign_orphans = recover;
      const deploy::FleetResult result =
          deploy::FleetSimulator(config).run();
      availability[recover ? 1 : 0] = result.fault.availability;
      mttr[recover ? 1 : 0] = result.fault.mttr_mean_s;
      rec_table.add_row(
          {recover ? "on" : "off",
           sim::Table::fmt(result.fault.availability, 4),
           sim::Table::fmt(result.fault.orphaned_tag_s, 2),
           sim::Table::fmt(result.fault.mttr_mean_s * 1e3, 2),
           sim::Table::fmt(result.fault.mttr_max_s * 1e3, 2),
           std::to_string(result.fault.orphan_handoffs),
           sim::Table::fmt(result.stats.coverage(), 3),
           sim::Table::fmt_rate(result.stats.goodput_mean_bps)});
      sim_reads += static_cast<double>(result.sweep.units);
    }
    if (availability[1] < availability[0]) {
      std::fprintf(stderr,
                   "FAIL: recovery availability %.4f < no-recovery %.4f\n",
                   availability[1], availability[0]);
      fail = true;
    }
    if (mttr[1] > mttr[0]) {
      std::fprintf(stderr, "FAIL: recovery MTTR %.3fs > no-recovery %.3fs\n",
                   mttr[1], mttr[0]);
      fail = true;
    }
    ctx.set_units(sim_reads, "sim reads");
  });

  // --- 3. Fault intensity sweep -----------------------------------------
  const std::vector<std::string> sweep_headers = {
      "intensity", "coverage", "goodput_mean", "jain", "avail",
      "mttr_ms", "brownouts", "blocked", "timeouts", "quarantines"};
  sim::Table sweep(sweep_headers);

  harness.add("intensity_sweep", [&](bench::CaseContext& ctx) {
    sweep = sim::Table(sweep_headers);
    double sim_reads = 0.0;
    for (const double intensity : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      deploy::FleetConfig config = fleet_config(readers, tags, seed, epochs);
      config.faults = fault::FaultSchedule::chaos(intensity);
      const deploy::FleetResult result =
          deploy::FleetSimulator(config).run();
      const deploy::FleetStats& s = result.stats;
      const fault::FaultReport& f = result.fault;
      sweep.add_row({sim::Table::fmt(intensity, 2),
                     sim::Table::fmt(s.coverage(), 3),
                     sim::Table::fmt_rate(s.goodput_mean_bps),
                     sim::Table::fmt(s.jain, 3),
                     sim::Table::fmt(f.availability, 4),
                     sim::Table::fmt(f.mttr_mean_s * 1e3, 2),
                     std::to_string(f.tag_brownout_epochs),
                     std::to_string(f.tag_blocked_epochs),
                     std::to_string(f.polls_timed_out),
                     std::to_string(f.quarantines)});
      sim_reads += static_cast<double>(result.sweep.units);
    }
    ctx.set_units(sim_reads, "sim reads");
  });

  const int rc = harness.run();
  if (rc != 0) return rc;

  if (parser.csv()) {
    std::fputs(det_table.to_csv().c_str(), stdout);
    std::fputs(rec_table.to_csv().c_str(), stdout);
    std::fputs(sweep.to_csv().c_str(), stdout);
  } else {
    char title[128];
    std::snprintf(title, sizeof title,
                  "D2 — chaos determinism (%d readers / %d tags, "
                  "chaos(0.5), hw=%d)",
                  readers, tags, hw);
    det_table.print(title);
    rec_table.print("D2 — recovery vs none (10% reader outages)");
    sweep.print("D2 — fault intensity sweep");
  }
  return fail ? 1 : 0;
}
