// Network N1: iperf-style traffic over the fleet — goodput, fairness, p99.
//
// The end-to-end claim behind "batteryless wireless networking at gigabit
// speeds" is a *network* under load, not one link. This bench drives
// thousands of concurrent SR-ARQ flows through the traffic engine
// (src/net/traffic) and verifies:
//   1. traffic determinism — a chaos(0.5)-faulted run produces a
//      bit-identical report fingerprint at every thread count (hard
//      failure on mismatch);
//   2. the window pays — under a ~10% reader-outage schedule with
//      scripted incidents pinned over the active window, selective
//      repeat must beat the stop-and-wait baseline on aggregate goodput
//      (hard failure otherwise);
//   3. a rate-adaptation sweep — adaptive vs open-loop-pinned tiers
//      across chaos intensities, quoting goodput, Jain fairness, p99
//      latency and tier switches for EXPERIMENTS.md.
//
// Standard harness flags plus --flows, --packets, --readers, --tags.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_main.hpp"
#include "src/fault/schedule.hpp"
#include "src/net/traffic.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/table.hpp"

namespace {

using namespace mmtag;

net::TrafficConfig traffic_config(int readers, int tags, int flows,
                                  int packets, std::uint64_t seed) {
  net::TrafficConfig config;
  config.layout.width_m = 16.0;
  config.layout.height_m = 10.0;
  config.layout.readers = readers;
  config.layout.tags = tags;
  config.layout.seed = seed;
  config.flows = flows;
  config.packets_per_flow = packets;
  config.seed = seed;
  return config;
}

/// ~10% expected reader downtime (rate * mean_duration = 0.1) plus one
/// scripted incident per reader staggered over the first milliseconds —
/// the window where the flows are actually on the air — so the SR-vs-S&W
/// margin is exercised at any seed.
fault::ReaderOutageModel ten_percent_outages(int readers) {
  fault::ReaderOutageModel outages;
  outages.rate_hz = 0.25;
  outages.mean_duration_s = 0.4;
  for (int r = 0; r < readers; ++r) {
    outages.scripted.push_back(
        fault::ScriptedOutage{r, 0.0005 * r, 0.001});
  }
  return outages;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return std::string(buf);
}

}  // namespace

int main(int argc, char** argv) {
  int readers = 4;
  int tags = 200;
  int flows = 1000;
  int packets = 64;
  bench::Parser parser("n1_traffic",
                       "iperf-style flows over the fleet: determinism, "
                       "SR vs stop-and-wait, rate adaptation");
  parser.add_int("--readers", &readers, "reader count");
  parser.add_int("--tags", &tags, "tag count");
  parser.add_int("--flows", &flows, "concurrent flows");
  parser.add_int("--packets", &packets, "packets per flow");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());
  const std::uint64_t seed = parser.options().seed;
  bool fail = false;

  // --- 1. Traffic determinism across thread counts ----------------------
  const int hw = sim::default_thread_count();
  std::vector<int> grid;
  for (const int t : {1, 4, hw}) {
    if (t >= 1 && t <= hw) grid.push_back(t);
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

  const std::vector<std::string> det_headers = {
      "threads", "wall_s", "served", "goodput_total", "jain", "p99_ms",
      "report_fp"};
  sim::Table det_table(det_headers);

  harness.add("traffic_determinism", [&](bench::CaseContext& ctx) {
    det_table = sim::Table(det_headers);
    std::uint64_t ref = 0;
    double transmissions = 0.0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      net::TrafficConfig config =
          traffic_config(readers, tags, flows, packets, seed);
      config.faults = fault::FaultSchedule::chaos(0.5);
      config.threads = grid[i];
      const net::TrafficReport report = net::TrafficEngine(config).run();
      const std::uint64_t fp = net::fingerprint(report);
      if (i == 0) {
        ref = fp;
      } else if (fp != ref) {
        std::fprintf(stderr,
                     "FAIL: traffic run diverged at threads=%d (%s vs %s)\n",
                     grid[i], hex64(fp).c_str(), hex64(ref).c_str());
        fail = true;
      }
      det_table.add_row({std::to_string(grid[i]),
                         sim::Table::fmt(report.sweep.wall_s, 3),
                         std::to_string(report.flows_served),
                         sim::Table::fmt_rate(report.goodput_total_bps),
                         sim::Table::fmt(report.jain, 4),
                         sim::Table::fmt(report.latency_p99_s * 1e3, 3),
                         hex64(fp)});
      transmissions += static_cast<double>(report.sweep.units);
    }
    ctx.set_units(transmissions, "packet tx");
  });

  // --- 2. Selective repeat vs stop-and-wait under 10% outages -----------
  const std::vector<std::string> arq_headers = {
      "arq", "delivered", "dropped", "goodput_total", "goodput_mean",
      "jain", "p50_ms", "p99_ms", "retx", "efficiency"};
  sim::Table arq_table(arq_headers);

  harness.add("sr_vs_stop_and_wait", [&](bench::CaseContext& ctx) {
    arq_table = sim::Table(arq_headers);
    double goodput[2] = {0.0, 0.0};
    double transmissions = 0.0;
    for (const bool selective : {false, true}) {
      net::TrafficConfig config =
          traffic_config(readers, tags, flows, packets, seed);
      config.faults.outages = ten_percent_outages(readers);
      config.arq.max_attempts_per_packet = 1 << 20;
      config.mode = selective ? net::ArqMode::kSelectiveRepeat
                              : net::ArqMode::kStopAndWait;
      const net::TrafficReport report = net::TrafficEngine(config).run();
      goodput[selective ? 1 : 0] = report.goodput_total_bps;
      const double efficiency =
          report.transmissions > 0
              ? static_cast<double>(report.packets_delivered) /
                    static_cast<double>(report.transmissions)
              : 0.0;
      arq_table.add_row(
          {selective ? "selective-repeat" : "stop-and-wait",
           std::to_string(report.packets_delivered),
           std::to_string(report.packets_dropped),
           sim::Table::fmt_rate(report.goodput_total_bps),
           sim::Table::fmt_rate(report.goodput_mean_bps),
           sim::Table::fmt(report.jain, 4),
           sim::Table::fmt(report.latency_p50_s * 1e3, 3),
           sim::Table::fmt(report.latency_p99_s * 1e3, 3),
           std::to_string(report.transmissions - report.packets_delivered),
           sim::Table::fmt(efficiency, 4)});
      transmissions += static_cast<double>(report.sweep.units);
    }
    if (goodput[1] <= goodput[0]) {
      std::fprintf(stderr,
                   "FAIL: selective repeat goodput %.3e <= stop-and-wait "
                   "%.3e under 10%% outages\n",
                   goodput[1], goodput[0]);
      fail = true;
    }
    ctx.set_units(transmissions, "packet tx");
  });

  // --- 3. Rate adaptation across fault intensity ------------------------
  const std::vector<std::string> rate_headers = {
      "intensity", "adapt", "delivered", "goodput_mean", "jain", "p99_ms",
      "switches", "delivery"};
  sim::Table rate_table(rate_headers);

  harness.add("rate_adaptation", [&](bench::CaseContext& ctx) {
    rate_table = sim::Table(rate_headers);
    double transmissions = 0.0;
    for (const double intensity : {0.0, 0.5, 1.0}) {
      for (const bool adapt : {false, true}) {
        net::TrafficConfig config =
            traffic_config(readers, tags, flows, packets, seed);
        config.faults = fault::FaultSchedule::chaos(intensity);
        config.adapt_rate = adapt;
        const net::TrafficReport report = net::TrafficEngine(config).run();
        rate_table.add_row({sim::Table::fmt(intensity, 2),
                            adapt ? "on" : "off",
                            std::to_string(report.packets_delivered),
                            sim::Table::fmt_rate(report.goodput_mean_bps),
                            sim::Table::fmt(report.jain, 4),
                            sim::Table::fmt(report.latency_p99_s * 1e3, 3),
                            std::to_string(report.rate_switches),
                            sim::Table::fmt(report.delivery_ratio(), 4)});
        transmissions += static_cast<double>(report.sweep.units);
      }
    }
    ctx.set_units(transmissions, "packet tx");
  });

  const int rc = harness.run();
  if (rc != 0) return rc;

  if (parser.csv()) {
    std::fputs(det_table.to_csv().c_str(), stdout);
    std::fputs(arq_table.to_csv().c_str(), stdout);
    std::fputs(rate_table.to_csv().c_str(), stdout);
  } else {
    char title[128];
    std::snprintf(title, sizeof title,
                  "N1 — traffic determinism (%d flows / %d tags / %d "
                  "readers, chaos(0.5), hw=%d)",
                  flows, tags, readers, hw);
    det_table.print(title);
    arq_table.print("N1 — selective repeat vs stop-and-wait (10% outages)");
    rate_table.print("N1 — rate adaptation vs fault intensity");
  }
  return fail ? 1 : 0;
}
