// Ablation A6: pulse roll-off vs rate — is the paper's "rate = B/2" the
// right corner?
//
// For the fixed 2 GHz reader channel, sweeping the raised-cosine roll-off
// trades symbol rate (Rs = B/(1+beta)) against pulse length and timing
// sensitivity. beta = 1 is the paper's B/2 corner; beta = 0.25 would carry
// 1.6 Gbps through the same channel at the cost of pulses ~3x longer and a
// much hotter ISI penalty under timing error.
#include <cmath>
#include <cstdio>

#include "bench/bench_main.hpp"
#include "src/phy/pulse.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("a6_pulse",
                       "raised-cosine roll-off vs rate and ISI");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const double channel_hz = 2.0e9;
  const int sps = 16;

  const std::vector<std::string> headers = {
      "beta", "symbol_rate", "ook_rate_2ghz", "isi_aligned",
      "isi_at_5pct_timing_err", "pulse_99pct_energy_symbols"};
  sim::Table table(headers);

  harness.add("rolloff_sweep", [&](bench::CaseContext& ctx) {
    table = sim::Table(headers);
    int points = 0;
    for (const double beta : {1.0, 0.75, 0.5, 0.35, 0.25, 0.1}) {
      const double rs = phy::symbol_rate_for_channel_hz(beta, channel_hz);
      const auto taps = phy::raised_cosine_taps(beta, sps, 12);

      // ISI with a 5% symbol-timing error: evaluate the pulse on a grid
      // offset by 0.05 T.
      const std::size_t center = taps.size() / 2;
      const int offset = static_cast<int>(0.05 * sps + 0.5);
      double isi_offset = 0.0;
      const double peak =
          taps[center + static_cast<std::size_t>(offset)];
      for (int k = 1; k <= 10; ++k) {
        const int left = static_cast<int>(center) + offset - k * sps;
        const int right = static_cast<int>(center) + offset + k * sps;
        if (left >= 0) {
          isi_offset += std::abs(taps[static_cast<std::size_t>(left)]);
        }
        if (right < static_cast<int>(taps.size())) {
          isi_offset += std::abs(taps[static_cast<std::size_t>(right)]);
        }
      }
      isi_offset /= peak;

      // Pulse concentration: symbols until 99% of |p|^2 is captured.
      double total = 0.0;
      for (const double tap : taps) total += tap * tap;
      double acc = taps[center] * taps[center];
      int spread = 0;
      while (acc < 0.99 * total && spread < 12 * sps) {
        ++spread;
        const std::size_t l = center - static_cast<std::size_t>(spread);
        const std::size_t r = center + static_cast<std::size_t>(spread);
        acc += taps[l] * taps[l] + taps[r] * taps[r];
      }

      table.add_row({sim::Table::fmt(beta, 2), sim::Table::fmt_rate(rs),
                     sim::Table::fmt_rate(rs),  // OOK: 1 bit/symbol.
                     sim::Table::fmt(
                         phy::isi_at_symbol_instants(taps, sps), 6),
                     sim::Table::fmt(isi_offset, 3),
                     sim::Table::fmt(static_cast<double>(spread) / sps,
                                     2)});
      ++points;
    }
    ctx.set_units(points, "roll-offs");
  });

  if (const int rc = harness.run(); rc != 0) return rc;
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("A6 — raised-cosine roll-off in the 2 GHz channel (OOK)");
  std::printf(
      "\nbeta = 1 is the paper's 'rate = B/2' corner: zero ISI even with "
      "timing slop and a pulse that dies within ~a symbol — the right "
      "choice for a backscatter reader without fancy equalization. "
      "Sharper filters buy up to 1.8 Gbps but the ISI under a 5%% timing "
      "error grows an order of magnitude.\n");
  return 0;
}
