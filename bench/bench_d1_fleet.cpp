// Deployment D1: fleet-scale inventory — 16 readers serving 2000 tags.
//
// The paper's endgame (Sec. 1) is batteryless networking at warehouse
// scale; this bench exercises the deploy layer end to end at that scale
// and verifies its two engineering claims:
//   1. determinism under parallelism — fleet aggregates are bit-identical
//      at every thread count (fingerprints compared, hard failure on
//      mismatch), while wall time drops as threads are added;
//   2. the link cache pays — on a static scenario the cached fleet issues
//      >= 10x fewer raytrace evaluations than the uncached baseline for
//      bit-identical physics (hard failure below 10x).
// A third table sweeps fleet size so EXPERIMENTS.md can quote scaling.
//
// Standard harness flags plus --readers M, --tags N, --epochs E.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_main.hpp"
#include "src/deploy/fleet.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/table.hpp"

namespace {

using namespace mmtag;

// ~125 tags per 4x4 m reader cell at every size, matching the dense-RFID
// regime the paper targets.
deploy::FleetConfig fleet_config(int readers, int tags, double width_m,
                                 double height_m, std::uint64_t seed,
                                 int epochs) {
  deploy::FleetConfig config;
  config.layout.width_m = width_m;
  config.layout.height_m = height_m;
  config.layout.readers = readers;
  config.layout.tags = tags;
  config.layout.seed = seed;
  config.epochs = epochs;
  config.epoch_duration_s = 0.4;  // TDM budget fits a scan + polling tail.
  config.seed = seed;
  return config;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return std::string(buf);
}

std::string ms(double seconds) {
  return sim::Table::fmt(seconds * 1e3, 2);
}

}  // namespace

int main(int argc, char** argv) {
  int readers = 16;
  int tags = 2000;
  int epochs = 3;
  bench::Parser parser("d1_fleet",
                       "fleet-scale inventory: determinism, cache, scaling");
  parser.add_int("--readers", &readers, "reader count for the headline run");
  parser.add_int("--tags", &tags, "tag count for the headline run");
  parser.add_int("--epochs", &epochs, "epochs per fleet run");
  std::string kern_name;
  bench::add_kern_flag(parser, &kern_name);
  if (!parser.parse(argc, argv)) return parser.exit_code();
  if (!bench::apply_kern_flag(kern_name)) return 2;
  bench::Harness harness(parser.options());
  const std::uint64_t seed = parser.options().seed;
  bool fail = false;

  // --- 1. Thread scaling on the headline 16-reader / 2000-tag scenario --
  // Grid {1, 2, 4, hw} clipped to the machine (a 1-core container runs
  // just {1}); aggregates must fingerprint-identically at every count.
  const int hw = sim::default_thread_count();
  std::vector<int> grid;
  for (const int t : {1, 2, 4, hw}) {
    if (t >= 1 && t <= hw) grid.push_back(t);
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

  // Room sized for 4x4 m cells at the requested reader count.
  const double side = 4.0 * std::max(1.0, std::sqrt(readers));
  const deploy::FleetConfig headline =
      fleet_config(readers, tags, side, side, seed, epochs);

  const std::vector<std::string> scaling_headers = {
      "threads", "wall_s", "sim_reads/s", "tags_read", "coverage",
      "p95_ms", "jain", "fingerprint"};
  sim::Table scaling(scaling_headers);
  deploy::FleetResult headline_result;

  harness.add("thread_scaling", [&](bench::CaseContext& ctx) {
    scaling = sim::Table(scaling_headers);
    std::uint64_t reference = 0;
    double sim_reads = 0.0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      deploy::FleetConfig config = headline;
      config.threads = grid[i];
      deploy::FleetResult result = deploy::FleetSimulator(config).run();
      const std::uint64_t print = deploy::fingerprint(result.stats);
      if (i == 0) {
        reference = print;
      } else if (print != reference) {
        std::fprintf(stderr,
                     "FAIL: fingerprint diverged at threads=%d "
                     "(%s vs %s)\n",
                     grid[i], hex64(print).c_str(),
                     hex64(reference).c_str());
        fail = true;
      }
      scaling.add_row({std::to_string(grid[i]),
                       sim::Table::fmt(result.sweep.wall_s, 3),
                       sim::Table::fmt(result.sweep.units_per_s(), 0),
                       std::to_string(result.stats.tags_read),
                       sim::Table::fmt(result.stats.coverage(), 3),
                       ms(result.stats.latency_p95_s),
                       sim::Table::fmt(result.stats.jain, 3),
                       hex64(print)});
      sim_reads += static_cast<double>(result.sweep.units);
      if (i + 1 == grid.size()) headline_result = std::move(result);
    }
    ctx.set_units(sim_reads, "sim reads");
  });

  // --- 2. Link cache vs uncached baseline (static scenario) -------------
  // Channelized keeps every cell on air the full epoch, so polling hammers
  // the link budgets — the workload the cache exists for. Physics must be
  // bit-identical either way; only the raytrace count may differ.
  const std::vector<std::string> cache_headers = {
      "mode", "raytrace_evals", "cache_hit_rate", "wall_s", "fingerprint"};
  sim::Table cache_table(cache_headers);
  double reduction = 0.0;

  harness.add("cache_vs_uncached", [&](bench::CaseContext& ctx) {
    deploy::FleetConfig cache_scenario =
        fleet_config(4, 400, 8.0, 8.0, seed, 2);
    cache_scenario.epoch_duration_s = 0.05;
    cache_scenario.coordination.policy =
        deploy::CoordinationPolicy::kChannelized;
    deploy::FleetConfig uncached_scenario = cache_scenario;
    uncached_scenario.use_link_cache = false;

    const deploy::FleetResult cached =
        deploy::FleetSimulator(cache_scenario).run();
    const deploy::FleetResult uncached =
        deploy::FleetSimulator(uncached_scenario).run();

    cache_table = sim::Table(cache_headers);
    cache_table.add_row({"cached",
                         std::to_string(cached.stats.raytrace_evals),
                         sim::Table::fmt(cached.stats.cache_hit_rate(), 3),
                         sim::Table::fmt(cached.sweep.wall_s, 3),
                         hex64(deploy::fingerprint(cached.stats))});
    cache_table.add_row(
        {"uncached", std::to_string(uncached.stats.raytrace_evals),
         sim::Table::fmt(uncached.stats.cache_hit_rate(), 3),
         sim::Table::fmt(uncached.sweep.wall_s, 3),
         hex64(deploy::fingerprint(uncached.stats))});
    reduction =
        cached.stats.raytrace_evals > 0
            ? static_cast<double>(uncached.stats.raytrace_evals) /
                  static_cast<double>(cached.stats.raytrace_evals)
            : 0.0;
    if (deploy::fingerprint(cached.stats) !=
        deploy::fingerprint(uncached.stats)) {
      std::fprintf(stderr, "FAIL: cache changed the physics\n");
      fail = true;
    }
    if (reduction < 10.0) {
      std::fprintf(stderr, "FAIL: raytrace reduction %.1fx < 10x\n",
                   reduction);
      fail = true;
    }
    ctx.set_units(static_cast<double>(uncached.stats.raytrace_evals),
                  "raytrace evals");
  });

  // --- 3. Fleet size sweep (hw threads) ---------------------------------
  struct SizePoint {
    int readers;
    int tags;
    double w, h;
    double mobile;
  };
  const SizePoint sizes[] = {
      {4, 500, 8.0, 8.0, 0.0},
      {8, 1000, 16.0, 8.0, 0.0},
      {16, 2000, 16.0, 16.0, 0.0},
      {16, 2000, 16.0, 16.0, 0.1},  // 10% of tags walk between epochs.
  };
  const std::vector<std::string> sweep_headers = {
      "readers", "tags", "mobile", "wall_s", "coverage", "p50_ms",
      "p95_ms", "p99_ms", "goodput_mean", "jain", "util", "cache_hit",
      "handoffs"};
  sim::Table sweep(sweep_headers);

  harness.add("size_sweep", [&](bench::CaseContext& ctx) {
    sweep = sim::Table(sweep_headers);
    double sim_reads = 0.0;
    for (const SizePoint& p : sizes) {
      deploy::FleetConfig config =
          fleet_config(p.readers, p.tags, p.w, p.h, seed, epochs);
      config.mobile_fraction = p.mobile;
      const deploy::FleetResult result =
          deploy::FleetSimulator(config).run();
      const deploy::FleetStats& s = result.stats;
      sweep.add_row({std::to_string(p.readers), std::to_string(p.tags),
                     sim::Table::fmt(p.mobile, 1),
                     sim::Table::fmt(result.sweep.wall_s, 3),
                     sim::Table::fmt(s.coverage(), 3), ms(s.latency_p50_s),
                     ms(s.latency_p95_s), ms(s.latency_p99_s),
                     sim::Table::fmt_rate(s.goodput_mean_bps),
                     sim::Table::fmt(s.jain, 3),
                     sim::Table::fmt(s.reader_utilization, 3),
                     sim::Table::fmt(s.cache_hit_rate(), 3),
                     std::to_string(s.handoffs)});
      sim_reads += static_cast<double>(result.sweep.units);
    }
    ctx.set_units(sim_reads, "sim reads");
  });

  const int rc = harness.run();
  if (rc != 0) return rc;

  if (parser.csv()) {
    std::fputs(scaling.to_csv().c_str(), stdout);
    std::fputs(cache_table.to_csv().c_str(), stdout);
    std::fputs(sweep.to_csv().c_str(), stdout);
  } else {
    char title[128];
    std::snprintf(title, sizeof title,
                  "D1 — fleet thread scaling (%d readers / %d tags, "
                  "TDM, hw=%d)",
                  readers, tags, hw);
    scaling.print(title);
    cache_table.print("D1 — link cache vs uncached (static 4x400, "
                      "channelized)");
    std::printf("raytrace reduction: %.1fx (>= 10x required)\n\n",
                reduction);
    sweep.print("D1 — fleet size sweep");
    deploy::fleet_stats_table(headline_result.stats)
        .print("D1 — headline fleet aggregate");
  }
  return fail ? 1 : 0;
}
