// Ablation A5: line-coding choices for OOK backscatter.
//
// Manchester (used throughout this repo, and by most backscatter systems)
// guarantees an edge per bit but halves the rate. FM0 (EPC RFID) costs the
// same 2x but self-clocks differently. Scrambled NRZ keeps the full rate
// with only statistical run-length bounds. This bench measures the real
// quantities behind the choice: rate efficiency, worst-case run length
// (the blind OOK threshold estimator and the tag's dc balance both care),
// and the net goodput each coding achieves on a healthy 2 GHz link.
#include <cstdio>

#include "bench/bench_main.hpp"
#include "src/phy/fm0.hpp"
#include "src/phy/line_code.hpp"
#include "src/phy/scrambler.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("a5_linecode",
                       "line-coding trade-offs for OOK backscatter");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const std::vector<std::string> headers = {
      "coding", "rate_eff", "goodput_2ghz", "worst_run_ones",
      "worst_run_random", "clock_recovery"};
  sim::Table table(headers);
  std::size_t scrambled_ones_run = 0;

  harness.add("coding_table", [&](bench::CaseContext& ctx) {
    auto rng = sim::make_rng(sim::derive_seed(ctx.seed(), 9000));
    std::bernoulli_distribution coin(0.5);

    // Worst-case and random payloads.
    const phy::BitVector all_ones(8192, true);
    phy::BitVector random_bits(8192);
    for (std::size_t i = 0; i < random_bits.size(); ++i) {
      random_bits[i] = coin(rng);
    }

    struct Row {
      const char* name;
      double rate_efficiency;
      std::size_t worst_run_ones;
      std::size_t worst_run_random;
      const char* clock_recovery;
    };

    phy::Scrambler scrambler_ones;
    phy::Scrambler scrambler_random;
    const phy::BitVector scrambled_ones = scrambler_ones.scramble(all_ones);
    const phy::BitVector scrambled_random =
        scrambler_random.scramble(random_bits);
    scrambled_ones_run = phy::Scrambler::longest_run(scrambled_ones);

    const Row rows[] = {
        {"NRZ (none)", 1.0, phy::Scrambler::longest_run(all_ones),
         phy::Scrambler::longest_run(random_bits), "none (fails on runs)"},
        {"Manchester", 0.5,
         phy::Scrambler::longest_run(phy::manchester_encode(all_ones)),
         phy::Scrambler::longest_run(phy::manchester_encode(random_bits)),
         "guaranteed edge/bit"},
        {"FM0 (EPC)", 0.5,
         phy::Scrambler::longest_run(phy::fm0_encode(all_ones)),
         phy::Scrambler::longest_run(phy::fm0_encode(random_bits)),
         "guaranteed edge/bit"},
        {"Scrambled NRZ", 1.0, scrambled_ones_run,
         phy::Scrambler::longest_run(scrambled_random),
         "statistical (PRBS-15)"},
    };

    table = sim::Table(headers);
    for (const Row& row : rows) {
      // Goodput in the 2 GHz tier: chip rate 1 Gchip/s times rate
      // efficiency (framing/ARQ taxes identical across codings).
      table.add_row({row.name, sim::Table::fmt(row.rate_efficiency, 2),
                     sim::Table::fmt_rate(1e9 * row.rate_efficiency),
                     std::to_string(row.worst_run_ones),
                     std::to_string(row.worst_run_random),
                     row.clock_recovery});
    }
    ctx.set_units(2 * all_ones.size(), "payload bits");
  });

  if (const int rc = harness.run(); rc != 0) return rc;
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("A5 — line coding for OOK backscatter (8192-bit payloads)");
  std::printf(
      "\nScrambled NRZ doubles the goodput of the Manchester baseline and "
      "keeps runs short *statistically* (max run %zu on all-ones data) — "
      "but an adversarial payload aligned with the PRBS could still starve "
      "the tag of edges. Manchester/FM0 pay 2x for a hard guarantee; a "
      "production design would pick scrambling plus a run-length escape.\n",
      scrambled_ones_run);
  return 0;
}
