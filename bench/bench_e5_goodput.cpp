// Extension E5: application-level goodput vs range.
//
// Fig. 7 reports raw rate tiers; a user moving real payloads pays framing,
// Manchester, CRC failures and retransmissions. This bench runs the full
// session stack (link -> BER -> FER -> ARQ -> fragmentation) across the
// Fig. 7 range sweep and reports the *goodput* — plus the transfer time of
// a 1 MB sensor blob, the number an application plans around.
//
// The range grid is evaluated on the parallel sweep engine (--threads N);
// every point is an independent link evaluation.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_main.hpp"
#include "src/channel/environment.hpp"
#include "src/core/tag.hpp"
#include "src/net/session.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/reader/reader.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/sweep.hpp"
#include "src/sim/table.hpp"

namespace {

struct RangePoint {
  double feet = 0.0;
  mmtag::net::SessionReport report;
  double transfer_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("e5_goodput",
                       "application goodput and 1 MB transfer time vs range");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const channel::Environment env;
  const phy::RateTable rates = phy::RateTable::mmtag_standard();
  const net::TransferSession session = net::TransferSession::mmtag_default();
  const core::MmTag tag = core::MmTag::prototype_at(core::Pose{{0, 0}, 0.0});
  constexpr std::size_t kMegabyte = 8ull * 1024 * 1024;

  const std::vector<double> feet_grid = sim::linspace(2.0, 12.0, 11);
  sim::ThreadPool pool = bench::make_pool(parser.options());
  sim::SweepStats stats;
  std::vector<RangePoint> points;

  harness.add("range_sweep", [&](bench::CaseContext& ctx) {
    stats = sim::SweepStats{};
    points = sim::parallel_sweep(
        pool, feet_grid.size(),
        [&](std::size_t i) {
          RangePoint point;
          point.feet = feet_grid[i];
          const double d = phys::feet_to_m(point.feet);
          const auto reader = reader::MmWaveReader::prototype_at(
              core::Pose{{d, 0.0}, phys::kPi});
          const auto link = reader.evaluate_link(tag, env, rates);
          point.report = session.analyze(link, kMegabyte);
          point.transfer_s = session.transfer_time_s(link, kMegabyte);
          return point;
        },
        &stats);
    ctx.set_units(points.size(), "range points");
  });

  if (const int rc = harness.run(); rc != 0) return rc;

  sim::Table table({"range_ft", "tier", "snr_db", "chip_ber",
                    "frame_success", "goodput", "1MB_transfer"});
  for (const RangePoint& point : points) {
    char ber_text[32];
    std::snprintf(ber_text, sizeof(ber_text), "%.1e",
                  point.report.chip_error_rate);
    table.add_row(
        {sim::Table::fmt(point.feet, 0),
         sim::Table::fmt_rate(point.report.link_rate_bps),
         sim::Table::fmt(point.report.snr_db, 1), ber_text,
         sim::Table::fmt(point.report.frame_success, 3),
         sim::Table::fmt_rate(point.report.goodput_bps),
         std::isinf(point.transfer_s)
             ? "never"
             : sim::Table::fmt(point.transfer_s * 1e3, 1) + " ms"});
  }
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("E5 — application goodput vs range (framing + Manchester + "
              "CRC + stop-and-wait ARQ)");
  sim::sweep_stats_table(stats).print("E5 range sweep throughput");
  std::printf(
      "\nGoodput runs ~34%% of the chip rate on a healthy link (Manchester "
      "halves it, headers take the rest) and sags further right at each "
      "tier edge where ARQ churns — the usable envelope behind Fig. 7's "
      "raw tiers.\n");
  return 0;
}
