// Extension E5: application-level goodput vs range.
//
// Fig. 7 reports raw rate tiers; a user moving real payloads pays framing,
// Manchester, CRC failures and retransmissions. This bench runs the full
// session stack (link -> BER -> FER -> ARQ -> fragmentation) across the
// Fig. 7 range sweep and reports the *goodput* — plus the transfer time of
// a 1 MB sensor blob, the number an application plans around.
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/channel/environment.hpp"
#include "src/core/tag.hpp"
#include "src/net/session.hpp"
#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"
#include "src/reader/reader.hpp"
#include "src/sim/sweep.hpp"
#include "src/sim/table.hpp"

int main(int argc, char** argv) {
  using namespace mmtag;
  const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;

  const channel::Environment env;
  const phy::RateTable rates = phy::RateTable::mmtag_standard();
  const net::TransferSession session = net::TransferSession::mmtag_default();
  const core::MmTag tag = core::MmTag::prototype_at(core::Pose{{0, 0}, 0.0});
  constexpr std::size_t kMegabyte = 8ull * 1024 * 1024;

  sim::Table table({"range_ft", "tier", "snr_db", "chip_ber",
                    "frame_success", "goodput", "1MB_transfer"});
  for (const double feet : sim::linspace(2.0, 12.0, 11)) {
    const double d = phys::feet_to_m(feet);
    const auto reader = reader::MmWaveReader::prototype_at(
        core::Pose{{d, 0.0}, phys::kPi});
    const auto link = reader.evaluate_link(tag, env, rates);
    const net::SessionReport report = session.analyze(link, kMegabyte);
    char ber_text[32];
    std::snprintf(ber_text, sizeof(ber_text), "%.1e",
                  report.chip_error_rate);
    const double transfer_s = session.transfer_time_s(link, kMegabyte);
    table.add_row(
        {sim::Table::fmt(feet, 0), sim::Table::fmt_rate(report.link_rate_bps),
         sim::Table::fmt(report.snr_db, 1), ber_text,
         sim::Table::fmt(report.frame_success, 3),
         sim::Table::fmt_rate(report.goodput_bps),
         std::isinf(transfer_s) ? "never"
                                : sim::Table::fmt(transfer_s * 1e3, 1) +
                                      " ms"});
  }
  if (csv) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("E5 — application goodput vs range (framing + Manchester + "
              "CRC + stop-and-wait ARQ)");
  std::printf(
      "\nGoodput runs ~34%% of the chip rate on a healthy link (Manchester "
      "halves it, headers take the rest) and sags further right at each "
      "tier edge where ARQ churns — the usable envelope behind Fig. 7's "
      "raw tiers.\n");
  return 0;
}
