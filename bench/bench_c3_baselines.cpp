// Claim C3 (paper Secs. 1 & 3): rate comparison against every backscatter
// system the paper cites — RFID (< 1 Mbps), Wi-Fi backscatter (~kbps),
// HitchHike (0.3 Mbps), BackFi (5 Mbps @ 3 ft) — all through the same
// two-way link evaluation at BER 1e-3.
#include <cstdio>

#include "bench/bench_main.hpp"
#include "src/baselines/backscatter_system.hpp"
#include "src/phy/rate_table.hpp"
#include "src/phys/units.hpp"
#include "src/sim/table.hpp"

namespace {

// The legacy systems have standard-fixed channel widths; the mmTag reader
// adapts its bandwidth tier with range (Fig. 7), so its row uses the
// adaptive rate table on the same link budget.
double rate_at(const mmtag::baselines::BackscatterSystem& sys,
               double range_m, bool adaptive) {
  if (!adaptive) return sys.achievable_rate_bps(range_m);
  const auto table = mmtag::phy::RateTable::mmtag_standard();
  return table.achievable_rate_bps(sys.budget.received_power_dbm(range_m));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmtag;
  bench::Parser parser("c3_baselines",
                       "rate comparison against cited backscatter systems");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  const std::vector<std::string> headers = {
      "system", "band", "rate_3ft", "rate_4ft", "rate_10ft",
      "max_range_ft"};
  sim::Table table(headers);

  harness.add("system_table", [&](bench::CaseContext& ctx) {
    table = sim::Table(headers);
    const auto systems = baselines::all_systems();
    for (std::size_t i = 0; i < systems.size(); ++i) {
      const auto& sys = systems[i];
      const bool adaptive = i + 1 == systems.size();  // mmTag is last.
      const double f_ghz = sys.budget.frequency_hz / 1e9;
      char band[32];
      std::snprintf(band, sizeof(band), "%.2f GHz", f_ghz);
      table.add_row(
          {sys.name, band,
           sim::Table::fmt_rate(
               rate_at(sys, phys::feet_to_m(3.0), adaptive)),
           sim::Table::fmt_rate(
               rate_at(sys, phys::feet_to_m(4.0), adaptive)),
           sim::Table::fmt_rate(
               rate_at(sys, phys::feet_to_m(10.0), adaptive)),
           sim::Table::fmt(phys::m_to_feet(sys.max_range_m()), 0)});
    }
    ctx.set_units(systems.size(), "systems");
  });

  if (const int rc = harness.run(); rc != 0) return rc;
  if (parser.csv()) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  table.print("C3 — backscatter systems at the same BER target");

  const auto mmtag_sys = baselines::mmtag_system();
  const auto backfi_sys = baselines::backfi();
  std::printf(
      "\nmmTag at 3 ft delivers %.0fx BackFi's rate (paper: 'orders of "
      "magnitude higher throughput').\n",
      mmtag_sys.achievable_rate_bps(phys::feet_to_m(3.0)) /
          backfi_sys.achievable_rate_bps(phys::feet_to_m(3.0)));
  std::printf(
      "Note the trade: legacy UHF systems keep their (low) rate much "
      "farther out; mmTag converts its bandwidth advantage into rate at "
      "room-scale ranges.\n");
  return 0;
}
