// google-benchmark microbenchmarks of the library's hot kernels: the costs
// a downstream user pays per simulation step.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/antenna/ula.hpp"
#include "src/channel/raytrace.hpp"
#include "src/core/van_atta.hpp"
#include "src/mac/aloha.hpp"
#include "src/phy/ook.hpp"
#include "src/phy/waveform.hpp"
#include "src/phys/constants.hpp"
#include "src/sim/link_sim.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/sweep.hpp"

namespace {

using namespace mmtag;

void BM_ArrayFactor(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto array =
      antenna::UniformLinearArray::half_wavelength(n, phys::kMmTagCarrierHz);
  const auto weights = antenna::uniform_weights(n);
  double theta = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.array_factor(weights, theta));
    theta += 1e-4;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArrayFactor)->Arg(6)->Arg(16)->Arg(64);

void BM_VanAttaMonostaticGain(benchmark::State& state) {
  const auto array =
      core::VanAttaArray::with_elements(static_cast<int>(state.range(0)));
  double theta = -0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.monostatic_gain_db(theta));
    theta += 1e-4;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VanAttaMonostaticGain)->Arg(6)->Arg(16)->Arg(64);

void BM_RetroPeakSearch(benchmark::State& state) {
  const auto array = core::VanAttaArray::mmtag_prototype();
  double theta = -0.4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.peak_reradiation_direction_rad(theta));
    theta += 0.01;
    if (theta > 0.4) theta = -0.4;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RetroPeakSearch);

void BM_OokModulateDemodulate(benchmark::State& state) {
  const std::size_t bits_count = static_cast<std::size_t>(state.range(0));
  auto rng = sim::make_rng(1);
  std::bernoulli_distribution coin(0.5);
  phy::BitVector bits(bits_count);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = coin(rng);
  const phy::OokModulator mod(8);
  const phy::OokDemodulator demod(8);
  for (auto _ : state) {
    phy::Waveform wave = mod.modulate(bits);
    benchmark::DoNotOptimize(demod.demodulate(wave));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(bits_count));
}
BENCHMARK(BM_OokModulateDemodulate)->Arg(1024)->Arg(16384);

void BM_AwgnChannel(benchmark::State& state) {
  auto rng = sim::make_rng(2);
  phy::Waveform wave(static_cast<std::size_t>(state.range(0)),
                     phy::Complex(1.0, 0.0));
  for (auto _ : state) {
    phy::Waveform copy = wave;
    phy::add_awgn(copy, 0.1, rng);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AwgnChannel)->Arg(4096);

void BM_RayTraceOfficeRoom(benchmark::State& state) {
  const auto office = channel::Environment::office_room();
  double x = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        channel::trace_paths(office, {x, 1.0}, {4.0, 3.0}));
    x = x > 3.0 ? 1.0 : x + 0.001;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RayTraceOfficeRoom);

void BM_ParallelBerSweep(benchmark::State& state) {
  // The E4 hot path: a 13-point SNR grid through the waveform-level modem,
  // sharded across a pool. Arg = thread count; the result is bit-identical
  // across all of them (see test_parallel.cpp), only the wall time moves.
  sim::ThreadPool pool(static_cast<int>(state.range(0)));
  sim::MonteCarloLink::Params params;
  params.min_bits = 4'000;
  params.max_bits = 4'000;
  const sim::MonteCarloLink link{params};
  const std::vector<double> snrs = sim::linspace(0.0, 12.0, 13);
  std::uint64_t bits = 0;
  for (auto _ : state) {
    const sim::BerSweepResult sweep = link.measure_ber_sweep(snrs, 99, pool);
    bits += sweep.stats.units;
    benchmark::DoNotOptimize(sweep.points.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits));
}
BENCHMARK(BM_ParallelBerSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_ThreadPoolDispatch(benchmark::State& state) {
  // Pure pool overhead: an empty 64-item parallel_for, so sweep authors
  // know the fixed cost a grid must amortise.
  sim::ThreadPool pool(static_cast<int>(state.range(0)));
  std::atomic<std::size_t> sink{0};
  for (auto _ : state) {
    pool.parallel_for(64, [&](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(4)->UseRealTime();

void BM_FramedAloha(benchmark::State& state) {
  const int tags = static_cast<int>(state.range(0));
  auto rng = sim::make_rng(3);
  mac::AlohaConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac::run_framed_aloha(tags, config, rng));
  }
  state.SetItemsProcessed(state.iterations() * tags);
}
BENCHMARK(BM_FramedAloha)->Arg(16)->Arg(128);

}  // namespace
