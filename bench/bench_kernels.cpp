// Microbenchmarks of the library's hot kernels: the costs a downstream
// user pays per simulation step. Each case runs a fixed iteration count
// per repetition; the harness reports median/p90 wall and cpu time plus
// per-unit throughput, and --compare flags regressions against a saved
// BENCH_kernels.json baseline.
#include <atomic>
#include <cstdint>
#include <vector>

#include "bench/bench_main.hpp"
#include "src/antenna/ula.hpp"
#include "src/channel/raytrace.hpp"
#include "src/core/van_atta.hpp"
#include "src/mac/aloha.hpp"
#include "src/phy/ook.hpp"
#include "src/phy/waveform.hpp"
#include "src/phys/constants.hpp"
#include "src/sim/link_sim.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/sweep.hpp"

namespace {

using namespace mmtag;

void add_array_factor_case(bench::Harness& harness, int n) {
  harness.add("array_factor_" + std::to_string(n),
              [n](bench::CaseContext& ctx) {
                constexpr int kIters = 20'000;
                const auto array = antenna::UniformLinearArray::half_wavelength(
                    n, phys::kMmTagCarrierHz);
                const auto weights = antenna::uniform_weights(n);
                double theta = 0.1;
                for (int i = 0; i < kIters; ++i) {
                  bench::do_not_optimize(array.array_factor(weights, theta));
                  theta += 1e-4;
                }
                ctx.set_units(kIters, "evals");
              });
}

void add_van_atta_case(bench::Harness& harness, int n) {
  harness.add("van_atta_gain_" + std::to_string(n),
              [n](bench::CaseContext& ctx) {
                constexpr int kIters = 2'000;
                const auto array = core::VanAttaArray::with_elements(n);
                double theta = -0.5;
                for (int i = 0; i < kIters; ++i) {
                  bench::do_not_optimize(array.monostatic_gain_db(theta));
                  theta += 1e-4;
                }
                ctx.set_units(kIters, "evals");
              });
}

void add_ook_modem_case(bench::Harness& harness, std::size_t bits_count) {
  harness.add("ook_modem_" + std::to_string(bits_count),
              [bits_count](bench::CaseContext& ctx) {
                constexpr int kIters = 40;
                auto rng = sim::make_rng(ctx.seed());
                std::bernoulli_distribution coin(0.5);
                phy::BitVector bits(bits_count);
                for (std::size_t i = 0; i < bits.size(); ++i) {
                  bits[i] = coin(rng);
                }
                const phy::OokModulator mod(8);
                const phy::OokDemodulator demod(8);
                for (int i = 0; i < kIters; ++i) {
                  phy::Waveform wave = mod.modulate(bits);
                  bench::do_not_optimize(demod.demodulate(wave));
                }
                ctx.set_units(kIters * bits_count, "bits");
              });
}

void add_ber_sweep_case(bench::Harness& harness, int threads) {
  harness.add(
      "parallel_ber_sweep_t" + std::to_string(threads),
      [threads](bench::CaseContext& ctx) {
        // The E4 hot path: a 13-point SNR grid through the waveform-level
        // modem, sharded across a pool. The result is bit-identical at
        // every thread count (see test_parallel.cpp); only wall time
        // moves.
        sim::ThreadPool pool(threads);
        sim::MonteCarloLink::Params params;
        params.min_bits = 4'000;
        params.max_bits = 4'000;
        const sim::MonteCarloLink link{params};
        const std::vector<double> snrs = sim::linspace(0.0, 12.0, 13);
        const sim::BerSweepResult sweep =
            link.measure_ber_sweep(snrs, ctx.seed() + 98, pool);
        bench::do_not_optimize(sweep.points.data());
        ctx.set_units(sweep.stats.units, "bits");
      });
}

void add_pool_dispatch_case(bench::Harness& harness, int threads) {
  harness.add("pool_dispatch_t" + std::to_string(threads),
              [threads](bench::CaseContext& ctx) {
                // Pure pool overhead: empty 64-item parallel_fors, so
                // sweep authors know the fixed cost a grid must amortise.
                constexpr int kIters = 500;
                sim::ThreadPool pool(threads);
                std::atomic<std::size_t> sink{0};
                for (int i = 0; i < kIters; ++i) {
                  pool.parallel_for(64, [&](std::size_t j) {
                    sink.fetch_add(j, std::memory_order_relaxed);
                  });
                }
                bench::do_not_optimize(sink.load());
                ctx.set_units(kIters * 64, "tasks");
              });
}

void add_aloha_case(bench::Harness& harness, int tags, int iters) {
  harness.add("framed_aloha_" + std::to_string(tags),
              [tags, iters](bench::CaseContext& ctx) {
                auto rng = sim::make_rng(ctx.seed() + 2);
                mac::AlohaConfig config;
                for (int i = 0; i < iters; ++i) {
                  bench::do_not_optimize(
                      mac::run_framed_aloha(tags, config, rng));
                }
                ctx.set_units(static_cast<std::uint64_t>(iters) * tags,
                              "tag inventories");
              });
}

}  // namespace

int main(int argc, char** argv) {
  bench::Parser parser("kernels", "microbenchmarks of the hot kernels");
  if (!parser.parse(argc, argv)) return parser.exit_code();
  bench::Harness harness(parser.options());

  for (const int n : {6, 16, 64}) add_array_factor_case(harness, n);
  for (const int n : {6, 16, 64}) add_van_atta_case(harness, n);

  harness.add("retro_peak_search", [](bench::CaseContext& ctx) {
    constexpr int kIters = 200;
    const auto array = core::VanAttaArray::mmtag_prototype();
    double theta = -0.4;
    for (int i = 0; i < kIters; ++i) {
      bench::do_not_optimize(array.peak_reradiation_direction_rad(theta));
      theta += 0.01;
      if (theta > 0.4) theta = -0.4;
    }
    ctx.set_units(kIters, "searches");
  });

  add_ook_modem_case(harness, 1024);
  add_ook_modem_case(harness, 16384);

  harness.add("awgn_4096", [](bench::CaseContext& ctx) {
    constexpr int kIters = 500;
    constexpr std::size_t kSamples = 4096;
    auto rng = sim::make_rng(ctx.seed() + 1);
    phy::Waveform wave(kSamples, phy::Complex(1.0, 0.0));
    for (int i = 0; i < kIters; ++i) {
      phy::Waveform copy = wave;
      phy::add_awgn(copy, 0.1, rng);
      bench::do_not_optimize(copy.data());
    }
    ctx.set_units(kIters * kSamples, "samples");
  });

  harness.add("raytrace_office", [](bench::CaseContext& ctx) {
    constexpr int kIters = 2'000;
    const auto office = channel::Environment::office_room();
    double x = 1.0;
    for (int i = 0; i < kIters; ++i) {
      bench::do_not_optimize(
          channel::trace_paths(office, {x, 1.0}, {4.0, 3.0}));
      x = x > 3.0 ? 1.0 : x + 0.001;
    }
    ctx.set_units(kIters, "traces");
  });

  for (const int t : {1, 2, 4}) add_ber_sweep_case(harness, t);
  for (const int t : {1, 4}) add_pool_dispatch_case(harness, t);

  add_aloha_case(harness, 16, 2'000);
  add_aloha_case(harness, 128, 500);

  return harness.run();
}
