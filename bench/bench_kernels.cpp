// Microbenchmarks of the library's hot kernels: the costs a downstream
// user pays per simulation step. Each case runs a fixed iteration count
// per repetition; the harness reports median/p90 wall and cpu time plus
// per-unit throughput, and --compare flags regressions against a saved
// BENCH_kernels.json baseline.
#include <atomic>
#include <complex>
#include <cstdint>
#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_main.hpp"
#include "src/antenna/ula.hpp"
#include "src/channel/raytrace.hpp"
#include "src/core/van_atta.hpp"
#include "src/kern/kern.hpp"
#include "src/mac/aloha.hpp"
#include "src/phy/fft.hpp"
#include "src/phy/ook.hpp"
#include "src/phy/waveform.hpp"
#include "src/phys/constants.hpp"
#include "src/sim/link_sim.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/sweep.hpp"
#include "src/sim/table.hpp"

namespace {

using namespace mmtag;

void add_array_factor_case(bench::Harness& harness, int n) {
  harness.add("array_factor_" + std::to_string(n),
              [n](bench::CaseContext& ctx) {
                constexpr int kIters = 20'000;
                const auto array = antenna::UniformLinearArray::half_wavelength(
                    n, phys::kMmTagCarrierHz);
                const auto weights = antenna::uniform_weights(n);
                double theta = 0.1;
                for (int i = 0; i < kIters; ++i) {
                  bench::do_not_optimize(array.array_factor(weights, theta));
                  theta += 1e-4;
                }
                ctx.set_units(kIters, "evals");
              });
}

void add_van_atta_case(bench::Harness& harness, int n) {
  harness.add("van_atta_gain_" + std::to_string(n),
              [n](bench::CaseContext& ctx) {
                constexpr int kIters = 2'000;
                const auto array = core::VanAttaArray::with_elements(n);
                double theta = -0.5;
                for (int i = 0; i < kIters; ++i) {
                  bench::do_not_optimize(array.monostatic_gain_db(theta));
                  theta += 1e-4;
                }
                ctx.set_units(kIters, "evals");
              });
}

void add_ook_modem_case(bench::Harness& harness, std::size_t bits_count) {
  harness.add("ook_modem_" + std::to_string(bits_count),
              [bits_count](bench::CaseContext& ctx) {
                constexpr int kIters = 40;
                auto rng = sim::make_rng(ctx.seed());
                std::bernoulli_distribution coin(0.5);
                phy::BitVector bits(bits_count);
                for (std::size_t i = 0; i < bits.size(); ++i) {
                  bits[i] = coin(rng);
                }
                const phy::OokModulator mod(8);
                const phy::OokDemodulator demod(8);
                for (int i = 0; i < kIters; ++i) {
                  phy::Waveform wave = mod.modulate(bits);
                  bench::do_not_optimize(demod.demodulate(wave));
                }
                ctx.set_units(kIters * bits_count, "bits");
              });
}

void add_ber_sweep_case(bench::Harness& harness, int threads) {
  harness.add(
      "parallel_ber_sweep_t" + std::to_string(threads),
      [threads](bench::CaseContext& ctx) {
        // The E4 hot path: a 13-point SNR grid through the waveform-level
        // modem, sharded across a pool. The result is bit-identical at
        // every thread count (see test_parallel.cpp); only wall time
        // moves.
        sim::ThreadPool pool(threads);
        sim::MonteCarloLink::Params params;
        params.min_bits = 4'000;
        params.max_bits = 4'000;
        const sim::MonteCarloLink link{params};
        const std::vector<double> snrs = sim::linspace(0.0, 12.0, 13);
        const sim::BerSweepResult sweep =
            link.measure_ber_sweep(snrs, ctx.seed() + 98, pool);
        bench::do_not_optimize(sweep.points.data());
        ctx.set_units(sweep.stats.units, "bits");
      });
}

void add_pool_dispatch_case(bench::Harness& harness, int threads) {
  harness.add("pool_dispatch_t" + std::to_string(threads),
              [threads](bench::CaseContext& ctx) {
                // Pure pool overhead: empty 64-item parallel_fors, so
                // sweep authors know the fixed cost a grid must amortise.
                constexpr int kIters = 500;
                sim::ThreadPool pool(threads);
                std::atomic<std::size_t> sink{0};
                for (int i = 0; i < kIters; ++i) {
                  pool.parallel_for(64, [&](std::size_t j) {
                    sink.fetch_add(j, std::memory_order_relaxed);
                  });
                }
                bench::do_not_optimize(sink.load());
                ctx.set_units(kIters * 64, "tasks");
              });
}

void add_aloha_case(bench::Harness& harness, int tags, int iters) {
  harness.add("framed_aloha_" + std::to_string(tags),
              [tags, iters](bench::CaseContext& ctx) {
                auto rng = sim::make_rng(ctx.seed() + 2);
                mac::AlohaConfig config;
                for (int i = 0; i < iters; ++i) {
                  bench::do_not_optimize(
                      mac::run_framed_aloha(tags, config, rng));
                }
                ctx.set_units(static_cast<std::uint64_t>(iters) * tags,
                              "tag inventories");
              });
}

// ---- Per-backend SIMD kernel cases ------------------------------------
//
// Each kern:: kernel gets one case per backend the host supports, named
// "<kernel>_<backend>", all doing the identical work via that backend's
// table (no global dispatch switch, so the surrounding cases are
// unaffected). After the harness run, main() prints a speedup table of
// scalar-median / backend-median per kernel — the number the ISSUE's
// ">= 2x on correlation and FFT" acceptance bar reads off.

std::vector<kern::Backend> bench_backends() {
  std::vector<kern::Backend> backends = {kern::Backend::kScalar};
  for (const kern::Backend b : {kern::Backend::kSse42, kern::Backend::kAvx2,
                                kern::Backend::kNeon}) {
    if (kern::available(b)) backends.push_back(b);
  }
  return backends;
}

std::vector<double> bench_doubles(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(-1.0, 1.0);
  std::vector<double> values(n);
  for (double& v : values) v = uniform(rng);
  return values;
}

std::vector<phy::Complex> bench_complex(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(-1.0, 1.0);
  std::vector<phy::Complex> values(n);
  for (auto& v : values) v = phy::Complex(uniform(rng), uniform(rng));
  return values;
}

std::string backend_suffix(kern::Backend backend) {
  std::string name(kern::backend_name(backend));
  for (char& c : name) {
    if (c == '.') c = '_';  // "sse4.2" -> "sse4_2" keeps case names flat.
  }
  return name;
}

void add_backend_cases(bench::Harness& harness) {
  for (const kern::Backend backend : bench_backends()) {
    const kern::Kernels& k = kern::table(backend);
    const std::string suffix = backend_suffix(backend);

    // Sync correlation inner loop: windowed mean removal + dot + energy,
    // the per-offset work of sync.cpp's score_window.
    harness.add("corr_dot_4096_" + suffix, [&k](bench::CaseContext& ctx) {
      constexpr int kIters = 4'000;
      constexpr std::size_t kN = 4096;
      const auto x = bench_doubles(kN, ctx.seed() + 11);
      const auto t = bench_doubles(kN, ctx.seed() + 13);
      double sink = 0.0;
      for (int i = 0; i < kIters; ++i) {
        const double mean = k.sum(x.data(), kN) / static_cast<double>(kN);
        double dot = 0.0;
        double energy = 0.0;
        k.centered_dot_energy(x.data(), t.data(), mean, kN, &dot, &energy);
        sink += dot + energy;
      }
      bench::do_not_optimize(sink);
      ctx.set_units(static_cast<double>(kIters) * kN, "samples");
    });

    // One full FFT (all butterfly stages) through the backend's
    // butterfly_pass, twiddles cached outside the timed loop the way
    // phy::fft uses them.
    harness.add("fft_1024_" + suffix, [&k](bench::CaseContext& ctx) {
      constexpr int kIters = 1'000;
      constexpr std::size_t kN = 1024;
      const auto input = bench_complex(kN, ctx.seed() + 17);
      std::vector<std::vector<phy::Complex>> twiddles;
      for (std::size_t len = 2; len <= kN; len <<= 1) {
        std::vector<phy::Complex> stage(len / 2);
        for (std::size_t j = 0; j < len / 2; ++j) {
          stage[j] = std::polar(
              1.0, -2.0 * 3.141592653589793 * static_cast<double>(j) /
                       static_cast<double>(len));
        }
        twiddles.push_back(std::move(stage));
      }
      std::vector<phy::Complex> work(kN);
      for (int i = 0; i < kIters; ++i) {
        work = input;
        std::size_t stage = 0;
        for (std::size_t len = 2; len <= kN; len <<= 1, ++stage) {
          k.butterfly_pass(work.data(), kN, len, twiddles[stage].data());
        }
        bench::do_not_optimize(work.data());
      }
      ctx.set_units(static_cast<double>(kIters) * kN, "points");
    });

    // Pulse-shaping FIR: 33-tap raised-cosine-sized filter over a frame.
    harness.add("fir_4096_t33_" + suffix, [&k](bench::CaseContext& ctx) {
      constexpr int kIters = 500;
      constexpr std::size_t kN = 4096;
      constexpr std::size_t kTaps = 33;
      const auto x = bench_complex(kN, ctx.seed() + 19);
      const auto taps = bench_doubles(kTaps, ctx.seed() + 23);
      std::vector<phy::Complex> out(kN);
      for (int i = 0; i < kIters; ++i) {
        k.fir_complex(x.data(), kN, taps.data(), kTaps, out.data());
        bench::do_not_optimize(out.data());
      }
      ctx.set_units(static_cast<double>(kIters) * kN, "samples");
    });

    // Frame-check CRC over a 4096-bit payload.
    harness.add("crc16_4096b_" + suffix, [&k](bench::CaseContext& ctx) {
      constexpr int kIters = 20'000;
      constexpr std::size_t kBits = 4096;
      std::mt19937_64 rng(ctx.seed() + 29);
      std::vector<std::uint8_t> bytes(kBits / 8);
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
      std::uint32_t sink = 0;
      for (int i = 0; i < kIters; ++i) {
        sink ^= k.crc16_bits(bytes.data(), kBits);
      }
      bench::do_not_optimize(sink);
      ctx.set_units(static_cast<double>(kIters) * kBits, "bits");
    });

    // FM0 line-code decode of an 8192-bit frame.
    harness.add("fm0_decode_8192_" + suffix, [&k](bench::CaseContext& ctx) {
      constexpr int kIters = 10'000;
      constexpr std::size_t kBits = 8192;
      std::mt19937_64 rng(ctx.seed() + 31);
      std::bernoulli_distribution coin(0.5);
      std::vector<std::uint8_t> chips(2 * kBits);
      std::uint8_t prev = 1;
      for (std::size_t i = 0; i < kBits; ++i) {
        const std::uint8_t bit = coin(rng) ? 1 : 0;
        chips[2 * i] = prev ^ 1u;
        chips[2 * i + 1] = static_cast<std::uint8_t>(chips[2 * i] ^ bit ^ 1u);
        prev = chips[2 * i + 1];
      }
      std::vector<std::uint8_t> bits(kBits);
      std::uint32_t sink = 0;
      for (int i = 0; i < kIters; ++i) {
        sink += k.fm0_decode_bytes(chips.data(), kBits, bits.data());
      }
      bench::do_not_optimize(sink);
      ctx.set_units(static_cast<double>(kIters) * kBits, "bits");
    });
  }
}

// Speedup table: for every "<kernel>_<backend>" case, median scalar wall
// time over median backend wall time.
void print_speedup_table(const bench::Harness& harness) {
  const std::vector<std::string> kernels = {"corr_dot_4096", "fft_1024",
                                            "fir_4096_t33", "crc16_4096b",
                                            "fm0_decode_8192"};
  std::map<std::string, double> medians;
  for (const auto& report : harness.case_reports()) {
    medians[report.name] = report.wall_median_ns;
  }
  std::vector<std::string> headers = {"kernel", "scalar"};
  std::vector<kern::Backend> accel;
  for (const kern::Backend b : bench_backends()) {
    if (b == kern::Backend::kScalar) continue;
    accel.push_back(b);
    headers.push_back(std::string(kern::backend_name(b)) + " speedup");
  }
  if (accel.empty()) return;
  sim::Table table(headers);
  for (const std::string& kernel : kernels) {
    const double scalar_ns = medians[kernel + "_scalar"];
    std::vector<std::string> row = {kernel, bench::format_ns(scalar_ns)};
    for (const kern::Backend b : accel) {
      const double accel_ns = medians[kernel + "_" + backend_suffix(b)];
      row.push_back(accel_ns > 0.0
                        ? sim::Table::fmt(scalar_ns / accel_ns, 2) + "x"
                        : "n/a");
    }
    table.add_row(row);
  }
  table.print("SIMD kernel speedups (median wall, scalar = 1.0)");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Parser parser("kernels", "microbenchmarks of the hot kernels");
  std::string kern_name;
  bench::add_kern_flag(parser, &kern_name);
  if (!parser.parse(argc, argv)) return parser.exit_code();
  if (!bench::apply_kern_flag(kern_name)) return 2;
  bench::Harness harness(parser.options());

  for (const int n : {6, 16, 64}) add_array_factor_case(harness, n);
  for (const int n : {6, 16, 64}) add_van_atta_case(harness, n);

  harness.add("retro_peak_search", [](bench::CaseContext& ctx) {
    constexpr int kIters = 200;
    const auto array = core::VanAttaArray::mmtag_prototype();
    double theta = -0.4;
    for (int i = 0; i < kIters; ++i) {
      bench::do_not_optimize(array.peak_reradiation_direction_rad(theta));
      theta += 0.01;
      if (theta > 0.4) theta = -0.4;
    }
    ctx.set_units(kIters, "searches");
  });

  add_ook_modem_case(harness, 1024);
  add_ook_modem_case(harness, 16384);

  harness.add("awgn_4096", [](bench::CaseContext& ctx) {
    constexpr int kIters = 500;
    constexpr std::size_t kSamples = 4096;
    auto rng = sim::make_rng(ctx.seed() + 1);
    phy::Waveform wave(kSamples, phy::Complex(1.0, 0.0));
    for (int i = 0; i < kIters; ++i) {
      phy::Waveform copy = wave;
      phy::add_awgn(copy, 0.1, rng);
      bench::do_not_optimize(copy.data());
    }
    ctx.set_units(kIters * kSamples, "samples");
  });

  harness.add("raytrace_office", [](bench::CaseContext& ctx) {
    constexpr int kIters = 2'000;
    const auto office = channel::Environment::office_room();
    double x = 1.0;
    for (int i = 0; i < kIters; ++i) {
      bench::do_not_optimize(
          channel::trace_paths(office, {x, 1.0}, {4.0, 3.0}));
      x = x > 3.0 ? 1.0 : x + 0.001;
    }
    ctx.set_units(kIters, "traces");
  });

  for (const int t : {1, 2, 4}) add_ber_sweep_case(harness, t);
  for (const int t : {1, 4}) add_pool_dispatch_case(harness, t);

  add_aloha_case(harness, 16, 2'000);
  add_aloha_case(harness, 128, 500);

  add_backend_cases(harness);

  const int rc = harness.run();
  if (rc == 0 && !parser.csv()) print_speedup_table(harness);
  return rc;
}
