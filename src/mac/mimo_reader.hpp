// Multi-beam (MIMO) inventory — the paper's simultaneous-tags extension.
//
// Paper Sec. 9: "To support multiple tags simultaneously, one can employ
// MIMO beamforming which enables the reader to create multiple independent
// beams simultaneously and direct them toward different tags." We model a
// reader with `chains` independent RF chains: the codebook is partitioned
// across chains (balanced round-robin) and the chains sweep their shares in
// parallel, so inventory time is the slowest chain's share instead of the
// whole sweep.
#pragma once

#include "src/mac/inventory.hpp"

namespace mmtag::mac {

struct MimoInventoryResult {
  std::vector<InventoryResult> per_chain;
  int tags_total = 0;
  int tags_read = 0;
  /// Wall-clock inventory time: max over chains [s].
  double total_time_s = 0.0;
  /// Speedup vs the same scan on one chain.
  double speedup_vs_single = 1.0;
};

class MimoInventory {
 public:
  /// `chains` >= 1 independent beams.
  MimoInventory(reader::MmWaveReader reader, phy::RateTable rates,
                InventoryConfig config, int chains);

  [[nodiscard]] MimoInventoryResult run(
      const std::vector<antenna::Beam>& codebook,
      const std::vector<core::MmTag>& tags,
      const channel::Environment& env, std::mt19937_64& rng);

  [[nodiscard]] int chains() const { return chains_; }

 private:
  reader::MmWaveReader reader_;
  phy::RateTable rates_;
  InventoryConfig config_;
  int chains_;
};

}  // namespace mmtag::mac
