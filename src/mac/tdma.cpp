#include "src/mac/tdma.hpp"

#include <cassert>

namespace mmtag::mac {

double TdmaSchedule::share(std::size_t reader_index) const {
  assert(reader_index < slots.size());
  if (superframe_s <= 0.0) return 0.0;
  return slots[reader_index].duration_s / superframe_s;
}

TdmaCoordinator::TdmaCoordinator(double superframe_s, double guard_s)
    : superframe_s_(superframe_s), guard_s_(guard_s) {
  assert(superframe_s_ > 0.0);
  assert(guard_s_ >= 0.0);
}

TdmaSchedule TdmaCoordinator::build(
    const std::vector<TdmaReaderDemand>& demands) const {
  TdmaSchedule schedule;
  schedule.superframe_s = superframe_s_;
  if (demands.empty()) return schedule;

  double total_weight = 0.0;
  for (const TdmaReaderDemand& demand : demands) {
    assert(demand.weight >= 0.0);
    total_weight += demand.weight;
  }
  const double guard_total = guard_s_ * static_cast<double>(demands.size());
  const double usable =
      superframe_s_ > guard_total ? superframe_s_ - guard_total : 0.0;

  double cursor = 0.0;
  for (const TdmaReaderDemand& demand : demands) {
    TdmaSlotAssignment slot;
    slot.reader = demand.name;
    slot.start_s = cursor + guard_s_;
    slot.duration_s =
        total_weight > 0.0 ? usable * demand.weight / total_weight : 0.0;
    cursor = slot.start_s + slot.duration_s;
    schedule.slots.push_back(std::move(slot));
  }
  return schedule;
}

double TdmaCoordinator::effective_rate_bps(const TdmaSchedule& schedule,
                                           const TdmaReaderDemand& demand,
                                           std::size_t reader_index) {
  return demand.solo_rate_bps * schedule.share(reader_index);
}

}  // namespace mmtag::mac
