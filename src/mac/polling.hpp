// Collision-free polling: the MAC upgrade the paper's Sec. 9 hints at
// ("the directionality property of mmWave may provide opportunities for
// more efficient protocols").
//
// After one Aloha inventory has *discovered* the population, the reader
// knows every tag's beam and id — from then on it can poll each tag
// directly: steer, address, read, next. No collisions, no empty slots, at
// the cost of a per-poll addressing preamble. This module schedules those
// polling rounds and reports the throughput so the ablation bench can
// compare discovery-mode Aloha against steady-state polling.
#pragma once

#include <vector>

#include "src/antenna/codebook.hpp"
#include "src/channel/environment.hpp"
#include "src/core/tag.hpp"
#include "src/phy/rate_table.hpp"
#include "src/reader/reader.hpp"

namespace mmtag::mac {

struct PollingConfig {
  /// Addressing overhead per poll: reader query bits at the tag rate.
  std::size_t poll_overhead_bits = 64;
  /// Payload read from each tag per poll [bits].
  std::size_t payload_bits = 96;
  /// Beam switching overhead when the next tag is in a new beam [s].
  double beam_switch_overhead_s = 100e-6;
};

struct PollRecord {
  std::uint32_t tag_id = 0;
  double rate_bps = 0.0;
  double time_s = 0.0;  ///< Time spent on this tag (overhead + payload).
  bool reachable = false;
};

struct PollingResult {
  std::vector<PollRecord> polls;
  int tags_read = 0;
  double total_time_s = 0.0;

  [[nodiscard]] double aggregate_throughput_bps(
      std::size_t payload_bits) const;
};

class PollingScheduler {
 public:
  PollingScheduler(reader::MmWaveReader reader, phy::RateTable rates,
                   PollingConfig config);

  /// One polling round over `tags` (assumed already discovered): the reader
  /// steers at each tag's bearing in order, skipping unreachable ones.
  /// Tags are visited sorted by bearing so beam switches are minimal.
  [[nodiscard]] PollingResult run_round(const std::vector<core::MmTag>& tags,
                                        const channel::Environment& env);

  [[nodiscard]] const PollingConfig& config() const { return config_; }

 private:
  reader::MmWaveReader reader_;
  phy::RateTable rates_;
  PollingConfig config_;
};

}  // namespace mmtag::mac
