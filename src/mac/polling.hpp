// Collision-free polling: the MAC upgrade the paper's Sec. 9 hints at
// ("the directionality property of mmWave may provide opportunities for
// more efficient protocols").
//
// After one Aloha inventory has *discovered* the population, the reader
// knows every tag's beam and id — from then on it can poll each tag
// directly: steer, address, read, next. No collisions, no empty slots, at
// the cost of a per-poll addressing preamble. This module schedules those
// polling rounds and reports the throughput so the ablation bench can
// compare discovery-mode Aloha against steady-state polling.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/antenna/codebook.hpp"
#include "src/channel/environment.hpp"
#include "src/core/tag.hpp"
#include "src/phy/rate_table.hpp"
#include "src/reader/reader.hpp"
#include "src/resil/retry.hpp"

namespace mmtag::mac {

struct PollingConfig {
  /// Addressing overhead per poll: reader query bits at the tag rate.
  std::size_t poll_overhead_bits = 64;
  /// Payload read from each tag per poll [bits].
  std::size_t payload_bits = 96;
  /// Beam switching overhead when the next tag is in a new beam [s].
  double beam_switch_overhead_s = 100e-6;
  /// Retries granted to a tag that fails to answer before it is
  /// quarantined. 0 disables the retry machinery entirely (legacy
  /// behaviour: unreachable tags are skipped for free).
  int retry_budget = 0;
  /// Wait before the first retry; doubles per further attempt. The reader
  /// polls other tags during the wait, so backoff adds latency to the
  /// failing tag without holding the channel.
  double backoff_base_s = 200e-6;
  /// Airtime one unanswered poll consumes (query + listen window) [s].
  double poll_timeout_s = 50e-6;
  /// Rounds a quarantined tag sits out before being re-tried.
  int quarantine_rounds = 1;
  /// Shared retry policy (DESIGN.md Sec. 15). The retry count routes
  /// through `retry.effective_budget(retry_budget)` and the backoff gaps
  /// through `retry.delay_s` (base inherited from backoff_base_s when the
  /// policy leaves it 0), so the default policy reproduces the legacy
  /// fixed schedule exactly.
  resil::RetryPolicy retry{};
};

struct PollRecord {
  std::uint32_t tag_id = 0;
  double rate_bps = 0.0;
  double time_s = 0.0;  ///< Time spent on this tag (overhead + payload).
  bool reachable = false;
  int attempts = 1;          ///< Polls sent (1 + retries consumed).
  bool quarantined = false;  ///< Skipped: serving a quarantine sentence.
  /// Backoff gaps the failing tag waited out (spent polling other tags —
  /// latency for this tag, never channel time).
  double backoff_s = 0.0;
};

struct PollingResult {
  std::vector<PollRecord> polls;
  int tags_read = 0;
  double total_time_s = 0.0;
  long polls_timed_out = 0;  ///< Unanswered polls that burned a timeout.
  long quarantines = 0;      ///< Tags newly quarantined this round.

  [[nodiscard]] double aggregate_throughput_bps(
      std::size_t payload_bits) const;
};

class PollingScheduler {
 public:
  PollingScheduler(reader::MmWaveReader reader, phy::RateTable rates,
                   PollingConfig config);

  /// One polling round over `tags` (assumed already discovered): the reader
  /// steers at each tag's bearing in order, skipping unreachable ones.
  /// Tags are visited sorted by bearing so beam switches are minimal.
  /// Per-tag service latency is recorded to the obs histogram
  /// "mac.polling.poll_us", so fleet-level repair times are derivable from
  /// a bench JSON report without re-running.
  ///
  /// `responsive` (optional, indexed like `tags`) marks tags that answer
  /// when polled; a 0 entry models a blocked or browned-out tag. With a
  /// positive retry_budget a non-answering tag consumes
  /// (1 + retry_budget) poll timeouts (retries backed off exponentially)
  /// and is then quarantined for quarantine_rounds rounds.
  [[nodiscard]] PollingResult run_round(
      const std::vector<core::MmTag>& tags, const channel::Environment& env,
      const std::vector<std::uint8_t>* responsive = nullptr);

  [[nodiscard]] const PollingConfig& config() const { return config_; }
  /// Tags currently serving a quarantine sentence.
  [[nodiscard]] std::size_t quarantined_count() const {
    return quarantine_.size();
  }

 private:
  reader::MmWaveReader reader_;
  phy::RateTable rates_;
  PollingConfig config_;
  /// tag_id -> rounds remaining. Never populated when retry_budget == 0.
  std::unordered_map<std::uint32_t, int> quarantine_;
};

}  // namespace mmtag::mac
