#include "src/mac/polling.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/channel/geometry.hpp"
#include "src/obs/gate.hpp"
#include "src/obs/metrics.hpp"
#include "src/phy/frame.hpp"
#include "src/phys/units.hpp"

namespace mmtag::mac {

namespace {

obs::Histogram& poll_us_metric() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("mac.polling.poll_us");
  return hist;
}

}  // namespace

double PollingResult::aggregate_throughput_bps(
    std::size_t payload_bits) const {
  if (total_time_s <= 0.0) return 0.0;
  return static_cast<double>(tags_read) *
         static_cast<double>(payload_bits) / total_time_s;
}

PollingScheduler::PollingScheduler(reader::MmWaveReader reader,
                                   phy::RateTable rates,
                                   PollingConfig config)
    : reader_(std::move(reader)),
      rates_(std::move(rates)),
      config_(config) {}

PollingResult PollingScheduler::run_round(
    const std::vector<core::MmTag>& tags, const channel::Environment& env,
    const std::vector<std::uint8_t>* responsive) {
  PollingResult result;
  result.polls.reserve(tags.size());

  // Visit in bearing order: adjacent polls usually share a beam direction.
  std::vector<std::size_t> order(tags.size());
  std::iota(order.begin(), order.end(), 0u);
  const channel::Vec2 origin = reader_.pose().position;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return channel::bearing_rad(origin, tags[a].pose().position) <
           channel::bearing_rad(origin, tags[b].pose().position);
  });

  double previous_bearing = 1e9;  // Force a switch on the first poll.
  for (const std::size_t index : order) {
    const core::MmTag& tag = tags[index];

    // A quarantined tag sits the round out; the sentence ticks down each
    // round it is skipped and expires once it reaches zero. retry_budget 0
    // never populates the map, so the legacy path pays one empty() check.
    if (!quarantine_.empty()) {
      const auto sentence = quarantine_.find(tag.id());
      if (sentence != quarantine_.end()) {
        PollRecord record;
        record.tag_id = tag.id();
        record.attempts = 0;
        record.quarantined = true;
        result.polls.push_back(record);
        if (--sentence->second <= 0) quarantine_.erase(sentence);
        continue;
      }
    }

    const double bearing =
        channel::bearing_rad(origin, tag.pose().position);
    reader_.steer_to_world(bearing);
    const auto link = reader_.evaluate_link(tag, env, rates_);

    PollRecord record;
    record.tag_id = tag.id();
    record.rate_bps = link.achievable_rate_bps;
    record.reachable = link.achievable_rate_bps > 0.0;
    const bool answers =
        record.reachable &&
        (responsive == nullptr || (*responsive)[index] != 0);
    if (answers) {
      // Manchester doubles the on-air chips, matching SdmInventory.
      const double on_air_bits = 2.0 * static_cast<double>(
          phy::TagFrame::frame_bits(config_.payload_bits) +
          config_.poll_overhead_bits);
      record.time_s = on_air_bits / link.achievable_rate_bps;
      // Charge a beam switch when the bearing moved more than ~a degree.
      if (std::abs(bearing - previous_bearing) > phys::deg_to_rad(1.0)) {
        record.time_s += config_.beam_switch_overhead_s;
      }
      previous_bearing = bearing;
      ++result.tags_read;
      result.total_time_s += record.time_s;
      if constexpr (obs::kObsEnabled) {
        poll_us_metric().record(
            static_cast<std::uint64_t>(record.time_s * 1e6));
      }
    } else if (config_.retry.effective_budget(config_.retry_budget) > 0) {
      // No answer: the original poll plus every retry burns a timeout.
      // Backoff gaps (the policy's delay ladder) are spent polling other
      // tags, so only the timeouts hold the channel. The budget exhausted,
      // the tag is quarantined and stops taxing subsequent rounds.
      const int budget = config_.retry.effective_budget(config_.retry_budget);
      resil::RetryPolicy backoff = config_.retry;
      if (!backoff.backs_off()) backoff.base_s = config_.backoff_base_s;
      record.attempts = 1 + budget;
      record.time_s =
          static_cast<double>(record.attempts) * config_.poll_timeout_s;
      for (int j = 1; j <= budget; ++j) {
        record.backoff_s += backoff.delay_s(j, tag.id());
      }
      if (std::abs(bearing - previous_bearing) > phys::deg_to_rad(1.0)) {
        record.time_s += config_.beam_switch_overhead_s;
      }
      previous_bearing = bearing;
      result.polls_timed_out += record.attempts;
      result.total_time_s += record.time_s;
      quarantine_[tag.id()] = config_.quarantine_rounds;
      ++result.quarantines;
    }
    result.polls.push_back(record);
  }
  return result;
}

}  // namespace mmtag::mac
