// Minimal discrete-event engine for MAC simulations.
//
// Events are (time, sequence, action) triples executed in time order;
// the sequence number makes simultaneous events deterministic (FIFO within
// a timestamp), which keeps every MAC experiment reproducible under a fixed
// RNG seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mmtag::mac {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute time `at_s` (must not precede now()).
  void schedule(double at_s, Action action);

  /// Schedule `action` `delay_s` seconds from now.
  void schedule_in(double delay_s, Action action);

  /// Run until the queue drains or `until_s` is reached (infinity = drain).
  /// Returns the number of events executed.
  std::size_t run(double until_s = kForever);

  /// Current simulation time [s]. Starts at 0.
  [[nodiscard]] double now() const { return now_s_; }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  static constexpr double kForever = 1.0e300;

 private:
  struct Event {
    double at_s;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at_s != b.at_s) return a.at_s > b.at_s;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_s_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mmtag::mac
