#include "src/mac/event_queue.hpp"

#include <cassert>

namespace mmtag::mac {

void EventQueue::schedule(double at_s, Action action) {
  assert(at_s >= now_s_ && "cannot schedule into the past");
  heap_.push(Event{at_s, next_seq_++, std::move(action)});
}

void EventQueue::schedule_in(double delay_s, Action action) {
  assert(delay_s >= 0.0);
  schedule(now_s_ + delay_s, std::move(action));
}

std::size_t EventQueue::run(double until_s) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().at_s <= until_s) {
    // priority_queue::top() is const; move out via const_cast-free copy of
    // the action after popping the metadata.
    Event event = heap_.top();
    heap_.pop();
    now_s_ = event.at_s;
    event.action();
    ++executed;
  }
  // Advance the clock to the horizon even when events remain beyond it —
  // run(t) means "simulate up to time t".
  if (until_s < kForever && now_s_ < until_s) {
    now_s_ = until_s;
  }
  return executed;
}

}  // namespace mmtag::mac
