#include "src/mac/mimo_reader.hpp"

#include <algorithm>
#include <cassert>

namespace mmtag::mac {

MimoInventory::MimoInventory(reader::MmWaveReader reader,
                             phy::RateTable rates, InventoryConfig config,
                             int chains)
    : reader_(std::move(reader)),
      rates_(std::move(rates)),
      config_(config),
      chains_(chains) {
  assert(chains_ >= 1);
}

MimoInventoryResult MimoInventory::run(
    const std::vector<antenna::Beam>& codebook,
    const std::vector<core::MmTag>& tags, const channel::Environment& env,
    std::mt19937_64& rng) {
  MimoInventoryResult result;
  result.tags_total = static_cast<int>(tags.size());

  // Round-robin partition of the codebook across chains.
  std::vector<std::vector<antenna::Beam>> shares(
      static_cast<std::size_t>(chains_));
  for (std::size_t b = 0; b < codebook.size(); ++b) {
    shares[b % static_cast<std::size_t>(chains_)].push_back(codebook[b]);
  }

  double slowest = 0.0;
  double single_chain_total = 0.0;
  for (const std::vector<antenna::Beam>& share : shares) {
    if (share.empty()) continue;
    SdmInventory chain(reader_, rates_, config_);
    InventoryResult chain_result = chain.run(share, tags, env, rng);
    // A tag reachable through beams in several shares would be read twice;
    // dedupe by capping at the population (shares partition the codebook,
    // and each tag is only assigned its nearest beam, so in practice each
    // tag appears in exactly one share).
    result.tags_read += chain_result.tags_read;
    single_chain_total += chain_result.total_time_s;
    slowest = std::max(slowest, chain_result.total_time_s);
    result.per_chain.push_back(std::move(chain_result));
  }
  result.tags_read = std::min(result.tags_read, result.tags_total);
  result.total_time_s = slowest;
  result.speedup_vs_single =
      slowest > 0.0 ? single_chain_total / slowest : 1.0;
  return result;
}

}  // namespace mmtag::mac
