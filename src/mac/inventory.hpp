// SDM inventory: reading a population of tags beam by beam.
//
// Paper Sec. 9, "Supporting Multiple Tags": "a simple technique to support
// multiple tags is to use Spatial Division Multiplexing (SDM). In this
// technique, the reader steers its beam and scans the environment. Hence,
// it can read the tags one by one." Tags that land in the same beam
// direction contend via framed slotted Aloha (aloha.hpp).
//
// Timing model: each beam dwell costs a fixed switching overhead plus the
// Aloha slots, where a slot carries one tag frame at the data rate the
// beam's link supports. The discrete-event queue sequences the dwells so
// per-tag read latencies are exact.
#pragma once

#include <random>
#include <vector>

#include "src/antenna/codebook.hpp"
#include "src/channel/environment.hpp"
#include "src/core/tag.hpp"
#include "src/mac/aloha.hpp"
#include "src/phy/rate_table.hpp"
#include "src/reader/reader.hpp"

namespace mmtag::mac {

struct InventoryConfig {
  AlohaConfig aloha;
  /// Mechanical/electrical beam switching overhead per dwell [s].
  double beam_switch_overhead_s = 100e-6;
  /// Tag frame payload carried per successful slot [bits].
  std::size_t payload_bits = 96;  ///< EPC-96-style identifier.
};

struct BeamInventory {
  antenna::Beam beam;
  int tags_in_beam = 0;
  AlohaStats aloha;
  double link_rate_bps = 0.0;  ///< Rate of the weakest tag in the beam.
  double dwell_time_s = 0.0;
};

struct InventoryResult {
  std::vector<BeamInventory> beams;
  int tags_total = 0;
  int tags_read = 0;
  double total_time_s = 0.0;
  /// Identifier bits delivered per second of inventory.
  [[nodiscard]] double aggregate_throughput_bps(
      std::size_t payload_bits) const;
};

class SdmInventory {
 public:
  SdmInventory(reader::MmWaveReader reader, phy::RateTable rates,
               InventoryConfig config);

  /// Run one full inventory pass over `codebook`. Tags are assigned to the
  /// beam whose boresight is closest to their bearing from the reader
  /// *and* whose link supports a nonzero rate; unreachable tags stay
  /// unread. Uses the event queue internally for exact dwell timing.
  [[nodiscard]] InventoryResult run(const std::vector<antenna::Beam>& codebook,
                                    const std::vector<core::MmTag>& tags,
                                    const channel::Environment& env,
                                    std::mt19937_64& rng);

  [[nodiscard]] const InventoryConfig& config() const { return config_; }

 private:
  reader::MmWaveReader reader_;
  phy::RateTable rates_;
  InventoryConfig config_;
};

}  // namespace mmtag::mac
