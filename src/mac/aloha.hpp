// Framed slotted Aloha — the in-beam MAC (paper Sec. 9, "MAC Protocol").
//
// "One possible solution is to use similar MAC protocol as RFIDs such as
// Aloha protocol." When several tags share one beam direction they collide;
// framed slotted Aloha resolves them: the reader announces a frame of 2^Q
// slots, every unread tag picks one uniformly, singleton slots deliver a
// frame (subject to link errors), collisions retry in the next frame.
// Three Q policies are provided, from dumb to EPC-grade.
#pragma once

#include <random>

namespace mmtag::mac {

/// Frame-size adaptation policy.
enum class QPolicy {
  kFixed,     ///< Q never changes.
  kEpc,       ///< EPC Gen2 Q-algorithm (Qfp +/- 0.5 per collision/empty).
  kOptimal,   ///< Q = round(log2(remaining tags)) — genie-aided optimum.
};

struct AlohaConfig {
  int initial_q = 4;             ///< Frame size 2^Q slots.
  QPolicy policy = QPolicy::kEpc;
  double epc_c = 0.5;            ///< EPC Qfp adjustment constant.
  /// Probability a singleton slot's frame survives the link (CRC passes).
  double slot_success_probability = 0.98;
  int max_rounds = 64;           ///< Give up after this many frames.
};

struct AlohaStats {
  int tags_total = 0;
  int tags_read = 0;
  int rounds = 0;
  long slots_total = 0;
  long slots_success = 0;
  long slots_collision = 0;
  long slots_empty = 0;

  /// Fraction of slots that delivered a tag (the Aloha efficiency; the
  /// theoretical optimum for framed Aloha is 1/e ~ 0.368).
  [[nodiscard]] double efficiency() const;
};

/// Simulate framed slotted Aloha until all `tag_count` tags are read or
/// `config.max_rounds` frames elapse.
[[nodiscard]] AlohaStats run_framed_aloha(int tag_count,
                                          const AlohaConfig& config,
                                          std::mt19937_64& rng);

}  // namespace mmtag::mac
