// TDM coordination of multiple readers — the conclusion experiment E6
// forces: same-channel simultaneous readers cannot coexist at room scale,
// and the 24 GHz ISM band holds only one 2 GHz channel, so dense gigabit
// deployments must take turns.
//
// The coordinator assigns repeating time slots to readers, weighted by
// demand (tags served), and reports each reader's airtime share and
// effective rate — the scheduling half of the "MAC protocol" future work
// (paper Sec. 9).
#pragma once

#include <string>
#include <vector>

namespace mmtag::mac {

struct TdmaReaderDemand {
  std::string name;
  double solo_rate_bps = 0.0;  ///< Rate the reader gets when alone.
  double weight = 1.0;         ///< Scheduling weight (e.g. tags served).
};

struct TdmaSlotAssignment {
  std::string reader;
  double start_s = 0.0;
  double duration_s = 0.0;
};

struct TdmaSchedule {
  std::vector<TdmaSlotAssignment> slots;  ///< One superframe.
  double superframe_s = 0.0;

  /// Airtime fraction assigned to `reader_index` (matching the demand
  /// order used to build the schedule).
  [[nodiscard]] double share(std::size_t reader_index) const;
};

class TdmaCoordinator {
 public:
  /// `superframe_s` — schedule period; `guard_s` — dead time charged at
  /// each slot boundary (radio retune).
  TdmaCoordinator(double superframe_s, double guard_s);

  /// Build one superframe: each reader gets a contiguous slot whose length
  /// is proportional to its weight, minus the guard.
  [[nodiscard]] TdmaSchedule build(
      const std::vector<TdmaReaderDemand>& demands) const;

  /// Effective rate reader `i` sees under `schedule`:
  /// solo rate x airtime share.
  [[nodiscard]] static double effective_rate_bps(
      const TdmaSchedule& schedule, const TdmaReaderDemand& demand,
      std::size_t reader_index);

 private:
  double superframe_s_;
  double guard_s_;
};

}  // namespace mmtag::mac
