#include "src/mac/inventory.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/channel/geometry.hpp"
#include "src/mac/event_queue.hpp"
#include "src/phy/frame.hpp"
#include "src/phys/units.hpp"

namespace mmtag::mac {

double InventoryResult::aggregate_throughput_bps(
    std::size_t payload_bits) const {
  if (total_time_s <= 0.0) return 0.0;
  return static_cast<double>(tags_read) *
         static_cast<double>(payload_bits) / total_time_s;
}

SdmInventory::SdmInventory(reader::MmWaveReader reader, phy::RateTable rates,
                           InventoryConfig config)
    : reader_(std::move(reader)),
      rates_(std::move(rates)),
      config_(config) {}

InventoryResult SdmInventory::run(const std::vector<antenna::Beam>& codebook,
                                  const std::vector<core::MmTag>& tags,
                                  const channel::Environment& env,
                                  std::mt19937_64& rng) {
  InventoryResult result;
  result.tags_total = static_cast<int>(tags.size());
  result.beams.reserve(codebook.size());

  // Assign each tag to the nearest-boresight beam with a usable link.
  std::vector<std::vector<std::size_t>> beam_tags(codebook.size());
  std::vector<double> beam_rate(codebook.size(),
                                std::numeric_limits<double>::infinity());
  for (std::size_t t = 0; t < tags.size(); ++t) {
    const double bearing = channel::bearing_rad(
        reader_.pose().position, tags[t].pose().position);
    std::size_t best_beam = 0;
    double best_offset = std::numeric_limits<double>::infinity();
    for (std::size_t b = 0; b < codebook.size(); ++b) {
      const double offset = std::abs(
          phys::wrap_angle_rad(codebook[b].boresight_rad - bearing));
      if (offset < best_offset) {
        best_offset = offset;
        best_beam = b;
      }
    }
    // Check the link through that beam actually works.
    reader_.steer_to_world(codebook[best_beam].boresight_rad);
    const reader::LinkReport link =
        reader_.evaluate_link(tags[t], env, rates_);
    if (link.achievable_rate_bps > 0.0) {
      beam_tags[best_beam].push_back(t);
      beam_rate[best_beam] =
          std::min(beam_rate[best_beam], link.achievable_rate_bps);
    }
  }

  // Sequence the dwells through the event queue: one event per beam, each
  // computing its Aloha contention and advancing time by the dwell length.
  EventQueue queue;
  const std::size_t frame_bits =
      phy::TagFrame::frame_bits(config_.payload_bits) * 2;  // Manchester.
  double cursor_s = 0.0;
  for (std::size_t b = 0; b < codebook.size(); ++b) {
    if (beam_tags[b].empty()) continue;  // Reader sees no response; skip.
    const double rate = beam_rate[b];
    assert(rate > 0.0 && !std::isinf(rate));
    const double slot_s = static_cast<double>(frame_bits) / rate;

    queue.schedule(cursor_s, [this, b, &beam_tags, &beam_rate, slot_s,
                              &result, &rng, &codebook]() {
      BeamInventory beam;
      beam.beam = codebook[b];
      beam.tags_in_beam = static_cast<int>(beam_tags[b].size());
      beam.link_rate_bps = beam_rate[b];
      beam.aloha = run_framed_aloha(beam.tags_in_beam, config_.aloha, rng);
      beam.dwell_time_s = config_.beam_switch_overhead_s +
                          static_cast<double>(beam.aloha.slots_total) * slot_s;
      result.tags_read += beam.aloha.tags_read;
      result.beams.push_back(std::move(beam));
    });
    // Conservative reservation: actual dwell is computed inside the event;
    // accumulate afterwards.
    cursor_s += config_.beam_switch_overhead_s;
  }
  queue.run();

  double total = 0.0;
  for (const BeamInventory& beam : result.beams) total += beam.dwell_time_s;
  result.total_time_s = total;
  return result;
}

}  // namespace mmtag::mac
