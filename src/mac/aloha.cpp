#include "src/mac/aloha.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace mmtag::mac {

double AlohaStats::efficiency() const {
  if (slots_total == 0) return 0.0;
  return static_cast<double>(slots_success) /
         static_cast<double>(slots_total);
}

namespace {

int clamp_q(double q) {
  return std::clamp(static_cast<int>(std::round(q)), 0, 15);
}

}  // namespace

AlohaStats run_framed_aloha(int tag_count, const AlohaConfig& config,
                            std::mt19937_64& rng) {
  assert(tag_count >= 0);
  AlohaStats stats;
  stats.tags_total = tag_count;

  int remaining = tag_count;
  double qfp = static_cast<double>(config.initial_q);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  while (remaining > 0 && stats.rounds < config.max_rounds) {
    ++stats.rounds;
    int q = clamp_q(qfp);
    if (config.policy == QPolicy::kOptimal) {
      // Frame size matched to the population: optimal slot count ~= tags.
      q = clamp_q(std::log2(std::max(1, remaining)));
    }
    const int slots = 1 << q;
    stats.slots_total += slots;

    // Each unread tag picks a slot uniformly.
    std::vector<int> occupancy(static_cast<std::size_t>(slots), 0);
    std::uniform_int_distribution<int> pick(0, slots - 1);
    for (int t = 0; t < remaining; ++t) {
      ++occupancy[static_cast<std::size_t>(pick(rng))];
    }

    int read_this_round = 0;
    for (const int occupants : occupancy) {
      if (occupants == 0) {
        ++stats.slots_empty;
        if (config.policy == QPolicy::kEpc) {
          qfp = std::max(0.0, qfp - config.epc_c);
        }
      } else if (occupants == 1) {
        if (coin(rng) <= config.slot_success_probability) {
          ++stats.slots_success;
          ++read_this_round;
        } else {
          // Link error: the tag stays unread but the slot is spent.
          ++stats.slots_empty;
        }
      } else {
        ++stats.slots_collision;
        if (config.policy == QPolicy::kEpc) {
          qfp = std::min(15.0, qfp + config.epc_c);
        }
      }
    }
    remaining -= read_this_round;
    stats.tags_read += read_this_round;
  }
  return stats;
}

}  // namespace mmtag::mac
