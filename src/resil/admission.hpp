// Admission control and load shedding on packet-pool occupancy.
//
// A traffic engine that admits every offered flow while its buffer pools
// are dry does not degrade — it collapses: every flow stalls, goodput
// craters uniformly, and the high-value traffic drowns with the rest.
// Graceful degradation sheds load *before* the pools saturate, lowest
// priority first, and keeps shedding decisions out of the parallel
// fan-out so they are a deterministic function of the offered load.
//
// The controller speaks in pool occupancy watermarks. plan_shedding()
// runs on the coordinating thread before flows fan out: given each
// flow's priority class and peak buffer demand against a total buffer
// budget, it admits classes from highest priority down until the next
// class would push projected occupancy past the high watermark, then
// sheds the remainder (within the boundary class, highest flow index
// first — a fixed order). Shed flows are surfaced as resil.shed.* obs
// counters and per-flow flags, never silently dropped. The watermark
// pair gives hysteresis: shedding starts above `high`, and the planner
// sheds down to `low` so the system re-admits with a margin instead of
// oscillating at the cliff.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmtag::resil {

struct AdmissionConfig {
  /// Master switch; false keeps the engine's legacy admit-all path,
  /// bit for bit.
  bool enabled = false;
  /// Total buffer budget [packets] the node pledges across concurrent
  /// flows. 0 disables occupancy projection (nothing sheds).
  std::size_t pool_budget_packets = 0;
  /// Projected occupancy above which shedding starts.
  double high_watermark = 0.85;
  /// Shedding target: admit only until projected occupancy <= low.
  double low_watermark = 0.70;
  /// Priority classes; flow f belongs to class (f % priority_classes),
  /// class 0 highest.
  int priority_classes = 4;
};

/// One shedding plan: which flows run, which are shed.
struct AdmissionPlan {
  std::vector<std::uint8_t> admitted;  ///< Per flow, 1 = runs.
  std::size_t shed_flows = 0;
  std::size_t admitted_flows = 0;
  /// Projected buffer demand of the admitted set [packets].
  std::size_t projected_packets = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Decide admission for `flows` flows, each needing `per_flow_packets`
  /// buffer slots at peak. Deterministic in its arguments; coordinating
  /// thread only.
  [[nodiscard]] AdmissionPlan plan_shedding(std::size_t flows,
                                            std::size_t per_flow_packets) const;

  /// Online pressure check for callers holding a live pool: true when
  /// current occupancy (in_use / capacity) is still below the high
  /// watermark. Reads pressure only — never acquires a slot, never
  /// counts an exhaustion (the PacketPool::try_acquire contract).
  [[nodiscard]] bool under_pressure(std::size_t in_use,
                                    std::size_t capacity) const;

  [[nodiscard]] const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
};

}  // namespace mmtag::resil
