// Grid-correlated fault domains: failures that take out a *rectangle*.
//
// Independent per-reader outages (fault::ReaderOutageModel) miss the
// failure mode that actually hurts a metro deployment: shared
// infrastructure. A power feeder, a backhaul aggregation switch, or a
// flooded conduit does not kill a random reader — it kills every reader
// in a contiguous region at once, which is exactly when per-link
// recovery is useless and a control plane that re-homes service earns
// its keep. An OutageDomain is that incident: an inclusive rectangle of
// the reader grid down for a half-open epoch interval. A DomainSchedule
// is a list of them, applied by scale::MetroWorld on the coordinating
// thread before each epoch's fan-out (no randomness — incidents are
// scripted, so a bench can place one exactly where the margin gate
// needs it).
#pragma once

#include <cstdint>
#include <vector>

namespace mmtag::resil {

/// One scripted incident: readers with grid coordinates in
/// [x0, x1] x [y0, y1] (inclusive) are down for epochs [start, end).
struct OutageDomain {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;
  std::uint64_t start_epoch = 0;
  std::uint64_t end_epoch = 0;

  [[nodiscard]] bool covers_epoch(std::uint64_t epoch) const {
    return epoch >= start_epoch && epoch < end_epoch;
  }
  [[nodiscard]] bool covers_reader(int gx, int gy) const {
    return gx >= x0 && gx <= x1 && gy >= y0 && gy <= y1;
  }
};

struct DomainSchedule {
  std::vector<OutageDomain> domains;

  [[nodiscard]] bool active() const { return !domains.empty(); }

  /// Write the epoch's up/down mask for a readers_x * readers_y grid
  /// (row-major, reader r at grid (r % readers_x, r / readers_x)).
  /// `up` is resized and starts all-1; domains covering the epoch zero
  /// their rectangles.
  void apply(std::uint64_t epoch, int readers_x, int readers_y,
             std::vector<std::uint8_t>* up) const;

  /// Readers down at `epoch` (no mask materialization).
  [[nodiscard]] std::size_t down_count(std::uint64_t epoch, int readers_x,
                                       int readers_y) const;
};

}  // namespace mmtag::resil
