#include "src/resil/breaker.hpp"

#include <cassert>

#include "src/obs/metrics.hpp"
#include "src/obs/stats.hpp"

namespace mmtag::resil {

namespace {

obs::Counter& opened_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("resil.breaker.opened");
  return counter;
}
obs::Counter& reclosed_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("resil.breaker.reclosed");
  return counter;
}

}  // namespace

void CircuitBreaker::record_failure() {
  switch (state_) {
    case BreakerState::kClosed:
      if (++failures_ >= config_.failure_threshold) {
        state_ = BreakerState::kOpen;
        open_remaining_ = config_.open_epochs;
      }
      break;
    case BreakerState::kHalfOpen:
      // The probe failed: a fresh sentence.
      ++failures_;
      state_ = BreakerState::kOpen;
      open_remaining_ = config_.open_epochs;
      break;
    case BreakerState::kOpen:
      // Traffic already in flight when the breaker opened; nothing new.
      break;
  }
}

void CircuitBreaker::record_success() {
  switch (state_) {
    case BreakerState::kClosed:
      failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      state_ = BreakerState::kClosed;
      failures_ = 0;
      break;
    case BreakerState::kOpen:
      break;
  }
}

void CircuitBreaker::tick_epoch() {
  if (state_ == BreakerState::kOpen && --open_remaining_ <= 0) {
    state_ = BreakerState::kHalfOpen;
  }
}

BreakerBank::BreakerBank(std::size_t links, BreakerConfig config)
    : config_(config) {
  assert(config_.failure_threshold >= 1);
  assert(config_.open_epochs >= 1);
  breakers_.assign(links, CircuitBreaker(config_));
}

void BreakerBank::record_failure(std::size_t link) {
  CircuitBreaker& b = breakers_[link];
  const BreakerState before = b.state();
  b.record_failure();
  if (before != BreakerState::kOpen && b.state() == BreakerState::kOpen) {
    ++stats_.opened;
    opened_metric().add(1);
  }
}

void BreakerBank::record_success(std::size_t link) {
  CircuitBreaker& b = breakers_[link];
  const BreakerState before = b.state();
  b.record_success();
  if (before == BreakerState::kHalfOpen &&
      b.state() == BreakerState::kClosed) {
    ++stats_.reclosed;
    reclosed_metric().add(1);
  }
}

void BreakerBank::tick_epoch() {
  for (CircuitBreaker& b : breakers_) {
    const BreakerState before = b.state();
    b.tick_epoch();
    if (before == BreakerState::kOpen &&
        b.state() == BreakerState::kHalfOpen) {
      ++stats_.half_opened;
    }
  }
}

std::size_t BreakerBank::open_count() const {
  std::size_t open = 0;
  for (const CircuitBreaker& b : breakers_) {
    if (b.state() == BreakerState::kOpen) ++open;
  }
  return open;
}

std::uint64_t BreakerBank::fingerprint() const {
  obs::Fnv1a h;
  h.mix_u64(static_cast<std::uint64_t>(breakers_.size()));
  for (const CircuitBreaker& b : breakers_) {
    h.mix_u64(static_cast<std::uint64_t>(b.state()));
    h.mix_u64(static_cast<std::uint64_t>(b.consecutive_failures()));
  }
  h.mix_u64(stats_.opened);
  h.mix_u64(stats_.reclosed);
  h.mix_u64(stats_.half_opened);
  return h.digest();
}

}  // namespace mmtag::resil
