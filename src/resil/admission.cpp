#include "src/resil/admission.hpp"

#include <algorithm>
#include <cassert>

#include "src/obs/metrics.hpp"

namespace mmtag::resil {

namespace {

obs::Counter& shed_flows_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("resil.shed.flows");
  return counter;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  assert(config_.priority_classes >= 1);
  assert(config_.low_watermark <= config_.high_watermark);
  assert(config_.high_watermark <= 1.0 && config_.low_watermark >= 0.0);
}

AdmissionPlan AdmissionController::plan_shedding(
    std::size_t flows, std::size_t per_flow_packets) const {
  AdmissionPlan plan;
  plan.admitted.assign(flows, 1);
  plan.admitted_flows = flows;
  plan.projected_packets = flows * per_flow_packets;
  if (!config_.enabled || config_.pool_budget_packets == 0 ||
      per_flow_packets == 0 || flows == 0) {
    return plan;
  }
  const double budget = static_cast<double>(config_.pool_budget_packets);
  const auto occupancy = [&](std::size_t admitted) {
    return static_cast<double>(admitted * per_flow_packets) / budget;
  };
  if (occupancy(flows) <= config_.high_watermark) return plan;

  // Over the high watermark: shed down to the low one. The admitted
  // count is the largest that fits under `low`; victims are chosen
  // lowest priority class first (highest class index), highest flow
  // index first within a class — a total order, so the plan is a pure
  // function of (flows, per_flow_packets, config).
  const auto target = static_cast<std::size_t>(
      config_.low_watermark * budget / static_cast<double>(per_flow_packets));
  const std::size_t keep = std::min(flows, std::max<std::size_t>(target, 1));
  std::size_t to_shed = flows - keep;
  const auto classes = static_cast<std::size_t>(config_.priority_classes);
  for (std::size_t cls = classes; cls-- > 0 && to_shed > 0;) {
    for (std::size_t f = flows; f-- > 0 && to_shed > 0;) {
      if (f % classes != cls) continue;
      plan.admitted[f] = 0;
      --to_shed;
    }
  }
  plan.admitted_flows = 0;
  for (const std::uint8_t a : plan.admitted) plan.admitted_flows += a;
  plan.shed_flows = flows - plan.admitted_flows;
  plan.projected_packets = plan.admitted_flows * per_flow_packets;
  shed_flows_metric().add(plan.shed_flows);
  return plan;
}

bool AdmissionController::under_pressure(std::size_t in_use,
                                         std::size_t capacity) const {
  if (!config_.enabled || capacity == 0) return false;
  return static_cast<double>(in_use) >
         config_.high_watermark * static_cast<double>(capacity);
}

}  // namespace mmtag::resil
