// Shared retry policy: capped exponential backoff with decorrelated
// jitter, plus per-destination retry budgets.
//
// Every retry loop in the stack — SR-ARQ packet budgets, stop-and-wait
// frame budgets, the polling scheduler's timeout ladder, the reader
// cell's fault-path backoff — used to carry its own fixed constants.
// RetryPolicy centralizes them behind one deterministic contract:
//
//   * The budget check is a pure predicate (`exhausted(attempts)`), so a
//     caller's control flow is identical whether the budget came from a
//     legacy config field or an adaptive controller.
//   * Backoff delays are a pure function of (attempt, key): the delay
//     ladder is base * 2^(attempt-1) clamped to `cap_s`, and jitter is
//     realized by *hashing* derive_seed streams, never by drawing from
//     the caller's engine. A policy therefore never perturbs the RNG
//     draw order of the session it throttles — configured to the legacy
//     fixed schedule (zero base, or the uncapped doubling a ReaderCell
//     already used), every frozen fingerprint in the tree is preserved
//     bit for bit (DESIGN.md Sec. 15).
//
// RetryLedger adds the per-destination dimension: one consecutive-failure
// counter per destination (tag, reader, link), charged and reset by the
// caller, with the budget question delegated to the policy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmtag::resil {

struct RetryPolicy {
  /// Attempts allowed before `exhausted` trips. <= 0 means "inherit": the
  /// wiring site substitutes its legacy config budget, so a default
  /// policy is behavior-identical to the pre-resil code.
  int budget = 0;
  /// First backoff delay [s]; doubles per further attempt. 0 disables
  /// backoff entirely (the legacy fixed schedule).
  double base_s = 0.0;
  /// Ceiling on one backoff delay [s]. <= 0 means uncapped (the legacy
  /// ReaderCell ladder).
  double cap_s = 0.0;
  /// Jitter fraction in [0, 1): each delay is scaled by a deterministic
  /// factor in [1 - jitter, 1), decorrelated across (key, attempt) pairs
  /// via derive_seed hashing. 0 disables jitter (and its hash).
  double jitter = 0.0;
  /// Stream root for the jitter hash; give each subsystem its own.
  std::uint64_t jitter_seed = 0;

  /// True once `attempts` attempts have been spent. `fallback_budget` is
  /// the legacy config value used when this policy inherits (budget <= 0).
  [[nodiscard]] bool exhausted(int attempts, int fallback_budget) const {
    const int limit = budget > 0 ? budget : fallback_budget;
    return attempts >= limit;
  }

  /// The effective budget after inheritance.
  [[nodiscard]] int effective_budget(int fallback_budget) const {
    return budget > 0 ? budget : fallback_budget;
  }

  /// Backoff delay before retry number `attempt` (1-based: attempt 1 is
  /// the first retry) of destination/item `key`. Pure function — no
  /// engine draws — so legacy-configured policies (base_s == 0) return
  /// exactly 0.0 and perturb nothing.
  [[nodiscard]] double delay_s(int attempt, std::uint64_t key) const;

  /// True when the policy would ever delay a retry.
  [[nodiscard]] bool backs_off() const { return base_s > 0.0; }
};

/// Consecutive-failure bookkeeping per destination. The ledger owns the
/// counters; the policy owns the budget/backoff math. Fixed population,
/// no allocation after construction, single-threaded (coordinating
/// thread or one cell's event loop).
class RetryLedger {
 public:
  RetryLedger() = default;
  explicit RetryLedger(std::size_t destinations)
      : failures_(destinations, 0) {}

  void reset(std::size_t destination) {
    failures_[destination] = 0;
  }
  /// Charge one failed attempt; returns the consecutive-failure count
  /// including this one.
  int charge(std::size_t destination) { return ++failures_[destination]; }
  [[nodiscard]] int failures(std::size_t destination) const {
    return failures_[destination];
  }
  /// Delegate the budget question to `policy`.
  [[nodiscard]] bool exhausted(std::size_t destination,
                               const RetryPolicy& policy,
                               int fallback_budget) const {
    return policy.exhausted(failures_[destination], fallback_budget);
  }
  [[nodiscard]] std::size_t destinations() const { return failures_.size(); }

 private:
  std::vector<int> failures_;
};

}  // namespace mmtag::resil
