// Per-link circuit breakers: stop hammering a path that keeps failing.
//
// The classic three-state machine, epoch-stepped and fully deterministic:
//
//           failure x threshold              timer expires
//   Closed ------------------------> Open ----------------> HalfOpen
//     ^                               ^                        |
//     |            success            |        failure         |
//     +-------------------------------+------------------------+
//
// Closed counts consecutive failures and opens at the threshold. Open
// refuses traffic (`allow() == false`) for `open_epochs` epoch ticks.
// HalfOpen admits a bounded number of probes: one success closes the
// breaker, one failure re-opens it for a fresh sentence.
//
// The mesh wires a BreakerBank over its directed links: forwarding
// records a failure when a hop lands on (or is aimed at) a dead reader
// and a success when a frame crosses the link alive; route selection
// skips open links, and table rebuilds scale an open link's believed
// cost so reconverged paths steer around it (forwarding.cpp). Everything
// runs on the coordinating thread — state transitions are a pure
// function of the observed event sequence, so a given incident always
// produces bit-identical breaker trajectories (DESIGN.md Sec. 15).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmtag::resil {

struct BreakerConfig {
  /// Consecutive failures that open a Closed breaker.
  int failure_threshold = 3;
  /// Epoch ticks an Open breaker refuses traffic before half-opening.
  int open_epochs = 1;
  /// Probes a HalfOpen breaker admits before re-opening on silence is
  /// implicitly 1 per epoch: the first recorded outcome decides.
  /// Believed-cost multiplier applied to a not-allowed link at route
  /// rebuild time (feedback into the routing metric).
  double open_cost_penalty = 8.0;
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

class CircuitBreaker {
 public:
  CircuitBreaker() = default;
  explicit CircuitBreaker(BreakerConfig config) : config_(config) {}

  void record_failure();
  void record_success();
  /// Advance the Open timer one epoch.
  void tick_epoch();

  [[nodiscard]] BreakerState state() const { return state_; }
  /// May traffic use this link right now? HalfOpen allows (that is the
  /// probe); Open refuses.
  [[nodiscard]] bool allow() const { return state_ != BreakerState::kOpen; }
  [[nodiscard]] int consecutive_failures() const { return failures_; }

 private:
  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int failures_ = 0;
  int open_remaining_ = 0;
};

/// Aggregate trip counts, for stats blocks and fingerprints.
struct BreakerBankStats {
  std::uint64_t opened = 0;     ///< Closed/HalfOpen -> Open transitions.
  std::uint64_t reclosed = 0;   ///< HalfOpen -> Closed recoveries.
  std::uint64_t half_opened = 0;
};

/// One breaker per directed link, shared config, fixed population.
class BreakerBank {
 public:
  BreakerBank() = default;
  BreakerBank(std::size_t links, BreakerConfig config);

  void record_failure(std::size_t link);
  void record_success(std::size_t link);
  /// Tick every breaker (fixed index order) at an epoch boundary.
  void tick_epoch();

  [[nodiscard]] bool allow(std::size_t link) const {
    return breakers_[link].allow();
  }
  [[nodiscard]] BreakerState state(std::size_t link) const {
    return breakers_[link].state();
  }
  [[nodiscard]] std::size_t links() const { return breakers_.size(); }
  [[nodiscard]] std::size_t open_count() const;
  [[nodiscard]] const BreakerBankStats& stats() const { return stats_; }
  [[nodiscard]] const BreakerConfig& config() const { return config_; }

  /// FNV-1a digest over every breaker's (state, failures) in link order.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  BreakerConfig config_;
  std::vector<CircuitBreaker> breakers_;
  BreakerBankStats stats_;
};

}  // namespace mmtag::resil
