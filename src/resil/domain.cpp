#include "src/resil/domain.hpp"

#include <algorithm>
#include <cassert>

namespace mmtag::resil {

void DomainSchedule::apply(std::uint64_t epoch, int readers_x, int readers_y,
                           std::vector<std::uint8_t>* up) const {
  assert(readers_x > 0 && readers_y > 0 && up != nullptr);
  const auto n = static_cast<std::size_t>(readers_x) *
                 static_cast<std::size_t>(readers_y);
  up->assign(n, 1);
  for (const OutageDomain& d : domains) {
    if (!d.covers_epoch(epoch)) continue;
    const int x0 = std::clamp(d.x0, 0, readers_x - 1);
    const int x1 = std::clamp(d.x1, 0, readers_x - 1);
    const int y0 = std::clamp(d.y0, 0, readers_y - 1);
    const int y1 = std::clamp(d.y1, 0, readers_y - 1);
    for (int gy = y0; gy <= y1; ++gy) {
      for (int gx = x0; gx <= x1; ++gx) {
        (*up)[static_cast<std::size_t>(gy) *
                  static_cast<std::size_t>(readers_x) +
              static_cast<std::size_t>(gx)] = 0;
      }
    }
  }
}

std::size_t DomainSchedule::down_count(std::uint64_t epoch, int readers_x,
                                       int readers_y) const {
  std::vector<std::uint8_t> up;
  apply(epoch, readers_x, readers_y, &up);
  std::size_t down = 0;
  for (const std::uint8_t u : up) down += u == 0 ? 1 : 0;
  return down;
}

}  // namespace mmtag::resil
