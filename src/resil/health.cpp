#include "src/resil/health.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/obs/metrics.hpp"
#include "src/obs/stats.hpp"

namespace mmtag::resil {

namespace {

obs::Counter& suspected_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("resil.health.suspected");
  return counter;
}
obs::Counter& cleared_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("resil.health.cleared");
  return counter;
}

}  // namespace

HealthMonitor::HealthMonitor(std::size_t entities, HealthConfig config)
    : config_(config), accum_(entities), state_(entities) {
  assert(config_.phi_suspect > 0.0);
  assert(config_.min_miss_probability > 0.0 &&
         config_.min_miss_probability <= config_.max_miss_probability &&
         config_.max_miss_probability < 1.0);
  assert(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0);
  assert(config_.probe_interval_epochs >= 1);
}

void HealthMonitor::record(std::size_t entity, std::uint64_t attempts,
                           std::uint64_t successes) noexcept {
  assert(entity < accum_.size());
  Accumulator& a = accum_[entity];
  a.attempts.fetch_add(attempts, std::memory_order_relaxed);
  a.successes.fetch_add(successes, std::memory_order_relaxed);
}

void HealthMonitor::end_epoch() {
  ++epochs_;
  suspected_count_ = 0;
  for (std::size_t e = 0; e < state_.size(); ++e) {
    Accumulator& a = accum_[e];
    const std::uint64_t attempts =
        a.attempts.exchange(0, std::memory_order_relaxed);
    const std::uint64_t successes =
        a.successes.exchange(0, std::memory_order_relaxed);
    EntityState& s = state_[e];

    const bool evidence = attempts > 0 || config_.silence_is_miss;
    if (evidence) {
      const bool miss = successes == 0;
      if (miss) {
        // Suspicion accrues against the *pre-miss* healthy model: the
        // clamped EWMA is read first, so a clean-history entity pays the
        // full floor improbability (>= 1.3 decades) on its first miss.
        const double p = std::clamp(s.ewma_miss, config_.min_miss_probability,
                                    config_.max_miss_probability);
        const double per_miss = -std::log10(p);
        ++s.miss_streak;
        s.phi = static_cast<double>(s.miss_streak) * per_miss;
        // Only the streak's first miss is healthy-model evidence; the
        // rest is the failure in progress, which must not teach the
        // detector that being down is normal.
        if (!s.last_was_miss) {
          s.ewma_miss += config_.ewma_alpha * (1.0 - s.ewma_miss);
        }
        s.last_was_miss = true;
      } else {
        s.ewma_miss *= 1.0 - config_.ewma_alpha;
        s.miss_streak = 0;
        s.phi = 0.0;
        s.last_was_miss = false;
      }
    }

    const bool suspect = s.phi >= config_.phi_suspect;
    if (suspect) {
      ++suspected_count_;
      if (s.suspected_since == 0) {
        s.suspected_since = epochs_;
        s.probe_countdown = config_.probe_interval_epochs;
        suspected_metric().add(1);
      }
      // Half-open probe cadence: sit out probe_interval - 1 epochs, then
      // serve one probe epoch. A success there clears everything above;
      // continued silence just re-arms the countdown.
      --s.probe_countdown;
      if (s.probe_countdown <= 0) {
        s.serve = true;
        s.probe_countdown = config_.probe_interval_epochs;
      } else {
        s.serve = false;
      }
    } else {
      if (s.suspected_since != 0) cleared_metric().add(1);
      s.suspected_since = 0;
      s.probe_countdown = 0;
      s.serve = true;
    }
  }
}

std::uint64_t HealthMonitor::fingerprint() const {
  obs::Fnv1a h;
  h.mix_u64(epochs_);
  h.mix_u64(static_cast<std::uint64_t>(suspected_count_));
  for (const EntityState& s : state_) {
    h.mix_double(s.phi);
    h.mix_double(s.ewma_miss);
    h.mix_u64(static_cast<std::uint64_t>(s.miss_streak));
    h.mix_u64(s.serve ? 1 : 0);
    h.mix_u64(s.suspected_since);
  }
  return h.digest();
}

}  // namespace mmtag::resil
