// Phi-accrual-style failure detection from observed outcomes.
//
// The monitor watches entities (readers, backhaul links) through the only
// evidence a deployed control plane actually has: per-epoch counts of
// attempts and successes reported by the data path. It never reads the
// FaultSchedule — detection is inference, not oracle lookup.
//
// Model: an epoch is a *miss* when the entity produced no success (zero
// successes against nonzero attempts, or silence — a down reader reports
// nothing at all). Healthy miss probability is tracked per entity with an
// EWMA learned only from non-streak evidence (a success epoch, or the
// first miss after a success) so a long outage cannot poison its own
// detector. The suspicion level is the phi-accrual statistic
//
//   phi = miss_streak * -log10(p_miss_healthy)
//
// i.e. the improbability, in decades, of the observed consecutive-miss
// run under the healthy model. With the default floor p >= 0.05 a single
// miss already contributes >= 1.3 decades, so a hard outage crosses the
// default threshold (phi >= 1) in one epoch and even a noisy entity
// crosses within two — the detection-lag gate bench_r1_resil enforces.
//
// Threading contract (DESIGN.md Sec. 15): record() is wait-free and may
// be called from any worker (per-entity relaxed atomics; integer adds
// commute, so totals are bit-identical for any interleaving). All
// *stateful* detection — the snapshot, the EWMA update, the phi draw, the
// serve/probe decision — happens in end_epoch() on the coordinating
// thread, walking entities in fixed index order. Thread count therefore
// cannot influence a single suspicion bit.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmtag::resil {

struct HealthConfig {
  /// Suspicion threshold in decades of improbability.
  double phi_suspect = 1.0;
  /// Floor on the learned healthy miss probability. Keeps one miss worth
  /// -log10(0.05) ~ 1.3 decades even for an entity with a spotless
  /// history, bounding detection lag from above.
  double min_miss_probability = 0.05;
  /// Ceiling on the learned healthy miss probability; above it the
  /// "healthy" model would explain any outage away. At 0.3 one miss is
  /// worth >= 0.52 decades, so even the noisiest entity is suspected
  /// within two consecutive misses — the structural bound behind the
  /// detection-lag gate.
  double max_miss_probability = 0.3;
  /// EWMA weight of one new miss-rate observation.
  double ewma_alpha = 0.2;
  /// Suspected entities are re-probed every this many epochs (half-open:
  /// one serving epoch; a success clears suspicion, silence re-confirms
  /// it). Must be >= 1.
  int probe_interval_epochs = 2;
  /// When true (default) an epoch with zero recorded attempts counts as a
  /// miss — the right reading for entities that are polled every epoch.
  bool silence_is_miss = true;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(std::size_t entities, HealthConfig config = {});

  /// Report one epoch's outcomes for `entity`. Wait-free; callable from
  /// parallel workers while the epoch runs.
  void record(std::size_t entity, std::uint64_t attempts,
              std::uint64_t successes) noexcept;

  /// Snapshot every entity's reported counts, update the suspicion state,
  /// and zero the accumulators for the next epoch. Coordinating thread
  /// only, after the fan-out joined; entities are walked in index order.
  void end_epoch();

  [[nodiscard]] std::size_t entities() const { return state_.size(); }
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }

  /// Suspicion as of the last end_epoch().
  [[nodiscard]] double phi(std::size_t entity) const {
    return state_[entity].phi;
  }
  [[nodiscard]] bool suspected(std::size_t entity) const {
    return state_[entity].phi >= config_.phi_suspect;
  }
  /// Degraded-mode service decision: serve the entity this epoch? True
  /// for healthy entities always, and for suspected ones only on their
  /// periodic probe epoch (the half-open gap that lets recovery clear).
  [[nodiscard]] bool should_serve(std::size_t entity) const {
    return state_[entity].serve;
  }
  [[nodiscard]] std::size_t suspected_count() const { return suspected_count_; }
  /// Epoch (1-based end_epoch count) the entity was first suspected in
  /// its current suspicion episode; 0 when never / not currently.
  [[nodiscard]] std::uint64_t suspected_since(std::size_t entity) const {
    return state_[entity].suspected_since;
  }

  [[nodiscard]] const HealthConfig& config() const { return config_; }

  /// FNV-1a digest of the full detection state (phi, streaks, EWMA,
  /// serve bits, in entity order) — the bit-identity check bench_r1_resil
  /// compares across thread counts.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  struct alignas(64) Accumulator {
    std::atomic<std::uint64_t> attempts{0};
    std::atomic<std::uint64_t> successes{0};
  };
  struct EntityState {
    double ewma_miss = 0.0;   ///< Learned healthy miss probability.
    double phi = 0.0;
    int miss_streak = 0;
    int probe_countdown = 0;  ///< Epochs until a suspected entity probes.
    bool serve = true;
    bool last_was_miss = false;
    std::uint64_t suspected_since = 0;
  };

  HealthConfig config_;
  std::vector<Accumulator> accum_;
  std::vector<EntityState> state_;
  std::size_t suspected_count_ = 0;
  std::uint64_t epochs_ = 0;
};

}  // namespace mmtag::resil
