#include "src/resil/retry.hpp"

#include <algorithm>
#include <cmath>

#include "src/sim/rng.hpp"

namespace mmtag::resil {

double RetryPolicy::delay_s(int attempt, std::uint64_t key) const {
  if (base_s <= 0.0 || attempt <= 0) return 0.0;
  // Exponential ladder in closed form; ldexp keeps it exact for the
  // attempt counts a budget can reach.
  double delay = std::ldexp(base_s, attempt - 1);
  if (cap_s > 0.0) delay = std::min(delay, cap_s);
  if (jitter > 0.0) {
    // Decorrelated jitter without touching any engine: hash the
    // (seed, key, attempt) triple into a uniform in [0, 1). Two retries
    // of different destinations — or different attempts of one — land at
    // uncorrelated points of the [1 - jitter, 1) band, which is what
    // breaks retry synchronization across a fleet.
    const std::uint64_t bits = sim::derive_seed(
        sim::derive_seed(jitter_seed, key), static_cast<std::uint64_t>(attempt));
    const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
    delay *= 1.0 - jitter * u;
  }
  return delay;
}

}  // namespace mmtag::resil
