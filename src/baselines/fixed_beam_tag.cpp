#include "src/baselines/fixed_beam_tag.hpp"

#include <cmath>

#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"

namespace mmtag::baselines {

FixedBeamTag::FixedBeamTag(int elements, double frequency_hz)
    : array_(antenna::UniformLinearArray::half_wavelength(elements,
                                                          frequency_hz)),
      element_pattern_() {}

FixedBeamTag FixedBeamTag::like_mmtag_prototype() {
  return FixedBeamTag(phys::kMmTagPrototypeElements, phys::kMmTagCarrierHz);
}

double FixedBeamTag::monostatic_gain_db(double theta_rad) const {
  // In-phase (broadside) excitation on both passes: the incident wave is
  // summed with uniform weights, re-fed uniformly, and re-radiated. The
  // normalized array factor applies on reception and again on re-radiation.
  const std::vector<antenna::Complex> weights =
      antenna::uniform_weights(array_.size());
  const double af_power =
      std::norm(array_.array_factor(weights, theta_rad));  // Peak = N.
  const double element_db = element_pattern_.gain_dbi(theta_rad);
  constexpr double kFloorDb = -100.0;
  if (af_power <= 1e-10) return kFloorDb;
  // Two array-factor passes + two element-pattern passes (in and out).
  return 2.0 * phys::ratio_to_db(af_power) + 2.0 * element_db;
}

}  // namespace mmtag::baselines
