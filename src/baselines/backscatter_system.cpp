#include "src/baselines/backscatter_system.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/phys/constants.hpp"
#include "src/phys/pathloss.hpp"
#include "src/phys/units.hpp"

namespace mmtag::baselines {

double BackscatterSystem::snr_db(double range_m) const {
  const phys::NoiseModel noise(phys::kRoomTemperatureK, noise_figure_db);
  return budget.received_power_dbm(range_m) - noise.power_dbm(bandwidth_hz);
}

double BackscatterSystem::achievable_rate_bps(double range_m) const {
  if (snr_db(range_m) < required_snr_db) return 0.0;
  double rate = bandwidth_hz * bits_per_hz;
  if (protocol_rate_cap_bps > 0.0) {
    rate = std::min(rate, protocol_rate_cap_bps);
  }
  return rate;
}

double BackscatterSystem::max_range_m() const {
  const phys::NoiseModel noise(phys::kRoomTemperatureK, noise_figure_db);
  const double required_dbm =
      noise.power_dbm(bandwidth_hz) + required_snr_db;
  return budget.max_range_m(required_dbm);
}

BackscatterSystem rfid_epc_gen2() {
  BackscatterSystem sys;
  sys.name = "RFID (EPC Gen2, 915 MHz)";
  sys.budget.tx_power_dbm = 30.0;        // 1 W FCC reader.
  sys.budget.reader_tx_gain_dbi = 6.0;   // Circular patch panel.
  sys.budget.reader_rx_gain_dbi = 6.0;
  sys.budget.tag_rx_gain_dbi = 2.0;      // Tag dipole.
  sys.budget.tag_tx_gain_dbi = 2.0;
  sys.budget.modulation_loss_db = 5.0;   // FM0 backscatter loss.
  sys.budget.implementation_loss_db = 5.0;
  sys.budget.frequency_hz = 915.0e6;
  sys.bandwidth_hz = phys::khz(500.0);   // FCC Part 15 channel (paper Sec.1).
  sys.bits_per_hz = 1.0;                 // FM0 at BLF ~ channel width.
  sys.protocol_rate_cap_bps = 640.0e3;   // EPC Gen2 ceiling.
  return sys;
}

BackscatterSystem wifi_backscatter() {
  BackscatterSystem sys;
  sys.name = "Wi-Fi Backscatter (Kellogg et al.)";
  sys.budget.tx_power_dbm = 20.0;        // Wi-Fi AP.
  sys.budget.reader_tx_gain_dbi = 2.0;
  sys.budget.reader_rx_gain_dbi = 2.0;
  sys.budget.tag_rx_gain_dbi = 2.0;
  sys.budget.tag_tx_gain_dbi = 2.0;
  sys.budget.modulation_loss_db = 8.0;   // CSI/RSSI-level signalling.
  sys.budget.implementation_loss_db = 5.0;
  sys.budget.frequency_hz = 2.45e9;
  sys.bandwidth_hz = phys::mhz(20.0);
  // Information is conveyed per Wi-Fi packet, not per hertz: the effective
  // symbol rate is the packet rate, capping throughput near 1 kbps
  // (the original paper's figure).
  sys.bits_per_hz = 0.5;
  sys.protocol_rate_cap_bps = 1.0e3;
  return sys;
}

BackscatterSystem hitchhike() {
  BackscatterSystem sys;
  sys.name = "HitchHike (codeword translation)";
  sys.budget.tx_power_dbm = 20.0;
  sys.budget.reader_tx_gain_dbi = 2.0;
  sys.budget.reader_rx_gain_dbi = 2.0;
  sys.budget.tag_rx_gain_dbi = 2.0;
  sys.budget.tag_tx_gain_dbi = 2.0;
  sys.budget.modulation_loss_db = 6.0;
  sys.budget.implementation_loss_db = 5.0;
  sys.budget.frequency_hz = 2.45e9;
  sys.bandwidth_hz = phys::mhz(20.0);
  sys.bits_per_hz = 0.5;
  sys.protocol_rate_cap_bps = 300.0e3;   // "0.3 Mbps in the best scenario".
  return sys;
}

BackscatterSystem backfi() {
  BackscatterSystem sys;
  sys.name = "BackFi (full-duplex Wi-Fi)";
  sys.budget.tx_power_dbm = 20.0;
  sys.budget.reader_tx_gain_dbi = 6.0;
  sys.budget.reader_rx_gain_dbi = 6.0;
  sys.budget.tag_rx_gain_dbi = 2.0;
  sys.budget.tag_tx_gain_dbi = 2.0;
  sys.budget.modulation_loss_db = 3.0;   // Higher-order phase modulation.
  sys.budget.implementation_loss_db = 5.0;
  sys.budget.frequency_hz = 2.45e9;
  sys.bandwidth_hz = phys::mhz(20.0);
  sys.bits_per_hz = 0.5;
  sys.protocol_rate_cap_bps = 5.0e6;     // "up to 5 Mbps at ... 3 ft".
  return sys;
}

BackscatterSystem mmtag_system() {
  BackscatterSystem sys;
  sys.name = "mmTag (24 GHz Van Atta)";
  sys.budget = phys::BackscatterLinkBudget::mmtag_prototype();
  sys.bandwidth_hz = phys::ghz(2.0);
  sys.bits_per_hz = 0.5;                 // OOK at B/2.
  sys.protocol_rate_cap_bps = 0.0;       // No protocol ceiling.
  return sys;
}

std::vector<BackscatterSystem> all_systems() {
  return {rfid_epc_gen2(), wifi_backscatter(), hitchhike(), backfi(),
          mmtag_system()};
}

}  // namespace mmtag::baselines
