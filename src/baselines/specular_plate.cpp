#include "src/baselines/specular_plate.hpp"

#include <cassert>
#include <cmath>

#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"

namespace mmtag::baselines {

namespace {
double sinc(double x) {
  if (std::abs(x) < 1e-9) return 1.0;
  return std::sin(phys::kPi * x) / (phys::kPi * x);
}
}  // namespace

SpecularPlate::SpecularPlate(double width_m, double frequency_hz)
    : width_m_(width_m), frequency_hz_(frequency_hz) {
  assert(width_m_ > 0.0);
  assert(frequency_hz_ > 0.0);
}

SpecularPlate SpecularPlate::like_mmtag_prototype() {
  return SpecularPlate(0.060, phys::kMmTagCarrierHz);
}

double SpecularPlate::monostatic_gain_db(double theta_rad) const {
  const double lambda = phys::wavelength_m(frequency_hz_);
  // Peak monostatic gain of a flat strip (2-D form): proportional to the
  // electrical width squared.
  const double w_over_lambda = width_m_ / lambda;
  const double peak_power = std::pow(2.0 * phys::kPi * w_over_lambda, 2.0) /
                            (4.0 * phys::kPi);
  const double cos_t = std::cos(theta_rad);
  if (cos_t <= 0.0) return -100.0;
  const double lobe = sinc(w_over_lambda * std::sin(2.0 * theta_rad));
  const double power = peak_power * cos_t * cos_t * lobe * lobe;
  constexpr double kFloorDb = -100.0;
  if (power <= 1e-10) return kFloorDb;
  return phys::ratio_to_db(power);
}

double SpecularPlate::reflection_direction_rad(double theta_in_rad) {
  return -theta_in_rad;
}

}  // namespace mmtag::baselines
