// Active-radio power models for the energy comparison (experiment C4).
//
// Paper Sec. 1: backscatter cuts IoT power "by orders of magnitude" versus
// active radios, and phased arrays alone "consume a significant amount of
// power" (a few watts, Secs. 3 & 5). These models put numbers behind both
// statements: a full active mmWave transceiver (phased array + PA + data
// converters), an active Wi-Fi radio, and a BLE radio, each reporting
// energy per bit at a given rate so the bench can chart the gap against
// TagEnergyModel.
#pragma once

#include <string>
#include <vector>

#include "src/antenna/phased_array.hpp"

namespace mmtag::baselines {

struct ActiveRadioModel {
  std::string name;
  double dc_power_w = 0.0;        ///< Power while transmitting.
  double peak_rate_bps = 0.0;     ///< Rate at which that power is spent.

  /// Energy per bit at the radio's peak rate [J/bit].
  [[nodiscard]] double energy_per_bit_j() const;
};

/// Active 24 GHz mmWave transceiver: 16-element phased array + PA + ADC/DSP.
[[nodiscard]] ActiveRadioModel active_mmwave_radio();

/// 802.11n Wi-Fi SoC (~1 W at ~100 Mbps effective).
[[nodiscard]] ActiveRadioModel active_wifi_radio();

/// BLE radio (~30 mW at 1 Mbps) — the low-power active benchmark.
[[nodiscard]] ActiveRadioModel active_ble_radio();

/// All active baselines.
[[nodiscard]] std::vector<ActiveRadioModel> all_active_radios();

}  // namespace mmtag::baselines
