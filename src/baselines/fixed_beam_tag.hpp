// Fixed-beam mmWave backscatter tag — the Kimionis et al. [18] baseline.
//
// Paper Sec. 3: "This work is limited by its fixed beam and does not solve
// the beam searching problem... It only works when the tag is exactly in
// front of the reader." We model it as the same patch array as mmTag but
// fed in-phase through a corporate network (no mirrored pairing): both the
// receive and the re-radiate apertures are fixed broadside beams, so the
// monostatic response collapses as soon as the tag turns away from the
// reader. Experiment C2 plots this against the Van Atta curve.
#pragma once

#include <complex>

#include "src/antenna/pattern.hpp"
#include "src/antenna/ula.hpp"

namespace mmtag::baselines {

class FixedBeamTag {
 public:
  /// `elements` patches at half-wavelength spacing, boresight-fed.
  FixedBeamTag(int elements, double frequency_hz);

  /// Same aperture as the mmTag prototype (6 elements, 24 GHz) for a fair
  /// comparison.
  [[nodiscard]] static FixedBeamTag like_mmtag_prototype();

  /// Monostatic reflection gain at incidence `theta_rad` [dB rel. isotropic
  /// scatterer]: the wave is received through the fixed broadside beam and
  /// re-radiated through the same fixed beam, so the array factor applies
  /// twice.
  [[nodiscard]] double monostatic_gain_db(double theta_rad) const;

  [[nodiscard]] int size() const { return array_.size(); }

 private:
  antenna::UniformLinearArray array_;
  antenna::PatchPattern element_pattern_;
};

}  // namespace mmtag::baselines
