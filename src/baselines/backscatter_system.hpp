// Comparable models of every backscatter system the paper cites.
//
// Paper Secs. 1 & 3 quantify the competition: RFID < 1 Mbps at 915 MHz /
// 500 kHz channels, Wi-Fi backscatter ~ 1 Mbps, HitchHike 0.3 Mbps, BackFi
// 5 Mbps at 3 ft. Each system here carries its spectrum allocation, link
// budget and protocol rate cap, so experiment C3 can put them all through
// the *same* evaluation (achievable rate vs range at BER 1e-3) and check
// that the ordering and rough factors the paper claims actually emerge.
#pragma once

#include <string>
#include <vector>

#include "src/phys/link_budget.hpp"
#include "src/phys/noise.hpp"

namespace mmtag::baselines {

struct BackscatterSystem {
  std::string name;
  phys::BackscatterLinkBudget budget;   ///< Two-way link parameters.
  double bandwidth_hz = 0.0;            ///< Occupied channel bandwidth.
  double required_snr_db = 7.0;         ///< Detection threshold at BER 1e-3.
  double noise_figure_db = 5.0;         ///< Receiver NF.
  /// Hard protocol cap [bit/s]: whatever the spec/encoding allows even at
  /// infinite SNR (e.g. EPC Gen2 FM0 tops out near 640 kbps).
  double protocol_rate_cap_bps = 0.0;
  /// Spectral efficiency of the tag modulation [bit/s/Hz] (OOK/FM0 ~ 0.5).
  double bits_per_hz = 0.5;

  /// Thermal-noise-limited SNR at `range_m` [dB].
  [[nodiscard]] double snr_db(double range_m) const;

  /// Achievable rate at `range_m` [bit/s]: bandwidth * bits_per_hz when the
  /// SNR threshold is met (capped by the protocol), else 0.
  [[nodiscard]] double achievable_rate_bps(double range_m) const;

  /// Largest range at which the system still delivers its full rate [m].
  [[nodiscard]] double max_range_m() const;
};

/// EPC Gen2-style UHF RFID: 915 MHz, 500 kHz channel (FCC Part 15, paper
/// Sec. 1), FM0 tag encoding.
[[nodiscard]] BackscatterSystem rfid_epc_gen2();

/// Wi-Fi backscatter (Kellogg et al. [16]): tags signal by modulating CSI/
/// RSSI of 2.4 GHz Wi-Fi packets — sub-Mbps by construction.
[[nodiscard]] BackscatterSystem wifi_backscatter();

/// HitchHike [35]: codeword-translation 802.11b backscatter, 0.3 Mbps
/// best-case (paper Sec. 3).
[[nodiscard]] BackscatterSystem hitchhike();

/// BackFi [4]: full-duplex Wi-Fi reader, 5 Mbps at 3 ft (paper Sec. 3).
[[nodiscard]] BackscatterSystem backfi();

/// mmTag on the same scalar footing (24 GHz, 2 GHz channel, prototype
/// budget) for the C3 comparison table.
[[nodiscard]] BackscatterSystem mmtag_system();

/// All of the above, mmTag last.
[[nodiscard]] std::vector<BackscatterSystem> all_systems();

}  // namespace mmtag::baselines
