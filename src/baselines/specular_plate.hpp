// Specular (mirror-like) flat-plate reflector baseline.
//
// Paper Sec. 5.2: a typical reflector "does this only when the angle of
// incidence is 0 degrees" — it reflects to the *mirror* direction, not back
// to the source. The plate makes the null hypothesis for experiment C2: its
// monostatic response is a sinc-like lobe collapsing off normal incidence,
// while the Van Atta stays flat.
#pragma once

namespace mmtag::baselines {

class SpecularPlate {
 public:
  /// A flat conducting plate of width `width_m` at carrier `frequency_hz`
  /// (the mmTag prototype footprint is 60 mm wide).
  SpecularPlate(double width_m, double frequency_hz);

  /// Plate matching the mmTag prototype aperture.
  [[nodiscard]] static SpecularPlate like_mmtag_prototype();

  /// Monostatic reflection gain at incidence `theta_rad` [dB rel. isotropic
  /// scatterer]: physical-optics flat-plate pattern
  ///   G(theta) ~ G0 * cos^2(theta) * sinc^2( (w/lambda) * sin(2 theta) )
  /// peaking at normal incidence and collapsing off-normal.
  [[nodiscard]] double monostatic_gain_db(double theta_rad) const;

  /// Direction a plane wave from `theta_in` is reflected toward (the mirror
  /// angle -theta_in) — the reason a plate cannot serve a moving reader.
  [[nodiscard]] static double reflection_direction_rad(double theta_in_rad);

 private:
  double width_m_;
  double frequency_hz_;
};

}  // namespace mmtag::baselines
