#include "src/baselines/active_radio.hpp"

#include <cassert>

namespace mmtag::baselines {

double ActiveRadioModel::energy_per_bit_j() const {
  assert(peak_rate_bps > 0.0);
  return dc_power_w / peak_rate_bps;
}

ActiveRadioModel active_mmwave_radio() {
  ActiveRadioModel radio;
  radio.name = "Active mmWave (16-el phased array)";
  const antenna::PhasedArray array = antenna::PhasedArray::typical_24ghz(16);
  // Array bias + PA (0.5 W) + ADC/baseband (0.75 W): lands in the
  // "few watts" band the paper cites for mmWave front-ends.
  radio.dc_power_w = array.dc_power_w() + 0.5 + 0.75;
  radio.peak_rate_bps = 1.0e9;
  return radio;
}

ActiveRadioModel active_wifi_radio() {
  ActiveRadioModel radio;
  radio.name = "Active Wi-Fi (802.11n)";
  radio.dc_power_w = 1.0;
  radio.peak_rate_bps = 100.0e6;
  return radio;
}

ActiveRadioModel active_ble_radio() {
  ActiveRadioModel radio;
  radio.name = "BLE";
  radio.dc_power_w = 0.030;
  radio.peak_rate_bps = 1.0e6;
  return radio;
}

std::vector<ActiveRadioModel> all_active_radios() {
  return {active_mmwave_radio(), active_wifi_radio(), active_ble_radio()};
}

}  // namespace mmtag::baselines
