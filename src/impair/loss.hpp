// Decomposed implementation-loss budget (DESIGN.md Sec. 16,
// docs/IMPAIRMENTS.md).
//
// The legacy link budget charges one opaque `implementation_loss_db`.
// This module replaces it with an auditable sum: each enabled stage
// contributes its small-signal EVM^2 (distortion power against a
// unit-power signal), and a distortion floor of power evm^2 at the
// required operating SNR gamma costs
//
//   L = -10 log10(1 - gamma * evm^2)   [dB],
//
// the SNR penalty that restores the ideal detection margin. Stage
// contributions combine by summing EVM^2 *before* the log (distortion
// powers add; dB losses do not), and a `residual_db` term carries the
// assembly losses (substrate, switch insertion, polarization) that the
// four stages do not model. When gamma * evm^2 >= 1 the link is
// floor-limited — no amount of transmit power restores the margin — and
// the loss is clamped to kFloorLossDb with the flag set.
#pragma once

#include <string_view>
#include <vector>

#include "src/impair/config.hpp"
#include "src/phys/link_budget.hpp"

namespace mmtag::impair {

/// Loss reported when the distortion floor sits at or above the
/// required SNR (the true loss is unbounded).
inline constexpr double kFloorLossDb = 60.0;

/// One stage's share of the decomposed budget.
struct StageLoss {
  /// Stage name ("pa", "phase_noise", "iq", "adc").
  std::string_view stage;
  /// Whether the stage is enabled (disabled stages report zeros).
  bool enabled = false;
  /// Small-signal EVM^2 of the stage against a unit-power signal.
  double evm_squared = 0.0;
  /// Stand-alone SNR penalty of this stage at the required SNR [dB].
  double loss_db = 0.0;
  /// True when this stage alone pushes the floor above the required SNR.
  bool floor_limited = false;
};

/// Full decomposition of the implementation loss.
struct LossReport {
  /// Per-stage shares in fixed pipeline order (PA, phase noise, IQ, ADC).
  std::vector<StageLoss> stages;
  /// Operating SNR the penalty is evaluated at [dB].
  double required_snr_db = 0.0;
  /// Unmodelled assembly losses carried through from the config [dB].
  double residual_db = 0.0;
  /// Joint loss of the enabled stages (sum of EVM^2, then log) [dB].
  double modelled_db = 0.0;
  /// modelled_db + residual_db — the drop-in replacement for the legacy
  /// `implementation_loss_db` scalar [dB].
  double total_db = 0.0;
  /// True when the joint distortion floor reaches the required SNR.
  bool floor_limited = false;
};

/// SNR penalty of a distortion floor of power `evm_squared` at operating
/// SNR `required_snr_db`: -10 log10(1 - gamma evm^2), clamped to
/// kFloorLossDb when gamma evm^2 >= 1.
[[nodiscard]] double stage_loss_db(double evm_squared, double required_snr_db);

/// Decompose `config` into per-stage and total losses at
/// `required_snr_db` (default: the 7 dB the paper's ASK detector needs
/// for BER 1e-3). Pure — records nothing; pair with record().
[[nodiscard]] LossReport decompose(const ImpairmentConfig& config,
                                   double required_snr_db = 7.0);

/// Export `report` to obs: per-stage and total loss histograms in
/// milli-dB (impair.loss_mdb.*) plus an impair.loss.reports counter.
void record(const LossReport& report);

/// Copy of `base` with `implementation_loss_db` replaced by the
/// decomposed total of `config` (and the report exported via record()).
/// With config.any_enabled() false and residual_db 0 the budget is
/// returned unchanged — the bypass contract.
[[nodiscard]] phys::BackscatterLinkBudget impaired_budget(
    const phys::BackscatterLinkBudget& base, const ImpairmentConfig& config,
    double required_snr_db = 7.0);

}  // namespace mmtag::impair
