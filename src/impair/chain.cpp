#include "src/impair/chain.hpp"

#include "src/obs/metrics.hpp"

namespace mmtag::impair {
namespace {

// Per-stage application counters. Only enabled stages record, so bypass
// runs leave the obs export bit-identical to the legacy chain.
void record_stage(const ImpairmentStage& stage, std::size_t samples) {
  if constexpr (obs::kObsEnabled) {
    auto& registry = obs::Registry::instance();
    if (stage.name() == "pa") {
      static obs::Counter& applies = registry.counter("impair.stage.pa.applies");
      applies.add();
    } else if (stage.name() == "phase_noise") {
      static obs::Counter& applies =
          registry.counter("impair.stage.phase_noise.applies");
      applies.add();
    } else if (stage.name() == "iq") {
      static obs::Counter& applies = registry.counter("impair.stage.iq.applies");
      applies.add();
    } else {
      static obs::Counter& applies =
          registry.counter("impair.stage.adc.applies");
      applies.add();
    }
    static obs::Counter& total = registry.counter("impair.stage.samples");
    total.add(static_cast<std::uint64_t>(samples));
  } else {
    (void)stage;
    (void)samples;
  }
}

}  // namespace

ImpairmentChain::ImpairmentChain() : ImpairmentChain(ImpairmentConfig::off()) {}

ImpairmentChain::ImpairmentChain(const ImpairmentConfig& config)
    : config_(config),
      pa_(config.pa),
      phase_noise_(config.phase_noise),
      iq_(config.iq),
      adc_(config.adc) {}

void ImpairmentChain::apply_tx(phy::Waveform& samples,
                               std::uint64_t seed) const {
  if (!config_.pa.enabled || samples.empty()) {
    return;
  }
  pa_.apply(samples, seed);
  record_stage(pa_, samples.size());
  static obs::Counter& calls =
      obs::Registry::instance().counter("impair.apply.tx");
  calls.add();
}

void ImpairmentChain::apply_rx(phy::Waveform& samples,
                               std::uint64_t seed) const {
  if (samples.empty()) {
    return;
  }
  bool any = false;
  if (config_.phase_noise.enabled) {
    phase_noise_.apply(samples, seed);
    record_stage(phase_noise_, samples.size());
    any = true;
  }
  if (config_.iq.enabled) {
    iq_.apply(samples, seed);
    record_stage(iq_, samples.size());
    any = true;
  }
  if (config_.adc.enabled) {
    adc_.apply(samples, seed);
    record_stage(adc_, samples.size());
    any = true;
  }
  if (any) {
    static obs::Counter& calls =
        obs::Registry::instance().counter("impair.apply.rx");
    calls.add();
  }
}

void ImpairmentChain::apply(phy::Waveform& samples, std::uint64_t seed) const {
  apply_tx(samples, seed);
  apply_rx(samples, seed);
}

std::array<const ImpairmentStage*, 4> ImpairmentChain::stages() const {
  return {&pa_, &phase_noise_, &iq_, &adc_};
}

double ImpairmentChain::evm_squared_total() const {
  double total = 0.0;
  if (config_.pa.enabled) total += pa_.evm_squared();
  if (config_.phase_noise.enabled) total += phase_noise_.evm_squared();
  if (config_.iq.enabled) total += iq_.evm_squared();
  if (config_.adc.enabled) total += adc_.evm_squared();
  return total;
}

}  // namespace mmtag::impair
