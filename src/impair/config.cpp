#include "src/impair/config.hpp"

#include "src/impair/chain.hpp"
#include "src/impair/loss.hpp"

namespace mmtag::impair {

ImpairmentConfig ImpairmentConfig::off() { return ImpairmentConfig{}; }

ImpairmentConfig ImpairmentConfig::cmos_24ghz() {
  ImpairmentConfig config;
  config.phase_noise.enabled = true;
  config.pa.enabled = true;
  config.iq.enabled = true;
  config.adc.enabled = true;
  // Residual = the prototype's calibrated 14 dB implementation loss
  // minus what the four stages explain at the 7 dB required SNR, so the
  // decomposed total reproduces the legacy budget exactly
  // (docs/IMPAIRMENTS.md, worked example 1).
  config.residual_db = 0.0;
  const LossReport modelled = decompose(config, 7.0);
  config.residual_db = 14.0 - modelled.modelled_db;
  return config;
}

bool ImpairmentConfig::any_enabled() const {
  return phase_noise.enabled || pa.enabled || iq.enabled || adc.enabled;
}

}  // namespace mmtag::impair
