// Calibrated hardware-impairment parameters (DESIGN.md Sec. 16).
//
// The paper's link budget folds every non-ideality of the prototype into
// one opaque `implementation_loss_db` scalar. This header decomposes that
// scalar into four physical mechanisms with measurable parameters, each
// calibrated against the mmWave transceiver impairment survey of
// Hunukumbure et al., "Performance and Impairment Modelling for Hardware
// Components in Millimetre-wave Transceivers" (arXiv:1803.05665):
//
//   * local-oscillator phase noise   (Wiener linewidth + white floor),
//   * PA nonlinearity                (Rapp AM/AM, p = 2, plus AM/PM),
//   * receiver IQ imbalance          (gain/phase mismatch),
//   * ADC quantization + aperture jitter.
//
// Every stage carries an `enabled` bit; a config with all bits clear is
// the *bypass* mode and is contractually bit-identical to the legacy
// chain — no RNG draws, no sample writes, no metric records (tested by
// test_impair.cpp). Parameter-to-measurement mapping and worked loss
// budgets live in docs/IMPAIRMENTS.md.
#pragma once

namespace mmtag::impair {

/// Local-oscillator phase noise: a Wiener (random-walk) process whose
/// increment variance per sample is 2*pi*linewidth/fs, plus an
/// uncorrelated white phase floor. The Wiener term models the Lorentzian
/// close-in skirt of an integrated CMOS PLL; the white term models the
/// far-out thermal floor folded over the sampling bandwidth.
struct PhaseNoiseParams {
  /// Stage on/off. Off draws no RNG values and writes no samples.
  bool enabled = false;
  /// Two-sided 3-dB Lorentzian linewidth of the LO [Hz].
  double linewidth_hz = 200.0e3;
  /// RMS of the white (uncorrelated) phase floor [degrees].
  double white_phase_deg_rms = 0.6;
  /// Complex-baseband sample rate the increments are drawn at [Hz].
  double sample_rate_hz = 1.0e9;
  /// Demodulator phase-tracking window [samples]: the loss model charges
  /// the mean accumulated Wiener variance over this window, i.e. the
  /// residual the tracker cannot follow.
  int coherence_samples = 64;
};

/// Reader power amplifier: Rapp AM/AM with smoothness p = 2 and a
/// rational tangent-half-angle AM/PM curve (both exactly computable with
/// IEEE +,-,*,/ and sqrt, so the kernel stays bit-identical across SIMD
/// backends; see src/kern/kern.hpp `pa_rapp`).
struct PaParams {
  /// Stage on/off. The stage is deterministic (no RNG draws).
  bool enabled = false;
  /// Input backoff from PA saturation for a unit-power waveform [dB].
  double backoff_db = 8.0;
  /// AM/PM phase rotation when the input amplitude reaches saturation
  /// [degrees]. The curve is ~quadratic in amplitude below saturation.
  double am_pm_deg_at_sat = 5.0;
};

/// Receive-path IQ imbalance: y = mu*x + nu*conj(x) with
/// mu = (1 + g*e^{j phi})/2 and nu = (1 - g*e^{-j phi})/2, where g is the
/// linear gain mismatch and phi the quadrature phase error.
struct IqImbalanceParams {
  /// Stage on/off. The stage is deterministic (no RNG draws).
  bool enabled = false;
  /// I/Q gain mismatch [dB] (g = 10^(mismatch/20)).
  double gain_mismatch_db = 0.5;
  /// Quadrature phase error [degrees].
  double phase_mismatch_deg = 3.0;
};

/// Receiver ADC: mid-tread uniform quantizer with hard clipping at the
/// full-scale amplitude, plus aperture-jitter noise applied as white
/// Gaussian noise whose power follows the slew-rate model
/// (2*pi*B_eff*tau_jitter)^2 against a unit-power signal.
struct AdcParams {
  /// Stage on/off. Off draws no RNG values even when jitter_ps_rms > 0.
  bool enabled = false;
  /// Resolution [bits] per I/Q rail.
  int bits = 6;
  /// Full-scale amplitude: inputs clip at +/- this value per rail. The
  /// chain operates on near-unit-power waveforms, so 2.0 leaves 6 dB of
  /// headroom above the OOK on-state.
  double full_scale = 2.0;
  /// RMS aperture jitter of the sampling clock [ps].
  double jitter_ps_rms = 0.5;
  /// Converter sample rate [Hz]; sets the effective slew bandwidth
  /// B_eff = sample_rate/2 for the jitter-noise model.
  double sample_rate_hz = 1.0e9;
};

/// Full impairment configuration: the four modelled stages plus a
/// residual term for losses the stages do not model (substrate, switch
/// insertion, polarization — the assembly losses of the prototype).
struct ImpairmentConfig {
  /// LO phase noise (stream ordinal 1, RX side).
  PhaseNoiseParams phase_noise;
  /// PA nonlinearity (stream ordinal 0, TX side).
  PaParams pa;
  /// Receiver IQ imbalance (stream ordinal 2, RX side).
  IqImbalanceParams iq;
  /// ADC quantization + jitter (stream ordinal 3, RX side).
  AdcParams adc;
  /// Unmodelled assembly losses [dB], added on top of the modelled
  /// stage losses by impair::decompose().
  double residual_db = 0.0;

  /// All stages disabled, residual 0 — the bypass configuration.
  [[nodiscard]] static ImpairmentConfig off();

  /// Calibrated defaults for a 24 GHz CMOS reader front end
  /// (docs/IMPAIRMENTS.md maps each number to arXiv:1803.05665): all
  /// four stages enabled with the per-stage defaults above and a
  /// residual chosen so the decomposed total reproduces the prototype's
  /// 14 dB `implementation_loss_db` at the 7 dB required SNR.
  [[nodiscard]] static ImpairmentConfig cmos_24ghz();

  /// True when at least one stage's `enabled` bit is set.
  [[nodiscard]] bool any_enabled() const;
};

}  // namespace mmtag::impair
