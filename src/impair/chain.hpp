// Composed impairment pipeline (DESIGN.md Sec. 16).
//
// The chain owns one instance of each stage and applies them in the
// fixed physical order
//
//   TX side:  PA nonlinearity                    (before channel noise)
//   RX side:  phase noise -> IQ imbalance -> ADC (after channel noise)
//
// Disabled stages are skipped without drawing RNG values or touching
// obs, so a fully-disabled chain (bypass) leaves the waveform, every
// RNG stream, and every metric bit-identical to the legacy code path.
// Each stage derives its own RNG stream from the caller's
// per-(epoch, entity) seed via its fixed ordinal, so results are
// bit-identical for any thread count and any stage on/off combination.
#pragma once

#include <array>
#include <cstdint>

#include "src/impair/config.hpp"
#include "src/impair/stages.hpp"

namespace mmtag::impair {

/// The four-stage impairment pipeline, copyable and seed-pure.
class ImpairmentChain {
 public:
  /// Bypass chain (ImpairmentConfig::off()).
  ImpairmentChain();
  /// Chain with the given stage parameters; derived constants are
  /// precomputed once here.
  explicit ImpairmentChain(const ImpairmentConfig& config);

  /// The configuration the chain was built from.
  [[nodiscard]] const ImpairmentConfig& config() const { return config_; }

  /// True when any stage is enabled; false means bypass.
  [[nodiscard]] bool enabled() const { return config_.any_enabled(); }

  /// Apply the enabled transmit-side stages (PA) in place. `seed` is the
  /// per-(epoch, entity) base seed shared with apply_rx.
  void apply_tx(phy::Waveform& samples, std::uint64_t seed) const;

  /// Apply the enabled receive-side stages (phase noise, IQ, ADC) in
  /// their fixed order, in place.
  void apply_rx(phy::Waveform& samples, std::uint64_t seed) const;

  /// apply_tx followed by apply_rx — the noiseless-channel composition.
  void apply(phy::Waveform& samples, std::uint64_t seed) const;

  /// Stage views in fixed pipeline order (PA, phase noise, IQ, ADC),
  /// present regardless of enablement.
  [[nodiscard]] std::array<const ImpairmentStage*, 4> stages() const;

  /// Sum of evm_squared() over the *enabled* stages — the joint
  /// small-signal distortion power against a unit-power signal.
  [[nodiscard]] double evm_squared_total() const;

 private:
  ImpairmentConfig config_;
  PaStage pa_;
  PhaseNoiseStage phase_noise_;
  IqImbalanceStage iq_;
  AdcStage adc_;
};

}  // namespace mmtag::impair
