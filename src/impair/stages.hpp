// Concrete impairment stages (DESIGN.md Sec. 16, docs/IMPAIRMENTS.md).
//
// Each stage precomputes its derived constants in the constructor (the
// only place transcendentals like tan/exp10 run for the deterministic
// stages) and applies the per-sample math through kern::dispatch()
// kernels, so enabled runs are bit-identical across SIMD backends.
// A disabled stage's apply() is a guaranteed no-op: no RNG draws, no
// sample writes.
#pragma once

#include <cstdint>

#include "src/impair/config.hpp"
#include "src/impair/stage.hpp"

namespace mmtag::impair {

/// Rapp AM/AM (p = 2) + rational AM/PM power-amplifier stage.
/// Transmit side, stream ordinal 0, deterministic.
class PaStage final : public ImpairmentStage {
 public:
  /// Precomputes 1/Asat^2 from the backoff and the AM/PM curve
  /// coefficients from the rotation-at-saturation spec.
  explicit PaStage(const PaParams& params);

  [[nodiscard]] std::string_view name() const override { return "pa"; }
  [[nodiscard]] bool tx_side() const override { return true; }
  [[nodiscard]] std::uint64_t stream_ordinal() const override { return 0; }
  void apply(phy::Waveform& samples, std::uint64_t seed) const override;
  [[nodiscard]] double evm_squared() const override { return evm_squared_; }

  /// Compressive gain g(A) of the Rapp curve at amplitude `amplitude`
  /// (reference helper for tests; the kernel computes the same bits).
  [[nodiscard]] double gain_at(double amplitude) const;
  /// AM/PM rotation [radians] at amplitude `amplitude`.
  [[nodiscard]] double phase_at(double amplitude) const;

 private:
  PaParams params_;
  double inv_sat2_ = 0.0;     ///< 1 / Asat^2 for a unit-power input.
  double k_pm_ = 0.0;         ///< AM/PM tangent-half-angle numerator gain.
  double b_pm_ = 0.0;         ///< AM/PM denominator bend (= 1/Asat^2).
  double evm_squared_ = 0.0;  ///< |g(1) e^{j theta(1)} - 1|^2.
};

/// Wiener + white LO phase-noise stage. Receive side, stream ordinal 1,
/// stochastic: coefficients cos/sin(phi_n) are generated in scalar code
/// from the stage's derived stream, then applied with the exact
/// mul_complex kernel.
class PhaseNoiseStage final : public ImpairmentStage {
 public:
  /// Precomputes the per-sample Wiener increment sigma and the white
  /// floor sigma from the linewidth and sample rate.
  explicit PhaseNoiseStage(const PhaseNoiseParams& params);

  [[nodiscard]] std::string_view name() const override {
    return "phase_noise";
  }
  [[nodiscard]] bool tx_side() const override { return false; }
  [[nodiscard]] std::uint64_t stream_ordinal() const override { return 1; }
  void apply(phy::Waveform& samples, std::uint64_t seed) const override;
  [[nodiscard]] double evm_squared() const override { return evm_squared_; }

  /// Wiener increment standard deviation per sample [radians].
  [[nodiscard]] double wiener_sigma() const { return wiener_sigma_; }
  /// White phase floor standard deviation [radians].
  [[nodiscard]] double white_sigma() const { return white_sigma_; }

 private:
  PhaseNoiseParams params_;
  double wiener_sigma_ = 0.0;
  double white_sigma_ = 0.0;
  double evm_squared_ = 0.0;
};

/// Receive IQ-imbalance stage y = mu x + nu conj(x). Receive side,
/// stream ordinal 2, deterministic.
class IqImbalanceStage final : public ImpairmentStage {
 public:
  /// Precomputes mu and nu from the gain/phase mismatch.
  explicit IqImbalanceStage(const IqImbalanceParams& params);

  [[nodiscard]] std::string_view name() const override { return "iq"; }
  [[nodiscard]] bool tx_side() const override { return false; }
  [[nodiscard]] std::uint64_t stream_ordinal() const override { return 2; }
  void apply(phy::Waveform& samples, std::uint64_t seed) const override;
  [[nodiscard]] double evm_squared() const override { return evm_squared_; }

  /// Direct-path coefficient mu.
  [[nodiscard]] phy::Complex mu() const { return mu_; }
  /// Image-path coefficient nu (|nu/mu|^2 is the image power ratio).
  [[nodiscard]] phy::Complex nu() const { return nu_; }

 private:
  IqImbalanceParams params_;
  phy::Complex mu_{1.0, 0.0};
  phy::Complex nu_{0.0, 0.0};
  double evm_squared_ = 0.0;
};

/// ADC mid-tread quantization + aperture-jitter stage. Receive side,
/// stream ordinal 3; stochastic only when jitter_ps_rms > 0.
class AdcStage final : public ImpairmentStage {
 public:
  /// Precomputes the quantizer step from bits/full-scale and the
  /// jitter-noise sigma from the slew-rate model.
  explicit AdcStage(const AdcParams& params);

  [[nodiscard]] std::string_view name() const override { return "adc"; }
  [[nodiscard]] bool tx_side() const override { return false; }
  [[nodiscard]] std::uint64_t stream_ordinal() const override { return 3; }
  void apply(phy::Waveform& samples, std::uint64_t seed) const override;
  [[nodiscard]] double evm_squared() const override { return evm_squared_; }

  /// Quantizer step per I/Q rail.
  [[nodiscard]] double step() const { return step_; }
  /// Aperture-jitter noise standard deviation per rail.
  [[nodiscard]] double jitter_sigma() const { return jitter_sigma_; }

 private:
  AdcParams params_;
  double step_ = 0.0;
  double inv_step_ = 0.0;
  double jitter_sigma_ = 0.0;
  double evm_squared_ = 0.0;
};

}  // namespace mmtag::impair
