// Composable impairment-stage interface (DESIGN.md Sec. 16).
//
// A stage mutates a complex-baseband waveform in place. The contracts
// that make a pipeline of stages deterministic:
//
//   * Fixed stream ordinals. Every stage owns a compile-time ordinal
//     (PA = 0, phase noise = 1, IQ = 2, ADC = 3) and draws randomness
//     only from mt19937_64(sim::derive_seed(seed, ordinal)). Toggling a
//     stage on or off therefore never shifts another stage's stream.
//   * Seed-pure application. apply() is const and uses no state other
//     than the ctor parameters and the passed seed, so the same
//     (waveform, seed) pair always yields the same bits regardless of
//     thread, call order, or how many other entities were processed.
//   * Kernel-exact arithmetic. The per-sample inner loops run through
//     kern::dispatch() kernels restricted to exactly-rounded IEEE ops;
//     transcendental evaluation (cos/sin for phase-noise coefficients)
//     happens in scalar stage code outside the kernels. Output is
//     bit-identical across scalar/SSE4.2/AVX2 backends.
#pragma once

#include <cstdint>
#include <string_view>

#include "src/phy/waveform.hpp"

namespace mmtag::impair {

/// One hardware non-ideality applied in place to a waveform.
class ImpairmentStage {
 public:
  virtual ~ImpairmentStage() = default;

  /// Stable stage name, used for obs metric paths and loss reports.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True for stages applied before channel noise (transmit side),
  /// false for receive-side stages.
  [[nodiscard]] virtual bool tx_side() const = 0;

  /// Fixed RNG stream ordinal (never changes with enablement).
  [[nodiscard]] virtual std::uint64_t stream_ordinal() const = 0;

  /// Mutate `samples` in place. `seed` is the per-(epoch, entity) base
  /// seed; the stage derives its own stream from it via its ordinal.
  /// Deterministic stages ignore the seed entirely.
  virtual void apply(phy::Waveform& samples, std::uint64_t seed) const = 0;

  /// Small-signal error-vector-magnitude-squared contribution of this
  /// stage against a unit-power signal (linear power ratio). Feeds the
  /// per-stage loss decomposition in src/impair/loss.hpp.
  [[nodiscard]] virtual double evm_squared() const = 0;
};

}  // namespace mmtag::impair
