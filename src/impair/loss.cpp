#include "src/impair/loss.hpp"

#include <cmath>

#include "src/impair/chain.hpp"
#include "src/obs/metrics.hpp"

namespace mmtag::impair {

double stage_loss_db(double evm_squared, double required_snr_db) {
  if (evm_squared <= 0.0) {
    return 0.0;
  }
  const double gamma = std::pow(10.0, required_snr_db / 10.0);
  const double floor = gamma * evm_squared;
  if (floor >= 1.0) {
    return kFloorLossDb;
  }
  const double loss = -10.0 * std::log10(1.0 - floor);
  return loss < kFloorLossDb ? loss : kFloorLossDb;
}

LossReport decompose(const ImpairmentConfig& config, double required_snr_db) {
  const ImpairmentChain chain(config);
  const double gamma = std::pow(10.0, required_snr_db / 10.0);

  LossReport report;
  report.required_snr_db = required_snr_db;
  report.residual_db = config.residual_db;

  double evm_total = 0.0;
  for (const ImpairmentStage* stage : chain.stages()) {
    StageLoss entry;
    entry.stage = stage->name();
    // Enablement is per-stage config; the chain skips disabled stages.
    const bool enabled = (stage->name() == "pa" && config.pa.enabled) ||
                         (stage->name() == "phase_noise" &&
                          config.phase_noise.enabled) ||
                         (stage->name() == "iq" && config.iq.enabled) ||
                         (stage->name() == "adc" && config.adc.enabled);
    entry.enabled = enabled;
    if (enabled) {
      entry.evm_squared = stage->evm_squared();
      entry.loss_db = stage_loss_db(entry.evm_squared, required_snr_db);
      entry.floor_limited = gamma * entry.evm_squared >= 1.0;
      evm_total += entry.evm_squared;
    }
    report.stages.push_back(entry);
  }

  report.floor_limited = gamma * evm_total >= 1.0;
  report.modelled_db = stage_loss_db(evm_total, required_snr_db);
  report.total_db = report.modelled_db + report.residual_db;
  return report;
}

void record(const LossReport& report) {
  if constexpr (obs::kObsEnabled) {
    auto& registry = obs::Registry::instance();
    static obs::Counter& reports = registry.counter("impair.loss.reports");
    reports.add();
    for (const StageLoss& entry : report.stages) {
      if (!entry.enabled) {
        continue;
      }
      obs::Histogram* hist = nullptr;
      if (entry.stage == "pa") {
        static obs::Histogram& h = registry.histogram("impair.loss_mdb.pa");
        hist = &h;
      } else if (entry.stage == "phase_noise") {
        static obs::Histogram& h =
            registry.histogram("impair.loss_mdb.phase_noise");
        hist = &h;
      } else if (entry.stage == "iq") {
        static obs::Histogram& h = registry.histogram("impair.loss_mdb.iq");
        hist = &h;
      } else {
        static obs::Histogram& h = registry.histogram("impair.loss_mdb.adc");
        hist = &h;
      }
      hist->record(entry.loss_db * 1000.0);
    }
    static obs::Histogram& modelled =
        registry.histogram("impair.loss_mdb.modelled");
    modelled.record(report.modelled_db * 1000.0);
    static obs::Histogram& total = registry.histogram("impair.loss_mdb.total");
    total.record(report.total_db * 1000.0);
  } else {
    (void)report;
  }
}

phys::BackscatterLinkBudget impaired_budget(
    const phys::BackscatterLinkBudget& base, const ImpairmentConfig& config,
    double required_snr_db) {
  // Bypass contract: an all-off config with no residual changes nothing
  // and records nothing.
  if (!config.any_enabled() && config.residual_db == 0.0) {
    return base;
  }
  const LossReport report = decompose(config, required_snr_db);
  record(report);
  phys::BackscatterLinkBudget budget = base;
  budget.implementation_loss_db = report.total_db;
  return budget;
}

}  // namespace mmtag::impair
