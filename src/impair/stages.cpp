#include "src/impair/stages.hpp"

#include <cmath>
#include <numbers>
#include <random>
#include <vector>

#include "src/kern/kern.hpp"
#include "src/sim/rng.hpp"

namespace mmtag::impair {
namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kDegToRad = kPi / 180.0;

[[nodiscard]] double db_to_linear_power(double db) {
  return std::pow(10.0, db / 10.0);
}

[[nodiscard]] double db_to_linear_amplitude(double db) {
  return std::pow(10.0, db / 20.0);
}

}  // namespace

// --- PaStage ---------------------------------------------------------------

PaStage::PaStage(const PaParams& params) : params_(params) {
  // A unit-power waveform backed off by `backoff_db` sees
  // Asat^2 = 10^(backoff/10), so the kernel's 1/Asat^2 is the inverse.
  inv_sat2_ = 1.0 / db_to_linear_power(params.backoff_db);
  b_pm_ = inv_sat2_;
  // theta(A) = 2 atan(t), t = k A^2 / (1 + b A^2). At A = Asat the
  // denominator is exactly 2, so k = 2 tan(theta_sat / 2) / Asat^2.
  const double theta_sat = params.am_pm_deg_at_sat * kDegToRad;
  k_pm_ = 2.0 * std::tan(0.5 * theta_sat) * inv_sat2_;
  // Deterministic distortion of the unit-amplitude on-state: the error
  // vector between g(1) e^{j theta(1)} and the ideal 1.
  const double g = gain_at(1.0);
  const double theta = phase_at(1.0);
  const double er = g * std::cos(theta) - 1.0;
  const double ei = g * std::sin(theta);
  evm_squared_ = er * er + ei * ei;
}

double PaStage::gain_at(double amplitude) const {
  const double a2 = amplitude * amplitude;
  const double u = a2 * inv_sat2_;
  // Rapp p = 2: g = (1 + (A/Asat)^4)^(-1/4), computed with two exact
  // square roots exactly as the kernel does.
  return 1.0 / std::sqrt(std::sqrt(1.0 + u * u));
}

double PaStage::phase_at(double amplitude) const {
  const double a2 = amplitude * amplitude;
  const double t = (k_pm_ * a2) / (1.0 + b_pm_ * a2);
  return 2.0 * std::atan(t);
}

void PaStage::apply(phy::Waveform& samples, std::uint64_t seed) const {
  (void)seed;  // Deterministic stage.
  if (!params_.enabled || samples.empty()) {
    return;
  }
  kern::dispatch().pa_rapp(samples.data(), samples.size(), inv_sat2_, k_pm_,
                           b_pm_);
}

// --- PhaseNoiseStage -------------------------------------------------------

PhaseNoiseStage::PhaseNoiseStage(const PhaseNoiseParams& params)
    : params_(params) {
  // Wiener increment variance per sample: 2 pi * linewidth * Ts.
  if (params.linewidth_hz > 0.0 && params.sample_rate_hz > 0.0) {
    wiener_sigma_ =
        std::sqrt(2.0 * kPi * params.linewidth_hz / params.sample_rate_hz);
  }
  white_sigma_ = params.white_phase_deg_rms * kDegToRad;
  // Small-angle EVM^2 ~= phase variance: the white floor plus the mean
  // accumulated Wiener variance over the tracking window (variance after
  // k steps is k sigma^2; its mean over k = 0..N-1 is sigma^2 (N-1)/2).
  const double window = static_cast<double>(
      params.coherence_samples > 0 ? params.coherence_samples - 1 : 0);
  evm_squared_ = white_sigma_ * white_sigma_ +
                 wiener_sigma_ * wiener_sigma_ * 0.5 * window;
}

void PhaseNoiseStage::apply(phy::Waveform& samples,
                            std::uint64_t seed) const {
  if (!params_.enabled || samples.empty()) {
    return;
  }
  // Coefficient generation is scalar (cos/sin are not exactly-rounded
  // and never enter kernels); the Hadamard product is kernel-exact.
  std::mt19937_64 rng =
      sim::make_rng(sim::derive_seed(seed, stream_ordinal()));
  std::normal_distribution<double> unit(0.0, 1.0);
  std::vector<phy::Complex> coeff(samples.size());
  double phi = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Two draws per sample in fixed order (walk increment, white floor)
    // so the stream layout never depends on the parameter values.
    phi += wiener_sigma_ * unit(rng);
    const double psi = white_sigma_ * unit(rng);
    const double total = phi + psi;
    coeff[i] = phy::Complex(std::cos(total), std::sin(total));
  }
  kern::dispatch().mul_complex(samples.data(), coeff.data(), samples.size());
}

// --- IqImbalanceStage ------------------------------------------------------

IqImbalanceStage::IqImbalanceStage(const IqImbalanceParams& params)
    : params_(params) {
  const double g = db_to_linear_amplitude(params.gain_mismatch_db);
  const double phi = params.phase_mismatch_deg * kDegToRad;
  const double c = std::cos(phi);
  const double s = std::sin(phi);
  // y = mu x + nu conj(x), mu = (1 + g e^{j phi})/2, nu = (1 - g e^{-j
  // phi})/2 — the standard receive-path model; |nu/mu|^2 is the image
  // power folded onto the signal.
  mu_ = phy::Complex(0.5 * (1.0 + g * c), 0.5 * g * s);
  nu_ = phy::Complex(0.5 * (1.0 - g * c), 0.5 * g * s);
  const double mu2 = mu_.real() * mu_.real() + mu_.imag() * mu_.imag();
  const double nu2 = nu_.real() * nu_.real() + nu_.imag() * nu_.imag();
  evm_squared_ = mu2 > 0.0 ? nu2 / mu2 : 0.0;
}

void IqImbalanceStage::apply(phy::Waveform& samples,
                             std::uint64_t seed) const {
  (void)seed;  // Deterministic stage.
  if (!params_.enabled || samples.empty()) {
    return;
  }
  kern::dispatch().iq_imbalance(samples.data(), mu_, nu_, samples.size());
}

// --- AdcStage --------------------------------------------------------------

AdcStage::AdcStage(const AdcParams& params) : params_(params) {
  const double levels =
      std::pow(2.0, static_cast<double>(params.bits > 0 ? params.bits : 1));
  step_ = 2.0 * params.full_scale / levels;
  inv_step_ = step_ > 0.0 ? 1.0 / step_ : 0.0;
  // Aperture jitter as slew noise: sigma^2 = (2 pi B_eff tau)^2 against
  // a unit-power signal, with B_eff = fs/2 (Nyquist band).
  const double tau = params.jitter_ps_rms * 1e-12;
  const double b_eff = 0.5 * params.sample_rate_hz;
  const double jitter_power = std::pow(2.0 * kPi * b_eff * tau, 2.0);
  // Per-rail sigma: the complex noise power splits evenly over I and Q.
  jitter_sigma_ = std::sqrt(0.5 * jitter_power);
  // Quantization noise step^2/12 per rail -> step^2/6 complex, plus the
  // jitter power, both against unit signal power.
  evm_squared_ = step_ * step_ / 6.0 + jitter_power;
}

void AdcStage::apply(phy::Waveform& samples, std::uint64_t seed) const {
  if (!params_.enabled || samples.empty()) {
    return;
  }
  if (jitter_sigma_ > 0.0) {
    std::mt19937_64 rng =
        sim::make_rng(sim::derive_seed(seed, stream_ordinal()));
    std::normal_distribution<double> unit(0.0, 1.0);
    for (phy::Complex& sample : samples) {
      // Fixed draw order: I rail then Q rail.
      const double ni = jitter_sigma_ * unit(rng);
      const double nq = jitter_sigma_ * unit(rng);
      sample = phy::Complex(sample.real() + ni, sample.imag() + nq);
    }
  }
  kern::dispatch().adc_quantize(samples.data(), samples.size(),
                                params_.full_scale, step_, inv_step_);
}

}  // namespace mmtag::impair
