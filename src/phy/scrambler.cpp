#include "src/phy/scrambler.hpp"

#include <algorithm>
#include <cassert>

namespace mmtag::phy {

Scrambler::Scrambler(std::uint16_t seed) : state_(seed) {
  assert(seed != 0 && "an all-zero LFSR is stuck");
}

bool Scrambler::next_bit() {
  // PRBS-15: feedback from taps 15 and 14 (1-indexed).
  const std::uint16_t bit14 = static_cast<std::uint16_t>((state_ >> 14) & 1u);
  const std::uint16_t bit13 = static_cast<std::uint16_t>((state_ >> 13) & 1u);
  const std::uint16_t feedback = bit14 ^ bit13;
  state_ = static_cast<std::uint16_t>(((state_ << 1) | feedback) & 0x7FFF);
  return feedback != 0;
}

BitVector Scrambler::scramble(const BitVector& bits) {
  BitVector out;
  out.reserve(bits.size());
  for (const bool bit : bits) {
    out.push_back(bit != next_bit());
  }
  return out;
}

BitVector Scrambler::descramble(const BitVector& bits) {
  return scramble(bits);
}

void Scrambler::reset(std::uint16_t seed) {
  assert(seed != 0);
  state_ = seed;
}

std::size_t Scrambler::longest_run(const BitVector& bits) {
  std::size_t longest = 0;
  std::size_t current = 0;
  bool level = false;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i == 0 || bits[i] == level) {
      ++current;
    } else {
      current = 1;
    }
    level = bits[i];
    longest = std::max(longest, current);
  }
  return longest;
}

}  // namespace mmtag::phy
