#include "src/phy/ber.hpp"

#include <cassert>
#include <cmath>

#include "src/phys/units.hpp"

namespace mmtag::phy {

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double q_function_inverse(double p) {
  assert(p > 0.0 && p < 0.5);
  double lo = 0.0;
  double hi = 40.0;  // Q(40) is far below any representable target.
  for (int i = 0; i < 200; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (q_function(mid) > p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

double ook_coherent_ber(double snr_db) {
  const double snr = phys::db_to_ratio(snr_db);
  return q_function(std::sqrt(snr));
}

double ook_noncoherent_ber(double snr_db) {
  const double snr = phys::db_to_ratio(snr_db);
  return 0.5 * std::exp(-snr / 2.0);
}

double bpsk_ber(double snr_db) {
  const double snr = phys::db_to_ratio(snr_db);
  return q_function(std::sqrt(2.0 * snr));
}

double ook_snr_for_ber_db(double target_ber) {
  assert(target_ber > 0.0 && target_ber < 0.5);
  const double x = q_function_inverse(target_ber);
  return phys::ratio_to_db(x * x);
}

}  // namespace mmtag::phy
