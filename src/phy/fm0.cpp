#include "src/phy/fm0.hpp"

#include <cstdint>
#include <vector>

#include "src/kern/kern.hpp"

namespace mmtag::phy {

BitVector fm0_encode(const BitVector& bits) {
  // Branch-free form of the level automaton: the bit boundary always
  // inverts (c0 = !prev) and the mid-bit inverts for '0'
  // (c1 = c0 ^ !bit), with the idle level high before the first bit.
  BitVector chips(bits.size() * 2);
  std::uint8_t prev = 1;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const std::uint8_t bit = bits[i] ? 1 : 0;
    const std::uint8_t c0 = static_cast<std::uint8_t>(prev ^ 1u);
    const std::uint8_t c1 = static_cast<std::uint8_t>(c0 ^ bit ^ 1u);
    chips[2 * i] = c0 != 0;
    chips[2 * i + 1] = c1 != 0;
    prev = c1;
  }
  return chips;
}

std::optional<BitVector> fm0_decode(const BitVector& chips) {
  if (chips.size() % 2 != 0) return std::nullopt;
  const std::size_t nbits = chips.size() / 2;
  if (nbits == 0) return BitVector{};
  // Unpack to bytes for the branch-free kernel: bit i is the XNOR of its
  // chip pair, and validity is one parallel check that every first chip
  // inverts the preceding level.
  std::vector<std::uint8_t> chip_bytes(chips.size());
  for (std::size_t i = 0; i < chips.size(); ++i) {
    chip_bytes[i] = chips[i] ? 1 : 0;
  }
  std::vector<std::uint8_t> bit_bytes(nbits);
  if (kern::dispatch().fm0_decode_bytes(chip_bytes.data(), nbits,
                                        bit_bytes.data()) == 0) {
    return std::nullopt;
  }
  BitVector bits(nbits);
  for (std::size_t i = 0; i < nbits; ++i) bits[i] = bit_bytes[i] != 0;
  return bits;
}

}  // namespace mmtag::phy
