#include "src/phy/fm0.hpp"

namespace mmtag::phy {

BitVector fm0_encode(const BitVector& bits) {
  BitVector chips;
  chips.reserve(bits.size() * 2);
  bool level = true;  // Convention: idle high before the first bit.
  for (const bool bit : bits) {
    level = !level;          // Mandatory inversion at the bit boundary.
    chips.push_back(level);
    if (!bit) level = !level;  // '0' inverts again mid-bit.
    chips.push_back(level);
  }
  return chips;
}

std::optional<BitVector> fm0_decode(const BitVector& chips) {
  if (chips.size() % 2 != 0) return std::nullopt;
  BitVector bits;
  bits.reserve(chips.size() / 2);
  bool level = true;  // Matches the encoder's idle-high convention.
  for (std::size_t i = 0; i < chips.size(); i += 2) {
    const bool first = chips[i];
    const bool second = chips[i + 1];
    // The first chip must be an inversion of the previous level.
    if (first == level) return std::nullopt;
    // Same halves -> '1'; inverted halves -> '0'.
    bits.push_back(first == second);
    level = second;
  }
  return bits;
}

}  // namespace mmtag::phy
