#include "src/phy/rate_adaptation.hpp"

#include <cassert>

namespace mmtag::phy {

RateController::RateController(RateTable table, Params params)
    : table_(std::move(table)), params_(params) {
  assert(params_.up_hysteresis_db >= 0.0);
  assert(params_.up_dwell_count >= 1);
}

double RateController::observe_dbm(double received_power_dbm) {
  // Downgrade immediately when the current tier's bare threshold fails.
  const double sustainable = table_.achievable_rate_bps(received_power_dbm);
  if (sustainable < current_rate_bps_) {
    current_rate_bps_ = sustainable;
    qualifying_streak_ = 0;
    ++switch_count_;
    return current_rate_bps_;
  }

  // Upgrade only after the dwell count at threshold + hysteresis.
  const double guarded = table_.achievable_rate_bps(
      received_power_dbm - params_.up_hysteresis_db);
  if (guarded > current_rate_bps_) {
    if (++qualifying_streak_ >= params_.up_dwell_count) {
      current_rate_bps_ = guarded;
      qualifying_streak_ = 0;
      ++switch_count_;
    }
  } else {
    qualifying_streak_ = 0;
  }
  return current_rate_bps_;
}

}  // namespace mmtag::phy
