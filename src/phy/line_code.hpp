// Manchester line coding for OOK backscatter.
//
// Long runs of '1' bits leave the tag absorbing — the reader sees silence
// and can lose its amplitude reference (and the tag stops re-radiating
// entirely). Manchester coding guarantees a transition every bit: it
// doubles the symbol rate but makes the stream dc-balanced and
// self-clocking, which is why practically every backscatter standard uses
// it (or FM0, its cousin). The energy model also uses its guaranteed
// one-edge-per-bit property.
#pragma once

#include <optional>

#include "src/phy/ook.hpp"

namespace mmtag::phy {

/// Encode: each bit becomes two chips, 1 -> {1,0}, 0 -> {0,1} (IEEE 802.3
/// convention).
[[nodiscard]] BitVector manchester_encode(const BitVector& bits);

/// Decode chip pairs back to bits. Returns nullopt when the chip count is
/// odd or any pair is invalid ({0,0} or {1,1}), which signals corruption.
[[nodiscard]] std::optional<BitVector> manchester_decode(
    const BitVector& chips);

/// Decode leniently: invalid pairs resolve to the first chip's value and
/// are counted in `invalid_pairs`. Used to keep a link limping at low SNR
/// while still reporting quality.
[[nodiscard]] BitVector manchester_decode_lenient(const BitVector& chips,
                                                  std::size_t& invalid_pairs);

}  // namespace mmtag::phy
