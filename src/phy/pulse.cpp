#include "src/phy/pulse.hpp"

#include <cassert>
#include <cmath>

#include "src/kern/kern.hpp"
#include "src/phys/constants.hpp"

namespace mmtag::phy {

std::vector<double> raised_cosine_taps(double beta, int samples_per_symbol,
                                       int span_symbols) {
  assert(beta >= 0.0 && beta <= 1.0);
  assert(samples_per_symbol >= 2);
  assert(span_symbols >= 1);
  const int half = span_symbols * samples_per_symbol;
  std::vector<double> taps(static_cast<std::size_t>(2 * half + 1));
  for (int i = -half; i <= half; ++i) {
    const double t = static_cast<double>(i) / samples_per_symbol;  // In T.
    double value;
    const double denom_arg = 2.0 * beta * t;
    if (std::abs(t) < 1e-12) {
      value = 1.0;
    } else if (beta > 0.0 && std::abs(std::abs(denom_arg) - 1.0) < 1e-9) {
      // The removable singularity at t = +-T/(2 beta).
      value = (phys::kPi / 4.0) *
              std::sin(phys::kPi * t) / (phys::kPi * t);
    } else {
      const double sinc = std::sin(phys::kPi * t) / (phys::kPi * t);
      const double cosine = std::cos(phys::kPi * beta * t) /
                            (1.0 - denom_arg * denom_arg);
      value = sinc * cosine;
    }
    taps[static_cast<std::size_t>(i + half)] = value;
  }
  return taps;
}

Waveform apply_fir(std::span<const Complex> samples,
                   std::span<const double> taps) {
  assert(!taps.empty());
  // y[n] = sum_k taps[k] * x[n + delay - k] ("same" alignment) with the
  // out-of-range k skipped; the per-output dot product runs on the
  // dispatch kernels.
  Waveform out(samples.size(), Complex(0.0, 0.0));
  kern::dispatch().fir_complex(samples.data(), samples.size(), taps.data(),
                               taps.size(), out.data());
  return out;
}

Waveform shape_bits(const BitVector& bits, double beta,
                    int samples_per_symbol) {
  Waveform impulses(bits.size() *
                        static_cast<std::size_t>(samples_per_symbol),
                    Complex(0.0, 0.0));
  for (std::size_t b = 0; b < bits.size(); ++b) {
    impulses[b * static_cast<std::size_t>(samples_per_symbol)] =
        Complex(bits[b] ? 0.0 : 1.0, 0.0);  // Paper polarity.
  }
  const std::vector<double> taps =
      raised_cosine_taps(beta, samples_per_symbol);
  return apply_fir(impulses, taps);
}

double isi_at_symbol_instants(std::span<const double> taps,
                              int samples_per_symbol) {
  assert(!taps.empty());
  const std::size_t center = taps.size() / 2;
  const double peak = std::abs(taps[center]);
  assert(peak > 0.0);
  double isi = 0.0;
  for (std::size_t i = samples_per_symbol; center >= i;
       i += static_cast<std::size_t>(samples_per_symbol)) {
    isi += std::abs(taps[center - i]);
  }
  for (std::size_t i = static_cast<std::size_t>(samples_per_symbol);
       center + i < taps.size();
       i += static_cast<std::size_t>(samples_per_symbol)) {
    isi += std::abs(taps[center + i]);
  }
  return isi / peak;
}

double occupied_bandwidth_hz(double beta, double symbol_rate_hz) {
  assert(symbol_rate_hz > 0.0);
  return (1.0 + beta) * symbol_rate_hz;
}

double symbol_rate_for_channel_hz(double beta, double channel_hz) {
  assert(channel_hz > 0.0);
  return channel_hz / (1.0 + beta);
}

}  // namespace mmtag::phy
