#include "src/phy/frame.hpp"

#include <cassert>

#include "src/phy/crc.hpp"

namespace mmtag::phy {

namespace {
constexpr std::size_t kPreambleBits = 16;
constexpr int kIdBits = 32;
constexpr int kLengthBits = 16;
constexpr std::size_t kCrcBits = 16;
}  // namespace

void append_uint(BitVector& bits, std::uint32_t value, int width) {
  assert(width >= 1 && width <= 32);
  for (int i = width - 1; i >= 0; --i) {
    bits.push_back(((value >> i) & 1u) != 0);
  }
}

std::uint32_t read_uint(const BitVector& bits, std::size_t& offset,
                        int width) {
  assert(width >= 1 && width <= 32);
  assert(offset + static_cast<std::size_t>(width) <= bits.size());
  std::uint32_t value = 0;
  for (int i = 0; i < width; ++i) {
    value = (value << 1) | (bits[offset++] ? 1u : 0u);
  }
  return value;
}

BitVector TagFrame::preamble() {
  BitVector bits;
  bits.reserve(kPreambleBits);
  for (std::size_t i = 0; i < kPreambleBits; ++i) {
    bits.push_back(i % 2 == 0);  // 1010... starting with 1.
  }
  return bits;
}

BitVector TagFrame::serialize() const {
  assert(payload.size() <= 0xFFFF);
  BitVector body;
  append_uint(body, tag_id, kIdBits);
  append_uint(body, static_cast<std::uint32_t>(payload.size()), kLengthBits);
  body.insert(body.end(), payload.begin(), payload.end());
  append_crc16(body);

  BitVector frame = preamble();
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

std::optional<TagFrame> TagFrame::parse(const BitVector& bits) {
  const BitVector expected_preamble = preamble();
  if (bits.size() < kPreambleBits + kIdBits + kLengthBits + kCrcBits) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < kPreambleBits; ++i) {
    if (bits[i] != expected_preamble[i]) return std::nullopt;
  }
  const BitVector body(bits.begin() + kPreambleBits, bits.end());
  std::size_t offset = 0;
  TagFrame frame;
  frame.tag_id = read_uint(body, offset, kIdBits);
  const std::uint32_t length = read_uint(body, offset, kLengthBits);
  if (body.size() < offset + length + kCrcBits) return std::nullopt;
  frame.payload.assign(body.begin() + static_cast<std::ptrdiff_t>(offset),
                       body.begin() +
                           static_cast<std::ptrdiff_t>(offset + length));
  // CRC covers id + length + payload.
  const BitVector covered(body.begin(),
                          body.begin() + static_cast<std::ptrdiff_t>(
                                             offset + length + kCrcBits));
  if (!check_crc16(covered)) return std::nullopt;
  return frame;
}

std::size_t TagFrame::frame_bits(std::size_t payload_bits) {
  return kPreambleBits + kIdBits + kLengthBits + payload_bits + kCrcBits;
}

}  // namespace mmtag::phy
