#include "src/phy/sync.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/kern/kern.hpp"
#include "src/phy/frame.hpp"
#include "src/phy/line_code.hpp"

namespace mmtag::phy {

FrameSynchronizer::FrameSynchronizer(SyncConfig config) : config_(config) {
  assert(config_.samples_per_symbol >= 1);
  assert(config_.threshold > 0.0 && config_.threshold <= 1.0);

  // Build the on-air amplitude template of the preamble: bits -> optional
  // Manchester chips -> OOK amplitudes (bit/chip false = reflect = 1.0),
  // then remove the mean so correlation measures *shape*, not dc.
  BitVector chips = TagFrame::preamble();
  if (config_.manchester) chips = manchester_encode(chips);
  template_.reserve(chips.size() *
                    static_cast<std::size_t>(config_.samples_per_symbol));
  for (const bool chip : chips) {
    const double amplitude = chip ? 0.0 : 1.0;
    for (int s = 0; s < config_.samples_per_symbol; ++s) {
      template_.push_back(amplitude);
    }
  }
  double mean = 0.0;
  for (const double v : template_) mean += v;
  mean /= static_cast<double>(template_.size());
  double norm2 = 0.0;
  for (double& v : template_) {
    v -= mean;
    norm2 += v * v;
  }
  template_norm_ = std::sqrt(norm2);
  assert(template_norm_ > 0.0);
}

double FrameSynchronizer::score_window(const double* magnitudes) const {
  // Zero-mean the envelope within the window, then take a normalized
  // cross-correlation. Scale/offset invariant by construction.
  const std::size_t window = template_.size();
  const kern::Kernels& kernels = kern::dispatch();
  const double mean =
      kernels.sum(magnitudes, window) / static_cast<double>(window);
  double dot = 0.0;
  double energy = 0.0;
  kernels.centered_dot_energy(magnitudes, template_.data(), mean, window,
                              &dot, &energy);
  if (energy <= 0.0) return 0.0;
  const double score = dot / (std::sqrt(energy) * template_norm_);
  return score > 0.0 ? score : 0.0;
}

double FrameSynchronizer::correlate_at(std::span<const Complex> stream,
                                       std::size_t offset) const {
  const std::size_t window = template_.size();
  if (offset + window > stream.size()) return 0.0;
  std::vector<double> magnitudes(window);
  kern::dispatch().abs_complex(stream.data() + offset, magnitudes.data(),
                               window);
  return score_window(magnitudes.data());
}

std::optional<SyncHit> FrameSynchronizer::find_frame_start(
    std::span<const Complex> stream) const {
  const std::size_t window = template_.size();
  if (stream.size() < window) return std::nullopt;
  // One envelope pass over the whole stream, then slide the correlation
  // window over the precomputed magnitudes — the O(stream * window)
  // inner product runs on the dispatch kernels.
  std::vector<double> magnitudes(stream.size());
  kern::dispatch().abs_complex(stream.data(), magnitudes.data(),
                               stream.size());
  SyncHit best;
  for (std::size_t offset = 0; offset + window <= stream.size(); ++offset) {
    const double score = score_window(magnitudes.data() + offset);
    if (score > best.correlation) {
      best.correlation = score;
      best.offset_samples = offset;
    }
  }
  if (best.correlation < config_.threshold) return std::nullopt;
  return best;
}

std::vector<SyncHit> FrameSynchronizer::find_all_frames(
    std::span<const Complex> stream) const {
  const std::size_t window = template_.size();
  std::vector<SyncHit> hits;
  if (stream.size() < window) return hits;

  // Collect every above-threshold offset, then greedily keep the best and
  // suppress neighbours within one template length (non-max suppression).
  std::vector<double> magnitudes(stream.size());
  kern::dispatch().abs_complex(stream.data(), magnitudes.data(),
                               stream.size());
  std::vector<SyncHit> candidates;
  for (std::size_t offset = 0; offset + window <= stream.size(); ++offset) {
    const double score = score_window(magnitudes.data() + offset);
    if (score >= config_.threshold) {
      candidates.push_back(SyncHit{offset, score});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const SyncHit& a, const SyncHit& b) {
              return a.correlation > b.correlation;
            });
  std::vector<bool> suppressed(candidates.size(), false);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (suppressed[i]) continue;
    hits.push_back(candidates[i]);
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      const std::size_t a = candidates[i].offset_samples;
      const std::size_t b = candidates[j].offset_samples;
      const std::size_t gap = a > b ? a - b : b - a;
      if (gap < window) suppressed[j] = true;
    }
  }
  std::sort(hits.begin(), hits.end(), [](const SyncHit& a, const SyncHit& b) {
    return a.offset_samples < b.offset_samples;
  });
  return hits;
}

}  // namespace mmtag::phy
