// FM0 (bi-phase space) line coding — the encoding EPC Gen2 RFID tags use.
//
// Implemented so the RFID baseline (src/baselines) runs the same encoding
// the real protocol does, and so the energy model can compare Manchester's
// one-edge-per-bit against FM0's denser edge statistics.
//
// FM0 rules: the level always inverts at every bit boundary; a '0' bit adds
// an extra inversion mid-bit, a '1' does not. Each bit therefore occupies
// two half-bit chips, and decoding needs the level at the end of the
// previous bit (tracked internally; the stream starts from logic high).
#pragma once

#include <optional>

#include "src/phy/ook.hpp"

namespace mmtag::phy {

/// Encode `bits` into FM0 half-bit chips (2 chips per bit). The encoder
/// starts from level high (true) and inverts per the FM0 rules.
[[nodiscard]] BitVector fm0_encode(const BitVector& bits);

/// Decode FM0 chips back to bits. Returns nullopt when the chip count is
/// odd or the mandatory boundary inversion is violated anywhere (which
/// flags corruption, like a Manchester violation does).
[[nodiscard]] std::optional<BitVector> fm0_decode(const BitVector& chips);

/// Expected level transitions per data bit for equiprobable bits:
/// every bit has the boundary inversion, '0' bits add one more => 1.5.
[[nodiscard]] constexpr double fm0_transitions_per_bit() { return 1.5; }

}  // namespace mmtag::phy
