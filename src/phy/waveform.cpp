#include "src/phy/waveform.hpp"

#include <cassert>
#include <cmath>

#include "src/kern/kern.hpp"
#include "src/phys/units.hpp"

namespace mmtag::phy {

double mean_power(std::span<const Complex> samples) {
  if (samples.empty()) return 0.0;
  // sum |x|^2 as a self-dot over the interleaved re/im view.
  const double* doubles = reinterpret_cast<const double*>(samples.data());
  const double sum =
      kern::dispatch().dot(doubles, doubles, 2 * samples.size());
  return sum / static_cast<double>(samples.size());
}

void scale(Waveform& samples, double gain) {
  kern::dispatch().scale_real(samples.data(), gain, samples.size());
}

void apply_channel(Waveform& samples, Complex coefficient) {
  kern::dispatch().scale_complex(samples.data(), coefficient,
                                 samples.size());
}

void add_awgn(Waveform& samples, double noise_power, std::mt19937_64& rng) {
  assert(noise_power >= 0.0);
  if (noise_power == 0.0) return;
  std::normal_distribution<double> gauss(0.0, std::sqrt(noise_power / 2.0));
  for (Complex& x : samples) {
    x += Complex(gauss(rng), gauss(rng));
  }
}

double noise_power_for_snr(double signal_power, double snr_db) {
  assert(signal_power > 0.0);
  return signal_power / phys::db_to_ratio(snr_db);
}

}  // namespace mmtag::phy
