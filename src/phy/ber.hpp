// Bit-error-rate mathematics.
//
// The paper converts measured powers to data rates via "standard data rate
// tables based on the ASK modulation and BER of 1e-3", noting ASK needs
// SNR = 7 dB for BER 1e-3 (Sec. 8, citing Grami). These closed forms
// provide that table; the Monte-Carlo path in src/sim validates them at
// waveform level (experiment E4).
//
// Conventions: `snr_db` is average-signal-power to noise-power in the
// symbol bandwidth. OOK with equiprobable bits has peak power 2x average.
#pragma once

namespace mmtag::phy {

/// Gaussian tail function Q(x) = P(N(0,1) > x).
[[nodiscard]] double q_function(double x);

/// Inverse of q_function on (0, 0.5), by bisection.
[[nodiscard]] double q_function_inverse(double p);

/// BER of coherent OOK/ASK at average SNR `snr_db`:
///   Pb = Q( sqrt(SNR) )  (decision distance d/2 with d = A, noise sigma).
[[nodiscard]] double ook_coherent_ber(double snr_db);

/// BER of noncoherent (envelope-detected) OOK at average SNR `snr_db`:
///   Pb ~ 0.5 * exp(-SNR/2), the standard high-SNR approximation.
[[nodiscard]] double ook_noncoherent_ber(double snr_db);

/// BER of coherent BPSK: Pb = Q( sqrt(2*SNR) ). (RFID baseline modulation.)
[[nodiscard]] double bpsk_ber(double snr_db);

/// SNR [dB] needed for coherent OOK/ASK to reach `target_ber`. For
/// target 1e-3 this returns ~9.8 dB of *average* SNR; the paper's 7 dB
/// figure counts peak-ish SNR — both conventions are exercised in tests and
/// the rate table uses the paper's own constant for fidelity.
[[nodiscard]] double ook_snr_for_ber_db(double target_ber);

}  // namespace mmtag::phy
