// Frame synchronization: finding the frame in a raw sample stream.
//
// The receive chain so far assumed sample-aligned frames; a real reader
// watches a continuous detector output and must locate the preamble
// itself. The synchronizer slides a matched template of the (Manchester-
// coded, OOK-mapped) preamble over the stream, normalizes by local energy,
// and reports candidate frame starts above a correlation threshold.
#pragma once

#include <optional>
#include <vector>

#include "src/phy/ook.hpp"

namespace mmtag::phy {

struct SyncConfig {
  int samples_per_symbol = 8;
  bool manchester = true;
  /// Normalized correlation threshold in [0, 1] for declaring a preamble.
  double threshold = 0.75;
};

struct SyncHit {
  std::size_t offset_samples = 0;  ///< Stream index of the frame start.
  double correlation = 0.0;        ///< Normalized score in [0, 1].
};

class FrameSynchronizer {
 public:
  explicit FrameSynchronizer(SyncConfig config);

  /// The preamble's expected amplitude template (chips through the OOK
  /// mapping, one entry per sample).
  [[nodiscard]] const std::vector<double>& preamble_template() const {
    return template_;
  }

  /// Normalized correlation of the template at `offset` in `stream`
  /// (0 when the window would overrun).
  [[nodiscard]] double correlate_at(std::span<const Complex> stream,
                                    std::size_t offset) const;

  /// The best preamble start in `stream`, if any position clears the
  /// threshold.
  [[nodiscard]] std::optional<SyncHit> find_frame_start(
      std::span<const Complex> stream) const;

  /// All non-overlapping preamble starts (greedy, best-first within each
  /// region) — for streams carrying several frames.
  [[nodiscard]] std::vector<SyncHit> find_all_frames(
      std::span<const Complex> stream) const;

  [[nodiscard]] const SyncConfig& config() const { return config_; }

 private:
  /// Normalized correlation score of one template-length window of
  /// envelope magnitudes (the kern-accelerated inner loop shared by all
  /// search entry points).
  [[nodiscard]] double score_window(const double* magnitudes) const;

  SyncConfig config_;
  std::vector<double> template_;  ///< Zero-mean preamble template.
  double template_norm_ = 0.0;
};

}  // namespace mmtag::phy
