#include "src/phy/line_code.hpp"

namespace mmtag::phy {

BitVector manchester_encode(const BitVector& bits) {
  BitVector chips;
  chips.reserve(bits.size() * 2);
  for (const bool bit : bits) {
    chips.push_back(bit);
    chips.push_back(!bit);
  }
  return chips;
}

std::optional<BitVector> manchester_decode(const BitVector& chips) {
  if (chips.size() % 2 != 0) return std::nullopt;
  BitVector bits;
  bits.reserve(chips.size() / 2);
  for (std::size_t i = 0; i < chips.size(); i += 2) {
    if (chips[i] == chips[i + 1]) return std::nullopt;
    bits.push_back(chips[i]);
  }
  return bits;
}

BitVector manchester_decode_lenient(const BitVector& chips,
                                    std::size_t& invalid_pairs) {
  invalid_pairs = 0;
  BitVector bits;
  bits.reserve(chips.size() / 2);
  for (std::size_t i = 0; i + 1 < chips.size(); i += 2) {
    if (chips[i] == chips[i + 1]) ++invalid_pairs;
    bits.push_back(chips[i]);
  }
  if (chips.size() % 2 != 0) ++invalid_pairs;
  return bits;
}

}  // namespace mmtag::phy
