// Pulse shaping: what "rate = B/2" actually assumes.
//
// The paper maps reader bandwidth B to bit rate B/2 (2 GHz -> 1 Gbps).
// That is OOK with a raised-cosine pulse at full excess bandwidth
// (beta = 1): occupied bandwidth = (1 + beta) * Rs for a symbol rate Rs,
// so Rs = B / 2. Sharper filters (smaller beta) fit a faster symbol rate
// into the same channel at the cost of longer, more ISI-sensitive pulses
// and tighter timing. This module provides the raised-cosine pulse, FIR
// filtering, and an ISI metric so bench_a6 can quantify the trade.
#pragma once

#include <vector>

#include "src/phy/ook.hpp"
#include "src/phy/waveform.hpp"

namespace mmtag::phy {

/// Raised-cosine pulse taps: roll-off `beta` in [0, 1], `samples_per_symbol`
/// >= 2, spanning `span_symbols` symbols each side of the peak. Normalized
/// to unit peak.
[[nodiscard]] std::vector<double> raised_cosine_taps(double beta,
                                                     int samples_per_symbol,
                                                     int span_symbols = 6);

/// Linear convolution of `samples` with real `taps` ("same" alignment:
/// output length equals input length, group delay removed).
[[nodiscard]] Waveform apply_fir(std::span<const Complex> samples,
                                 std::span<const double> taps);

/// Shape a bit stream: impulses at symbol instants, raised-cosine filtered.
/// Paper polarity (false = reflect = 1.0 amplitude).
[[nodiscard]] Waveform shape_bits(const BitVector& bits, double beta,
                                  int samples_per_symbol);

/// Worst-case inter-symbol interference of the pulse at symbol-spaced
/// sampling instants: sum |p(kT)| / p(0) over k != 0. Zero (numerically)
/// for any valid raised cosine — the Nyquist criterion.
[[nodiscard]] double isi_at_symbol_instants(std::span<const double> taps,
                                            int samples_per_symbol);

/// Occupied (two-sided baseband) bandwidth of a raised-cosine stream at
/// symbol rate `symbol_rate_hz`: (1 + beta) * Rs.
[[nodiscard]] double occupied_bandwidth_hz(double beta,
                                           double symbol_rate_hz);

/// Symbol rate that fits in `channel_hz` at roll-off `beta`:
/// Rs = B / (1 + beta). beta = 1 reproduces the paper's B/2.
[[nodiscard]] double symbol_rate_for_channel_hz(double beta,
                                                double channel_hz);

}  // namespace mmtag::phy
