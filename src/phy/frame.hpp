// Tag air frame: preamble + tag id + length + payload + CRC-16.
//
// The paper evaluates raw reflected power; a usable network needs framing
// so the reader can find symbol boundaries and attribute data to a tag.
// The frame is deliberately minimal (backscatter tags cannot afford
// elaborate headers):
//
//   [ preamble 16 bits | tag id 32 | payload length 16 | payload | crc 16 ]
//
// The alternating preamble also gives the blind OOK threshold estimator a
// guaranteed mix of high and low symbols.
#pragma once

#include <cstdint>
#include <optional>

#include "src/phy/ook.hpp"

namespace mmtag::phy {

struct TagFrame {
  std::uint32_t tag_id = 0;
  BitVector payload;

  /// Fixed 16-bit alternating preamble (1010...).
  [[nodiscard]] static BitVector preamble();

  /// Serialize to the on-air bit layout (preamble through CRC).
  [[nodiscard]] BitVector serialize() const;

  /// Parse a serialized frame. Returns nullopt on truncated input, bad
  /// preamble or CRC failure.
  [[nodiscard]] static std::optional<TagFrame> parse(const BitVector& bits);

  /// Total on-air bits for a `payload_bits`-bit payload.
  [[nodiscard]] static std::size_t frame_bits(std::size_t payload_bits);

  [[nodiscard]] bool operator==(const TagFrame& other) const {
    return tag_id == other.tag_id && payload == other.payload;
  }
};

/// Append `width` bits of `value`, MSB first.
void append_uint(BitVector& bits, std::uint32_t value, int width);

/// Read `width` bits starting at `offset` (MSB first); advances `offset`.
[[nodiscard]] std::uint32_t read_uint(const BitVector& bits,
                                      std::size_t& offset, int width);

}  // namespace mmtag::phy
