// The paper's SNR -> data-rate mapping (Fig. 7 annotations).
//
// The reader picks a receive bandwidth; each bandwidth B carries OOK at
// B/2 bit/s and has a thermal noise floor N(B) (src/phys/noise). A rate is
// achievable when the received tag power clears N(B) by the ASK threshold
// (7 dB for BER 1e-3, paper Sec. 8). The standard tiers are the three
// Fig. 7 plots: 2 GHz -> 1 Gbps, 200 MHz -> 100 Mbps, 20 MHz -> 10 Mbps.
#pragma once

#include <optional>
#include <vector>

#include "src/phys/noise.hpp"

namespace mmtag::phy {

/// One selectable reader configuration.
struct RateTier {
  double bandwidth_hz = 0.0;
  double bit_rate_bps = 0.0;

  /// OOK carries one bit per symbol at B/2 symbols/s.
  [[nodiscard]] static RateTier from_bandwidth(double bandwidth_hz);
};

class RateTable {
 public:
  /// `tiers` sorted by descending bit rate after construction.
  /// `required_snr_db` — detection threshold (paper: 7 dB).
  RateTable(std::vector<RateTier> tiers, phys::NoiseModel noise,
            double required_snr_db);

  /// The paper's table: {2 GHz, 200 MHz, 20 MHz} tiers, the mmTag reader
  /// noise model and the 7 dB ASK threshold.
  [[nodiscard]] static RateTable mmtag_standard();

  /// Minimum received power needed to run `tier` [dBm].
  [[nodiscard]] double required_power_dbm(const RateTier& tier) const;

  /// Fastest tier whose threshold `received_power_dbm` clears, if any.
  [[nodiscard]] std::optional<RateTier> best_tier(
      double received_power_dbm) const;

  /// Bit rate achievable at `received_power_dbm` [bit/s]; 0 when even the
  /// slowest tier is out of reach.
  [[nodiscard]] double achievable_rate_bps(double received_power_dbm) const;

  [[nodiscard]] const std::vector<RateTier>& tiers() const { return tiers_; }
  [[nodiscard]] const phys::NoiseModel& noise() const { return noise_; }
  [[nodiscard]] double required_snr_db() const { return required_snr_db_; }

 private:
  std::vector<RateTier> tiers_;
  phys::NoiseModel noise_;
  double required_snr_db_;
};

}  // namespace mmtag::phy
