// Additive LFSR scrambling — the rate-1 alternative to Manchester coding.
//
// Manchester guarantees a transition per bit but halves the data rate. A
// self-synchronizing alternative keeps the full rate: XOR the data with a
// known PRBS so long runs become statistically impossible (though not
// strictly), and descramble with the same sequence. The trade —
// deterministic dc-balance vs 2x rate — is measured in bench_a5_linecode.
//
// The LFSR is the ITU-T V.52-style PRBS-15 (x^15 + x^14 + 1), seeded per
// frame so reader and tag stay aligned via the frame boundary.
#pragma once

#include <cstdint>

#include "src/phy/ook.hpp"

namespace mmtag::phy {

class Scrambler {
 public:
  /// `seed` must be nonzero (an all-zero LFSR never leaves zero).
  explicit Scrambler(std::uint16_t seed = 0x5A5A);

  /// Next PRBS bit (advances the register).
  bool next_bit();

  /// XOR `bits` with the PRBS starting from the current register state.
  [[nodiscard]] BitVector scramble(const BitVector& bits);

  /// Identical operation (XOR is an involution) — provided for call-site
  /// clarity. Must be called on a Scrambler with the same seed/state.
  [[nodiscard]] BitVector descramble(const BitVector& bits);

  /// Reset to `seed`.
  void reset(std::uint16_t seed);

  [[nodiscard]] std::uint16_t state() const { return state_; }

  /// Longest run of identical bits in `bits` (the dc-balance metric the
  /// line-code comparison uses; 0 for empty input).
  [[nodiscard]] static std::size_t longest_run(const BitVector& bits);

 private:
  std::uint16_t state_;
};

}  // namespace mmtag::phy
