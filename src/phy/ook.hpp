// On-off-keying modem — the tag-to-reader modulation (paper Sec. 6).
//
// Tag side: bit '0' = reflect (carrier present at the reader), bit '1' =
// absorb (no carrier). The modulator emits `samples_per_symbol` samples per
// bit; the demodulator is an integrate-and-dump matched filter followed by
// a threshold, with the threshold either fixed or estimated from the
// received waveform (the reader has no pilot — it splits the observed
// amplitude clusters, as a spectrum-analyzer-based reader would).
//
// NOTE on polarity: the paper maps '0' -> reflect; `OokModulator` follows
// that convention via `kReflectAmplitudeForZero`.
#pragma once

#include <vector>

#include "src/phy/waveform.hpp"

namespace mmtag::phy {

using BitVector = std::vector<bool>;

class OokModulator {
 public:
  /// `samples_per_symbol` >= 1; `modulation_depth_db` is the finite on/off
  /// amplitude contrast of a real tag (60 dB ~ ideal; Fig. 6's element gives
  /// ~20-30 dB). Depth is applied to the absorb state's residual amplitude.
  explicit OokModulator(int samples_per_symbol = 8,
                        double modulation_depth_db = 60.0);

  /// Map bits to unit-amplitude baseband samples ('0' -> reflect = high).
  [[nodiscard]] Waveform modulate(const BitVector& bits) const;

  [[nodiscard]] int samples_per_symbol() const { return samples_per_symbol_; }
  [[nodiscard]] double residual_amplitude() const { return residual_; }

 private:
  int samples_per_symbol_;
  double residual_;  ///< Absorb-state amplitude (10^(-depth/20)).
};

/// Decision statistic of the OOK receiver.
enum class OokDetection {
  /// Real part of the matched-filter output: assumes carrier phase
  /// recovery, achieves the textbook Pb = Q(sqrt(SNR)).
  kCoherent,
  /// Magnitude of the matched-filter output: what a spectrum-analyzer
  /// (power-detecting) reader actually does; ~1-2 dB worse.
  kEnvelope,
};

class OokDemodulator {
 public:
  explicit OokDemodulator(int samples_per_symbol = 8,
                          OokDetection detection = OokDetection::kCoherent);

  /// Demodulate `samples` into bits. The decision statistic per symbol is
  /// the magnitude of the integrate-and-dump output; the threshold is the
  /// midpoint between the means of the upper and lower halves of the
  /// statistics (blind two-cluster split).
  [[nodiscard]] BitVector demodulate(std::span<const Complex> samples) const;

  /// Demodulate with a caller-supplied amplitude threshold.
  [[nodiscard]] BitVector demodulate_with_threshold(
      std::span<const Complex> samples, double threshold) const;

  [[nodiscard]] int samples_per_symbol() const { return samples_per_symbol_; }
  [[nodiscard]] OokDetection detection() const { return detection_; }

 private:
  /// Integrate-and-dump decision statistics, one per complete symbol.
  [[nodiscard]] std::vector<double> symbol_statistics(
      std::span<const Complex> samples) const;

  int samples_per_symbol_;
  OokDetection detection_;
};

/// Count bit positions where `a` and `b` differ (up to the shorter length),
/// plus any length mismatch counted as errors.
[[nodiscard]] std::size_t hamming_distance(const BitVector& a,
                                           const BitVector& b);

}  // namespace mmtag::phy
