#include "src/phy/ook.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "src/kern/kern.hpp"
#include "src/phys/units.hpp"

namespace mmtag::phy {

OokModulator::OokModulator(int samples_per_symbol, double modulation_depth_db)
    : samples_per_symbol_(samples_per_symbol),
      residual_(phys::db_to_amplitude_ratio(-modulation_depth_db)) {
  assert(samples_per_symbol_ >= 1);
  assert(modulation_depth_db >= 0.0);
}

Waveform OokModulator::modulate(const BitVector& bits) const {
  Waveform out;
  out.reserve(bits.size() * static_cast<std::size_t>(samples_per_symbol_));
  for (const bool bit : bits) {
    // Paper convention: '0' -> switches off -> reflect -> high amplitude.
    const double amplitude = bit ? residual_ : 1.0;
    for (int s = 0; s < samples_per_symbol_; ++s) {
      out.emplace_back(amplitude, 0.0);
    }
  }
  return out;
}

OokDemodulator::OokDemodulator(int samples_per_symbol,
                               OokDetection detection)
    : samples_per_symbol_(samples_per_symbol), detection_(detection) {
  assert(samples_per_symbol_ >= 1);
}

std::vector<double> OokDemodulator::symbol_statistics(
    std::span<const Complex> samples) const {
  const std::size_t symbols =
      samples.size() / static_cast<std::size_t>(samples_per_symbol_);
  std::vector<double> stats(symbols);
  if (symbols == 0) return stats;
  // Integrate-and-dump on the dispatch kernels, then reduce each symbol
  // sum to its soft statistic.
  const kern::Kernels& kernels = kern::dispatch();
  std::vector<Complex> sums(symbols);
  kernels.block_sum_complex(samples.data(), symbols,
                            static_cast<std::size_t>(samples_per_symbol_),
                            sums.data());
  if (detection_ == OokDetection::kCoherent) {
    for (std::size_t k = 0; k < symbols; ++k) {
      stats[k] = sums[k].real() / samples_per_symbol_;
    }
  } else {
    kernels.abs_complex(sums.data(), stats.data(), symbols);
    for (std::size_t k = 0; k < symbols; ++k) {
      stats[k] /= samples_per_symbol_;
    }
  }
  return stats;
}

namespace {

// Branch-free hard slicer shared by the two demodulate entry points.
BitVector slice_below(const std::vector<double>& stats, double threshold) {
  std::vector<std::uint8_t> hard(stats.size());
  kern::dispatch().threshold_below(stats.data(), stats.size(), threshold,
                                   hard.data());
  BitVector bits(stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) bits[i] = hard[i] != 0;
  return bits;
}

}  // namespace

BitVector OokDemodulator::demodulate(std::span<const Complex> samples) const {
  const std::vector<double> stats = symbol_statistics(samples);
  if (stats.empty()) return {};
  // Blind threshold: midpoint between the means of the lower and upper
  // halves of the sorted statistics. Works for any reasonably balanced bit
  // stream (framing guarantees preamble symbols of both kinds).
  std::vector<double> sorted = stats;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t half = sorted.size() / 2;
  const double low_mean =
      std::accumulate(sorted.begin(), sorted.begin() + half, 0.0) /
      std::max<std::size_t>(1, half);
  const double high_mean =
      std::accumulate(sorted.begin() + half, sorted.end(), 0.0) /
      std::max<std::size_t>(1, sorted.size() - half);
  const double threshold = (low_mean + high_mean) / 2.0;
  return slice_below(stats, threshold);
}

BitVector OokDemodulator::demodulate_with_threshold(
    std::span<const Complex> samples, double threshold) const {
  return slice_below(symbol_statistics(samples), threshold);
}

std::size_t hamming_distance(const BitVector& a, const BitVector& b) {
  const std::size_t common = std::min(a.size(), b.size());
  std::size_t errors = std::max(a.size(), b.size()) - common;
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) ++errors;
  }
  return errors;
}

}  // namespace mmtag::phy
