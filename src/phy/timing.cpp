#include "src/phy/timing.hpp"

#include <cassert>
#include <cmath>
#include <vector>

namespace mmtag::phy {

namespace {

/// Variance of the integrate-and-dump magnitudes at a given offset.
double eye_metric_at(std::span<const Complex> samples, int sps, int offset) {
  const std::size_t usable = samples.size() - static_cast<std::size_t>(offset);
  const std::size_t symbols = usable / static_cast<std::size_t>(sps);
  if (symbols < 2) return 0.0;

  std::vector<double> stats;
  stats.reserve(symbols);
  double mean = 0.0;
  for (std::size_t k = 0; k < symbols; ++k) {
    Complex acc(0.0, 0.0);
    const std::size_t base =
        static_cast<std::size_t>(offset) + k * static_cast<std::size_t>(sps);
    for (int s = 0; s < sps; ++s) {
      acc += samples[base + static_cast<std::size_t>(s)];
    }
    const double magnitude = std::abs(acc) / sps;
    stats.push_back(magnitude);
    mean += magnitude;
  }
  mean /= static_cast<double>(symbols);
  double variance = 0.0;
  for (const double s : stats) variance += (s - mean) * (s - mean);
  return variance / static_cast<double>(symbols);
}

}  // namespace

TimingEstimate estimate_symbol_timing(std::span<const Complex> samples,
                                      int samples_per_symbol) {
  assert(samples_per_symbol >= 1);
  TimingEstimate estimate;
  if (samples.size() < 2 * static_cast<std::size_t>(samples_per_symbol)) {
    estimate.confidence = 0.0;
    return estimate;
  }

  double best = -1.0;
  double worst = 1e300;
  for (int offset = 0; offset < samples_per_symbol; ++offset) {
    const double metric = eye_metric_at(samples, samples_per_symbol, offset);
    if (metric > best) {
      best = metric;
      estimate.offset_samples = offset;
      estimate.eye_metric = metric;
    }
    if (metric < worst) worst = metric;
  }
  estimate.confidence = worst > 0.0 ? best / worst : 1.0;
  return estimate;
}

BitVector demodulate_with_timing(std::span<const Complex> samples,
                                 int samples_per_symbol,
                                 OokDetection detection) {
  const TimingEstimate timing =
      estimate_symbol_timing(samples, samples_per_symbol);
  const OokDemodulator demod(samples_per_symbol, detection);
  return demod.demodulate(samples.subspan(
      static_cast<std::size_t>(timing.offset_samples)));
}

}  // namespace mmtag::phy
