// Radix-2 FFT and spectrum estimation.
//
// The prototype's reader *is* a spectrum analyzer; this gives the library
// one too. Used to verify the pulse-shaping module's occupied-bandwidth
// claims from the waveform itself and to inspect modulated tag signals the
// way the paper's bench instrument displayed them.
#pragma once

#include <vector>

#include "src/phy/waveform.hpp"

namespace mmtag::phy {

/// In-place iterative radix-2 decimation-in-time FFT. `data.size()` must
/// be a power of two. `inverse` applies the conjugate transform and 1/N
/// scaling, so fft(fft(x), true) == x.
void fft(std::vector<Complex>& data, bool inverse = false);

/// Next power of two >= n (n >= 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n);

/// Power spectrum of `samples` at `sample_rate_hz`: Hann-windowed,
/// zero-padded to a power of two. Returns |X(f)|^2 normalized so the peak
/// bin is 1, with `frequencies_hz` filled with the two-sided bin centres
/// in ascending order (-fs/2 .. +fs/2), spectrum reordered to match.
[[nodiscard]] std::vector<double> power_spectrum(
    std::span<const Complex> samples, double sample_rate_hz,
    std::vector<double>& frequencies_hz);

/// Two-sided bandwidth containing `fraction` (e.g. 0.99) of the total
/// spectral power, centred on the power centroid [Hz].
[[nodiscard]] double occupied_bandwidth_hz(
    std::span<const double> spectrum, std::span<const double> frequencies_hz,
    double fraction = 0.99);

}  // namespace mmtag::phy
