// Radix-2 FFT and spectrum estimation.
//
// The prototype's reader *is* a spectrum analyzer; this gives the library
// one too. Used to verify the pulse-shaping module's occupied-bandwidth
// claims from the waveform itself and to inspect modulated tag signals the
// way the paper's bench instrument displayed them.
#pragma once

#include <cstdint>
#include <vector>

#include "src/phy/waveform.hpp"

namespace mmtag::phy {

/// In-place iterative radix-2 decimation-in-time FFT. `data.size()` must
/// be a power of two. `inverse` applies the conjugate transform and 1/N
/// scaling, so fft(fft(x), true) == x.
///
/// Twiddle factors come from a process-wide size-keyed cache (built once
/// per (size, direction) and reused by every later transform of that
/// size); the butterfly stages run on the kern:: dispatch table.
void fft(std::vector<Complex>& data, bool inverse = false);

/// Drop every cached twiddle table (test hook; thread-safe — tables in
/// use by a concurrent fft() stay alive until it finishes).
void fft_twiddle_cache_clear();

/// Number of twiddle tables built since process start (monotonic; not
/// reset by fft_twiddle_cache_clear). Two same-size transforms must
/// leave this unchanged between them — see test_kern.cpp.
[[nodiscard]] std::uint64_t fft_twiddle_cache_builds();

/// Tables currently cached (one per (size, direction) seen).
[[nodiscard]] std::size_t fft_twiddle_cache_entries();

/// Next power of two >= n (n >= 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n);

/// Power spectrum of `samples` at `sample_rate_hz`: Hann-windowed,
/// zero-padded to a power of two. Returns |X(f)|^2 normalized so the peak
/// bin is 1, with `frequencies_hz` filled with the two-sided bin centres
/// in ascending order (-fs/2 .. +fs/2), spectrum reordered to match.
[[nodiscard]] std::vector<double> power_spectrum(
    std::span<const Complex> samples, double sample_rate_hz,
    std::vector<double>& frequencies_hz);

/// Two-sided bandwidth containing `fraction` (e.g. 0.99) of the total
/// spectral power, centred on the power centroid [Hz].
[[nodiscard]] double occupied_bandwidth_hz(
    std::span<const double> spectrum, std::span<const double> frequencies_hz,
    double fraction = 0.99);

}  // namespace mmtag::phy
