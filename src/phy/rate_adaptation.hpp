// Hysteresis rate adaptation over a time-varying backscatter link.
//
// Fig. 7's rate tiers assume a static bench. A mobile tag's received power
// crosses tier thresholds constantly; switching the reader bandwidth on
// every raw sample would thrash (each switch costs a reconfiguration
// dead-time). This controller adds the two standard guards: an up/down
// hysteresis margin and a dwell count before upgrading.
#pragma once

#include "src/phy/rate_table.hpp"

namespace mmtag::phy {

class RateController {
 public:
  struct Params {
    /// Extra margin [dB] the power must clear above a tier's threshold
    /// before upgrading into it (downgrades happen at the bare threshold).
    double up_hysteresis_db = 3.0;
    /// Consecutive qualifying observations required before an upgrade.
    int up_dwell_count = 3;
  };

  RateController(RateTable table, Params params);

  /// Feed one received-power observation [dBm]; returns the rate now in
  /// force [bit/s] (0 when no tier is sustainable).
  double observe_dbm(double received_power_dbm);

  /// Rate currently in force [bit/s].
  [[nodiscard]] double current_rate_bps() const { return current_rate_bps_; }

  /// Number of tier switches so far (the thrash metric).
  [[nodiscard]] int switch_count() const { return switch_count_; }

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  RateTable table_;
  Params params_;
  double current_rate_bps_ = 0.0;
  int qualifying_streak_ = 0;
  int switch_count_ = 0;
};

}  // namespace mmtag::phy
