#include "src/phy/fft.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "src/kern/kern.hpp"
#include "src/phys/constants.hpp"

namespace mmtag::phy {

namespace {

// Process-wide twiddle cache. A table for an n-point transform is the
// concatenation of the per-stage twiddles (stage `len` contributes
// w_k = exp(sign*2*pi*i*k/len) for k < len/2), n-1 entries total, laid
// out contiguously in stage order so the butterfly kernel streams them.
// Tables are immutable once published; shared_ptr keeps a table alive
// for callers that grabbed it before a concurrent clear().
struct TwiddleCache {
  std::mutex mutex;
  std::map<std::pair<std::size_t, bool>,
           std::shared_ptr<const std::vector<Complex>>>
      tables;
  std::atomic<std::uint64_t> builds{0};
};

TwiddleCache& twiddle_cache() {
  static TwiddleCache cache;
  return cache;
}

std::shared_ptr<const std::vector<Complex>> twiddles_for(std::size_t n,
                                                         bool inverse) {
  TwiddleCache& cache = twiddle_cache();
  const auto key = std::make_pair(n, inverse);
  std::lock_guard<std::mutex> lock(cache.mutex);
  if (const auto it = cache.tables.find(key); it != cache.tables.end()) {
    return it->second;
  }
  auto table = std::make_shared<std::vector<Complex>>();
  table->reserve(n - 1);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    for (std::size_t k = 0; k < len / 2; ++k) {
      table->push_back(std::polar(
          1.0, sign * phys::kTwoPi * static_cast<double>(k) /
                   static_cast<double>(len)));
    }
  }
  cache.builds.fetch_add(1, std::memory_order_relaxed);
  cache.tables.emplace(key, table);
  return table;
}

}  // namespace

void fft(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  assert(n >= 1 && (n & (n - 1)) == 0 && "size must be a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterfly stages on the dispatch table, twiddles from the cache.
  const auto twiddles = twiddles_for(n, inverse);
  const kern::Kernels& kernels = kern::dispatch();
  std::size_t stage_offset = 0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    kernels.butterfly_pass(data.data(), n, len,
                           twiddles->data() + stage_offset);
    stage_offset += len / 2;
  }

  if (inverse) {
    kernels.scale_real(data.data(), 1.0 / static_cast<double>(n), n);
  }
}

void fft_twiddle_cache_clear() {
  TwiddleCache& cache = twiddle_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  cache.tables.clear();
}

std::uint64_t fft_twiddle_cache_builds() {
  return twiddle_cache().builds.load(std::memory_order_relaxed);
}

std::size_t fft_twiddle_cache_entries() {
  TwiddleCache& cache = twiddle_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  return cache.tables.size();
}

std::size_t next_pow2(std::size_t n) {
  assert(n >= 1);
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<double> power_spectrum(std::span<const Complex> samples,
                                   double sample_rate_hz,
                                   std::vector<double>& frequencies_hz) {
  assert(!samples.empty());
  assert(sample_rate_hz > 0.0);
  const std::size_t n = next_pow2(samples.size());
  std::vector<Complex> padded(n, Complex(0.0, 0.0));
  // Hann window over the real sample span.
  const std::size_t m = samples.size();
  for (std::size_t i = 0; i < m; ++i) {
    // The Hann taper is zero at both endpoints, so for m <= 2 every
    // sample is an endpoint and the window would erase the signal; fall
    // back to a rectangular window there to keep the energy.
    const double window =
        m <= 2 ? 1.0
               : 0.5 * (1.0 - std::cos(phys::kTwoPi * i /
                                       static_cast<double>(m - 1)));
    padded[i] = samples[i] * window;
  }
  fft(padded);

  // Reorder to ascending frequency: [-fs/2, fs/2).
  std::vector<double> spectrum(n);
  frequencies_hz.resize(n);
  double peak = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t source = (i + n / 2) % n;
    spectrum[i] = std::norm(padded[source]);
    frequencies_hz[i] =
        (static_cast<double>(i) - static_cast<double>(n / 2)) *
        sample_rate_hz / static_cast<double>(n);
    peak = std::max(peak, spectrum[i]);
  }
  if (peak > 0.0) {
    for (double& s : spectrum) s /= peak;
  }
  return spectrum;
}

double occupied_bandwidth_hz(std::span<const double> spectrum,
                             std::span<const double> frequencies_hz,
                             double fraction) {
  assert(spectrum.size() == frequencies_hz.size());
  assert(fraction > 0.0 && fraction <= 1.0);
  double total = 0.0;
  for (const double s : spectrum) total += s;
  if (total <= 0.0) return 0.0;

  // Power centroid.
  double centroid = 0.0;
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    centroid += spectrum[i] * frequencies_hz[i];
  }
  centroid /= total;

  // Grow a symmetric window around the centroid bin until it holds the
  // requested fraction.
  std::size_t center = 0;
  double best = 1e300;
  for (std::size_t i = 0; i < frequencies_hz.size(); ++i) {
    const double d = std::abs(frequencies_hz[i] - centroid);
    if (d < best) {
      best = d;
      center = i;
    }
  }
  double acc = spectrum[center];
  std::size_t bins_added = 1;
  std::size_t radius = 0;
  while (acc < fraction * total) {
    ++radius;
    bool grew = false;
    if (center >= radius) {
      acc += spectrum[center - radius];
      ++bins_added;
      grew = true;
    }
    if (center + radius < spectrum.size()) {
      acc += spectrum[center + radius];
      ++bins_added;
      grew = true;
    }
    if (!grew) break;
  }
  const double bin_hz = frequencies_hz.size() > 1
                            ? frequencies_hz[1] - frequencies_hz[0]
                            : 0.0;
  // Count the bins actually accumulated: when the window clips at a
  // spectrum edge only one side grows per step, and 2*radius+1 would
  // overestimate the bandwidth.
  return static_cast<double>(bins_added) * bin_hz;
}

}  // namespace mmtag::phy
