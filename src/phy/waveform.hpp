// Complex-baseband sample buffers and AWGN.
//
// The waveform layer lets the benches validate, at sample level, the
// shortcut the paper takes analytically: "ASK modulation requires SNR of
// 7 dB to achieve BER of 1e-3" (Sec. 8). Signals are equivalent-baseband
// complex samples at the symbol-processing rate.
#pragma once

#include <complex>
#include <random>
#include <span>
#include <vector>

namespace mmtag::phy {

using Complex = std::complex<double>;
using Waveform = std::vector<Complex>;

/// Mean sample power of `samples` (sum |x|^2 / N). Empty input returns 0.
[[nodiscard]] double mean_power(std::span<const Complex> samples);

/// Scale every sample by the real factor `gain`.
void scale(Waveform& samples, double gain);

/// Apply a constant complex channel coefficient.
void apply_channel(Waveform& samples, Complex coefficient);

/// Add circularly-symmetric complex Gaussian noise of total power
/// `noise_power` (variance split evenly over I and Q) in place.
void add_awgn(Waveform& samples, double noise_power, std::mt19937_64& rng);

/// Noise power that yields `snr_db` against a signal of power
/// `signal_power`.
[[nodiscard]] double noise_power_for_snr(double signal_power, double snr_db);

}  // namespace mmtag::phy
