// Blind symbol-timing recovery for OOK.
//
// The frame synchronizer locates the frame to within a sample or two; the
// demodulator's integrate-and-dump window must additionally be *phased*
// onto symbol boundaries, or each window straddles two symbols and the eye
// closes. This estimator tries every intra-symbol offset and picks the one
// that maximizes the spread (variance) of the decision statistics — the
// maximum-eye-opening criterion, which needs no training sequence.
#pragma once

#include "src/phy/ook.hpp"

namespace mmtag::phy {

struct TimingEstimate {
  int offset_samples = 0;   ///< Best intra-symbol offset in [0, sps).
  double eye_metric = 0.0;  ///< Statistic variance at the best offset.
  /// Ratio of best to worst candidate metric (>= 1); near 1 means the
  /// estimate carries no information (e.g. unmodulated input).
  double confidence = 1.0;
};

/// Estimate the symbol-boundary offset of `samples` for a symbol length of
/// `samples_per_symbol`. At least two full symbols are required; returns a
/// zero-confidence estimate otherwise.
[[nodiscard]] TimingEstimate estimate_symbol_timing(
    std::span<const Complex> samples, int samples_per_symbol);

/// Convenience: demodulate with the estimated timing applied (drops the
/// leading partial symbol).
[[nodiscard]] BitVector demodulate_with_timing(
    std::span<const Complex> samples, int samples_per_symbol,
    OokDetection detection = OokDetection::kCoherent);

}  // namespace mmtag::phy
