// Higher-order backscatter modulations: the paper's "low spectral
// efficiency" discussion (Sec. 1), quantified and extended.
//
// The paper attributes backscatter's low rate partly to OOK/BPSK's 1 bit
// per symbol. A Van Atta tag with multi-state switches (several shunt
// impedances instead of on/off) could signal M-ary ASK; a tag with
// switched line-length offsets could signal PSK. This module provides the
// symbol mappers and closed-form BER/SNR math so the ablation benches can
// ask: what would 4-ASK or QPSK buy mmTag, and at what SNR cost?
//
// Conventions match src/phy/ber.hpp: `snr_db` is average symbol SNR.
#pragma once

#include <string>
#include <vector>

#include "src/phy/ook.hpp"

namespace mmtag::phy {

enum class Scheme {
  kOok,    ///< On-off keying, 1 bit/symbol (the paper's tag).
  kAsk4,   ///< 4-level amplitude keying, 2 bits/symbol.
  kBpsk,   ///< Binary phase keying, 1 bit/symbol.
  kQpsk,   ///< Quadrature phase keying, 2 bits/symbol.
};

/// Human-readable scheme name.
[[nodiscard]] std::string scheme_name(Scheme scheme);

/// Bits carried per symbol.
[[nodiscard]] int bits_per_symbol(Scheme scheme);

/// Gray-mapped constellation points, unit *average* power.
[[nodiscard]] std::vector<Complex> constellation(Scheme scheme);

/// Closed-form bit error rate at average symbol SNR `snr_db` (standard
/// AWGN results, Gray mapping assumed for the multi-bit schemes).
[[nodiscard]] double scheme_ber(Scheme scheme, double snr_db);

/// Average symbol SNR [dB] required to reach `target_ber` (bisection over
/// scheme_ber; target in (0, 0.5)).
[[nodiscard]] double scheme_snr_for_ber_db(Scheme scheme, double target_ber);

/// Bit rate in a bandwidth `bandwidth_hz` at Nyquist symbol rate B/2.
[[nodiscard]] double scheme_rate_bps(Scheme scheme, double bandwidth_hz);

/// Map a bit stream to constellation symbols (Gray order; the bit count is
/// padded with zeros up to a whole symbol).
[[nodiscard]] std::vector<Complex> map_symbols(Scheme scheme,
                                               const BitVector& bits);

/// Maximum-likelihood (nearest-point) demapping back to bits.
[[nodiscard]] BitVector demap_symbols(Scheme scheme,
                                      std::span<const Complex> symbols);

}  // namespace mmtag::phy
