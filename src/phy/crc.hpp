// CRC-16/CCITT-FALSE over bit streams.
//
// Frames from the tag carry a 16-bit CRC so the reader can reject corrupted
// reads (the MAC layer counts a failed CRC as a lost slot, the same way EPC
// Gen2 readers do). Implemented bitwise so it applies directly to the
// demodulated BitVector without byte packing.
#pragma once

#include <cstdint>

#include "src/phy/ook.hpp"

namespace mmtag::phy {

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection, no xorout)
/// computed MSB-first over `bits`.
[[nodiscard]] std::uint16_t crc16_ccitt(const BitVector& bits);

/// Append the 16 CRC bits (MSB first) of `bits` to `bits`.
void append_crc16(BitVector& bits);

/// True if `bits` (payload + trailing 16 CRC bits) verifies. Inputs shorter
/// than 16 bits fail.
[[nodiscard]] bool check_crc16(const BitVector& bits);

}  // namespace mmtag::phy
