#include "src/phy/rate_table.hpp"

#include <algorithm>
#include <cassert>

#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"

namespace mmtag::phy {

RateTier RateTier::from_bandwidth(double bandwidth_hz) {
  assert(bandwidth_hz > 0.0);
  RateTier tier;
  tier.bandwidth_hz = bandwidth_hz;
  tier.bit_rate_bps = bandwidth_hz / 2.0;
  return tier;
}

RateTable::RateTable(std::vector<RateTier> tiers, phys::NoiseModel noise,
                     double required_snr_db)
    : tiers_(std::move(tiers)),
      noise_(noise),
      required_snr_db_(required_snr_db) {
  assert(!tiers_.empty());
  std::sort(tiers_.begin(), tiers_.end(),
            [](const RateTier& a, const RateTier& b) {
              return a.bit_rate_bps > b.bit_rate_bps;
            });
}

RateTable RateTable::mmtag_standard() {
  std::vector<RateTier> tiers = {
      RateTier::from_bandwidth(phys::ghz(2.0)),
      RateTier::from_bandwidth(phys::mhz(200.0)),
      RateTier::from_bandwidth(phys::mhz(20.0)),
  };
  return RateTable(std::move(tiers), phys::NoiseModel::mmtag_reader(),
                   phys::kAskSnrForBer1e3Db);
}

double RateTable::required_power_dbm(const RateTier& tier) const {
  return noise_.power_dbm(tier.bandwidth_hz) + required_snr_db_;
}

std::optional<RateTier> RateTable::best_tier(
    double received_power_dbm) const {
  for (const RateTier& tier : tiers_) {
    if (received_power_dbm >= required_power_dbm(tier)) return tier;
  }
  return std::nullopt;
}

double RateTable::achievable_rate_bps(double received_power_dbm) const {
  const auto tier = best_tier(received_power_dbm);
  return tier ? tier->bit_rate_bps : 0.0;
}

}  // namespace mmtag::phy
