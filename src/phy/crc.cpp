#include "src/phy/crc.hpp"

namespace mmtag::phy {

std::uint16_t crc16_ccitt(const BitVector& bits) {
  std::uint16_t crc = 0xFFFF;
  for (const bool bit : bits) {
    const bool msb = (crc & 0x8000) != 0;
    crc = static_cast<std::uint16_t>(crc << 1);
    if (msb != bit) crc ^= 0x1021;
  }
  return crc;
}

void append_crc16(BitVector& bits) {
  const std::uint16_t crc = crc16_ccitt(bits);
  for (int i = 15; i >= 0; --i) {
    bits.push_back(((crc >> i) & 1) != 0);
  }
}

bool check_crc16(const BitVector& bits) {
  if (bits.size() < 16) return false;
  BitVector payload(bits.begin(), bits.end() - 16);
  const std::uint16_t expected = crc16_ccitt(payload);
  std::uint16_t received = 0;
  for (std::size_t i = bits.size() - 16; i < bits.size(); ++i) {
    received = static_cast<std::uint16_t>((received << 1) | (bits[i] ? 1 : 0));
  }
  return expected == received;
}

}  // namespace mmtag::phy
