#include "src/phy/crc.hpp"

#include <array>
#include <cstdint>
#include <vector>

#include "src/kern/kern.hpp"

namespace mmtag::phy {

namespace {

// CRC over the first `nbits` of `bits`: pack MSB-first into bytes (a
// stack buffer covers every realistic frame) and hand off to the
// dispatch table — bitwise on the scalar backend, slicing-by-8 on the
// accelerated ones. Bit-exact either way.
std::uint16_t crc_over_prefix(const BitVector& bits, std::size_t nbits) {
  const std::size_t nbytes = (nbits + 7) / 8;
  std::array<std::uint8_t, 512> stack_bytes;
  std::vector<std::uint8_t> heap_bytes;
  std::uint8_t* bytes;
  if (nbytes <= stack_bytes.size()) {
    stack_bytes.fill(0);
    bytes = stack_bytes.data();
  } else {
    heap_bytes.assign(nbytes, 0);
    bytes = heap_bytes.data();
  }
  for (std::size_t i = 0; i < nbits; ++i) {
    if (bits[i]) bytes[i / 8] |= static_cast<std::uint8_t>(1u << (7 - i % 8));
  }
  return kern::dispatch().crc16_bits(bytes, nbits);
}

}  // namespace

std::uint16_t crc16_ccitt(const BitVector& bits) {
  return crc_over_prefix(bits, bits.size());
}

void append_crc16(BitVector& bits) {
  const std::uint16_t crc = crc16_ccitt(bits);
  for (int i = 15; i >= 0; --i) {
    bits.push_back(((crc >> i) & 1) != 0);
  }
}

bool check_crc16(const BitVector& bits) {
  if (bits.size() < 16) return false;
  const std::uint16_t expected = crc_over_prefix(bits, bits.size() - 16);
  std::uint16_t received = 0;
  for (std::size_t i = bits.size() - 16; i < bits.size(); ++i) {
    received = static_cast<std::uint16_t>((received << 1) | (bits[i] ? 1 : 0));
  }
  return expected == received;
}

}  // namespace mmtag::phy
