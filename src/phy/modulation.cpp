#include "src/phy/modulation.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "src/phy/ber.hpp"
#include "src/phys/units.hpp"

namespace mmtag::phy {

std::string scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kOok:
      return "OOK";
    case Scheme::kAsk4:
      return "4-ASK";
    case Scheme::kBpsk:
      return "BPSK";
    case Scheme::kQpsk:
      return "QPSK";
  }
  return "?";
}

int bits_per_symbol(Scheme scheme) {
  switch (scheme) {
    case Scheme::kOok:
    case Scheme::kBpsk:
      return 1;
    case Scheme::kAsk4:
    case Scheme::kQpsk:
      return 2;
  }
  return 1;
}

std::vector<Complex> constellation(Scheme scheme) {
  switch (scheme) {
    case Scheme::kOok: {
      // Paper polarity: bit 0 -> reflect (high), bit 1 -> absorb.
      const double high = std::sqrt(2.0);  // Unit average power.
      return {Complex(high, 0.0), Complex(0.0, 0.0)};
    }
    case Scheme::kAsk4: {
      // Unipolar levels 0, d, 2d, 3d with E[l^2] = 3.5 d^2 = 1.
      const double d = std::sqrt(1.0 / 3.5);
      // Indexed by bit pattern; Gray order 00,01,11,10 -> levels 0,1,2,3.
      return {Complex(0.0, 0.0),      // 00
              Complex(d, 0.0),        // 01
              Complex(3.0 * d, 0.0),  // 10 -> level 3
              Complex(2.0 * d, 0.0)}; // 11 -> level 2
    }
    case Scheme::kBpsk:
      return {Complex(1.0, 0.0), Complex(-1.0, 0.0)};
    case Scheme::kQpsk: {
      const double a = 1.0 / std::sqrt(2.0);
      // Bit pattern (b0 b1) -> ((1-2*b0) + j(1-2*b1)) / sqrt(2): Gray.
      return {Complex(a, a), Complex(a, -a), Complex(-a, a),
              Complex(-a, -a)};
    }
  }
  return {};
}

double scheme_ber(Scheme scheme, double snr_db) {
  const double snr = phys::db_to_ratio(snr_db);
  switch (scheme) {
    case Scheme::kOok:
      return q_function(std::sqrt(snr));
    case Scheme::kBpsk:
      return q_function(std::sqrt(2.0 * snr));
    case Scheme::kQpsk:
      // Gray QPSK: per-bit error Q(sqrt(SNR)) at average *symbol* SNR.
      return q_function(std::sqrt(snr));
    case Scheme::kAsk4: {
      // Unipolar 4-ASK, Gray: P_sym ~ 1.5 Q(sqrt(SNR/7)), ~half the symbol
      // errors flip one of the two bits.
      return 0.75 * q_function(std::sqrt(snr / 7.0));
    }
  }
  return 0.5;
}

double scheme_snr_for_ber_db(Scheme scheme, double target_ber) {
  assert(target_ber > 0.0 && target_ber < 0.5);
  double lo = -10.0;
  double hi = 60.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (scheme_ber(scheme, mid) > target_ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

double scheme_rate_bps(Scheme scheme, double bandwidth_hz) {
  assert(bandwidth_hz > 0.0);
  return bits_per_symbol(scheme) * bandwidth_hz / 2.0;
}

std::vector<Complex> map_symbols(Scheme scheme, const BitVector& bits) {
  const std::vector<Complex> points = constellation(scheme);
  const int bps = bits_per_symbol(scheme);
  std::vector<Complex> symbols;
  symbols.reserve((bits.size() + static_cast<std::size_t>(bps) - 1) /
                  static_cast<std::size_t>(bps));
  for (std::size_t i = 0; i < bits.size(); i += static_cast<std::size_t>(bps)) {
    unsigned pattern = 0;
    for (int b = 0; b < bps; ++b) {
      const std::size_t index = i + static_cast<std::size_t>(b);
      const bool bit = index < bits.size() ? bits[index] : false;
      pattern = (pattern << 1) | (bit ? 1u : 0u);
    }
    symbols.push_back(points[pattern]);
  }
  return symbols;
}

BitVector demap_symbols(Scheme scheme, std::span<const Complex> symbols) {
  const std::vector<Complex> points = constellation(scheme);
  const int bps = bits_per_symbol(scheme);
  BitVector bits;
  bits.reserve(symbols.size() * static_cast<std::size_t>(bps));
  for (const Complex& symbol : symbols) {
    unsigned best_pattern = 0;
    double best_distance = std::numeric_limits<double>::infinity();
    for (unsigned pattern = 0; pattern < points.size(); ++pattern) {
      const double distance = std::norm(symbol - points[pattern]);
      if (distance < best_distance) {
        best_distance = distance;
        best_pattern = pattern;
      }
    }
    for (int b = bps - 1; b >= 0; --b) {
      bits.push_back(((best_pattern >> b) & 1u) != 0);
    }
  }
  return bits;
}

}  // namespace mmtag::phy
