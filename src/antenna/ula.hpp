// Uniform linear arrays: steering vectors, array factor, beamwidth.
//
// This implements Sec. 5.1 of the paper verbatim. For an N-element array
// with spacing d, the signal received by the n-th element from azimuth
// theta is (paper Eq. 1):
//
//   x_n = x_0 * exp(-j * K0 * n * d * sin(theta)),   n in [0, N-1]
//
// which for the conventional d = lambda/2 reduces to Eq. (2),
// x_n = x_0 * exp(-j * pi * n * sin(theta)). Transmitting toward theta
// requires the conjugate phases (Eq. 3). The Van Atta model in src/core
// builds directly on these steering vectors.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace mmtag::antenna {

using Complex = std::complex<double>;

class UniformLinearArray {
 public:
  /// `elements` >= 1, `spacing_m` > 0, `frequency_hz` > 0.
  UniformLinearArray(int elements, double spacing_m, double frequency_hz);

  /// Conventional half-wavelength-spaced array at `frequency_hz`.
  [[nodiscard]] static UniformLinearArray half_wavelength(int elements,
                                                          double frequency_hz);

  [[nodiscard]] int size() const { return elements_; }
  [[nodiscard]] double spacing_m() const { return spacing_m_; }
  [[nodiscard]] double frequency_hz() const { return frequency_hz_; }

  /// Per-element phase K0 * d * sin(theta) [rad] — pi * sin(theta) for
  /// half-wavelength spacing.
  [[nodiscard]] double element_phase_rad(double angle_rad) const;

  /// Receive steering vector a(theta): a_n = exp(-j * n * psi(theta))
  /// (paper Eqs. 1-2).
  [[nodiscard]] std::vector<Complex> steering_vector(double angle_rad) const;

  /// Transmit weights that focus toward theta: conjugate of the receive
  /// steering vector, normalized to unit total power (paper Eq. 3).
  [[nodiscard]] std::vector<Complex> steering_weights(double angle_rad) const;

  /// Complex array factor AF(theta) = sum_n w_n * exp(-j * n * psi(theta)).
  [[nodiscard]] Complex array_factor(std::span<const Complex> weights,
                                     double angle_rad) const;

  /// |AF(theta)|^2 in dB relative to a single element.
  [[nodiscard]] double array_gain_db(std::span<const Complex> weights,
                                     double angle_rad) const;

  /// Azimuth-plane directivity of the weighted array [dB]: peak power over
  /// the average over all azimuth angles, computed by numeric integration.
  [[nodiscard]] double directivity_db(std::span<const Complex> weights) const;

  /// Half-power (-3 dB) beamwidth of the main lobe around `steer_rad` when
  /// driven by `weights` [deg]. Found by numeric search for the -3 dB
  /// crossings on each side of the peak.
  [[nodiscard]] double half_power_beamwidth_deg(
      std::span<const Complex> weights, double steer_rad) const;

  /// Closed-form broadside HPBW estimate 0.886 * lambda / (N * d) [deg] for
  /// a uniformly-excited array — the textbook value the paper's "20 degree"
  /// figure comes from.
  [[nodiscard]] double broadside_hpbw_estimate_deg() const;

 private:
  int elements_;
  double spacing_m_;
  double frequency_hz_;
};

/// Uniform (unsteered, equal-amplitude) weights of length `n`, normalized to
/// unit total power: w_n = 1/sqrt(n).
[[nodiscard]] std::vector<Complex> uniform_weights(int n);

}  // namespace mmtag::antenna
