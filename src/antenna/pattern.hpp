// Azimuth radiation patterns.
//
// The paper's tag is a *linear* array scanned in one plane, and its reader
// steers in azimuth (Fig. 2), so the whole simulator works in the azimuth
// plane. A pattern maps an azimuth angle (radians, 0 = boresight, positive
// counter-clockwise) to a power gain in dBi. Out-of-plane behaviour is
// folded into the boresight gain figure.
#pragma once

#include <memory>

namespace mmtag::antenna {

/// Interface: azimuth power-gain pattern of a single radiator.
class Pattern {
 public:
  virtual ~Pattern() = default;

  /// Power gain at azimuth `angle_rad` [dBi].
  [[nodiscard]] virtual double gain_dbi(double angle_rad) const = 0;

  /// Linear *amplitude* (field) gain at `angle_rad`: sqrt of linear power
  /// gain. Convenience used by array superposition.
  [[nodiscard]] double amplitude(double angle_rad) const;
};

/// Isotropic radiator (0 dBi everywhere). Reference for tests.
class IsotropicPattern final : public Pattern {
 public:
  [[nodiscard]] double gain_dbi(double /*angle_rad*/) const override;
};

/// Single microstrip patch: broadside beam with a cos^q(theta) power shape,
/// no radiation behind the ground plane. Default boresight gain 5 dBi and
/// q = 2 are typical for a thin-substrate rectangular patch.
class PatchPattern final : public Pattern {
 public:
  explicit PatchPattern(double boresight_gain_dbi = 5.0, double exponent = 2.0);

  [[nodiscard]] double gain_dbi(double angle_rad) const override;

  [[nodiscard]] double boresight_gain_dbi() const { return boresight_dbi_; }

 private:
  double boresight_dbi_;
  double exponent_;
  double floor_dbi_;  ///< Back-lobe floor (ground-plane leakage).
};

/// Directional horn approximated by a Gaussian main lobe of a given
/// half-power beamwidth plus a side-lobe floor. This models the reader's
/// standard-gain horns (paper Sec. 7).
class HornPattern final : public Pattern {
 public:
  HornPattern(double boresight_gain_dbi, double half_power_beamwidth_deg,
              double sidelobe_floor_dbi = -10.0);

  /// 20 dBi / 18 degree horn typical of 24 GHz standard-gain horns.
  [[nodiscard]] static HornPattern mmtag_reader_horn();

  [[nodiscard]] double gain_dbi(double angle_rad) const override;

  [[nodiscard]] double boresight_gain_dbi() const { return boresight_dbi_; }
  [[nodiscard]] double half_power_beamwidth_deg() const { return hpbw_deg_; }

 private:
  double boresight_dbi_;
  double hpbw_deg_;
  double floor_dbi_;
};

/// A pattern rotated so its boresight points at `boresight_rad`.
class SteeredPattern final : public Pattern {
 public:
  SteeredPattern(std::shared_ptr<const Pattern> base, double boresight_rad);

  [[nodiscard]] double gain_dbi(double angle_rad) const override;

  [[nodiscard]] double boresight_rad() const { return boresight_rad_; }

 private:
  std::shared_ptr<const Pattern> base_;
  double boresight_rad_;
};

}  // namespace mmtag::antenna
