#include "src/antenna/pattern.hpp"

#include <cassert>
#include <cmath>

#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"

namespace mmtag::antenna {

double Pattern::amplitude(double angle_rad) const {
  // Field amplitude is the square root of linear power gain, i.e.
  // 10^(dBi / 20).
  return phys::db_to_amplitude_ratio(gain_dbi(angle_rad));
}

double IsotropicPattern::gain_dbi(double /*angle_rad*/) const { return 0.0; }

PatchPattern::PatchPattern(double boresight_gain_dbi, double exponent)
    : boresight_dbi_(boresight_gain_dbi),
      exponent_(exponent),
      floor_dbi_(boresight_gain_dbi - 25.0) {
  assert(exponent_ > 0.0);
}

double PatchPattern::gain_dbi(double angle_rad) const {
  const double wrapped = phys::wrap_angle_rad(angle_rad);
  // Behind the ground plane: only the leakage floor radiates.
  if (std::abs(wrapped) >= phys::kPi / 2.0) return floor_dbi_;
  const double shape = std::pow(std::cos(wrapped), exponent_);
  if (shape <= 0.0) return floor_dbi_;
  const double gain = boresight_dbi_ + phys::ratio_to_db(shape);
  return gain > floor_dbi_ ? gain : floor_dbi_;
}

HornPattern::HornPattern(double boresight_gain_dbi,
                         double half_power_beamwidth_deg,
                         double sidelobe_floor_dbi)
    : boresight_dbi_(boresight_gain_dbi),
      hpbw_deg_(half_power_beamwidth_deg),
      floor_dbi_(sidelobe_floor_dbi) {
  assert(hpbw_deg_ > 0.0);
  assert(floor_dbi_ < boresight_dbi_);
}

HornPattern HornPattern::mmtag_reader_horn() {
  return HornPattern(/*boresight_gain_dbi=*/20.0,
                     /*half_power_beamwidth_deg=*/18.0);
}

double HornPattern::gain_dbi(double angle_rad) const {
  const double wrapped_deg =
      phys::rad_to_deg(phys::wrap_angle_rad(angle_rad));
  // Gaussian main lobe: G(theta) = G0 - 12 * (theta / HPBW)^2 dB gives the
  // -3 dB point exactly at theta = HPBW / 2.
  const double rolloff_db = 12.0 * std::pow(wrapped_deg / hpbw_deg_, 2.0);
  const double gain = boresight_dbi_ - rolloff_db;
  return gain > floor_dbi_ ? gain : floor_dbi_;
}

SteeredPattern::SteeredPattern(std::shared_ptr<const Pattern> base,
                               double boresight_rad)
    : base_(std::move(base)), boresight_rad_(boresight_rad) {
  assert(base_ != nullptr);
}

double SteeredPattern::gain_dbi(double angle_rad) const {
  return base_->gain_dbi(angle_rad - boresight_rad_);
}

}  // namespace mmtag::antenna
