#include "src/antenna/codebook.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/phys/units.hpp"

namespace mmtag::antenna {

std::vector<Beam> uniform_codebook(double sector_min_rad,
                                   double sector_max_rad,
                                   double beamwidth_deg) {
  assert(sector_max_rad > sector_min_rad);
  assert(beamwidth_deg > 0.0);
  const double width_rad = phys::deg_to_rad(beamwidth_deg);
  const double sector = sector_max_rad - sector_min_rad;
  const int count = std::max(1, static_cast<int>(std::ceil(sector / width_rad)));
  std::vector<Beam> beams;
  beams.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Beam beam;
    beam.boresight_rad = sector_min_rad + (i + 0.5) * sector / count;
    beam.width_deg = beamwidth_deg;
    beams.push_back(beam);
  }
  return beams;
}

std::vector<std::vector<Beam>> hierarchical_codebook(double sector_min_rad,
                                                     double sector_max_rad,
                                                     int levels,
                                                     int refinement) {
  assert(levels >= 1);
  assert(refinement >= 2);
  std::vector<std::vector<Beam>> stages;
  stages.reserve(static_cast<std::size_t>(levels));
  const double sector_deg =
      phys::rad_to_deg(sector_max_rad - sector_min_rad);
  double beams_this_level = refinement;
  for (int level = 0; level < levels; ++level) {
    const double width_deg = sector_deg / beams_this_level;
    stages.push_back(
        uniform_codebook(sector_min_rad, sector_max_rad, width_deg));
    beams_this_level *= refinement;
  }
  return stages;
}

int exhaustive_probe_count(const std::vector<Beam>& codebook) {
  return static_cast<int>(codebook.size());
}

int hierarchical_probe_count(const std::vector<std::vector<Beam>>& stages) {
  if (stages.empty()) return 0;
  // Probe every beam of the first stage, then `refinement` children per
  // later stage. Children per stage = size ratio between adjacent stages.
  int probes = static_cast<int>(stages.front().size());
  for (std::size_t i = 1; i < stages.size(); ++i) {
    const int ratio = static_cast<int>(
        stages[i].size() / std::max<std::size_t>(1, stages[i - 1].size()));
    probes += std::max(1, ratio);
  }
  return probes;
}

}  // namespace mmtag::antenna
