// Electronically-steered phased array with quantized phase shifters and a
// power-consumption model.
//
// The paper's argument *against* phased arrays on the tag (Secs. 1, 3, 5)
// is that they are costly and burn watts. We implement one anyway — the
// reader may use it instead of a mechanically swept horn, the "active
// mmWave radio" baseline of experiment C4 needs its power numbers, and
// having it lets the benches quantify exactly the cost the paper says the
// Van Atta design avoids.
#pragma once

#include <span>
#include <vector>

#include "src/antenna/pattern.hpp"
#include "src/antenna/ula.hpp"

namespace mmtag::antenna {

class PhasedArray {
 public:
  struct Params {
    int elements = 16;
    /// Phase-shifter resolution in bits; 0 means ideal (continuous) phase.
    int phase_bits = 4;
    /// Power drawn by each phase shifter while biased [W].
    double phase_shifter_power_w = 0.015;
    /// Power of each per-element front-end (LNA or PA driver) [W].
    double frontend_power_w = 0.040;
    /// Static power of the beamforming network / bias tree [W].
    double static_power_w = 0.25;
    /// Boresight gain of each element [dBi].
    double element_gain_dbi = 5.0;
  };

  PhasedArray(Params params, double frequency_hz);

  /// A 16-element 24 GHz array with component powers in line with the
  /// few-watt figure the paper cites for commercial phased arrays.
  [[nodiscard]] static PhasedArray typical_24ghz(int elements = 16);

  /// Steer the beam to `angle_rad`; weights are phase-quantized to
  /// `phase_bits` (no quantization when phase_bits == 0).
  void steer_to(double angle_rad);

  /// Total power gain toward azimuth `angle_rad` with the current steering,
  /// element pattern included [dBi].
  [[nodiscard]] double gain_dbi(double angle_rad) const;

  /// Peak gain at the current steering angle [dBi].
  [[nodiscard]] double peak_gain_dbi() const;

  /// Total DC power consumed while the array is active [W]. This is the
  /// number experiment C4 compares against the tag's switch-toggle energy.
  [[nodiscard]] double dc_power_w() const;

  [[nodiscard]] double steer_angle_rad() const { return steer_rad_; }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const UniformLinearArray& array() const { return array_; }
  [[nodiscard]] std::span<const Complex> weights() const { return weights_; }

 private:
  Params params_;
  UniformLinearArray array_;
  PatchPattern element_;
  std::vector<Complex> weights_;
  double steer_rad_ = 0.0;
};

/// Quantize the phase of each weight to `bits` bits over [0, 2*pi).
/// `bits` == 0 returns the weights unchanged (ideal shifters).
[[nodiscard]] std::vector<Complex> quantize_phases(
    std::span<const Complex> weights, int bits);

}  // namespace mmtag::antenna
