#include "src/antenna/mutual_coupling.hpp"

#include <cassert>
#include <cmath>

#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"

namespace mmtag::antenna {

CouplingMatrix::CouplingMatrix(int order, Complex adjacent, int rings)
    : order_(order), row_(static_cast<std::size_t>(order), Complex(0, 0)) {
  assert(order_ >= 1);
  assert(std::abs(adjacent) < 1.0);
  assert(rings >= 0);
  row_[0] = Complex(1.0, 0.0);
  Complex ring_value = adjacent;
  for (int k = 1; k <= rings && k < order_; ++k) {
    row_[static_cast<std::size_t>(k)] = ring_value;
    ring_value *= adjacent;
  }
}

CouplingMatrix CouplingMatrix::identity(int order) {
  return CouplingMatrix(order, Complex(0.0, 0.0), 0);
}

CouplingMatrix CouplingMatrix::typical_patch(int order) {
  // -15 dB magnitude, mostly reactive (+90 deg) nearest-neighbour term.
  const double magnitude = phys::db_to_amplitude_ratio(-15.0);
  return CouplingMatrix(order, std::polar(magnitude, phys::kPi / 2.0));
}

std::vector<CouplingMatrix::Complex> CouplingMatrix::apply(
    std::span<const Complex> x) const {
  assert(static_cast<int>(x.size()) == order_);
  std::vector<Complex> y(static_cast<std::size_t>(order_), Complex(0, 0));
  for (int i = 0; i < order_; ++i) {
    Complex acc(0.0, 0.0);
    for (int j = 0; j < order_; ++j) {
      acc += at(i, j) * x[static_cast<std::size_t>(j)];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

CouplingMatrix::Complex CouplingMatrix::at(int i, int j) const {
  assert(i >= 0 && i < order_ && j >= 0 && j < order_);
  return row_[static_cast<std::size_t>(std::abs(i - j))];
}

bool CouplingMatrix::is_persymmetric(double tolerance) const {
  // (J C J)[i][j] = C[n-1-i][n-1-j]; equality with C[i][j] must hold.
  for (int i = 0; i < order_; ++i) {
    for (int j = 0; j < order_; ++j) {
      const Complex direct = at(i, j);
      const Complex flipped = at(order_ - 1 - i, order_ - 1 - j);
      if (std::abs(direct - flipped) > tolerance) return false;
    }
  }
  return true;
}

}  // namespace mmtag::antenna
