// Mutual coupling between array elements.
//
// Adjacent patches at half-wavelength spacing couple: part of one element's
// received (or driven) signal leaks into its neighbours. A full-wave solver
// captures this in the array's S-matrix; we model the standard first-order
// banded form — coupling c to nearest neighbours, c^2-scaled to the next
// ring — as a symmetric Toeplitz matrix applied to the element excitation
// vector. Used to check (and quantify) that the Van Atta's retrodirective
// property survives real inter-element coupling, which a mirror-symmetric
// argument suggests it should.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace mmtag::antenna {

class CouplingMatrix {
 public:
  using Complex = std::complex<double>;

  /// `order` elements; `adjacent` is the complex coupling coefficient to a
  /// nearest neighbour (|adjacent| < 1); ring k couples with adjacent^k up
  /// to `rings` neighbours each side. adjacent == 0 gives the identity.
  CouplingMatrix(int order, Complex adjacent, int rings = 2);

  /// Identity (no coupling).
  [[nodiscard]] static CouplingMatrix identity(int order);

  /// Typical measured patch coupling at lambda/2: about -15 dB with ~90
  /// degrees of phase (reactive).
  [[nodiscard]] static CouplingMatrix typical_patch(int order);

  /// y = C * x (x untouched).
  [[nodiscard]] std::vector<Complex> apply(
      std::span<const Complex> x) const;

  /// Matrix entry C[i][j].
  [[nodiscard]] Complex at(int i, int j) const;

  [[nodiscard]] int order() const { return order_; }

  /// True within tolerance if C commutes with the flip operator J
  /// (J C J == C, i.e. persymmetric) — the property that preserves
  /// retrodirectivity. Always true for this Toeplitz construction; exposed
  /// for tests and for user-supplied perturbations.
  [[nodiscard]] bool is_persymmetric(double tolerance = 1e-12) const;

 private:
  int order_;
  /// First row of the symmetric Toeplitz matrix: offset 0..order-1.
  std::vector<Complex> row_;
};

}  // namespace mmtag::antenna
