#include "src/antenna/phased_array.hpp"

#include <cassert>
#include <cmath>

#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"

namespace mmtag::antenna {

PhasedArray::PhasedArray(Params params, double frequency_hz)
    : params_(params),
      array_(UniformLinearArray::half_wavelength(params.elements,
                                                 frequency_hz)),
      element_(params.element_gain_dbi),
      weights_(uniform_weights(params.elements)) {
  assert(params_.elements >= 1);
  assert(params_.phase_bits >= 0);
}

PhasedArray PhasedArray::typical_24ghz(int elements) {
  Params p;
  p.elements = elements;
  return PhasedArray(p, phys::kMmTagCarrierHz);
}

void PhasedArray::steer_to(double angle_rad) {
  steer_rad_ = angle_rad;
  weights_ = quantize_phases(array_.steering_weights(angle_rad),
                             params_.phase_bits);
}

double PhasedArray::gain_dbi(double angle_rad) const {
  return array_.array_gain_db(weights_, angle_rad) +
         element_.gain_dbi(angle_rad);
}

double PhasedArray::peak_gain_dbi() const { return gain_dbi(steer_rad_); }

double PhasedArray::dc_power_w() const {
  return params_.static_power_w +
         params_.elements *
             (params_.phase_shifter_power_w + params_.frontend_power_w);
}

std::vector<Complex> quantize_phases(std::span<const Complex> weights,
                                     int bits) {
  std::vector<Complex> out(weights.begin(), weights.end());
  if (bits <= 0) return out;
  const double levels = std::pow(2.0, bits);
  const double step = phys::kTwoPi / levels;
  for (Complex& w : out) {
    const double mag = std::abs(w);
    if (mag == 0.0) continue;
    const double phase = std::arg(w);
    const double quantized = std::round(phase / step) * step;
    w = std::polar(mag, quantized);
  }
  return out;
}

}  // namespace mmtag::antenna
