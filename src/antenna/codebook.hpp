// Beam codebooks: the discrete set of directions a reader scans.
//
// The mmTag reader "scans the space by steering its beam" (paper Fig. 2).
// A codebook enumerates those beam positions. Exhaustive linear scanning is
// what the evaluation uses; the hierarchical (coarse-to-fine) codebook
// implements the standard two-stage search from the beam-alignment
// literature the paper cites, so benches can compare scan costs.
#pragma once

#include <vector>

namespace mmtag::antenna {

/// One beam position in a scan.
struct Beam {
  double boresight_rad = 0.0;
  double width_deg = 0.0;
};

/// A flat codebook covering [sector_min_rad, sector_max_rad] with beams of
/// `beamwidth_deg`, spaced so adjacent beams meet at their -3 dB edges.
[[nodiscard]] std::vector<Beam> uniform_codebook(double sector_min_rad,
                                                 double sector_max_rad,
                                                 double beamwidth_deg);

/// Hierarchical codebook: `levels` stages, each narrowing the previous
/// stage's best beam by `refinement` (e.g. 4 wide beams, then 4 children of
/// the winner, ...). Returns the stage layouts from coarse to fine across
/// the given sector.
[[nodiscard]] std::vector<std::vector<Beam>> hierarchical_codebook(
    double sector_min_rad, double sector_max_rad, int levels, int refinement);

/// Number of probes an exhaustive scan of `codebook` performs.
[[nodiscard]] int exhaustive_probe_count(const std::vector<Beam>& codebook);

/// Number of probes a hierarchical search over `stages` performs
/// (first stage fully, then `refinement`-sized stages once each).
[[nodiscard]] int hierarchical_probe_count(
    const std::vector<std::vector<Beam>>& stages);

}  // namespace mmtag::antenna
