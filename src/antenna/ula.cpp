#include "src/antenna/ula.hpp"

#include <cassert>
#include <cmath>

#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"

namespace mmtag::antenna {

UniformLinearArray::UniformLinearArray(int elements, double spacing_m,
                                       double frequency_hz)
    : elements_(elements), spacing_m_(spacing_m), frequency_hz_(frequency_hz) {
  assert(elements_ >= 1);
  assert(spacing_m_ > 0.0);
  assert(frequency_hz_ > 0.0);
}

UniformLinearArray UniformLinearArray::half_wavelength(int elements,
                                                       double frequency_hz) {
  return UniformLinearArray(elements, phys::wavelength_m(frequency_hz) / 2.0,
                            frequency_hz);
}

double UniformLinearArray::element_phase_rad(double angle_rad) const {
  const double k0 = phys::wavenumber_rad_per_m(frequency_hz_);
  return k0 * spacing_m_ * std::sin(angle_rad);
}

std::vector<Complex> UniformLinearArray::steering_vector(
    double angle_rad) const {
  const double psi = element_phase_rad(angle_rad);
  std::vector<Complex> a(static_cast<std::size_t>(elements_));
  for (int n = 0; n < elements_; ++n) {
    a[static_cast<std::size_t>(n)] = std::polar(1.0, -psi * n);
  }
  return a;
}

std::vector<Complex> UniformLinearArray::steering_weights(
    double angle_rad) const {
  std::vector<Complex> w = steering_vector(angle_rad);
  const double norm = 1.0 / std::sqrt(static_cast<double>(elements_));
  for (Complex& wn : w) wn = std::conj(wn) * norm;
  return w;
}

Complex UniformLinearArray::array_factor(std::span<const Complex> weights,
                                         double angle_rad) const {
  assert(static_cast<int>(weights.size()) == elements_);
  const double psi = element_phase_rad(angle_rad);
  Complex af(0.0, 0.0);
  for (int n = 0; n < elements_; ++n) {
    af += weights[static_cast<std::size_t>(n)] * std::polar(1.0, -psi * n);
  }
  return af;
}

double UniformLinearArray::array_gain_db(std::span<const Complex> weights,
                                         double angle_rad) const {
  const double power = std::norm(array_factor(weights, angle_rad));
  constexpr double kFloorDb = -100.0;
  if (power <= 1e-10) return kFloorDb;
  return phys::ratio_to_db(power);
}

double UniformLinearArray::directivity_db(
    std::span<const Complex> weights) const {
  // Average |AF|^2 over the full azimuth circle, then report the peak over
  // the average. 1 deg steps are plenty for arrays of < 1000 elements.
  constexpr int kSteps = 2048;
  double peak = 0.0;
  double sum = 0.0;
  for (int i = 0; i < kSteps; ++i) {
    const double theta = -phys::kPi + phys::kTwoPi * i / kSteps;
    const double p = std::norm(array_factor(weights, theta));
    sum += p;
    if (p > peak) peak = p;
  }
  const double average = sum / kSteps;
  assert(average > 0.0);
  return phys::ratio_to_db(peak / average);
}

double UniformLinearArray::half_power_beamwidth_deg(
    std::span<const Complex> weights, double steer_rad) const {
  const double peak_power = std::norm(array_factor(weights, steer_rad));
  assert(peak_power > 0.0);
  const double half_power = peak_power / 2.0;

  // March outward from the steer angle on each side until |AF|^2 drops below
  // half power, then bisect for the exact crossing.
  const auto power_at = [&](double theta) {
    return std::norm(array_factor(weights, theta));
  };
  const auto find_crossing = [&](double direction) {
    const double step = phys::deg_to_rad(0.05);
    double theta = steer_rad;
    const double limit = phys::kPi / 2.0;
    while (std::abs(theta - steer_rad) < limit) {
      const double next = theta + direction * step;
      if (power_at(next) < half_power) {
        // Bisection between theta and next.
        double lo = theta;
        double hi = next;
        for (int i = 0; i < 40; ++i) {
          const double mid = (lo + hi) / 2.0;
          if (power_at(mid) >= half_power) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
        return (lo + hi) / 2.0;
      }
      theta = next;
    }
    return theta;  // No crossing within the visible region (very broad beam).
  };

  const double left = find_crossing(-1.0);
  const double right = find_crossing(+1.0);
  return phys::rad_to_deg(right - left);
}

double UniformLinearArray::broadside_hpbw_estimate_deg() const {
  const double lambda = phys::wavelength_m(frequency_hz_);
  const double aperture = elements_ * spacing_m_;
  return phys::rad_to_deg(0.886 * lambda / aperture);
}

std::vector<Complex> uniform_weights(int n) {
  assert(n >= 1);
  return std::vector<Complex>(static_cast<std::size_t>(n),
                              Complex(1.0 / std::sqrt(n), 0.0));
}

}  // namespace mmtag::antenna
