// Stop-and-wait ARQ over the backscatter link.
//
// A backscatter tag cannot hear NACKs the way an active radio can, but the
// reader *is* the carrier source: it simply re-queries a frame whose CRC
// failed, and the tag (which keeps its data in a shift register) replays
// it. That loop is exactly stop-and-wait ARQ with the reader as the
// arbiter. This module simulates the retransmission process over a lossy
// frame channel and supplies the closed-form efficiency the session layer
// uses.
#pragma once

#include <random>

#include "src/resil/retry.hpp"

namespace mmtag::net {

struct ArqConfig {
  int max_attempts_per_frame = 16;  ///< Give up on a frame after this many.
  /// Reader->tag re-query corruption probability (the query is short and
  /// strong, but not immune).
  double query_loss_probability = 0.01;
  /// Lost re-queries a frame may absorb before the reader declares the
  /// tag unreachable. This budget is independent of the transmission
  /// attempt budget: a lost re-query never consumed tag airtime, so it
  /// must not eat a frame retry — but an endless re-query loop against a
  /// blocked tag must still terminate.
  int max_requeries_per_frame = 8;
  /// Shared retry policy (DESIGN.md Sec. 15). The attempt budget routes
  /// through `retry.exhausted(attempt, max_attempts_per_frame)`, so the
  /// default policy inherits max_attempts_per_frame unchanged; a session
  /// with `retry.base_s > 0` additionally backs off before each
  /// retransmission (event time only — never an extra RNG draw).
  resil::RetryPolicy retry{};
};

struct ArqStats {
  int frames_offered = 0;
  int frames_delivered = 0;
  long transmissions = 0;      ///< Tag frame transmissions, retries included.
  long query_failures = 0;     ///< Re-queries lost before the tag replayed.
  int frames_failed = 0;       ///< Gave up (either budget exhausted).
  int requery_exhausted = 0;   ///< Frames failed by the re-query budget.

  /// Delivered frames per transmission (<= 1; the ARQ efficiency).
  [[nodiscard]] double efficiency() const;
};

/// Simulate transferring `frame_count` frames, each transmission
/// independently succeeding with `frame_success_probability`.
[[nodiscard]] ArqStats run_stop_and_wait(int frame_count,
                                         double frame_success_probability,
                                         const ArqConfig& config,
                                         std::mt19937_64& rng);

/// Closed form: expected transmissions per delivered frame for success
/// probability `p` (geometric mean 1/p), query losses folded in.
[[nodiscard]] double expected_transmissions_per_frame(
    double frame_success_probability, const ArqConfig& config);

/// Goodput factor: payload delivered per unit airtime relative to a
/// loss-free link = p_effective (inverse of expected transmissions).
[[nodiscard]] double arq_goodput_factor(double frame_success_probability,
                                        const ArqConfig& config);

}  // namespace mmtag::net
