#include "src/net/fragmentation.hpp"

#include <algorithm>
#include <cassert>

namespace mmtag::net {

std::size_t max_payload_bits(std::size_t mtu_bits) {
  assert(mtu_bits > kFragmentHeaderBits);
  return kMaxFragments * (mtu_bits - kFragmentHeaderBits);
}

std::vector<phy::TagFrame> fragment_payload(std::uint32_t tag_id,
                                            const phy::BitVector& payload,
                                            std::size_t mtu_bits) {
  assert(mtu_bits > kFragmentHeaderBits);
  const std::size_t chunk_bits = mtu_bits - kFragmentHeaderBits;
  std::size_t total = (payload.size() + chunk_bits - 1) / chunk_bits;
  if (total == 0) total = 1;  // Header-only frame for an empty payload.
  // The 12-bit seq/total counters top out at kMaxFragments; emitting more
  // would silently wrap the header and reassemble garbage. Reject instead
  // — callers split oversized payloads at max_payload_bits boundaries.
  if (total > kMaxFragments) return {};

  std::vector<phy::TagFrame> frames;
  frames.reserve(total);
  for (std::size_t seq = 0; seq < total; ++seq) {
    phy::TagFrame frame;
    frame.tag_id = tag_id;
    phy::append_uint(frame.payload, static_cast<std::uint32_t>(seq), 12);
    phy::append_uint(frame.payload, static_cast<std::uint32_t>(total), 12);
    const std::size_t begin = seq * chunk_bits;
    const std::size_t end = std::min(payload.size(), begin + chunk_bits);
    for (std::size_t i = begin; i < end; ++i) {
      frame.payload.push_back(payload[i]);
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

bool Reassembler::accept(const phy::TagFrame& frame) {
  if (frame.payload.size() < kFragmentHeaderBits) return false;
  std::size_t offset = 0;
  const std::uint32_t seq = phy::read_uint(frame.payload, offset, 12);
  const std::uint32_t total = phy::read_uint(frame.payload, offset, 12);
  if (total == 0 || seq >= total) return false;
  // A frame arriving after the payload completed belongs to a later (or
  // replayed) transfer; accepting it would silently corrupt the finished
  // payload's bookkeeping. The caller should reset or use a new instance.
  if (complete()) return false;

  if (!initialized_) {
    initialized_ = true;
    tag_id_ = frame.tag_id;
    expected_ = total;
    chunks_.assign(expected_, std::nullopt);
  } else {
    if (frame.tag_id != tag_id_) return false;
    if (total != expected_) return false;
  }

  auto& slot = chunks_[seq];
  if (slot.has_value()) return true;  // Duplicate: fine, ignore.
  slot.emplace(frame.payload.begin() +
                   static_cast<std::ptrdiff_t>(kFragmentHeaderBits),
               frame.payload.end());
  ++received_;
  return true;
}

bool Reassembler::complete() const {
  return initialized_ && received_ == expected_;
}

std::optional<phy::BitVector> Reassembler::payload() const {
  if (!complete()) return std::nullopt;
  phy::BitVector out;
  for (const auto& chunk : chunks_) {
    out.insert(out.end(), chunk->begin(), chunk->end());
  }
  return out;
}

}  // namespace mmtag::net
