#include "src/net/rate_control.hpp"

#include <cassert>
#include <cmath>

#include "src/phy/ber.hpp"

namespace mmtag::net {

AckRateController::AckRateController(const phy::RateTable* table,
                                     Params params,
                                     double received_power_dbm)
    : table_(table), params_(params), power_dbm_(received_power_dbm) {
  assert(table_ != nullptr && !table_->tiers().empty());
  assert(params_.history_alpha > 0.0 && params_.history_alpha <= 1.0);
  assert(params_.down_threshold <= params_.up_threshold);
  assert(params_.up_dwell_rounds >= 1);
  // Open-loop start: fastest tier the link budget clears, else the
  // slowest one (tiers are sorted by descending bit rate).
  const std::size_t tiers = table_->tiers().size();
  tier_ = tiers - 1;
  for (std::size_t i = 0; i < tiers; ++i) {
    if (power_dbm_ >= table_->required_power_dbm(table_->tiers()[i])) {
      tier_ = i;
      break;
    }
  }
}

const phy::RateTier& AckRateController::tier() const {
  return table_->tiers()[tier_];
}

void AckRateController::observe_power_dbm(double received_power_dbm) {
  power_dbm_ = received_power_dbm;
}

bool AckRateController::on_ack_round(int delivered, int transmitted) {
  if (transmitted <= 0) return false;
  const double ratio =
      static_cast<double>(delivered) / static_cast<double>(transmitted);
  ewma_ = (1.0 - params_.history_alpha) * ewma_ +
          params_.history_alpha * ratio;

  if (ewma_ < params_.down_threshold) {
    dwell_ = 0;
    if (tier_ + 1 < table_->tiers().size()) {
      ++tier_;
      ++switches_;
      // A fresh tier gets a fresh record — inheriting the failed tier's
      // EWMA would immediately downshift again through every tier.
      ewma_ = 1.0;
      return true;
    }
    return false;
  }

  if (ewma_ >= params_.up_threshold && tier_ > 0) {
    const phy::RateTier& faster = table_->tiers()[tier_ - 1];
    const bool snr_clears =
        power_dbm_ >=
        table_->required_power_dbm(faster) + params_.snr_margin_db;
    if (snr_clears) {
      if (++dwell_ >= params_.up_dwell_rounds) {
        --tier_;
        ++switches_;
        dwell_ = 0;
        // Probing a faster tier starts from a clean slate too: the first
        // bad rounds should demote it on their own evidence.
        ewma_ = 1.0;
        return true;
      }
      return false;
    }
  }
  dwell_ = 0;
  return false;
}

double packet_success_probability(const phy::RateTable& table,
                                  const phy::RateTier& tier,
                                  double received_power_dbm,
                                  std::size_t on_air_chips) {
  const double snr_db =
      received_power_dbm - table.noise().power_dbm(tier.bandwidth_hz);
  const double chip_error = phy::ook_coherent_ber(snr_db);
  return std::pow(1.0 - chip_error, static_cast<double>(on_air_chips));
}

}  // namespace mmtag::net
