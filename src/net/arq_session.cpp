#include "src/net/arq_session.hpp"

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>

#include "src/obs/metrics.hpp"

namespace mmtag::net {

namespace {

/// Frames that died with their retry budget spent (attempt or re-query) —
/// distinct from in-flight loss, which retries and never lands here.
obs::Counter& arq_exhausted_sw_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("net.arq.exhausted.sw");
  return counter;
}

}  // namespace

double ArqSessionResult::goodput_bps(std::size_t payload_bits) const {
  if (elapsed_s <= 0.0) return 0.0;
  return static_cast<double>(stats.frames_delivered) *
         static_cast<double>(payload_bits) / elapsed_s;
}

ArqSession::ArqSession(ArqConfig config, ArqTiming timing)
    : config_(config), timing_(timing) {
  assert(config_.max_attempts_per_frame > 0);
  assert(timing_.frame_time_s >= 0.0 && timing_.query_time_s >= 0.0 &&
         timing_.query_timeout_s >= 0.0);
  assert(timing_.late_reply_probability >= 0.0 &&
         timing_.late_reply_probability <= 1.0);
  assert(timing_.late_reply_fraction >= 0.0 &&
         timing_.late_reply_fraction <= 1.0);
}

namespace {

/// Transfer state threaded through the event chain. Every scheduled event
/// captures the shared_ptr, so the state lives exactly as long as an
/// on-air step is still pending.
struct TransferState {
  ArqConfig config;
  ArqTiming timing;
  int frame_count = 0;
  double frame_success_probability = 0.0;
  std::mt19937_64* rng = nullptr;
  std::function<void(const ArqSessionResult&)> done;
  mac::EventQueue* queue = nullptr;
  double start_time_s = 0.0;

  ArqStats stats;
  long late_replies = 0;
  int frame = 0;
  int attempt = 0;
  int requery_budget = 0;
  std::uniform_real_distribution<double> coin{0.0, 1.0};
};

void step(const std::shared_ptr<TransferState>& self);

void finish_frame(const std::shared_ptr<TransferState>& self, bool delivered,
                  bool exhausted) {
  TransferState& s = *self;
  if (delivered) {
    ++s.stats.frames_delivered;
  } else {
    // Either budget (attempt or re-query) is spent: surface it in the
    // registry so exhaustion is distinguishable from in-flight loss.
    ++s.stats.frames_failed;
    if (exhausted) ++s.stats.requery_exhausted;
    arq_exhausted_sw_metric().add(1);
  }
  ++s.frame;
  s.attempt = 0;
  s.requery_budget = s.config.max_requeries_per_frame;
  step(self);
}

/// Perform the next on-air action and schedule its completion. The draw
/// order (re-query coin before transmission coin) matches
/// run_stop_and_wait exactly, so the two agree event for event on a
/// shared RNG stream.
void step(const std::shared_ptr<TransferState>& self) {
  TransferState& s = *self;
  if (s.frame >= s.frame_count) {
    ArqSessionResult result;
    result.stats = s.stats;
    result.late_replies = s.late_replies;
    result.elapsed_s = s.queue->now() - s.start_time_s;
    if (s.done) s.done(result);
    return;
  }
  if (s.config.retry.exhausted(s.attempt, s.config.max_attempts_per_frame)) {
    finish_frame(self, /*delivered=*/false, /*exhausted=*/false);
    return;
  }
  // Backoff before a retransmission round, keyed per frame so jittered
  // policies decorrelate across frames. Zero for the default policy — the
  // draw order AND the event times then match run_stop_and_wait exactly.
  const double backoff_s =
      s.attempt > 0 ? s.config.retry.delay_s(
                          s.attempt, static_cast<std::uint64_t>(s.frame))
                    : 0.0;
  if (s.attempt > 0) {
    if (s.requery_budget <= 0) {
      finish_frame(self, /*delivered=*/false, /*exhausted=*/true);
      return;
    }
    if (s.coin(*s.rng) < s.config.query_loss_probability) {
      if (s.timing.late_reply_probability > 0.0 &&
          s.coin(*s.rng) < s.timing.late_reply_probability) {
        // Duplicate/late reply: the re-query the loss coin wrote off did
        // reach the tag, and its replay lands inside the listen window.
        // The round is exactly one (late) transmission — booking it as a
        // query failure *and* a round would double-count the airtime, so
        // neither query_failures nor the re-query budget is touched.
        ++s.stats.transmissions;
        ++s.late_replies;
        const bool delivered = s.coin(*s.rng) < s.frame_success_probability;
        s.queue->schedule_in(
            backoff_s + s.timing.query_time_s +
                s.timing.late_reply_fraction * s.timing.query_timeout_s +
                s.timing.frame_time_s,
            [self, delivered] {
              if (delivered) {
                finish_frame(self, /*delivered=*/true, /*exhausted=*/false);
              } else {
                ++self->attempt;
                step(self);
              }
            });
        return;
      }
      // Lost re-query: the reader sent the query and held the listen
      // window open for a replay that never came. That is pure wall-clock
      // waste — the fault-injection point this session exists for.
      ++s.stats.query_failures;
      --s.requery_budget;
      s.queue->schedule_in(s.timing.query_time_s + s.timing.query_timeout_s,
                           [self] { step(self); });
      return;
    }
  }
  ++s.stats.transmissions;
  const bool delivered = s.coin(*s.rng) < s.frame_success_probability;
  s.queue->schedule_in(
      backoff_s + s.timing.query_time_s + s.timing.frame_time_s,
      [self, delivered] {
        if (delivered) {
          finish_frame(self, /*delivered=*/true, /*exhausted=*/false);
        } else {
          ++self->attempt;
          step(self);
        }
      });
}

}  // namespace

void ArqSession::start(mac::EventQueue& queue, int frame_count,
                       double frame_success_probability,
                       std::mt19937_64& rng,
                       std::function<void(const ArqSessionResult&)> done) {
  assert(frame_count >= 0);
  assert(frame_success_probability >= 0.0 &&
         frame_success_probability <= 1.0);
  auto state = std::make_shared<TransferState>();
  state->config = config_;
  state->timing = timing_;
  state->frame_count = frame_count;
  state->frame_success_probability = frame_success_probability;
  state->rng = &rng;
  state->done = std::move(done);
  state->queue = &queue;
  state->start_time_s = queue.now();
  state->stats.frames_offered = frame_count;
  state->requery_budget = config_.max_requeries_per_frame;
  queue.schedule_in(0.0, [state] { step(state); });
}

ArqSessionResult ArqSession::run(int frame_count,
                                 double frame_success_probability,
                                 std::mt19937_64& rng) {
  mac::EventQueue queue;
  ArqSessionResult result;
  start(queue, frame_count, frame_success_probability, rng,
        [&result](const ArqSessionResult& r) { result = r; });
  queue.run();
  return result;
}

}  // namespace mmtag::net
