// End-to-end transfer sessions: link budget -> BER -> FER -> ARQ -> goodput.
//
// The number a downstream application actually cares about is not Fig. 7's
// raw rate but the *goodput* of a CRC-checked, retransmitted, fragmented
// transfer. This module chains every layer below it into that figure:
//
//   link power  ->  SNR in the chosen tier   (phys + rate table)
//   SNR         ->  chip BER                 (phy closed forms)
//   BER         ->  frame success prob.      ((1-BER)^chips)
//   FER         ->  ARQ efficiency           (net/arq)
//   framing     ->  header/Manchester tax    (phy/frame + line code)
#pragma once

#include <optional>

#include "src/net/arq.hpp"
#include "src/phy/rate_table.hpp"
#include "src/reader/reader.hpp"

namespace mmtag::net {

struct SessionConfig {
  std::size_t mtu_payload_bits = 256;  ///< Frame payload budget (w/ header).
  ArqConfig arq;
  bool manchester = true;
};

/// Everything known about a prospective transfer over one link state.
struct SessionReport {
  double link_rate_bps = 0.0;     ///< Chip rate of the selected tier.
  double snr_db = 0.0;            ///< SNR in the tier bandwidth.
  double chip_error_rate = 0.5;   ///< Raw OOK chip BER at that SNR.
  double frame_success = 0.0;     ///< Probability a whole frame survives.
  double arq_efficiency = 0.0;    ///< Delivered / transmitted frames.
  double goodput_bps = 0.0;       ///< Payload bits per second, all taxes in.
  std::size_t frames_per_payload = 0;

  [[nodiscard]] bool usable() const { return goodput_bps > 0.0; }
};

class TransferSession {
 public:
  TransferSession(phy::RateTable rates, SessionConfig config);

  /// The standard mmTag session: paper rate table, 256-bit MTU, Manchester.
  [[nodiscard]] static TransferSession mmtag_default();

  /// Analyze a transfer of `payload_bits` over the given link state.
  [[nodiscard]] SessionReport analyze(const reader::LinkReport& link,
                                      std::size_t payload_bits) const;

  /// Expected wall-clock time to move `payload_bits` [s]; infinity when
  /// the link is unusable.
  [[nodiscard]] double transfer_time_s(const reader::LinkReport& link,
                                       std::size_t payload_bits) const;

  [[nodiscard]] const SessionConfig& config() const { return config_; }

 private:
  phy::RateTable rates_;
  SessionConfig config_;
};

}  // namespace mmtag::net
