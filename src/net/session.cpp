#include "src/net/session.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "src/net/fragmentation.hpp"
#include "src/phy/ber.hpp"
#include "src/phy/frame.hpp"

namespace mmtag::net {

TransferSession::TransferSession(phy::RateTable rates, SessionConfig config)
    : rates_(std::move(rates)), config_(config) {
  assert(config_.mtu_payload_bits > kFragmentHeaderBits);
}

TransferSession TransferSession::mmtag_default() {
  return TransferSession(phy::RateTable::mmtag_standard(), SessionConfig{});
}

SessionReport TransferSession::analyze(const reader::LinkReport& link,
                                       std::size_t payload_bits) const {
  SessionReport report;
  const auto tier = rates_.best_tier(link.received_power_dbm);
  if (!tier) return report;  // Unusable link: all-zero report.

  report.link_rate_bps = tier->bit_rate_bps;
  report.snr_db = link.received_power_dbm -
                  rates_.noise().power_dbm(tier->bandwidth_hz);
  report.chip_error_rate = phy::ook_coherent_ber(report.snr_db);

  // Fragment bookkeeping: how many frames and how many on-air chips each.
  const std::size_t chunk_bits =
      config_.mtu_payload_bits - kFragmentHeaderBits;
  report.frames_per_payload =
      payload_bits == 0 ? 1 : (payload_bits + chunk_bits - 1) / chunk_bits;
  const std::size_t frame_bits =
      phy::TagFrame::frame_bits(config_.mtu_payload_bits);
  const std::size_t chips_per_frame =
      config_.manchester ? 2 * frame_bits : frame_bits;

  // A frame survives when every chip does (CRC catches the rest; the tiny
  // undetected-error probability is ignored).
  report.frame_success = std::pow(1.0 - report.chip_error_rate,
                                  static_cast<double>(chips_per_frame));
  report.arq_efficiency =
      arq_goodput_factor(report.frame_success, config_.arq);

  // Goodput: payload bits per on-air chip, times chip rate, times ARQ
  // efficiency.
  const double payload_fraction =
      static_cast<double>(chunk_bits) /
      static_cast<double>(chips_per_frame);
  report.goodput_bps =
      report.link_rate_bps * payload_fraction * report.arq_efficiency;
  return report;
}

double TransferSession::transfer_time_s(const reader::LinkReport& link,
                                        std::size_t payload_bits) const {
  const SessionReport report = analyze(link, payload_bits);
  if (!report.usable()) return std::numeric_limits<double>::infinity();
  return static_cast<double>(payload_bits) / report.goodput_bps;
}

}  // namespace mmtag::net
