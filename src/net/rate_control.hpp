// Closed-loop rate adaptation from ACK/NAK history.
//
// phy::RateController adapts on raw received-power samples — an open-loop
// rule that trusts the link budget. A traffic session has a better signal:
// the block-ACKs it is already paying for. This controller fuses both,
// Minstrel-style: the delivery ratio of recent ACK rounds decides when the
// current tier is failing (downshift on the evidence, whatever the SNR
// claims), while the SNR gate from the existing rate table decides when a
// faster tier is even worth probing (upshift only after a dwell of clean
// rounds AND link margin above the faster tier's threshold). Pure integer/
// double state machine, no RNG — a deterministic component of the traffic
// engine's per-flow simulations.
#pragma once

#include <cstddef>

#include "src/phy/rate_table.hpp"

namespace mmtag::net {

class AckRateController {
 public:
  struct Params {
    /// ACK rounds folded into the delivery-ratio EWMA.
    double history_alpha = 0.25;
    /// EWMA delivery ratio that forces a downshift to the next slower
    /// tier (the ACKs say the tier is failing — SNR opinions are ignored
    /// on the way down; blockage does not show up in a link budget).
    double down_threshold = 0.5;
    /// EWMA delivery ratio required to arm an upshift.
    double up_threshold = 0.9;
    /// Consecutive qualifying rounds before the upshift fires.
    int up_dwell_rounds = 3;
    /// Link margin above the faster tier's power threshold required to
    /// upshift into it [dB].
    double snr_margin_db = 3.0;
  };

  /// `table` tiers are consulted in their canonical descending-rate
  /// order. The controller starts at the best SNR-feasible tier for
  /// `received_power_dbm` (the open-loop pick), or the slowest tier when
  /// even that is out of reach (the ACK loop will keep it there).
  AckRateController(const phy::RateTable* table, Params params,
                    double received_power_dbm);

  /// Feed one block-ACK round: `delivered` of `transmitted` packets got
  /// through. Returns true when the tier changed.
  bool on_ack_round(int delivered, int transmitted);

  /// Refresh the link-budget side of the fusion (mobility, blockage
  /// clearing). Never changes the tier by itself — only the upshift gate.
  void observe_power_dbm(double received_power_dbm);

  /// Tier currently in force (index into table->tiers(), 0 = fastest).
  [[nodiscard]] std::size_t tier_index() const { return tier_; }
  [[nodiscard]] const phy::RateTier& tier() const;
  [[nodiscard]] double rate_bps() const { return tier().bit_rate_bps; }
  [[nodiscard]] double delivery_ewma() const { return ewma_; }
  [[nodiscard]] int switch_count() const { return switches_; }
  [[nodiscard]] const Params& params() const { return params_; }

 private:
  const phy::RateTable* table_;
  Params params_;
  double power_dbm_;
  std::size_t tier_ = 0;
  double ewma_ = 1.0;
  int dwell_ = 0;
  int switches_ = 0;
};

/// P(one packet of `on_air_chips` chips survives) for a tag received at
/// `received_power_dbm` in `tier`'s bandwidth: SNR against the table's
/// noise model through the coherent-OOK BER closed form, chip
/// independence across the packet. The per-packet coin every net-layer
/// simulation flips.
[[nodiscard]] double packet_success_probability(const phy::RateTable& table,
                                                const phy::RateTier& tier,
                                                double received_power_dbm,
                                                std::size_t on_air_chips);

}  // namespace mmtag::net
