// iperf-style traffic engine: thousands of concurrent flows over a fleet.
//
// The paper's pitch is batteryless *networking* at gigabit speeds; a
// network is judged under load, not per link. This engine composes every
// layer below it into that experiment: a deploy layout is discovered by
// the FleetSimulator (flows are only admitted to tags the inventory
// actually read), each admitted flow runs a pool-backed SR-ARQ session
// (sr_arq.hpp) over its tag's ray-traced link budget, rate adaptation
// (rate_control.hpp) retunes the modulation tier on the block-ACK
// history, and a fault schedule gates the channel mid-flow (reader
// outages zero it, Gilbert-Elliott blockage bursts attenuate it). Out
// come the metrics an iperf harness would print — per-flow and aggregate
// goodput, Jain fairness across flows, pooled delivery-latency
// percentiles — plus an FNV-1a fingerprint over all of them.
//
// Determinism: every random process is realized from a derive_seed
// stream keyed by purpose (outage timelines) or flow index (blockage
// dwells, channel coins), flows fan out via sim::parallel_monte_carlo,
// and aggregation walks flows in index order — so the report is
// bit-identical at any thread count (DESIGN.md Sec. 7 discipline).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/deploy/layout.hpp"
#include "src/fault/schedule.hpp"
#include "src/net/rate_control.hpp"
#include "src/net/sr_arq.hpp"
#include "src/resil/admission.hpp"
#include "src/sim/parallel.hpp"
#include "src/sim/table.hpp"

namespace mmtag::net {

enum class ArqMode {
  /// Sliding-window selective repeat (sr_arq.hpp).
  kSelectiveRepeat,
  /// Stop-and-wait baseline: the same machinery with the window forced
  /// to 1, so SR-vs-S&W comparisons differ in exactly one variable.
  kStopAndWait,
};

struct TrafficConfig {
  deploy::LayoutConfig layout;
  /// Concurrent flows, assigned round-robin over admitted tags.
  int flows = 1000;
  /// Packets each flow must deliver (its "iperf -n").
  int packets_per_flow = 64;
  ArqMode mode = ArqMode::kSelectiveRepeat;
  /// Window / retry budget / ACK loss / payload size (sr_arq.hpp).
  SrArqConfig arq;
  /// Closed-loop rate adaptation knobs (rate_control.hpp).
  AckRateController::Params rate;
  /// Disable to pin every flow at its open-loop initial tier.
  bool adapt_rate = true;
  /// Inventory epochs of the admission pass; flows only run to tags the
  /// fleet discovered. 0 skips discovery and admits every tag.
  int discovery_epochs = 1;
  double epoch_duration_s = 0.05;
  /// Fault schedule applied to BOTH discovery and the traffic phase:
  /// reader outage timelines zero the channel; blockage bursts attenuate
  /// it per flow. (Brownout/stuck/drift models shape discovery only —
  /// they are epoch-granular tag states, not link processes.)
  fault::FaultSchedule faults;
  /// Traffic-phase window the outage timelines are drawn over [s].
  double horizon_s = 1.0;
  /// Block-ACK on-air payload [bits] (timing only).
  double ack_bits = 64.0;
  /// Manchester chip coding on the air (2 chips/bit), as in the phy.
  bool manchester = true;
  /// Buffer slots backing each flow's in-flight window; fewer slots than
  /// the window throttles it (pool backpressure).
  std::size_t pool_packets = 48;
  /// Watermark admission control (DESIGN.md Sec. 15): when the projected
  /// buffer demand of all flows — min(window, pool_packets) slots each —
  /// would push the configured packet budget past the high watermark, the
  /// lowest-priority flows (class = flow % priority_classes, highest
  /// class index first) are shed down to the low watermark BEFORE they
  /// contend for airtime, and surface in flows_shed plus the
  /// `resil.shed.*` obs counters. Disabled by default: every report is
  /// then bit-identical to the pre-admission engine.
  resil::AdmissionConfig admission{};
  std::uint64_t seed = 1;
  /// Worker threads (<= 0 selects sim::default_thread_count()).
  int threads = 0;
};

/// One flow's outcome.
struct FlowResult {
  int flow = 0;
  std::size_t tag = 0;  ///< Tag index in the layout.
  int reader = 0;       ///< Serving cell.
  double received_power_dbm = -300.0;
  double initial_rate_bps = 0.0;
  double final_rate_bps = 0.0;
  int rate_switches = 0;
  SrArqResult arq;
  double goodput_bps = 0.0;
  /// Load-shed by admission control before transmitting anything.
  bool shed = false;
};

/// Aggregate report, merged in flow order.
struct TrafficReport {
  int flows_offered = 0;
  int flows_admitted = 0;  ///< Mapped to a discovered tag and not shed.
  int flows_shed = 0;      ///< Load-shed by admission control.
  int flows_served = 0;    ///< Delivered at least one packet.
  double discovery_coverage = 1.0;
  long packets_offered = 0;
  long packets_delivered = 0;
  long packets_dropped = 0;
  long transmissions = 0;
  long duplicate_receives = 0;
  long pool_stalls = 0;
  int rate_switches = 0;
  double goodput_total_bps = 0.0;
  double goodput_mean_bps = 0.0;  ///< Mean over admitted flows.
  double jain = 0.0;              ///< Fairness of per-flow goodputs.
  double latency_p50_s = 0.0;     ///< Pooled delivery latencies.
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  double elapsed_max_s = 0.0;  ///< Slowest flow's wall time.
  sim::SweepStats sweep;
  std::vector<FlowResult> per_flow;  ///< Flow order.

  [[nodiscard]] double delivery_ratio() const {
    return packets_offered > 0
               ? static_cast<double>(packets_delivered) /
                     static_cast<double>(packets_offered)
               : 0.0;
  }
};

/// FNV-1a digest over every aggregate observable plus each flow's
/// delivered count and goodput bits. Two runs agree on the whole report
/// iff the digests match — the determinism tests and bench_n1_traffic
/// compare these across thread counts.
[[nodiscard]] std::uint64_t fingerprint(const TrafficReport& report);

/// One-row summary (flows, coverage, goodput, Jain, latency percentiles,
/// drops) for benches and examples.
[[nodiscard]] sim::Table traffic_report_table(const TrafficReport& report);

class TrafficEngine {
 public:
  explicit TrafficEngine(TrafficConfig config);

  /// Deterministic in `config.seed`; independent of `config.threads`.
  [[nodiscard]] TrafficReport run();

  [[nodiscard]] const TrafficConfig& config() const { return config_; }

 private:
  TrafficConfig config_;
};

}  // namespace mmtag::net
