#include "src/net/packet.hpp"

#include <cassert>
#include <utility>

#include "src/obs/metrics.hpp"

namespace mmtag::net {

namespace {

obs::Counter& pool_exhausted_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("net.pool.exhausted");
  return counter;
}

obs::Histogram& pool_peak_occupancy_metric() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("net.pool.peak_occupancy_pct");
  return hist;
}

}  // namespace

Packet::Packet(Packet&& other) noexcept
    : pool_(std::exchange(other.pool_, nullptr)),
      base_(std::exchange(other.base_, nullptr)),
      capacity_(std::exchange(other.capacity_, 0)),
      offset_(std::exchange(other.offset_, 0)),
      len_(std::exchange(other.len_, 0)),
      slot_(std::exchange(other.slot_, 0)) {}

Packet& Packet::operator=(Packet&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = std::exchange(other.pool_, nullptr);
    base_ = std::exchange(other.base_, nullptr);
    capacity_ = std::exchange(other.capacity_, 0);
    offset_ = std::exchange(other.offset_, 0);
    len_ = std::exchange(other.len_, 0);
    slot_ = std::exchange(other.slot_, 0);
  }
  return *this;
}

Packet::~Packet() { release(); }

std::uint8_t* Packet::prepend(std::size_t bytes) {
  if (!valid() || bytes > offset_) return nullptr;
  offset_ -= bytes;
  len_ += bytes;
  return base_ + offset_;
}

std::uint8_t* Packet::append(std::size_t bytes) {
  if (!valid() || bytes > tailroom()) return nullptr;
  std::uint8_t* region = base_ + offset_ + len_;
  len_ += bytes;
  return region;
}

bool Packet::consume(std::size_t bytes) {
  if (!valid() || bytes > len_) return false;
  offset_ += bytes;
  len_ -= bytes;
  return true;
}

bool Packet::trim(std::size_t bytes) {
  if (!valid() || bytes > len_) return false;
  len_ -= bytes;
  return true;
}

void Packet::release() {
  if (pool_ != nullptr) {
    pool_->release_slot(slot_);
    pool_ = nullptr;
    base_ = nullptr;
    capacity_ = offset_ = len_ = 0;
  }
}

PacketPool::PacketPool(std::size_t packets, std::size_t payload_capacity,
                       std::size_t headroom)
    : slots_(packets),
      slot_bytes_(payload_capacity + headroom),
      headroom_(headroom),
      slab_(packets * (payload_capacity + headroom), 0) {
  assert(packets > 0 && slot_bytes_ > 0);
  free_.reserve(slots_);
  // LIFO order with slot 0 on top: the first alloc takes slot 0.
  for (std::size_t i = slots_; i-- > 0;) {
    free_.push_back(static_cast<std::uint32_t>(i));
  }
}

PacketPool::~PacketPool() {
  // One high-watermark sample per pool lifetime: enough to read fleet-wide
  // buffer pressure off a bench JSON without plumbing pool pointers out.
  if (stats_.allocs > 0) {
    pool_peak_occupancy_metric().record(
        static_cast<std::uint64_t>(peak_occupancy() * 100.0));
  }
}

Packet PacketPool::alloc() {
  if (free_.empty()) {
    // Exhaustion is backpressure for a window-limited sender but a *drop*
    // for a forwarding fan-in; either way it must be observable, so every
    // refusal is counted both here and in the process-wide registry.
    ++stats_.exhaustions;
    pool_exhausted_metric().add(1);
    return Packet{};
  }
  const std::uint32_t slot = free_.back();
  free_.pop_back();
  ++stats_.allocs;
  if (in_use() > stats_.peak_in_use) stats_.peak_in_use = in_use();
  return Packet(this, slot, slab_.data() + slot * slot_bytes_, slot_bytes_,
                headroom_);
}

void PacketPool::release_slot(std::uint32_t slot) {
  assert(slot < slots_);
  free_.push_back(slot);
}

}  // namespace mmtag::net
