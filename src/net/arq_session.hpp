// ARQ with a clock: stop-and-wait over the backscatter link where every
// on-air action — including the failures — costs wall time.
//
// run_stop_and_wait (arq.hpp) counts events; a fleet under fault injection
// needs to know what those events *cost*: a lost re-query is a query plus
// a listen window the reader burned for nothing, and that airtime has to
// come out of somebody's epoch budget. ArqSession attaches an ArqTiming to
// the same retransmission process and sequences it on a mac::EventQueue,
// so query failures consume wall-clock exactly like real guard time
// instead of being free. The event-count statistics remain draw-for-draw
// identical to run_stop_and_wait under the same RNG stream — tests pin
// that equivalence.
#pragma once

#include <cstddef>
#include <functional>
#include <random>

#include "src/mac/event_queue.hpp"
#include "src/net/arq.hpp"

namespace mmtag::net {

/// On-air costs of one ARQ step. Derive frame_time_s from the PHY rate
/// (frame bits / rate) for link-accurate sessions.
struct ArqTiming {
  double frame_time_s = 10e-6;    ///< Tag replay on-air time.
  double query_time_s = 1e-6;     ///< Reader query on-air time.
  /// Listen window the reader holds open for a replay that never comes
  /// (lost re-query) before concluding the query failed.
  double query_timeout_s = 5e-6;
  /// Probability that a re-query the loss coin wrote off actually reached
  /// the tag, whose replay lands *inside* the listen window (a duplicate/
  /// late reply). Such a round is one late transmission — it must not be
  /// booked as both a query failure and a successful round, which would
  /// double-count the airtime. 0 disables the model and its RNG draw, so
  /// the session stays draw-for-draw identical to run_stop_and_wait.
  double late_reply_probability = 0.0;
  /// Fraction of query_timeout_s that elapses before a late replay starts.
  double late_reply_fraction = 0.5;
};

struct ArqSessionResult {
  ArqStats stats;
  /// Rounds whose replay arrived late inside the listen window (subset of
  /// stats.transmissions; never counted in stats.query_failures).
  long late_replies = 0;
  /// Wall-clock consumed. Exact by construction:
  ///   (transmissions - late_replies) * (query + frame)
  ///   + query_failures * (query + timeout)
  ///   + late_replies * (query + late_reply_fraction * timeout + frame).
  /// A backing-off retry policy (config.retry.base_s > 0) adds its delay
  /// ladder before each retransmission on top of the three terms.
  double elapsed_s = 0.0;

  /// Delivered payload per unit wall time.
  [[nodiscard]] double goodput_bps(std::size_t payload_bits) const;
};

/// Stop-and-wait ARQ sequenced on an event queue with explicit timing.
class ArqSession {
 public:
  ArqSession(ArqConfig config, ArqTiming timing);

  /// Synchronous convenience: run the whole transfer on a private queue.
  [[nodiscard]] ArqSessionResult run(int frame_count,
                                     double frame_success_probability,
                                     std::mt19937_64& rng);

  /// Event-driven form: schedule the transfer on `queue` starting at the
  /// current queue time; `done` fires (at the completion instant) with the
  /// final result. `rng` must outlive the transfer. Multiple sessions may
  /// interleave on one queue — each event covers exactly one on-air step.
  void start(mac::EventQueue& queue, int frame_count,
             double frame_success_probability, std::mt19937_64& rng,
             std::function<void(const ArqSessionResult&)> done);

  [[nodiscard]] const ArqConfig& config() const { return config_; }
  [[nodiscard]] const ArqTiming& timing() const { return timing_; }

 private:
  ArqConfig config_;
  ArqTiming timing_;
};

}  // namespace mmtag::net
