// Payload fragmentation and reassembly.
//
// The paper's motivating applications (AR lenses, neural probes — Sec. 1)
// move payloads far larger than one tag frame. This module splits a
// payload across frames with a small sequencing header and reassembles on
// the reader side, tolerating duplicates and out-of-order arrival (ARQ
// retransmissions reorder naturally).
//
// Fragment payload layout (inside TagFrame::payload):
//   [ seq 12 bits | total 12 bits | chunk bits... ]
#pragma once

#include <optional>
#include <vector>

#include "src/phy/frame.hpp"

namespace mmtag::net {

/// Bits consumed by the fragment header inside each frame payload.
inline constexpr std::size_t kFragmentHeaderBits = 24;

/// Maximum fragments per payload (12-bit counter).
inline constexpr std::size_t kMaxFragments = 4095;

/// Largest payload (in bits) that fits `kMaxFragments` fragments at the
/// given MTU; fragment_payload rejects anything larger.
[[nodiscard]] std::size_t max_payload_bits(std::size_t mtu_bits);

/// Split `payload` into frames whose *frame payloads* are at most
/// `mtu_bits` (header included; `mtu_bits` must exceed the header).
/// An empty payload still produces one header-only frame so the receiver
/// learns it is complete. A payload needing more than `kMaxFragments`
/// fragments is rejected (empty vector) — the 12-bit seq/total counters
/// cannot represent it, and wrapping them would corrupt the header;
/// callers split such payloads at max_payload_bits(mtu_bits) boundaries.
[[nodiscard]] std::vector<phy::TagFrame> fragment_payload(
    std::uint32_t tag_id, const phy::BitVector& payload,
    std::size_t mtu_bits);

/// Reassembles one payload from fragments. Duplicates are ignored;
/// fragments may arrive in any order.
class Reassembler {
 public:
  /// Accept one frame. Returns false — without mutating any state — when
  /// the frame is not a valid fragment (header truncated, zero total,
  /// seq >= total), disagrees with the initialized transfer (inconsistent
  /// total, wrong tag), or arrives after the payload is already
  /// complete(). A duplicate of a pending transfer's fragment returns
  /// true and is ignored.
  bool accept(const phy::TagFrame& frame);

  /// True once every fragment has arrived.
  [[nodiscard]] bool complete() const;

  /// The reassembled payload once complete() (nullopt before).
  [[nodiscard]] std::optional<phy::BitVector> payload() const;

  [[nodiscard]] std::size_t fragments_received() const { return received_; }
  [[nodiscard]] std::size_t fragments_expected() const { return expected_; }

 private:
  std::vector<std::optional<phy::BitVector>> chunks_;
  std::size_t expected_ = 0;
  std::size_t received_ = 0;
  bool initialized_ = false;
  std::uint32_t tag_id_ = 0;
};

}  // namespace mmtag::net
