// Zero-copy packet buffers with reserved headroom.
//
// A gigabit backscatter link dies by memcpy: if every layer that wraps a
// payload (ARQ sequencing, fragmentation, application headers) copies the
// bytes into a fresh buffer, the packet path costs more than the radio.
// This module is the mmbuf/mmpkt idea from production mmWave IoT stacks:
// a PacketPool owns one contiguous slab carved into fixed-size slots, and
// every Packet handed out starts its payload `headroom` bytes into its
// slot. Layers *prepend* their headers into that reserved headroom — the
// payload bytes never move — and strip them on the way back up by sliding
// the data window forward.
//
// Pool exhaustion is flow control, not an error: a sender whose pool is
// dry cannot put more packets in flight, which is exactly the
// backpressure a sliding-window ARQ wants (sr_arq.hpp caps its effective
// window at the pool's availability).
//
// Threading: a pool and its packets belong to one simulation thread (in
// the traffic engine, one per flow). Nothing here locks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmtag::net {

class PacketPool;

/// Move-only handle to one pool slot. The data window [data, data+size)
/// floats inside the slot: prepend() grows it backward into headroom,
/// append() forward into tailroom, consume()/trim() shrink it. The slot
/// returns to the pool when the handle is destroyed or release()d.
class Packet {
 public:
  Packet() = default;
  Packet(Packet&& other) noexcept;
  Packet& operator=(Packet&& other) noexcept;
  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;
  ~Packet();

  /// A default-constructed or released handle is invalid (no storage).
  [[nodiscard]] bool valid() const { return pool_ != nullptr; }
  explicit operator bool() const { return valid(); }

  [[nodiscard]] std::uint8_t* data() { return base_ + offset_; }
  [[nodiscard]] const std::uint8_t* data() const { return base_ + offset_; }
  [[nodiscard]] std::size_t size() const { return len_; }

  /// Bytes available in front of the data window (header budget).
  [[nodiscard]] std::size_t headroom() const { return offset_; }
  /// Bytes available behind the data window.
  [[nodiscard]] std::size_t tailroom() const {
    return capacity_ - offset_ - len_;
  }
  /// Whole-slot capacity (headroom + data + tailroom).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Grow the data window backward by `bytes` and return a pointer to the
  /// new front (where the caller writes its header). The existing payload
  /// bytes do not move. Returns nullptr when the headroom is short.
  [[nodiscard]] std::uint8_t* prepend(std::size_t bytes);

  /// Grow the data window forward by `bytes` and return a pointer to the
  /// new region. Returns nullptr when the tailroom is short.
  [[nodiscard]] std::uint8_t* append(std::size_t bytes);

  /// Drop `bytes` from the front (strip a header); they become headroom
  /// again. Returns false (unchanged) when bytes > size().
  bool consume(std::size_t bytes);

  /// Drop `bytes` from the back; they become tailroom again. Returns
  /// false (unchanged) when bytes > size().
  bool trim(std::size_t bytes);

  /// Return the slot to the pool now; the handle becomes invalid.
  void release();

 private:
  friend class PacketPool;
  Packet(PacketPool* pool, std::uint32_t slot, std::uint8_t* base,
         std::size_t capacity, std::size_t offset)
      : pool_(pool), base_(base), capacity_(capacity), offset_(offset),
        slot_(slot) {}

  PacketPool* pool_ = nullptr;
  std::uint8_t* base_ = nullptr;  ///< Slot storage (owned by the pool).
  std::size_t capacity_ = 0;
  std::size_t offset_ = 0;        ///< Data window start within the slot.
  std::size_t len_ = 0;
  std::uint32_t slot_ = 0;
};

struct PacketPoolStats {
  std::uint64_t allocs = 0;        ///< Successful alloc() calls.
  /// alloc() calls refused (pool dry). Also mirrored to the
  /// `net.pool.exhausted` obs counter so fan-in drops (mesh forwarding)
  /// show up in bench JSON without plumbing pool pointers around.
  std::uint64_t exhaustions = 0;
  std::size_t peak_in_use = 0;     ///< High-water mark of live packets.
};

/// Fixed population of equal slots in one contiguous slab. Not copyable
/// or movable: live Packets hold pointers into the slab.
class PacketPool {
 public:
  /// `packets` slots, each `payload_capacity + headroom` bytes; fresh
  /// packets start with exactly `headroom` bytes of headroom and an empty
  /// data window.
  PacketPool(std::size_t packets, std::size_t payload_capacity,
             std::size_t headroom);
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  /// Records the pool's high-watermark occupancy to the
  /// `net.pool.peak_occupancy_pct` obs histogram (pools that never
  /// allocated stay silent).
  ~PacketPool();

  /// Take a slot; the returned handle is invalid when the pool is dry
  /// (counted in stats().exhaustions — the caller's backpressure signal).
  [[nodiscard]] Packet alloc();

  /// Non-mutating admission probe: true when `packets` further allocs
  /// would succeed right now; `headroom_out` (optional) receives the free
  /// slot count either way. Unlike a failed alloc(), a probe never counts
  /// an exhaustion — the admission layer (resil::AdmissionController)
  /// checks before committing, while only real alloc refusals are graceful
  /// drops (they keep counting in `net.pool.exhausted`).
  [[nodiscard]] bool try_acquire(std::size_t packets,
                                 std::size_t* headroom_out = nullptr) const {
    if (headroom_out != nullptr) *headroom_out = free_.size();
    return free_.size() >= packets;
  }

  [[nodiscard]] std::size_t capacity() const { return slots_; }
  [[nodiscard]] std::size_t available() const { return free_.size(); }
  [[nodiscard]] std::size_t in_use() const {
    return slots_ - free_.size();
  }
  /// Live-slot fraction in [0, 1] — the admission watermark signal.
  [[nodiscard]] double occupancy() const {
    return static_cast<double>(in_use()) / static_cast<double>(slots_);
  }
  /// High-watermark occupancy fraction over the pool's lifetime.
  [[nodiscard]] double peak_occupancy() const {
    return static_cast<double>(stats_.peak_in_use) /
           static_cast<double>(slots_);
  }
  [[nodiscard]] std::size_t headroom() const { return headroom_; }
  [[nodiscard]] const PacketPoolStats& stats() const { return stats_; }

 private:
  friend class Packet;
  void release_slot(std::uint32_t slot);

  std::size_t slots_;
  std::size_t slot_bytes_;
  std::size_t headroom_;
  std::vector<std::uint8_t> slab_;
  std::vector<std::uint32_t> free_;  ///< LIFO free list (cache-warm reuse).
  PacketPoolStats stats_;
};

}  // namespace mmtag::net
