// Sliding-window ARQ with selective repeat over the backscatter link.
//
// Stop-and-wait (arq_session.hpp) pays one feedback round-trip per frame;
// at gigabit chip rates the link idles while the reader acknowledges.
// 802.11ad-style block transfer fixes that: the sender keeps a window of
// packets in flight, the receiver returns ONE block-ACK per burst — a
// cumulative high-water mark plus a selective bitmap keyed to the burst's
// base sequence — and only the holes are retransmitted. This module
// simulates that protocol on mac::EventQueue with explicit on-air timing,
// a per-packet retry budget, and a time-varying channel hook so fault
// schedules (outages, blockage bursts) can gate delivery mid-transfer.
//
// Buffers are real: with a PacketPool attached, every in-flight packet
// holds a pool slot whose header was *prepended* into reserved headroom
// (zero-copy — see packet.hpp), and pool exhaustion shrinks the effective
// window. That is the backpressure loop of a production stack, not an
// error path.
//
// Determinism: all coins come from the caller's engine in a fixed order —
// one per transmitted packet in ascending sequence order per burst, then
// one for the block-ACK — so a seeded run is bit-reproducible and
// thread-count independent when each session owns a derive_seed stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <random>
#include <vector>

#include "src/mac/event_queue.hpp"
#include "src/net/packet.hpp"
#include "src/resil/retry.hpp"

namespace mmtag::net {

/// Bytes of sequencing header prepended to each pool-backed packet.
inline constexpr std::size_t kSrHeaderBytes = 8;

struct SrArqConfig {
  /// In-flight packets (block-ACK bitmap width; 1..64).
  int window = 32;
  /// Transmission attempts per packet before the sender drops it.
  int max_attempts_per_packet = 16;
  /// Probability the block-ACK is lost (sender waits out its timer and
  /// replays the whole outstanding window — duplicates are discarded at
  /// the receiver).
  double ack_loss_probability = 0.01;
  /// Application payload bytes per packet (pool-backed sessions).
  std::size_t payload_bytes = 32;
  /// Shared retry policy (DESIGN.md Sec. 15). The per-packet budget routes
  /// through `retry.exhausted(attempts, max_attempts_per_packet)` — the
  /// default policy inherits max_attempts_per_packet unchanged. With
  /// `retry.base_s > 0` the sender also backs off after consecutive lost
  /// block-ACKs (adds to the timer wait; never an extra RNG draw).
  resil::RetryPolicy retry{};
};

struct SrArqTiming {
  double packet_time_s = 10e-6;  ///< One packet's on-air time.
  double ack_time_s = 2e-6;      ///< Block-ACK on-air time.
  double ack_timeout_s = 5e-6;   ///< Sender timer when the ACK is lost.
};

struct SrArqResult {
  int packets_offered = 0;
  int packets_delivered = 0;
  int packets_dropped = 0;     ///< Retry budget exhausted.
  long transmissions = 0;      ///< Packet transmissions, retries included.
  long acks_received = 0;
  long acks_lost = 0;
  long rounds = 0;             ///< Burst + feedback cycles.
  long duplicate_receives = 0; ///< Replays of already-received packets.
  long pool_stalls = 0;        ///< Rounds throttled by pool exhaustion.
  /// Fully starved rounds (shared pool, not even the base packet had a
  /// buffer): the sender sat out one ack_timeout each.
  long pool_waits = 0;
  /// Wall-clock consumed. Exact by construction:
  ///   transmissions * packet_time + acks_received * ack_time
  ///   + (acks_lost + pool_waits) * ack_timeout.
  /// A backing-off retry policy (config.retry.base_s > 0) adds its delay
  /// ladder after consecutive lost ACKs on top of the three terms.
  double elapsed_s = 0.0;
  /// Receive instant of every delivered packet relative to session start,
  /// ascending sequence order.
  std::vector<double> delivery_latency_s;

  /// Delivered payload per unit wall time.
  [[nodiscard]] double goodput_bps(std::size_t payload_bits) const;
  /// Delivered packets per transmission (<= 1).
  [[nodiscard]] double efficiency() const;
};

/// Per-packet success probability at absolute queue time [s]. Fault
/// schedules plug in here (0 during an outage, attenuated while blocked).
using ChannelFn = std::function<double(double now_s)>;

/// What one received block-ACK told the sender.
struct SrRoundFeedback {
  int round_transmitted = 0;  ///< Packets in the just-ACKed burst.
  int round_delivered = 0;    ///< Burst packets newly confirmed delivered.
};

/// Optional cross-layer hook fired on every received block-ACK; returns
/// the timing for subsequent rounds. Rate adaptation lives here: a tier
/// switch changes the packet slot time mid-transfer (the elapsed
/// decomposition above is exact only while timing stays constant — with
/// an adapter, elapsed_s is still the exact event-queue sum, just not a
/// three-term closed form).
using AdaptFn = std::function<SrArqTiming(const SrRoundFeedback&)>;

class SrArqSession {
 public:
  SrArqSession(SrArqConfig config, SrArqTiming timing);

  /// Synchronous convenience: run the transfer on a private queue over a
  /// fixed per-packet success probability. `pool` (optional) backs the
  /// in-flight window with real buffers; pass nullptr to skip.
  [[nodiscard]] SrArqResult run(int packet_count,
                                double packet_success_probability,
                                std::mt19937_64& rng,
                                PacketPool* pool = nullptr);

  /// Synchronous form with a time-varying channel and optional rate
  /// adapter.
  [[nodiscard]] SrArqResult run(int packet_count, const ChannelFn& channel,
                                std::mt19937_64& rng,
                                PacketPool* pool = nullptr,
                                AdaptFn adapt = nullptr);

  /// Event-driven form: schedule the transfer on `queue` starting at the
  /// current queue time; `done` fires at the completion instant. `rng`,
  /// `channel` and `pool` must outlive the transfer. Multiple sessions may
  /// interleave on one queue.
  void start(mac::EventQueue& queue, int packet_count, ChannelFn channel,
             std::mt19937_64& rng, PacketPool* pool,
             std::function<void(const SrArqResult&)> done,
             AdaptFn adapt = nullptr);

  [[nodiscard]] const SrArqConfig& config() const { return config_; }
  [[nodiscard]] const SrArqTiming& timing() const { return timing_; }

 private:
  SrArqConfig config_;
  SrArqTiming timing_;
};

}  // namespace mmtag::net
