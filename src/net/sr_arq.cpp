#include "src/net/sr_arq.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>
#include <utility>

#include "src/obs/metrics.hpp"

namespace mmtag::net {

namespace {

/// Packets dropped with their retry budget spent — distinct from
/// in-flight loss, which stays in the window and retries.
obs::Counter& arq_exhausted_sr_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("net.arq.exhausted.sr");
  return counter;
}

}  // namespace

double SrArqResult::goodput_bps(std::size_t payload_bits) const {
  if (elapsed_s <= 0.0) return 0.0;
  return static_cast<double>(packets_delivered) *
         static_cast<double>(payload_bits) / elapsed_s;
}

double SrArqResult::efficiency() const {
  if (transmissions == 0) return 0.0;
  return static_cast<double>(packets_delivered) /
         static_cast<double>(transmissions);
}

SrArqSession::SrArqSession(SrArqConfig config, SrArqTiming timing)
    : config_(config), timing_(timing) {
  assert(config_.window >= 1 && config_.window <= 64);
  assert(config_.max_attempts_per_packet > 0);
  assert(config_.ack_loss_probability >= 0.0 &&
         config_.ack_loss_probability <= 1.0);
  assert(timing_.packet_time_s >= 0.0 && timing_.ack_time_s >= 0.0 &&
         timing_.ack_timeout_s >= 0.0);
}

namespace {

/// Transfer state threaded through the event chain (same lifetime idiom
/// as arq_session.cpp: every scheduled event holds the shared_ptr).
struct SrState {
  SrArqConfig config;
  SrArqTiming timing;
  int total = 0;
  ChannelFn channel;
  AdaptFn adapt;
  std::mt19937_64* rng = nullptr;
  PacketPool* pool = nullptr;
  std::function<void(const SrArqResult&)> done;
  mac::EventQueue* queue = nullptr;
  double start_time_s = 0.0;

  SrArqResult result;
  int base = 0;  ///< Lowest sequence the sender still cares about.
  std::vector<std::uint8_t> acked;      ///< Sender: block-ACK confirmed.
  std::vector<std::uint8_t> dropped;    ///< Sender: retry budget burned.
  std::vector<std::uint8_t> received;   ///< Receiver: payload present.
  std::vector<int> attempts;
  std::vector<double> receive_time_s;   ///< Receiver-side delivery instant.
  std::vector<Packet> in_flight;        ///< Pool slot per sequence.
  int ack_loss_streak = 0;  ///< Consecutive lost block-ACKs (backoff key).
  std::uniform_real_distribution<double> coin{0.0, 1.0};

  [[nodiscard]] bool sender_closed(int seq) const {
    return acked[static_cast<std::size_t>(seq)] != 0 ||
           dropped[static_cast<std::size_t>(seq)] != 0;
  }
};

void round_step(const std::shared_ptr<SrState>& self);

void finish(const std::shared_ptr<SrState>& self) {
  SrState& s = *self;
  s.result.elapsed_s = s.queue->now() - s.start_time_s;
  // Latencies in ascending sequence order — a fixed, thread-independent
  // ordering no matter how retransmissions interleaved.
  s.result.delivery_latency_s.reserve(
      static_cast<std::size_t>(s.result.packets_delivered));
  for (int seq = 0; seq < s.total; ++seq) {
    if (s.received[static_cast<std::size_t>(seq)] != 0) {
      s.result.delivery_latency_s.push_back(
          s.receive_time_s[static_cast<std::size_t>(seq)] - s.start_time_s);
    }
  }
  if (s.done) s.done(s.result);
}

/// Advance base past sequences the sender is finished with and drop the
/// ones whose retry budget is gone.
void reap_window(SrState& s) {
  const int window_end =
      std::min(s.total, s.base + s.config.window);
  for (int seq = s.base; seq < window_end; ++seq) {
    const auto u = static_cast<std::size_t>(seq);
    if (s.acked[u] == 0 && s.dropped[u] == 0 &&
        s.config.retry.exhausted(s.attempts[u],
                                 s.config.max_attempts_per_packet)) {
      s.dropped[u] = 1;
      ++s.result.packets_dropped;
      arq_exhausted_sr_metric().add(1);
      s.in_flight[u].release();  // Slot back to the pool.
    }
  }
  while (s.base < s.total && s.sender_closed(s.base)) ++s.base;
}

/// One burst + block-ACK cycle. Draw order per round: one channel coin
/// per transmitted packet in ascending sequence order, then one ACK-loss
/// coin — fixed, so seeded runs are bit-reproducible.
void round_step(const std::shared_ptr<SrState>& self) {
  SrState& s = *self;
  reap_window(s);
  if (s.base >= s.total) {
    finish(self);
    return;
  }

  // Collect this round's burst: every open sequence in the window, capped
  // by pool availability (backpressure — never an error).
  std::vector<int> burst;
  burst.reserve(static_cast<std::size_t>(s.config.window));
  const int window_end = std::min(s.total, s.base + s.config.window);
  bool stalled = false;
  for (int seq = s.base; seq < window_end; ++seq) {
    const auto u = static_cast<std::size_t>(seq);
    if (s.sender_closed(seq)) continue;
    if (s.pool != nullptr && !s.in_flight[u].valid()) {
      Packet pkt = s.pool->alloc();
      if (!pkt.valid()) {
        stalled = true;
        break;  // Window truncated at the pool's high-water mark.
      }
      // Zero-copy header path: payload first, header prepended into the
      // reserved headroom (the payload bytes never move).
      std::uint8_t* payload = pkt.append(s.config.payload_bytes);
      std::uint8_t* header = pkt.prepend(kSrHeaderBytes);
      assert(payload != nullptr && header != nullptr);
      (void)payload;
      const auto seq32 = static_cast<std::uint32_t>(seq);
      std::memcpy(header, &seq32, sizeof(seq32));
      const auto total32 = static_cast<std::uint32_t>(s.total);
      std::memcpy(header + sizeof(seq32), &total32, sizeof(total32));
      s.in_flight[u] = std::move(pkt);
    }
    burst.push_back(seq);
  }
  if (stalled) ++s.result.pool_stalls;
  if (burst.empty()) {
    // A shared pool drained by other sessions can stall even the base
    // packet; sit out one retry timer until a slot frees. (A session-
    // private pool always admits the base packet: capacity >= 1 and every
    // slot past base was released on close.)
    ++s.result.pool_waits;
    s.queue->schedule_in(s.timing.ack_timeout_s,
                         [self] { round_step(self); });
    return;
  }

  ++s.result.rounds;
  const double round_start_s = s.queue->now();
  int k = 0;
  for (const int seq : burst) {
    const auto u = static_cast<std::size_t>(seq);
    ++s.attempts[u];
    ++s.result.transmissions;
    // The packet finishes its slot (k+1) packet-times into the burst.
    const double arrival_s =
        round_start_s + (k + 1) * s.timing.packet_time_s;
    const double p = s.channel(arrival_s);
    if (s.coin(*s.rng) < p) {
      if (s.received[u] != 0) {
        // Replay of a packet the receiver already has (lost block-ACK):
        // discarded on arrival, delivered exactly once.
        ++s.result.duplicate_receives;
      } else {
        s.received[u] = 1;
        ++s.result.packets_delivered;
        s.receive_time_s[u] = arrival_s;
      }
    }
    ++k;
  }

  const double burst_s =
      static_cast<double>(burst.size()) * s.timing.packet_time_s;
  const int round_base = s.base;
  const int round_transmitted = static_cast<int>(burst.size());
  s.queue->schedule_in(burst_s, [self, round_base, round_transmitted] {
    SrState& st = *self;
    if (st.coin(*st.rng) < st.config.ack_loss_probability) {
      // Lost block-ACK: the sender waits out its timer and replays the
      // whole outstanding window next round. No adapter feedback either —
      // the sender learned nothing about delivery this round. A backing-
      // off policy stretches the wait with the consecutive-loss streak
      // (zero for the default policy — event times unchanged).
      ++st.result.acks_lost;
      const double backoff_s = st.config.retry.delay_s(
          ++st.ack_loss_streak, static_cast<std::uint64_t>(round_base));
      st.queue->schedule_in(st.timing.ack_timeout_s + backoff_s,
                            [self] { round_step(self); });
      return;
    }
    st.ack_loss_streak = 0;
    ++st.result.acks_received;
    // Block-ACK keyed to the burst's base: cumulative semantics fall out
    // of base advancing past closed sequences; the bitmap reports every
    // received sequence in [round_base, round_base + window).
    int newly_acked = 0;
    const int ack_end = std::min(st.total, round_base + st.config.window);
    for (int seq = round_base; seq < ack_end; ++seq) {
      const auto u = static_cast<std::size_t>(seq);
      if (st.received[u] != 0 && st.acked[u] == 0) {
        st.acked[u] = 1;
        ++newly_acked;
        st.in_flight[u].release();  // Delivered: slot back to the pool.
      }
    }
    if (st.adapt) {
      SrRoundFeedback feedback;
      feedback.round_transmitted = round_transmitted;
      feedback.round_delivered = newly_acked;
      st.timing = st.adapt(feedback);
    }
    st.queue->schedule_in(st.timing.ack_time_s,
                          [self] { round_step(self); });
  });
}

}  // namespace

void SrArqSession::start(mac::EventQueue& queue, int packet_count,
                         ChannelFn channel, std::mt19937_64& rng,
                         PacketPool* pool,
                         std::function<void(const SrArqResult&)> done,
                         AdaptFn adapt) {
  assert(packet_count >= 0);
  assert(channel != nullptr);
  auto state = std::make_shared<SrState>();
  state->config = config_;
  state->timing = timing_;
  state->total = packet_count;
  state->channel = std::move(channel);
  state->adapt = std::move(adapt);
  state->rng = &rng;
  state->pool = pool;
  state->done = std::move(done);
  state->queue = &queue;
  state->start_time_s = queue.now();
  state->result.packets_offered = packet_count;
  const auto n = static_cast<std::size_t>(packet_count);
  state->acked.assign(n, 0);
  state->dropped.assign(n, 0);
  state->received.assign(n, 0);
  state->attempts.assign(n, 0);
  state->receive_time_s.assign(n, 0.0);
  state->in_flight.resize(n);
  if (packet_count == 0) {
    queue.schedule_in(0.0, [state] { finish(state); });
    return;
  }
  queue.schedule_in(0.0, [state] { round_step(state); });
}

SrArqResult SrArqSession::run(int packet_count, const ChannelFn& channel,
                              std::mt19937_64& rng, PacketPool* pool,
                              AdaptFn adapt) {
  mac::EventQueue queue;
  SrArqResult result;
  start(
      queue, packet_count, channel, rng, pool,
      [&result](const SrArqResult& r) { result = r; }, std::move(adapt));
  queue.run();
  return result;
}

SrArqResult SrArqSession::run(int packet_count,
                              double packet_success_probability,
                              std::mt19937_64& rng, PacketPool* pool) {
  assert(packet_success_probability >= 0.0 &&
         packet_success_probability <= 1.0);
  return run(
      packet_count,
      [packet_success_probability](double) {
        return packet_success_probability;
      },
      rng, pool);
}

}  // namespace mmtag::net
