#include "src/net/arq.hpp"

#include <cassert>

namespace mmtag::net {

double ArqStats::efficiency() const {
  if (transmissions == 0) return 0.0;
  return static_cast<double>(frames_delivered) /
         static_cast<double>(transmissions);
}

ArqStats run_stop_and_wait(int frame_count,
                           double frame_success_probability,
                           const ArqConfig& config, std::mt19937_64& rng) {
  assert(frame_count >= 0);
  assert(frame_success_probability >= 0.0 &&
         frame_success_probability <= 1.0);
  ArqStats stats;
  stats.frames_offered = frame_count;
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  for (int f = 0; f < frame_count; ++f) {
    bool delivered = false;
    bool exhausted = false;
    int requery_budget = config.max_requeries_per_frame;
    for (int attempt = 0;
         !config.retry.exhausted(attempt, config.max_attempts_per_frame);
         ++attempt) {
      if (attempt > 0) {
        // Each retry is preceded by a re-query; a lost one never reached
        // the tag (no replay, no transmission), so it burns the re-query
        // budget — not a frame attempt — and is retried immediately.
        bool query_through = false;
        while (requery_budget > 0) {
          if (coin(rng) < config.query_loss_probability) {
            ++stats.query_failures;
            --requery_budget;
            continue;
          }
          query_through = true;
          break;
        }
        if (!query_through) {
          exhausted = true;
          break;
        }
      }
      ++stats.transmissions;
      if (coin(rng) < frame_success_probability) {
        delivered = true;
        break;
      }
    }
    if (delivered) {
      ++stats.frames_delivered;
    } else {
      ++stats.frames_failed;
      if (exhausted) ++stats.requery_exhausted;
    }
  }
  return stats;
}

double expected_transmissions_per_frame(double frame_success_probability,
                                        const ArqConfig& config) {
  assert(frame_success_probability > 0.0);
  // Each retry round succeeds in reaching the tag with probability
  // (1 - q); the effective per-round success is p * (1 - q) after the
  // first round. Approximate with the dominant geometric term.
  const double q = config.query_loss_probability;
  const double p_eff = frame_success_probability * (1.0 - q);
  return 1.0 / p_eff;
}

double arq_goodput_factor(double frame_success_probability,
                          const ArqConfig& config) {
  if (frame_success_probability <= 0.0) return 0.0;
  return 1.0 /
         expected_transmissions_per_frame(frame_success_probability, config);
}

}  // namespace mmtag::net
