#include "src/net/traffic.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <random>
#include <utility>

#include "src/channel/geometry.hpp"
#include "src/deploy/coordinator.hpp"
#include "src/deploy/fleet.hpp"
#include "src/obs/gate.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/stats.hpp"
#include "src/reader/reader.hpp"
#include "src/sim/rng.hpp"

namespace mmtag::net {

namespace {

obs::Counter& flows_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("net.traffic.flows");
  return counter;
}
obs::Counter& delivered_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("net.traffic.packets_delivered");
  return counter;
}
obs::Counter& retx_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("net.traffic.retransmissions");
  return counter;
}
obs::Counter& stalls_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("net.traffic.pool_stalls");
  return counter;
}
obs::Counter& shed_packets_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("resil.shed.packets");
  return counter;
}
obs::Histogram& goodput_metric() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("net.traffic.flow_goodput_kbps");
  return hist;
}
obs::Histogram& latency_metric() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("net.traffic.latency_us");
  return hist;
}

/// True when `t_s` falls inside one of the (sorted, disjoint) outages.
bool in_outage(const std::vector<fault::Outage>& outages, double t_s) {
  for (const fault::Outage& o : outages) {
    if (t_s < o.start_s) break;
    if (t_s < o.end_s()) return true;
  }
  return false;
}

/// Per-flow Gilbert-Elliott blockage realized as bad-state intervals over
/// [0, horizon): alternating exponential good/bad dwells, drawn up front
/// from the flow's stream so the draw order is independent of how the
/// ARQ session interleaves.
std::vector<fault::Outage> draw_blockage_bursts(
    const fault::BlockageModel& model, double horizon_s,
    std::mt19937_64& rng) {
  std::vector<fault::Outage> bursts;
  if (!model.active()) return bursts;
  std::exponential_distribution<double> good(model.enter_rate_hz);
  std::exponential_distribution<double> bad(1.0 / model.mean_burst_s);
  double t = 0.0;
  while (t < horizon_s) {
    t += good(rng);  // Good dwell.
    if (t >= horizon_s) break;
    const double dwell = bad(rng);
    bursts.push_back({t, std::min(dwell, horizon_s - t)});
    t += dwell;
  }
  return bursts;
}

}  // namespace

std::uint64_t fingerprint(const TrafficReport& report) {
  obs::Fnv1a hasher;
  hasher.mix_u64(static_cast<std::uint64_t>(report.flows_offered));
  hasher.mix_u64(static_cast<std::uint64_t>(report.flows_admitted));
  hasher.mix_u64(static_cast<std::uint64_t>(report.flows_shed));
  hasher.mix_u64(static_cast<std::uint64_t>(report.flows_served));
  hasher.mix_double(report.discovery_coverage);
  hasher.mix_u64(static_cast<std::uint64_t>(report.packets_offered));
  hasher.mix_u64(static_cast<std::uint64_t>(report.packets_delivered));
  hasher.mix_u64(static_cast<std::uint64_t>(report.packets_dropped));
  hasher.mix_u64(static_cast<std::uint64_t>(report.transmissions));
  hasher.mix_u64(static_cast<std::uint64_t>(report.duplicate_receives));
  hasher.mix_u64(static_cast<std::uint64_t>(report.pool_stalls));
  hasher.mix_u64(static_cast<std::uint64_t>(report.rate_switches));
  hasher.mix_double(report.goodput_total_bps);
  hasher.mix_double(report.goodput_mean_bps);
  hasher.mix_double(report.jain);
  hasher.mix_double(report.latency_p50_s);
  hasher.mix_double(report.latency_p95_s);
  hasher.mix_double(report.latency_p99_s);
  hasher.mix_double(report.elapsed_max_s);
  for (const FlowResult& flow : report.per_flow) {
    hasher.mix_u64(static_cast<std::uint64_t>(flow.arq.packets_delivered));
    hasher.mix_double(flow.goodput_bps);
    hasher.mix_double(flow.arq.elapsed_s);
  }
  return hasher.digest();
}

sim::Table traffic_report_table(const TrafficReport& report) {
  sim::Table table({"flows", "served", "coverage", "delivered", "dropped",
                    "goodput_total", "goodput_mean", "jain", "p50_ms",
                    "p99_ms", "retx", "switches"});
  const long retx = report.transmissions - report.packets_delivered;
  table.add_row({std::to_string(report.flows_admitted),
                 std::to_string(report.flows_served),
                 sim::Table::fmt(report.discovery_coverage, 3),
                 std::to_string(report.packets_delivered),
                 std::to_string(report.packets_dropped),
                 sim::Table::fmt_rate(report.goodput_total_bps),
                 sim::Table::fmt_rate(report.goodput_mean_bps),
                 sim::Table::fmt(report.jain, 4),
                 sim::Table::fmt(report.latency_p50_s * 1e3, 3),
                 sim::Table::fmt(report.latency_p99_s * 1e3, 3),
                 std::to_string(retx),
                 std::to_string(report.rate_switches)});
  return table;
}

TrafficEngine::TrafficEngine(TrafficConfig config)
    : config_(std::move(config)) {
  assert(config_.flows >= 0 && config_.packets_per_flow >= 0);
  assert(config_.horizon_s > 0.0);
  assert(config_.pool_packets >= 1);
}

TrafficReport TrafficEngine::run() {
  TrafficReport report;
  report.flows_offered = config_.flows;

  // --- Admission: geometry, link budgets, discovery roster. -------------
  const deploy::FleetLayout layout = deploy::make_layout(config_.layout);
  const phy::RateTable rates = phy::RateTable::mmtag_standard();
  const std::size_t m = layout.reader_poses.size();
  const std::size_t n = layout.tags.size();

  std::vector<reader::MmWaveReader> readers;
  readers.reserve(m);
  for (const core::Pose& pose : layout.reader_poses) {
    readers.push_back(reader::MmWaveReader::prototype_at(pose));
  }
  const std::vector<int> tag_cell =
      deploy::FleetCoordinator::initial_assignment(layout.tags, readers);
  const deploy::FleetCoordinator coordinator({});
  const std::vector<deploy::CellPlan> plans =
      coordinator.plan(readers, layout.environment);

  sim::ThreadPool pool(config_.threads);

  // Link budget per tag from its serving reader, beam steered at the tag
  // (the polling idiom). Reader copies keep the fan-out side-effect free.
  const std::vector<reader::LinkReport> links = sim::parallel_sweep(
      pool, n, [&](std::size_t t) {
        reader::MmWaveReader reader =
            readers[static_cast<std::size_t>(tag_cell[t])];
        reader.steer_to_world(channel::bearing_rad(
            reader.pose().position, layout.tags[t].pose().position));
        return reader.evaluate_link(layout.tags[t], layout.environment,
                                    rates);
      });

  // Discovery pass: the fleet inventories the layout (under the same
  // fault schedule) and flows are admitted only to tags it read.
  std::vector<std::uint8_t> eligible_mask(n, 1);
  if (config_.discovery_epochs > 0) {
    deploy::FleetConfig fleet_config;
    fleet_config.layout = config_.layout;
    fleet_config.epochs = config_.discovery_epochs;
    fleet_config.epoch_duration_s = config_.epoch_duration_s;
    fleet_config.seed = sim::derive_seed(config_.seed, 0x64697363);  // disc
    fleet_config.threads = config_.threads;
    fleet_config.faults = config_.faults;
    const deploy::FleetResult discovery =
        deploy::FleetSimulator(fleet_config).run();
    report.discovery_coverage = discovery.stats.coverage();
    for (std::size_t t = 0; t < n; ++t) {
      eligible_mask[t] = discovery.service[t].read ? 1 : 0;
    }
  }
  std::vector<std::size_t> eligible;
  eligible.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    if (eligible_mask[t] != 0) eligible.push_back(t);
  }
  if (eligible.empty() || config_.flows == 0) return report;

  // --- Admission control (graceful degradation). ------------------------
  // Shed lowest-priority flows BEFORE they pin buffers or dilute airtime:
  // each flow's projected demand is the pool slots its in-flight window
  // can hold. The plan is a pure function of (flows, demand, config), so
  // it is drawn once here on the coordinating thread.
  const auto flow_count = static_cast<std::size_t>(config_.flows);
  const int effective_window =
      config_.mode == ArqMode::kStopAndWait ? 1 : config_.arq.window;
  const resil::AdmissionController admission(config_.admission);
  const resil::AdmissionPlan admitted = admission.plan_shedding(
      flow_count,
      std::min<std::size_t>(
          config_.pool_packets,
          static_cast<std::size_t>(std::max(effective_window, 1))));
  report.flows_admitted = static_cast<int>(admitted.admitted_flows);
  report.flows_shed = static_cast<int>(admitted.shed_flows);

  // --- Shared-medium model. ---------------------------------------------
  // A reader TDM-shares the band across cells (plan airtime share) and
  // round-robins its airtime across the flows it serves, so every on-air
  // duration is dilated by flows-per-reader / airtime-share. Shed flows
  // never contend: the airtime they free is the degradation dividend the
  // surviving flows collect.
  std::vector<long> flows_per_reader(m, 0);
  std::vector<std::size_t> flow_tag(flow_count);
  for (std::size_t f = 0; f < flow_count; ++f) {
    flow_tag[f] = eligible[f % eligible.size()];
    if (admitted.admitted[f] != 0) {
      ++flows_per_reader[static_cast<std::size_t>(tag_cell[flow_tag[f]])];
    }
  }

  // Reader outage timelines over the traffic window, one stream per
  // reader, realized before the fan-out (thread count can't touch them).
  const std::vector<std::vector<fault::Outage>> outages =
      fault::build_outage_timelines(
          config_.faults.outages, m, config_.horizon_s,
          sim::derive_seed(config_.seed, 0x6F757467));  // outg

  const std::uint64_t flow_base =
      sim::derive_seed(config_.seed, 0x666C6F77);  // flow

  const double chips_per_bit = config_.manchester ? 2.0 : 1.0;
  const double packet_bits =
      static_cast<double>((kSrHeaderBytes + config_.arq.payload_bytes) * 8);
  const auto packet_chips =
      static_cast<std::size_t>(packet_bits * chips_per_bit);

  SrArqConfig arq_config = config_.arq;
  if (config_.mode == ArqMode::kStopAndWait) arq_config.window = 1;

  // --- The flows. --------------------------------------------------------
  report.per_flow = sim::parallel_monte_carlo(
      pool, flow_count, flow_base,
      [&](std::mt19937_64& rng, std::size_t f) {
        FlowResult flow;
        flow.flow = static_cast<int>(f);
        flow.tag = flow_tag[f];
        flow.reader = tag_cell[flow.tag];
        const double power_dbm = links[flow.tag].received_power_dbm;
        flow.received_power_dbm = power_dbm;
        if (admitted.admitted[f] == 0) {
          // Load-shed: no buffers, no airtime. Leaving this flow's RNG
          // stream undrawn is safe — streams are derived per flow, so the
          // other flows' draws are unaffected.
          flow.shed = true;
          return flow;
        }
        const auto r = static_cast<std::size_t>(flow.reader);
        const double share = plans[r].airtime_share /
                             static_cast<double>(flows_per_reader[r]);
        assert(share > 0.0);

        AckRateController controller(&rates, config_.rate, power_dbm);
        flow.initial_rate_bps = controller.rate_bps();

        // On-air timing at a tier: OOK runs one chip per symbol at
        // bandwidth/2 symbols per second; the flow only owns `share` of
        // the wall clock, so every duration stretches by 1/share.
        const auto timing_for = [&](const phy::RateTier& tier) {
          const double symbol_rate = tier.bandwidth_hz / 2.0;
          SrArqTiming timing;
          timing.packet_time_s =
              packet_bits * chips_per_bit / symbol_rate / share;
          timing.ack_time_s =
              config_.ack_bits * chips_per_bit / symbol_rate / share;
          timing.ack_timeout_s = timing.packet_time_s + timing.ack_time_s;
          return timing;
        };

        const std::vector<fault::Outage> bursts = draw_blockage_bursts(
            config_.faults.blockage, config_.horizon_s, rng);
        const std::vector<fault::Outage>& downtime = outages[r];

        const ChannelFn channel = [&](double now_s) {
          if (in_outage(downtime, now_s)) return 0.0;
          double rx_dbm = power_dbm;
          double scale = 1.0;
          if (in_outage(bursts, now_s)) {
            rx_dbm -= config_.faults.blockage.attenuation_db;
            scale = 1.0 - config_.faults.blockage.block_probability;
          }
          return scale * packet_success_probability(
                             rates, controller.tier(), rx_dbm, packet_chips);
        };
        AdaptFn adapt;
        if (config_.adapt_rate) {
          adapt = [&](const SrRoundFeedback& feedback) {
            controller.on_ack_round(feedback.round_delivered,
                                    feedback.round_transmitted);
            return timing_for(controller.tier());
          };
        }

        PacketPool buffers(config_.pool_packets, config_.arq.payload_bytes,
                           kSrHeaderBytes);
        SrArqSession session(arq_config, timing_for(controller.tier()));
        flow.arq = session.run(config_.packets_per_flow, channel, rng,
                               &buffers, adapt);
        flow.final_rate_bps = controller.rate_bps();
        flow.rate_switches = controller.switch_count();
        flow.goodput_bps =
            flow.arq.goodput_bps(config_.arq.payload_bytes * 8);
        return flow;
      },
      &report.sweep);

  // --- Aggregation, flow order. ------------------------------------------
  std::vector<double> goodputs;
  goodputs.reserve(flow_count);
  std::vector<double> latencies;
  latencies.reserve(flow_count *
                    static_cast<std::size_t>(config_.packets_per_flow));
  for (const FlowResult& flow : report.per_flow) {
    if (flow.shed) continue;  // Never offered; excluded from fairness too.
    report.packets_offered += flow.arq.packets_offered;
    report.packets_delivered += flow.arq.packets_delivered;
    report.packets_dropped += flow.arq.packets_dropped;
    report.transmissions += flow.arq.transmissions;
    report.duplicate_receives += flow.arq.duplicate_receives;
    report.pool_stalls += flow.arq.pool_stalls;
    report.rate_switches += flow.rate_switches;
    if (flow.arq.packets_delivered > 0) ++report.flows_served;
    report.goodput_total_bps += flow.goodput_bps;
    report.elapsed_max_s = std::max(report.elapsed_max_s, flow.arq.elapsed_s);
    goodputs.push_back(flow.goodput_bps);
    latencies.insert(latencies.end(), flow.arq.delivery_latency_s.begin(),
                     flow.arq.delivery_latency_s.end());
  }
  report.goodput_mean_bps =
      report.flows_admitted > 0
          ? report.goodput_total_bps /
                static_cast<double>(report.flows_admitted)
          : 0.0;
  report.jain = obs::jain_fairness(goodputs);
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    report.latency_p50_s = obs::percentile_sorted(latencies, 50.0);
    report.latency_p95_s = obs::percentile_sorted(latencies, 95.0);
    report.latency_p99_s = obs::percentile_sorted(latencies, 99.0);
  }
  report.sweep.units = static_cast<std::uint64_t>(report.transmissions);

  if constexpr (obs::kObsEnabled) {
    flows_metric().add(static_cast<std::uint64_t>(report.flows_admitted));
    delivered_metric().add(
        static_cast<std::uint64_t>(report.packets_delivered));
    retx_metric().add(static_cast<std::uint64_t>(
        report.transmissions - report.packets_delivered));
    stalls_metric().add(static_cast<std::uint64_t>(report.pool_stalls));
    if (report.flows_shed > 0) {
      shed_packets_metric().add(
          static_cast<std::uint64_t>(report.flows_shed) *
          static_cast<std::uint64_t>(config_.packets_per_flow));
    }
    for (const FlowResult& flow : report.per_flow) {
      if (flow.shed) continue;
      goodput_metric().record(
          static_cast<std::uint64_t>(flow.goodput_bps / 1e3));
    }
    for (const double latency_s : latencies) {
      latency_metric().record(static_cast<std::uint64_t>(latency_s * 1e6));
    }
  }
  return report;
}

}  // namespace mmtag::net
