// Propagation-loss models beyond plain free space.
//
// The paper's evaluation is free space at 24 GHz, but Sec. 7 notes the
// design "can be easily tuned to higher frequency bands (such as 60 GHz)".
// At 60 GHz the oxygen absorption line adds real loss, so the range benches
// expose it. Gaseous absorption follows the flat-earth simplification of
// ITU-R P.676: a frequency-dependent specific attenuation in dB/km.
#pragma once

namespace mmtag::channel {

/// Atmospheric (oxygen + water vapour) specific attenuation at sea level
/// [dB/km]. Piecewise model: negligible below ~50 GHz, the 60 GHz O2
/// resonance peaking near 15 dB/km, decaying above 70 GHz.
[[nodiscard]] double atmospheric_attenuation_db_per_km(double frequency_hz);

/// Total propagation loss over `distance_m` at `frequency_hz` [dB]:
/// free-space path loss plus atmospheric absorption.
[[nodiscard]] double propagation_loss_db(double distance_m,
                                         double frequency_hz);

/// Reflection loss of a first-order specular bounce off a typical indoor
/// surface at mmWave [dB]. Measured values for drywall/concrete at 24-60 GHz
/// cluster around 6-10 dB; `roughness` in [0, 1] interpolates from a smooth
/// metal sheet (~1 dB) to rough masonry (~12 dB).
[[nodiscard]] double reflection_loss_db(double roughness);

/// Penetration loss through a blocking obstacle at mmWave [dB]. mmWave does
/// not usefully penetrate bodies or furniture; the default human-body value
/// (~35 dB, per measurement literature) effectively severs a link, which is
/// exactly the paper's motivation for NLOS fallback.
[[nodiscard]] double blockage_loss_db();

}  // namespace mmtag::channel
