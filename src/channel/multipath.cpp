#include "src/channel/multipath.hpp"

#include <cassert>
#include <cmath>

#include "src/channel/propagation.hpp"
#include "src/phys/units.hpp"

namespace mmtag::channel {

Complex path_coefficient(const Path& path, double frequency_hz) {
  assert(path.length_m > 0.0);
  // Loss relative to the 1 m free-space reference keeps magnitudes sane:
  // |h| = 10^(-(L(d) - L(1m)) / 20).
  const double loss_db = propagation_loss_db(path.length_m, frequency_hz) -
                         propagation_loss_db(1.0, frequency_hz) +
                         path.excess_loss_db;
  const double magnitude = phys::db_to_amplitude_ratio(-loss_db);
  const double phase =
      -phys::wavenumber_rad_per_m(frequency_hz) * path.length_m;
  return std::polar(magnitude, phase);
}

Complex combine_paths(std::span<const Path> paths, double frequency_hz) {
  Complex h(0.0, 0.0);
  for (const Path& path : paths) {
    h += path_coefficient(path, frequency_hz);
  }
  return h;
}

double backscatter_gain_db(std::span<const Path> paths,
                           double frequency_hz) {
  // Reciprocity: the return trip sees the same coefficient, so the two-way
  // field gain is h^2 and the power gain 40 log10 |h| ... relative to the
  // squared 1 m reference.
  const double magnitude = std::abs(combine_paths(paths, frequency_hz));
  constexpr double kFloorDb = -300.0;
  if (magnitude <= 1e-15) return kFloorDb;
  return 40.0 * std::log10(magnitude);
}

double fading_depth_db(const Environment& env, Vec2 reader, Vec2 tag,
                       double displacement_m, int steps,
                       double frequency_hz) {
  assert(steps >= 2);
  assert(displacement_m > 0.0);
  double peak_db = -1e18;
  double trough_db = 1e18;
  for (int i = 0; i < steps; ++i) {
    const Vec2 position{tag.x + displacement_m * i / (steps - 1), tag.y};
    const auto paths = trace_paths(env, reader, position);
    const double gain = backscatter_gain_db(paths, frequency_hz);
    if (gain > peak_db) peak_db = gain;
    if (gain < trough_db) trough_db = gain;
  }
  return peak_db - trough_db;
}

}  // namespace mmtag::channel
