#include "src/channel/doppler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/phys/units.hpp"

namespace mmtag::channel {

double backscatter_doppler_hz(double radial_velocity_m_per_s,
                              double frequency_hz) {
  return 2.0 * radial_velocity_m_per_s / phys::wavelength_m(frequency_hz);
}

double radial_velocity_m_per_s(const Mobility& path, Vec2 observer,
                               double t_s, double dt_s) {
  assert(dt_s > 0.0);
  const double before = distance(path.position(t_s - dt_s), observer);
  const double after = distance(path.position(t_s + dt_s), observer);
  // Closing = range decreasing.
  return (before - after) / (2.0 * dt_s);
}

std::vector<double> backscatter_phase_series(const Mobility& path,
                                             Vec2 observer,
                                             double frequency_hz,
                                             double duration_s,
                                             double sample_rate_hz) {
  assert(duration_s > 0.0);
  assert(sample_rate_hz > 0.0);
  const double k0 = phys::wavenumber_rad_per_m(frequency_hz);
  const std::size_t samples =
      static_cast<std::size_t>(duration_s * sample_rate_hz) + 1;
  std::vector<double> phase(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / sample_rate_hz;
    const double d = distance(path.position(t), observer);
    phase[i] = -2.0 * k0 * d;  // Two-way electrical length.
  }
  return phase;
}

double displacement_from_phase_m(const std::vector<double>& phase_rad,
                                 double frequency_hz) {
  if (phase_rad.empty()) return 0.0;
  const auto [min_it, max_it] =
      std::minmax_element(phase_rad.begin(), phase_rad.end());
  const double span_rad = *max_it - *min_it;
  const double k0 = phys::wavenumber_rad_per_m(frequency_hz);
  return span_rad / (2.0 * k0);
}

}  // namespace mmtag::channel
