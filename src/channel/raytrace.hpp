// Ray tracing between a reader and a tag: LOS plus first-order reflections.
//
// mmWave links are dominated by the LOS ray and a handful of strong
// specular reflections (sparse channel), so a first-order image method
// captures the behaviour the paper relies on: the link works over LOS when
// available and falls back to a wall bounce when a blocker cuts LOS
// (Sec. 4). Each returned path carries the geometry the antenna layer needs
// (departure/arrival bearings) and the extra loss beyond distance
// (reflection, blockage penetration).
#pragma once

#include <vector>

#include "src/channel/environment.hpp"
#include "src/channel/geometry.hpp"

namespace mmtag::channel {

enum class PathKind { kLineOfSight, kReflected };

/// One propagation path from point A (reader) to point B (tag).
struct Path {
  PathKind kind = PathKind::kLineOfSight;
  /// Total travelled length [m] (unfolded for reflections).
  double length_m = 0.0;
  /// World-frame bearing at which the path leaves A [rad].
  double departure_rad = 0.0;
  /// World-frame bearing at which the path *arrives* at B, i.e. the
  /// direction from B back toward the last scatterer/source [rad].
  double arrival_rad = 0.0;
  /// Losses beyond free space: reflection and/or penetration [dB].
  double excess_loss_db = 0.0;
  /// Index of the wall the path bounced off (kReflected only).
  int wall_index = -1;
};

/// Enumerate propagation paths from `a` to `b` in `env`:
///  * the LOS path — always returned; if an obstacle cuts it, the obstacle's
///    penetration loss is added to `excess_loss_db` (mmWave does not usefully
///    penetrate, so such a path is typically below noise — exactly the
///    behaviour the NLOS experiment checks);
///  * one path per wall with a valid specular reflection point, both legs
///    clear of obstacles, carrying the wall's reflection loss.
/// Paths are sorted by increasing excess loss, then length.
[[nodiscard]] std::vector<Path> trace_paths(const Environment& env, Vec2 a,
                                            Vec2 b);

/// The strongest usable path (first after sorting), if any path exists at
/// all (`trace_paths` always returns at least the LOS entry, so this is
/// never empty for distinct a, b).
[[nodiscard]] Path best_path(const Environment& env, Vec2 a, Vec2 b);

}  // namespace mmtag::channel
