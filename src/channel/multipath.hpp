// Coherent multipath combination: small-scale fading.
//
// The ray tracer returns the paths; whether they help or hurt depends on
// their *phases*. At 24 GHz the wavelength is 12.5 mm, so a few millimetres
// of motion swings a wall bounce between constructive and destructive —
// the ripple a real bench sees on top of Fig. 7's smooth 40 dB/decade
// curve. This module turns a path list into a complex channel coefficient
// and the resulting two-way (backscatter) gain.
#pragma once

#include <complex>
#include <span>

#include "src/channel/raytrace.hpp"

namespace mmtag::channel {

using Complex = std::complex<double>;

/// Complex amplitude contributed by `path` at carrier `frequency_hz`,
/// relative to a 1 m free-space reference: magnitude from the propagation
/// loss (excess loss included), phase from the electrical length.
[[nodiscard]] Complex path_coefficient(const Path& path,
                                       double frequency_hz);

/// Coherent sum of all `paths` (one-way complex channel gain relative to
/// the same 1 m reference).
[[nodiscard]] Complex combine_paths(std::span<const Path> paths,
                                    double frequency_hz);

/// Two-way backscatter power gain [dB] when the same path set is traversed
/// out and back (channel reciprocity): 40 log10|h| form, i.e. the coherent
/// generalization of doubling the one-way loss.
[[nodiscard]] double backscatter_gain_db(std::span<const Path> paths,
                                         double frequency_hz);

/// Peak-to-trough fading depth [dB] observed when the tag moves along +x
/// by up to `displacement_m` in `steps` increments (geometry re-traced each
/// step). A quick scalar summary of how rough the multipath ripple is.
[[nodiscard]] double fading_depth_db(const Environment& env, Vec2 reader,
                                     Vec2 tag, double displacement_m,
                                     int steps, double frequency_hz);

}  // namespace mmtag::channel
