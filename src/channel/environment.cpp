#include "src/channel/environment.hpp"

namespace mmtag::channel {

bool Environment::line_of_sight_blocked(Vec2 a, Vec2 b) const {
  for (const Obstacle& obstacle : obstacles_) {
    if (blocks(obstacle.segment, a, b)) return true;
  }
  return false;
}

Environment Environment::office_room() {
  Environment env;
  // Room corners: (0,0) to (5,4). Reader and tags live inside.
  const Vec2 c00{0.0, 0.0};
  const Vec2 c50{5.0, 0.0};
  const Vec2 c54{5.0, 4.0};
  const Vec2 c04{0.0, 4.0};
  env.add_wall(Wall{Segment{c00, c50}, /*roughness=*/0.6});  // South drywall.
  env.add_wall(Wall{Segment{c50, c54}, /*roughness=*/0.6});  // East drywall.
  env.add_wall(Wall{Segment{c04, c54}, /*roughness=*/0.2});  // North: smooth.
  env.add_wall(Wall{Segment{c00, c04}, /*roughness=*/0.6});  // West drywall.
  return env;
}

}  // namespace mmtag::channel
