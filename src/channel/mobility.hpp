// Mobility models: positions as functions of time.
//
// The paper's motivation for retrodirectivity is mobility ("when a node
// moves ... it needs to search again for the best beam direction", Sec. 1).
// These models drive the mobility benches and the NLOS example: a tag or a
// blocker follows a trajectory while the link is re-evaluated each step.
#pragma once

#include <vector>

#include "src/channel/geometry.hpp"

namespace mmtag::channel {

/// Interface: a point trajectory over time.
class Mobility {
 public:
  virtual ~Mobility() = default;

  /// Position at time `t_s` (seconds since scenario start).
  [[nodiscard]] virtual Vec2 position(double t_s) const = 0;
};

/// A fixed point.
class StaticMobility final : public Mobility {
 public:
  explicit StaticMobility(Vec2 position) : position_(position) {}

  [[nodiscard]] Vec2 position(double /*t_s*/) const override {
    return position_;
  }

 private:
  Vec2 position_;
};

/// Constant-velocity motion from a start point.
class LinearMobility final : public Mobility {
 public:
  LinearMobility(Vec2 start, Vec2 velocity_m_per_s);

  [[nodiscard]] Vec2 position(double t_s) const override;

 private:
  Vec2 start_;
  Vec2 velocity_;
};

/// Piecewise-linear motion through waypoints at a constant speed, stopping
/// at the last waypoint.
class WaypointMobility final : public Mobility {
 public:
  /// `waypoints` must contain at least one point; `speed_m_per_s` > 0.
  WaypointMobility(std::vector<Vec2> waypoints, double speed_m_per_s);

  [[nodiscard]] Vec2 position(double t_s) const override;

  /// Time to reach the final waypoint [s].
  [[nodiscard]] double total_duration_s() const;

 private:
  std::vector<Vec2> waypoints_;
  double speed_;
  std::vector<double> arrival_times_;  ///< Cumulative time at each waypoint.
};

/// Circular orbit around a centre — handy for sweeping incidence angles
/// at constant range in the retrodirectivity benches.
class OrbitMobility final : public Mobility {
 public:
  OrbitMobility(Vec2 center, double radius_m, double angular_rate_rad_per_s,
                double start_angle_rad = 0.0);

  [[nodiscard]] Vec2 position(double t_s) const override;

 private:
  Vec2 center_;
  double radius_;
  double rate_;
  double start_angle_;
};

}  // namespace mmtag::channel
