// The simulated room: reflective walls and blocking obstacles.
//
// Walls produce the NLOS paths of paper Sec. 4 ("when the line-of-sight
// path is blocked, the tag and the reader choose an NLOS path"); obstacles
// (people, furniture) sever LOS. Both are line segments in the azimuth
// plane.
#pragma once

#include <vector>

#include "src/channel/geometry.hpp"

namespace mmtag::channel {

/// A reflective wall: a segment plus a surface roughness in [0, 1]
/// controlling its specular reflection loss (see propagation.hpp).
struct Wall {
  Segment segment;
  double roughness = 0.5;
};

/// An opaque (at mmWave) blocker, e.g. a human body.
struct Obstacle {
  Segment segment;
};

class Environment {
 public:
  Environment() = default;

  void add_wall(Wall wall) { walls_.push_back(wall); }
  void add_obstacle(Obstacle obstacle) { obstacles_.push_back(obstacle); }

  [[nodiscard]] const std::vector<Wall>& walls() const { return walls_; }
  [[nodiscard]] const std::vector<Obstacle>& obstacles() const {
    return obstacles_;
  }

  /// True if the straight segment from `a` to `b` is blocked by any
  /// obstacle (walls do not block — they are modelled as reflectors only,
  /// standing in for surfaces outside the direct path).
  [[nodiscard]] bool line_of_sight_blocked(Vec2 a, Vec2 b) const;

  /// A typical office: 4 m x 5 m room with drywall on three sides and one
  /// smoother (whiteboard-like) wall that makes a good NLOS reflector.
  [[nodiscard]] static Environment office_room();

 private:
  std::vector<Wall> walls_;
  std::vector<Obstacle> obstacles_;
};

}  // namespace mmtag::channel
