#include "src/channel/propagation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/phys/pathloss.hpp"

namespace mmtag::channel {

double atmospheric_attenuation_db_per_km(double frequency_hz) {
  assert(frequency_hz > 0.0);
  const double f_ghz = frequency_hz / 1e9;
  // Background (water vapour continuum), small and slowly rising.
  const double background = 0.05 + 0.002 * f_ghz;
  // 60 GHz oxygen complex: Lorentzian bump, ~15 dB/km peak, ~4 GHz width.
  const double o2_peak = 15.0;
  const double o2_center = 60.0;
  const double o2_width = 4.0;
  const double delta = (f_ghz - o2_center) / o2_width;
  const double oxygen = o2_peak / (1.0 + delta * delta);
  return background + oxygen;
}

double propagation_loss_db(double distance_m, double frequency_hz) {
  const double fspl = phys::free_space_path_loss_db(distance_m, frequency_hz);
  const double gas =
      atmospheric_attenuation_db_per_km(frequency_hz) * distance_m / 1000.0;
  return fspl + gas;
}

double reflection_loss_db(double roughness) {
  const double clamped = std::clamp(roughness, 0.0, 1.0);
  return 1.0 + clamped * 11.0;
}

double blockage_loss_db() { return 35.0; }

}  // namespace mmtag::channel
