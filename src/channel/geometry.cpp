#include "src/channel/geometry.hpp"

#include <cassert>
#include <cmath>

namespace mmtag::channel {

double Vec2::norm() const { return std::hypot(x, y); }

Vec2 Vec2::normalized() const {
  const double n = norm();
  assert(n > 0.0 && "cannot normalize the zero vector");
  return {x / n, y / n};
}

double distance(Vec2 a, Vec2 b) { return (b - a).norm(); }

double bearing_rad(Vec2 from, Vec2 to) {
  const Vec2 d = to - from;
  assert((d.x != 0.0 || d.y != 0.0) && "bearing between identical points");
  return std::atan2(d.y, d.x);
}

Vec2 Segment::normal() const {
  const Vec2 d = direction();
  return {-d.y, d.x};
}

std::optional<Vec2> intersect(const Segment& p, const Segment& q) {
  const Vec2 r = p.b - p.a;
  const Vec2 s = q.b - q.a;
  const double denom = r.cross(s);
  if (std::abs(denom) < 1e-12) return std::nullopt;  // Parallel/collinear.
  const Vec2 qp = q.a - p.a;
  const double t = qp.cross(s) / denom;
  const double u = qp.cross(r) / denom;
  if (t < 0.0 || t > 1.0 || u < 0.0 || u > 1.0) return std::nullopt;
  return p.a + r * t;
}

bool blocks(const Segment& blocker, Vec2 a, Vec2 b) {
  const auto hit = intersect(blocker, Segment{a, b});
  if (!hit) return false;
  // Ignore grazing hits at the path endpoints.
  constexpr double kEndpointTolerance = 1e-9;
  if (distance(*hit, a) < kEndpointTolerance) return false;
  if (distance(*hit, b) < kEndpointTolerance) return false;
  return true;
}

Vec2 mirror_across(const Segment& s, Vec2 p) {
  const Vec2 d = s.direction();
  const Vec2 ap = p - s.a;
  const double along = ap.dot(d);
  const Vec2 foot = s.a + d * along;
  return foot + (foot - p);
}

}  // namespace mmtag::channel
