// Backscatter Doppler: what motion does to the reflected carrier.
//
// A backscatter reflection picks up TWICE the one-way Doppler shift
// (the wave is shifted on the way in and again on the way out):
// f_d = 2 v_radial / lambda. At 24 GHz that is 160 Hz per m/s — large
// enough that the reader's carrier recovery must track walking-speed tags,
// and sensitive enough that sub-millimetre vibrations show up as phase
// modulation. The latter is the sensing opportunity behind the RFID
// sensing systems the paper cites (Sec. 3).
#pragma once

#include <vector>

#include "src/channel/mobility.hpp"

namespace mmtag::channel {

/// Two-way (backscatter) Doppler shift of a reflector with radial velocity
/// `radial_velocity_m_per_s` toward the reader [Hz]. Positive = closing.
[[nodiscard]] double backscatter_doppler_hz(double radial_velocity_m_per_s,
                                            double frequency_hz);

/// Radial velocity of `path` toward `observer` at time `t_s` (central
/// difference over `dt_s`). Positive = closing.
[[nodiscard]] double radial_velocity_m_per_s(const Mobility& path,
                                             Vec2 observer, double t_s,
                                             double dt_s = 1e-3);

/// Two-way carrier phase of a reflection from the moving point at each
/// sample time: phi(t) = -2 k0 d(t) [rad], the signal a vibration sensor
/// reads.
[[nodiscard]] std::vector<double> backscatter_phase_series(
    const Mobility& path, Vec2 observer, double frequency_hz,
    double duration_s, double sample_rate_hz);

/// Peak-to-peak displacement [m] recovered from a backscatter phase series
/// (inverse of the phase relation; assumes the series stays within one
/// wavelength, i.e. no unwrap needed beyond the principal branch).
[[nodiscard]] double displacement_from_phase_m(
    const std::vector<double>& phase_rad, double frequency_hz);

}  // namespace mmtag::channel
