#include "src/channel/mobility.hpp"

#include <cassert>
#include <cmath>

namespace mmtag::channel {

LinearMobility::LinearMobility(Vec2 start, Vec2 velocity_m_per_s)
    : start_(start), velocity_(velocity_m_per_s) {}

Vec2 LinearMobility::position(double t_s) const {
  return start_ + velocity_ * t_s;
}

WaypointMobility::WaypointMobility(std::vector<Vec2> waypoints,
                                   double speed_m_per_s)
    : waypoints_(std::move(waypoints)), speed_(speed_m_per_s) {
  assert(!waypoints_.empty());
  assert(speed_ > 0.0);
  arrival_times_.reserve(waypoints_.size());
  double t = 0.0;
  arrival_times_.push_back(0.0);
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    t += distance(waypoints_[i - 1], waypoints_[i]) / speed_;
    arrival_times_.push_back(t);
  }
}

Vec2 WaypointMobility::position(double t_s) const {
  if (t_s <= 0.0) return waypoints_.front();
  if (t_s >= arrival_times_.back()) return waypoints_.back();
  // Find the leg containing t_s.
  std::size_t leg = 1;
  while (arrival_times_[leg] < t_s) ++leg;
  const double t0 = arrival_times_[leg - 1];
  const double t1 = arrival_times_[leg];
  const double frac = (t_s - t0) / (t1 - t0);
  const Vec2 a = waypoints_[leg - 1];
  const Vec2 b = waypoints_[leg];
  return a + (b - a) * frac;
}

double WaypointMobility::total_duration_s() const {
  return arrival_times_.back();
}

OrbitMobility::OrbitMobility(Vec2 center, double radius_m,
                             double angular_rate_rad_per_s,
                             double start_angle_rad)
    : center_(center),
      radius_(radius_m),
      rate_(angular_rate_rad_per_s),
      start_angle_(start_angle_rad) {
  assert(radius_ > 0.0);
}

Vec2 OrbitMobility::position(double t_s) const {
  const double angle = start_angle_ + rate_ * t_s;
  return center_ + Vec2{std::cos(angle), std::sin(angle)} * radius_;
}

}  // namespace mmtag::channel
