// Planar geometry for the azimuth-plane channel model.
//
// The simulation world is the 2-D azimuth plane (see src/antenna/pattern.hpp
// for why). Points are meters in a fixed world frame; angles are radians,
// measured counter-clockwise from the +x axis.
#pragma once

#include <optional>

namespace mmtag::channel {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  [[nodiscard]] Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  [[nodiscard]] Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  [[nodiscard]] Vec2 operator*(double s) const { return {x * s, y * s}; }

  [[nodiscard]] double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// 2-D cross product (z-component of the 3-D cross product).
  [[nodiscard]] double cross(Vec2 o) const { return x * o.y - y * o.x; }
  [[nodiscard]] double norm() const;
  [[nodiscard]] Vec2 normalized() const;
};

/// Euclidean distance between two points [m].
[[nodiscard]] double distance(Vec2 a, Vec2 b);

/// World-frame bearing of the direction from `from` to `to` [rad].
[[nodiscard]] double bearing_rad(Vec2 from, Vec2 to);

/// A finite line segment (wall, obstacle edge).
struct Segment {
  Vec2 a;
  Vec2 b;

  [[nodiscard]] double length() const { return distance(a, b); }
  /// Unit vector along the segment.
  [[nodiscard]] Vec2 direction() const { return (b - a).normalized(); }
  /// Unit normal (left of a->b).
  [[nodiscard]] Vec2 normal() const;
};

/// Intersection point of segments `p` and `q`, if they properly intersect
/// (shared endpoints count as intersections).
[[nodiscard]] std::optional<Vec2> intersect(const Segment& p,
                                            const Segment& q);

/// True if the open segment from `a` to `b` crosses `blocker`.
/// Touching an endpoint of the path does not count (a wall at the reader's
/// own position must not block the reader).
[[nodiscard]] bool blocks(const Segment& blocker, Vec2 a, Vec2 b);

/// Mirror image of point `p` across the infinite line through `s`.
[[nodiscard]] Vec2 mirror_across(const Segment& s, Vec2 p);

}  // namespace mmtag::channel
