#include "src/channel/raytrace.hpp"

#include <algorithm>
#include <cassert>

#include "src/channel/propagation.hpp"

namespace mmtag::channel {

namespace {

Path make_los_path(const Environment& env, Vec2 a, Vec2 b) {
  Path path;
  path.kind = PathKind::kLineOfSight;
  path.length_m = distance(a, b);
  path.departure_rad = bearing_rad(a, b);
  path.arrival_rad = bearing_rad(b, a);
  if (env.line_of_sight_blocked(a, b)) {
    path.excess_loss_db = blockage_loss_db();
  }
  return path;
}

}  // namespace

std::vector<Path> trace_paths(const Environment& env, Vec2 a, Vec2 b) {
  assert(distance(a, b) > 0.0 && "reader and tag must be distinct points");
  std::vector<Path> paths;
  paths.push_back(make_los_path(env, a, b));

  const auto& walls = env.walls();
  for (std::size_t w = 0; w < walls.size(); ++w) {
    const Wall& wall = walls[w];
    // Image method: reflect B across the wall plane; the specular bounce
    // point is where the straight line A -> B' crosses the wall segment.
    const Vec2 image = mirror_across(wall.segment, b);
    const auto bounce = intersect(wall.segment, Segment{a, image});
    if (!bounce) continue;
    // Degenerate bounce at A or B means the endpoint lies on the wall.
    if (distance(*bounce, a) < 1e-9 || distance(*bounce, b) < 1e-9) continue;
    // Both legs must be clear of obstacles for a usable NLOS path.
    if (env.line_of_sight_blocked(a, *bounce)) continue;
    if (env.line_of_sight_blocked(*bounce, b)) continue;

    Path path;
    path.kind = PathKind::kReflected;
    path.length_m = distance(a, *bounce) + distance(*bounce, b);
    path.departure_rad = bearing_rad(a, *bounce);
    path.arrival_rad = bearing_rad(b, *bounce);
    path.excess_loss_db = reflection_loss_db(wall.roughness);
    path.wall_index = static_cast<int>(w);
    paths.push_back(path);
  }

  std::sort(paths.begin(), paths.end(), [](const Path& x, const Path& y) {
    if (x.excess_loss_db != y.excess_loss_db) {
      return x.excess_loss_db < y.excess_loss_db;
    }
    return x.length_m < y.length_m;
  });
  return paths;
}

Path best_path(const Environment& env, Vec2 a, Vec2 b) {
  const std::vector<Path> paths = trace_paths(env, a, b);
  assert(!paths.empty());
  return paths.front();
}

}  // namespace mmtag::channel
