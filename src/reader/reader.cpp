#include "src/reader/reader.hpp"

#include <algorithm>
#include <cassert>

#include "src/channel/propagation.hpp"
#include "src/phys/units.hpp"

namespace mmtag::reader {

MmWaveReader::MmWaveReader(core::Pose pose, Params params)
    : pose_(pose), params_(params), beam_world_rad_(pose.orientation_rad) {}

MmWaveReader MmWaveReader::prototype_at(core::Pose pose) {
  return MmWaveReader(pose, Params{});
}

void MmWaveReader::steer_to_world(double world_rad) {
  beam_world_rad_ = world_rad;
}

double MmWaveReader::gain_dbi(double world_rad) const {
  return params_.horn.gain_dbi(world_rad - beam_world_rad_);
}

LinkReport MmWaveReader::evaluate_path(const core::MmTag& tag,
                                       const channel::Path& path,
                                       const phy::RateTable& rates) const {
  LinkReport report;
  report.path = path;

  // Two-way budget over this path: the retrodirective tag sends the energy
  // back along the same route, so every term appears twice except the
  // reader gains (TX on the way out, RX on the way back — identical horns)
  // and the tag's monostatic reflection gain.
  const double one_way_loss_db =
      channel::propagation_loss_db(path.length_m, params_.frequency_hz) +
      path.excess_loss_db;
  const double reader_tx = gain_dbi(path.departure_rad);
  const double reader_rx = gain_dbi(path.departure_rad);

  // Evaluate the tag in its reflective (bit '0') state for signal power and
  // in the absorptive state for modulation depth, without mutating the
  // caller's tag.
  core::MmTag probe = tag;
  probe.set_data_bit(false);
  const double tag_reflect_db = probe.monostatic_gain_db(path.arrival_rad);
  probe.set_data_bit(true);
  const double tag_absorb_db = probe.monostatic_gain_db(path.arrival_rad);

  report.received_power_dbm = params_.tx_power_dbm + reader_tx + reader_rx +
                              tag_reflect_db - 2.0 * one_way_loss_db -
                              params_.implementation_loss_db;
  report.modulation_depth_db = tag_reflect_db - tag_absorb_db;
  report.achievable_rate_bps =
      rates.achievable_rate_bps(report.received_power_dbm);
  return report;
}

LinkReport MmWaveReader::evaluate_link(const core::MmTag& tag,
                                       const channel::Environment& env,
                                       const phy::RateTable& rates) const {
  const std::vector<LinkReport> reports =
      evaluate_all_paths(tag, env, rates);
  assert(!reports.empty());
  return reports.front();
}

std::vector<LinkReport> MmWaveReader::evaluate_all_paths(
    const core::MmTag& tag, const channel::Environment& env,
    const phy::RateTable& rates) const {
  const std::vector<channel::Path> paths =
      channel::trace_paths(env, pose_.position, tag.pose().position);
  std::vector<LinkReport> reports;
  reports.reserve(paths.size());
  for (const channel::Path& path : paths) {
    reports.push_back(evaluate_path(tag, path, rates));
  }
  std::sort(reports.begin(), reports.end(),
            [](const LinkReport& a, const LinkReport& b) {
              return a.received_power_dbm > b.received_power_dbm;
            });
  return reports;
}

}  // namespace mmtag::reader
