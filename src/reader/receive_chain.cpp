#include "src/reader/receive_chain.hpp"

#include <cassert>

#include "src/obs/gate.hpp"
#include "src/obs/metrics.hpp"

namespace mmtag::reader {

namespace {

obs::Counter& rx_attempts_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("reader.rx.attempts");
  return counter;
}
obs::Counter& rx_preamble_ok_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("reader.rx.preamble_ok");
  return counter;
}
obs::Counter& rx_crc_ok_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("reader.rx.crc_ok");
  return counter;
}
obs::Counter& rx_bits_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("reader.rx.demodulated_bits");
  return counter;
}

}  // namespace

ReceiveChain::ReceiveChain(Params params) : params_(params) {
  assert(params_.samples_per_symbol >= 1);
}

ReceiveResult ReceiveChain::receive(
    std::span<const phy::Complex> samples) const {
  ReceiveResult result;
  const phy::OokDemodulator demod(params_.samples_per_symbol);
  phy::BitVector bits = demod.demodulate(samples);
  result.demodulated_bits = bits.size();

  if (params_.manchester) {
    bits = phy::manchester_decode_lenient(bits, result.invalid_line_pairs);
  }

  // Check the preamble explicitly so the caller can distinguish "never
  // found the frame" from "found it but corrupted".
  const phy::BitVector preamble = phy::TagFrame::preamble();
  result.preamble_ok = bits.size() >= preamble.size();
  if (result.preamble_ok) {
    for (std::size_t i = 0; i < preamble.size(); ++i) {
      if (bits[i] != preamble[i]) {
        result.preamble_ok = false;
        break;
      }
    }
  }

  result.frame = phy::TagFrame::parse(bits);
  result.crc_ok = result.frame.has_value();
  if constexpr (obs::kObsEnabled) {
    rx_attempts_metric().add(1);
    rx_bits_metric().add(result.demodulated_bits);
    if (result.preamble_ok) rx_preamble_ok_metric().add(1);
    if (result.crc_ok) rx_crc_ok_metric().add(1);
  }
  return result;
}

ReceiveResult ReceiveChain::receive_impaired(
    std::span<const phy::Complex> samples, const impair::ImpairmentChain& chain,
    std::uint64_t seed) const {
  if (!chain.enabled()) {
    return receive(samples);
  }
  phy::Waveform impaired(samples.begin(), samples.end());
  chain.apply_rx(impaired, seed);
  return receive(impaired);
}

std::vector<ReceiveResult> ReceiveChain::receive_stream(
    std::span<const phy::Complex> stream) const {
  phy::SyncConfig sync_config;
  sync_config.samples_per_symbol = params_.samples_per_symbol;
  sync_config.manchester = params_.manchester;
  const phy::FrameSynchronizer sync(sync_config);

  std::vector<ReceiveResult> results;
  for (const phy::SyncHit& hit : sync.find_all_frames(stream)) {
    // Decode from the preamble start to the end of the stream; the frame
    // parser stops at its own length field, so trailing samples (the next
    // frame, noise) are harmless.
    results.push_back(receive(stream.subspan(hit.offset_samples)));
  }
  return results;
}

phy::Waveform ReceiveChain::encode(const phy::TagFrame& frame,
                                   double modulation_depth_db) const {
  phy::BitVector bits = frame.serialize();
  if (params_.manchester) bits = phy::manchester_encode(bits);
  const phy::OokModulator mod(params_.samples_per_symbol,
                              modulation_depth_db);
  return mod.modulate(bits);
}

}  // namespace mmtag::reader
