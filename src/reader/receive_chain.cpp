#include "src/reader/receive_chain.hpp"

#include <cassert>

namespace mmtag::reader {

ReceiveChain::ReceiveChain(Params params) : params_(params) {
  assert(params_.samples_per_symbol >= 1);
}

ReceiveResult ReceiveChain::receive(
    std::span<const phy::Complex> samples) const {
  ReceiveResult result;
  const phy::OokDemodulator demod(params_.samples_per_symbol);
  phy::BitVector bits = demod.demodulate(samples);
  result.demodulated_bits = bits.size();

  if (params_.manchester) {
    bits = phy::manchester_decode_lenient(bits, result.invalid_line_pairs);
  }

  // Check the preamble explicitly so the caller can distinguish "never
  // found the frame" from "found it but corrupted".
  const phy::BitVector preamble = phy::TagFrame::preamble();
  result.preamble_ok = bits.size() >= preamble.size();
  if (result.preamble_ok) {
    for (std::size_t i = 0; i < preamble.size(); ++i) {
      if (bits[i] != preamble[i]) {
        result.preamble_ok = false;
        break;
      }
    }
  }

  result.frame = phy::TagFrame::parse(bits);
  result.crc_ok = result.frame.has_value();
  return result;
}

std::vector<ReceiveResult> ReceiveChain::receive_stream(
    std::span<const phy::Complex> stream) const {
  phy::SyncConfig sync_config;
  sync_config.samples_per_symbol = params_.samples_per_symbol;
  sync_config.manchester = params_.manchester;
  const phy::FrameSynchronizer sync(sync_config);

  std::vector<ReceiveResult> results;
  for (const phy::SyncHit& hit : sync.find_all_frames(stream)) {
    // Decode from the preamble start to the end of the stream; the frame
    // parser stops at its own length field, so trailing samples (the next
    // frame, noise) are harmless.
    results.push_back(receive(stream.subspan(hit.offset_samples)));
  }
  return results;
}

phy::Waveform ReceiveChain::encode(const phy::TagFrame& frame,
                                   double modulation_depth_db) const {
  phy::BitVector bits = frame.serialize();
  if (params_.manchester) bits = phy::manchester_encode(bits);
  const phy::OokModulator mod(params_.samples_per_symbol,
                              modulation_depth_db);
  return mod.modulate(bits);
}

}  // namespace mmtag::reader
