// Tag localization from scan results.
//
// The RFID literature the paper cites (Sec. 3: touch interfaces, shopping
// analytics) leans on localizing tags; a beam-scanning mmWave reader gets
// localization almost for free: the winning beam gives the bearing, and
// inverting the two-way link budget on the measured power gives the range.
// The narrow mmTag beams (~17-18 degrees combined) make the angular fix far
// tighter than UHF RFID's.
#pragma once

#include <optional>

#include "src/channel/geometry.hpp"
#include "src/phys/link_budget.hpp"
#include "src/reader/scanner.hpp"

namespace mmtag::reader {

struct PositionEstimate {
  channel::Vec2 position;     ///< World-frame estimate.
  double bearing_rad = 0.0;   ///< Estimated bearing from the reader.
  double range_m = 0.0;       ///< Estimated range from the reader.
  /// Half-width of the angular uncertainty (the beam half-width) [rad].
  double bearing_sigma_rad = 0.0;
  /// Multiplicative range uncertainty from +/-`power_sigma_db` of power
  /// noise through the 40 dB/decade slope.
  double range_sigma_m = 0.0;
};

class TagLocator {
 public:
  /// `budget` — the two-way link budget whose inversion maps power to
  /// range; `power_sigma_db` — 1-sigma measurement noise on the power.
  TagLocator(phys::BackscatterLinkBudget budget, double power_sigma_db = 1.0);

  /// The prototype reader's locator.
  [[nodiscard]] static TagLocator mmtag_default();

  /// Estimate a tag position from a finished scan at `reader_pose`.
  /// Returns nullopt when the scan found no tag. Uses the winning probe's
  /// beam bearing and its reflect-state measured power.
  [[nodiscard]] std::optional<PositionEstimate> locate(
      const ScanResult& scan, const core::Pose& reader_pose) const;

  /// Range [m] whose predicted received power equals `power_dbm`.
  [[nodiscard]] double range_from_power_m(double power_dbm) const;

 private:
  phys::BackscatterLinkBudget budget_;
  double power_sigma_db_;
};

}  // namespace mmtag::reader
