#include "src/reader/interference.hpp"

#include <cassert>

#include "src/channel/propagation.hpp"
#include "src/channel/raytrace.hpp"
#include "src/phys/units.hpp"

namespace mmtag::reader {

double cross_reader_interference_dbm(const MmWaveReader& aggressor,
                                     const MmWaveReader& victim,
                                     const channel::Environment& env) {
  // Sum over every propagation path: which one dominates depends on the
  // two steerings, not just on geometric loss (a wall bounce hit by both
  // main lobes beats a LOS crossing through both sidelobe floors).
  const auto paths = channel::trace_paths(
      env, aggressor.pose().position, victim.pose().position);
  double total_w = 0.0;
  for (const channel::Path& path : paths) {
    const double tx_gain = aggressor.gain_dbi(path.departure_rad);
    // The arrival bearing is the direction from the victim back toward
    // the incoming wave; the victim's horn gain applies there.
    const double rx_gain = victim.gain_dbi(path.arrival_rad);
    const double loss = channel::propagation_loss_db(
                            path.length_m, victim.params().frequency_hz) +
                        path.excess_loss_db;
    total_w += phys::dbm_to_watts(aggressor.params().tx_power_dbm + tx_gain +
                                  rx_gain - loss);
  }
  return phys::watts_to_dbm(total_w);
}

double total_interference_dbm(const std::vector<MmWaveReader>& readers,
                              std::size_t victim_index,
                              const channel::Environment& env) {
  assert(victim_index < readers.size());
  double total_w = 0.0;
  for (std::size_t i = 0; i < readers.size(); ++i) {
    if (i == victim_index) continue;
    total_w += phys::dbm_to_watts(cross_reader_interference_dbm(
        readers[i], readers[victim_index], env));
  }
  if (total_w <= 0.0) return -300.0;
  return phys::watts_to_dbm(total_w);
}

double sinr_limited_rate_bps(double tag_power_dbm, double interference_dbm,
                             const phy::RateTable& rates) {
  const double interference_w = phys::dbm_to_watts(interference_dbm);
  const double tag_w = phys::dbm_to_watts(tag_power_dbm);
  for (const phy::RateTier& tier : rates.tiers()) {
    const double noise_w = rates.noise().power_w(tier.bandwidth_hz);
    const double sinr_db =
        phys::ratio_to_db(tag_w / (noise_w + interference_w));
    if (sinr_db >= rates.required_snr_db()) return tier.bit_rate_bps;
  }
  return 0.0;
}

}  // namespace mmtag::reader
