// Reader self-interference (paper Sec. 9, "Self Interference").
//
// A backscatter reader transmits while it receives; its own carrier leaks
// into the receive chain and can bury the tag's reflection. The leakage
// path has three knobs:
//
//   * antenna isolation — separate TX/RX horns plus mmWave directionality
//     (the paper's suggested research direction);
//   * analog cancellation — an adjustable tap that subtracts a replica;
//   * the residual after both, which adds to the thermal floor.
//
// The model computes the resulting SINR and the rate the paper's rate table
// would still support — quantifying exactly when full-duplex tricks become
// necessary.
#pragma once

#include "src/phy/rate_table.hpp"

namespace mmtag::reader {

class SelfInterferenceModel {
 public:
  struct Params {
    double antenna_isolation_db = 40.0;     ///< TX horn -> RX horn coupling.
    double analog_cancellation_db = 0.0;    ///< Extra cancellation stage.
    /// Phase-noise-limited floor: cancellation cannot push the residual
    /// below carrier - this many dB (typical mmWave synthesizer limit).
    double cancellation_limit_db = 90.0;
  };

  explicit SelfInterferenceModel(Params params);

  /// Residual self-interference power at the demodulator input for a reader
  /// transmitting `tx_power_dbm` [dBm].
  [[nodiscard]] double residual_dbm(double tx_power_dbm) const;

  /// Signal-to-(interference+noise) ratio for a tag signal of
  /// `tag_power_dbm` in bandwidth `bandwidth_hz` [dB].
  [[nodiscard]] double sinr_db(double tag_power_dbm, double tx_power_dbm,
                               double bandwidth_hz,
                               const phys::NoiseModel& noise) const;

  /// Best achievable rate under self-interference: like
  /// RateTable::achievable_rate_bps but with the residual SI folded into
  /// the per-tier floor.
  [[nodiscard]] double achievable_rate_bps(double tag_power_dbm,
                                           double tx_power_dbm,
                                           const phy::RateTable& rates) const;

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace mmtag::reader
