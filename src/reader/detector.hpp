// Power detector: the "spectrum analyzer" half of the prototype reader.
//
// A spectrum analyzer reports the power in its resolution bandwidth, which
// is the tag signal plus the thermal floor, with an estimation jitter that
// shrinks with averaging. The detector also implements the tag-present
// decision the beam scanner uses: a tag is detected when the *modulated*
// power (difference between reflect and absorb states) clears the floor by
// a margin.
#pragma once

#include <random>

#include "src/phys/noise.hpp"

namespace mmtag::reader {

class PowerDetector {
 public:
  struct Params {
    double bandwidth_hz = 20.0e6;     ///< Resolution bandwidth.
    int averages = 16;                ///< Trace averaging count.
    double detection_margin_db = 3.0; ///< Tag-present threshold over floor.
  };

  PowerDetector(phys::NoiseModel noise, Params params);

  /// The prototype detector: mmTag reader noise model, 20 MHz RBW.
  [[nodiscard]] static PowerDetector mmtag_default();

  /// Noise floor of the current bandwidth [dBm].
  [[nodiscard]] double noise_floor_dbm() const;

  /// One power measurement of a true signal `true_power_dbm`: adds the
  /// thermal floor and chi-squared estimation jitter (scaled by 1/sqrt(K)
  /// for K averages) [dBm].
  [[nodiscard]] double measure_dbm(double true_power_dbm,
                                   std::mt19937_64& rng) const;

  /// Tag-present decision from measured reflect/absorb powers: true when
  /// the modulation excursion exceeds the floor by the detection margin.
  [[nodiscard]] bool detects_modulation(double reflect_dbm,
                                        double absorb_dbm) const;

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const phys::NoiseModel& noise() const { return noise_; }

 private:
  phys::NoiseModel noise_;
  Params params_;
};

}  // namespace mmtag::reader
