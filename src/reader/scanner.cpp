#include "src/reader/scanner.hpp"

#include <cassert>
#include <cmath>

#include "src/phys/units.hpp"

namespace mmtag::reader {

BeamScanner::BeamScanner(MmWaveReader reader, PowerDetector detector)
    : reader_(std::move(reader)), detector_(std::move(detector)) {}

BeamProbe BeamScanner::probe_beam(const antenna::Beam& beam,
                                  const core::MmTag& tag,
                                  const channel::Environment& env,
                                  const phy::RateTable& rates,
                                  std::mt19937_64& rng) {
  reader_.steer_to_world(beam.boresight_rad);
  const LinkReport link = reader_.evaluate_link(tag, env, rates);

  BeamProbe probe;
  probe.beam = beam;
  const double true_reflect_dbm = link.received_power_dbm;
  const double true_absorb_dbm =
      link.received_power_dbm - link.modulation_depth_db;
  probe.reflect_power_dbm = detector_.measure_dbm(true_reflect_dbm, rng);
  probe.absorb_power_dbm = detector_.measure_dbm(true_absorb_dbm, rng);
  probe.tag_detected = detector_.detects_modulation(probe.reflect_power_dbm,
                                                    probe.absorb_power_dbm);
  probe.achievable_rate_bps =
      probe.tag_detected ? rates.achievable_rate_bps(probe.reflect_power_dbm)
                         : 0.0;
  return probe;
}

ScanResult BeamScanner::scan(const std::vector<antenna::Beam>& codebook,
                             const core::MmTag& tag,
                             const channel::Environment& env,
                             const phy::RateTable& rates,
                             std::mt19937_64& rng) {
  ScanResult result;
  result.probes.reserve(codebook.size());
  double best_excursion_w = 0.0;
  for (const antenna::Beam& beam : codebook) {
    BeamProbe probe = probe_beam(beam, tag, env, rates, rng);
    ++result.probes_used;
    if (probe.tag_detected) {
      const double excursion_w =
          phys::dbm_to_watts(probe.reflect_power_dbm) -
          phys::dbm_to_watts(probe.absorb_power_dbm);
      if (excursion_w > best_excursion_w) {
        best_excursion_w = excursion_w;
        result.best_beam_index = static_cast<int>(result.probes.size());
      }
    }
    result.probes.push_back(std::move(probe));
  }
  return result;
}

ScanResult BeamScanner::hierarchical_scan(
    const std::vector<std::vector<antenna::Beam>>& stages,
    const core::MmTag& tag, const channel::Environment& env,
    const phy::RateTable& rates, std::mt19937_64& rng) {
  assert(!stages.empty());
  ScanResult result;
  // Stage 0: probe everything; later stages: only the previous winner's
  // angular children.
  antenna::Beam winner{};
  bool have_winner = false;
  for (std::size_t stage = 0; stage < stages.size(); ++stage) {
    double best_excursion_w = 0.0;
    int stage_best = -1;
    std::vector<BeamProbe> stage_probes;
    for (const antenna::Beam& beam : stages[stage]) {
      if (have_winner) {
        const double offset =
            std::abs(beam.boresight_rad - winner.boresight_rad);
        const double half_parent = phys::deg_to_rad(winner.width_deg) / 2.0;
        if (offset > half_parent) continue;  // Not a child of the winner.
      }
      BeamProbe probe = probe_beam(beam, tag, env, rates, rng);
      ++result.probes_used;
      if (probe.tag_detected) {
        const double excursion_w =
            phys::dbm_to_watts(probe.reflect_power_dbm) -
            phys::dbm_to_watts(probe.absorb_power_dbm);
        if (excursion_w > best_excursion_w) {
          best_excursion_w = excursion_w;
          stage_best = static_cast<int>(stage_probes.size());
        }
      }
      stage_probes.push_back(std::move(probe));
    }
    if (stage_best < 0) {
      // Lost the tag at this refinement level; report what we have so far.
      result.probes = std::move(stage_probes);
      result.best_beam_index = -1;
      return result;
    }
    winner = stage_probes[static_cast<std::size_t>(stage_best)].beam;
    have_winner = true;
    result.probes = std::move(stage_probes);
    result.best_beam_index = stage_best;
  }
  return result;
}

}  // namespace mmtag::reader
