// Beam scanning: how the reader finds tags (paper Fig. 2).
//
// "The reader scans the space by steering its beam. When the reader beam is
// toward a tag, the tag modulates and reflects the reader's signal back."
// The scanner sweeps a codebook, measures modulated power in each beam
// position with the power detector, and reports the beams where a tag
// responded. Because the tag is retrodirective, the tag needs no part in
// the search — exactly the paper's point.
#pragma once

#include <random>
#include <vector>

#include "src/antenna/codebook.hpp"
#include "src/reader/detector.hpp"
#include "src/reader/reader.hpp"

namespace mmtag::reader {

/// Result of probing one beam position.
struct BeamProbe {
  antenna::Beam beam;
  double reflect_power_dbm = -300.0;  ///< Measured, tag reflective.
  double absorb_power_dbm = -300.0;   ///< Measured, tag absorptive.
  bool tag_detected = false;
  double achievable_rate_bps = 0.0;
};

/// Result of a full scan.
struct ScanResult {
  std::vector<BeamProbe> probes;
  int best_beam_index = -1;  ///< Probe with the strongest detection, or -1.
  int probes_used = 0;

  [[nodiscard]] bool found_tag() const { return best_beam_index >= 0; }
};

class BeamScanner {
 public:
  BeamScanner(MmWaveReader reader, PowerDetector detector);

  /// Exhaustively probe `codebook`, measuring the tag in both switch states
  /// per beam (the tag toggles continuously, the reader just watches the
  /// excursion). Returns every probe plus the winner.
  [[nodiscard]] ScanResult scan(const std::vector<antenna::Beam>& codebook,
                                const core::MmTag& tag,
                                const channel::Environment& env,
                                const phy::RateTable& rates,
                                std::mt19937_64& rng);

  /// Two-stage hierarchical scan: probe the coarse stage fully, then only
  /// the winner's children in each finer stage. Far fewer probes for the
  /// same final beam (paper Sec. 3's "speed up the beam searching" lineage).
  [[nodiscard]] ScanResult hierarchical_scan(
      const std::vector<std::vector<antenna::Beam>>& stages,
      const core::MmTag& tag, const channel::Environment& env,
      const phy::RateTable& rates, std::mt19937_64& rng);

  [[nodiscard]] MmWaveReader& reader() { return reader_; }
  [[nodiscard]] const MmWaveReader& reader() const { return reader_; }

 private:
  /// Probe a single beam position.
  [[nodiscard]] BeamProbe probe_beam(const antenna::Beam& beam,
                                     const core::MmTag& tag,
                                     const channel::Environment& env,
                                     const phy::RateTable& rates,
                                     std::mt19937_64& rng);

  MmWaveReader reader_;
  PowerDetector detector_;
};

}  // namespace mmtag::reader
