// The mmWave reader (paper Secs. 4 & 7).
//
// The prototype reader is a signal generator and a spectrum analyzer behind
// two co-located directional horns: it transmits a query beam, steers it
// across the sector, and measures the power modulated back by a tag. This
// class reproduces that instrument: steerable TX/RX horn patterns, the
// 20 mW query source, and link evaluation against posed tags over the
// ray-traced channel.
#pragma once

#include <vector>

#include "src/antenna/pattern.hpp"
#include "src/channel/environment.hpp"
#include "src/channel/raytrace.hpp"
#include "src/core/tag.hpp"
#include "src/phy/rate_table.hpp"

namespace mmtag::reader {

/// Everything the reader learns about one tag over one path.
struct LinkReport {
  channel::Path path;                 ///< The propagation path used.
  double received_power_dbm = -300.0; ///< Tag reflection, bit-'0' state.
  double modulation_depth_db = 0.0;   ///< Bit-0 minus bit-1 power at reader.
  double achievable_rate_bps = 0.0;   ///< Best rate from the rate table.
};

class MmWaveReader {
 public:
  struct Params {
    double tx_power_dbm = 13.0;  ///< 20 mW (paper Sec. 7).
    antenna::HornPattern horn = antenna::HornPattern::mmtag_reader_horn();
    double frequency_hz = 24.0e9;
    /// Calibrated losses of the physical prototype beyond the ideal models
    /// (connectors, polarization, alignment). See DESIGN.md Sec. 4.
    double implementation_loss_db = 18.0;
  };

  MmWaveReader(core::Pose pose, Params params);

  /// The paper's reader at `pose` with default parameters.
  [[nodiscard]] static MmWaveReader prototype_at(core::Pose pose);

  /// Steer both horns (they move together) to world bearing `world_rad`.
  void steer_to_world(double world_rad);

  /// Current beam boresight (world frame).
  [[nodiscard]] double beam_world_rad() const { return beam_world_rad_; }

  /// TX/RX gain toward world bearing `world_rad` with the current steering
  /// [dBi]. TX and RX horns are identical and co-steered.
  [[nodiscard]] double gain_dbi(double world_rad) const;

  /// Evaluate the link to `tag` over a specific `path`.
  [[nodiscard]] LinkReport evaluate_path(const core::MmTag& tag,
                                         const channel::Path& path,
                                         const phy::RateTable& rates) const;

  /// Evaluate the link over the best available path in `env` (LOS when
  /// clear, else the strongest wall reflection — paper Sec. 4).
  [[nodiscard]] LinkReport evaluate_link(const core::MmTag& tag,
                                         const channel::Environment& env,
                                         const phy::RateTable& rates) const;

  /// All usable paths, each evaluated. Sorted by descending received power.
  [[nodiscard]] std::vector<LinkReport> evaluate_all_paths(
      const core::MmTag& tag, const channel::Environment& env,
      const phy::RateTable& rates) const;

  [[nodiscard]] const core::Pose& pose() const { return pose_; }
  void set_pose(core::Pose pose) { pose_ = pose; }
  [[nodiscard]] const Params& params() const { return params_; }

 private:
  core::Pose pose_;
  Params params_;
  double beam_world_rad_;
};

}  // namespace mmtag::reader
