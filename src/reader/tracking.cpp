#include "src/reader/tracking.hpp"

#include <cassert>

#include "src/phys/units.hpp"

namespace mmtag::reader {

BeamTracker::BeamTracker(BeamScanner scanner,
                         std::vector<antenna::Beam> full_codebook,
                         Params params)
    : scanner_(std::move(scanner)),
      full_codebook_(std::move(full_codebook)),
      params_(params) {
  assert(!full_codebook_.empty());
  assert(params_.alpha > 0.0 && params_.alpha <= 1.0);
  assert(params_.beta >= 0.0 && params_.beta <= 1.0);
  assert(params_.miss_budget >= 1);
}

double BeamTracker::predicted_bearing_rad(double t_s) const {
  return bearing_rad_ + bearing_rate_rad_s_ * (t_s - last_fix_t_s_);
}

std::optional<LinkReport> BeamTracker::probe(double bearing_rad,
                                             const core::MmTag& tag,
                                             const channel::Environment& env,
                                             const phy::RateTable& rates,
                                             std::mt19937_64& /*rng*/) {
  ++probes_;
  scanner_.reader().steer_to_world(bearing_rad);
  const LinkReport link = scanner_.reader().evaluate_link(tag, env, rates);
  if (link.achievable_rate_bps <= 0.0) return std::nullopt;
  return link;
}

void BeamTracker::update_filter(double t_s, double measured_bearing_rad) {
  const double dt = t_s - last_fix_t_s_;
  const double predicted = predicted_bearing_rad(t_s);
  const double residual =
      phys::wrap_angle_rad(measured_bearing_rad - predicted);
  bearing_rad_ = phys::wrap_angle_rad(predicted + params_.alpha * residual);
  if (dt > 1e-9) {
    bearing_rate_rad_s_ += params_.beta * residual / dt;
  }
  last_fix_t_s_ = t_s;
}

LinkReport BeamTracker::step(double t_s, const core::MmTag& tag,
                             const channel::Environment& env,
                             const phy::RateTable& rates,
                             std::mt19937_64& rng) {
  if (locked_ && misses_ < params_.miss_budget) {
    // Cheap mode: predicted beam and its two neighbours, best wins.
    const double predicted = predicted_bearing_rad(t_s);
    std::optional<LinkReport> best;
    double best_bearing = predicted;
    for (const double offset :
         {0.0, -params_.probe_offset_rad, params_.probe_offset_rad}) {
      const double bearing = predicted + offset;
      const auto link = probe(bearing, tag, env, rates, rng);
      if (link && (!best ||
                   link->received_power_dbm > best->received_power_dbm)) {
        best = link;
        best_bearing = bearing;
      }
    }
    if (best) {
      misses_ = 0;
      update_filter(t_s, best_bearing);
      return *best;
    }
    ++misses_;
    LinkReport miss;
    return miss;  // Rate 0: this step is lost, but the lock persists.
  }

  // Re-acquisition: full codebook sweep.
  ++full_scans_;
  const ScanResult scan = scanner_.scan(full_codebook_, tag, env, rates, rng);
  probes_ += scan.probes_used;
  if (!scan.found_tag()) {
    locked_ = false;
    LinkReport miss;
    return miss;
  }
  const antenna::Beam winner =
      scan.probes[static_cast<std::size_t>(scan.best_beam_index)].beam;
  locked_ = true;
  misses_ = 0;
  // (Re)initialize the filter at the winning beam with zero rate.
  bearing_rad_ = winner.boresight_rad;
  bearing_rate_rad_s_ = 0.0;
  last_fix_t_s_ = t_s;
  // Return the link through the winning beam.
  scanner_.reader().steer_to_world(winner.boresight_rad);
  return scanner_.reader().evaluate_link(tag, env, rates);
}

}  // namespace mmtag::reader
