#include "src/reader/self_interference.hpp"

#include <algorithm>
#include <cassert>

#include "src/phys/units.hpp"

namespace mmtag::reader {

SelfInterferenceModel::SelfInterferenceModel(Params params)
    : params_(params) {
  assert(params_.antenna_isolation_db >= 0.0);
  assert(params_.analog_cancellation_db >= 0.0);
  assert(params_.cancellation_limit_db > 0.0);
}

double SelfInterferenceModel::residual_dbm(double tx_power_dbm) const {
  const double total_suppression =
      std::min(params_.antenna_isolation_db + params_.analog_cancellation_db,
               params_.cancellation_limit_db);
  return tx_power_dbm - total_suppression;
}

double SelfInterferenceModel::sinr_db(double tag_power_dbm,
                                      double tx_power_dbm,
                                      double bandwidth_hz,
                                      const phys::NoiseModel& noise) const {
  const double si_w = phys::dbm_to_watts(residual_dbm(tx_power_dbm));
  const double noise_w = noise.power_w(bandwidth_hz);
  const double tag_w = phys::dbm_to_watts(tag_power_dbm);
  return phys::ratio_to_db(tag_w / (si_w + noise_w));
}

double SelfInterferenceModel::achievable_rate_bps(
    double tag_power_dbm, double tx_power_dbm,
    const phy::RateTable& rates) const {
  for (const phy::RateTier& tier : rates.tiers()) {
    const double sinr = sinr_db(tag_power_dbm, tx_power_dbm,
                                tier.bandwidth_hz, rates.noise());
    if (sinr >= rates.required_snr_db()) return tier.bit_rate_bps;
  }
  return 0.0;
}

}  // namespace mmtag::reader
