// Beam tracking: keeping the reader's beam on a moving tag between scans.
//
// A full codebook sweep per motion step would waste most of the airtime on
// probing (the very overhead the beam-search literature the paper cites
// tries to cut). The tracker closes the loop cheaply:
//
//   * an alpha-beta filter predicts the tag bearing from past fixes,
//   * each step probes only the predicted beam and its two neighbours,
//   * a configurable miss budget triggers re-acquisition by full scan.
//
// This quantifies the other half of the paper's story: the tag side is
// alignment-free (Van Atta), and the reader side needs only this much work.
#pragma once

#include <random>

#include "src/reader/scanner.hpp"

namespace mmtag::reader {

class BeamTracker {
 public:
  struct Params {
    double alpha = 0.6;   ///< Position-correction gain.
    double beta = 0.2;    ///< Rate-correction gain.
    /// Probe spacing around the prediction [rad] (one beamwidth apart).
    double probe_offset_rad = 0.15;
    int miss_budget = 3;  ///< Misses tolerated before re-acquisition.
  };

  BeamTracker(BeamScanner scanner, std::vector<antenna::Beam> full_codebook,
              Params params);

  /// One tracking step at time `t_s`: probe around the prediction (or run
  /// a full re-acquisition scan if the miss budget is spent), update the
  /// filter, and return the link through the chosen beam. Returns a report
  /// with rate 0 when even re-acquisition fails.
  LinkReport step(double t_s, const core::MmTag& tag,
                  const channel::Environment& env,
                  const phy::RateTable& rates, std::mt19937_64& rng);

  /// Predicted bearing at time `t_s` [rad].
  [[nodiscard]] double predicted_bearing_rad(double t_s) const;

  [[nodiscard]] bool is_locked() const { return locked_; }
  [[nodiscard]] int full_scans_used() const { return full_scans_; }
  [[nodiscard]] int probes_used() const { return probes_; }

 private:
  /// Probe one beam direction; returns the link if the tag was detected.
  [[nodiscard]] std::optional<LinkReport> probe(double bearing_rad,
                                                const core::MmTag& tag,
                                                const channel::Environment& env,
                                                const phy::RateTable& rates,
                                                std::mt19937_64& rng);

  void update_filter(double t_s, double measured_bearing_rad);

  BeamScanner scanner_;
  std::vector<antenna::Beam> full_codebook_;
  Params params_;

  bool locked_ = false;
  double bearing_rad_ = 0.0;
  double bearing_rate_rad_s_ = 0.0;
  double last_fix_t_s_ = 0.0;
  int misses_ = 0;
  int full_scans_ = 0;
  int probes_ = 0;
};

}  // namespace mmtag::reader
