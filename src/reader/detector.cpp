#include "src/reader/detector.hpp"

#include <cassert>
#include <cmath>

#include "src/phys/units.hpp"

namespace mmtag::reader {

PowerDetector::PowerDetector(phys::NoiseModel noise, Params params)
    : noise_(noise), params_(params) {
  assert(params_.bandwidth_hz > 0.0);
  assert(params_.averages >= 1);
  assert(params_.detection_margin_db >= 0.0);
}

PowerDetector PowerDetector::mmtag_default() {
  return PowerDetector(phys::NoiseModel::mmtag_reader(), Params{});
}

double PowerDetector::noise_floor_dbm() const {
  return noise_.power_dbm(params_.bandwidth_hz);
}

double PowerDetector::measure_dbm(double true_power_dbm,
                                  std::mt19937_64& rng) const {
  const double signal_w = phys::dbm_to_watts(true_power_dbm);
  const double noise_w = noise_.power_w(params_.bandwidth_hz);
  // Averaged power estimate: mean of K exponential (chi-squared_2) noise
  // realizations rides on top of the deterministic signal power. Model the
  // estimate as Gaussian around signal+noise with std (signal+noise)/sqrt(K)
  // — the standard large-K radiometer approximation.
  const double mean_w = signal_w + noise_w;
  const double sigma_w = mean_w / std::sqrt(static_cast<double>(
                                     params_.averages));
  std::normal_distribution<double> jitter(mean_w, sigma_w);
  double measured_w = jitter(rng);
  // A power readout cannot go below a tiny positive floor.
  const double floor_w = noise_w * 1e-3;
  if (measured_w < floor_w) measured_w = floor_w;
  return phys::watts_to_dbm(measured_w);
}

bool PowerDetector::detects_modulation(double reflect_dbm,
                                       double absorb_dbm) const {
  const double excursion_w =
      phys::dbm_to_watts(reflect_dbm) - phys::dbm_to_watts(absorb_dbm);
  if (excursion_w <= 0.0) return false;
  const double threshold_w =
      noise_.power_w(params_.bandwidth_hz) *
      phys::db_to_ratio(params_.detection_margin_db);
  return excursion_w >= threshold_w;
}

}  // namespace mmtag::reader
