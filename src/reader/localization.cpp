#include "src/reader/localization.hpp"

#include <cassert>
#include <cmath>

#include "src/phys/units.hpp"

namespace mmtag::reader {

TagLocator::TagLocator(phys::BackscatterLinkBudget budget,
                       double power_sigma_db)
    : budget_(budget), power_sigma_db_(power_sigma_db) {
  assert(power_sigma_db_ >= 0.0);
}

TagLocator TagLocator::mmtag_default() {
  return TagLocator(phys::BackscatterLinkBudget::mmtag_prototype());
}

double TagLocator::range_from_power_m(double power_dbm) const {
  // max_range_m solves P_rx(d) == power for d on the 40 dB/decade budget.
  return budget_.max_range_m(power_dbm);
}

std::optional<PositionEstimate> TagLocator::locate(
    const ScanResult& scan, const core::Pose& reader_pose) const {
  if (!scan.found_tag()) return std::nullopt;
  const BeamProbe& winner =
      scan.probes[static_cast<std::size_t>(scan.best_beam_index)];

  PositionEstimate estimate;
  estimate.bearing_rad = winner.beam.boresight_rad;
  estimate.bearing_sigma_rad = phys::deg_to_rad(winner.beam.width_deg) / 2.0;
  estimate.range_m = range_from_power_m(winner.reflect_power_dbm);
  // +/- sigma of power maps to a multiplicative range band through the
  // 40 dB/decade slope: d * 10^(+/- sigma/40).
  const double band = std::pow(10.0, power_sigma_db_ / 40.0);
  estimate.range_sigma_m = estimate.range_m * (band - 1.0);

  estimate.position = reader_pose.position +
                      channel::Vec2{std::cos(estimate.bearing_rad),
                                    std::sin(estimate.bearing_rad)} *
                          estimate.range_m;
  return estimate;
}

}  // namespace mmtag::reader
