// Reader-to-reader interference: deploying many readers in one space.
//
// A warehouse or office deploys several readers (the AR example already
// uses two). Each reader's query carrier lands in the others' receive
// bands; mmWave directionality (narrow horns) is the main defence — the
// same property paper Sec. 9 proposes against self-interference. This
// model computes cross-reader interference over the ray-traced channel and
// the SINR-limited rate each reader keeps for its own tag.
#pragma once

#include <vector>

#include "src/channel/environment.hpp"
#include "src/phy/rate_table.hpp"
#include "src/reader/reader.hpp"

namespace mmtag::reader {

/// One-way interference power received by `victim` from `aggressor`'s
/// transmit carrier over the strongest path in `env` [dBm]. Both readers'
/// current steerings apply (TX gain at the aggressor's departure, RX gain
/// at the victim's arrival... the path is evaluated from the aggressor).
[[nodiscard]] double cross_reader_interference_dbm(
    const MmWaveReader& aggressor, const MmWaveReader& victim,
    const channel::Environment& env);

/// Aggregate interference at `victim` from every other reader [dBm].
/// Powers add linearly.
[[nodiscard]] double total_interference_dbm(
    const std::vector<MmWaveReader>& readers, std::size_t victim_index,
    const channel::Environment& env);

/// Rate the victim still achieves for a tag signal of `tag_power_dbm`
/// when thermal noise and the aggregate interference both load each tier.
[[nodiscard]] double sinr_limited_rate_bps(
    double tag_power_dbm, double interference_dbm,
    const phy::RateTable& rates);

}  // namespace mmtag::reader
