// The reader's demodulation pipeline: waveform -> bits -> frame.
//
// Composes the OOK demodulator, optional Manchester decoding and frame
// parsing into the single call the MAC layer and examples use. The chain
// reports per-stage statistics so failures are attributable (low SNR vs
// framing vs CRC).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/impair/chain.hpp"
#include "src/phy/frame.hpp"
#include "src/phy/line_code.hpp"
#include "src/phy/ook.hpp"
#include "src/phy/sync.hpp"

namespace mmtag::reader {

/// Outcome of one frame reception attempt.
struct ReceiveResult {
  std::optional<phy::TagFrame> frame;   ///< Present on full success.
  std::size_t demodulated_bits = 0;
  std::size_t invalid_line_pairs = 0;   ///< Manchester violations seen.
  bool preamble_ok = false;
  bool crc_ok = false;
};

class ReceiveChain {
 public:
  struct Params {
    int samples_per_symbol = 8;
    bool manchester = true;  ///< Tag uses Manchester line coding.
  };

  explicit ReceiveChain(Params params);

  /// Demodulate `samples` and try to parse one frame from the result.
  /// Assumes the frame starts at sample 0 (slot-aligned MAC).
  [[nodiscard]] ReceiveResult receive(
      std::span<const phy::Complex> samples) const;

  /// receive() with front-end realism: applies `chain`'s receive-side
  /// impairment stages (phase noise, IQ imbalance, ADC) to a private
  /// copy of `samples` under the per-frame `seed`, then runs the normal
  /// pipeline. A bypass chain copies nothing and is exactly receive().
  [[nodiscard]] ReceiveResult receive_impaired(
      std::span<const phy::Complex> samples,
      const impair::ImpairmentChain& chain, std::uint64_t seed) const;

  /// Locate and decode every frame in an unaligned sample stream using
  /// preamble correlation (src/phy/sync). Returns one result per detected
  /// preamble, in stream order; results whose CRC failed keep
  /// frame == nullopt but are still reported.
  [[nodiscard]] std::vector<ReceiveResult> receive_stream(
      std::span<const phy::Complex> stream) const;

  /// The matching transmit-side encoding for tests/examples: frame ->
  /// (optional Manchester) -> OOK samples.
  [[nodiscard]] phy::Waveform encode(const phy::TagFrame& frame,
                                     double modulation_depth_db = 60.0) const;

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace mmtag::reader
