// AArch64 NEON backend — currently a named stub. The table exists so
// dispatch, MMTAG_KERN=neon, and the equivalence tests exercise the same
// code paths on ARM hosts, but every kernel aliases the scalar
// reference; the 128-bit float64x2 ports follow the sse42.cpp structure
// when an ARM target joins CI. Not selectable on non-ARM builds.
#include "src/kern/backends.hpp"

namespace mmtag::kern::detail {

#if defined(__aarch64__) || defined(__ARM_NEON)

const Kernels* neon_table() {
  static const Kernels kTable = {
      "neon",
      &scalar::sum,
      &scalar::dot,
      &scalar::centered_dot_energy,
      &scalar::abs_complex,
      &scalar::scale_real,
      &scalar::scale_complex,
      &scalar::fir_complex,
      &scalar::butterfly_pass,
      &scalar::block_sum_complex,
      &scalar::threshold_below,
      &scalar::squared_distance,
      &scalar::count_below,
      &scalar::mul_complex,
      &scalar::iq_imbalance,
      &scalar::pa_rapp,
      &scalar::adc_quantize,
      &scalar::fm0_decode_bytes,
      &scalar::crc16_bits,
  };
  return &kTable;
}

#else

const Kernels* neon_table() { return nullptr; }

#endif

}  // namespace mmtag::kern::detail
