// AVX2 backend: 256-bit lanes, four doubles / two complexes per op.
// Compiled with -mavx2 (and only reached after a runtime CPUID check in
// dispatch.cpp). Deliberately no -mfma: every multiply and add must stay
// a distinct IEEE-754 operation so results are bit-identical to the
// scalar reference (see kern.hpp). Horizontal reductions mirror the
// scalar 4-lane tree exactly: lanes combine as (l0+l2)+(l1+l3).
#include "src/kern/backends.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>

namespace mmtag::kern::detail {
namespace {

using Complexd = std::complex<double>;

inline const double* as_doubles(const Complexd* p) {
  return reinterpret_cast<const double*>(p);
}
inline double* as_doubles(Complexd* p) {
  return reinterpret_cast<double*>(p);
}

// (l0+l2)+(l1+l3) — the scalar reference's combine order.
inline double hsum_tree(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);           // [l0, l1]
  const __m128d hi = _mm256_extractf128_pd(v, 1);         // [l2, l3]
  const __m128d pair = _mm_add_pd(lo, hi);                // [l0+l2, l1+l3]
  const __m128d swapped = _mm_unpackhi_pd(pair, pair);    // [l1+l3, ...]
  return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
}

// [ar*br - ai*bi, ai*br + ar*bi] for the two complexes in each register.
inline __m256d cmul2(__m256d a, __m256d b) {
  const __m256d br = _mm256_movedup_pd(b);                // [br0,br0,br1,br1]
  const __m256d bi = _mm256_permute_pd(b, 0xF);           // [bi0,bi0,bi1,bi1]
  const __m256d a_swap = _mm256_permute_pd(a, 0x5);       // [ai,ar,...]
  return _mm256_addsub_pd(_mm256_mul_pd(a, br),
                          _mm256_mul_pd(a_swap, bi));
}

double sum_avx2(const double* x, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  double total = hsum_tree(acc);
  for (std::size_t i = n4; i < n; ++i) total += x[i];
  return total;
}

double dot_avx2(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double total = hsum_tree(acc);
  for (std::size_t i = n4; i < n; ++i) total += a[i] * b[i];
  return total;
}

void centered_dot_energy_avx2(const double* x, const double* t, double mean,
                              std::size_t n, double* dot_out,
                              double* energy_out) {
  const __m256d mean_v = _mm256_set1_pd(mean);
  __m256d acc_dot = _mm256_setzero_pd();
  __m256d acc_energy = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d centered =
        _mm256_sub_pd(_mm256_loadu_pd(x + i), mean_v);
    acc_dot = _mm256_add_pd(
        acc_dot, _mm256_mul_pd(centered, _mm256_loadu_pd(t + i)));
    acc_energy =
        _mm256_add_pd(acc_energy, _mm256_mul_pd(centered, centered));
  }
  double total_dot = hsum_tree(acc_dot);
  double total_energy = hsum_tree(acc_energy);
  for (std::size_t i = n4; i < n; ++i) {
    const double centered = x[i] - mean;
    total_dot += centered * t[i];
    total_energy += centered * centered;
  }
  *dot_out = total_dot;
  *energy_out = total_energy;
}

void abs_complex_avx2(const Complexd* x, double* out, std::size_t n) {
  const double* p = as_doubles(x);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d v0 = _mm256_loadu_pd(p + 2 * i);      // r0 i0 r1 i1
    const __m256d v1 = _mm256_loadu_pd(p + 2 * i + 4);  // r2 i2 r3 i3
    const __m256d sq = _mm256_hadd_pd(_mm256_mul_pd(v0, v0),
                                      _mm256_mul_pd(v1, v1));
    // hadd yields [s0, s2, s1, s3]; restore element order then sqrt.
    const __m256d ordered = _mm256_permute4x64_pd(sq, 0xD8);  // 0,2,1,3
    _mm256_storeu_pd(out + i, _mm256_sqrt_pd(ordered));
  }
  for (std::size_t i = n4; i < n; ++i) {
    const double re = x[i].real();
    const double im = x[i].imag();
    out[i] = std::sqrt(re * re + im * im);
  }
}

void scale_real_avx2(Complexd* x, double gain, std::size_t n) {
  double* p = as_doubles(x);
  const __m256d g = _mm256_set1_pd(gain);
  const std::size_t d = 2 * n;
  const std::size_t d4 = d & ~std::size_t{3};
  for (std::size_t i = 0; i < d4; i += 4) {
    _mm256_storeu_pd(p + i, _mm256_mul_pd(_mm256_loadu_pd(p + i), g));
  }
  for (std::size_t i = d4; i < d; ++i) p[i] *= gain;
}

void scale_complex_avx2(Complexd* x, Complexd c, std::size_t n) {
  double* p = as_doubles(x);
  const __m256d cv = _mm256_setr_pd(c.real(), c.imag(), c.real(), c.imag());
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    _mm256_storeu_pd(p + 2 * i, cmul2(_mm256_loadu_pd(p + 2 * i), cv));
  }
  if (n2 != n) {
    const Complexd a = x[n - 1];
    x[n - 1] = Complexd(a.real() * c.real() - a.imag() * c.imag(),
                        a.imag() * c.real() + a.real() * c.imag());
  }
}

void fir_complex_avx2(const Complexd* x, std::size_t n, const double* taps,
                      std::size_t nt, Complexd* out) {
  const double* px = as_doubles(x);
  const std::ptrdiff_t delay = static_cast<std::ptrdiff_t>(nt / 2);
  const std::ptrdiff_t sn = static_cast<std::ptrdiff_t>(n);
  const std::ptrdiff_t snt = static_cast<std::ptrdiff_t>(nt);
  for (std::ptrdiff_t i = 0; i < sn; ++i) {
    const std::ptrdiff_t k_lo =
        i + delay - (sn - 1) > 0 ? i + delay - (sn - 1) : 0;
    const std::ptrdiff_t k_hi = snt - 1 < i + delay ? snt - 1 : i + delay;
    const std::ptrdiff_t m = k_hi - k_lo + 1;
    if (m <= 0) {
      out[static_cast<std::size_t>(i)] = Complexd(0.0, 0.0);
      continue;
    }
    const std::ptrdiff_t mv = m & ~std::ptrdiff_t{1};
    __m256d acc = _mm256_setzero_pd();
    for (std::ptrdiff_t off = 0; off < mv; off += 2) {
      const std::ptrdiff_t k0 = k_lo + off;
      // Contiguous pair [x[idx-1], x[idx]] with idx = i+delay-k0; the
      // tap vector pairs t[k0+1] with x[idx-1] and t[k0] with x[idx].
      const std::ptrdiff_t idx = i + delay - k0;
      const __m256d xv = _mm256_loadu_pd(px + 2 * (idx - 1));
      const __m256d tv =
          _mm256_setr_pd(taps[k0 + 1], taps[k0 + 1], taps[k0], taps[k0]);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(xv, tv));
    }
    // Componentwise lane0 + lane1 (complex add; order is immaterial —
    // IEEE addition is commutative).
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    __m128d res = _mm_add_pd(lo, hi);
    if (mv != m) {
      const std::ptrdiff_t idx = i + delay - k_hi;
      const __m128d xt = _mm_loadu_pd(px + 2 * idx);
      res = _mm_add_pd(res, _mm_mul_pd(xt, _mm_set1_pd(taps[k_hi])));
    }
    _mm_storeu_pd(as_doubles(out) + 2 * i, res);
  }
}

void butterfly_pass_avx2(Complexd* data, std::size_t n, std::size_t len,
                         const Complexd* tw) {
  double* p = as_doubles(data);
  const std::size_t half = len / 2;
  if (len == 2) {
    // Two groups (four complexes) per iteration:
    // [a0,b0],[a1,b1] -> [a0+b0, a0-b0],[a1+b1, a1-b1].
    std::size_t s = 0;
    for (; s + 4 <= n; s += 4) {
      const __m256d v0 = _mm256_loadu_pd(p + 2 * s);      // a0 b0
      const __m256d v1 = _mm256_loadu_pd(p + 2 * s + 4);  // a1 b1
      const __m256d a = _mm256_permute2f128_pd(v0, v1, 0x20);  // a0 a1
      const __m256d b = _mm256_permute2f128_pd(v0, v1, 0x31);  // b0 b1
      const __m256d add = _mm256_add_pd(a, b);
      const __m256d sub = _mm256_sub_pd(a, b);
      _mm256_storeu_pd(p + 2 * s, _mm256_permute2f128_pd(add, sub, 0x20));
      _mm256_storeu_pd(p + 2 * s + 4,
                       _mm256_permute2f128_pd(add, sub, 0x31));
    }
    for (; s < n; s += 2) {
      const Complexd a = data[s];
      const Complexd b = data[s + 1];
      data[s] = Complexd(a.real() + b.real(), a.imag() + b.imag());
      data[s + 1] = Complexd(a.real() - b.real(), a.imag() - b.imag());
    }
    return;
  }
  // len >= 4: the k-loop spans len/2 >= 2 twiddles, always a whole
  // number of 2-complex vectors (len is a power of two).
  const double* ptw = as_doubles(tw);
  for (std::size_t s = 0; s < n; s += len) {
    for (std::size_t k = 0; k < half; k += 2) {
      const __m256d even = _mm256_loadu_pd(p + 2 * (s + k));
      const __m256d oddv = _mm256_loadu_pd(p + 2 * (s + k + half));
      const __m256d w = _mm256_loadu_pd(ptw + 2 * k);
      const __m256d odd = cmul2(oddv, w);
      _mm256_storeu_pd(p + 2 * (s + k), _mm256_add_pd(even, odd));
      _mm256_storeu_pd(p + 2 * (s + k + half),
                       _mm256_sub_pd(even, odd));
    }
  }
}

void block_sum_complex_avx2(const Complexd* x, std::size_t nblocks,
                            std::size_t block, Complexd* out) {
  const double* px = as_doubles(x);
  const std::size_t bv = block & ~std::size_t{1};
  for (std::size_t k = 0; k < nblocks; ++k) {
    const double* base = px + 2 * k * block;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t s = 0; s < bv; s += 2) {
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(base + 2 * s));
    }
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    __m128d res = _mm_add_pd(lo, hi);
    if (bv != block) {
      res = _mm_add_pd(res, _mm_loadu_pd(base + 2 * (block - 1)));
    }
    _mm_storeu_pd(as_doubles(out) + 2 * k, res);
  }
}

void threshold_below_avx2(const double* stats, std::size_t n,
                          double threshold, std::uint8_t* bits) {
  const __m256d thr = _mm256_set1_pd(threshold);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d cmp =
        _mm256_cmp_pd(_mm256_loadu_pd(stats + i), thr, _CMP_LT_OQ);
    const int mask = _mm256_movemask_pd(cmp);
    bits[i] = static_cast<std::uint8_t>(mask & 1);
    bits[i + 1] = static_cast<std::uint8_t>((mask >> 1) & 1);
    bits[i + 2] = static_cast<std::uint8_t>((mask >> 2) & 1);
    bits[i + 3] = static_cast<std::uint8_t>((mask >> 3) & 1);
  }
  for (std::size_t i = n4; i < n; ++i) {
    bits[i] = stats[i] < threshold ? 1 : 0;
  }
}

void squared_distance_avx2(const double* xs, const double* ys, double cx,
                           double cy, std::size_t n, double* out) {
  const __m256d vcx = _mm256_set1_pd(cx);
  const __m256d vcy = _mm256_set1_pd(cy);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), vcx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + i), vcy);
    // mul + add kept separate: FMA contraction would change the bits.
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_mul_pd(dx, dx),
                                            _mm256_mul_pd(dy, dy)));
  }
  for (std::size_t i = n4; i < n; ++i) {
    const double dx = xs[i] - cx;
    const double dy = ys[i] - cy;
    out[i] = dx * dx + dy * dy;
  }
}

std::uint64_t count_below_avx2(const double* x, std::size_t n,
                               double threshold) {
  const __m256d thr = _mm256_set1_pd(threshold);
  std::uint64_t count = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d cmp =
        _mm256_cmp_pd(_mm256_loadu_pd(x + i), thr, _CMP_LT_OQ);
    count += static_cast<std::uint64_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(cmp))));
  }
  for (std::size_t i = n4; i < n; ++i) {
    count += x[i] < threshold ? 1u : 0u;
  }
  return count;
}

void mul_complex_avx2(Complexd* x, const Complexd* c, std::size_t n) {
  double* p = as_doubles(x);
  const double* pc = as_doubles(c);
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    _mm256_storeu_pd(p + 2 * i, cmul2(_mm256_loadu_pd(p + 2 * i),
                                      _mm256_loadu_pd(pc + 2 * i)));
  }
  for (std::size_t i = n2; i < n; ++i) {
    const double ar = x[i].real();
    const double ai = x[i].imag();
    const double br = c[i].real();
    const double bi = c[i].imag();
    x[i] = Complexd(ar * br - ai * bi, ai * br + ar * bi);
  }
}

void iq_imbalance_avx2(Complexd* x, Complexd mu, Complexd nu,
                       std::size_t n) {
  double* p = as_doubles(x);
  const __m256d muv = _mm256_setr_pd(mu.real(), mu.imag(), mu.real(),
                                     mu.imag());
  const __m256d nuv = _mm256_setr_pd(nu.real(), nu.imag(), nu.real(),
                                     nu.imag());
  const __m256d conj_mask = _mm256_setr_pd(0.0, -0.0, 0.0, -0.0);
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    const __m256d v = _mm256_loadu_pd(p + 2 * i);
    const __m256d m = cmul2(v, muv);
    const __m256d w = cmul2(_mm256_xor_pd(v, conj_mask), nuv);
    _mm256_storeu_pd(p + 2 * i, _mm256_add_pd(m, w));
  }
  for (std::size_t i = n2; i < n; ++i) {
    const double re = x[i].real();
    const double im = x[i].imag();
    const double mr = re * mu.real() - im * mu.imag();
    const double mi = im * mu.real() + re * mu.imag();
    const double wr = re * nu.real() - (-im) * nu.imag();
    const double wi = (-im) * nu.real() + re * nu.imag();
    x[i] = Complexd(mr + wr, mi + wi);
  }
}

void pa_rapp_avx2(Complexd* x, std::size_t n, double inv_sat2, double k_pm,
                  double b_pm) {
  double* p = as_doubles(x);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d isat = _mm256_set1_pd(inv_sat2);
  const __m256d kv = _mm256_set1_pd(k_pm);
  const __m256d bv = _mm256_set1_pd(b_pm);
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    const __m256d v = _mm256_loadu_pd(p + 2 * i);
    const __m256d sq = _mm256_mul_pd(v, v);
    // hadd duplicates each complex's |x|^2 into its two lanes:
    // [a2_0, a2_0, a2_1, a2_1]; addition commutes with the scalar
    // re*re + im*im.
    const __m256d a2 = _mm256_hadd_pd(sq, sq);
    const __m256d u = _mm256_mul_pd(a2, isat);
    const __m256d g = _mm256_div_pd(
        one, _mm256_sqrt_pd(
                 _mm256_sqrt_pd(_mm256_add_pd(one, _mm256_mul_pd(u, u)))));
    const __m256d t = _mm256_div_pd(
        _mm256_mul_pd(kv, a2), _mm256_add_pd(one, _mm256_mul_pd(bv, a2)));
    const __m256d t2 = _mm256_mul_pd(t, t);
    const __m256d iv = _mm256_div_pd(one, _mm256_add_pd(one, t2));
    const __m256d cr = _mm256_mul_pd(_mm256_sub_pd(one, t2), iv);
    const __m256d ci = _mm256_mul_pd(_mm256_add_pd(t, t), iv);
    // Interleave [cr0, ci0, cr1, ci1] then rotate + compress.
    const __m256d rot = _mm256_blend_pd(cr, ci, 0xA);
    _mm256_storeu_pd(p + 2 * i, _mm256_mul_pd(cmul2(v, rot), g));
  }
  for (std::size_t i = n2; i < n; ++i) {
    const double re = x[i].real();
    const double im = x[i].imag();
    const double a2 = re * re + im * im;
    const double u = a2 * inv_sat2;
    const double g = 1.0 / std::sqrt(std::sqrt(1.0 + u * u));
    const double t = (k_pm * a2) / (1.0 + b_pm * a2);
    const double iv = 1.0 / (1.0 + t * t);
    const double cr = (1.0 - t * t) * iv;
    const double ci = (t + t) * iv;
    x[i] = Complexd((re * cr - im * ci) * g, (im * cr + re * ci) * g);
  }
}

void adc_quantize_avx2(Complexd* x, std::size_t n, double clip, double step,
                       double inv_step) {
  double* p = as_doubles(x);
  const __m256d clipv = _mm256_set1_pd(clip);
  const __m256d nclipv = _mm256_set1_pd(-clip);
  const __m256d stepv = _mm256_set1_pd(step);
  const __m256d istepv = _mm256_set1_pd(inv_step);
  const __m256d half = _mm256_set1_pd(0.5);
  const std::size_t d = 2 * n;
  const std::size_t d4 = d & ~std::size_t{3};
  for (std::size_t i = 0; i < d4; i += 4) {
    __m256d v = _mm256_loadu_pd(p + i);
    v = _mm256_max_pd(_mm256_min_pd(v, clipv), nclipv);
    const __m256d q =
        _mm256_floor_pd(_mm256_add_pd(_mm256_mul_pd(v, istepv), half));
    _mm256_storeu_pd(p + i, _mm256_mul_pd(q, stepv));
  }
  for (std::size_t i = d4; i < d; ++i) {
    double v = p[i];
    v = v > clip ? clip : v;
    v = v < -clip ? -clip : v;
    p[i] = std::floor(v * inv_step + 0.5) * step;
  }
}

std::uint32_t fm0_decode_bytes_avx2(const std::uint8_t* chips,
                                    std::size_t nbits, std::uint8_t* bits) {
  // 32 chips (16 bits) per iteration: deinterleave first/second chips,
  // xor for the bit values, and check every first chip inverts the
  // previous second chip (the carry crosses iterations).
  const __m128i deinterleave = _mm_setr_epi8(0, 2, 4, 6, 8, 10, 12, 14,  //
                                             1, 3, 5, 7, 9, 11, 13, 15);
  const __m128i ones = _mm_set1_epi8(1);
  __m128i ok = ones;
  std::uint8_t prev = 1;
  std::size_t i = 0;
  const std::size_t n16 = nbits & ~std::size_t{15};
  for (; i < n16; i += 16) {
    const __m256i raw = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(chips + 2 * i));
    const __m256i shuf = _mm256_shuffle_epi8(
        raw, _mm256_broadcastsi128_si256(deinterleave));
    // Per 128-bit lane: low 8 bytes = first chips, high 8 = second
    // chips. Regroup into one 16-byte vector of firsts and one of
    // seconds.
    const __m256i grouped = _mm256_permute4x64_epi64(shuf, 0xD8);
    const __m128i firsts = _mm256_castsi256_si128(grouped);
    const __m128i seconds = _mm256_extracti128_si256(grouped, 1);
    const __m128i bitv =
        _mm_xor_si128(_mm_xor_si128(firsts, seconds), ones);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(bits + i), bitv);
    const __m128i prevs = _mm_insert_epi8(_mm_slli_si128(seconds, 1),
                                          static_cast<char>(prev), 0);
    ok = _mm_and_si128(ok, _mm_xor_si128(firsts, prevs));
    prev = static_cast<std::uint8_t>(_mm_extract_epi8(seconds, 15));
  }
  std::uint8_t ok_tail = 1;
  for (; i < nbits; ++i) {
    const std::uint8_t first = chips[2 * i];
    const std::uint8_t second = chips[2 * i + 1];
    ok_tail = static_cast<std::uint8_t>(ok_tail & (first ^ prev));
    bits[i] = static_cast<std::uint8_t>((first ^ second) ^ 1u);
    prev = second;
  }
  const bool vec_ok =
      _mm_movemask_epi8(_mm_cmpeq_epi8(ok, ones)) == 0xFFFF;
  return (vec_ok && ok_tail != 0) ? 1u : 0u;
}

}  // namespace

const Kernels* avx2_table() {
  static const Kernels kTable = {
      "avx2",
      &sum_avx2,
      &dot_avx2,
      &centered_dot_energy_avx2,
      &abs_complex_avx2,
      &scale_real_avx2,
      &scale_complex_avx2,
      &fir_complex_avx2,
      &butterfly_pass_avx2,
      &block_sum_complex_avx2,
      &threshold_below_avx2,
      &squared_distance_avx2,
      &count_below_avx2,
      &mul_complex_avx2,
      &iq_imbalance_avx2,
      &pa_rapp_avx2,
      &adc_quantize_avx2,
      &fm0_decode_bytes_avx2,
      &crc16_bits_sliced,
  };
  return &kTable;
}

}  // namespace mmtag::kern::detail

#else  // !defined(__AVX2__)

namespace mmtag::kern::detail {
const Kernels* avx2_table() { return nullptr; }
}  // namespace mmtag::kern::detail

#endif
