// Compile-time slicing-by-8 tables for CRC-16/CCITT-FALSE (poly 0x1021,
// MSB-first). Table k holds, for every byte value b, the CRC state
// contribution of b followed by k zero bytes; eight stream bytes then
// fold into the running state with eight table lookups and XORs instead
// of 64 bit-steps. Shared by the SSE4.2 and AVX2 backends (the kernel is
// table-driven, not SIMD, but it lives behind the same dispatch so the
// scalar reference stays the bitwise original).
#pragma once

#include <array>
#include <cstdint>

namespace mmtag::kern::detail {

inline constexpr std::uint16_t kCrc16Poly = 0x1021;

constexpr std::uint16_t crc16_one_byte(std::uint8_t byte) {
  std::uint16_t crc = static_cast<std::uint16_t>(byte) << 8;
  for (int i = 0; i < 8; ++i) {
    crc = (crc & 0x8000) != 0
              ? static_cast<std::uint16_t>((crc << 1) ^ kCrc16Poly)
              : static_cast<std::uint16_t>(crc << 1);
  }
  return crc;
}

constexpr std::array<std::array<std::uint16_t, 256>, 8> make_crc16_tables() {
  std::array<std::array<std::uint16_t, 256>, 8> tables{};
  for (int b = 0; b < 256; ++b) {
    tables[0][static_cast<std::size_t>(b)] =
        crc16_one_byte(static_cast<std::uint8_t>(b));
  }
  for (int k = 1; k < 8; ++k) {
    for (int b = 0; b < 256; ++b) {
      const std::uint16_t prev = tables[k - 1][static_cast<std::size_t>(b)];
      tables[k][static_cast<std::size_t>(b)] = static_cast<std::uint16_t>(
          (prev << 8) ^ tables[0][prev >> 8]);
    }
  }
  return tables;
}

inline constexpr std::array<std::array<std::uint16_t, 256>, 8> kCrc16Tables =
    make_crc16_tables();

}  // namespace mmtag::kern::detail
