// SSE4.2 backend: 128-bit lanes, two doubles / one complex per op.
// Reductions keep the scalar reference's 4-lane tree by running two
// 2-wide accumulators (lanes {0,1} and {2,3}); complex math uses the
// SSE3 addsub idiom with the same operand order as the scalar cmul, so
// results are bit-identical to every other backend (see kern.hpp).
#include "src/kern/backends.hpp"

#if defined(__SSE4_2__)

#include <nmmintrin.h>

#include <cmath>
#include <cstring>

namespace mmtag::kern::detail {
namespace {

using Complexd = std::complex<double>;

inline const double* as_doubles(const Complexd* p) {
  return reinterpret_cast<const double*>(p);
}
inline double* as_doubles(Complexd* p) {
  return reinterpret_cast<double*>(p);
}

// (l0+l2)+(l1+l3) from the two partial accumulators.
inline double hsum_tree(__m128d acc01, __m128d acc23) {
  const __m128d pair = _mm_add_pd(acc01, acc23);  // [l0+l2, l1+l3]
  const __m128d swapped = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
}

// One complex product [ar*br - ai*bi, ai*br + ar*bi].
inline __m128d cmul1(__m128d a, __m128d b) {
  const __m128d br = _mm_unpacklo_pd(b, b);
  const __m128d bi = _mm_unpackhi_pd(b, b);
  const __m128d a_swap = _mm_shuffle_pd(a, a, 0x1);
  return _mm_addsub_pd(_mm_mul_pd(a, br), _mm_mul_pd(a_swap, bi));
}

double sum_sse42(const double* x, std::size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    acc01 = _mm_add_pd(acc01, _mm_loadu_pd(x + i));
    acc23 = _mm_add_pd(acc23, _mm_loadu_pd(x + i + 2));
  }
  double total = hsum_tree(acc01, acc23);
  for (std::size_t i = n4; i < n; ++i) total += x[i];
  return total;
}

double dot_sse42(const double* a, const double* b, std::size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    acc01 = _mm_add_pd(acc01,
                       _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    acc23 = _mm_add_pd(
        acc23, _mm_mul_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2)));
  }
  double total = hsum_tree(acc01, acc23);
  for (std::size_t i = n4; i < n; ++i) total += a[i] * b[i];
  return total;
}

void centered_dot_energy_sse42(const double* x, const double* t, double mean,
                               std::size_t n, double* dot_out,
                               double* energy_out) {
  const __m128d mean_v = _mm_set1_pd(mean);
  __m128d dot01 = _mm_setzero_pd();
  __m128d dot23 = _mm_setzero_pd();
  __m128d en01 = _mm_setzero_pd();
  __m128d en23 = _mm_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m128d c01 = _mm_sub_pd(_mm_loadu_pd(x + i), mean_v);
    const __m128d c23 = _mm_sub_pd(_mm_loadu_pd(x + i + 2), mean_v);
    dot01 = _mm_add_pd(dot01, _mm_mul_pd(c01, _mm_loadu_pd(t + i)));
    dot23 = _mm_add_pd(dot23, _mm_mul_pd(c23, _mm_loadu_pd(t + i + 2)));
    en01 = _mm_add_pd(en01, _mm_mul_pd(c01, c01));
    en23 = _mm_add_pd(en23, _mm_mul_pd(c23, c23));
  }
  double total_dot = hsum_tree(dot01, dot23);
  double total_energy = hsum_tree(en01, en23);
  for (std::size_t i = n4; i < n; ++i) {
    const double centered = x[i] - mean;
    total_dot += centered * t[i];
    total_energy += centered * centered;
  }
  *dot_out = total_dot;
  *energy_out = total_energy;
}

void abs_complex_sse42(const Complexd* x, double* out, std::size_t n) {
  const double* p = as_doubles(x);
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    const __m128d v0 = _mm_loadu_pd(p + 2 * i);
    const __m128d v1 = _mm_loadu_pd(p + 2 * i + 2);
    const __m128d sq = _mm_hadd_pd(_mm_mul_pd(v0, v0), _mm_mul_pd(v1, v1));
    _mm_storeu_pd(out + i, _mm_sqrt_pd(sq));
  }
  for (std::size_t i = n2; i < n; ++i) {
    const double re = x[i].real();
    const double im = x[i].imag();
    out[i] = std::sqrt(re * re + im * im);
  }
}

void scale_real_sse42(Complexd* x, double gain, std::size_t n) {
  double* p = as_doubles(x);
  const __m128d g = _mm_set1_pd(gain);
  const std::size_t d = 2 * n;
  for (std::size_t i = 0; i < d; i += 2) {
    _mm_storeu_pd(p + i, _mm_mul_pd(_mm_loadu_pd(p + i), g));
  }
}

void scale_complex_sse42(Complexd* x, Complexd c, std::size_t n) {
  double* p = as_doubles(x);
  const __m128d cv = _mm_setr_pd(c.real(), c.imag());
  for (std::size_t i = 0; i < n; ++i) {
    _mm_storeu_pd(p + 2 * i, cmul1(_mm_loadu_pd(p + 2 * i), cv));
  }
}

void fir_complex_sse42(const Complexd* x, std::size_t n, const double* taps,
                       std::size_t nt, Complexd* out) {
  const double* px = as_doubles(x);
  const std::ptrdiff_t delay = static_cast<std::ptrdiff_t>(nt / 2);
  const std::ptrdiff_t sn = static_cast<std::ptrdiff_t>(n);
  const std::ptrdiff_t snt = static_cast<std::ptrdiff_t>(nt);
  for (std::ptrdiff_t i = 0; i < sn; ++i) {
    const std::ptrdiff_t k_lo =
        i + delay - (sn - 1) > 0 ? i + delay - (sn - 1) : 0;
    const std::ptrdiff_t k_hi = snt - 1 < i + delay ? snt - 1 : i + delay;
    const std::ptrdiff_t m = k_hi - k_lo + 1;
    if (m <= 0) {
      out[static_cast<std::size_t>(i)] = Complexd(0.0, 0.0);
      continue;
    }
    const std::ptrdiff_t mv = m & ~std::ptrdiff_t{1};
    __m128d acc_even = _mm_setzero_pd();
    __m128d acc_odd = _mm_setzero_pd();
    for (std::ptrdiff_t off = 0; off < mv; off += 2) {
      const std::ptrdiff_t k0 = k_lo + off;
      const std::ptrdiff_t idx = i + delay - k0;
      acc_even = _mm_add_pd(
          acc_even,
          _mm_mul_pd(_mm_loadu_pd(px + 2 * idx), _mm_set1_pd(taps[k0])));
      acc_odd = _mm_add_pd(
          acc_odd, _mm_mul_pd(_mm_loadu_pd(px + 2 * (idx - 1)),
                              _mm_set1_pd(taps[k0 + 1])));
    }
    __m128d res = _mm_add_pd(acc_even, acc_odd);
    if (mv != m) {
      const std::ptrdiff_t idx = i + delay - k_hi;
      res = _mm_add_pd(res, _mm_mul_pd(_mm_loadu_pd(px + 2 * idx),
                                       _mm_set1_pd(taps[k_hi])));
    }
    _mm_storeu_pd(as_doubles(out) + 2 * i, res);
  }
}

void butterfly_pass_sse42(Complexd* data, std::size_t n, std::size_t len,
                          const Complexd* tw) {
  double* p = as_doubles(data);
  const std::size_t half = len / 2;
  if (len == 2) {
    for (std::size_t s = 0; s < n; s += 2) {
      const __m128d a = _mm_loadu_pd(p + 2 * s);
      const __m128d b = _mm_loadu_pd(p + 2 * s + 2);
      _mm_storeu_pd(p + 2 * s, _mm_add_pd(a, b));
      _mm_storeu_pd(p + 2 * s + 2, _mm_sub_pd(a, b));
    }
    return;
  }
  const double* ptw = as_doubles(tw);
  for (std::size_t s = 0; s < n; s += len) {
    for (std::size_t k = 0; k < half; ++k) {
      const __m128d even = _mm_loadu_pd(p + 2 * (s + k));
      const __m128d odd =
          cmul1(_mm_loadu_pd(p + 2 * (s + k + half)), _mm_loadu_pd(ptw + 2 * k));
      _mm_storeu_pd(p + 2 * (s + k), _mm_add_pd(even, odd));
      _mm_storeu_pd(p + 2 * (s + k + half), _mm_sub_pd(even, odd));
    }
  }
}

void block_sum_complex_sse42(const Complexd* x, std::size_t nblocks,
                             std::size_t block, Complexd* out) {
  const double* px = as_doubles(x);
  const std::size_t bv = block & ~std::size_t{1};
  for (std::size_t k = 0; k < nblocks; ++k) {
    const double* base = px + 2 * k * block;
    __m128d acc_even = _mm_setzero_pd();
    __m128d acc_odd = _mm_setzero_pd();
    for (std::size_t s = 0; s < bv; s += 2) {
      acc_even = _mm_add_pd(acc_even, _mm_loadu_pd(base + 2 * s));
      acc_odd = _mm_add_pd(acc_odd, _mm_loadu_pd(base + 2 * s + 2));
    }
    __m128d res = _mm_add_pd(acc_even, acc_odd);
    if (bv != block) {
      res = _mm_add_pd(res, _mm_loadu_pd(base + 2 * (block - 1)));
    }
    _mm_storeu_pd(as_doubles(out) + 2 * k, res);
  }
}

void threshold_below_sse42(const double* stats, std::size_t n,
                           double threshold, std::uint8_t* bits) {
  const __m128d thr = _mm_set1_pd(threshold);
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    const int mask =
        _mm_movemask_pd(_mm_cmplt_pd(_mm_loadu_pd(stats + i), thr));
    bits[i] = static_cast<std::uint8_t>(mask & 1);
    bits[i + 1] = static_cast<std::uint8_t>((mask >> 1) & 1);
  }
  for (std::size_t i = n2; i < n; ++i) {
    bits[i] = stats[i] < threshold ? 1 : 0;
  }
}

void squared_distance_sse42(const double* xs, const double* ys, double cx,
                            double cy, std::size_t n, double* out) {
  const __m128d vcx = _mm_set1_pd(cx);
  const __m128d vcy = _mm_set1_pd(cy);
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    const __m128d dx = _mm_sub_pd(_mm_loadu_pd(xs + i), vcx);
    const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ys + i), vcy);
    _mm_storeu_pd(out + i, _mm_add_pd(_mm_mul_pd(dx, dx),
                                      _mm_mul_pd(dy, dy)));
  }
  for (std::size_t i = n2; i < n; ++i) {
    const double dx = xs[i] - cx;
    const double dy = ys[i] - cy;
    out[i] = dx * dx + dy * dy;
  }
}

std::uint64_t count_below_sse42(const double* x, std::size_t n,
                                double threshold) {
  const __m128d thr = _mm_set1_pd(threshold);
  std::uint64_t count = 0;
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    const int mask =
        _mm_movemask_pd(_mm_cmplt_pd(_mm_loadu_pd(x + i), thr));
    count += static_cast<std::uint64_t>(__builtin_popcount(
        static_cast<unsigned>(mask)));
  }
  for (std::size_t i = n2; i < n; ++i) {
    count += x[i] < threshold ? 1u : 0u;
  }
  return count;
}

void mul_complex_sse42(Complexd* x, const Complexd* c, std::size_t n) {
  double* p = as_doubles(x);
  const double* pc = as_doubles(c);
  for (std::size_t i = 0; i < n; ++i) {
    _mm_storeu_pd(p + 2 * i,
                  cmul1(_mm_loadu_pd(p + 2 * i), _mm_loadu_pd(pc + 2 * i)));
  }
}

void iq_imbalance_sse42(Complexd* x, Complexd mu, Complexd nu,
                        std::size_t n) {
  double* p = as_doubles(x);
  const __m128d muv = _mm_setr_pd(mu.real(), mu.imag());
  const __m128d nuv = _mm_setr_pd(nu.real(), nu.imag());
  const __m128d conj_mask = _mm_setr_pd(0.0, -0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d v = _mm_loadu_pd(p + 2 * i);
    const __m128d m = cmul1(v, muv);
    const __m128d w = cmul1(_mm_xor_pd(v, conj_mask), nuv);
    _mm_storeu_pd(p + 2 * i, _mm_add_pd(m, w));
  }
}

void pa_rapp_sse42(Complexd* x, std::size_t n, double inv_sat2, double k_pm,
                   double b_pm) {
  double* p = as_doubles(x);
  const __m128d one = _mm_set1_pd(1.0);
  const __m128d isat = _mm_set1_pd(inv_sat2);
  const __m128d kv = _mm_set1_pd(k_pm);
  const __m128d bv = _mm_set1_pd(b_pm);
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d v = _mm_loadu_pd(p + 2 * i);
    const __m128d sq = _mm_mul_pd(v, v);
    // [im^2 + re^2, ...] in both lanes — addition commutes, so identical
    // to the scalar re*re + im*im.
    const __m128d a2 = _mm_hadd_pd(sq, sq);
    const __m128d u = _mm_mul_pd(a2, isat);
    const __m128d g = _mm_div_pd(
        one, _mm_sqrt_pd(_mm_sqrt_pd(_mm_add_pd(one, _mm_mul_pd(u, u)))));
    const __m128d t = _mm_div_pd(_mm_mul_pd(kv, a2),
                                 _mm_add_pd(one, _mm_mul_pd(bv, a2)));
    const __m128d t2 = _mm_mul_pd(t, t);
    const __m128d iv = _mm_div_pd(one, _mm_add_pd(one, t2));
    const __m128d cr = _mm_mul_pd(_mm_sub_pd(one, t2), iv);
    const __m128d ci = _mm_mul_pd(_mm_add_pd(t, t), iv);
    // Rotation coefficient (cr, ci) then the uniform compression g.
    const __m128d rot = _mm_unpacklo_pd(cr, ci);
    _mm_storeu_pd(p + 2 * i, _mm_mul_pd(cmul1(v, rot), g));
  }
}

void adc_quantize_sse42(Complexd* x, std::size_t n, double clip, double step,
                        double inv_step) {
  double* p = as_doubles(x);
  const __m128d clipv = _mm_set1_pd(clip);
  const __m128d nclipv = _mm_set1_pd(-clip);
  const __m128d stepv = _mm_set1_pd(step);
  const __m128d istepv = _mm_set1_pd(inv_step);
  const __m128d half = _mm_set1_pd(0.5);
  const std::size_t d = 2 * n;
  for (std::size_t i = 0; i < d; i += 2) {
    __m128d v = _mm_loadu_pd(p + i);
    v = _mm_max_pd(_mm_min_pd(v, clipv), nclipv);
    const __m128d q = _mm_floor_pd(_mm_add_pd(_mm_mul_pd(v, istepv), half));
    _mm_storeu_pd(p + i, _mm_mul_pd(q, stepv));
  }
}

std::uint32_t fm0_decode_bytes_sse42(const std::uint8_t* chips,
                                     std::size_t nbits, std::uint8_t* bits) {
  // 16 chips (8 bits) per iteration; the byte lanes continue in 64-bit
  // SWAR registers after the deinterleaving shuffle.
  const __m128i deinterleave = _mm_setr_epi8(0, 2, 4, 6, 8, 10, 12, 14,  //
                                             1, 3, 5, 7, 9, 11, 13, 15);
  constexpr std::uint64_t kOnes = 0x0101010101010101ull;
  std::uint64_t ok = kOnes;
  std::uint8_t prev = 1;
  std::size_t i = 0;
  const std::size_t n8 = nbits & ~std::size_t{7};
  for (; i < n8; i += 8) {
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(chips + 2 * i));
    const __m128i shuf = _mm_shuffle_epi8(raw, deinterleave);
    const std::uint64_t firsts =
        static_cast<std::uint64_t>(_mm_cvtsi128_si64(shuf));
    const std::uint64_t seconds =
        static_cast<std::uint64_t>(_mm_extract_epi64(shuf, 1));
    const std::uint64_t bitv = (firsts ^ seconds) ^ kOnes;
    std::memcpy(bits + i, &bitv, 8);
    const std::uint64_t prevs = (seconds << 8) | prev;
    ok &= firsts ^ prevs;
    prev = static_cast<std::uint8_t>(seconds >> 56);
  }
  std::uint8_t ok_tail = 1;
  for (; i < nbits; ++i) {
    const std::uint8_t first = chips[2 * i];
    const std::uint8_t second = chips[2 * i + 1];
    ok_tail = static_cast<std::uint8_t>(ok_tail & (first ^ prev));
    bits[i] = static_cast<std::uint8_t>((first ^ second) ^ 1u);
    prev = second;
  }
  return (ok == kOnes && ok_tail != 0) ? 1u : 0u;
}

}  // namespace

const Kernels* sse42_table() {
  static const Kernels kTable = {
      "sse4.2",
      &sum_sse42,
      &dot_sse42,
      &centered_dot_energy_sse42,
      &abs_complex_sse42,
      &scale_real_sse42,
      &scale_complex_sse42,
      &fir_complex_sse42,
      &butterfly_pass_sse42,
      &block_sum_complex_sse42,
      &threshold_below_sse42,
      &squared_distance_sse42,
      &count_below_sse42,
      &mul_complex_sse42,
      &iq_imbalance_sse42,
      &pa_rapp_sse42,
      &adc_quantize_sse42,
      &fm0_decode_bytes_sse42,
      &crc16_bits_sliced,
  };
  return &kTable;
}

}  // namespace mmtag::kern::detail

#else  // !defined(__SSE4_2__)

namespace mmtag::kern::detail {
const Kernels* sse42_table() { return nullptr; }
}  // namespace mmtag::kern::detail

#endif
