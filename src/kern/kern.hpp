/// \file
/// \brief Vectorized DSP kernel layer with runtime CPU dispatch.
///
/// Every sample-rate hot loop in the PHY (correlation, FFT butterflies,
/// FIR shaping, CRC, FM0/OOK demod) funnels through the function-pointer
/// table returned by kern::dispatch(). The table is resolved once at
/// startup from the host CPU (scalar / SSE4.2 / AVX2; NEON is a stub that
/// currently aliases scalar) and can be forced with the MMTAG_KERN
/// environment variable or kern::set_backend() (the `--kern` bench flag).
///
/// **Equivalence discipline.** Backends are not "close": for the same
/// inputs every backend must produce the *same bits*. Reductions are
/// specified as a fixed 4-lane tree (lane j accumulates elements
/// j, j+4, j+8, ...; lanes combine as (l0+l2)+(l1+l3); the tail past the
/// last multiple of 4 is added sequentially), complex multiplication is
/// specified as (ar*br - ai*bi, ai*br + ar*bi), and no backend may use
/// FMA contraction. SIMD lanes then perform the identical IEEE-754
/// operations the scalar reference performs, so tests/test_kern.cpp can
/// assert bit-identity (integer kernels) and <=2 ULP (float kernels, 0 in
/// practice) across backends, and `MMTAG_KERN=scalar` reproduces
/// `MMTAG_KERN=auto` runs exactly. See DESIGN.md Sec. 11.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace mmtag::kern {

/// Instruction-set backends selectable at runtime. Order is by
/// preference: higher enumerators win when available.
enum class Backend : int {
  kScalar = 0,  ///< Portable reference implementation (always available).
  kSse42 = 1,   ///< x86-64 SSE4.2 (128-bit lanes).
  kAvx2 = 2,    ///< x86-64 AVX2 (256-bit lanes, no FMA by design).
  kNeon = 3,    ///< AArch64 NEON. Stub: dispatches to scalar kernels.
  kAuto = 4,    ///< Resolve to the best backend the host supports.
};

/// The kernel function-pointer table. One instance exists per backend;
/// phy code calls through `dispatch()` and never names a backend.
///
/// Pointer arguments never need alignment beyond the element type's, and
/// in-place operation is only allowed where a parameter says so. Complex
/// buffers are standard `std::complex<double>` arrays (interleaved
/// re/im), which the SIMD backends reinterpret as double pairs as
/// guaranteed by [complex.numbers.general].
struct Kernels {
  /// Human-readable backend name ("scalar", "sse4.2", "avx2", "neon").
  const char* name;

  // --- Reductions (fixed 4-lane tree; see file comment). ---

  /// Sum of `x[0..n)`.
  double (*sum)(const double* x, std::size_t n);

  /// Dot product sum of `a[i] * b[i]`. With `a == b` this is a sum of
  /// squares (used for waveform energy via the re/im-interleaved view).
  double (*dot)(const double* a, const double* b, std::size_t n);

  /// Correlation inner step: writes `sum((x[i]-mean) * t[i])` to
  /// `*dot_out` and `sum((x[i]-mean)^2)` to `*energy_out` in one pass.
  void (*centered_dot_energy)(const double* x, const double* t, double mean,
                              std::size_t n, double* dot_out,
                              double* energy_out);

  // --- Elementwise maps (no reduction; order per element). ---

  /// `out[i] = sqrt(re^2 + im^2)`. Envelope magnitude without the
  /// overflow guard of std::abs — baseband amplitudes are O(1).
  void (*abs_complex)(const std::complex<double>* x, double* out,
                      std::size_t n);

  /// In-place `x[i] *= gain` (both components).
  void (*scale_real)(std::complex<double>* x, double gain, std::size_t n);

  /// In-place `x[i] *= c` with the specified complex-multiply formula.
  void (*scale_complex)(std::complex<double>* x, std::complex<double> c,
                        std::size_t n);

  // --- Filtering / transforms. ---

  /// "Same"-aligned FIR with real taps: for each output index `i`,
  /// `out[i] = sum_k taps[k] * x[i + nt/2 - k]` over the in-range `k`,
  /// accumulated even-k-lane + odd-k-lane (relative to the first valid
  /// k) then tail. `out` must not alias `x`.
  void (*fir_complex)(const std::complex<double>* x, std::size_t n,
                      const double* taps, std::size_t nt,
                      std::complex<double>* out);

  /// One radix-2 DIT butterfly stage over the whole array: for every
  /// group `s` (multiple of `len`) and `k < len/2`,
  ///   odd = data[s+k+len/2] * tw[k];
  ///   data[s+k+len/2] = data[s+k] - odd;
  ///   data[s+k]      += odd.
  /// `tw` holds the stage's `len/2` twiddles (from phy's size-keyed
  /// cache). `n` and `len` are powers of two, `len >= 2`, `len <= n`.
  void (*butterfly_pass)(std::complex<double>* data, std::size_t n,
                         std::size_t len, const std::complex<double>* tw);

  // --- Modem. ---

  /// Integrate-and-dump: `out[k] = sum of x[k*block .. k*block+block)`,
  /// accumulated even-lane + odd-lane + tail (complex 2-lane tree).
  void (*block_sum_complex)(const std::complex<double>* x,
                            std::size_t nblocks, std::size_t block,
                            std::complex<double>* out);

  /// Hard slicer: `bits[i] = stats[i] < threshold ? 1 : 0`.
  void (*threshold_below)(const double* stats, std::size_t n,
                          double threshold, std::uint8_t* bits);

  // --- Batched geometry (scale layer slabs). ---

  /// `out[i] = (xs[i]-cx)^2 + (ys[i]-cy)^2`. Per-element order
  /// (sub, sub, mul, mul, add — no FMA), so SIMD lanes reproduce the
  /// scalar bits exactly. The squared-distance domain is where the scale
  /// layer evaluates detection and rate tiers (a monostatic backscatter
  /// budget is monotonic in distance, so power thresholds become r^2
  /// thresholds and no per-element log10 is needed).
  void (*squared_distance)(const double* xs, const double* ys, double cx,
                           double cy, std::size_t n, double* out);

  /// Number of `x[i] < threshold` over `x[0..n)`. Integer count —
  /// order-independent, hence trivially bit-identical across backends.
  std::uint64_t (*count_below)(const double* x, std::size_t n,
                               double threshold);

  // --- Impairment stages (src/impair receive-chain realism). ---

  /// Elementwise complex Hadamard product `x[i] *= c[i]` with the
  /// specified complex-multiply formula. Applies precomputed unit-norm
  /// rotation trajectories (oscillator phase noise) without transcendental
  /// functions in the kernel, so backends stay bit-identical.
  void (*mul_complex)(std::complex<double>* x, const std::complex<double>* c,
                      std::size_t n);

  /// Receive-side IQ imbalance `x[i] = mu*x[i] + nu*conj(x[i])` with both
  /// products expanded by the specified complex-multiply formula and the
  /// two results added componentwise (mu-product first).
  void (*iq_imbalance)(std::complex<double>* x, std::complex<double> mu,
                       std::complex<double> nu, std::size_t n);

  /// Rapp PA (smoothness p = 2) with a rational tangent-half-angle AM/PM
  /// rotation. Per element, with `a2 = re*re + im*im`:
  ///   u  = a2 * inv_sat2;            g = 1 / sqrt(sqrt(1 + u*u));
  ///   t  = (k_pm * a2) / (1 + b_pm * a2);
  ///   iv = 1 / (1 + t*t);  cr = (1 - t*t) * iv;  ci = (t + t) * iv;
  ///   x  = (cmul(x, (cr, ci)).re * g, cmul(x, (cr, ci)).im * g).
  /// Only +,-,*,/ and sqrt (all exactly rounded), so SIMD lanes reproduce
  /// the scalar bits. The rotation angle is 2*atan(t) by construction —
  /// see src/impair/stages.hpp for the calibration story.
  void (*pa_rapp)(std::complex<double>* x, std::size_t n, double inv_sat2,
                  double k_pm, double b_pm);

  /// Mid-tread ADC: per real component (2n doubles),
  ///   v = v > clip ? clip : v;  v = v < -clip ? -clip : v;
  ///   v = floor(v * inv_step + 0.5) * step.
  /// floor rounds toward -inf in every backend (vroundpd); inputs are
  /// finite baseband samples (no NaN contract).
  void (*adc_quantize)(std::complex<double>* x, std::size_t n, double clip,
                       double step, double inv_step);

  /// Branch-free FM0 decode of `2*nbits` chip bytes (0/1 each) into
  /// `nbits` bit bytes. Returns 1 when the chip stream is a valid FM0
  /// sequence from the idle-high convention (every bit boundary
  /// inverts), else 0 (the bit output is then meaningless).
  std::uint32_t (*fm0_decode_bytes)(const std::uint8_t* chips,
                                    std::size_t nbits, std::uint8_t* bits);

  // --- Integer. ---

  /// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, MSB-first) over
  /// `nbits` bits packed MSB-first into `bytes`. Bit-exact across
  /// backends; accelerated backends use slicing-by-8 over whole bytes.
  std::uint16_t (*crc16_bits)(const std::uint8_t* bytes, std::size_t nbits);
};

/// The active kernel table. First use resolves the MMTAG_KERN
/// environment variable ("scalar", "sse4.2", "avx2", "neon", "auto";
/// unset or invalid means "auto") against the host CPU; later calls are
/// a single atomic load. Thread-safe.
[[nodiscard]] const Kernels& dispatch();

/// The table for a specific backend (kAuto resolves to
/// best_available()). Requesting an unavailable backend returns the
/// scalar table. Intended for tests and per-backend benchmarks;
/// production code should call dispatch().
[[nodiscard]] const Kernels& table(Backend backend);

/// True when the host CPU can execute `backend` (kScalar and kAuto are
/// always true; kNeon is the scalar stub on AArch64 only).
[[nodiscard]] bool available(Backend backend);

/// The strongest available backend on this host.
[[nodiscard]] Backend best_available();

/// Force the dispatch() table. kAuto re-resolves MMTAG_KERN / the CPU.
/// Returns false (and leaves dispatch() unchanged) when `backend` is not
/// available on this host.
bool set_backend(Backend backend);

/// Backend currently served by dispatch() (resolving it if needed).
[[nodiscard]] Backend active_backend();

/// Parse a backend name as accepted by MMTAG_KERN / --kern. Accepts
/// "scalar", "sse4.2"/"sse42"/"sse4", "avx2", "neon", "auto"; returns
/// nullopt otherwise.
[[nodiscard]] std::optional<Backend> parse_backend(std::string_view name);

/// Canonical name for `backend` ("auto" for kAuto).
[[nodiscard]] std::string_view backend_name(Backend backend);

}  // namespace mmtag::kern
