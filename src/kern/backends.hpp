// Internal wiring between the dispatcher and the per-ISA translation
// units. Each backend TU exposes its table through one getter; TUs for
// ISAs the build cannot target still compile (their getter returns
// nullptr) so the CMake logic stays trivial. The scalar kernels are
// also exported individually so partial backends can fall back per
// kernel without duplicating code.
#pragma once

#include "src/kern/kern.hpp"

namespace mmtag::kern::detail {

// Full reference table; never nullptr.
[[nodiscard]] const Kernels* scalar_table();
// nullptr when the compiler could not target the ISA.
[[nodiscard]] const Kernels* sse42_table();
[[nodiscard]] const Kernels* avx2_table();
[[nodiscard]] const Kernels* neon_table();

// Scalar kernels, reusable by partial SIMD backends.
namespace scalar {
double sum(const double* x, std::size_t n);
double dot(const double* a, const double* b, std::size_t n);
void centered_dot_energy(const double* x, const double* t, double mean,
                         std::size_t n, double* dot_out, double* energy_out);
void abs_complex(const std::complex<double>* x, double* out, std::size_t n);
void scale_real(std::complex<double>* x, double gain, std::size_t n);
void scale_complex(std::complex<double>* x, std::complex<double> c,
                   std::size_t n);
void fir_complex(const std::complex<double>* x, std::size_t n,
                 const double* taps, std::size_t nt,
                 std::complex<double>* out);
void butterfly_pass(std::complex<double>* data, std::size_t n,
                    std::size_t len, const std::complex<double>* tw);
void block_sum_complex(const std::complex<double>* x, std::size_t nblocks,
                       std::size_t block, std::complex<double>* out);
void threshold_below(const double* stats, std::size_t n, double threshold,
                     std::uint8_t* bits);
void squared_distance(const double* xs, const double* ys, double cx,
                      double cy, std::size_t n, double* out);
std::uint64_t count_below(const double* x, std::size_t n, double threshold);
void mul_complex(std::complex<double>* x, const std::complex<double>* c,
                 std::size_t n);
void iq_imbalance(std::complex<double>* x, std::complex<double> mu,
                  std::complex<double> nu, std::size_t n);
void pa_rapp(std::complex<double>* x, std::size_t n, double inv_sat2,
             double k_pm, double b_pm);
void adc_quantize(std::complex<double>* x, std::size_t n, double clip,
                  double step, double inv_step);
std::uint32_t fm0_decode_bytes(const std::uint8_t* chips, std::size_t nbits,
                               std::uint8_t* bits);
std::uint16_t crc16_bits(const std::uint8_t* bytes, std::size_t nbits);
}  // namespace scalar

// Shared by the SSE4.2 and AVX2 backends: slicing-by-8 CRC-16/CCITT over
// whole bytes plus a bitwise tail. Bit-exact with scalar::crc16_bits.
std::uint16_t crc16_bits_sliced(const std::uint8_t* bytes, std::size_t nbits);

}  // namespace mmtag::kern::detail
