// Reference backend. Every kernel here *defines* the arithmetic DAG the
// SIMD backends must reproduce bit-for-bit: reductions use the 4-lane
// tree from kern.hpp, complex products use the (ar*br - ai*bi,
// ai*br + ar*bi) formula, and nothing may be contracted into FMA. This
// TU is built with auto-vectorization disabled (see CMakeLists.txt) so
// "scalar" in benchmarks genuinely means one lane.
#include <algorithm>
#include <cmath>

#include "src/kern/backends.hpp"
#include "src/kern/crc_tables.hpp"

namespace mmtag::kern::detail::scalar {

namespace {

using Complexd = std::complex<double>;

// The specified complex product (do not replace with std::complex
// operator*: its NaN-recovery path and formula must not leak into the
// kernel contract).
inline Complexd cmul(Complexd a, Complexd b) {
  return Complexd(a.real() * b.real() - a.imag() * b.imag(),
                  a.imag() * b.real() + a.real() * b.imag());
}

}  // namespace

double sum(const double* x, std::size_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    acc[0] += x[i];
    acc[1] += x[i + 1];
    acc[2] += x[i + 2];
    acc[3] += x[i + 3];
  }
  double total = (acc[0] + acc[2]) + (acc[1] + acc[3]);
  for (std::size_t i = n4; i < n; ++i) total += x[i];
  return total;
}

double dot(const double* a, const double* b, std::size_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    acc[0] += a[i] * b[i];
    acc[1] += a[i + 1] * b[i + 1];
    acc[2] += a[i + 2] * b[i + 2];
    acc[3] += a[i + 3] * b[i + 3];
  }
  double total = (acc[0] + acc[2]) + (acc[1] + acc[3]);
  for (std::size_t i = n4; i < n; ++i) total += a[i] * b[i];
  return total;
}

void centered_dot_energy(const double* x, const double* t, double mean,
                         std::size_t n, double* dot_out,
                         double* energy_out) {
  double acc_dot[4] = {0.0, 0.0, 0.0, 0.0};
  double acc_energy[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    for (std::size_t j = 0; j < 4; ++j) {
      const double centered = x[i + j] - mean;
      acc_dot[j] += centered * t[i + j];
      acc_energy[j] += centered * centered;
    }
  }
  double total_dot = (acc_dot[0] + acc_dot[2]) + (acc_dot[1] + acc_dot[3]);
  double total_energy =
      (acc_energy[0] + acc_energy[2]) + (acc_energy[1] + acc_energy[3]);
  for (std::size_t i = n4; i < n; ++i) {
    const double centered = x[i] - mean;
    total_dot += centered * t[i];
    total_energy += centered * centered;
  }
  *dot_out = total_dot;
  *energy_out = total_energy;
}

void abs_complex(const Complexd* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double re = x[i].real();
    const double im = x[i].imag();
    out[i] = std::sqrt(re * re + im * im);
  }
}

void scale_real(Complexd* x, double gain, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = Complexd(x[i].real() * gain, x[i].imag() * gain);
  }
}

void scale_complex(Complexd* x, Complexd c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = cmul(x[i], c);
}

void fir_complex(const Complexd* x, std::size_t n, const double* taps,
                 std::size_t nt, Complexd* out) {
  const std::ptrdiff_t delay = static_cast<std::ptrdiff_t>(nt / 2);
  const std::ptrdiff_t sn = static_cast<std::ptrdiff_t>(n);
  const std::ptrdiff_t snt = static_cast<std::ptrdiff_t>(nt);
  for (std::ptrdiff_t i = 0; i < sn; ++i) {
    const std::ptrdiff_t k_lo = std::max<std::ptrdiff_t>(0, i + delay - (sn - 1));
    const std::ptrdiff_t k_hi = std::min<std::ptrdiff_t>(snt - 1, i + delay);
    const std::ptrdiff_t m = k_hi - k_lo + 1;
    if (m <= 0) {
      out[static_cast<std::size_t>(i)] = Complexd(0.0, 0.0);
      continue;
    }
    const std::ptrdiff_t mv = m & ~std::ptrdiff_t{1};
    double ar = 0.0, ai = 0.0, br = 0.0, bi = 0.0;
    for (std::ptrdiff_t off = 0; off < mv; off += 2) {
      const std::ptrdiff_t k0 = k_lo + off;
      const Complexd x0 = x[static_cast<std::size_t>(i + delay - k0)];
      const Complexd x1 = x[static_cast<std::size_t>(i + delay - k0 - 1)];
      ar += taps[k0] * x0.real();
      ai += taps[k0] * x0.imag();
      br += taps[k0 + 1] * x1.real();
      bi += taps[k0 + 1] * x1.imag();
    }
    double re = ar + br;
    double im = ai + bi;
    if (mv != m) {
      const Complexd xt = x[static_cast<std::size_t>(i + delay - k_hi)];
      re += taps[k_hi] * xt.real();
      im += taps[k_hi] * xt.imag();
    }
    out[static_cast<std::size_t>(i)] = Complexd(re, im);
  }
}

void butterfly_pass(Complexd* data, std::size_t n, std::size_t len,
                    const Complexd* tw) {
  const std::size_t half = len / 2;
  if (len == 2) {
    for (std::size_t s = 0; s < n; s += 2) {
      const Complexd a = data[s];
      const Complexd b = data[s + 1];
      data[s] = Complexd(a.real() + b.real(), a.imag() + b.imag());
      data[s + 1] = Complexd(a.real() - b.real(), a.imag() - b.imag());
    }
    return;
  }
  for (std::size_t s = 0; s < n; s += len) {
    for (std::size_t k = 0; k < half; ++k) {
      const Complexd even = data[s + k];
      const Complexd odd = cmul(data[s + k + half], tw[k]);
      data[s + k] =
          Complexd(even.real() + odd.real(), even.imag() + odd.imag());
      data[s + k + half] =
          Complexd(even.real() - odd.real(), even.imag() - odd.imag());
    }
  }
}

void block_sum_complex(const Complexd* x, std::size_t nblocks,
                       std::size_t block, Complexd* out) {
  const std::size_t bv = block & ~std::size_t{1};
  for (std::size_t k = 0; k < nblocks; ++k) {
    const Complexd* base = x + k * block;
    double er = 0.0, ei = 0.0, orr = 0.0, oi = 0.0;
    for (std::size_t s = 0; s < bv; s += 2) {
      er += base[s].real();
      ei += base[s].imag();
      orr += base[s + 1].real();
      oi += base[s + 1].imag();
    }
    double re = er + orr;
    double im = ei + oi;
    if (bv != block) {
      re += base[block - 1].real();
      im += base[block - 1].imag();
    }
    out[k] = Complexd(re, im);
  }
}

void threshold_below(const double* stats, std::size_t n, double threshold,
                     std::uint8_t* bits) {
  for (std::size_t i = 0; i < n; ++i) {
    bits[i] = stats[i] < threshold ? 1 : 0;
  }
}

void squared_distance(const double* xs, const double* ys, double cx,
                      double cy, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - cx;
    const double dy = ys[i] - cy;
    out[i] = dx * dx + dy * dy;
  }
}

std::uint64_t count_below(const double* x, std::size_t n, double threshold) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += x[i] < threshold ? 1u : 0u;
  }
  return count;
}

void mul_complex(Complexd* x, const Complexd* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = cmul(x[i], c[i]);
}

void iq_imbalance(Complexd* x, Complexd mu, Complexd nu, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const Complexd m = cmul(x[i], mu);
    const Complexd v = cmul(Complexd(x[i].real(), -x[i].imag()), nu);
    x[i] = Complexd(m.real() + v.real(), m.imag() + v.imag());
  }
}

void pa_rapp(Complexd* x, std::size_t n, double inv_sat2, double k_pm,
             double b_pm) {
  for (std::size_t i = 0; i < n; ++i) {
    const double re = x[i].real();
    const double im = x[i].imag();
    const double a2 = re * re + im * im;
    const double u = a2 * inv_sat2;
    const double g = 1.0 / std::sqrt(std::sqrt(1.0 + u * u));
    const double t = (k_pm * a2) / (1.0 + b_pm * a2);
    const double iv = 1.0 / (1.0 + t * t);
    const double cr = (1.0 - t * t) * iv;
    const double ci = (t + t) * iv;
    x[i] = Complexd((re * cr - im * ci) * g, (im * cr + re * ci) * g);
  }
}

void adc_quantize(Complexd* x, std::size_t n, double clip, double step,
                  double inv_step) {
  double* p = reinterpret_cast<double*>(x);
  const std::size_t d = 2 * n;
  for (std::size_t i = 0; i < d; ++i) {
    double v = p[i];
    v = v > clip ? clip : v;
    v = v < -clip ? -clip : v;
    p[i] = std::floor(v * inv_step + 0.5) * step;
  }
}

std::uint32_t fm0_decode_bytes(const std::uint8_t* chips, std::size_t nbits,
                               std::uint8_t* bits) {
  std::uint8_t ok = 1;
  std::uint8_t prev = 1;  // Idle-high convention before the first bit.
  for (std::size_t i = 0; i < nbits; ++i) {
    const std::uint8_t first = chips[2 * i];
    const std::uint8_t second = chips[2 * i + 1];
    ok = static_cast<std::uint8_t>(ok & (first ^ prev));
    bits[i] = static_cast<std::uint8_t>((first ^ second) ^ 1u);
    prev = second;
  }
  return ok;
}

std::uint16_t crc16_bits(const std::uint8_t* bytes, std::size_t nbits) {
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < nbits; ++i) {
    const std::uint8_t bit = (bytes[i / 8] >> (7 - (i % 8))) & 1u;
    const bool msb = (crc & 0x8000) != 0;
    crc = static_cast<std::uint16_t>(crc << 1);
    if (msb != (bit != 0)) crc ^= kCrc16Poly;
  }
  return crc;
}

}  // namespace mmtag::kern::detail::scalar

namespace mmtag::kern::detail {

std::uint16_t crc16_bits_sliced(const std::uint8_t* bytes,
                                std::size_t nbits) {
  std::uint16_t crc = 0xFFFF;
  const std::size_t nbytes = nbits / 8;
  std::size_t i = 0;
  // Fold eight stream bytes per round; the running 16-bit state only
  // touches the first two.
  for (; i + 8 <= nbytes; i += 8) {
    const auto& t = kCrc16Tables;
    crc = static_cast<std::uint16_t>(
        t[7][static_cast<std::uint8_t>(bytes[i] ^ (crc >> 8))] ^
        t[6][static_cast<std::uint8_t>(bytes[i + 1] ^ (crc & 0xFF))] ^
        t[5][bytes[i + 2]] ^ t[4][bytes[i + 3]] ^ t[3][bytes[i + 4]] ^
        t[2][bytes[i + 5]] ^ t[1][bytes[i + 6]] ^ t[0][bytes[i + 7]]);
  }
  for (; i < nbytes; ++i) {
    crc = static_cast<std::uint16_t>(
        (crc << 8) ^ kCrc16Tables[0][static_cast<std::uint8_t>(
                         (crc >> 8) ^ bytes[i])]);
  }
  for (std::size_t b = nbytes * 8; b < nbits; ++b) {
    const std::uint8_t bit = (bytes[b / 8] >> (7 - (b % 8))) & 1u;
    const bool msb = (crc & 0x8000) != 0;
    crc = static_cast<std::uint16_t>(crc << 1);
    if (msb != (bit != 0)) crc ^= kCrc16Poly;
  }
  return crc;
}

const Kernels* scalar_table() {
  static const Kernels kTable = {
      "scalar",
      &scalar::sum,
      &scalar::dot,
      &scalar::centered_dot_energy,
      &scalar::abs_complex,
      &scalar::scale_real,
      &scalar::scale_complex,
      &scalar::fir_complex,
      &scalar::butterfly_pass,
      &scalar::block_sum_complex,
      &scalar::threshold_below,
      &scalar::squared_distance,
      &scalar::count_below,
      &scalar::mul_complex,
      &scalar::iq_imbalance,
      &scalar::pa_rapp,
      &scalar::adc_quantize,
      &scalar::fm0_decode_bytes,
      &scalar::crc16_bits,
  };
  return &kTable;
}

}  // namespace mmtag::kern::detail
