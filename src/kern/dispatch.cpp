// Runtime backend resolution. The active table is one atomic pointer;
// first use resolves MMTAG_KERN against the host CPU, set_backend()
// swaps it (benches force per-backend runs, ctest forces scalar vs auto
// through the environment). Resolution is idempotent, so the benign race
// of two threads resolving simultaneously converges to the same table.
#include "src/kern/backends.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mmtag::kern {

namespace {

std::atomic<const Kernels*> g_active{nullptr};

bool cpu_supports(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
    case Backend::kAuto:
      return true;
    case Backend::kSse42:
#if defined(__x86_64__) || defined(__i386__)
      return detail::sse42_table() != nullptr &&
             __builtin_cpu_supports("sse4.2");
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return detail::avx2_table() != nullptr && __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Backend::kNeon:
      return detail::neon_table() != nullptr;
  }
  return false;
}

const Kernels* concrete_table(Backend backend) {
  switch (backend) {
    case Backend::kSse42:
      return detail::sse42_table();
    case Backend::kAvx2:
      return detail::avx2_table();
    case Backend::kNeon:
      return detail::neon_table();
    case Backend::kScalar:
    case Backend::kAuto:
      break;
  }
  return detail::scalar_table();
}

const Kernels* resolve_auto() {
  const char* env = std::getenv("MMTAG_KERN");
  Backend choice = Backend::kAuto;
  if (env != nullptr && *env != '\0') {
    if (const auto parsed = parse_backend(env); parsed.has_value()) {
      choice = *parsed;
    } else {
      std::fprintf(stderr,
                   "mmtag: ignoring unknown MMTAG_KERN=\"%s\" "
                   "(want scalar|sse4.2|avx2|neon|auto)\n",
                   env);
    }
  }
  if (choice == Backend::kAuto || !cpu_supports(choice)) {
    if (choice != Backend::kAuto) {
      std::fprintf(stderr,
                   "mmtag: MMTAG_KERN=%s not available on this host; "
                   "using %s\n",
                   std::string(backend_name(choice)).c_str(),
                   std::string(backend_name(best_available())).c_str());
    }
    choice = best_available();
  }
  return concrete_table(choice);
}

}  // namespace

const Kernels& dispatch() {
  const Kernels* active = g_active.load(std::memory_order_acquire);
  if (active == nullptr) {
    active = resolve_auto();
    g_active.store(active, std::memory_order_release);
  }
  return *active;
}

const Kernels& table(Backend backend) {
  if (backend == Backend::kAuto) backend = best_available();
  if (!cpu_supports(backend)) return *detail::scalar_table();
  return *concrete_table(backend);
}

bool available(Backend backend) { return cpu_supports(backend); }

Backend best_available() {
  if (cpu_supports(Backend::kAvx2)) return Backend::kAvx2;
  if (cpu_supports(Backend::kSse42)) return Backend::kSse42;
  if (cpu_supports(Backend::kNeon)) return Backend::kNeon;
  return Backend::kScalar;
}

bool set_backend(Backend backend) {
  if (backend == Backend::kAuto) {
    g_active.store(resolve_auto(), std::memory_order_release);
    return true;
  }
  if (!cpu_supports(backend)) return false;
  g_active.store(concrete_table(backend), std::memory_order_release);
  return true;
}

Backend active_backend() {
  const Kernels& active = dispatch();
  if (&active == detail::avx2_table()) return Backend::kAvx2;
  if (&active == detail::sse42_table()) return Backend::kSse42;
  if (&active == detail::neon_table()) return Backend::kNeon;
  return Backend::kScalar;
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "sse4.2" || name == "sse42" || name == "sse4") {
    return Backend::kSse42;
  }
  if (name == "avx2") return Backend::kAvx2;
  if (name == "neon") return Backend::kNeon;
  if (name == "auto") return Backend::kAuto;
  return std::nullopt;
}

std::string_view backend_name(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse42:
      return "sse4.2";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
    case Backend::kAuto:
      return "auto";
  }
  return "scalar";
}

}  // namespace mmtag::kern
