// Two-way backscatter link budget (the "radar equation" form used to model
// Fig. 7 of the paper).
//
// A backscatter link traverses the channel twice:
//
//   reader TX --(FSPL fwd)--> tag --(modulation + retro gain)--(FSPL rev)-->
//   reader RX
//
// so the received tag power is
//
//   P_rx = P_tx + G_reader_tx + G_tag_rx - FSPL(d_fwd)
//              + G_tag_tx - L_mod - L_impl - FSPL(d_rev) + G_reader_rx.
//
// For the monostatic case (d_fwd == d_rev == d) the slope is 40 dB/decade,
// which is the dominant shape of Fig. 7. `implementation_loss_db` is the one
// calibrated constant (see DESIGN.md Sec. 4) covering substrate, switch
// insertion and polarization losses of the physical prototype.
#pragma once

namespace mmtag::phys {

/// Parameters of a two-way backscatter link.
struct BackscatterLinkBudget {
  double tx_power_dbm = 13.0;          ///< Reader TX power (20 mW -> 13 dBm).
  double reader_tx_gain_dbi = 20.0;    ///< Reader transmit-horn gain.
  double reader_rx_gain_dbi = 20.0;    ///< Reader receive-horn gain.
  double tag_rx_gain_dbi = 12.0;       ///< Tag array gain, incident side.
  double tag_tx_gain_dbi = 12.0;       ///< Tag array gain, re-radiated side.
  double modulation_loss_db = 3.0;     ///< OOK: half the time absorbing.
  double implementation_loss_db = 14.0;///< Calibrated prototype losses.
  double frequency_hz = 24.0e9;        ///< Carrier.

  /// Budget matching the paper's prototype (Sec. 7 + DESIGN.md Sec. 4).
  [[nodiscard]] static BackscatterLinkBudget mmtag_prototype();

  /// Received tag power at the reader for a monostatic link of length
  /// `distance_m` [dBm].
  [[nodiscard]] double received_power_dbm(double distance_m) const;

  /// Received tag power for a bistatic link: forward path `d_forward_m`,
  /// reverse path `d_reverse_m` [dBm]. Used for NLOS paths where the
  /// reflected route differs from the geometric distance.
  [[nodiscard]] double received_power_bistatic_dbm(double d_forward_m,
                                                   double d_reverse_m) const;

  /// Largest monostatic range [m] at which the received power still meets
  /// `required_power_dbm`. Solves the 40 dB/decade budget in closed form.
  [[nodiscard]] double max_range_m(double required_power_dbm) const;

  /// Sum of all fixed (distance-independent) gains minus losses [dB].
  [[nodiscard]] double fixed_gains_db() const;
};

}  // namespace mmtag::phys
