// Physical constants used throughout the mmTag simulation.
//
// All values are CODATA 2018 (exact where the SI redefinition made them so).
// Everything in this library is strict SI unless a name says otherwise
// (e.g. *_dbm, *_ghz, *_ft).
#pragma once

namespace mmtag::phys {

/// Speed of light in vacuum [m/s]. Exact by SI definition.
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Boltzmann constant [J/K]. Exact by SI definition.
inline constexpr double kBoltzmann = 1.380'649e-23;

/// Reference "room" temperature used by the paper's noise-floor footnote [K].
inline constexpr double kRoomTemperatureK = 300.0;

/// Standard noise-reference temperature T0 used for noise-figure math [K].
inline constexpr double kStandardNoiseTemperatureK = 290.0;

/// Characteristic impedance assumed by all S-parameter math [ohm].
inline constexpr double kReferenceImpedanceOhm = 50.0;

/// Pi, to double precision.
inline constexpr double kPi = 3.141592653589793238462643383279502884;

/// 2*Pi, the full circle in radians.
inline constexpr double kTwoPi = 2.0 * kPi;

// ---------------------------------------------------------------------------
// mmTag system constants (paper Sec. 7 "Implementation").
// ---------------------------------------------------------------------------

/// Carrier frequency of the prototype: centre of the 24 GHz ISM band [Hz].
inline constexpr double kMmTagCarrierHz = 24.0e9;

/// Reader peak transmit power: 20 mW (paper Sec. 7) [W].
inline constexpr double kMmTagReaderTxPowerW = 20.0e-3;

/// Receiver noise figure assumed by the paper's noise floors (footnote 4) [dB].
inline constexpr double kMmTagReaderNoiseFigureDb = 5.0;

/// Number of antenna elements on the prototype tag (paper Sec. 7).
inline constexpr int kMmTagPrototypeElements = 6;

/// Beamwidth the paper reports for the 6-element prototype [deg].
inline constexpr double kMmTagPrototypeBeamwidthDeg = 20.0;

/// SNR required by ASK/OOK for BER 1e-3 (paper Sec. 8, citing [12]) [dB].
inline constexpr double kAskSnrForBer1e3Db = 7.0;

}  // namespace mmtag::phys
