#include "src/phys/link_budget.hpp"

#include <cassert>
#include <cmath>

#include "src/phys/constants.hpp"
#include "src/phys/pathloss.hpp"
#include "src/phys/units.hpp"

namespace mmtag::phys {

BackscatterLinkBudget BackscatterLinkBudget::mmtag_prototype() {
  BackscatterLinkBudget budget;
  budget.tx_power_dbm = watts_to_dbm(kMmTagReaderTxPowerW);
  budget.frequency_hz = kMmTagCarrierHz;
  return budget;
}

double BackscatterLinkBudget::fixed_gains_db() const {
  return reader_tx_gain_dbi + reader_rx_gain_dbi + tag_rx_gain_dbi +
         tag_tx_gain_dbi - modulation_loss_db - implementation_loss_db;
}

double BackscatterLinkBudget::received_power_dbm(double distance_m) const {
  return received_power_bistatic_dbm(distance_m, distance_m);
}

double BackscatterLinkBudget::received_power_bistatic_dbm(
    double d_forward_m, double d_reverse_m) const {
  assert(d_forward_m > 0.0);
  assert(d_reverse_m > 0.0);
  return tx_power_dbm + fixed_gains_db() -
         free_space_path_loss_db(d_forward_m, frequency_hz) -
         free_space_path_loss_db(d_reverse_m, frequency_hz);
}

double BackscatterLinkBudget::max_range_m(double required_power_dbm) const {
  // P_rx(d) = P_tx + G_fixed - 2 * FSPL(d); FSPL(d) = A + 20 log10(d) with
  // A = 20 log10(4 pi f / c). Solve P_rx(d) = required for d.
  const double a_db =
      20.0 * std::log10(4.0 * kPi * frequency_hz / kSpeedOfLight);
  const double margin_db =
      tx_power_dbm + fixed_gains_db() - 2.0 * a_db - required_power_dbm;
  return std::pow(10.0, margin_db / 40.0);
}

}  // namespace mmtag::phys
