#include "src/phys/pathloss.hpp"

#include <cassert>
#include <cmath>

#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"

namespace mmtag::phys {

double free_space_path_loss_db(double distance_m, double frequency_hz) {
  assert(distance_m > 0.0);
  assert(frequency_hz > 0.0);
  const double lambda = wavelength_m(frequency_hz);
  return 20.0 * std::log10(4.0 * kPi * distance_m / lambda);
}

double free_space_gain_linear(double distance_m, double frequency_hz) {
  return db_to_ratio(-free_space_path_loss_db(distance_m, frequency_hz));
}

double friis_received_power_dbm(double tx_power_dbm, double tx_gain_dbi,
                                double rx_gain_dbi, double distance_m,
                                double frequency_hz) {
  return tx_power_dbm + tx_gain_dbi + rx_gain_dbi -
         free_space_path_loss_db(distance_m, frequency_hz);
}

double effective_aperture_m2(double gain_dbi, double frequency_hz) {
  const double lambda = wavelength_m(frequency_hz);
  return db_to_ratio(gain_dbi) * lambda * lambda / (4.0 * kPi);
}

double aperture_to_gain_dbi(double aperture_m2, double frequency_hz) {
  assert(aperture_m2 > 0.0);
  const double lambda = wavelength_m(frequency_hz);
  return ratio_to_db(aperture_m2 * 4.0 * kPi / (lambda * lambda));
}

}  // namespace mmtag::phys
