// Free-space propagation: Friis path loss and aperture/gain relations.
//
// mmWave signals "decay very quickly with distance" (paper Sec. 2.2) only in
// the sense that a fixed-gain antenna's effective aperture shrinks with
// wavelength; the Friis equation captures this through the (lambda/4*pi*d)^2
// term. All of Fig. 7's range behaviour comes from applying this model twice
// (reader->tag and tag->reader).
#pragma once

namespace mmtag::phys {

/// One-way free-space path loss (FSPL) as a positive dB value:
///   FSPL = 20 log10(4 * pi * d / lambda).
/// `distance_m` and `frequency_hz` must be positive.
[[nodiscard]] double free_space_path_loss_db(double distance_m,
                                             double frequency_hz);

/// Linear power gain of the free-space channel, i.e. 1 / FSPL_linear.
[[nodiscard]] double free_space_gain_linear(double distance_m,
                                            double frequency_hz);

/// Friis transmission: received power [dBm] over a one-way link.
///   P_rx = P_tx + G_tx + G_rx - FSPL(d).
[[nodiscard]] double friis_received_power_dbm(double tx_power_dbm,
                                              double tx_gain_dbi,
                                              double rx_gain_dbi,
                                              double distance_m,
                                              double frequency_hz);

/// Effective aperture [m^2] of an antenna with gain `gain_dbi` at
/// `frequency_hz`:  A_e = G * lambda^2 / (4*pi).
[[nodiscard]] double effective_aperture_m2(double gain_dbi,
                                           double frequency_hz);

/// Gain [dBi] of an antenna with effective aperture `aperture_m2` at
/// `frequency_hz` (inverse of effective_aperture_m2).
[[nodiscard]] double aperture_to_gain_dbi(double aperture_m2,
                                          double frequency_hz);

}  // namespace mmtag::phys
