#include "src/phys/units.hpp"

#include <cassert>
#include <cmath>

#include "src/phys/constants.hpp"

namespace mmtag::phys {

double ratio_to_db(double ratio) {
  assert(ratio > 0.0 && "dB of a non-positive power ratio is undefined");
  return 10.0 * std::log10(ratio);
}

double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

double amplitude_ratio_to_db(double ratio) {
  assert(ratio > 0.0 && "dB of a non-positive amplitude ratio is undefined");
  return 20.0 * std::log10(ratio);
}

double db_to_amplitude_ratio(double db) { return std::pow(10.0, db / 20.0); }

double watts_to_dbm(double watts) {
  assert(watts > 0.0 && "dBm of a non-positive power is undefined");
  return 10.0 * std::log10(watts * 1e3);
}

double dbm_to_watts(double dbm) { return std::pow(10.0, dbm / 10.0) * 1e-3; }

double milliwatts_to_dbm(double milliwatts) {
  return watts_to_dbm(milliwatts * 1e-3);
}

double sum_powers_dbm(double a_dbm, double b_dbm) {
  return watts_to_dbm(dbm_to_watts(a_dbm) + dbm_to_watts(b_dbm));
}

double wavelength_m(double hz) {
  assert(hz > 0.0);
  return kSpeedOfLight / hz;
}

double wavenumber_rad_per_m(double hz) { return kTwoPi / wavelength_m(hz); }

double deg_to_rad(double deg) { return deg * kPi / 180.0; }

double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

double wrap_angle_rad(double rad) {
  double wrapped = std::remainder(rad, kTwoPi);
  if (wrapped <= -kPi) wrapped += kTwoPi;
  return wrapped;
}

}  // namespace mmtag::phys
