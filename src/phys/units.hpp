// Unit conversions for RF work: decibels, powers, frequencies and lengths.
//
// Conventions:
//   * Linear power is always watts; logarithmic power is always dBm.
//   * Ratios are dimensionless in linear form and dB in logarithmic form.
//   * Function names carry the units ("watts_to_dbm"), so call sites read
//     unambiguously even though the underlying type is plain double.
#pragma once

namespace mmtag::phys {

// ---------------------------------------------------------------------------
// Decibel <-> linear ratio
// ---------------------------------------------------------------------------

/// Convert a linear power ratio (> 0) to decibels.
[[nodiscard]] double ratio_to_db(double ratio);

/// Convert decibels to a linear power ratio.
[[nodiscard]] double db_to_ratio(double db);

/// Convert a linear *amplitude* (voltage/field) ratio to decibels (20 log10).
[[nodiscard]] double amplitude_ratio_to_db(double ratio);

/// Convert decibels to a linear amplitude ratio (10^(dB/20)).
[[nodiscard]] double db_to_amplitude_ratio(double db);

// ---------------------------------------------------------------------------
// Power
// ---------------------------------------------------------------------------

/// Convert watts (> 0) to dBm.
[[nodiscard]] double watts_to_dbm(double watts);

/// Convert dBm to watts.
[[nodiscard]] double dbm_to_watts(double dbm);

/// Convert milliwatts (> 0) to dBm.
[[nodiscard]] double milliwatts_to_dbm(double milliwatts);

/// Sum an arbitrary number of powers expressed in dBm, returning dBm.
/// (Powers add linearly, so this converts, adds and converts back.)
[[nodiscard]] double sum_powers_dbm(double a_dbm, double b_dbm);

// ---------------------------------------------------------------------------
// Frequency / wavelength
// ---------------------------------------------------------------------------

/// Free-space wavelength [m] of a carrier at `hz`.
[[nodiscard]] double wavelength_m(double hz);

/// Free-space wavenumber K0 = 2*pi/lambda [rad/m] of a carrier at `hz`.
[[nodiscard]] double wavenumber_rad_per_m(double hz);

/// Convenience: GHz to Hz.
[[nodiscard]] constexpr double ghz(double value) { return value * 1e9; }

/// Convenience: MHz to Hz.
[[nodiscard]] constexpr double mhz(double value) { return value * 1e6; }

/// Convenience: kHz to Hz.
[[nodiscard]] constexpr double khz(double value) { return value * 1e3; }

// ---------------------------------------------------------------------------
// Length & angle
// ---------------------------------------------------------------------------

/// Feet to meters. The paper quotes every range in feet; the simulator
/// works in meters.
[[nodiscard]] constexpr double feet_to_m(double feet) { return feet * 0.3048; }

/// Meters to feet.
[[nodiscard]] constexpr double m_to_feet(double m) { return m / 0.3048; }

/// Degrees to radians.
[[nodiscard]] double deg_to_rad(double deg);

/// Radians to degrees.
[[nodiscard]] double rad_to_deg(double rad);

/// Wrap an angle to (-pi, pi].
[[nodiscard]] double wrap_angle_rad(double rad);

}  // namespace mmtag::phys
