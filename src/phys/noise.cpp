#include "src/phys/noise.hpp"

#include <cassert>

#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"

namespace mmtag::phys {

NoiseModel::NoiseModel(double temperature_k, double noise_figure_db)
    : temperature_k_(temperature_k), noise_figure_db_(noise_figure_db) {
  assert(temperature_k > 0.0);
  assert(noise_figure_db >= 0.0);
}

NoiseModel NoiseModel::mmtag_reader() {
  return NoiseModel(kRoomTemperatureK, kMmTagReaderNoiseFigureDb);
}

double NoiseModel::power_w(double bandwidth_hz) const {
  assert(bandwidth_hz > 0.0);
  const double thermal = kBoltzmann * temperature_k_ * bandwidth_hz;
  return thermal * db_to_ratio(noise_figure_db_);
}

double NoiseModel::power_dbm(double bandwidth_hz) const {
  return watts_to_dbm(power_w(bandwidth_hz));
}

double NoiseModel::density_dbm_per_hz() const { return power_dbm(1.0); }

}  // namespace mmtag::phys
