// Thermal-noise model for the reader's receive chain.
//
// The paper (footnote 4) computes the reader's noise floor from thermal
// noise at room temperature (300 K), the receiver bandwidth, and a typical
// mmWave noise figure of NF = 5 dB:
//
//     N = k * T * B * F
//
// i.e. in dBm:  N_dbm = -174 dBm/Hz (approx, at 290 K) + 10 log10(B) + NF.
// We keep temperature explicit instead of hard-coding -174 so tests can
// check the 300 K value the paper actually uses.
#pragma once

namespace mmtag::phys {

/// Receiver noise model: thermal floor plus noise figure.
class NoiseModel {
 public:
  /// `temperature_k` — physical temperature of the source resistance.
  /// `noise_figure_db` — receiver noise figure, >= 0 dB.
  NoiseModel(double temperature_k, double noise_figure_db);

  /// Noise model with the paper's parameters: T = 300 K, NF = 5 dB.
  [[nodiscard]] static NoiseModel mmtag_reader();

  /// Total noise power in a bandwidth of `bandwidth_hz` [W].
  [[nodiscard]] double power_w(double bandwidth_hz) const;

  /// Total noise power in a bandwidth of `bandwidth_hz` [dBm].
  [[nodiscard]] double power_dbm(double bandwidth_hz) const;

  /// Noise power spectral density [dBm/Hz], including the noise figure.
  [[nodiscard]] double density_dbm_per_hz() const;

  [[nodiscard]] double temperature_k() const { return temperature_k_; }
  [[nodiscard]] double noise_figure_db() const { return noise_figure_db_; }

 private:
  double temperature_k_;
  double noise_figure_db_;
};

}  // namespace mmtag::phys
