#include "src/deploy/coordinator.hpp"

#include <cassert>
#include <cmath>

#include "src/channel/geometry.hpp"
#include "src/phys/units.hpp"
#include "src/reader/interference.hpp"

namespace mmtag::deploy {

FleetCoordinator::FleetCoordinator(CoordinatorConfig config)
    : config_(config) {
  assert(config_.channels > 0);
}

std::vector<CellPlan> FleetCoordinator::plan(
    const std::vector<reader::MmWaveReader>& readers,
    const channel::Environment& env) const {
  const std::size_t m = readers.size();
  std::vector<CellPlan> plans(m);
  if (m == 0) return plans;

  if (config_.policy == CoordinationPolicy::kTdm) {
    for (std::size_t v = 0; v < m; ++v) {
      plans[v].airtime_share = 1.0 / static_cast<double>(m);
      plans[v].interference_dbm = -300.0;
      plans[v].channel = 0;
    }
    return plans;
  }

  for (std::size_t v = 0; v < m; ++v) {
    plans[v].channel =
        config_.policy == CoordinationPolicy::kChannelized
            ? static_cast<int>(v) % config_.channels
            : 0;
  }
  for (std::size_t v = 0; v < m; ++v) {
    double load_w = 0.0;
    for (std::size_t a = 0; a < m; ++a) {
      if (a == v) continue;
      double carrier_dbm = reader::cross_reader_interference_dbm(
          readers[a], readers[v], env);
      if (plans[a].channel != plans[v].channel) {
        carrier_dbm -= config_.adjacent_channel_rejection_db;
      }
      // The aggressor's own tags answer on the aggressor's channel too;
      // their backscatter arrives tag_response_excess_loss_db below the
      // carrier over (approximately) the same paths.
      const double tag_echo_dbm =
          carrier_dbm - config_.tag_response_excess_loss_db;
      load_w += phys::dbm_to_watts(carrier_dbm) +
                phys::dbm_to_watts(tag_echo_dbm);
    }
    plans[v].airtime_share = 1.0;
    plans[v].interference_dbm =
        load_w > 0.0 ? phys::watts_to_dbm(load_w) : -300.0;
  }
  return plans;
}

std::vector<int> FleetCoordinator::initial_assignment(
    const std::vector<core::MmTag>& tags,
    const std::vector<reader::MmWaveReader>& readers) {
  std::vector<int> tag_cell(tags.size(), 0);
  (void)reassign(tags, readers, tag_cell);
  return tag_cell;
}

int FleetCoordinator::reassign(const std::vector<core::MmTag>& tags,
                               const std::vector<reader::MmWaveReader>& readers,
                               std::vector<int>& tag_cell) {
  assert(!readers.empty());
  assert(tag_cell.size() == tags.size());
  int handoffs = 0;
  for (std::size_t t = 0; t < tags.size(); ++t) {
    const channel::Vec2 pos = tags[t].pose().position;
    int best = 0;
    double best_d =
        channel::distance(readers[0].pose().position, pos);
    for (std::size_t r = 1; r < readers.size(); ++r) {
      const double d =
          channel::distance(readers[r].pose().position, pos);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(r);
      }
    }
    if (tag_cell[t] != best) {
      tag_cell[t] = best;
      ++handoffs;
    }
  }
  return handoffs;
}

int FleetCoordinator::reassign_orphans(
    const std::vector<core::MmTag>& tags,
    const std::vector<reader::MmWaveReader>& readers,
    const std::vector<std::uint8_t>& live, std::vector<int>& tag_cell) {
  return reassign_orphans(tags, readers, live, {}, tag_cell);
}

int FleetCoordinator::reassign_orphans(
    const std::vector<core::MmTag>& tags,
    const std::vector<reader::MmWaveReader>& readers,
    const std::vector<std::uint8_t>& live,
    const std::vector<std::uint8_t>& reachable,
    std::vector<int>& tag_cell) {
  assert(!readers.empty());
  assert(live.size() == readers.size());
  assert(reachable.empty() || reachable.size() == readers.size());
  assert(tag_cell.size() == tags.size());
  const auto serviceable = [&](std::size_t r) {
    return live[r] != 0 && (reachable.empty() || reachable[r] != 0);
  };
  bool any = false;
  for (std::size_t r = 0; r < readers.size(); ++r) {
    any = any || serviceable(r);
  }
  if (!any) return 0;  // Total blackout/partition: nowhere to evacuate to.
  int handoffs = 0;
  for (std::size_t t = 0; t < tags.size(); ++t) {
    const channel::Vec2 pos = tags[t].pose().position;
    int best = -1;
    double best_d = 0.0;
    for (std::size_t r = 0; r < readers.size(); ++r) {
      if (!serviceable(r)) continue;
      const double d = channel::distance(readers[r].pose().position, pos);
      if (best < 0 || d < best_d) {
        best_d = d;
        best = static_cast<int>(r);
      }
    }
    if (tag_cell[t] != best) {
      tag_cell[t] = best;
      ++handoffs;
    }
  }
  return handoffs;
}

std::vector<std::vector<std::size_t>> FleetCoordinator::rosters(
    const std::vector<int>& tag_cell, std::size_t cells) {
  std::vector<std::vector<std::size_t>> rosters(cells);
  for (std::size_t t = 0; t < tag_cell.size(); ++t) {
    const auto c = static_cast<std::size_t>(tag_cell[t]);
    assert(c < cells);
    rosters[c].push_back(t);
  }
  return rosters;
}

}  // namespace mmtag::deploy
