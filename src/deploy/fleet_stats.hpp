// Fleet-level observables: latency percentiles, fairness, utilization.
//
// Deployment papers judge an inventory system by distributional metrics —
// "p99 time to first read", "Jain fairness of per-tag goodput" — not by a
// single link's rate. These helpers compute them from per-tag service
// records; aggregation is defined in a fixed (tag-index) order so fleet
// results are bit-identical regardless of how many threads produced the
// underlying per-cell results.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "src/sim/table.hpp"

namespace mmtag::deploy {

/// Linear-interpolation percentile (pct in [0, 100]) of `values`.
/// The input need not be sorted; a copy is sorted internally.
/// Empty input returns NaN. Delegates to obs::percentile (the canonical
/// implementation shared with the bench harness).
[[nodiscard]] double percentile(std::vector<double> values, double pct);

/// Jain fairness index (sum x)^2 / (n * sum x^2) in (0, 1]; 1 means all
/// shares equal. Empty or all-zero input returns 0. Delegates to
/// obs::jain_fairness.
[[nodiscard]] double jain_fairness(const std::vector<double>& values);

/// One tag's service over a whole fleet run, merged across epochs.
struct TagService {
  std::uint32_t tag_id = 0;
  bool read = false;
  /// Absolute fleet time of the first successful inventory read [s].
  double first_read_s = std::numeric_limits<double>::infinity();
  double delivered_bits = 0.0;
  long polls = 0;
};

/// Aggregated fleet observables.
struct FleetStats {
  int readers = 0;
  int tags_total = 0;
  int tags_read = 0;
  double duration_s = 0.0;

  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;

  double goodput_mean_bps = 0.0;   ///< Mean over read tags.
  double goodput_total_bps = 0.0;  ///< Sum over all tags.
  double jain = 0.0;               ///< Fairness of read tags' goodputs.

  double reader_utilization = 0.0;  ///< Mean airtime / wall time per cell.
  int handoffs = 0;

  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t raytrace_evals = 0;

  [[nodiscard]] double coverage() const {
    return tags_total > 0
               ? static_cast<double>(tags_read) / tags_total
               : 0.0;
  }
  [[nodiscard]] double tags_read_per_s() const {
    return duration_s > 0.0 ? tags_read / duration_s : 0.0;
  }
  [[nodiscard]] double cache_hit_rate() const {
    return cache_lookups > 0
               ? static_cast<double>(cache_hits) /
                     static_cast<double>(cache_lookups)
               : 0.0;
  }
};

/// Borrowed view of per-tag service state living in SoA columns (the
/// scale::TagStore layout): parallel arrays of length `count`, indexed by
/// tag. `read[t] != 0` marks a tag read at least once.
struct ServiceColumns {
  std::size_t count = 0;
  const std::uint8_t* read = nullptr;
  const double* first_read_s = nullptr;
  const double* delivered_bits = nullptr;
};

/// Compute the distributional fields of FleetStats from per-tag service
/// records (latencies over read tags, goodput, Jain). `duration_s` is the
/// total simulated wall time. Counter fields (readers, handoffs, cache_*)
/// are left for the caller.
///
/// Both overloads stream: goodput sums and the Jain accumulators are
/// carried inline in tag order (no per-tag goodput vector), and the one
/// irreducible buffer — the read tags' latency sample, which exact
/// percentiles must sort — is filled once and sorted once instead of
/// copied per percentile call. Outputs are pinned bit-identical to the
/// pre-streaming implementation by test_fleet_stats digests.
[[nodiscard]] FleetStats summarize_service(
    const std::vector<TagService>& service, double duration_s);

/// Column overload: identical arithmetic in identical order, so the two
/// overloads agree bit-for-bit on populations with equal state.
[[nodiscard]] FleetStats summarize_service(const ServiceColumns& service,
                                           double duration_s);

/// Order-independent fingerprint of the exact bit patterns of a stats
/// block's value fields (FNV-1a over doubles' representations). Two runs
/// agree on every observable iff their fingerprints match — the
/// determinism tests and bench compare these across thread counts.
[[nodiscard]] std::uint64_t fingerprint(const FleetStats& stats);

/// One-row summary table (tags read, coverage, latency percentiles,
/// goodput, Jain, utilization) for benches and examples.
[[nodiscard]] sim::Table fleet_stats_table(const FleetStats& stats);

}  // namespace mmtag::deploy
