// Fleet simulator: M reader cells serving N tags, in parallel, bit-exact.
//
// Composes the deploy layer end to end: layout generation, per-cell
// inventory+polling over cached link budgets, cross-reader coordination,
// optional tag mobility with cache invalidation and inter-cell handoff,
// and fleet-level statistics. Cells execute on the shared sim::ThreadPool;
// each (epoch, cell) pair gets a private RNG stream via
// sim::derive_seed(seed, epoch * M + cell), and per-cell results merge in
// cell order, so fleet aggregates are bit-identical at any thread count —
// the same discipline as the sweep engine (DESIGN.md Sec. 7).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/deploy/cell.hpp"
#include "src/deploy/coordinator.hpp"
#include "src/impair/config.hpp"
#include "src/deploy/fleet_stats.hpp"
#include "src/deploy/layout.hpp"
#include "src/fault/engine.hpp"
#include "src/sim/parallel.hpp"

namespace mmtag::deploy {

struct FleetConfig {
  LayoutConfig layout;
  CellConfig cell;
  CoordinatorConfig coordination;
  /// Epochs alternate cell service and (optional) mobility steps.
  int epochs = 2;
  double epoch_duration_s = 0.05;
  /// Fraction of the tag population that takes a random-walk step between
  /// epochs (those tags' cache entries are invalidated and they may hand
  /// off between cells).
  double mobile_fraction = 0.0;
  double mobile_speed_mps = 1.5;
  /// Base seed for every stream in the run (cells, mobility).
  std::uint64_t seed = 1;
  /// Worker threads (<= 0 selects sim::default_thread_count()).
  int threads = 0;
  /// Disable to measure the uncached baseline (every link lookup
  /// re-traces; see bench_d1_fleet).
  bool use_link_cache = true;
  /// Fault injection (chaos testing). A default-constructed schedule is
  /// inactive: no engine is built and the run takes the exact fault-free
  /// code path, RNG draw for RNG draw.
  fault::FaultSchedule faults;
  /// How the fleet fights back when `faults` is active (orphan re-handoff,
  /// restart cache invalidation; poll retry knobs live in cell.recovery).
  fault::RecoveryConfig recovery;
  /// Front-end impairment decomposition (DESIGN.md Sec. 16): with any
  /// stage enabled, every reader's opaque implementation_loss_db is
  /// replaced by impair::decompose(impairments).total_db — calibrate
  /// residual_db against the reader's 18 dB scalar (docs/IMPAIRMENTS.md,
  /// worked example 2). All-off (default) builds the exact prototype
  /// readers of the legacy fleet.
  impair::ImpairmentConfig impairments{};
  /// Backhaul reachability hook (installed by mesh::BackhaulSimulator):
  /// maps this epoch's radio-live mask to the readers that can still reach
  /// a mesh gateway. Orphan re-handoff then avoids live-but-partitioned
  /// readers, and tags stuck on one count as orphaned (their inventory
  /// cannot leave the cell). Null = every live reader is serviceable.
  std::function<std::vector<std::uint8_t>(
      int epoch, const std::vector<std::uint8_t>& live)>
      backhaul_reachable;
  /// Called on the coordinating thread after each epoch's deterministic
  /// merge with the epoch index, per-cell results (cell order) and the
  /// radio-live mask — the point where mesh::BackhaulSimulator drains the
  /// epoch's inventory through the forwarding plane. Serial by
  /// construction, so thread count cannot reach the observer.
  std::function<void(int epoch, const std::vector<CellEpochResult>& cells,
                     const std::vector<std::uint8_t>& live)>
      epoch_observer;
};

struct FleetResult {
  FleetStats stats;
  /// What broke and how recovery coped (all-zero/availability-1 when no
  /// schedule was attached). Digest via fault::fingerprint — kept separate
  /// from the pinned FleetStats fingerprint.
  fault::FaultReport fault;
  /// Per-tag service merged over every epoch, tag order (who was ever
  /// read, first-read instant, delivered bits). The discovery roster the
  /// net-layer traffic engine admits flows from.
  std::vector<TagService> service;
  /// Per-cell results of the final epoch (cell order).
  std::vector<CellEpochResult> last_epoch;
  /// Final-epoch coordination plans (cell order).
  std::vector<CellPlan> plans;
  /// Wall-clock cost of the run (threads, wall_s; units = tag reads).
  sim::SweepStats sweep;
};

class FleetSimulator {
 public:
  explicit FleetSimulator(FleetConfig config);

  /// Run the configured number of epochs and aggregate. Deterministic in
  /// `config.seed`; independent of `config.threads`.
  [[nodiscard]] FleetResult run();

  [[nodiscard]] const FleetConfig& config() const { return config_; }

 private:
  FleetConfig config_;
};

}  // namespace mmtag::deploy
