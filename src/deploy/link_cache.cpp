#include "src/deploy/link_cache.hpp"

#include <cassert>

namespace mmtag::deploy {

LinkCache::LinkCache(reader::MmWaveReader reader,
                     const channel::Environment* env,
                     const phy::RateTable* rates, bool enabled)
    : reader_(std::move(reader)), env_(env), rates_(rates),
      enabled_(enabled) {
  assert(env_ != nullptr && rates_ != nullptr);
}

const reader::LinkReport& LinkCache::link(const core::MmTag& tag,
                                          int beam_key,
                                          double boresight_rad) {
  ++stats_.lookups;
  TagEntry& entry = entries_[tag.id()];

  if (enabled_) {
    const auto cached = entry.reports.find(beam_key);
    if (cached != entry.reports.end()) {
      ++stats_.hits;
      return cached->second;
    }
  }

  if (!enabled_ || !entry.paths_valid) {
    entry.paths = channel::trace_paths(*env_, reader_.pose().position,
                                       tag.pose().position);
    entry.paths_valid = enabled_;
    ++stats_.raytrace_evals;
  }

  reader_.steer_to_world(boresight_rad);
  reader::LinkReport best;
  for (const channel::Path& path : entry.paths) {
    reader::LinkReport report = reader_.evaluate_path(tag, path, *rates_);
    if (report.received_power_dbm > best.received_power_dbm) {
      best = report;
    }
  }
  if (!enabled_) {
    scratch_ = best;
    return scratch_;
  }
  return entry.reports.emplace(beam_key, best).first->second;
}

void LinkCache::invalidate_tag(std::uint32_t tag_id) {
  entries_.erase(tag_id);
}

void LinkCache::invalidate_all() { entries_.clear(); }

void LinkCache::move_reader(core::Pose pose) {
  reader_.set_pose(pose);
  invalidate_all();
}

}  // namespace mmtag::deploy
