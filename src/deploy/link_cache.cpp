#include "src/deploy/link_cache.hpp"

#include <cassert>

#include "src/obs/gate.hpp"
#include "src/obs/metrics.hpp"

namespace mmtag::deploy {

namespace {

// Process-wide mirrors of the per-cache Stats counters. The per-object
// Stats stay the source of truth for FleetStats aggregation (cell merge
// order, fingerprints); these let any run's cache behaviour show up in
// bench --json metrics without plumbing.
obs::Counter& cache_lookups_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("deploy.cache.lookups");
  return counter;
}
obs::Counter& cache_hits_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("deploy.cache.hits");
  return counter;
}
obs::Counter& raytrace_evals_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("deploy.cache.raytrace_evals");
  return counter;
}
obs::Counter& evictions_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("deploy.cache.evictions");
  return counter;
}
obs::Counter& lru_evictions_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("deploy.cache.lru_evictions");
  return counter;
}

}  // namespace

LinkCache::LinkCache(reader::MmWaveReader reader,
                     const channel::Environment* env,
                     const phy::RateTable* rates, bool enabled,
                     int reader_id, std::size_t tag_capacity)
    : reader_(std::move(reader)), env_(env), rates_(rates),
      enabled_(enabled), reader_id_(reader_id),
      tag_capacity_(tag_capacity) {
  assert(env_ != nullptr && rates_ != nullptr);
}

const reader::LinkReport& LinkCache::link(const core::MmTag& tag,
                                          int beam_key,
                                          double boresight_rad) {
  ++stats_.lookups;
  if constexpr (obs::kObsEnabled) cache_lookups_metric().add(1);
  auto it = entries_.find(tag.id());
  if (it == entries_.end()) {
    if (tag_capacity_ > 0 && entries_.size() >= tag_capacity_) evict_lru();
    it = entries_.emplace(tag.id(), TagEntry{}).first;
  }
  TagEntry& entry = it->second;
  entry.last_used = ++tick_;

  if (enabled_) {
    const auto cached = entry.reports.find(beam_key);
    if (cached != entry.reports.end()) {
      ++stats_.hits;
      if constexpr (obs::kObsEnabled) cache_hits_metric().add(1);
      return cached->second;
    }
  }

  if (!enabled_ || !entry.paths_valid) {
    entry.paths = channel::trace_paths(*env_, reader_.pose().position,
                                       tag.pose().position);
    entry.paths_valid = enabled_;
    ++stats_.raytrace_evals;
    if constexpr (obs::kObsEnabled) raytrace_evals_metric().add(1);
  }

  reader_.steer_to_world(boresight_rad);
  reader::LinkReport best;
  for (const channel::Path& path : entry.paths) {
    reader::LinkReport report = reader_.evaluate_path(tag, path, *rates_);
    if (report.received_power_dbm > best.received_power_dbm) {
      best = report;
    }
  }
  if (!enabled_) {
    scratch_ = best;
    return scratch_;
  }
  return entry.reports.emplace(beam_key, best).first->second;
}

std::uint64_t LinkCache::entry_size(const TagEntry& entry) {
  return static_cast<std::uint64_t>(entry.reports.size()) +
         (entry.paths_valid ? 1u : 0u);
}

void LinkCache::evict_lru() {
  auto victim = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    // Oldest lookup wins; equal ticks (only possible for never-looked-up
    // entries) break toward the smallest tag id, keeping eviction order
    // independent of unordered_map iteration order.
    if (victim == entries_.end() ||
        it->second.last_used < victim->second.last_used ||
        (it->second.last_used == victim->second.last_used &&
         it->first < victim->first)) {
      victim = it;
    }
  }
  if (victim == entries_.end()) return;
  const std::uint64_t evicted = entry_size(victim->second);
  stats_.evictions += evicted;
  ++stats_.lru_evictions;
  if constexpr (obs::kObsEnabled) {
    evictions_metric().add(evicted);
    lru_evictions_metric().add(1);
  }
  entries_.erase(victim);
}

void LinkCache::invalidate_tag(std::uint32_t tag_id) {
  const auto it = entries_.find(tag_id);
  if (it == entries_.end()) return;
  const std::uint64_t evicted = entry_size(it->second);
  stats_.evictions += evicted;
  if constexpr (obs::kObsEnabled) evictions_metric().add(evicted);
  entries_.erase(it);
}

void LinkCache::invalidate_all() {
  std::uint64_t evicted = 0;
  for (const auto& [tag_id, entry] : entries_) evicted += entry_size(entry);
  stats_.evictions += evicted;
  if constexpr (obs::kObsEnabled) evictions_metric().add(evicted);
  entries_.clear();
}

std::uint64_t LinkCache::invalidate_reader(int reader_id) {
  if (reader_id != reader_id_ || reader_id < 0) return 0;
  const std::uint64_t before = stats_.evictions;
  invalidate_all();
  return stats_.evictions - before;
}

void LinkCache::move_reader(core::Pose pose) {
  reader_.set_pose(pose);
  invalidate_all();
}

}  // namespace mmtag::deploy
