// Memoized link budgets for the fleet hot loop.
//
// A fleet simulation evaluates the same (reader, tag, beam) link thousands
// of times per epoch — every poll re-checks the budget — yet the underlying
// geometry only changes when an entity moves. trace_paths() is by far the
// most expensive step (segment intersections against every wall and
// obstacle), so this cache memoizes it per tag and the derived LinkReport
// per (tag, beam), with dirty invalidation when mobility moves the tag or
// the reader. Counters expose lookups/hits/raytrace evaluations so benches
// can report the hit rate and the saved work (see bench_d1_fleet).
//
// The cache is per-reader (each ReaderCell owns one), so parallel cells
// never share mutable state — thread-count invariance of the fleet results
// stays structural rather than lock-enforced.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/channel/environment.hpp"
#include "src/channel/raytrace.hpp"
#include "src/core/tag.hpp"
#include "src/phy/rate_table.hpp"
#include "src/reader/reader.hpp"

namespace mmtag::deploy {

class LinkCache {
 public:
  /// Default per-reader tag capacity. Sized above every existing bench's
  /// per-cell working set (a full blackout hands one cell ~2000 tags), so
  /// bounding memory changes no pinned fingerprint; metro-scale cells
  /// with rosters beyond this start recycling cold entries instead of
  /// growing without bound.
  static constexpr std::size_t kDefaultTagCapacity = 4096;

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;  ///< Served without recomputing the report.
    std::uint64_t raytrace_evals = 0;  ///< trace_paths() invocations.
    std::uint64_t evictions = 0;  ///< Memoized entries dropped (reports +
                                  ///< traced path sets).
    /// Tags dropped by the capacity bound (least-recently-used victim per
    /// overflow; their entries are also counted in `evictions`).
    std::uint64_t lru_evictions = 0;

    [[nodiscard]] double hit_rate() const {
      return lookups > 0
                 ? static_cast<double>(hits) / static_cast<double>(lookups)
                 : 0.0;
    }
  };

  /// `env` and `rates` must outlive the cache. `enabled == false` turns the
  /// cache into a counting pass-through (every lookup re-traces), which is
  /// the uncached baseline the bench compares against. `reader_id` is the
  /// fleet-wide identity invalidate_reader() matches against (-1 = none).
  /// `tag_capacity` bounds the number of memoized tags (0 = unbounded);
  /// inserting past it evicts the least-recently-looked-up tag, ties
  /// broken by smallest tag id so eviction order is deterministic.
  LinkCache(reader::MmWaveReader reader, const channel::Environment* env,
            const phy::RateTable* rates, bool enabled = true,
            int reader_id = -1,
            std::size_t tag_capacity = kDefaultTagCapacity);

  /// Link report for `tag` with the reader steered to `boresight_rad`.
  /// `beam_key` must identify the steering uniquely (codebook index) —
  /// reports are memoized per (tag id, beam_key). The strongest of the
  /// ray-traced paths (by received power) is reported, matching
  /// MmWaveReader::evaluate_link.
  [[nodiscard]] const reader::LinkReport& link(const core::MmTag& tag,
                                               int beam_key,
                                               double boresight_rad);

  /// Drop everything cached for `tag_id` (call when the tag moved).
  void invalidate_tag(std::uint32_t tag_id);

  /// Drop the whole cache (environment changed).
  void invalidate_all();

  /// Bulk invalidation addressed by reader identity: if `reader_id`
  /// matches this cache's reader, drop every memoized entry (a restarted
  /// reader re-calibrates from scratch — stale link state must not survive
  /// the power cycle). Returns the number of entries evicted; a non-match
  /// is a no-op returning 0, so fleet-wide code can broadcast the call.
  std::uint64_t invalidate_reader(int reader_id);

  /// Move the reader itself: re-pose and drop the whole cache.
  void move_reader(core::Pose pose);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const reader::MmWaveReader& reader() const { return reader_; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] int reader_id() const { return reader_id_; }
  [[nodiscard]] std::size_t tag_capacity() const { return tag_capacity_; }
  /// Tags currently memoized (always <= tag_capacity when bounded).
  [[nodiscard]] std::size_t resident_tags() const { return entries_.size(); }

 private:
  struct TagEntry {
    std::vector<channel::Path> paths;
    bool paths_valid = false;
    std::unordered_map<int, reader::LinkReport> reports;  ///< By beam key.
    std::uint64_t last_used = 0;  ///< Lookup tick, for LRU eviction.
  };

  /// Drop the least-recently-used tag to make room (capacity pressure).
  void evict_lru();

  /// Memoized entries held for `tag_id` (reports + traced path set).
  [[nodiscard]] static std::uint64_t entry_size(const TagEntry& entry);

  reader::MmWaveReader reader_;
  const channel::Environment* env_;
  const phy::RateTable* rates_;
  bool enabled_;
  int reader_id_;
  std::size_t tag_capacity_;
  std::uint64_t tick_ = 0;
  std::unordered_map<std::uint32_t, TagEntry> entries_;
  Stats stats_;
  reader::LinkReport scratch_;  ///< Returned storage when disabled.
};

}  // namespace mmtag::deploy
