// Deterministic fleet layouts: M readers and N tags in one floor plan.
//
// The deployment scenarios of paper Sec. 9 (warehouses, AR rooms) start
// from a geometry: readers mounted around a rectangular hall, tags spread
// over its floor area. This module generates those layouts reproducibly —
// reader poses on a near-square grid facing the room centre, tags either
// on a grid or uniform-random via sim::derive_seed streams — plus the
// perimeter-wall channel::Environment every cell shares.
#pragma once

#include <cstdint>
#include <vector>

#include "src/channel/environment.hpp"
#include "src/core/tag.hpp"

namespace mmtag::deploy {

enum class TagPlacement {
  kGrid,           ///< Near-square grid over the usable floor area.
  kUniformRandom,  ///< i.i.d. uniform over the usable floor area.
};

struct LayoutConfig {
  double width_m = 20.0;
  double height_m = 12.0;
  int readers = 4;
  int tags = 200;
  TagPlacement placement = TagPlacement::kUniformRandom;
  /// Base seed for the placement streams (tags use
  /// derive_seed(seed, tag_index), so adding a tag never moves another).
  std::uint64_t seed = 1;
  /// Keep-out margin between any entity and the perimeter walls [m].
  double margin_m = 0.5;
  /// Roughness of the perimeter walls (see channel::Wall).
  double wall_roughness = 0.5;
};

struct FleetLayout {
  channel::Environment environment;  ///< Four perimeter walls.
  std::vector<core::Pose> reader_poses;
  std::vector<core::MmTag> tags;
  double width_m = 0.0;
  double height_m = 0.0;
};

/// Build the layout for `config`. Readers land on a ceil(sqrt)-grid of the
/// floor, oriented toward the room centre so their scan sector faces the
/// tag population; tags face their nearest reader (badge-like mounting —
/// retrodirectivity covers the residual misalignment). Tag ids start at
/// 1000 + index. Deterministic: the same config always yields the same
/// layout, bit for bit.
[[nodiscard]] FleetLayout make_layout(const LayoutConfig& config);

/// Index of the reader pose closest (Euclidean) to `position`; ties go to
/// the lowest index. `reader_poses` must be non-empty.
[[nodiscard]] std::size_t nearest_reader(
    const std::vector<core::Pose>& reader_poses, channel::Vec2 position);

}  // namespace mmtag::deploy
