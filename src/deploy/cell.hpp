// One reader's cell: beam-scan inventory + polling over cached links.
//
// A cell is the unit of parallelism in the fleet simulator: one reader,
// the tags currently assigned to it, and a private LinkCache. Each epoch
// the cell runs the paper's Sec. 9 MAC ladder — SDM beam scan with framed
// slotted Aloha to *discover* tags, then collision-free polling to serve
// them — sequenced on a mac::EventQueue for exact dwell timing. The
// coordinator's CellPlan scales the cell's airtime share (TDM) and loads
// its receiver with cross-cell interference, which converts cached link
// budgets into SINR-limited rates at lookup time (so cached entries stay
// valid when the coordination policy changes).
#pragma once

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "src/antenna/codebook.hpp"
#include "src/channel/environment.hpp"
#include "src/core/tag.hpp"
#include "src/deploy/fleet_stats.hpp"
#include "src/deploy/link_cache.hpp"
#include "src/fault/schedule.hpp"
#include "src/mac/aloha.hpp"
#include "src/phy/rate_table.hpp"
#include "src/reader/reader.hpp"
#include "src/resil/retry.hpp"

namespace mmtag::deploy {

struct CellConfig {
  mac::AlohaConfig aloha;
  std::size_t payload_bits = 96;       ///< EPC-96-style identifier.
  std::size_t poll_overhead_bits = 64; ///< Addressing preamble per poll.
  double beam_switch_overhead_s = 100e-6;
  /// Scan sector half-angle about the reader's mounting orientation. A
  /// deployment cell defaults to a full-circle scan (ceiling-mounted
  /// reader serving tags on every side); narrow to ±60 deg to model the
  /// paper's bench prototype horn.
  double sector_half_angle_rad = 3.141592653589793;
  double beamwidth_deg = 17.0;
  /// Link-cache memory bound: memoized tags per reader (0 = unbounded).
  /// Overflow evicts the least-recently-used tag (LinkCache docs).
  std::size_t link_cache_tag_capacity = LinkCache::kDefaultTagCapacity;
  /// Poll-level retry/backoff/quarantine knobs; consulted only when a
  /// fault context is attached to the epoch.
  fault::RecoveryConfig recovery;
  /// Shared retry policy overriding the RecoveryConfig constants
  /// (DESIGN.md Sec. 15): budget <= 0 inherits recovery.poll_retry_budget,
  /// base_s == 0 inherits recovery.poll_backoff_base_s. The default policy
  /// reproduces the legacy uncapped doubling ladder bit for bit; setting
  /// cap_s/jitter tempers retry storms after correlated outages.
  resil::RetryPolicy poll_retry{};
};

/// Per-epoch fault state handed to run_epoch by the fleet simulator. Tag
/// vectors are indexed by GLOBAL tag index (the values in `tag_indices`),
/// shared read-only across all concurrently running cells. A null context
/// pointer is the fault-free fast path — the cell touches none of this.
struct CellFaultContext {
  /// Scales the epoch airtime budget (partial reader outage + clock-skew
  /// guard time). 0 = reader fully down this epoch.
  double budget_scale = 1.0;
  const std::vector<std::uint8_t>* tag_brownout = nullptr;
  const std::vector<double>* tag_loss_db = nullptr;
  const std::vector<std::uint8_t>* tag_blocked = nullptr;
  /// P(one poll of a blocked tag gets no response at all).
  double block_probability = 0.0;
};

/// What the coordinator grants a cell for one epoch.
struct CellPlan {
  double airtime_share = 1.0;        ///< Fraction of wall time on air (TDM).
  double interference_dbm = -300.0;  ///< Cross-cell load at the receiver.
  int channel = 0;                   ///< Frequency channel (bookkeeping).
};

/// One epoch's outcome for one cell, in assignment order.
struct CellEpochResult {
  int cell_index = 0;
  int tags_assigned = 0;
  int tags_discovered = 0;
  double airtime_s = 0.0;  ///< Airtime consumed (<= share * duration).
  double utilization = 0.0;  ///< airtime_s / (share * duration).
  long polls_timed_out = 0;  ///< Unanswered polls that burned a timeout.
  long quarantines = 0;      ///< Tags quarantined after the retry budget.
  /// Per assigned tag, same order as the `tag_indices` passed to
  /// run_epoch; first_read_s is absolute fleet time.
  std::vector<TagService> service;
};

class ReaderCell {
 public:
  /// `env` and `rates` must outlive the cell. The reader is steered by the
  /// cell; its scan codebook covers ±sector_half_angle about the pose
  /// orientation. `use_cache == false` re-traces on every lookup (bench
  /// baseline).
  ReaderCell(int index, reader::MmWaveReader reader,
             const channel::Environment* env, const phy::RateTable* rates,
             CellConfig config, bool use_cache = true);

  /// Run one epoch of `duration_s` wall time starting at absolute fleet
  /// time `start_s`. `tag_indices` select this cell's tags from the shared
  /// `tags` vector; `rng` must be a cell-private stream. Touches only
  /// cell-owned state, so distinct cells may run concurrently. `faults`
  /// (optional) attaches this epoch's fault state; null keeps the exact
  /// fault-free code path, including its RNG draw sequence.
  [[nodiscard]] CellEpochResult run_epoch(
      const std::vector<core::MmTag>& tags,
      const std::vector<std::size_t>& tag_indices, const CellPlan& plan,
      double start_s, double duration_s, std::mt19937_64& rng,
      const CellFaultContext* faults = nullptr);

  /// Forward a tag move to the cache.
  void on_tag_moved(std::uint32_t tag_id) { cache_.invalidate_tag(tag_id); }

  /// The reader came back from a full-epoch outage: drop the memoized link
  /// state (a power-cycled reader re-calibrates) and clear the quarantine
  /// list (pre-outage failure history is meaningless after the restart).
  /// Returns the number of cache entries evicted.
  std::uint64_t on_reader_restarted() {
    quarantine_.clear();
    return cache_.invalidate_reader(index_);
  }

  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] const reader::MmWaveReader& reader() const {
    return cache_.reader();
  }
  [[nodiscard]] const LinkCache& cache() const { return cache_; }
  [[nodiscard]] const std::vector<antenna::Beam>& codebook() const {
    return codebook_;
  }
  [[nodiscard]] const CellConfig& config() const { return config_; }

 private:
  int index_;
  const phy::RateTable* rates_;
  CellConfig config_;
  LinkCache cache_;
  std::vector<antenna::Beam> codebook_;
  /// Where the next epoch's scan resumes. A tight airtime budget (TDM with
  /// many cells) can truncate a scan mid-sector; resuming instead of
  /// restarting guarantees every beam is eventually visited.
  std::size_t scan_cursor_ = 0;
  /// Tags sitting out a quarantine, tag_id -> epochs remaining. Populated
  /// only when epochs run with a fault context; empty-map checks keep the
  /// fault-free path allocation- and hash-free.
  std::unordered_map<std::uint32_t, int> quarantine_;
};

}  // namespace mmtag::deploy
