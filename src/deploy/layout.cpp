#include "src/deploy/layout.hpp"

#include <cassert>
#include <cmath>
#include <random>

#include "src/channel/geometry.hpp"
#include "src/sim/rng.hpp"

namespace mmtag::deploy {

namespace {

/// Rows x columns of a near-square grid holding `count` cells over a
/// `width` x `height` area (more columns along the longer side).
struct GridShape {
  int cols = 1;
  int rows = 1;
};

GridShape near_square_grid(int count, double width, double height) {
  assert(count > 0);
  GridShape shape;
  const double aspect = width / height;
  shape.cols = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(count) * aspect)));
  if (shape.cols < 1) shape.cols = 1;
  shape.rows = (count + shape.cols - 1) / shape.cols;
  return shape;
}

channel::Vec2 grid_point(const GridShape& shape, int index, double x0,
                         double y0, double width, double height) {
  const int col = index % shape.cols;
  const int row = index / shape.cols;
  // Cell centres: the k-th of n cells along a span sits at (k + 0.5) / n.
  return {x0 + width * (col + 0.5) / shape.cols,
          y0 + height * (row + 0.5) / shape.rows};
}

}  // namespace

FleetLayout make_layout(const LayoutConfig& config) {
  assert(config.readers > 0 && config.tags >= 0);
  assert(config.width_m > 2.0 * config.margin_m &&
         config.height_m > 2.0 * config.margin_m);

  FleetLayout layout;
  layout.width_m = config.width_m;
  layout.height_m = config.height_m;

  const channel::Vec2 c00{0.0, 0.0};
  const channel::Vec2 c10{config.width_m, 0.0};
  const channel::Vec2 c11{config.width_m, config.height_m};
  const channel::Vec2 c01{0.0, config.height_m};
  for (const auto& [a, b] : {std::pair{c00, c10}, std::pair{c10, c11},
                             std::pair{c11, c01}, std::pair{c01, c00}}) {
    layout.environment.add_wall(
        channel::Wall{channel::Segment{a, b}, config.wall_roughness});
  }

  const channel::Vec2 center{config.width_m / 2.0, config.height_m / 2.0};
  const GridShape reader_grid =
      near_square_grid(config.readers, config.width_m, config.height_m);
  layout.reader_poses.reserve(static_cast<std::size_t>(config.readers));
  for (int i = 0; i < config.readers; ++i) {
    const channel::Vec2 pos =
        grid_point(reader_grid, i, 0.0, 0.0, config.width_m, config.height_m);
    // Face the room centre; a reader that lands exactly there faces +x.
    const double facing = (channel::distance(pos, center) > 1e-9)
                              ? channel::bearing_rad(pos, center)
                              : 0.0;
    layout.reader_poses.push_back(core::Pose{pos, facing});
  }

  const double usable_w = config.width_m - 2.0 * config.margin_m;
  const double usable_h = config.height_m - 2.0 * config.margin_m;
  const GridShape tag_grid =
      near_square_grid(config.tags > 0 ? config.tags : 1, usable_w, usable_h);
  layout.tags.reserve(static_cast<std::size_t>(config.tags));
  for (int i = 0; i < config.tags; ++i) {
    channel::Vec2 pos;
    if (config.placement == TagPlacement::kGrid) {
      pos = grid_point(tag_grid, i, config.margin_m, config.margin_m,
                       usable_w, usable_h);
    } else {
      auto rng = sim::make_rng(
          sim::derive_seed(config.seed, static_cast<std::uint64_t>(i)));
      std::uniform_real_distribution<double> ux(config.margin_m,
                                                config.margin_m + usable_w);
      std::uniform_real_distribution<double> uy(config.margin_m,
                                                config.margin_m + usable_h);
      pos = {ux(rng), uy(rng)};
    }
    const std::size_t owner = nearest_reader(layout.reader_poses, pos);
    const double facing =
        channel::bearing_rad(pos, layout.reader_poses[owner].position);
    layout.tags.push_back(core::MmTag::prototype_at(
        core::Pose{pos, facing}, static_cast<std::uint32_t>(1000 + i)));
  }
  return layout;
}

std::size_t nearest_reader(const std::vector<core::Pose>& reader_poses,
                           channel::Vec2 position) {
  assert(!reader_poses.empty());
  std::size_t best = 0;
  double best_d = channel::distance(reader_poses[0].position, position);
  for (std::size_t i = 1; i < reader_poses.size(); ++i) {
    const double d = channel::distance(reader_poses[i].position, position);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace mmtag::deploy
