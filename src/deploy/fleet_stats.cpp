#include "src/deploy/fleet_stats.hpp"

#include <cmath>

#include "src/obs/stats.hpp"

namespace mmtag::deploy {

// Thin delegates: the canonical implementations moved to obs::stats so the
// bench harness and the fleet layer share one definition of a percentile.
// Outputs are pinned bit-identical to the pre-refactor private copies by
// test_fleet_stats regression values.
double percentile(std::vector<double> values, double pct) {
  return obs::percentile(std::move(values), pct);
}

double jain_fairness(const std::vector<double>& values) {
  return obs::jain_fairness(values);
}

FleetStats summarize_service(const std::vector<TagService>& service,
                             double duration_s) {
  FleetStats stats;
  stats.tags_total = static_cast<int>(service.size());
  stats.duration_s = duration_s;

  std::vector<double> latencies;
  std::vector<double> goodputs;
  latencies.reserve(service.size());
  goodputs.reserve(service.size());
  double read_goodput_sum = 0.0;
  for (const TagService& tag : service) {
    const double goodput =
        duration_s > 0.0 ? tag.delivered_bits / duration_s : 0.0;
    stats.goodput_total_bps += goodput;
    if (!tag.read) continue;
    ++stats.tags_read;
    latencies.push_back(tag.first_read_s);
    goodputs.push_back(goodput);
    read_goodput_sum += goodput;
  }
  stats.latency_p50_s = percentile(latencies, 50.0);
  stats.latency_p95_s = percentile(latencies, 95.0);
  stats.latency_p99_s = percentile(latencies, 99.0);
  stats.goodput_mean_bps =
      goodputs.empty()
          ? 0.0
          : read_goodput_sum / static_cast<double>(goodputs.size());
  stats.jain = jain_fairness(goodputs);
  return stats;
}

std::uint64_t fingerprint(const FleetStats& stats) {
  // obs::Fnv1a uses the same offset basis, prime, and canonical-NaN rule
  // as the hand-rolled mixer this replaced, so fingerprints are unchanged.
  obs::Fnv1a hasher;
  hasher.mix_bytes(&stats.tags_total, sizeof(stats.tags_total));
  hasher.mix_bytes(&stats.tags_read, sizeof(stats.tags_read));
  hasher.mix_bytes(&stats.handoffs, sizeof(stats.handoffs));
  hasher.mix_double(stats.duration_s);
  hasher.mix_double(stats.latency_p50_s);
  hasher.mix_double(stats.latency_p95_s);
  hasher.mix_double(stats.latency_p99_s);
  hasher.mix_double(stats.goodput_mean_bps);
  hasher.mix_double(stats.goodput_total_bps);
  hasher.mix_double(stats.jain);
  hasher.mix_double(stats.reader_utilization);
  return hasher.digest();
}

sim::Table fleet_stats_table(const FleetStats& stats) {
  sim::Table table({"tags_read", "coverage", "p50_ms", "p95_ms", "p99_ms",
                    "tags/s", "goodput_mean", "jain", "reader_util",
                    "cache_hit", "handoffs"});
  const auto ms = [](double s) {
    return std::isnan(s) ? std::string("-") : sim::Table::fmt(s * 1e3, 2);
  };
  table.add_row({std::to_string(stats.tags_read) + "/" +
                     std::to_string(stats.tags_total),
                 sim::Table::fmt(stats.coverage() * 100.0, 1) + "%",
                 ms(stats.latency_p50_s), ms(stats.latency_p95_s),
                 ms(stats.latency_p99_s),
                 sim::Table::fmt(stats.tags_read_per_s(), 0),
                 sim::Table::fmt_rate(stats.goodput_mean_bps),
                 sim::Table::fmt(stats.jain, 3),
                 sim::Table::fmt(stats.reader_utilization, 3),
                 sim::Table::fmt(stats.cache_hit_rate(), 3),
                 std::to_string(stats.handoffs)});
  return table;
}

}  // namespace mmtag::deploy
