#include "src/deploy/fleet_stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/obs/stats.hpp"

namespace mmtag::deploy {

// Thin delegates: the canonical implementations moved to obs::stats so the
// bench harness and the fleet layer share one definition of a percentile.
// Outputs are pinned bit-identical to the pre-refactor private copies by
// test_fleet_stats regression values.
double percentile(std::vector<double> values, double pct) {
  return obs::percentile(std::move(values), pct);
}

double jain_fairness(const std::vector<double>& values) {
  return obs::jain_fairness(values);
}

namespace {

// One streaming pass shared by both overloads. Replicates the historical
// materializing implementation bit-for-bit:
//   * the Jain accumulators run over read tags' goodputs in tag order —
//     the exact element order obs::jain_fairness saw, with the same
//     sum / sum_sq recurrence and the same empty/all-zero guards;
//   * the latency sample is sorted once and interrogated through
//     obs::percentile_sorted, which is what obs::percentile does to its
//     private copy — same sorted sequence, same interpolation.
// test_fleet_stats pins the resulting digests.
template <typename ReadFn, typename FirstReadFn, typename DeliveredFn>
FleetStats summarize_streaming(std::size_t count, double duration_s,
                               ReadFn&& is_read, FirstReadFn&& first_read_s,
                               DeliveredFn&& delivered_bits) {
  FleetStats stats;
  stats.tags_total = static_cast<int>(count);
  stats.duration_s = duration_s;

  std::vector<double> latencies;
  latencies.reserve(count);
  double read_goodput_sum = 0.0;
  double jain_sum = 0.0;
  double jain_sum_sq = 0.0;
  for (std::size_t t = 0; t < count; ++t) {
    const double goodput =
        duration_s > 0.0 ? delivered_bits(t) / duration_s : 0.0;
    stats.goodput_total_bps += goodput;
    if (!is_read(t)) continue;
    ++stats.tags_read;
    latencies.push_back(first_read_s(t));
    read_goodput_sum += goodput;
    jain_sum += goodput;
    jain_sum_sq += goodput * goodput;
  }
  std::sort(latencies.begin(), latencies.end());
  stats.latency_p50_s = obs::percentile_sorted(latencies, 50.0);
  stats.latency_p95_s = obs::percentile_sorted(latencies, 95.0);
  stats.latency_p99_s = obs::percentile_sorted(latencies, 99.0);
  stats.goodput_mean_bps =
      stats.tags_read == 0
          ? 0.0
          : read_goodput_sum / static_cast<double>(stats.tags_read);
  stats.jain = (stats.tags_read == 0 || jain_sum_sq <= 0.0)
                   ? 0.0
                   : jain_sum * jain_sum /
                         (static_cast<double>(stats.tags_read) * jain_sum_sq);
  return stats;
}

}  // namespace

FleetStats summarize_service(const std::vector<TagService>& service,
                             double duration_s) {
  return summarize_streaming(
      service.size(), duration_s,
      [&](std::size_t t) { return service[t].read; },
      [&](std::size_t t) { return service[t].first_read_s; },
      [&](std::size_t t) { return service[t].delivered_bits; });
}

FleetStats summarize_service(const ServiceColumns& service,
                             double duration_s) {
  return summarize_streaming(
      service.count, duration_s,
      [&](std::size_t t) { return service.read[t] != 0; },
      [&](std::size_t t) { return service.first_read_s[t]; },
      [&](std::size_t t) { return service.delivered_bits[t]; });
}

std::uint64_t fingerprint(const FleetStats& stats) {
  // obs::Fnv1a uses the same offset basis, prime, and canonical-NaN rule
  // as the hand-rolled mixer this replaced, so fingerprints are unchanged.
  obs::Fnv1a hasher;
  hasher.mix_bytes(&stats.tags_total, sizeof(stats.tags_total));
  hasher.mix_bytes(&stats.tags_read, sizeof(stats.tags_read));
  hasher.mix_bytes(&stats.handoffs, sizeof(stats.handoffs));
  hasher.mix_double(stats.duration_s);
  hasher.mix_double(stats.latency_p50_s);
  hasher.mix_double(stats.latency_p95_s);
  hasher.mix_double(stats.latency_p99_s);
  hasher.mix_double(stats.goodput_mean_bps);
  hasher.mix_double(stats.goodput_total_bps);
  hasher.mix_double(stats.jain);
  hasher.mix_double(stats.reader_utilization);
  return hasher.digest();
}

sim::Table fleet_stats_table(const FleetStats& stats) {
  sim::Table table({"tags_read", "coverage", "p50_ms", "p95_ms", "p99_ms",
                    "tags/s", "goodput_mean", "jain", "reader_util",
                    "cache_hit", "handoffs"});
  const auto ms = [](double s) {
    return std::isnan(s) ? std::string("-") : sim::Table::fmt(s * 1e3, 2);
  };
  table.add_row({std::to_string(stats.tags_read) + "/" +
                     std::to_string(stats.tags_total),
                 sim::Table::fmt(stats.coverage() * 100.0, 1) + "%",
                 ms(stats.latency_p50_s), ms(stats.latency_p95_s),
                 ms(stats.latency_p99_s),
                 sim::Table::fmt(stats.tags_read_per_s(), 0),
                 sim::Table::fmt_rate(stats.goodput_mean_bps),
                 sim::Table::fmt(stats.jain, 3),
                 sim::Table::fmt(stats.reader_utilization, 3),
                 sim::Table::fmt(stats.cache_hit_rate(), 3),
                 std::to_string(stats.handoffs)});
  return table;
}

}  // namespace mmtag::deploy
