#include "src/deploy/fleet_stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace mmtag::deploy {

double percentile(std::vector<double> values, double pct) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

double jain_fairness(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : values) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

FleetStats summarize_service(const std::vector<TagService>& service,
                             double duration_s) {
  FleetStats stats;
  stats.tags_total = static_cast<int>(service.size());
  stats.duration_s = duration_s;

  std::vector<double> latencies;
  std::vector<double> goodputs;
  latencies.reserve(service.size());
  goodputs.reserve(service.size());
  double read_goodput_sum = 0.0;
  for (const TagService& tag : service) {
    const double goodput =
        duration_s > 0.0 ? tag.delivered_bits / duration_s : 0.0;
    stats.goodput_total_bps += goodput;
    if (!tag.read) continue;
    ++stats.tags_read;
    latencies.push_back(tag.first_read_s);
    goodputs.push_back(goodput);
    read_goodput_sum += goodput;
  }
  stats.latency_p50_s = percentile(latencies, 50.0);
  stats.latency_p95_s = percentile(latencies, 95.0);
  stats.latency_p99_s = percentile(latencies, 99.0);
  stats.goodput_mean_bps =
      goodputs.empty()
          ? 0.0
          : read_goodput_sum / static_cast<double>(goodputs.size());
  stats.jain = jain_fairness(goodputs);
  return stats;
}

namespace {

void fnv_mix(std::uint64_t& hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001B3ull;
  }
}

void fnv_mix_double(std::uint64_t& hash, double value) {
  // NaN percentiles (no tags read) hash via a canonical bit pattern so two
  // equally-empty runs still agree.
  std::uint64_t bits = 0;
  if (std::isnan(value)) {
    bits = 0x7FF8000000000000ull;
  } else {
    std::memcpy(&bits, &value, sizeof(bits));
  }
  fnv_mix(hash, &bits, sizeof(bits));
}

}  // namespace

std::uint64_t fingerprint(const FleetStats& stats) {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  fnv_mix(hash, &stats.tags_total, sizeof(stats.tags_total));
  fnv_mix(hash, &stats.tags_read, sizeof(stats.tags_read));
  fnv_mix(hash, &stats.handoffs, sizeof(stats.handoffs));
  fnv_mix_double(hash, stats.duration_s);
  fnv_mix_double(hash, stats.latency_p50_s);
  fnv_mix_double(hash, stats.latency_p95_s);
  fnv_mix_double(hash, stats.latency_p99_s);
  fnv_mix_double(hash, stats.goodput_mean_bps);
  fnv_mix_double(hash, stats.goodput_total_bps);
  fnv_mix_double(hash, stats.jain);
  fnv_mix_double(hash, stats.reader_utilization);
  return hash;
}

sim::Table fleet_stats_table(const FleetStats& stats) {
  sim::Table table({"tags_read", "coverage", "p50_ms", "p95_ms", "p99_ms",
                    "tags/s", "goodput_mean", "jain", "reader_util",
                    "cache_hit", "handoffs"});
  const auto ms = [](double s) {
    return std::isnan(s) ? std::string("-") : sim::Table::fmt(s * 1e3, 2);
  };
  table.add_row({std::to_string(stats.tags_read) + "/" +
                     std::to_string(stats.tags_total),
                 sim::Table::fmt(stats.coverage() * 100.0, 1) + "%",
                 ms(stats.latency_p50_s), ms(stats.latency_p95_s),
                 ms(stats.latency_p99_s),
                 sim::Table::fmt(stats.tags_read_per_s(), 0),
                 sim::Table::fmt_rate(stats.goodput_mean_bps),
                 sim::Table::fmt(stats.jain, 3),
                 sim::Table::fmt(stats.reader_utilization, 3),
                 sim::Table::fmt(stats.cache_hit_rate(), 3),
                 std::to_string(stats.handoffs)});
  return table;
}

}  // namespace mmtag::deploy
