// Cross-reader coordination: spectrum/time partitioning and handoff.
//
// E6 established that same-channel simultaneous readers do not coexist at
// room scale — wall bounces deliver carrier-level interference against
// microwatt tag responses. The coordinator turns that finding into policy:
// it hands every cell an airtime share and an interference load
// (CellPlan) under one of three regimes — simultaneous (raw SINR),
// channelized (round-robin channels, adjacent-channel rejection at the
// victim's filter), or TDM (1/M airtime, no interference) — and it owns
// tag↔cell membership, re-assigning mobile tags to their strongest reader
// and counting the handoffs.
//
// The interference model has two terms per victim: every other reader's
// query carrier over the ray-traced channel (reader::interference), and
// the far weaker backscatter of *other cells'* tag responses, approximated
// as the carrier term attenuated by a fixed tag-response excess loss.
#pragma once

#include <cstdint>
#include <vector>

#include "src/channel/environment.hpp"
#include "src/core/tag.hpp"
#include "src/deploy/cell.hpp"
#include "src/reader/reader.hpp"

namespace mmtag::deploy {

enum class CoordinationPolicy {
  kSimultaneous,  ///< Everyone on the same channel, all the time.
  kChannelized,   ///< channel = cell % channels; ACR protects neighbours.
  kTdm,           ///< Cells take turns: 1/M airtime, zero interference.
};

struct CoordinatorConfig {
  /// TDM is the default: E6 measured that same-channel readers do not
  /// coexist at room scale and that the 24 GHz ISM band fits only one
  /// 2 GHz-tier channel, so dense deployments must take turns. Channelized
  /// operation trades fairness for airtime where cells are far apart.
  CoordinationPolicy policy = CoordinationPolicy::kTdm;
  /// Frequency channels available for kChannelized (24 GHz ISM fits a
  /// handful of 200 MHz-tier channels; one 2 GHz-tier channel only).
  int channels = 4;
  /// Victim-filter rejection of an adjacent-channel carrier [dB] (E6).
  double adjacent_channel_rejection_db = 30.0;
  /// How far a tag's backscattered response sits below the aggressor
  /// reader's own carrier at the victim [dB]. Tag responses are two-way
  /// budgets; 30 dB is conservative for room-scale cells.
  double tag_response_excess_loss_db = 30.0;
};

class FleetCoordinator {
 public:
  explicit FleetCoordinator(CoordinatorConfig config);

  /// Per-cell plans for the current reader placement. Readers are assumed
  /// steered at their sector centre (worst-case static analysis — actual
  /// steering churns per dwell). O(M^2) ray traces; call per epoch, not
  /// per event.
  [[nodiscard]] std::vector<CellPlan> plan(
      const std::vector<reader::MmWaveReader>& readers,
      const channel::Environment& env) const;

  /// Membership: tag i belongs to cell tag_cell[i]. Initial assignment
  /// sends every tag to its nearest reader and counts no handoffs.
  [[nodiscard]] static std::vector<int> initial_assignment(
      const std::vector<core::MmTag>& tags,
      const std::vector<reader::MmWaveReader>& readers);

  /// Re-evaluate membership after mobility: a tag whose nearest reader
  /// changed hands off to it. Updates `tag_cell` in place and returns the
  /// number of handoffs performed.
  [[nodiscard]] static int reassign(
      const std::vector<core::MmTag>& tags,
      const std::vector<reader::MmWaveReader>& readers,
      std::vector<int>& tag_cell);

  /// Outage-aware reassignment: every tag goes to its nearest *live*
  /// reader (`live[r]` = reader r serves this epoch), which both evacuates
  /// tags orphaned by an outage and returns them once their home reader
  /// restarts. With every reader live this is exactly reassign(); with
  /// every reader dead membership is left untouched (nowhere to go).
  /// Returns the number of handoffs performed.
  [[nodiscard]] static int reassign_orphans(
      const std::vector<core::MmTag>& tags,
      const std::vector<reader::MmWaveReader>& readers,
      const std::vector<std::uint8_t>& live, std::vector<int>& tag_cell);

  /// Mesh-aware variant: a reader only receives tags when it is BOTH
  /// radio-live and backhaul-reachable (`reachable[r]`, from
  /// mesh::MeshTopology::gateway_reachable) — a live reader partitioned
  /// from every gateway can read tags but can never drain their inventory,
  /// so handing it orphans silently loses traffic. An empty `reachable`
  /// means no mesh is deployed and every live reader qualifies (exactly
  /// the overload above). With no reader serviceable, membership is left
  /// untouched. Returns the number of handoffs performed.
  [[nodiscard]] static int reassign_orphans(
      const std::vector<core::MmTag>& tags,
      const std::vector<reader::MmWaveReader>& readers,
      const std::vector<std::uint8_t>& live,
      const std::vector<std::uint8_t>& reachable,
      std::vector<int>& tag_cell);

  /// Expand membership into per-cell index lists (cell order, then tag
  /// order — deterministic).
  [[nodiscard]] static std::vector<std::vector<std::size_t>> rosters(
      const std::vector<int>& tag_cell, std::size_t cells);

  [[nodiscard]] const CoordinatorConfig& config() const { return config_; }

 private:
  CoordinatorConfig config_;
};

}  // namespace mmtag::deploy
