#include "src/deploy/cell.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>

#include "src/channel/geometry.hpp"
#include "src/mac/event_queue.hpp"
#include "src/obs/gate.hpp"
#include "src/obs/metrics.hpp"
#include "src/phy/frame.hpp"
#include "src/phys/units.hpp"
#include "src/reader/interference.hpp"

namespace mmtag::deploy {

namespace {

obs::Histogram& poll_cost_us_metric() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("deploy.cell.poll_us");
  return hist;
}

}  // namespace

ReaderCell::ReaderCell(int index, reader::MmWaveReader reader,
                       const channel::Environment* env,
                       const phy::RateTable* rates, CellConfig config,
                       bool use_cache)
    : index_(index),
      rates_(rates),
      config_(config),
      cache_(std::move(reader), env, rates, use_cache, index,
             config.link_cache_tag_capacity) {
  const double facing = cache_.reader().pose().orientation_rad;
  codebook_ = antenna::uniform_codebook(
      facing - config_.sector_half_angle_rad,
      facing + config_.sector_half_angle_rad, config_.beamwidth_deg);
}

CellEpochResult ReaderCell::run_epoch(
    const std::vector<core::MmTag>& tags,
    const std::vector<std::size_t>& tag_indices, const CellPlan& plan,
    double start_s, double duration_s, std::mt19937_64& rng,
    const CellFaultContext* faults) {
  CellEpochResult result;
  result.cell_index = index_;
  result.tags_assigned = static_cast<int>(tag_indices.size());
  result.service.resize(tag_indices.size());

  const double budget_s = duration_s * plan.airtime_share *
                          (faults != nullptr ? faults->budget_scale : 1.0);
  if (budget_s <= 0.0) {
    // Reader down for the whole epoch: identify the roster, serve nobody.
    for (std::size_t k = 0; k < tag_indices.size(); ++k) {
      result.service[k].tag_id = tags[tag_indices[k]].id();
    }
    return result;
  }

  // --- Beam assignment over cached link budgets -------------------------
  // Each tag goes to the nearest-boresight beam; its rate is the cached
  // link budget degraded by the coordinator's interference load.
  const std::size_t n = tag_indices.size();
  std::vector<int> tag_beam(n, -1);
  std::vector<std::vector<std::size_t>> beam_members(codebook_.size());
  std::vector<double> beam_rate(codebook_.size(),
                                std::numeric_limits<double>::infinity());
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t gi = tag_indices[k];
    const core::MmTag& tag = tags[gi];
    result.service[k].tag_id = tag.id();
    if (faults != nullptr) {
      // A browned-out tag has no charge to answer with, and a quarantined
      // tag is deliberately left alone — neither contends in discovery.
      // Sentences are epoch-granular: each skipped epoch ticks the count
      // down, and the tag re-enters discovery once it reaches zero.
      // Fault-free runs never populate the map (one empty() check here).
      if ((*faults->tag_brownout)[gi] != 0) continue;
      if (!quarantine_.empty()) {
        const auto sentence = quarantine_.find(tag.id());
        if (sentence != quarantine_.end()) {
          if (--sentence->second <= 0) quarantine_.erase(sentence);
          continue;
        }
      }
    }
    const double bearing = channel::bearing_rad(
        cache_.reader().pose().position, tag.pose().position);
    int best = -1;
    double best_offset = std::numeric_limits<double>::infinity();
    for (std::size_t b = 0; b < codebook_.size(); ++b) {
      const double offset = std::abs(
          phys::wrap_angle_rad(codebook_[b].boresight_rad - bearing));
      if (offset < best_offset) {
        best_offset = offset;
        best = static_cast<int>(b);
      }
    }
    if (best < 0) continue;
    const reader::LinkReport& link =
        cache_.link(tag, best, codebook_[static_cast<std::size_t>(best)]
                                   .boresight_rad);
    double power_dbm = link.received_power_dbm;
    if (faults != nullptr) power_dbm -= (*faults->tag_loss_db)[gi];
    const double rate = reader::sinr_limited_rate_bps(
        power_dbm, plan.interference_dbm, *rates_);
    if (rate <= 0.0) continue;
    tag_beam[k] = best;
    beam_members[static_cast<std::size_t>(best)].push_back(k);
    auto& slowest = beam_rate[static_cast<std::size_t>(best)];
    slowest = std::min(slowest, rate);
  }

  // --- Discovery + polling on the event queue ---------------------------
  // Airtime is tracked in "on-air seconds"; under TDM the cell only holds
  // the channel an airtime_share of the wall clock, so an airtime instant t
  // maps to absolute fleet time start_s + t / airtime_share.
  const double frame_bits = 2.0 *  // Manchester.
      static_cast<double>(phy::TagFrame::frame_bits(config_.payload_bits));
  const double poll_bits =
      frame_bits + 2.0 * static_cast<double>(config_.poll_overhead_bits);

  mac::EventQueue queue;
  std::vector<std::size_t> discovered;  // Local ks, in read order.
  std::size_t beams_scanned = 0;
  std::size_t poll_cursor = 0;
  std::size_t dead_polls = 0;  // Consecutive skips; all-dead ends the epoch.
  int poll_beam = -1;
  std::bernoulli_distribution poll_success(
      config_.aloha.slot_success_probability);

  // Per-tag retry state (fault path only): a per-destination failure
  // ledger, earliest next attempt (exponential backoff), and an
  // epoch-local quarantined flag mirroring the cross-epoch quarantine_
  // map.
  resil::RetryLedger retries;
  std::vector<double> retry_at;
  std::vector<std::uint8_t> benched;
  if (faults != nullptr) {
    retries = resil::RetryLedger(n);
    retry_at.assign(n, 0.0);
    benched.assign(n, 0);
  }
  const fault::RecoveryConfig& recovery = config_.recovery;
  // Effective poll retry policy: fields the caller left at their inherit
  // defaults fall back to the legacy RecoveryConfig constants, and the
  // resulting delay ladder (ldexp(base, fails-1) == base * 2^(fails-1),
  // exact in binary) keeps the frozen fleet fingerprints bit-identical.
  resil::RetryPolicy poll_policy = config_.poll_retry;
  if (!poll_policy.backs_off()) {
    poll_policy.base_s = recovery.poll_backoff_base_s;
  }
  const int poll_budget =
      poll_policy.effective_budget(recovery.poll_retry_budget);

  std::function<void()> run_polling = [&] {
    if (discovered.empty()) return;
    std::size_t k;
    if (faults == nullptr) {
      k = discovered[poll_cursor % discovered.size()];
      ++poll_cursor;
    } else {
      // Round-robin over tags that are eligible now; tags backing off are
      // revisited when their retry timer lands, quarantined tags never.
      std::size_t probes = 0;
      std::size_t chosen = n;
      double next_retry = std::numeric_limits<double>::infinity();
      while (probes < discovered.size()) {
        const std::size_t cand =
            discovered[(poll_cursor + probes) % discovered.size()];
        ++probes;
        if (benched[cand] != 0) continue;
        if (retry_at[cand] > queue.now()) {
          next_retry = std::min(next_retry, retry_at[cand]);
          continue;
        }
        chosen = cand;
        break;
      }
      if (chosen == n) {
        // Everyone is waiting out a backoff (or quarantined): idle until
        // the earliest retry instead of busy-spinning the event queue.
        if (std::isfinite(next_retry) && next_retry <= budget_s) {
          queue.schedule(next_retry, run_polling);
        }
        return;
      }
      poll_cursor += probes;
      k = chosen;
    }
    const std::size_t gi = tag_indices[k];
    // Every poll re-checks the link budget (the tag may have moved since
    // discovery) — this is the fleet hot loop the LinkCache exists for:
    // static geometry answers from cache, moved tags re-trace.
    const auto beam = static_cast<std::size_t>(tag_beam[k]);
    const reader::LinkReport& link = cache_.link(
        tags[gi], tag_beam[k], codebook_[beam].boresight_rad);
    double power_dbm = link.received_power_dbm;
    if (faults != nullptr) power_dbm -= (*faults->tag_loss_db)[gi];
    const double rate = reader::sinr_limited_rate_bps(
        power_dbm, plan.interference_dbm, *rates_);
    // A blocked link swallows individual queries outright; a dead link
    // (blockage/stuck attenuation pushed it below the rate floor) answers
    // nothing either. Both consume a timeout in the fault path.
    bool responded = rate > 0.0;
    if (faults != nullptr && responded && (*faults->tag_blocked)[gi] != 0) {
      std::uniform_real_distribution<double> uniform(0.0, 1.0);
      responded = uniform(rng) >= faults->block_probability;
    }
    if (rate <= 0.0 && faults == nullptr) {
      // Link lost since discovery: skip this tag (fault-free semantics).
      if (++dead_polls < discovered.size()) {
        queue.schedule_in(0.0, run_polling);
      }
      return;
    }
    dead_polls = 0;
    double cost_s =
        responded ? poll_bits / rate : recovery.poll_timeout_s;
    if (tag_beam[k] != poll_beam) {
      cost_s += config_.beam_switch_overhead_s;
      poll_beam = tag_beam[k];
    }
    if (queue.now() + cost_s > budget_s) return;  // Epoch airtime spent.
    TagService& service = result.service[k];
    ++service.polls;
    if constexpr (obs::kObsEnabled) {
      poll_cost_us_metric().record(
          static_cast<std::uint64_t>(cost_s * 1e6));
    }
    if (responded) {
      if (faults != nullptr) {
        retries.reset(k);
        retry_at[k] = 0.0;
      }
      if (poll_success(rng)) {
        service.delivered_bits += static_cast<double>(config_.payload_bits);
      }
    } else {
      // No response: burn the timeout, back off exponentially, and after
      // the retry budget park the tag in quarantine so a dead link stops
      // taxing everyone else's airtime.
      ++result.polls_timed_out;
      const int fails = retries.charge(k);
      if (poll_budget > 0 && poll_policy.exhausted(fails - 1, poll_budget)) {
        benched[k] = 1;
        quarantine_[service.tag_id] = recovery.quarantine_epochs;
        ++result.quarantines;
      } else {
        retry_at[k] = queue.now() + cost_s +
                      poll_policy.delay_s(fails, service.tag_id);
      }
    }
    queue.schedule_in(cost_s, run_polling);
  };

  const auto start_polling = [&] {
    // Visit discovered tags sorted by beam to minimise switches.
    std::sort(discovered.begin(), discovered.end(),
              [&](std::size_t a, std::size_t b) {
                if (tag_beam[a] != tag_beam[b])
                  return tag_beam[a] < tag_beam[b];
                return a < b;
              });
    run_polling();
  };

  std::function<void()> run_discovery = [&] {
    // Resume the sector scan at the persistent cursor; empty beams cost
    // nothing (no tag responds, the reader moves straight on — same
    // convention as SdmInventory).
    while (beams_scanned < codebook_.size() &&
           beam_members[scan_cursor_].empty()) {
      scan_cursor_ = (scan_cursor_ + 1) % codebook_.size();
      ++beams_scanned;
    }
    if (beams_scanned >= codebook_.size()) {
      start_polling();  // Scan complete: serve tags for the rest.
      return;
    }
    const std::size_t b = scan_cursor_;
    std::vector<std::size_t>& members = beam_members[b];
    const double slot_s = frame_bits / beam_rate[b];
    const mac::AlohaStats aloha = run_framed_aloha(
        static_cast<int>(members.size()), config_.aloha, rng);
    const double dwell_s =
        config_.beam_switch_overhead_s +
        static_cast<double>(aloha.slots_total) * slot_s;
    if (queue.now() + dwell_s > budget_s) {
      // Out of airtime mid-scan: the cursor stays on this beam so the next
      // epoch picks up exactly here instead of starving the sector tail.
      start_polling();
      return;
    }
    scan_cursor_ = (b + 1) % codebook_.size();
    ++beams_scanned;
    // Aloha resolves a uniform-random subset of the contenders; pick it
    // from the cell's stream so the outcome is reproducible.
    std::shuffle(members.begin(), members.end(), rng);
    const double read_at_s = queue.now() + dwell_s;
    for (int i = 0; i < aloha.tags_read &&
                    i < static_cast<int>(members.size());
         ++i) {
      const std::size_t k = members[static_cast<std::size_t>(i)];
      TagService& service = result.service[k];
      service.read = true;
      service.first_read_s = start_s + read_at_s / plan.airtime_share;
      discovered.push_back(k);
    }
    queue.schedule_in(dwell_s, run_discovery);
  };

  queue.schedule(0.0, run_discovery);
  queue.run();

  result.tags_discovered = static_cast<int>(discovered.size());
  result.airtime_s = std::min(queue.now(), budget_s);
  result.utilization = budget_s > 0.0 ? result.airtime_s / budget_s : 0.0;
  return result;
}

}  // namespace mmtag::deploy
