#include "src/deploy/fleet.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <memory>
#include <random>

#include "src/channel/geometry.hpp"
#include "src/impair/loss.hpp"
#include "src/obs/gate.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/phys/constants.hpp"
#include "src/scale/bridge.hpp"
#include "src/sim/rng.hpp"

namespace mmtag::deploy {

namespace {

obs::Histogram& cell_epoch_ns_metric() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("deploy.cell.epoch_ns");
  return hist;
}
obs::Counter& epochs_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("deploy.fleet.epochs");
  return counter;
}
obs::Counter& tags_read_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("deploy.fleet.tags_discovered");
  return counter;
}
obs::Counter& handoffs_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("deploy.fleet.handoffs");
  return counter;
}
obs::Histogram& first_read_us_metric() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("deploy.fleet.first_read_us");
  return hist;
}
obs::Counter& fault_counter(const char* name) {
  return obs::Registry::instance().counter(name);
}
obs::Histogram& mttr_us_metric() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("fault.mttr_us");
  return hist;
}
obs::Histogram& recovery_epochs_metric() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("fault.recovery_epochs");
  return hist;
}
obs::Histogram& availability_ppm_metric() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("fault.availability_ppm");
  return hist;
}

/// Everything the chaos run observed, mirrored into the obs registry so
/// bench --json reports carry MTTR/availability without re-running.
void record_fault_metrics(const fault::FaultReport& report,
                          const std::vector<double>& recoveries_s,
                          double epoch_duration_s) {
  if constexpr (!obs::kObsEnabled) return;
  fault_counter("fault.reader_outages")
      .add(static_cast<std::uint64_t>(report.reader_outages));
  fault_counter("fault.orphan_handoffs")
      .add(static_cast<std::uint64_t>(report.orphan_handoffs));
  fault_counter("fault.brownout_epochs")
      .add(static_cast<std::uint64_t>(report.tag_brownout_epochs));
  fault_counter("fault.blocked_epochs")
      .add(static_cast<std::uint64_t>(report.tag_blocked_epochs));
  fault_counter("fault.polls_timed_out")
      .add(static_cast<std::uint64_t>(report.polls_timed_out));
  fault_counter("fault.quarantines")
      .add(static_cast<std::uint64_t>(report.quarantines));
  fault_counter("fault.cache_evictions").add(report.cache_evictions);
  fault_counter("fault.orphaned_tag_ms")
      .add(static_cast<std::uint64_t>(report.orphaned_tag_s * 1e3));
  for (const double r : recoveries_s) {
    mttr_us_metric().record(static_cast<std::uint64_t>(r * 1e6));
    recovery_epochs_metric().record(static_cast<std::uint64_t>(
        std::ceil(r / epoch_duration_s)));
  }
  availability_ppm_metric().record(
      static_cast<std::uint64_t>(report.availability * 1e6));
}

}  // namespace

FleetSimulator::FleetSimulator(FleetConfig config)
    : config_(std::move(config)) {
  assert(config_.epochs > 0 && config_.epoch_duration_s > 0.0);
  // One recovery knob at fleet level: cells read their copy.
  config_.cell.recovery = config_.recovery;
}

FleetResult FleetSimulator::run() {
  MMTAG_OBS_SPAN("deploy.fleet.run");
  FleetLayout layout = make_layout(config_.layout);
  const phy::RateTable rates = phy::RateTable::mmtag_standard();
  const std::size_t m = layout.reader_poses.size();
  const std::size_t n = layout.tags.size();

  // With impairments enabled, the fleet's readers swap their opaque
  // implementation-loss scalar for the decomposed stage total; all-off
  // keeps the exact prototype parameters (bypass contract).
  reader::MmWaveReader::Params reader_params{};
  if (config_.impairments.any_enabled()) {
    const impair::LossReport loss = impair::decompose(config_.impairments);
    impair::record(loss);
    reader_params.implementation_loss_db = loss.total_db;
  }

  std::vector<reader::MmWaveReader> readers;
  readers.reserve(m);
  std::vector<ReaderCell> cells;
  cells.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    readers.emplace_back(layout.reader_poses[i], reader_params);
    cells.emplace_back(static_cast<int>(i), readers.back(),
                       &layout.environment, &rates, config_.cell,
                       config_.use_link_cache);
  }

  const FleetCoordinator coordinator(config_.coordination);
  // Readers are static, so the spectrum/airtime plan holds for the whole
  // run; membership is re-evaluated after every mobility step.
  const std::vector<CellPlan> plans =
      coordinator.plan(readers, layout.environment);
  std::vector<int> tag_cell =
      FleetCoordinator::initial_assignment(layout.tags, readers);

  // Disjoint stream families per concern, all rooted at config_.seed.
  const std::uint64_t cell_base = sim::derive_seed(config_.seed, 0x63656C6C);
  const std::uint64_t move_base = sim::derive_seed(config_.seed, 0x6D6F7665);

  // Chaos: the engine exists only when a schedule is armed; a fault-free
  // run never touches it (identical code path, identical RNG draws). All
  // fault randomness is realized on this thread in begin_epoch, before the
  // parallel fan-out, so thread count cannot influence a single draw.
  std::unique_ptr<fault::FaultEngine> engine;
  if (config_.faults.active()) {
    engine = std::make_unique<fault::FaultEngine>(
        config_.faults, m, n, config_.epochs, config_.epoch_duration_s,
        sim::derive_seed(config_.seed, 0x66617574));  // "faut"
  }
  fault::FaultReport report;
  long orphaned_tag_epochs = 0;
  std::vector<CellFaultContext> fault_ctx(engine ? m : 0);
  std::vector<std::uint8_t> live(m, 1);
  // live + backhaul-reachable: the readers that can actually drain
  // inventory this epoch. Identical to `live` without a mesh hook.
  std::vector<std::uint8_t> serviceable(m, 1);

  // Per-tag service state lives in SoA columns (scale::TagStore) behind
  // the compatibility bridge; accumulation order and arithmetic match the
  // historical vector<TagService> merge exactly, so every pinned
  // fingerprint is preserved.
  scale::FleetTagBridge bridge(layout.tags);
  std::vector<CellEpochResult> epoch_results(m);
  int handoffs = 0;
  double utilization_sum = 0.0;
  std::uint64_t reads_total = 0;

  sim::ThreadPool pool(config_.threads);
  const auto t0 = std::chrono::steady_clock::now();
  for (int e = 0; e < config_.epochs; ++e) {
    MMTAG_OBS_SPAN("deploy.fleet.epoch");
    if (engine) {
      const fault::EpochFaults& ef = engine->begin_epoch(e);
      for (std::size_t r = 0; r < m; ++r) {
        live[r] = ef.reader_up[r] > 0.0 ? 1 : 0;
        if (ef.reader_restarted[r] != 0 &&
            config_.recovery.invalidate_cache_on_restart) {
          report.cache_evictions += cells[r].on_reader_restarted();
        }
        // Budget left after the outage and the drift guard time, as a
        // fraction of the cell's granted airtime.
        const double granted_s =
            config_.epoch_duration_s * plans[r].airtime_share;
        const double avail_s =
            ef.reader_up[r] * granted_s - ef.reader_skew_loss_s[r];
        fault_ctx[r].budget_scale =
            granted_s > 0.0 ? std::clamp(avail_s / granted_s, 0.0, 1.0)
                            : 0.0;
        fault_ctx[r].tag_brownout = &ef.tag_brownout;
        fault_ctx[r].tag_loss_db = &ef.tag_loss_db;
        fault_ctx[r].tag_blocked = &ef.tag_blocked;
        fault_ctx[r].block_probability = ef.block_probability;
      }
      std::vector<std::uint8_t> reachable;
      if (config_.backhaul_reachable) {
        reachable = config_.backhaul_reachable(e, live);
      }
      for (std::size_t r = 0; r < m; ++r) {
        serviceable[r] =
            (live[r] != 0 && (reachable.empty() || reachable[r] != 0)) ? 1
                                                                       : 0;
      }
      if (config_.recovery.reassign_orphans) {
        report.orphan_handoffs += FleetCoordinator::reassign_orphans(
            layout.tags, readers, live, reachable, tag_cell);
      }
      for (std::size_t t = 0; t < n; ++t) {
        report.tag_brownout_epochs += ef.tag_brownout[t];
        report.tag_blocked_epochs += ef.tag_blocked[t];
      }
    }
    const std::vector<std::vector<std::size_t>> rosters =
        FleetCoordinator::rosters(tag_cell, m);
    if (engine) {
      // Tags that spend this epoch bound to a dead (or mesh-partitioned —
      // readable but undrainable) reader are orphaned; with re-handoff
      // enabled this only happens in a total blackout or total partition.
      for (std::size_t r = 0; r < m; ++r) {
        if (serviceable[r] == 0) {
          orphaned_tag_epochs += static_cast<long>(rosters[r].size());
        }
      }
    }
    const double start_s = e * config_.epoch_duration_s;
    pool.parallel_for(m, [&](std::size_t c) {
      // Cell-private stream: scheduling order can never leak into results.
      std::mt19937_64 rng = sim::make_rng(sim::derive_seed(
          cell_base, static_cast<std::uint64_t>(e) * m + c));
      std::uint64_t cell_start_ns = 0;
      if constexpr (obs::kObsEnabled) {
        cell_start_ns = obs::TraceSink::instance().now_ns();
      }
      epoch_results[c] =
          cells[c].run_epoch(layout.tags, rosters[c], plans[c], start_s,
                             config_.epoch_duration_s, rng,
                             engine ? &fault_ctx[c] : nullptr);
      if constexpr (obs::kObsEnabled) {
        cell_epoch_ns_metric().record(obs::TraceSink::instance().now_ns() -
                                      cell_start_ns);
      }
    });
    if constexpr (obs::kObsEnabled) epochs_metric().add(1);

    // Merge in (cell, roster) order — fixed regardless of which worker
    // finished first.
    for (std::size_t c = 0; c < m; ++c) {
      const CellEpochResult& cell = epoch_results[c];
      for (std::size_t k = 0; k < rosters[c].size(); ++k) {
        const TagService& seen = cell.service[k];
        bridge.accumulate(rosters[c][k], seen.read, seen.first_read_s,
                          seen.delivered_bits, seen.polls);
      }
      utilization_sum += cell.airtime_s / config_.epoch_duration_s;
      reads_total += static_cast<std::uint64_t>(cell.tags_discovered);
      report.polls_timed_out += cell.polls_timed_out;
      report.quarantines += cell.quarantines;
    }

    // Backhaul drain point: the mesh layer forwards this epoch's inventory
    // here, after the deterministic merge, on the coordinating thread.
    if (config_.epoch_observer) {
      config_.epoch_observer(e, epoch_results, live);
    }

    if (e + 1 < config_.epochs && config_.mobile_fraction > 0.0) {
      const auto movers = static_cast<std::size_t>(
          std::floor(config_.mobile_fraction * static_cast<double>(n)));
      const double step_m =
          config_.mobile_speed_mps * config_.epoch_duration_s;
      const double margin = config_.layout.margin_m;
      for (std::size_t t = 0; t < movers && t < n; ++t) {
        std::mt19937_64 rng = sim::make_rng(sim::derive_seed(
            move_base, static_cast<std::uint64_t>(e) * n + t));
        std::uniform_real_distribution<double> heading(0.0, phys::kTwoPi);
        const double dir = heading(rng);
        channel::Vec2 pos = layout.tags[t].pose().position;
        pos.x = std::clamp(pos.x + step_m * std::cos(dir), margin,
                           config_.layout.width_m - margin);
        pos.y = std::clamp(pos.y + step_m * std::sin(dir), margin,
                           config_.layout.height_m - margin);
        const std::size_t owner = nearest_reader(layout.reader_poses, pos);
        layout.tags[t].set_pose(core::Pose{
            pos, channel::bearing_rad(
                     pos, layout.reader_poses[owner].position)});
        bridge.on_tag_moved(t, layout.tags[t].pose());
        for (ReaderCell& cell : cells) {
          cell.on_tag_moved(layout.tags[t].id());
        }
      }
      handoffs += FleetCoordinator::reassign(layout.tags, readers, tag_cell);
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  FleetResult result;
  const double duration_s = config_.epochs * config_.epoch_duration_s;
  const scale::TagStore& store = bridge.store();
  result.stats = summarize_service(
      ServiceColumns{store.slots(), store.read_flags(), store.first_read_s(),
                     store.delivered_bits()},
      duration_s);
  result.stats.readers = static_cast<int>(m);
  result.stats.handoffs = handoffs;
  result.stats.reader_utilization =
      utilization_sum / static_cast<double>(m * config_.epochs);
  for (const ReaderCell& cell : cells) {
    const LinkCache::Stats& cache = cell.cache().stats();
    result.stats.cache_lookups += cache.lookups;
    result.stats.cache_hits += cache.hits;
    result.stats.raytrace_evals += cache.raytrace_evals;
  }
  if constexpr (obs::kObsEnabled) {
    tags_read_metric().add(reads_total);
    handoffs_metric().add(static_cast<std::uint64_t>(handoffs));
    for (std::size_t t = 0; t < store.slots(); ++t) {
      if (store.read_flags()[t] != 0) {
        first_read_us_metric().record(
            static_cast<std::uint64_t>(store.first_read_s()[t] * 1e6));
      }
    }
  }
  if (engine) {
    for (const std::vector<fault::Outage>& timeline :
         engine->outage_timelines()) {
      for (const fault::Outage& o : timeline) {
        if (o.start_s >= duration_s) continue;
        ++report.reader_outages;
        report.reader_downtime_s +=
            std::min(o.end_s(), duration_s) - o.start_s;
      }
    }
    report.orphaned_tag_s =
        static_cast<double>(orphaned_tag_epochs) * config_.epoch_duration_s;
    const double tag_epochs =
        static_cast<double>(n) * static_cast<double>(config_.epochs);
    report.availability =
        tag_epochs > 0.0
            ? 1.0 - static_cast<double>(orphaned_tag_epochs) / tag_epochs
            : 1.0;
    const std::vector<double> recoveries =
        engine->recovery_times_s(config_.recovery.reassign_orphans);
    double mttr_sum = 0.0;
    for (const double r : recoveries) {
      mttr_sum += r;
      report.mttr_max_s = std::max(report.mttr_max_s, r);
    }
    report.mttr_mean_s =
        recoveries.empty() ? 0.0
                           : mttr_sum / static_cast<double>(recoveries.size());
    report.stuck_tags = engine->stuck_tag_count();
    record_fault_metrics(report, recoveries, config_.epoch_duration_s);
  }
  result.fault = report;
  // Materialize the AoS service export (mesh/net consumers) once, from
  // the columns — the only per-tag record construction in the run.
  result.service.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    TagService& tag = result.service[t];
    tag.tag_id = store.ids()[t];
    tag.read = store.read_flags()[t] != 0;
    tag.first_read_s = store.first_read_s()[t];
    tag.delivered_bits = store.delivered_bits()[t];
    tag.polls = store.polls()[t];
  }
  result.last_epoch = std::move(epoch_results);
  result.plans = plans;
  result.sweep.points = m * static_cast<std::size_t>(config_.epochs);
  result.sweep.threads = pool.size();
  result.sweep.wall_s = wall_s;
  result.sweep.units = reads_total;
  return result;
}

}  // namespace mmtag::deploy
