// Shared exact statistics helpers: percentiles, fairness, fingerprints.
//
// These used to live as private copies inside deploy::fleet_stats; they
// are the process-wide canonical versions now so every layer (fleet
// aggregates, bench harness timing summaries, obs histograms' exact
// counterparts) computes distributional numbers with the same algorithm
// and the same bit patterns. deploy::fleet_stats delegates here — its
// outputs are pinned bit-identical by regression test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmtag::obs {

/// Linear-interpolation percentile (pct in [0, 100]) of `values`. The
/// input need not be sorted; a copy is sorted internally. Empty input
/// returns NaN.
[[nodiscard]] double percentile(std::vector<double> values, double pct);

/// Percentile over an already-sorted sample (no copy, no sort).
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double pct);

/// Jain fairness index (sum x)^2 / (n * sum x^2) in (0, 1]; 1 means all
/// shares equal. Empty or all-zero input returns 0.
[[nodiscard]] double jain_fairness(const std::vector<double>& values);

/// Incremental FNV-1a 64-bit hasher with a canonical-NaN rule for doubles,
/// so two runs that agree on every observable (including "no data" NaNs)
/// produce the same digest.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xCBF29CE484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001B3ull;

  void mix_bytes(const void* data, std::size_t bytes) noexcept;
  /// NaNs hash via the canonical quiet-NaN bit pattern; every other value
  /// hashes its exact representation.
  void mix_double(double value) noexcept;
  void mix_u64(std::uint64_t value) noexcept {
    mix_bytes(&value, sizeof(value));
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

}  // namespace mmtag::obs
