#include "src/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace mmtag::obs {

std::size_t Counter::shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

bool Histogram::record(double value) noexcept {
  if constexpr (!kObsEnabled) {
    (void)value;
    return true;
  }
  if (std::isnan(value) || value < 0.0) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // 2^64 rounds to 1.8446744073709552e19 exactly; >= catches +inf too.
  if (value >= 18446744073709551616.0) {
    buckets_[kOverflowBucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  record(static_cast<std::uint64_t>(value));
  return true;
}

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kLinearBuckets) return static_cast<std::size_t>(value);
  const int msb = std::bit_width(value) - 1;  // >= 4 here.
  const std::size_t sub =
      static_cast<std::size_t>(value >> (msb - 3)) & (kSubBuckets - 1);
  return kLinearBuckets +
         static_cast<std::size_t>(msb - 4) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_lower_bound(std::size_t bucket) noexcept {
  if (bucket < kLinearBuckets) return bucket;
  if (bucket >= kBuckets) return std::numeric_limits<std::uint64_t>::max();
  const std::size_t octave = 4 + (bucket - kLinearBuckets) / kSubBuckets;
  const std::size_t sub = (bucket - kLinearBuckets) % kSubBuckets;
  return (std::uint64_t{kSubBuckets} + sub) << (octave - 3);
}

std::uint64_t Histogram::quantile(double pct) const noexcept {
  const Snapshot snap = snapshot();
  if (snap.count == 0) return 0;
  const double clamped = std::clamp(pct, 0.0, 100.0);
  // Rank of the selected value, 1-based, matching "pct of the mass lies at
  // or below this bucket".
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(snap.count)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
    cumulative += snap.buckets[b];
    if (cumulative >= target) return bucket_lower_bound(b);
  }
  return bucket_lower_bound(kOverflowBucket);
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
}

void Histogram::Snapshot::merge(const Snapshot& other) noexcept {
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
  count += other.count;
  sum += other.sum;
  rejected += other.rejected;
}

std::uint64_t Histogram::Snapshot::fingerprint() const noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  const auto mix = [&hash](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xFF;
      hash *= 0x100000001B3ull;
    }
  };
  for (const std::uint64_t b : buckets) mix(b);
  mix(count);
  mix(sum);
  mix(rejected);
  return hash;
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot snap;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.rejected = rejected_.load(std::memory_order_relaxed);
  return snap;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [existing, metric] : counters_) {
    if (existing == name) return *metric;
  }
  counters_.emplace_back(std::string(name), std::make_unique<Counter>());
  return *counters_.back().second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [existing, metric] : histograms_) {
    if (existing == name) return *metric;
  }
  histograms_.emplace_back(std::string(name),
                           std::make_unique<Histogram>());
  return *histograms_.back().second;
}

std::vector<Registry::CounterView> Registry::counters() const {
  std::vector<CounterView> views;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    views.reserve(counters_.size());
    for (const auto& [name, metric] : counters_) {
      views.push_back(CounterView{name, metric->value()});
    }
  }
  std::sort(views.begin(), views.end(),
            [](const CounterView& a, const CounterView& b) {
              return a.name < b.name;
            });
  return views;
}

std::vector<Registry::HistogramView> Registry::histograms() const {
  std::vector<HistogramView> views;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    views.reserve(histograms_.size());
    for (const auto& [name, metric] : histograms_) {
      HistogramView view;
      view.name = name;
      view.count = metric->count();
      view.sum = metric->sum();
      view.rejected = metric->rejected();
      view.overflow = metric->overflow();
      view.mean = metric->mean();
      view.p50 = metric->quantile(50.0);
      view.p90 = metric->quantile(90.0);
      view.p99 = metric->quantile(99.0);
      views.push_back(std::move(view));
    }
  }
  std::sort(views.begin(), views.end(),
            [](const HistogramView& a, const HistogramView& b) {
              return a.name < b.name;
            });
  return views;
}

void Registry::reset_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, metric] : counters_) metric->reset();
  for (auto& [name, metric] : histograms_) metric->reset();
}

}  // namespace mmtag::obs
