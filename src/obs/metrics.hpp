// Lock-free process metrics: counters, log-bucketed histograms, registry.
//
// The rules that make these safe to put on hot paths:
//
//   * Recording is wait-free. A Counter spreads adds over cache-line-padded
//     shards indexed by a per-thread round-robin slot; a Histogram does one
//     relaxed fetch_add on the value's bucket. No locks, no allocation.
//   * Aggregation is deterministic. Reads (value(), snapshot()) walk the
//     shards/buckets in fixed index order, and every accumulated quantity
//     is an unsigned integer, so the total is bit-identical no matter how
//     many threads produced it or how their adds interleaved — the same
//     discipline as the sweep engine's fixed merge order (DESIGN.md
//     Sec. 7/9). Nothing here ever sums doubles across threads.
//   * Everything is gated. With MMTAG_OBS=0 the record methods are
//     if-constexpr'd to no-ops and instrumented code compiles to exactly
//     the uninstrumented binary.
//
// The Registry hands out named metrics with stable addresses; callers
// cache the reference in a function-local static so steady-state cost is
// one indirect load per record.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/gate.hpp"

namespace mmtag::obs {

/// Monotonic event counter, sharded to keep concurrent writers off each
/// other's cache lines.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    if constexpr (kObsEnabled) {
      shards_[shard_index()].value.fetch_add(n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }

  /// Sum of all shards, read in fixed shard order.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };

  /// Per-thread shard slot, assigned round-robin on first use.
  [[nodiscard]] static std::size_t shard_index() noexcept;

  std::array<Shard, kShards> shards_{};
};

/// Log-bucketed histogram over non-negative integer magnitudes (latency in
/// ns, bytes, ray counts, queue depths).
///
/// Bucket layout: values below 16 get exact unit buckets; above, each
/// power-of-two octave splits into 8 sub-buckets, for <= 12.5% relative
/// quantization error across the full uint64 range. One extra bucket
/// catches overflow (+inf or >= 2^64 when recording doubles). Counts are
/// relaxed atomics — integer adds commute, so totals are bit-identical for
/// any thread count — and snapshot() reads them in fixed bucket order.
class Histogram {
 public:
  static constexpr std::size_t kLinearBuckets = 16;
  static constexpr std::size_t kSubBuckets = 8;
  /// Octaves 4..63 each contribute kSubBuckets buckets.
  static constexpr std::size_t kBuckets =
      kLinearBuckets + (64 - 4) * kSubBuckets;
  static constexpr std::size_t kOverflowBucket = kBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) noexcept {
    if constexpr (kObsEnabled) {
      buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
      sum_.fetch_add(value, std::memory_order_relaxed);
    } else {
      (void)value;
    }
  }

  /// Floating-point entry point with explicit edge-case policy:
  /// NaN and negative values are rejected (counted separately, returns
  /// false); +inf and values >= 2^64 land in the overflow bucket; zero
  /// lands in the exact zero bucket. Finite in-range values truncate to
  /// integer magnitude.
  bool record(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  /// Sum of recorded integer magnitudes (overflow records excluded).
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t overflow() const noexcept {
    return buckets_[kOverflowBucket].load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
  }

  /// Quantile estimate (pct in [0, 100]): lower bound of the bucket holding
  /// the rank'th recorded value. Deterministic given the recorded multiset.
  /// Empty histogram returns 0.
  [[nodiscard]] std::uint64_t quantile(double pct) const noexcept;

  void reset() noexcept;

  /// Plain copy of the bucket state for merging and fingerprinting.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets + 1> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t rejected = 0;

    /// Fixed-order elementwise add: merging per-thread snapshots in any
    /// grouping yields identical totals.
    void merge(const Snapshot& other) noexcept;
    /// FNV-1a over the bucket array in index order — the bit-identity
    /// check used by the determinism tests.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;
  };

  [[nodiscard]] Snapshot snapshot() const noexcept;

  /// Bucket index for a value (kOverflowBucket never returned here: all
  /// uint64 values map into the finite layout).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept;
  /// Smallest value mapping to `bucket` (overflow bucket returns
  /// uint64 max).
  [[nodiscard]] static std::uint64_t bucket_lower_bound(
      std::size_t bucket) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets + 1> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

/// Process-wide named metric directory. Lookup takes a mutex (cache the
/// returned reference); returned references stay valid for the process
/// lifetime. Names are free-form dotted paths ("sim.pool.tasks").
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  struct CounterView {
    std::string name;
    std::uint64_t value = 0;
  };
  struct HistogramView {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t rejected = 0;
    std::uint64_t overflow = 0;
    double mean = 0.0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
  };

  /// Stable export order: sorted by name (registration order can vary
  /// across thread schedules; the export must not).
  [[nodiscard]] std::vector<CounterView> counters() const;
  [[nodiscard]] std::vector<HistogramView> histograms() const;

  /// Zero every metric (bench/test isolation between cases).
  void reset_all();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>>
      histograms_;
};

}  // namespace mmtag::obs
