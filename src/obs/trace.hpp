// Scoped tracing: RAII spans into a bounded ring-buffer sink.
//
// A Span marks a region of interest (a fleet epoch, a sweep, a cell's
// service pass); on destruction it pushes one fixed-size event into the
// process TraceSink. The sink is a preallocated ring — recording never
// allocates, and when the ring wraps the oldest events are overwritten
// (dropped() counts them), so tracing can stay on in long runs without
// unbounded memory. Export is JSONL: one event object per line, ready for
// jq or a trace viewer ingest script.
//
// Span names must be string literals (or otherwise outlive the sink):
// events store the pointer, not a copy — recording a span is two clock
// reads and one short critical section, nothing more.
//
// With MMTAG_OBS=0 the MMTAG_OBS_SPAN macro (gate.hpp) expands to nothing
// and instrumented scopes carry zero cost.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/gate.hpp"

namespace mmtag::obs {

/// One completed span. Times are nanoseconds on the steady clock, relative
/// to the sink's creation, so traces from one process share one timeline.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t thread = 0;  ///< Small sequential id, first-use order.
  std::uint32_t depth = 0;   ///< Span nesting depth at entry (0 = root).
};

class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  static TraceSink& instance();

  /// Resize the ring (drops currently buffered events). Capacity 0 is
  /// clamped to 1.
  void set_capacity(std::size_t capacity);

  /// Push one completed event; overwrites the oldest when full.
  void record(const TraceEvent& event);

  /// Copy out buffered events oldest-first and clear the ring.
  [[nodiscard]] std::vector<TraceEvent> drain();

  /// Events overwritten since the last drain()/set_capacity().
  [[nodiscard]] std::uint64_t dropped() const;

  /// Drain and render one JSON object per line:
  /// {"name":"...","ts_ns":...,"dur_ns":...,"tid":...,"depth":...}
  [[nodiscard]] std::string drain_jsonl();

  /// Nanoseconds since the sink epoch (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const;

 private:
  TraceSink();

  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< Next write position.
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t epoch_ns_ = 0;  ///< Steady-clock origin of the timeline.
};

/// RAII scope marker. Construct with a string literal; the destructor
/// records the completed event. Spans nest: a thread-local depth counter
/// tags each event with its nesting level, which the JSONL round-trip test
/// uses to rebuild the tree.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_;
  std::uint32_t depth_;
};

}  // namespace mmtag::obs
