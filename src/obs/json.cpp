#include "src/obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mmtag::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_number() ? member->as_double()
                                                  : fallback;
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  type_ = Type::kObject;
  for (auto& [name, existing] : object_) {
    if (name == key) {
      existing = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::push_back(JsonValue value) {
  type_ = Type::kArray;
  array_.push_back(std::move(value));
  return *this;
}

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Integers in the exactly-representable range print without a fraction
  // (counter values, bucket counts); everything else round-trips via %.17g.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void indent_to(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) *
                 static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: dump_number(out, number_); return;
    case Type::kString: dump_string(out, string_); return;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) indent_to(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (indent >= 0 && !array_.empty()) indent_to(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) indent_to(out, indent, depth + 1);
        dump_string(out, object_[i].first);
        out += indent >= 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0 && !object_.empty()) indent_to(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue value;
    if (!parse_value(value)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return value;
  }

 private:
  void fail(const char* message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(message) + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_literal(const char* literal) {
    const std::size_t len = std::strlen(literal);
    if (text_.substr(pos_, len) == literal) {
      pos_ += len;
      return true;
    }
    fail("invalid literal");
    return false;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      fail("expected '\"'");
      return false;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
              return false;
            }
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are not
          // combined — the schemas here never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected number");
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("malformed number");
      return false;
    }
    out = JsonValue(value);
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case 'n':
        if (!parse_literal("null")) return false;
        out = JsonValue();
        return true;
      case 't':
        if (!parse_literal("true")) return false;
        out = JsonValue(true);
        return true;
      case 'f':
        if (!parse_literal("false")) return false;
        out = JsonValue(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case '[': {
        ++pos_;
        out = JsonValue::array();
        skip_ws();
        if (consume(']')) return true;
        while (true) {
          JsonValue element;
          skip_ws();
          if (!parse_value(element)) return false;
          out.push_back(std::move(element));
          skip_ws();
          if (consume(']')) return true;
          if (!consume(',')) {
            fail("expected ',' or ']'");
            return false;
          }
        }
      }
      case '{': {
        ++pos_;
        out = JsonValue::object();
        skip_ws();
        if (consume('}')) return true;
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (!consume(':')) {
            fail("expected ':'");
            return false;
          }
          skip_ws();
          JsonValue member;
          if (!parse_value(member)) return false;
          out.set(std::move(key), std::move(member));
          skip_ws();
          if (consume('}')) return true;
          if (!consume(',')) {
            fail("expected ',' or '}'");
            return false;
          }
        }
      }
      default:
        return parse_number(out);
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).run();
}

}  // namespace mmtag::obs
