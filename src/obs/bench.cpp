#include "src/obs/bench.hpp"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/obs/metrics.hpp"
#include "src/obs/stats.hpp"

namespace mmtag::bench {

namespace {

double wall_now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double cpu_now_ns() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e9 +
           static_cast<double>(ts.tv_nsec);
  }
#endif
  return static_cast<double>(std::clock()) *
         (1e9 / static_cast<double>(CLOCKS_PER_SEC));
}

}  // namespace

std::string format_ns(double ns) {
  char buf[48];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%.0f ns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f us", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", ns / 1e9);
  }
  return buf;
}

std::string format_si(double value) {
  char buf[48];
  if (value >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f G", value / 1e9);
  } else if (value >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f M", value / 1e6);
  } else if (value >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f k", value / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", value);
  }
  return buf;
}

// --------------------------------------------------------------------------
// Parser

Parser::Parser(std::string bench_name, std::string description)
    : description_(std::move(description)) {
  options_.bench_name = std::move(bench_name);
  add_int("--threads", &options_.threads,
          "worker threads for pool-based cases (0 = hardware/MMTAG_THREADS)");
  add_uint64("--seed", &options_.seed, "base RNG seed");
  add_int("--warmup", &options_.warmup, "untimed repetitions per case");
  add_int("--repeat", &options_.repeat, "timed repetitions per case");
  add_string("--json", &options_.json_path,
             "write BENCH_<name>.json report to this path");
  add_string("--compare", &options_.compare_path,
             "baseline report to diff against (exit 1 on regression)");
  add_double("--threshold", &options_.threshold,
             "relative median-wall regression tolerance for --compare");
  add_flag("--csv", &options_.csv, "machine-readable CSV tables");
}

void Parser::add_flag(const char* name, bool* target, const char* help) {
  specs_.push_back(Spec{name, Kind::kFlag, target, help});
}
void Parser::add_int(const char* name, int* target, const char* help) {
  specs_.push_back(Spec{name, Kind::kInt, target, help});
}
void Parser::add_uint64(const char* name, std::uint64_t* target,
                        const char* help) {
  specs_.push_back(Spec{name, Kind::kUint64, target, help});
}
void Parser::add_double(const char* name, double* target, const char* help) {
  specs_.push_back(Spec{name, Kind::kDouble, target, help});
}
void Parser::add_string(const char* name, std::string* target,
                        const char* help) {
  specs_.push_back(Spec{name, Kind::kString, target, help});
}

void Parser::print_usage() const {
  std::fprintf(stderr, "usage: bench_%s [options]\n",
               options_.bench_name.c_str());
  if (!description_.empty()) {
    std::fprintf(stderr, "%s\n", description_.c_str());
  }
  std::fprintf(stderr, "options:\n");
  for (const Spec& spec : specs_) {
    std::fprintf(stderr, "  %-14s %s%s\n", spec.name.c_str(),
                 spec.kind == Kind::kFlag ? "" : "<value>  ",
                 spec.help.c_str());
  }
  std::fprintf(stderr, "  %-14s %s\n", "--help", "print this message");
}

bool Parser::apply(const Spec& spec, const char* value) {
  char* end = nullptr;
  switch (spec.kind) {
    case Kind::kFlag:
      *static_cast<bool*>(spec.target) = true;
      return true;
    case Kind::kInt: {
      const long parsed = std::strtol(value, &end, 10);
      if (end == value || *end != '\0') return false;
      *static_cast<int*>(spec.target) = static_cast<int>(parsed);
      return true;
    }
    case Kind::kUint64: {
      const unsigned long long parsed = std::strtoull(value, &end, 10);
      if (end == value || *end != '\0') return false;
      *static_cast<std::uint64_t*>(spec.target) = parsed;
      return true;
    }
    case Kind::kDouble: {
      const double parsed = std::strtod(value, &end);
      if (end == value || *end != '\0') return false;
      *static_cast<double*>(spec.target) = parsed;
      return true;
    }
    case Kind::kString:
      *static_cast<std::string*>(spec.target) = value;
      return true;
  }
  return false;
}

bool Parser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage();
      exit_code_ = 0;
      return false;
    }
    const auto spec =
        std::find_if(specs_.begin(), specs_.end(),
                     [&](const Spec& s) { return s.name == arg; });
    if (spec == specs_.end()) {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg);
      print_usage();
      exit_code_ = 2;
      return false;
    }
    const char* value = nullptr;
    if (spec->kind != Kind::kFlag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: option '%s' needs a value\n", arg);
        exit_code_ = 2;
        return false;
      }
      value = argv[++i];
    }
    if (!apply(*spec, value)) {
      std::fprintf(stderr, "error: bad value '%s' for option '%s'\n", value,
                   arg);
      exit_code_ = 2;
      return false;
    }
  }
  if (options_.repeat < 1 || options_.warmup < 0) {
    std::fprintf(stderr,
                 "error: --repeat must be >= 1 and --warmup >= 0\n");
    exit_code_ = 2;
    return false;
  }
  return true;
}

// --------------------------------------------------------------------------
// Harness

Harness::Harness(Options options) : options_(std::move(options)) {}

void Harness::add(std::string name, std::function<void(CaseContext&)> body) {
  cases_.push_back(Case{std::move(name), std::move(body)});
}

namespace {

obs::JsonValue timing_json(double min, double median, double p90, double max,
                           double mean) {
  obs::JsonValue t = obs::JsonValue::object();
  t.set("min", obs::JsonValue(min));
  t.set("median", obs::JsonValue(median));
  t.set("p90", obs::JsonValue(p90));
  t.set("max", obs::JsonValue(max));
  t.set("mean", obs::JsonValue(mean));
  return t;
}

obs::JsonValue metrics_json() {
  obs::JsonValue counters = obs::JsonValue::object();
  for (const auto& view : obs::Registry::instance().counters()) {
    counters.set(view.name, obs::JsonValue(view.value));
  }
  obs::JsonValue histograms = obs::JsonValue::object();
  for (const auto& view : obs::Registry::instance().histograms()) {
    obs::JsonValue h = obs::JsonValue::object();
    h.set("count", obs::JsonValue(view.count));
    h.set("sum", obs::JsonValue(view.sum));
    h.set("mean", obs::JsonValue(view.mean));
    h.set("p50", obs::JsonValue(view.p50));
    h.set("p90", obs::JsonValue(view.p90));
    h.set("p99", obs::JsonValue(view.p99));
    h.set("rejected", obs::JsonValue(view.rejected));
    h.set("overflow", obs::JsonValue(view.overflow));
    histograms.set(view.name, std::move(h));
  }
  obs::JsonValue metrics = obs::JsonValue::object();
  metrics.set("counters", std::move(counters));
  metrics.set("histograms", std::move(histograms));
  return metrics;
}

std::optional<obs::JsonValue> load_json_file(const std::string& path,
                                             std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  auto doc = obs::JsonValue::parse(buffer.str(), &parse_error);
  if (!doc && error != nullptr) {
    *error = "parse error in '" + path + "': " + parse_error;
  }
  return doc;
}

}  // namespace

int Harness::run() {
  case_reports_.clear();
  for (Case& bench_case : cases_) {
    for (int w = 0; w < options_.warmup; ++w) {
      CaseContext ctx(options_, /*warmup=*/true);
      bench_case.body(ctx);
    }
    std::vector<double> wall_ns;
    std::vector<double> cpu_ns;
    wall_ns.reserve(static_cast<std::size_t>(options_.repeat));
    cpu_ns.reserve(static_cast<std::size_t>(options_.repeat));
    CaseReport report;
    report.name = bench_case.name;
    report.repeat = options_.repeat;
    for (int r = 0; r < options_.repeat; ++r) {
      CaseContext ctx(options_, /*warmup=*/false);
      const double cpu0 = cpu_now_ns();
      const double wall0 = wall_now_ns();
      bench_case.body(ctx);
      wall_ns.push_back(wall_now_ns() - wall0);
      cpu_ns.push_back(cpu_now_ns() - cpu0);
      report.units = ctx.units();
      report.unit_name = ctx.unit_name();
    }
    std::sort(wall_ns.begin(), wall_ns.end());
    std::sort(cpu_ns.begin(), cpu_ns.end());
    report.wall_min_ns = wall_ns.front();
    report.wall_max_ns = wall_ns.back();
    report.wall_median_ns = obs::percentile_sorted(wall_ns, 50.0);
    report.wall_p90_ns = obs::percentile_sorted(wall_ns, 90.0);
    double total = 0.0;
    for (const double v : wall_ns) total += v;
    report.wall_mean_ns = total / static_cast<double>(wall_ns.size());
    report.cpu_median_ns = obs::percentile_sorted(cpu_ns, 50.0);
    report.cpu_p90_ns = obs::percentile_sorted(cpu_ns, 90.0);
    case_reports_.push_back(std::move(report));
  }

  // Build the JSON report.
  report_ = obs::JsonValue::object();
  report_.set("schema", obs::JsonValue(kSchemaVersion));
  report_.set("bench", obs::JsonValue(options_.bench_name));
  obs::JsonValue config = obs::JsonValue::object();
  config.set("threads", obs::JsonValue(options_.threads));
  config.set("seed", obs::JsonValue(options_.seed));
  config.set("warmup", obs::JsonValue(options_.warmup));
  config.set("repeat", obs::JsonValue(options_.repeat));
  config.set("obs_enabled", obs::JsonValue(obs::kObsEnabled));
  report_.set("config", std::move(config));
  obs::JsonValue cases = obs::JsonValue::array();
  for (const CaseReport& report : case_reports_) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("name", obs::JsonValue(report.name));
    entry.set("repeat", obs::JsonValue(report.repeat));
    entry.set("wall_ns",
              timing_json(report.wall_min_ns, report.wall_median_ns,
                          report.wall_p90_ns, report.wall_max_ns,
                          report.wall_mean_ns));
    obs::JsonValue cpu = obs::JsonValue::object();
    cpu.set("median", obs::JsonValue(report.cpu_median_ns));
    cpu.set("p90", obs::JsonValue(report.cpu_p90_ns));
    entry.set("cpu_ns", std::move(cpu));
    if (!report.unit_name.empty()) {
      entry.set("units", obs::JsonValue(report.units));
      entry.set("unit", obs::JsonValue(report.unit_name));
      entry.set("units_per_s", obs::JsonValue(report.units_per_s()));
    }
    cases.push_back(std::move(entry));
  }
  report_.set("cases", std::move(cases));
  report_.set("metrics", metrics_json());

  // Timing summary (CSV under --csv so existing piping keeps working).
  if (options_.csv) {
    std::printf("case,repeat,wall_median_ns,wall_p90_ns,cpu_median_ns,"
                "units,unit,units_per_s\n");
    for (const CaseReport& report : case_reports_) {
      std::printf("%s,%d,%.0f,%.0f,%.0f,%.0f,%s,%.2f\n",
                  report.name.c_str(), report.repeat, report.wall_median_ns,
                  report.wall_p90_ns, report.cpu_median_ns, report.units,
                  report.unit_name.c_str(), report.units_per_s());
    }
  } else if (!case_reports_.empty()) {
    std::printf("\n== bench %s: %zu case(s), warmup=%d repeat=%d ==\n",
                options_.bench_name.c_str(), case_reports_.size(),
                options_.warmup, options_.repeat);
    std::printf("%-32s %10s %10s %10s %16s\n", "case", "wall_med",
                "wall_p90", "cpu_med", "throughput");
    for (const CaseReport& report : case_reports_) {
      std::string throughput = "-";
      if (!report.unit_name.empty()) {
        throughput =
            format_si(report.units_per_s()) + " " + report.unit_name + "/s";
      }
      std::printf("%-32s %10s %10s %10s %16s\n", report.name.c_str(),
                  format_ns(report.wall_median_ns).c_str(),
                  format_ns(report.wall_p90_ns).c_str(),
                  format_ns(report.cpu_median_ns).c_str(),
                  throughput.c_str());
    }
  }

  int exit_code = 0;

  if (!options_.json_path.empty()) {
    std::string error;
    if (!validate_report(report_, &error)) {
      std::fprintf(stderr, "error: generated report invalid: %s\n",
                   error.c_str());
      return 2;
    }
    std::ofstream out(options_.json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   options_.json_path.c_str());
      return 2;
    }
    out << report_.dump(2) << '\n';
    if (!options_.csv) {
      std::printf("wrote %s\n", options_.json_path.c_str());
    }
  }

  if (!options_.compare_path.empty()) {
    std::string error;
    const auto baseline = load_json_file(options_.compare_path, &error);
    if (!baseline) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    if (!validate_report(*baseline, &error)) {
      std::fprintf(stderr, "error: baseline schema invalid: %s\n",
                   error.c_str());
      return 2;
    }
    if (!validate_report(report_, &error)) {
      std::fprintf(stderr, "error: current report invalid: %s\n",
                   error.c_str());
      return 2;
    }
    std::string log;
    const int regressions =
        compare_reports(report_, *baseline, options_.threshold, &log);
    std::fputs(log.c_str(), stdout);
    if (regressions > 0) {
      std::fprintf(stderr,
                   "FAIL: %d case(s) regressed beyond %.0f%% vs %s\n",
                   regressions, options_.threshold * 100.0,
                   options_.compare_path.c_str());
      exit_code = 1;
    } else {
      std::printf("compare OK vs %s (threshold %.0f%%)\n",
                  options_.compare_path.c_str(), options_.threshold * 100.0);
    }
  }

  return exit_code;
}

// --------------------------------------------------------------------------
// Validation & comparison

bool validate_report(const obs::JsonValue& doc, std::string* error) {
  const auto fail = [error](const char* reason) {
    if (error != nullptr) *error = reason;
    return false;
  };
  if (!doc.is_object()) return fail("root is not an object");
  const obs::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return fail("missing 'schema' string");
  }
  if (schema->as_string() != kSchemaVersion) {
    return fail("unsupported schema version");
  }
  const obs::JsonValue* bench = doc.find("bench");
  if (bench == nullptr || !bench->is_string() ||
      bench->as_string().empty()) {
    return fail("missing 'bench' name");
  }
  const obs::JsonValue* config = doc.find("config");
  if (config == nullptr || !config->is_object()) {
    return fail("missing 'config' object");
  }
  const obs::JsonValue* cases = doc.find("cases");
  if (cases == nullptr || !cases->is_array()) {
    return fail("missing 'cases' array");
  }
  for (const obs::JsonValue& entry : cases->items()) {
    if (!entry.is_object()) return fail("case entry is not an object");
    const obs::JsonValue* name = entry.find("name");
    if (name == nullptr || !name->is_string() || name->as_string().empty()) {
      return fail("case missing 'name'");
    }
    const obs::JsonValue* wall = entry.find("wall_ns");
    if (wall == nullptr || !wall->is_object()) {
      return fail("case missing 'wall_ns'");
    }
    const obs::JsonValue* median = wall->find("median");
    const obs::JsonValue* p90 = wall->find("p90");
    if (median == nullptr || !median->is_number() ||
        median->as_double() < 0.0) {
      return fail("case wall_ns.median missing or negative");
    }
    if (p90 == nullptr || !p90->is_number() || p90->as_double() < 0.0) {
      return fail("case wall_ns.p90 missing or negative");
    }
  }
  return true;
}

int compare_reports(const obs::JsonValue& current,
                    const obs::JsonValue& baseline, double threshold,
                    std::string* log) {
  const auto append = [log](const std::string& line) {
    if (log != nullptr) {
      *log += line;
      *log += '\n';
    }
  };
  const obs::JsonValue* base_cases = baseline.find("cases");
  const obs::JsonValue* cur_cases = current.find("cases");
  if (base_cases == nullptr || cur_cases == nullptr) return 0;

  int regressions = 0;
  for (const obs::JsonValue& base_entry : base_cases->items()) {
    const obs::JsonValue* name = base_entry.find("name");
    if (name == nullptr || !name->is_string()) continue;
    const obs::JsonValue* cur_entry = nullptr;
    for (const obs::JsonValue& candidate : cur_cases->items()) {
      const obs::JsonValue* cand_name = candidate.find("name");
      if (cand_name != nullptr && cand_name->is_string() &&
          cand_name->as_string() == name->as_string()) {
        cur_entry = &candidate;
        break;
      }
    }
    if (cur_entry == nullptr) {
      append("MISSING  " + name->as_string() +
             ": case present in baseline but not in this run");
      ++regressions;
      continue;
    }
    const obs::JsonValue* base_wall = base_entry.find("wall_ns");
    const obs::JsonValue* cur_wall = cur_entry->find("wall_ns");
    const double base_median =
        base_wall != nullptr ? base_wall->number_or("median", 0.0) : 0.0;
    const double cur_median =
        cur_wall != nullptr ? cur_wall->number_or("median", 0.0) : 0.0;
    if (base_median <= 0.0) {
      append("SKIP     " + name->as_string() + ": baseline median is zero");
      continue;
    }
    const double rel = cur_median / base_median - 1.0;
    char buf[160];
    std::snprintf(buf, sizeof buf, "%-8s %s: %s -> %s (%+.1f%%)",
                  rel > threshold ? "REGRESS" : "ok",
                  name->as_string().c_str(), format_ns(base_median).c_str(),
                  format_ns(cur_median).c_str(), rel * 100.0);
    append(buf);
    if (rel > threshold) ++regressions;
  }
  return regressions;
}

}  // namespace mmtag::bench
