#include "src/obs/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace mmtag::obs {

double percentile(std::vector<double> values, double pct) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, pct);
}

double percentile_sorted(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double jain_fairness(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : values) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

void Fnv1a::mix_bytes(const void* data, std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash_ ^= p[i];
    hash_ *= kPrime;
  }
}

void Fnv1a::mix_double(double value) noexcept {
  std::uint64_t bits = 0;
  if (std::isnan(value)) {
    bits = 0x7FF8000000000000ull;
  } else {
    std::memcpy(&bits, &value, sizeof(bits));
  }
  mix_bytes(&bits, sizeof(bits));
}

}  // namespace mmtag::obs
