// Compile-time gate for the observability subsystem.
//
// MMTAG_OBS is a preprocessor definition (default 1, set on the mmtag_obs
// target from the CMake option of the same name). When it is 0 every
// instrumentation point in the tree — counter adds, histogram records,
// trace spans — must compile to nothing: the macros below expand empty and
// the inline metric methods are gated with `if constexpr (kObsEnabled)`,
// so the optimizer removes the calls entirely and instrumented binaries
// are bit-identical in behaviour to uninstrumented ones (the acceptance
// bar is < 2% on bench_kernels medians with the gate ON; with it OFF the
// cost is exactly zero).
#pragma once

#ifndef MMTAG_OBS
#define MMTAG_OBS 1
#endif

namespace mmtag::obs {

/// if-constexpr gate mirroring the MMTAG_OBS preprocessor definition.
inline constexpr bool kObsEnabled = MMTAG_OBS != 0;

}  // namespace mmtag::obs

// Token pasting helpers for unique span variable names per source line.
#define MMTAG_OBS_CONCAT_IMPL(a, b) a##b
#define MMTAG_OBS_CONCAT(a, b) MMTAG_OBS_CONCAT_IMPL(a, b)

#if MMTAG_OBS
/// RAII trace span covering the rest of the enclosing scope. `name` must
/// be a string literal (or other static-lifetime string): the sink stores
/// the pointer, not a copy.
#define MMTAG_OBS_SPAN(name) \
  ::mmtag::obs::Span MMTAG_OBS_CONCAT(mmtag_obs_span_, __LINE__)(name)
#else
#define MMTAG_OBS_SPAN(name) \
  do {                       \
  } while (false)
#endif
