// Unified benchmark harness: registration, warmup, timed repetitions,
// robust summaries, machine-readable JSON, and regression comparison.
//
// Every bench_* executable in this repo is built on this harness (via
// bench/bench_main.hpp), which gives all of them one CLI contract:
//
//   --threads N     worker threads for pool-based cases (0 = default)
//   --seed S        base RNG seed for deterministic workloads
//   --warmup W      untimed repetitions per case before measurement
//   --repeat R      timed repetitions per case (median/p90 over these)
//   --json PATH     write a schema-versioned BENCH report (mmtag.bench.v1)
//   --compare PATH  diff this run against a baseline report; exit 1 when
//                   any case's median wall time regressed by more than
//   --threshold F   (relative, default 0.25 = 25%)
//   --csv           machine-readable tables instead of human output
//
// Unknown flags are hard errors — a typo must not silently run the
// default configuration and masquerade as a measurement.
//
// Timing uses the steady clock for wall time and the process CPU clock
// for cpu time; summaries (median/p90/min/max/mean) come from
// obs::percentile so the bench layer and the fleet layer agree on what a
// percentile is. Case bodies report their work through
// CaseContext::set_units, which turns medians into throughput.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

namespace mmtag::bench {

/// Schema identifier stamped into every report; bump when the layout
/// changes incompatibly.
inline constexpr const char* kSchemaVersion = "mmtag.bench.v1";

/// Parsed CLI state shared by every bench executable.
struct Options {
  std::string bench_name;
  int threads = 0;  ///< 0 selects sim::default_thread_count() downstream.
  std::uint64_t seed = 1;
  int warmup = 1;
  int repeat = 3;
  std::string json_path;
  std::string compare_path;
  double threshold = 0.25;
  bool csv = false;
};

/// One option parser for all benches: the standard flags above plus any
/// bench-specific extras registered before parse(). Unknown flags and
/// malformed values print usage to stderr and fail with exit code 2;
/// --help prints usage and exits 0.
class Parser {
 public:
  explicit Parser(std::string bench_name, std::string description = "");

  /// Register bench-specific options. `name` must include the leading
  /// "--"; `target` holds the default and receives the parsed value, and
  /// must outlive parse().
  void add_flag(const char* name, bool* target, const char* help);
  void add_int(const char* name, int* target, const char* help);
  void add_uint64(const char* name, std::uint64_t* target, const char* help);
  void add_double(const char* name, double* target, const char* help);
  void add_string(const char* name, std::string* target, const char* help);

  /// Returns true when the program should proceed; false for --help or
  /// errors (check exit_code()).
  [[nodiscard]] bool parse(int argc, char** argv);
  [[nodiscard]] int exit_code() const { return exit_code_; }

  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] bool csv() const { return options_.csv; }

 private:
  enum class Kind { kFlag, kInt, kUint64, kDouble, kString };
  struct Spec {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
  };

  void print_usage() const;
  [[nodiscard]] bool apply(const Spec& spec, const char* value);

  Options options_;
  std::string description_;
  std::vector<Spec> specs_;
  int exit_code_ = 0;
};

/// Handed to each case body; carries run configuration in and work
/// accounting out.
class CaseContext {
 public:
  CaseContext(const Options& options, bool warmup)
      : options_(options), warmup_(warmup) {}

  [[nodiscard]] int threads() const { return options_.threads; }
  [[nodiscard]] std::uint64_t seed() const { return options_.seed; }
  /// True during untimed warmup repetitions (bodies may skip expensive
  /// result archiving there).
  [[nodiscard]] bool warmup() const { return warmup_; }

  /// Declare the work one repetition performed; the report divides it by
  /// the median wall time for throughput. Last call wins.
  void set_units(double units, std::string unit_name) {
    units_ = units;
    unit_name_ = std::move(unit_name);
  }

  [[nodiscard]] double units() const { return units_; }
  [[nodiscard]] const std::string& unit_name() const { return unit_name_; }

 private:
  const Options& options_;
  bool warmup_ = false;
  double units_ = 0.0;
  std::string unit_name_;
};

/// Timing summary of one case over the timed repetitions.
struct CaseReport {
  std::string name;
  int repeat = 0;
  double wall_min_ns = 0.0;
  double wall_median_ns = 0.0;
  double wall_p90_ns = 0.0;
  double wall_max_ns = 0.0;
  double wall_mean_ns = 0.0;
  double cpu_median_ns = 0.0;
  double cpu_p90_ns = 0.0;
  double units = 0.0;
  std::string unit_name;

  [[nodiscard]] double units_per_s() const {
    return wall_median_ns > 0.0 && units > 0.0
               ? units / (wall_median_ns * 1e-9)
               : 0.0;
  }
};

class Harness {
 public:
  explicit Harness(Options options);

  /// Register a case. Bodies run warmup + repeat times in registration
  /// order; each repetition must redo the full work (assign results into
  /// captured locals rather than appending).
  void add(std::string name, std::function<void(CaseContext&)> body);

  /// Execute all cases, print the timing summary (suppressed under --csv,
  /// which prints a CSV timing table instead), write --json, apply
  /// --compare. Returns the process exit code: 0 success, 1 comparison
  /// regression, 2 I/O, parse, or schema errors.
  [[nodiscard]] int run();

  [[nodiscard]] const Options& options() const { return options_; }
  /// The report of the last run() as a JSON document.
  [[nodiscard]] const obs::JsonValue& report() const { return report_; }
  [[nodiscard]] const std::vector<CaseReport>& case_reports() const {
    return case_reports_;
  }

 private:
  struct Case {
    std::string name;
    std::function<void(CaseContext&)> body;
  };

  Options options_;
  std::vector<Case> cases_;
  std::vector<CaseReport> case_reports_;
  obs::JsonValue report_;
};

/// Schema check for a bench report document. Returns true when `doc`
/// carries the expected schema tag, a bench name, config, and
/// well-formed cases; otherwise false with a reason in `error`.
[[nodiscard]] bool validate_report(const obs::JsonValue& doc,
                                   std::string* error);

/// Compare `current` against `baseline`: every baseline case must exist in
/// current, and its median wall time must not exceed baseline's by more
/// than `threshold` (relative). Appends one human-readable line per case
/// to `log` when non-null. Returns the number of regressions.
[[nodiscard]] int compare_reports(const obs::JsonValue& current,
                                  const obs::JsonValue& baseline,
                                  double threshold, std::string* log);

/// Format nanoseconds with an adaptive unit (ns/us/ms/s).
[[nodiscard]] std::string format_ns(double ns);
/// Format a rate with an SI suffix ("4.07 M").
[[nodiscard]] std::string format_si(double value);

/// Optimizer barrier for microbenchmark kernels (the classic escape/
/// clobber idiom): forces `value` to exist without emitting any code.
template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace mmtag::bench
