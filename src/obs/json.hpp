// Minimal JSON document model for the observability subsystem.
//
// The obs layer both writes JSON (BENCH_<name>.json, trace JSONL) and
// reads it back (bench --compare against a baseline, schema validation,
// trace round-trip tests), so it carries its own small value type rather
// than depending on an external library. Scope is deliberately narrow:
// UTF-8 text, doubles for numbers, objects that preserve insertion order
// (deterministic dumps). Good enough for every schema this repo emits;
// not a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mmtag::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Insertion-ordered: dumps are deterministic and diffable.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}
  JsonValue(double value) : type_(Type::kNumber), number_(value) {}
  JsonValue(int value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(std::int64_t value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(std::uint64_t value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(const char* value) : type_(Type::kString), string_(value) {}
  JsonValue(std::string value)
      : type_(Type::kString), string_(std::move(value)) {}

  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_double() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const Array& items() const { return array_; }
  [[nodiscard]] const Object& members() const { return object_; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// find() + number check, with a fallback for absent members.
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const;

  /// Append/overwrite an object member (keeps first-insertion position on
  /// overwrite).
  JsonValue& set(std::string key, JsonValue value);
  /// Append an array element.
  JsonValue& push_back(JsonValue value);

  /// Serialize. indent < 0 emits compact single-line JSON; otherwise
  /// pretty-prints with that many spaces per level. Non-finite numbers
  /// emit null (JSON has no inf/nan).
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse one JSON document. On failure returns nullopt and, when
  /// `error` is non-null, a human-readable reason with offset.
  [[nodiscard]] static std::optional<JsonValue> parse(std::string_view text,
                                                      std::string* error);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace mmtag::obs
