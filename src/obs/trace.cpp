#include "src/obs/trace.hpp"

#include <atomic>
#include <chrono>

#include "src/obs/json.hpp"

namespace mmtag::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Per-thread span nesting depth (entered minus exited).
thread_local std::uint32_t t_span_depth = 0;

}  // namespace

TraceSink::TraceSink() : epoch_ns_(steady_ns()) {
  ring_.resize(kDefaultCapacity);
}

TraceSink& TraceSink::instance() {
  static TraceSink sink;
  return sink;
}

std::uint64_t TraceSink::now_ns() const { return steady_ns() - epoch_ns_; }

void TraceSink::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.assign(capacity > 0 ? capacity : 1, TraceEvent{});
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

void TraceSink::record(const TraceEvent& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) {
    ++size_;
  } else {
    ++dropped_;  // Overwrote the oldest buffered event.
  }
}

std::vector<TraceEvent> TraceSink::drain() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> events;
  events.reserve(size_);
  const std::size_t first = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    events.push_back(ring_[(first + i) % ring_.size()]);
  }
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  return events;
}

std::uint64_t TraceSink::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string TraceSink::drain_jsonl() {
  std::string out;
  for (const TraceEvent& event : drain()) {
    JsonValue line = JsonValue::object();
    line.set("name", JsonValue(event.name != nullptr ? event.name : ""));
    line.set("ts_ns", JsonValue(event.start_ns));
    line.set("dur_ns", JsonValue(event.dur_ns));
    line.set("tid", JsonValue(std::uint64_t{event.thread}));
    line.set("depth", JsonValue(std::uint64_t{event.depth}));
    out += line.dump();
    out += '\n';
  }
  return out;
}

Span::Span(const char* name)
    : name_(name),
      start_ns_(TraceSink::instance().now_ns()),
      depth_(t_span_depth++) {}

Span::~Span() {
  --t_span_depth;
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.dur_ns = TraceSink::instance().now_ns() - start_ns_;
  event.thread = thread_id();
  event.depth = depth_;
  TraceSink::instance().record(event);
}

}  // namespace mmtag::obs
