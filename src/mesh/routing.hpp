// Route math: Dijkstra shortest paths, Yen K-shortest failover alternates,
// and per-node route tables toward the gateway set.
//
// Everything here is exact and deterministic. Path comparison is total:
// lower cost first, then fewer hops, then the lexicographically smaller
// node sequence — so "lowest reader id wins" every tie and two runs can
// never disagree on a route table. The K-shortest enumeration is Yen's
// algorithm over loop-free paths: alternates share as short a prefix with
// the primary as the graph allows, which is exactly what a forwarding
// plane wants when the primary's next hop just died.
//
// Inputs are adjacency lists of MeshLink (from the static MeshTopology or
// a node's LinkStateProtocol::believed_topology), outputs are explicit
// node sequences — the forwarding plane indexes them hop by hop.
#pragma once

#include <cstddef>
#include <vector>

#include "src/mesh/topology.hpp"

namespace mmtag::mesh {

/// Adjacency-list graph view (edge lists ascending by neighbor id).
using Adjacency = std::vector<std::vector<MeshLink>>;

/// One loop-free path src..dst inclusive.
struct Route {
  std::vector<int> hops;  ///< hops.front() == src, hops.back() == dst.
  double cost = 0.0;      ///< Sum of link costs along hops.

  [[nodiscard]] bool valid() const { return hops.size() >= 2; }
  [[nodiscard]] std::size_t hop_count() const {
    return hops.empty() ? 0 : hops.size() - 1;
  }
};

/// Total order on routes: (cost, hop count, lexicographic node sequence).
/// Invalid routes sort last.
[[nodiscard]] bool route_less(const Route& a, const Route& b);

/// Single-source shortest-path costs over `adj` (Dijkstra, exact doubles).
/// Unreachable nodes report cost < 0. Tie-breaks resolve toward the
/// lowest-id predecessor, so `parent` is unique.
struct ShortestPaths {
  std::vector<double> cost;
  std::vector<int> parent;  ///< -1 at src and unreachable nodes.
};
[[nodiscard]] ShortestPaths dijkstra(const Adjacency& adj, int src);

/// The unique minimal route src -> dst under route_less, or an invalid
/// Route when dst is unreachable. src == dst yields {hops: {src}, cost: 0}
/// (valid() is false — there is nothing to forward).
[[nodiscard]] Route shortest_path(const Adjacency& adj, int src, int dst);

/// The K best loop-free routes src -> dst in route_less order (Yen).
/// Fewer than K exist when the graph runs out of distinct loop-free paths.
[[nodiscard]] std::vector<Route> k_shortest_paths(const Adjacency& adj,
                                                  int src, int dst,
                                                  std::size_t k);

struct RoutingConfig {
  /// Precomputed routes per (node, gateway): one primary plus k_paths-1
  /// failover alternates.
  std::size_t k_paths = 3;
};

/// One node's forwarding state toward every gateway, rebuilt per topology
/// epoch from that node's believed topology.
class RouteTable {
 public:
  RouteTable() = default;

  /// Build `node`'s table toward `gateways` (ascending ids) over `adj`.
  RouteTable(const Adjacency& adj, int node, const std::vector<int>& gateways,
             const RoutingConfig& config);

  /// Gateway this node drains to: the one whose primary route is minimal
  /// under route_less; ties by lowest gateway id. -1 when no gateway is
  /// reachable.
  [[nodiscard]] int best_gateway() const { return best_gateway_; }

  /// Routes to `gateway` in route_less order (empty when unreachable).
  [[nodiscard]] const std::vector<Route>& routes(int gateway) const;

  /// Routes to best_gateway() (empty when none reachable).
  [[nodiscard]] const std::vector<Route>& best_routes() const {
    return routes(best_gateway_);
  }

 private:
  std::vector<int> gateways_;
  std::vector<std::vector<Route>> routes_;  ///< Parallel to gateways_.
  int best_gateway_ = -1;
  static const std::vector<Route> kNoRoutes;
};

}  // namespace mmtag::mesh
