// OLSR-style link-state dissemination over the reader backhaul.
//
// Routing needs every reader to know the topology, and in a real mesh that
// knowledge is *disseminated*, not teleported: each node originates a
// sequence-numbered link-state advertisement (LSA) describing its live
// neighbor set, and LSAs flood hop by hop. This module models that honestly
// — per-node LSA databases, seq-number freshness rules, one flooding round
// per hop — because the convergence delay is what the failover story is
// about: until the flood completes, nodes route on stale state and the
// forwarding plane's precomputed alternates are the only thing keeping
// packets alive.
//
// Epoch discipline: converge(live) starts a topology epoch. Nodes that
// died keep their (now stale) databases but do not participate; nodes that
// restarted come back amnesiac (a power-cycled reader has no LSA store)
// and relearn the component from its flood. All iteration is in ascending
// node id, so a given (topology, live-mask history) always produces the
// same databases, floods and round counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/mesh/topology.hpp"

namespace mmtag::mesh {

/// One origin's advertisement: "these are my live symmetric neighbors".
struct Lsa {
  std::uint32_t seq = 0;     ///< Freshness; higher wins.
  bool known = false;        ///< Database holds an entry for this origin.
  std::vector<int> neighbors;  ///< Ascending reader ids.
};

class LinkStateProtocol {
 public:
  /// `topology` must outlive the protocol. Databases start empty; the
  /// first converge() floods the initial topology.
  explicit LinkStateProtocol(const MeshTopology* topology);

  /// Start a topology epoch against `live` (empty = all up) and flood
  /// until every live node's database stops changing. Returns the number
  /// of flooding rounds (== the live component's LSA radius; 0 when
  /// nothing changed). Restarted nodes (dead at the previous converge,
  /// live now) are wiped first.
  int converge(const std::vector<std::uint8_t>& live);

  /// Epochs started so far (== converge() calls).
  [[nodiscard]] int epoch() const { return epoch_; }
  /// LSA transmissions across all floods (one per link crossing).
  [[nodiscard]] std::uint64_t lsa_transmissions() const {
    return lsa_transmissions_;
  }
  /// Rounds the most recent converge() took.
  [[nodiscard]] int last_rounds() const { return last_rounds_; }

  /// `node`'s view of `origin`'s advertisement.
  [[nodiscard]] const Lsa& database(int node, int origin) const {
    return db_[static_cast<std::size_t>(node)]
              [static_cast<std::size_t>(origin)];
  }

  /// True when `a` and `b` hold identical databases — converged peers in
  /// one component must agree (the regression the convergence tests pin).
  [[nodiscard]] bool databases_agree(int a, int b) const;

  /// The topology as `node` believes it: adjacency restricted to edges
  /// both endpoints advertise (symmetric-link rule). Nodes `node` has no
  /// LSA for contribute nothing. Edge lists are ascending by neighbor id
  /// and carry the static topology's link costs.
  [[nodiscard]] std::vector<std::vector<MeshLink>> believed_topology(
      int node) const;

 private:
  const MeshTopology* topology_;
  /// db_[node][origin]: node's copy of origin's LSA.
  std::vector<std::vector<Lsa>> db_;
  std::vector<std::uint8_t> was_live_;
  int epoch_ = 0;
  int last_rounds_ = 0;
  std::uint64_t lsa_transmissions_ = 0;
};

}  // namespace mmtag::mesh
