#include "src/mesh/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/channel/geometry.hpp"

namespace mmtag::mesh {

namespace {

/// Shannon capacity of one link [bit/s] from its SNR [dB].
double capacity_bps(double snr_db, double bandwidth_hz) {
  const double snr = std::pow(10.0, snr_db / 10.0);
  return bandwidth_hz * std::log2(1.0 + snr);
}

}  // namespace

MeshTopology::MeshTopology(const std::vector<core::Pose>& reader_poses,
                           const TopologyConfig& config)
    : nodes_(reader_poses.size()), config_(config) {
  assert(nodes_ > 0);
  for (const int g : config_.gateways) {
    if (g >= 0 && static_cast<std::size_t>(g) < nodes_) {
      gateways_.push_back(g);
    }
  }
  std::sort(gateways_.begin(), gateways_.end());
  gateways_.erase(std::unique(gateways_.begin(), gateways_.end()),
                  gateways_.end());
  if (gateways_.empty()) gateways_.push_back(0);

  adjacency_.resize(nodes_);
  const MeshLinkModel& m = config_.link;
  for (std::size_t i = 0; i < nodes_; ++i) {
    for (std::size_t j = 0; j < nodes_; ++j) {
      if (i == j) continue;
      const double d = channel::distance(reader_poses[i].position,
                                         reader_poses[j].position);
      if (d > m.max_range_m) continue;
      // Clamp the near field to the 1 m reference so co-located readers
      // do not produce unbounded SNR.
      const double snr_db =
          m.snr_at_1m_db -
          10.0 * m.pathloss_exponent * std::log10(std::max(d, 1.0));
      if (snr_db < m.min_snr_db) continue;
      MeshLink link;
      link.from = static_cast<int>(i);
      link.to = static_cast<int>(j);
      link.distance_m = d;
      link.snr_db = snr_db;
      link.capacity_bps = capacity_bps(snr_db, m.bandwidth_hz);
      link.cost = kCostRefBits / link.capacity_bps;
      adjacency_[i].push_back(link);  // j ascending: sorted by neighbor id.
      links_.push_back(link);         // (from, to) lexicographic.
    }
  }
}

bool MeshTopology::is_gateway(int node) const {
  return std::binary_search(gateways_.begin(), gateways_.end(), node);
}

const MeshLink* MeshTopology::find_link(int from, int to) const {
  if (from < 0 || static_cast<std::size_t>(from) >= nodes_) return nullptr;
  for (const MeshLink& link : adjacency_[static_cast<std::size_t>(from)]) {
    if (link.to == to) return &link;
  }
  return nullptr;
}

std::vector<std::uint8_t> MeshTopology::gateway_reachable(
    const std::vector<std::uint8_t>& live) const {
  assert(live.empty() || live.size() == nodes_);
  const auto is_live = [&](int node) {
    return live.empty() || live[static_cast<std::size_t>(node)] != 0;
  };
  std::vector<std::uint8_t> reachable(nodes_, 0);
  std::vector<int> frontier;
  for (const int g : gateways_) {
    if (is_live(g) && reachable[static_cast<std::size_t>(g)] == 0) {
      reachable[static_cast<std::size_t>(g)] = 1;
      frontier.push_back(g);
    }
  }
  // BFS with an ascending-id frontier at every level: the visit order —
  // and therefore any downstream iteration seeded by it — is unique.
  while (!frontier.empty()) {
    std::sort(frontier.begin(), frontier.end());
    std::vector<int> next;
    for (const int node : frontier) {
      for (const MeshLink& link : neighbors(node)) {
        if (!is_live(link.to)) continue;
        std::uint8_t& seen = reachable[static_cast<std::size_t>(link.to)];
        if (seen == 0) {
          seen = 1;
          next.push_back(link.to);
        }
      }
    }
    frontier = std::move(next);
  }
  return reachable;
}

bool MeshTopology::fully_connected() const {
  const std::vector<std::uint8_t> reachable = gateway_reachable({});
  for (const std::uint8_t r : reachable) {
    if (r == 0) return false;
  }
  return true;
}

}  // namespace mmtag::mesh
