#include "src/mesh/routing.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <set>
#include <utility>

namespace mmtag::mesh {

const std::vector<Route> RouteTable::kNoRoutes{};

bool route_less(const Route& a, const Route& b) {
  if (a.valid() != b.valid()) return a.valid();
  if (a.cost != b.cost) return a.cost < b.cost;
  if (a.hops.size() != b.hops.size()) return a.hops.size() < b.hops.size();
  return a.hops < b.hops;  // Lexicographic: lowest reader id wins.
}

ShortestPaths dijkstra(const Adjacency& adj, int src) {
  const std::size_t n = adj.size();
  ShortestPaths out;
  out.cost.assign(n, -1.0);
  out.parent.assign(n, -1);
  assert(src >= 0 && static_cast<std::size_t>(src) < n);

  // (cost, node) min-heap; the node id in the key makes pop order — and
  // with the strict-improvement + lowest-parent rules below, the whole
  // tree — deterministic.
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  best[static_cast<std::size_t>(src)] = 0.0;
  heap.emplace(0.0, src);
  std::vector<std::uint8_t> done(n, 0);

  while (!heap.empty()) {
    const auto [cost, node] = heap.top();
    heap.pop();
    const auto u = static_cast<std::size_t>(node);
    if (done[u] != 0) continue;
    done[u] = 1;
    out.cost[u] = cost;
    for (const MeshLink& link : adj[u]) {
      const auto v = static_cast<std::size_t>(link.to);
      const double via = cost + link.cost;
      if (via < best[v]) {
        best[v] = via;
        out.parent[v] = node;
        heap.emplace(via, link.to);
      } else if (via == best[v] && done[v] == 0 && node < out.parent[v]) {
        // Equal-cost predecessor tie: lowest reader id wins.
        out.parent[v] = node;
      }
    }
  }
  return out;
}

Route shortest_path(const Adjacency& adj, int src, int dst) {
  Route route;
  if (src == dst) {
    route.hops.push_back(src);
    return route;
  }
  const ShortestPaths sp = dijkstra(adj, src);
  const auto d = static_cast<std::size_t>(dst);
  if (d >= sp.cost.size() || sp.cost[d] < 0.0) return route;  // Unreachable.
  route.cost = sp.cost[d];
  for (int at = dst; at != -1; at = sp.parent[static_cast<std::size_t>(at)]) {
    route.hops.push_back(at);
  }
  std::reverse(route.hops.begin(), route.hops.end());
  assert(route.hops.front() == src);
  return route;
}

namespace {

/// Shortest path over `adj` with `banned_nodes` removed and the directed
/// edges in `banned_edges` masked — the Yen spur computation.
Route masked_shortest_path(
    const Adjacency& adj, int src, int dst,
    const std::vector<std::uint8_t>& banned_nodes,
    const std::set<std::pair<int, int>>& banned_edges) {
  Adjacency masked(adj.size());
  for (std::size_t u = 0; u < adj.size(); ++u) {
    if (banned_nodes[u] != 0) continue;
    for (const MeshLink& link : adj[u]) {
      if (banned_nodes[static_cast<std::size_t>(link.to)] != 0) continue;
      if (banned_edges.count({static_cast<int>(u), link.to}) != 0) continue;
      masked[u].push_back(link);
    }
  }
  return shortest_path(masked, src, dst);
}

double path_prefix_cost(const Adjacency& adj, const std::vector<int>& hops,
                        std::size_t upto) {
  double cost = 0.0;
  for (std::size_t i = 0; i + 1 <= upto; ++i) {
    const auto u = static_cast<std::size_t>(hops[i]);
    double edge = -1.0;
    for (const MeshLink& link : adj[u]) {
      if (link.to == hops[i + 1]) {
        edge = link.cost;
        break;
      }
    }
    assert(edge >= 0.0);
    cost += edge;
  }
  return cost;
}

}  // namespace

std::vector<Route> k_shortest_paths(const Adjacency& adj, int src, int dst,
                                    std::size_t k) {
  std::vector<Route> result;
  if (k == 0 || src == dst) return result;
  Route first = shortest_path(adj, src, dst);
  if (!first.valid()) return result;
  result.push_back(std::move(first));

  // Candidate pool ordered by route_less; a std::set keeps insertion
  // deduplicated and extraction deterministic.
  auto cmp = [](const Route& a, const Route& b) { return route_less(a, b); };
  std::set<Route, decltype(cmp)> candidates(cmp);

  while (result.size() < k) {
    const Route& prev = result.back();
    // Each hop of the previous best is a spur point: ban the edges every
    // accepted path with the same prefix took, ban the prefix nodes, and
    // find the best deviation.
    for (std::size_t spur = 0; spur + 1 < prev.hops.size(); ++spur) {
      std::vector<int> prefix(prev.hops.begin(),
                              prev.hops.begin() +
                                  static_cast<std::ptrdiff_t>(spur + 1));
      std::set<std::pair<int, int>> banned_edges;
      for (const Route& accepted : result) {
        if (accepted.hops.size() > spur &&
            std::equal(prefix.begin(), prefix.end(),
                       accepted.hops.begin())) {
          if (accepted.hops.size() > spur + 1) {
            banned_edges.insert(
                {accepted.hops[spur], accepted.hops[spur + 1]});
          }
        }
      }
      std::vector<std::uint8_t> banned_nodes(adj.size(), 0);
      for (std::size_t i = 0; i < spur; ++i) {
        banned_nodes[static_cast<std::size_t>(prefix[i])] = 1;
      }
      const Route spur_route = masked_shortest_path(
          adj, prev.hops[spur], dst, banned_nodes, banned_edges);
      if (!spur_route.valid()) continue;
      Route total;
      total.hops = prefix;
      total.hops.insert(total.hops.end(), spur_route.hops.begin() + 1,
                        spur_route.hops.end());
      total.cost = path_prefix_cost(adj, prev.hops, spur) + spur_route.cost;
      candidates.insert(std::move(total));
    }
    // Pop the best candidate not already accepted.
    Route next;
    while (!candidates.empty()) {
      Route top = *candidates.begin();
      candidates.erase(candidates.begin());
      const bool seen =
          std::any_of(result.begin(), result.end(), [&](const Route& r) {
            return r.hops == top.hops;
          });
      if (!seen) {
        next = std::move(top);
        break;
      }
    }
    if (!next.valid()) break;  // Graph ran out of loop-free paths.
    result.push_back(std::move(next));
  }
  return result;
}

RouteTable::RouteTable(const Adjacency& adj, int node,
                       const std::vector<int>& gateways,
                       const RoutingConfig& config)
    : gateways_(gateways) {
  routes_.reserve(gateways_.size());
  for (const int gw : gateways_) {
    if (gw == node) {
      // A gateway drains itself: a degenerate zero-cost local route.
      Route self;
      self.hops = {node};
      routes_.push_back({std::move(self)});
    } else {
      routes_.push_back(k_shortest_paths(adj, node, gw, config.k_paths));
    }
  }
  for (std::size_t i = 0; i < gateways_.size(); ++i) {
    if (gateways_[i] == node) {
      best_gateway_ = node;  // Local egress always wins.
      break;
    }
    if (routes_[i].empty()) continue;
    if (best_gateway_ < 0 ||
        route_less(routes_[i].front(), routes(best_gateway_).front())) {
      best_gateway_ = gateways_[i];
    }
  }
}

const std::vector<Route>& RouteTable::routes(int gateway) const {
  for (std::size_t i = 0; i < gateways_.size(); ++i) {
    if (gateways_[i] == gateway) return routes_[i];
  }
  return kNoRoutes;
}

}  // namespace mmtag::mesh
