// Reader-backhaul topology: the graph the mesh routes over.
//
// A metro deployment is only as good as its backhaul: every ReaderCell's
// inventory has to leave the building over reader-to-reader links, and
// those links exist or not purely by geometry (readers within backhaul
// radio range) and quality (SNR from a log-distance budget). This module
// turns `deploy::layout` reader poses into that graph: per-link SNR,
// Shannon-capped capacity, and a serialization-time link cost the routing
// layer minimizes. Adjacency lists are sorted by neighbor id and link
// enumeration is (from, to) lexicographic, so every downstream traversal
// is deterministic by construction.
//
// The topology itself is static for a run (readers do not move); what
// changes per epoch is the *live* mask realized by src/fault. Reachability
// against that mask — which live readers can still reach a gateway — is
// computed here because both the routing layer and the orphan-reassignment
// fix in deploy::FleetCoordinator need the same answer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/tag.hpp"

namespace mmtag::mesh {

/// Log-distance backhaul link budget: readers are mains-located but the
/// 24 GHz backhaul radio still has finite reach. Links past `max_range_m`
/// or below `min_snr_db` do not exist.
struct MeshLinkModel {
  double max_range_m = 12.0;
  /// SNR of a 1 m link [dB]; falls off 10*n*log10(d).
  double snr_at_1m_db = 42.0;
  double pathloss_exponent = 2.1;
  /// Links below this SNR are not formed (no viable MCS).
  double min_snr_db = 3.0;
  /// Backhaul channel bandwidth [Hz]; capacity = B * log2(1 + snr).
  double bandwidth_hz = 100e6;
};

struct TopologyConfig {
  MeshLinkModel link;
  /// Reader indices with wired egress (inventory sinks). Empty selects
  /// reader 0 — every layout has at least one reader.
  std::vector<int> gateways;
};

/// One directed backhaul link (the graph is symmetric: every link has a
/// mirrored twin).
struct MeshLink {
  int from = 0;
  int to = 0;
  double distance_m = 0.0;
  double snr_db = 0.0;
  double capacity_bps = 0.0;
  /// Serialization time of one reference transfer unit (kCostRefBits) [s]
  /// — the additive metric Dijkstra minimizes. Fast links cost less.
  double cost = 0.0;
};

/// Reference transfer unit behind MeshLink::cost [bits]. The absolute
/// scale cancels out of route *choices*; it only keeps costs in a humane
/// range for tables and logs.
inline constexpr double kCostRefBits = 2048.0;

class MeshTopology {
 public:
  /// Build the backhaul graph over `reader_poses`. Deterministic: the
  /// same poses and config always produce the same links in the same
  /// order. Gateways outside [0, nodes) are discarded; an empty surviving
  /// set falls back to reader 0.
  MeshTopology(const std::vector<core::Pose>& reader_poses,
               const TopologyConfig& config);

  [[nodiscard]] std::size_t nodes() const { return nodes_; }
  [[nodiscard]] const TopologyConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<int>& gateways() const { return gateways_; }
  [[nodiscard]] bool is_gateway(int node) const;

  /// Out-links of `node`, sorted by neighbor id.
  [[nodiscard]] const std::vector<MeshLink>& neighbors(int node) const {
    return adjacency_[static_cast<std::size_t>(node)];
  }
  /// Every directed link, (from, to) lexicographic.
  [[nodiscard]] const std::vector<MeshLink>& links() const { return links_; }

  /// The directed link from -> to, or nullptr when none exists.
  [[nodiscard]] const MeshLink* find_link(int from, int to) const;

  /// reachable[r] == 1 iff reader r is live and a path of live readers
  /// connects it to a live gateway (BFS in ascending-id order). A dead
  /// reader is never reachable; a live gateway always is. `live` empty
  /// means every reader is up.
  [[nodiscard]] std::vector<std::uint8_t> gateway_reachable(
      const std::vector<std::uint8_t>& live) const;

  /// True when every node is gateway-reachable with every reader up —
  /// the sanity check benches run before simulating a topology.
  [[nodiscard]] bool fully_connected() const;

 private:
  std::size_t nodes_;
  TopologyConfig config_;
  std::vector<int> gateways_;
  std::vector<MeshLink> links_;
  std::vector<std::vector<MeshLink>> adjacency_;
};

}  // namespace mmtag::mesh
