// Metro backhaul: FleetSimulator inventory drained through the mesh.
//
// This is the tentpole's integration layer, the piece ROADMAP item 2 says
// sharded million-tag cells are pointless without: every epoch, each
// ReaderCell's freshly merged inventory (delivered bits, discovered tags)
// is framed into net::Packet buffers and forwarded hop by hop to a
// gateway reader — on the same coordinating thread, right after the
// fleet's deterministic merge, so aggregates stay bit-identical at any
// thread count. The same fault epochs that take readers off the air take
// them out of the mesh: a reader outage starts a topology epoch, in-flight
// traffic shifts to precomputed K-alternates, the link-state flood
// reconverges at the epoch boundary, and orphan re-handoff consults mesh
// reachability so no tag is parked on a live-but-partitioned reader.
//
// Composition is by the two FleetConfig hooks (epoch_observer,
// backhaul_reachable) rather than a deploy->mesh dependency, keeping the
// layering acyclic: deploy knows nothing about routing, mesh composes it.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/deploy/fleet.hpp"
#include "src/mesh/forwarding.hpp"
#include "src/mesh/topology.hpp"
#include "src/sim/table.hpp"

namespace mmtag::mesh {

struct BackhaulConfig {
  /// The radio-side fleet run. The simulator installs its own
  /// epoch_observer and backhaul_reachable hooks; anything already set
  /// there is overwritten.
  deploy::FleetConfig fleet;
  TopologyConfig topology;
  ForwardingConfig forwarding;
  /// Payload bytes per mesh frame (one frame carries this much inventory).
  std::size_t payload_bytes = 256;
  /// Slots in the shared forwarding pool. Undersize it and gateway fan-in
  /// exhausts the pool: frames drop gracefully and are counted
  /// (mesh.dropped.pool / net.pool.exhausted), never silently diverge.
  std::size_t pool_packets = 256;
  /// Frames one cell may offer per epoch (bounds event count per epoch;
  /// the cap is a drop-nothing clamp — inventory bits above it still count
  /// as offered load in the last frame).
  int max_frames_per_cell_epoch = 32;
  /// Consult mesh reachability in orphan re-handoff. Off reproduces the
  /// pre-mesh behavior where a partitioned live reader still collects
  /// orphans (the regression the coordinator fix closes).
  bool mesh_aware_recovery = true;
};

struct BackhaulReport {
  deploy::FleetResult fleet;
  MeshStats mesh;
  /// Wall time the mesh ran over (fleet epochs * epoch duration) [s].
  double horizon_s = 0.0;
  int readers = 0;
  int gateways = 0;
  int mesh_links = 0;  ///< Directed links in the static topology.
};

/// Combined digest: fleet stats, fault report and mesh stats fingerprints
/// chained — the single value bench_m1_mesh compares across thread counts.
[[nodiscard]] std::uint64_t fingerprint(const BackhaulReport& report);

/// One-row summary (frames, delivery ratio, reroutes, stretch, latency,
/// link utilization, convergence) for benches and examples.
[[nodiscard]] sim::Table backhaul_table(const BackhaulReport& report);

class BackhaulSimulator {
 public:
  explicit BackhaulSimulator(BackhaulConfig config);

  /// Run the fleet with the mesh attached. Deterministic in the config
  /// seeds; independent of fleet.threads (the mesh runs serially at the
  /// epoch barrier).
  [[nodiscard]] BackhaulReport run();

  [[nodiscard]] const BackhaulConfig& config() const { return config_; }

 private:
  BackhaulConfig config_;
};

}  // namespace mmtag::mesh
