#include "src/mesh/forwarding.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/obs/metrics.hpp"
#include "src/obs/stats.hpp"

namespace mmtag::mesh {

namespace {

void store_le16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xFF);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xFF);
  p[1] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
  p[2] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
  p[3] = static_cast<std::uint8_t>((v >> 24) & 0xFF);
}
std::uint16_t load_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

obs::Counter& mesh_counter(const char* name) {
  return obs::Registry::instance().counter(name);
}
obs::Histogram& latency_us_metric() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("mesh.delivery_latency_us");
  return hist;
}
obs::Histogram& stretch_metric() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("mesh.path_stretch_x1000");
  return hist;
}
obs::Histogram& link_util_metric() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("mesh.link.util_ppm");
  return hist;
}
obs::Histogram& convergence_rounds_metric() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("mesh.convergence_rounds");
  return hist;
}

}  // namespace

bool MeshHeader::encode_prepend(net::Packet& packet) const {
  std::uint8_t* p = packet.prepend(kWireBytes);
  if (p == nullptr) return false;
  p[0] = version;
  p[1] = ttl;
  store_le16(p + 2, src);
  store_le16(p + 4, dst);
  store_le16(p + 6, flags);
  store_le32(p + 8, seq);
  store_le32(p + 12, epoch);
  return true;
}

bool MeshHeader::decode(const net::Packet& packet, MeshHeader* out) {
  if (packet.size() < kWireBytes) return false;
  const std::uint8_t* p = packet.data();
  if (p[0] != kVersion) return false;
  out->version = p[0];
  out->ttl = p[1];
  out->src = load_le16(p + 2);
  out->dst = load_le16(p + 4);
  out->flags = load_le16(p + 6);
  out->seq = load_le32(p + 8);
  out->epoch = load_le32(p + 12);
  return true;
}

bool MeshHeader::strip(net::Packet& packet) {
  if (packet.size() < kWireBytes) return false;
  return packet.consume(kWireBytes);
}

std::uint64_t fingerprint(const MeshStats& stats) {
  obs::Fnv1a hasher;
  hasher.mix_u64(stats.offered);
  hasher.mix_u64(stats.delivered);
  hasher.mix_u64(stats.delivered_local);
  hasher.mix_u64(stats.dropped_pool);
  hasher.mix_u64(stats.dropped_no_route);
  hasher.mix_u64(stats.dropped_ttl);
  hasher.mix_u64(stats.reroutes);
  hasher.mix_u64(stats.rerouted_delivered);
  hasher.mix_u64(stats.hops);
  hasher.mix_u64(stats.payload_bytes_delivered);
  hasher.mix_u64(static_cast<std::uint64_t>(stats.topology_epochs));
  hasher.mix_u64(static_cast<std::uint64_t>(stats.convergence_rounds));
  hasher.mix_u64(stats.lsa_transmissions);
  hasher.mix_u64(stats.breakers_opened);
  hasher.mix_u64(stats.breakers_reclosed);
  hasher.mix_u64(stats.breakers_open_end);
  hasher.mix_double(stats.latency_p50_s);
  hasher.mix_double(stats.latency_p95_s);
  hasher.mix_double(stats.latency_p99_s);
  hasher.mix_double(stats.stretch_mean);
  hasher.mix_double(stats.stretch_max);
  hasher.mix_double(stats.link_util_mean);
  hasher.mix_double(stats.link_util_max);
  return hasher.digest();
}

MeshNetwork::MeshNetwork(const MeshTopology* topology, ForwardingConfig config,
                         net::PacketPool* pool)
    : topology_(topology),
      config_(config),
      pool_(pool),
      protocol_(topology),
      tables_(topology->nodes()),
      link_busy_until_s_(topology->links().size(), 0.0),
      link_busy_s_(topology->links().size(), 0.0) {
  assert(pool_ != nullptr);
  assert(pool_->headroom() >= MeshHeader::kWireBytes);
  assert(config_.ttl > 0 && config_.ttl <= 255);
  const std::size_t n = topology_->nodes();
  link_offset_.resize(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    link_offset_[v + 1] =
        link_offset_[v] + topology_->neighbors(static_cast<int>(v)).size();
  }
  if (config_.breakers) {
    breakers_ = resil::BreakerBank(topology_->links().size(), config_.breaker);
  }
  stats_.convergence_rounds += protocol_.converge({});
  rebuild_tables(/*only_live=*/false);
  refresh_oracle();
}

std::size_t MeshNetwork::link_index(int from, int to) const {
  const std::vector<MeshLink>& out = topology_->neighbors(from);
  for (std::size_t j = 0; j < out.size(); ++j) {
    if (out[j].to == to) {
      return link_offset_[static_cast<std::size_t>(from)] + j;
    }
  }
  assert(false && "no directed link from -> to");
  return 0;
}

bool MeshNetwork::breaker_allows(int from, int to) const {
  if (!config_.breakers) return true;
  return breakers_.allow(link_index(from, to));
}

void MeshNetwork::record_hop_outcome(int came_from, int node, bool success) {
  if (!config_.breakers || came_from < 0) return;
  const std::size_t link = link_index(came_from, node);
  if (success) {
    breakers_.record_success(link);
  } else {
    breakers_.record_failure(link);
  }
}

void MeshNetwork::begin_epoch(const std::vector<std::uint8_t>& live) {
  assert(live.empty() || live.size() == topology_->nodes());
  assert(in_flight_.empty());  // The previous epoch's queue must be drained.
  live_ = live;
  ++stats_.topology_epochs;
  if (config_.breakers) breakers_.tick_epoch();
  refresh_oracle();
  mesh_counter("mesh.epochs").add(1);
}

void MeshNetwork::rebuild_tables(bool only_live) {
  const std::size_t n = topology_->nodes();
  for (std::size_t v = 0; v < n; ++v) {
    if (only_live && !node_live(static_cast<int>(v))) continue;
    Adjacency believed = protocol_.believed_topology(static_cast<int>(v));
    if (config_.breakers && breakers_.open_count() > 0) {
      // Feed breaker state back into the routing metric: an open link's
      // believed cost is scaled so reconverged paths steer around it
      // while it still exists as a last resort.
      for (std::size_t u = 0; u < believed.size(); ++u) {
        for (MeshLink& link : believed[u]) {
          if (!breakers_.allow(link_index(static_cast<int>(u), link.to))) {
            link.cost *= config_.breaker.open_cost_penalty;
          }
        }
      }
    }
    tables_[v] = RouteTable(believed, static_cast<int>(v),
                            topology_->gateways(), config_.routing);
  }
}

void MeshNetwork::refresh_oracle() {
  const std::size_t n = topology_->nodes();
  Adjacency live_adj(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (!node_live(static_cast<int>(v))) continue;
    for (const MeshLink& link : topology_->neighbors(static_cast<int>(v))) {
      if (node_live(link.to)) live_adj[v].push_back(link);
    }
  }
  oracle_cost_.assign(n, -1.0);
  // Links are cost-symmetric (distance is), so distance-from-gateway equals
  // cost-to-gateway; min over the live gateway set.
  for (const int gw : topology_->gateways()) {
    if (!node_live(gw)) continue;
    const ShortestPaths sp = dijkstra(live_adj, gw);
    for (std::size_t v = 0; v < n; ++v) {
      if (sp.cost[v] < 0.0) continue;
      if (oracle_cost_[v] < 0.0 || sp.cost[v] < oracle_cost_[v]) {
        oracle_cost_[v] = sp.cost[v];
      }
    }
  }
}

bool MeshNetwork::send(mac::EventQueue& queue, int src,
                       std::size_t payload_bytes, double at_s) {
  assert(src >= 0 && static_cast<std::size_t>(src) < topology_->nodes());
  if (!node_live(src)) {
    ++stats_.dropped_no_route;
    mesh_counter("mesh.dropped.no_route").add(1);
    return false;
  }
  if (topology_->is_gateway(src)) {
    // Local egress: the inventory leaves over the gateway's wire, no mesh
    // frame needed (and no latency/stretch sample — there was no path).
    ++stats_.offered;
    ++stats_.delivered;
    ++stats_.delivered_local;
    stats_.payload_bytes_delivered += payload_bytes;
    mesh_counter("mesh.offered").add(1);
    mesh_counter("mesh.delivered").add(1);
    return true;
  }
  const int dst = tables_[static_cast<std::size_t>(src)].best_gateway();
  if (dst < 0) {
    ++stats_.dropped_no_route;
    mesh_counter("mesh.dropped.no_route").add(1);
    return false;
  }
  net::Packet packet = pool_->alloc();
  if (!packet) {
    // Fan-in exceeded the pool: a counted, graceful drop (the pool itself
    // bumped net.pool.exhausted), never a crash or a silent divergence.
    ++stats_.dropped_pool;
    mesh_counter("mesh.dropped.pool").add(1);
    return false;
  }
  std::uint8_t* payload = packet.append(payload_bytes);
  assert(payload != nullptr);  // Pool slots are sized for the payload.
  std::memset(payload, 0, payload_bytes);
  MeshHeader header;
  header.ttl = static_cast<std::uint8_t>(config_.ttl);
  header.src = static_cast<std::uint16_t>(src);
  header.dst = static_cast<std::uint16_t>(dst);
  header.seq = next_seq_++;
  header.epoch = static_cast<std::uint32_t>(protocol_.epoch());
  if (payload_bytes >= sizeof(header.seq)) {
    std::memcpy(payload, &header.seq, sizeof(header.seq));
  }
  const bool ok = header.encode_prepend(packet);
  assert(ok);
  (void)ok;

  const std::uint32_t id = next_id_++;
  InFlight flight;
  flight.packet = std::move(packet);
  flight.header = header;
  flight.at_node = src;
  flight.sent_s = at_s;
  flight.oracle_cost = oracle_cost_[static_cast<std::size_t>(src)];
  in_flight_.emplace(id, std::move(flight));
  ++stats_.offered;
  mesh_counter("mesh.offered").add(1);
  queue.schedule(at_s, [this, &queue, id, at_s] { arrive(queue, id, at_s); });
  return true;
}

int MeshNetwork::next_hop(int node, int came_from, MeshHeader& header,
                          bool* rerouted) const {
  *rerouted = false;
  const RouteTable& table = tables_[static_cast<std::size_t>(node)];
  const auto pick = [&](const std::vector<Route>& routes,
                        bool* shifted) -> int {
    const std::size_t limit = config_.failover ? routes.size()
                                               : std::min<std::size_t>(
                                                     routes.size(), 1);
    for (std::size_t k = 0; k < limit; ++k) {
      const Route& route = routes[k];
      if (!route.valid()) continue;
      assert(route.hops.front() == node);
      const int next = route.hops[1];
      if (!node_live(next)) continue;
      if (next == came_from) continue;  // No immediate bounce-back.
      // An open breaker refuses the link outright (HalfOpen admits the
      // probe); a lower-ranked alternate counts as a shift like any other
      // failover.
      if (!breaker_allows(node, next)) continue;
      *shifted = k > 0;
      return next;
    }
    return -1;
  };
  bool shifted = false;
  int next = pick(table.routes(header.dst), &shifted);
  if (next >= 0) {
    *rerouted = shifted;
    return next;
  }
  if (!config_.failover) return -1;
  // Gateway fallback: the original target (or every path to it) is gone;
  // re-aim at this node's best reachable gateway.
  const int fallback = table.best_gateway();
  if (fallback >= 0 && fallback != header.dst) {
    next = pick(table.routes(fallback), &shifted);
    if (next >= 0) {
      header.dst = static_cast<std::uint16_t>(fallback);
      *rerouted = true;
      return next;
    }
  }
  return -1;
}

void MeshNetwork::arrive(mac::EventQueue& queue, std::uint32_t id,
                         double at_s) {
  const auto it = in_flight_.find(id);
  assert(it != in_flight_.end());
  InFlight& flight = it->second;
  const int node = flight.at_node;
  // The hop that landed here is the breaker's observation: a frame
  // crossing onto a dead reader is a forwarding failure charged to that
  // directed link, a live landing is a success.
  record_hop_outcome(flight.came_from, node, node_live(node));

  if (topology_->is_gateway(node) && node_live(node)) {
    // Delivered. Verify the wire header survived the trip, then strip it.
    MeshHeader wire;
    const bool decoded = MeshHeader::decode(flight.packet, &wire);
    assert(decoded && wire.src == flight.header.src &&
           wire.seq == flight.header.seq);
    (void)decoded;
    (void)wire;
    MeshHeader::strip(flight.packet);
    ++stats_.delivered;
    stats_.hops += static_cast<std::uint64_t>(config_.ttl) -
                   static_cast<std::uint64_t>(flight.header.ttl);
    stats_.payload_bytes_delivered += flight.packet.size();
    if ((flight.header.flags & MeshHeader::kFlagRerouted) != 0) {
      ++stats_.rerouted_delivered;
    }
    const double latency = at_s - flight.sent_s;
    latencies_s_.push_back(latency);
    const double stretch =
        flight.oracle_cost > 0.0
            ? std::max(1.0, flight.walked_cost / flight.oracle_cost)
            : 1.0;
    stretches_.push_back(stretch);
    mesh_counter("mesh.delivered").add(1);
    latency_us_metric().record(latency * 1e6);
    stretch_metric().record(stretch * 1e3);
    in_flight_.erase(it);
    return;
  }
  if (!node_live(node)) {
    drop(id, &MeshStats::dropped_no_route);
    return;
  }
  if (flight.header.ttl == 0) {
    drop(id, &MeshStats::dropped_ttl);
    return;
  }
  bool rerouted = false;
  const int next = next_hop(node, flight.came_from, flight.header, &rerouted);
  if (next < 0) {
    drop(id, &MeshStats::dropped_no_route);
    return;
  }
  if (rerouted) {
    flight.header.flags |= MeshHeader::kFlagRerouted;
    ++stats_.reroutes;
    mesh_counter("mesh.reroutes").add(1);
  }
  --flight.header.ttl;
  // Keep the wire bytes authoritative: strip the stale header, prepend the
  // updated one (both are headroom slides, the payload never moves).
  MeshHeader::strip(flight.packet);
  const bool ok = flight.header.encode_prepend(flight.packet);
  assert(ok);
  (void)ok;
  transmit(queue, id, node, next, at_s);
}

void MeshNetwork::transmit(mac::EventQueue& queue, std::uint32_t id, int from,
                           int to, double at_s) {
  InFlight& flight = in_flight_.at(id);
  // Locate the directed link and its global index (links() is (from, to)
  // lexicographic; adjacency shares that order within a node, so the
  // precomputed out-degree prefix sum gives the index directly).
  const std::size_t index = link_index(from, to);
  const MeshLink* link =
      &topology_->links()[index];
  assert(link->from == from && link->to == to);
  const double tx_s =
      static_cast<double>(flight.packet.size()) * 8.0 / link->capacity_bps +
      config_.per_hop_overhead_s;
  const double start_s = std::max(at_s, link_busy_until_s_[index]);
  const double done_s = start_s + tx_s;
  link_busy_until_s_[index] = done_s;
  link_busy_s_[index] += tx_s;
  flight.walked_cost += link->cost;
  flight.came_from = from;
  flight.at_node = to;
  queue.schedule(done_s,
                 [this, &queue, id, done_s] { arrive(queue, id, done_s); });
}

void MeshNetwork::drop(std::uint32_t id, std::uint64_t MeshStats::*counter) {
  stats_.*counter += 1;
  if (counter == &MeshStats::dropped_ttl) {
    mesh_counter("mesh.dropped.ttl").add(1);
  } else {
    mesh_counter("mesh.dropped.no_route").add(1);
  }
  in_flight_.erase(id);  // Releases the packet slot back to the pool.
}

void MeshNetwork::reconverge() {
  assert(in_flight_.empty());
  const int rounds = protocol_.converge(live_);
  stats_.convergence_rounds += rounds;
  stats_.lsa_transmissions = protocol_.lsa_transmissions();
  convergence_rounds_metric().record(static_cast<std::uint64_t>(rounds));
  if (config_.reconverge) rebuild_tables(/*only_live=*/true);
}

MeshStats MeshNetwork::finish(double horizon_s) {
  assert(in_flight_.empty());
  if (config_.breakers) {
    stats_.breakers_opened = breakers_.stats().opened;
    stats_.breakers_reclosed = breakers_.stats().reclosed;
    stats_.breakers_open_end =
        static_cast<std::uint64_t>(breakers_.open_count());
  }
  stats_.latency_p50_s = latencies_s_.empty()
                             ? 0.0
                             : obs::percentile(latencies_s_, 50.0);
  stats_.latency_p95_s = latencies_s_.empty()
                             ? 0.0
                             : obs::percentile(latencies_s_, 95.0);
  stats_.latency_p99_s = latencies_s_.empty()
                             ? 0.0
                             : obs::percentile(latencies_s_, 99.0);
  if (!stretches_.empty()) {
    double sum = 0.0;
    double max = 1.0;
    for (const double s : stretches_) {
      sum += s;
      max = std::max(max, s);
    }
    stats_.stretch_mean = sum / static_cast<double>(stretches_.size());
    stats_.stretch_max = max;
  }
  if (!link_busy_s_.empty() && horizon_s > 0.0) {
    double sum = 0.0;
    double max = 0.0;
    for (const double busy : link_busy_s_) {
      const double util = busy / horizon_s;
      sum += util;
      max = std::max(max, util);
      link_util_metric().record(util * 1e6);
    }
    stats_.link_util_mean = sum / static_cast<double>(link_busy_s_.size());
    stats_.link_util_max = max;
  }
  return stats_;
}

}  // namespace mmtag::mesh
