// Hop-by-hop forwarding plane: net::Packet buffers over the reader mesh.
//
// This is the data path of the backhaul: a reader drains its cell's
// inventory as mesh frames — a net::PacketPool slot with the payload
// appended and a 16-byte MeshHeader *prepended into the reserved headroom*
// (zero copy, the payload bytes never move) — and every hop is an event on
// a mac::EventQueue: per-directed-link FIFO serialization at the link's
// Shannon capacity plus a fixed per-hop processing overhead.
//
// Forwarding is table-driven and hop-by-hop (each node consults its OWN
// RouteTable for the header's destination gateway), with the failure
// handling the tentpole is about: when the primary next hop is dead — a
// fault epoch took the reader down and the link-state flood has not
// reconverged yet — the node shifts the packet to its first precomputed
// K-alternate whose next hop is alive (a reroute), falling back to its
// best reachable gateway when the original target is gone entirely.
// Residual loops from stale-state detours are bounded by the header TTL.
// Pool exhaustion on send is a *counted, graceful drop* (mesh.dropped.pool
// + net.pool.exhausted), never silent divergence.
//
// Determinism: the plane runs on the coordinating thread; the event queue
// breaks timestamp ties by insertion sequence; every table rebuild walks
// nodes in ascending id. A given (topology, live-mask history, offered
// traffic) always produces bit-identical MeshStats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/mac/event_queue.hpp"
#include "src/mesh/link_state.hpp"
#include "src/mesh/routing.hpp"
#include "src/mesh/topology.hpp"
#include "src/net/packet.hpp"
#include "src/resil/breaker.hpp"

namespace mmtag::mesh {

/// On-wire mesh header, prepended into a packet's headroom (little-endian,
/// fixed 16 bytes).
struct MeshHeader {
  static constexpr std::uint8_t kVersion = 1;
  static constexpr std::size_t kWireBytes = 16;
  /// Header flag: the packet left its primary path at least once.
  static constexpr std::uint16_t kFlagRerouted = 0x0001;

  std::uint8_t version = kVersion;
  std::uint8_t ttl = 16;
  std::uint16_t src = 0;    ///< Originating reader.
  std::uint16_t dst = 0;    ///< Destination gateway reader.
  std::uint16_t flags = 0;
  std::uint32_t seq = 0;    ///< Per-source sequence number.
  std::uint32_t epoch = 0;  ///< Topology epoch at origination.

  /// Prepend this header into `packet`'s headroom. False when the
  /// headroom is short (packet unchanged).
  bool encode_prepend(net::Packet& packet) const;
  /// Parse the header at the front of `packet` without consuming it.
  /// False on short packets or version mismatch.
  static bool decode(const net::Packet& packet, MeshHeader* out);
  /// Strip a decoded header off the front (returns it to headroom).
  static bool strip(net::Packet& packet);
};

struct ForwardingConfig {
  RoutingConfig routing;
  /// Initial header TTL (bounds stale-state detour loops).
  int ttl = 16;
  /// Per-hop processing + MAC overhead [s] on top of serialization.
  double per_hop_overhead_s = 20e-6;
  /// Consult K-alternates when the primary next hop is dead. Off = the
  /// no-failover baseline: the packet is dropped where the primary dies.
  bool failover = true;
  /// Rebuild route tables from the link-state databases after each
  /// epoch's convergence. Off freezes the tables built at construction
  /// (the static-routing strawman benches compare against).
  bool reconverge = true;
  /// Per-directed-link circuit breakers (DESIGN.md Sec. 15): forwarding
  /// outcomes open/close breakers, route selection skips open links, and
  /// table rebuilds scale an open link's believed cost by
  /// breaker.open_cost_penalty so reconverged paths steer around links
  /// that keep eating frames. Off = the legacy plane, bit for bit.
  bool breakers = false;
  resil::BreakerConfig breaker{};
};

/// Aggregate forwarding observables; all totals over the network lifetime.
struct MeshStats {
  std::uint64_t offered = 0;          ///< send() calls accepted to the wire.
  std::uint64_t delivered = 0;        ///< Reached their gateway.
  std::uint64_t delivered_local = 0;  ///< Source was its own gateway.
  std::uint64_t dropped_pool = 0;     ///< PacketPool dry at send.
  std::uint64_t dropped_no_route = 0; ///< No usable next hop / gateway.
  std::uint64_t dropped_ttl = 0;      ///< TTL expired (stale-state loop).
  std::uint64_t reroutes = 0;         ///< Shifts off the primary next hop.
  std::uint64_t rerouted_delivered = 0;  ///< Deliveries that took >= 1 shift.
  std::uint64_t hops = 0;             ///< Link crossings of delivered pkts.
  std::uint64_t payload_bytes_delivered = 0;
  int topology_epochs = 0;
  int convergence_rounds = 0;         ///< Summed link-state flood rounds.
  std::uint64_t lsa_transmissions = 0;
  std::uint64_t breakers_opened = 0;   ///< Circuit-breaker trips (lifetime).
  std::uint64_t breakers_reclosed = 0; ///< HalfOpen -> Closed recoveries.
  std::uint64_t breakers_open_end = 0; ///< Links still open at finish().

  double latency_p50_s = 0.0;  ///< Delivery latency percentiles (pooled).
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  double stretch_mean = 1.0;   ///< Delivered path cost / oracle best cost.
  double stretch_max = 1.0;
  double link_util_mean = 0.0; ///< Busy fraction across directed links.
  double link_util_max = 0.0;

  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_pool + dropped_no_route + dropped_ttl;
  }
  [[nodiscard]] double delivery_ratio() const {
    const std::uint64_t total = offered + dropped_pool;
    return total > 0 ? static_cast<double>(delivered) /
                           static_cast<double>(total)
                     : 1.0;
  }
};

/// FNV-1a digest over every MeshStats field — the bit-identity check the
/// mesh determinism tests and bench_m1_mesh compare across thread counts.
[[nodiscard]] std::uint64_t fingerprint(const MeshStats& stats);

/// The mesh network: link-state protocol + per-node route tables + the
/// event-driven forwarding plane, against one static MeshTopology.
class MeshNetwork {
 public:
  /// `topology` and `pool` must outlive the network. Construction runs the
  /// initial link-state convergence over the full topology and builds
  /// every node's route table from its own converged database.
  MeshNetwork(const MeshTopology* topology, ForwardingConfig config,
              net::PacketPool* pool);

  /// Start a topology epoch: `live` (empty = all up) gates which readers
  /// forward and which links exist for THIS epoch's traffic. Tables stay
  /// as last converged — stale until reconverge() — which is exactly when
  /// failover alternates earn their keep.
  void begin_epoch(const std::vector<std::uint8_t>& live);

  /// Offer one payload of `payload_bytes` from reader `src` at absolute
  /// time `at_s` on `queue`. Returns false on the counted graceful drops
  /// (pool dry, no route, source dead). Call between begin_epoch and the
  /// queue drain.
  bool send(mac::EventQueue& queue, int src, std::size_t payload_bytes,
            double at_s);

  /// Run the link-state protocol on the current live mask and rebuild the
  /// live nodes' route tables from their databases. Call after the
  /// epoch's queue has drained. No-op when config().reconverge is false
  /// (the protocol still floods; tables just stay frozen).
  void reconverge();

  /// Close out and return totals. `horizon_s` is the wall time link
  /// utilization is normalized by.
  [[nodiscard]] MeshStats finish(double horizon_s);

  [[nodiscard]] const ForwardingConfig& config() const { return config_; }
  [[nodiscard]] const MeshTopology& topology() const { return *topology_; }
  [[nodiscard]] const RouteTable& table(int node) const {
    return tables_[static_cast<std::size_t>(node)];
  }
  /// Live readers reachable to a gateway under the CURRENT epoch's mask —
  /// what FleetConfig::backhaul_reachable forwards to the coordinator.
  [[nodiscard]] std::vector<std::uint8_t> reachable() const {
    return topology_->gateway_reachable(live_);
  }
  /// In-flight frames (0 once the epoch's queue drained).
  [[nodiscard]] std::size_t in_flight() const { return in_flight_.size(); }
  /// The per-link breaker bank (zero links unless config().breakers).
  [[nodiscard]] const resil::BreakerBank& breakers() const {
    return breakers_;
  }

 private:
  struct InFlight {
    net::Packet packet;
    MeshHeader header;
    int at_node = 0;
    int came_from = -1;
    double sent_s = 0.0;
    double oracle_cost = 0.0;  ///< Best live-graph cost at origination.
    double walked_cost = 0.0;
  };

  [[nodiscard]] bool node_live(int node) const {
    return live_.empty() || live_[static_cast<std::size_t>(node)] != 0;
  }
  void rebuild_tables(bool only_live);
  void refresh_oracle();
  /// Global index of directed link from -> to in topology links() order.
  [[nodiscard]] std::size_t link_index(int from, int to) const;
  /// Breaker verdict for the directed link from -> to (true when breakers
  /// are off).
  [[nodiscard]] bool breaker_allows(int from, int to) const;
  /// Record the observed outcome of the hop that landed this frame.
  void record_hop_outcome(int came_from, int node, bool success);
  /// Process the frame keyed `id` arriving at its current node at `at_s`.
  void arrive(mac::EventQueue& queue, std::uint32_t id, double at_s);
  /// Pick the next hop at `node` toward `header.dst`; -1 = no usable hop.
  /// Sets `*rerouted` when an alternate or gateway fallback was taken.
  [[nodiscard]] int next_hop(int node, int came_from, MeshHeader& header,
                             bool* rerouted) const;
  void transmit(mac::EventQueue& queue, std::uint32_t id, int from, int to,
                double at_s);
  void drop(std::uint32_t id, std::uint64_t MeshStats::*counter);

  const MeshTopology* topology_;
  ForwardingConfig config_;
  net::PacketPool* pool_;
  LinkStateProtocol protocol_;
  std::vector<RouteTable> tables_;
  std::vector<std::uint8_t> live_;
  /// Prefix sum of out-degrees: neighbors(v)[j] is directed link
  /// link_offset_[v] + j in topology links() order.
  std::vector<std::size_t> link_offset_;
  /// One breaker per directed link; empty unless config_.breakers.
  resil::BreakerBank breakers_;
  /// Oracle shortest cost node -> nearest live gateway (path-stretch
  /// denominator); < 0 when unreachable.
  std::vector<double> oracle_cost_;
  /// Per directed link (topology links() order): serializer busy-until
  /// and cumulative busy seconds.
  std::vector<double> link_busy_until_s_;
  std::vector<double> link_busy_s_;
  std::unordered_map<std::uint32_t, InFlight> in_flight_;
  std::uint32_t next_id_ = 0;
  std::uint32_t next_seq_ = 0;
  MeshStats stats_;
  std::vector<double> latencies_s_;
  std::vector<double> stretches_;
};

}  // namespace mmtag::mesh
