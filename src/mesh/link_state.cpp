#include "src/mesh/link_state.hpp"

#include <algorithm>
#include <cassert>

namespace mmtag::mesh {

namespace {

bool is_live(const std::vector<std::uint8_t>& live, int node) {
  return live.empty() || live[static_cast<std::size_t>(node)] != 0;
}

}  // namespace

LinkStateProtocol::LinkStateProtocol(const MeshTopology* topology)
    : topology_(topology),
      db_(topology->nodes(), std::vector<Lsa>(topology->nodes())),
      was_live_(topology->nodes(), 1) {
  assert(topology_ != nullptr);
}

int LinkStateProtocol::converge(const std::vector<std::uint8_t>& live) {
  const std::size_t n = topology_->nodes();
  assert(live.empty() || live.size() == n);
  ++epoch_;

  // Restart rule: a node that was down and is back lost its LSA store.
  for (std::size_t v = 0; v < n; ++v) {
    const bool up = is_live(live, static_cast<int>(v));
    if (up && was_live_[v] == 0) {
      std::fill(db_[v].begin(), db_[v].end(), Lsa{});
    }
    was_live_[v] = up ? 1 : 0;
  }

  // Origination: every live node senses its live symmetric neighbors
  // (hello exchange — link sensing is local and immediate) and bumps its
  // own LSA seq when the set changed or the entry is missing.
  for (std::size_t v = 0; v < n; ++v) {
    if (!is_live(live, static_cast<int>(v))) continue;
    std::vector<int> now;
    for (const MeshLink& link : topology_->neighbors(static_cast<int>(v))) {
      if (is_live(live, link.to)) now.push_back(link.to);
    }
    Lsa& own = db_[v][v];
    if (!own.known || own.neighbors != now) {
      ++own.seq;
      own.known = true;
      own.neighbors = std::move(now);
    }
  }

  // Flooding: one round moves every fresher LSA one hop. A round that
  // adopts nothing ends the flood; the round count is the component's
  // LSA radius for this epoch.
  int rounds = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    // Snapshot sender databases so one round moves information exactly
    // one hop (no intra-round shortcuts through low-id nodes).
    const std::vector<std::vector<Lsa>> before = db_;
    for (std::size_t v = 0; v < n; ++v) {
      if (!is_live(live, static_cast<int>(v))) continue;
      for (const MeshLink& link : topology_->neighbors(static_cast<int>(v))) {
        if (!is_live(live, link.to)) continue;
        const auto peer = static_cast<std::size_t>(link.to);
        for (std::size_t origin = 0; origin < n; ++origin) {
          const Lsa& theirs = before[v][origin];
          if (!theirs.known) continue;
          Lsa& mine = db_[peer][origin];
          if (!mine.known || theirs.seq > mine.seq) {
            mine = theirs;
            ++lsa_transmissions_;
            changed = true;
          }
        }
      }
    }
    if (changed) ++rounds;
  }
  last_rounds_ = rounds;
  return rounds;
}

bool LinkStateProtocol::databases_agree(int a, int b) const {
  const auto& da = db_[static_cast<std::size_t>(a)];
  const auto& dbv = db_[static_cast<std::size_t>(b)];
  for (std::size_t origin = 0; origin < da.size(); ++origin) {
    if (da[origin].known != dbv[origin].known) return false;
    if (!da[origin].known) continue;
    if (da[origin].seq != dbv[origin].seq ||
        da[origin].neighbors != dbv[origin].neighbors) {
      return false;
    }
  }
  return true;
}

std::vector<std::vector<MeshLink>> LinkStateProtocol::believed_topology(
    int node) const {
  const std::size_t n = topology_->nodes();
  const auto& db = db_[static_cast<std::size_t>(node)];
  std::vector<std::vector<MeshLink>> adj(n);
  for (std::size_t from = 0; from < n; ++from) {
    if (!db[from].known) continue;
    for (const int to : db[from].neighbors) {
      const auto t = static_cast<std::size_t>(to);
      // Symmetric-link rule: both endpoints must advertise each other.
      if (!db[t].known) continue;
      if (!std::binary_search(db[t].neighbors.begin(),
                              db[t].neighbors.end(),
                              static_cast<int>(from))) {
        continue;
      }
      const MeshLink* link = topology_->find_link(static_cast<int>(from), to);
      assert(link != nullptr);  // Advertised edges exist in the topology.
      adj[from].push_back(*link);
    }
  }
  return adj;
}

}  // namespace mmtag::mesh
