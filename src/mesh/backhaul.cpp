#include "src/mesh/backhaul.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/deploy/layout.hpp"
#include "src/mac/event_queue.hpp"
#include "src/net/packet.hpp"
#include "src/obs/stats.hpp"

namespace mmtag::mesh {

namespace {

/// Headroom reserved per pool slot: the mesh header plus slack for any
/// lower layer a future hop might stack under it.
constexpr std::size_t kPoolHeadroom = 32;

}  // namespace

std::uint64_t fingerprint(const BackhaulReport& report) {
  obs::Fnv1a hasher;
  hasher.mix_u64(deploy::fingerprint(report.fleet.stats));
  hasher.mix_u64(fault::fingerprint(report.fleet.fault));
  hasher.mix_u64(fingerprint(report.mesh));
  return hasher.digest();
}

sim::Table backhaul_table(const BackhaulReport& report) {
  const MeshStats& m = report.mesh;
  sim::Table table({"readers", "gw", "links", "frames", "delivered",
                    "delivery", "reroutes", "stretch", "p99_ms", "util_max",
                    "rounds"});
  table.add_row({std::to_string(report.readers),
                 std::to_string(report.gateways),
                 std::to_string(report.mesh_links),
                 std::to_string(m.offered + m.dropped_pool),
                 std::to_string(m.delivered),
                 sim::Table::fmt(m.delivery_ratio(), 4),
                 std::to_string(m.reroutes),
                 sim::Table::fmt(m.stretch_mean, 3),
                 sim::Table::fmt(m.latency_p99_s * 1e3, 3),
                 sim::Table::fmt(m.link_util_max, 4),
                 std::to_string(m.convergence_rounds)});
  return table;
}

BackhaulSimulator::BackhaulSimulator(BackhaulConfig config)
    : config_(std::move(config)) {
  assert(config_.payload_bytes >= 8);
  assert(config_.pool_packets > 0);
  assert(config_.max_frames_per_cell_epoch > 0);
}

BackhaulReport BackhaulSimulator::run() {
  // The layout is deterministic in its config, so building it again here
  // yields exactly the reader poses the fleet will use.
  const deploy::FleetLayout layout =
      deploy::make_layout(config_.fleet.layout);
  const MeshTopology topology(layout.reader_poses, config_.topology);
  net::PacketPool pool(config_.pool_packets, config_.payload_bytes,
                       kPoolHeadroom);
  MeshNetwork network(&topology, config_.forwarding, &pool);

  const double epoch_s = config_.fleet.epoch_duration_s;
  const double frame_bits = static_cast<double>(config_.payload_bytes) * 8.0;

  deploy::FleetConfig fleet_config = config_.fleet;
  if (config_.mesh_aware_recovery) {
    fleet_config.backhaul_reachable =
        [&topology](int /*epoch*/, const std::vector<std::uint8_t>& live) {
          return topology.gateway_reachable(live);
        };
  } else {
    fleet_config.backhaul_reachable = nullptr;
  }
  fleet_config.epoch_observer =
      [&](int epoch, const std::vector<deploy::CellEpochResult>& cells,
          const std::vector<std::uint8_t>& live) {
        network.begin_epoch(live);
        mac::EventQueue queue;
        const double start_s = epoch * epoch_s;
        // Drain cells in cell order (deterministic), frames staggered
        // across the epoch so link FIFOs see a realistic arrival pattern.
        for (std::size_t c = 0; c < cells.size(); ++c) {
          if (!live.empty() && live[c] == 0) continue;  // Dark reader.
          double bits = 0.0;
          for (const deploy::TagService& service : cells[c].service) {
            bits += service.delivered_bits;
          }
          if (bits <= 0.0 && cells[c].tags_discovered == 0) continue;
          const int frames = std::clamp(
              static_cast<int>(std::ceil(bits / frame_bits)), 1,
              config_.max_frames_per_cell_epoch);
          const double spacing =
              epoch_s / static_cast<double>(frames + 1);
          for (int i = 0; i < frames; ++i) {
            network.send(queue, static_cast<int>(c), config_.payload_bytes,
                         start_s + static_cast<double>(i + 1) * spacing);
          }
        }
        queue.run();
        network.reconverge();
      };

  BackhaulReport report;
  report.fleet = deploy::FleetSimulator(fleet_config).run();
  report.horizon_s =
      static_cast<double>(config_.fleet.epochs) * epoch_s;
  report.mesh = network.finish(report.horizon_s);
  report.readers = static_cast<int>(topology.nodes());
  report.gateways = static_cast<int>(topology.gateways().size());
  report.mesh_links = static_cast<int>(topology.links().size());
  return report;
}

}  // namespace mmtag::mesh
