#include "src/core/tag.hpp"

#include <cmath>

#include "src/phys/units.hpp"

namespace mmtag::core {

double Pose::to_local(double world_bearing_rad) const {
  return phys::wrap_angle_rad(world_bearing_rad - orientation_rad);
}

MmTag::MmTag(VanAttaArray array, Pose pose, std::uint32_t id)
    : array_(std::move(array)), pose_(pose), id_(id) {
  set_data_bit(false);
}

MmTag MmTag::prototype_at(Pose pose, std::uint32_t id) {
  return MmTag(VanAttaArray::mmtag_prototype(), pose, id);
}

void MmTag::set_data_bit(bool bit) {
  bit_ = bit;
  array_.set_all_switches(bit ? em::SwitchState::kOn : em::SwitchState::kOff);
}

double MmTag::monostatic_gain_db(double world_bearing_rad) const {
  const double local = pose_.to_local(world_bearing_rad);
  return array_.monostatic_gain_db(local);
}

Complex MmTag::reflection_field(double world_in_rad,
                                double world_out_rad) const {
  return array_.reradiated_field(pose_.to_local(world_in_rad),
                                 pose_.to_local(world_out_rad));
}

double MmTag::modulation_depth_db(double world_bearing_rad) const {
  // Evaluate both switch states without disturbing the caller-visible bit.
  VanAttaArray probe = array_;
  probe.set_all_switches(em::SwitchState::kOff);
  const double local = pose_.to_local(world_bearing_rad);
  const double off_db = probe.monostatic_gain_db(local);
  probe.set_all_switches(em::SwitchState::kOn);
  const double on_db = probe.monostatic_gain_db(local);
  return off_db - on_db;
}

}  // namespace mmtag::core
