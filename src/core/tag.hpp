// The complete mmTag device: a posed Van Atta array plus the OOK data line.
//
// Paper Sec. 6: data bit '0' leaves all switches off (tag reflective, high
// amplitude at the reader), data bit '1' turns them on (tag absorptive, no
// reflection). The tag has no receiver, no transmitter and no knowledge of
// the reader's direction — everything directional is handled passively by
// the Van Atta array.
#pragma once

#include <cstdint>

#include "src/channel/geometry.hpp"
#include "src/core/van_atta.hpp"

namespace mmtag::core {

/// Position and boresight orientation of a device in the world frame.
struct Pose {
  channel::Vec2 position;
  double orientation_rad = 0.0;  ///< World-frame bearing of the boresight.

  /// Incoming world-frame bearing converted to this device's local frame.
  [[nodiscard]] double to_local(double world_bearing_rad) const;
};

class MmTag {
 public:
  MmTag(VanAttaArray array, Pose pose, std::uint32_t id = 0);

  /// A prototype tag at `pose`.
  [[nodiscard]] static MmTag prototype_at(Pose pose, std::uint32_t id = 0);

  /// Drive the common switch line with a data bit (paper Sec. 6):
  /// false/'0' -> switches off, reflective; true/'1' -> switches on,
  /// absorptive.
  void set_data_bit(bool bit);

  [[nodiscard]] bool data_bit() const { return bit_; }

  /// Monostatic reflection gain toward a reader seen at world-frame bearing
  /// `world_bearing_rad` from the tag [dB rel. isotropic scatterer],
  /// with the current data bit applied.
  [[nodiscard]] double monostatic_gain_db(double world_bearing_rad) const;

  /// Bistatic complex reflection: wave arriving from world bearing
  /// `world_in_rad`, observed toward world bearing `world_out_rad`.
  [[nodiscard]] Complex reflection_field(double world_in_rad,
                                         double world_out_rad) const;

  /// OOK modulation depth at the reader: gain difference between bit 0 and
  /// bit 1 states toward `world_bearing_rad` [dB].
  [[nodiscard]] double modulation_depth_db(double world_bearing_rad) const;

  [[nodiscard]] const Pose& pose() const { return pose_; }
  void set_pose(Pose pose) { pose_ = pose; }

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] const VanAttaArray& array() const { return array_; }
  [[nodiscard]] VanAttaArray& array() { return array_; }

 private:
  VanAttaArray array_;
  Pose pose_;
  std::uint32_t id_;
  bool bit_ = false;
};

}  // namespace mmtag::core
