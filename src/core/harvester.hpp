// Harvested-energy storage: the capacitor behind the batteryless claim.
//
// Experiment C4 shows indoor light sustains ~30 Mbps of *continuous*
// modulation — yet the paper claims Gbps. The two reconcile through duty
// cycling: a storage capacitor charges slowly from the harvester and
// discharges fast during a Gbps burst. This model computes burst length,
// recharge time, sustainable duty cycle and the resulting *effective*
// throughput, turning "batteryless at gigabit speeds" into checkable
// numbers.
#pragma once

#include "src/core/energy.hpp"

namespace mmtag::core {

class EnergyHarvester {
 public:
  struct Params {
    double capacitance_f = 100e-6;   ///< Storage cap.
    double max_voltage_v = 3.3;      ///< Harvester regulator ceiling.
    double min_voltage_v = 1.8;      ///< Switch-driver dropout floor.
    double harvest_power_w = 0.0;    ///< Average harvested power.
    double leakage_power_w = 1e-6;   ///< Cap + regulator leakage.
  };

  explicit EnergyHarvester(Params params);

  /// Prototype storage fed by `source` through the 60 x 45 mm collector.
  [[nodiscard]] static EnergyHarvester mmtag_with(HarvestSource source);

  /// Usable energy between the voltage rails [J]: C (Vmax^2 - Vmin^2) / 2.
  [[nodiscard]] double usable_energy_j() const;

  /// Time to charge from the floor to the ceiling with no load [s].
  /// Infinity when harvest does not exceed leakage.
  [[nodiscard]] double recharge_time_s() const;

  /// Longest burst a load of `load_power_w` can draw before the cap sags
  /// to the floor [s]. Infinity when the harvester covers the load.
  [[nodiscard]] double max_burst_s(double load_power_w) const;

  /// Sustainable duty cycle for bursts of `load_power_w`:
  /// burst / (burst + recharge), in (0, 1].
  [[nodiscard]] double duty_cycle(double load_power_w) const;

  /// Effective long-run throughput when modulating at `bit_rate_bps`
  /// during bursts, using `energy` for the per-bit cost [bit/s].
  [[nodiscard]] double effective_throughput_bps(
      double bit_rate_bps, const TagEnergyModel& energy) const;

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace mmtag::core
