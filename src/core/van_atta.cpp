#include "src/core/van_atta.hpp"

#include <cassert>
#include <cmath>

#include "src/phys/constants.hpp"
#include "src/phys/units.hpp"

namespace mmtag::core {

namespace {

antenna::UniformLinearArray make_geometry(const VanAttaArray::Config& config) {
  const double spacing = config.spacing_m > 0.0
                             ? config.spacing_m
                             : phys::wavelength_m(config.frequency_hz) / 2.0;
  return antenna::UniformLinearArray(config.elements, spacing,
                                     config.frequency_hz);
}

}  // namespace

VanAttaArray::VanAttaArray(Config config, em::PatchElement element_model,
                           std::vector<em::TransmissionLine> pair_lines)
    : config_(config),
      element_model_(element_model),
      pair_lines_(std::move(pair_lines)),
      geometry_(make_geometry(config)),
      element_pattern_(),
      switch_states_(static_cast<std::size_t>(config.elements),
                     em::SwitchState::kOff) {
  assert(config_.elements >= 1);
  assert(config_.frequency_hz > 0.0);
  [[maybe_unused]] const std::size_t pairs =
      (static_cast<std::size_t>(config_.elements) + 1) / 2;
  assert(pair_lines_.size() == pairs &&
         "one transmission line per mirrored element pair");
}

VanAttaArray VanAttaArray::mmtag_prototype() {
  return with_elements(phys::kMmTagPrototypeElements);
}

VanAttaArray VanAttaArray::with_elements(int elements) {
  Config config;
  config.elements = elements;
  config.frequency_hz = phys::kMmTagCarrierHz;
  // Equal-length interconnects, one guided wavelength each: the common
  // phase phi of paper Eq. (4). (Any equal length works; one lambda_g keeps
  // losses realistic for the 60 x 45 mm board.)
  const std::size_t pairs = (static_cast<std::size_t>(elements) + 1) / 2;
  em::TransmissionLine reference = em::TransmissionLine::mmtag_interconnect(0.0);
  const double length = reference.guided_wavelength_m(config.frequency_hz);
  std::vector<em::TransmissionLine> lines;
  lines.reserve(pairs);
  for (std::size_t p = 0; p < pairs; ++p) {
    lines.push_back(em::TransmissionLine::mmtag_interconnect(length));
  }
  return VanAttaArray(config, em::PatchElement::mmtag(), std::move(lines));
}

int VanAttaArray::pair_of(int n) const {
  assert(n >= 0 && n < config_.elements);
  return config_.elements - 1 - n;
}

void VanAttaArray::set_all_switches(em::SwitchState state) {
  for (em::SwitchState& s : switch_states_) s = state;
}

void VanAttaArray::set_switch(int n, em::SwitchState state) {
  assert(n >= 0 && n < config_.elements);
  switch_states_[static_cast<std::size_t>(n)] = state;
}

em::SwitchState VanAttaArray::switch_state(int n) const {
  assert(n >= 0 && n < config_.elements);
  return switch_states_[static_cast<std::size_t>(n)];
}

void VanAttaArray::set_mutual_coupling(antenna::CouplingMatrix coupling) {
  assert(coupling.order() == config_.elements);
  coupling_ = std::move(coupling);
}

Complex VanAttaArray::reradiated_field(double theta_in_rad,
                                       double theta_out_rad,
                                       double frequency_hz) const {
  // Vectorized signal flow:
  //   incident pickup -> [mutual coupling] -> switch/feed coupling ->
  //   mirrored line routing -> switch/feed coupling -> [mutual coupling]
  //   -> far-field projection toward theta_out.
  const double k0 = phys::wavenumber_rad_per_m(frequency_hz);
  const double psi_in = k0 * geometry_.spacing_m() * std::sin(theta_in_rad);
  const double psi_out = k0 * geometry_.spacing_m() * std::sin(theta_out_rad);
  const double a_in = element_pattern_.amplitude(theta_in_rad);
  const double a_out = element_pattern_.amplitude(theta_out_rad);
  const int n_elems = config_.elements;
  const std::size_t size = static_cast<std::size_t>(n_elems);

  // Incident pickup per element (paper Eq. 1): x_n = e^{-j psi_in n}.
  std::vector<Complex> v(size);
  for (int n = 0; n < n_elems; ++n) {
    v[static_cast<std::size_t>(n)] = std::polar(1.0, -psi_in * n);
  }
  if (coupling_) v = coupling_->apply(v);

  // Into the feeds (switch states gate each element)...
  for (int n = 0; n < n_elems; ++n) {
    v[static_cast<std::size_t>(n)] *= element_model_.feed_coupling(
        switch_states_[static_cast<std::size_t>(n)], frequency_hz);
  }

  // ... through the mirrored interconnects (paper Eq. 4:
  // y'_n = e^{j phi} x_{N-1-n}, with per-pair loss included) ...
  std::vector<Complex> y(size);
  for (int rx = 0; rx < n_elems; ++rx) {
    const int tx = pair_of(rx);
    const std::size_t pair_index =
        static_cast<std::size_t>(rx < tx ? rx : tx);
    const Complex line =
        pair_lines_[pair_index].matched_transfer(frequency_hz);
    y[static_cast<std::size_t>(tx)] =
        v[static_cast<std::size_t>(rx)] * line;
  }

  // ... out through the feeds again ...
  for (int n = 0; n < n_elems; ++n) {
    y[static_cast<std::size_t>(n)] *= element_model_.feed_coupling(
        switch_states_[static_cast<std::size_t>(n)], frequency_hz);
  }
  if (coupling_) y = coupling_->apply(y);

  // ... and projected onto the far field toward theta_out.
  Complex total(0.0, 0.0);
  for (int n = 0; n < n_elems; ++n) {
    total += y[static_cast<std::size_t>(n)] * std::polar(1.0, -psi_out * n);
  }
  return total * a_in * a_out;
}

Complex VanAttaArray::reradiated_field(double theta_in_rad,
                                       double theta_out_rad) const {
  return reradiated_field(theta_in_rad, theta_out_rad, config_.frequency_hz);
}

double VanAttaArray::monostatic_gain_db(double theta_rad) const {
  return bistatic_gain_db(theta_rad, theta_rad);
}

double VanAttaArray::bistatic_gain_db(double theta_in_rad,
                                      double theta_out_rad) const {
  const double power =
      std::norm(reradiated_field(theta_in_rad, theta_out_rad));
  constexpr double kFloorDb = -100.0;
  if (power <= 1e-10) return kFloorDb;
  return phys::ratio_to_db(power);
}

double VanAttaArray::peak_reradiation_direction_rad(
    double theta_in_rad) const {
  const auto power_at = [&](double theta_out) {
    return std::norm(reradiated_field(theta_in_rad, theta_out));
  };
  // Coarse sweep across the visible half-plane...
  const double lo_limit = -phys::kPi / 2.0;
  const double hi_limit = phys::kPi / 2.0;
  constexpr int kSteps = 720;
  double best_theta = 0.0;
  double best_power = -1.0;
  for (int i = 0; i <= kSteps; ++i) {
    const double theta = lo_limit + (hi_limit - lo_limit) * i / kSteps;
    const double p = power_at(theta);
    if (p > best_power) {
      best_power = p;
      best_theta = theta;
    }
  }
  // ... then golden-section refinement in the winning bracket.
  const double span = (hi_limit - lo_limit) / kSteps;
  double lo = best_theta - span;
  double hi = best_theta + span;
  constexpr double kGolden = 0.381966011250105;  // 2 - golden ratio.
  for (int i = 0; i < 60; ++i) {
    const double m1 = lo + kGolden * (hi - lo);
    const double m2 = hi - kGolden * (hi - lo);
    if (power_at(m1) > power_at(m2)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  return (lo + hi) / 2.0;
}

double VanAttaArray::retro_beamwidth_deg(double theta_in_rad) const {
  const double peak_dir = peak_reradiation_direction_rad(theta_in_rad);
  const double peak_power =
      std::norm(reradiated_field(theta_in_rad, peak_dir));
  assert(peak_power > 0.0);
  const double half_power = peak_power / 2.0;
  const auto power_at = [&](double theta_out) {
    return std::norm(reradiated_field(theta_in_rad, theta_out));
  };
  const auto find_crossing = [&](double direction) {
    const double step = phys::deg_to_rad(0.05);
    double theta = peak_dir;
    while (std::abs(theta - peak_dir) < phys::kPi / 2.0) {
      const double next = theta + direction * step;
      if (power_at(next) < half_power) {
        double lo = theta;
        double hi = next;
        for (int i = 0; i < 40; ++i) {
          const double mid = (lo + hi) / 2.0;
          if (power_at(mid) >= half_power) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
        return (lo + hi) / 2.0;
      }
      theta = next;
    }
    return theta;
  };
  const double left = find_crossing(-1.0);
  const double right = find_crossing(+1.0);
  return phys::rad_to_deg(right - left);
}

double VanAttaArray::link_side_gain_dbi() const {
  return element_pattern_.boresight_gain_dbi() +
         phys::ratio_to_db(static_cast<double>(config_.elements));
}

}  // namespace mmtag::core
