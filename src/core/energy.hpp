// Tag energy accounting and harvesting budgets (experiment C4).
//
// The paper's batteryless claim rests on the tag spending energy only on
// gate charge when the common data line toggles the shunt FETs. This module
// turns that into numbers: joules per bit as a function of data statistics,
// sustainable bit rate under common harvesting sources, and the contrast
// with active radios ("orders of magnitude", paper Sec. 1).
#pragma once

#include "src/em/switch_model.hpp"

namespace mmtag::core {

/// Ambient energy sources a batteryless tag can draw on, with typical
/// harvestable power densities from the energy-harvesting literature.
enum class HarvestSource {
  kIndoorLight,    ///< ~10 uW/cm^2 (office lighting, indoor PV).
  kOutdoorLight,   ///< ~10 mW/cm^2 (direct sun, small PV).
  kRfAmbient,      ///< ~0.1 uW/cm^2 (ambient RF rectenna).
  kThermal,        ///< ~60 uW/cm^2 (body-heat TEG).
  kVibration,      ///< ~4 uW/cm^2 (piezo on machinery).
};

/// Harvestable power density of `source` [W/m^2].
[[nodiscard]] double harvest_density_w_per_m2(HarvestSource source);

class TagEnergyModel {
 public:
  /// `rf_switch` supplies the gate-charge energy; `switch_count` is the
  /// number of FETs on the common data line (= element count).
  TagEnergyModel(const em::RfSwitch& rf_switch, int switch_count);

  /// The prototype: 6 CE3520K3 FETs on one data line.
  [[nodiscard]] static TagEnergyModel mmtag_prototype();

  /// Expected energy per data bit [J]. A bit edge occurs with probability
  /// `transition_probability` (0.5 for random data, 1.0 for Manchester
  /// coding which forces an edge per bit), and every edge recharges all
  /// gates.
  [[nodiscard]] double energy_per_bit_j(
      double transition_probability = 0.5) const;

  /// Average modulation power at `bit_rate_bps` [W].
  [[nodiscard]] double modulation_power_w(
      double bit_rate_bps, double transition_probability = 0.5) const;

  /// Highest bit rate sustainable from `harvested_power_w` [bit/s].
  [[nodiscard]] double max_bit_rate_bps(
      double harvested_power_w, double transition_probability = 0.5) const;

  /// Power harvested by a tag of `area_m2` from `source` [W]. The prototype
  /// board is 60 x 45 mm (paper Fig. 5) = 2.7e-3 m^2.
  [[nodiscard]] static double harvested_power_w(HarvestSource source,
                                                double area_m2 = 2.7e-3);

  [[nodiscard]] int switch_count() const { return switch_count_; }

 private:
  em::RfSwitch rf_switch_;
  int switch_count_;
};

}  // namespace mmtag::core
