#include "src/core/harvester.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace mmtag::core {

EnergyHarvester::EnergyHarvester(Params params) : params_(params) {
  assert(params_.capacitance_f > 0.0);
  assert(params_.max_voltage_v > params_.min_voltage_v);
  assert(params_.min_voltage_v > 0.0);
  assert(params_.harvest_power_w >= 0.0);
  assert(params_.leakage_power_w >= 0.0);
}

EnergyHarvester EnergyHarvester::mmtag_with(HarvestSource source) {
  Params params;
  params.harvest_power_w = TagEnergyModel::harvested_power_w(source);
  return EnergyHarvester(params);
}

double EnergyHarvester::usable_energy_j() const {
  const double vmax2 = params_.max_voltage_v * params_.max_voltage_v;
  const double vmin2 = params_.min_voltage_v * params_.min_voltage_v;
  return params_.capacitance_f * (vmax2 - vmin2) / 2.0;
}

double EnergyHarvester::recharge_time_s() const {
  const double net = params_.harvest_power_w - params_.leakage_power_w;
  if (net <= 0.0) return std::numeric_limits<double>::infinity();
  return usable_energy_j() / net;
}

double EnergyHarvester::max_burst_s(double load_power_w) const {
  assert(load_power_w >= 0.0);
  const double drain =
      load_power_w + params_.leakage_power_w - params_.harvest_power_w;
  if (drain <= 0.0) return std::numeric_limits<double>::infinity();
  return usable_energy_j() / drain;
}

double EnergyHarvester::duty_cycle(double load_power_w) const {
  const double burst = max_burst_s(load_power_w);
  if (std::isinf(burst)) return 1.0;  // Continuous operation.
  const double recharge = recharge_time_s();
  if (std::isinf(recharge)) return 0.0;  // Can never refill.
  return burst / (burst + recharge);
}

double EnergyHarvester::effective_throughput_bps(
    double bit_rate_bps, const TagEnergyModel& energy) const {
  assert(bit_rate_bps >= 0.0);
  const double load = energy.modulation_power_w(bit_rate_bps);
  return bit_rate_bps * duty_cycle(load);
}

}  // namespace mmtag::core
