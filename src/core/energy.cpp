#include "src/core/energy.hpp"

#include <cassert>

#include "src/phys/constants.hpp"

namespace mmtag::core {

double harvest_density_w_per_m2(HarvestSource source) {
  // 1 uW/cm^2 = 1e-2 W/m^2.
  switch (source) {
    case HarvestSource::kIndoorLight:
      return 10.0 * 1e-2;
    case HarvestSource::kOutdoorLight:
      return 10.0e3 * 1e-2;
    case HarvestSource::kRfAmbient:
      return 0.1 * 1e-2;
    case HarvestSource::kThermal:
      return 60.0 * 1e-2;
    case HarvestSource::kVibration:
      return 4.0 * 1e-2;
  }
  return 0.0;
}

TagEnergyModel::TagEnergyModel(const em::RfSwitch& rf_switch,
                               int switch_count)
    : rf_switch_(rf_switch), switch_count_(switch_count) {
  assert(switch_count_ >= 1);
}

TagEnergyModel TagEnergyModel::mmtag_prototype() {
  return TagEnergyModel(em::RfSwitch::ce3520k3(),
                        phys::kMmTagPrototypeElements);
}

double TagEnergyModel::energy_per_bit_j(double transition_probability) const {
  assert(transition_probability >= 0.0 && transition_probability <= 1.0);
  return transition_probability * switch_count_ *
         rf_switch_.energy_per_toggle_j();
}

double TagEnergyModel::modulation_power_w(
    double bit_rate_bps, double transition_probability) const {
  assert(bit_rate_bps >= 0.0);
  return energy_per_bit_j(transition_probability) * bit_rate_bps;
}

double TagEnergyModel::max_bit_rate_bps(double harvested_power_w,
                                        double transition_probability) const {
  assert(harvested_power_w >= 0.0);
  const double per_bit = energy_per_bit_j(transition_probability);
  assert(per_bit > 0.0);
  return harvested_power_w / per_bit;
}

double TagEnergyModel::harvested_power_w(HarvestSource source,
                                         double area_m2) {
  assert(area_m2 > 0.0);
  return harvest_density_w_per_m2(source) * area_m2;
}

}  // namespace mmtag::core
