// The Van Atta retrodirective array — the heart of mmTag (paper Sec. 5.2).
//
// Mirrored element pairs are joined by equal-phase transmission lines, so
// the signal received by element n re-radiates from element N-1-n. For an
// incident plane wave from theta the re-radiated aperture phases are
// exactly the transmit steering phases *toward* theta (paper Eq. 5 vs
// Eq. 3), hence the array reflects back to the direction of arrival for any
// incidence angle — passive beam alignment with zero active components.
//
// This class implements that math element-by-element: per-element switch
// states (the shunt FETs of Fig. 4), the measured coupling of the patch
// resonator, the interconnect lines' loss and common phase phi, and the
// element radiation pattern. Everything Fig. 3(b) draws is a term here.
#pragma once

#include <complex>
#include <optional>
#include <vector>

#include "src/antenna/mutual_coupling.hpp"
#include "src/antenna/pattern.hpp"
#include "src/antenna/ula.hpp"
#include "src/em/patch_element.hpp"
#include "src/em/transmission_line.hpp"

namespace mmtag::core {

using Complex = std::complex<double>;

class VanAttaArray {
 public:
  struct Config {
    int elements = 6;               ///< Prototype: 6 patches (paper Sec. 7).
    double frequency_hz = 24.0e9;   ///< Design carrier.
    /// Element spacing [m]; 0 selects the conventional half wavelength.
    double spacing_m = 0.0;
  };

  /// Build with explicit per-pair interconnect lines. `pair_lines` must hold
  /// ceil(elements / 2) entries; pair p joins elements p and N-1-p. With an
  /// odd element count the centre element is self-paired through the last
  /// line (standard Van Atta practice). Retrodirectivity only holds when all
  /// line phases are equal modulo 2*pi — tests deliberately violate this.
  VanAttaArray(Config config, em::PatchElement element_model,
               std::vector<em::TransmissionLine> pair_lines);

  /// The fabricated prototype: 6 elements at 24 GHz, half-wavelength
  /// spacing, equal-length (one guided wavelength) interconnects.
  [[nodiscard]] static VanAttaArray mmtag_prototype();

  /// Same as the prototype but with `elements` patches — the knob behind
  /// "the range and data-rate can be further increased by using more
  /// antenna elements" (paper Sec. 8).
  [[nodiscard]] static VanAttaArray with_elements(int elements);

  [[nodiscard]] int size() const { return config_.elements; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Mirrored partner of element `n`.
  [[nodiscard]] int pair_of(int n) const;

  /// Set every switch (the common data line of Fig. 4).
  void set_all_switches(em::SwitchState state);

  /// Set one element's switch (failure injection / per-element tests).
  void set_switch(int n, em::SwitchState state);

  [[nodiscard]] em::SwitchState switch_state(int n) const;

  /// Install an inter-element mutual-coupling matrix (applied once on
  /// reception and once on re-radiation). Must match the element count.
  /// Default: no coupling. Persymmetric matrices (any Toeplitz coupling)
  /// preserve retrodirectivity — see tests.
  void set_mutual_coupling(antenna::CouplingMatrix coupling);

  /// Remove the coupling model.
  void clear_mutual_coupling() { coupling_.reset(); }

  /// Complex re-radiated far-field amplitude for a unit plane wave incident
  /// from `theta_in`, observed at `theta_out`, at carrier `frequency_hz`
  /// (angles relative to the array boresight). Normalized so that a single
  /// ideal isotropic, lossless, perfectly-matched scatterer would give 1.
  [[nodiscard]] Complex reradiated_field(double theta_in_rad,
                                         double theta_out_rad,
                                         double frequency_hz) const;

  /// reradiated_field at the design carrier.
  [[nodiscard]] Complex reradiated_field(double theta_in_rad,
                                         double theta_out_rad) const;

  /// Monostatic (reader-sees-its-own-reflection) power gain at the design
  /// carrier [dB relative to an ideal isotropic scatterer].
  [[nodiscard]] double monostatic_gain_db(double theta_rad) const;

  /// Bistatic power gain [dB] for arbitrary in/out directions.
  [[nodiscard]] double bistatic_gain_db(double theta_in_rad,
                                        double theta_out_rad) const;

  /// Direction of the re-radiated beam's peak for a wave from `theta_in`
  /// [rad] — retrodirectivity means this equals theta_in (within the
  /// element pattern's visible region). Found by golden-section search
  /// refined from a coarse sweep.
  [[nodiscard]] double peak_reradiation_direction_rad(
      double theta_in_rad) const;

  /// Half-power width of the re-radiated beam for a wave from `theta_in`
  /// [deg] — "20 degree beam width" for the 6-element prototype.
  [[nodiscard]] double retro_beamwidth_deg(double theta_in_rad) const;

  /// Effective receive/transmit gain pair used by the scalar link budget:
  /// element boresight gain plus 10*log10(N) on each side [dBi].
  [[nodiscard]] double link_side_gain_dbi() const;

  [[nodiscard]] const em::PatchElement& element_model() const {
    return element_model_;
  }
  [[nodiscard]] const antenna::UniformLinearArray& geometry() const {
    return geometry_;
  }

 private:
  Config config_;
  em::PatchElement element_model_;
  std::vector<em::TransmissionLine> pair_lines_;
  antenna::UniformLinearArray geometry_;
  antenna::PatchPattern element_pattern_;
  std::vector<em::SwitchState> switch_states_;
  std::optional<antenna::CouplingMatrix> coupling_;
};

}  // namespace mmtag::core
