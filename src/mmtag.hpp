// Umbrella header: the whole mmtag-sim public API in one include.
//
// Fine for applications and examples; library code should include the
// specific headers it uses (faster builds, clearer dependencies).
#pragma once

// Physical substrate.
#include "src/phys/constants.hpp"
#include "src/phys/link_budget.hpp"
#include "src/phys/noise.hpp"
#include "src/phys/pathloss.hpp"
#include "src/phys/units.hpp"

// Circuit-level EM substrate.
#include "src/em/impedance.hpp"
#include "src/em/matching.hpp"
#include "src/em/patch_element.hpp"
#include "src/em/resonator.hpp"
#include "src/em/switch_model.hpp"
#include "src/em/transmission_line.hpp"

// Antennas and beams.
#include "src/antenna/codebook.hpp"
#include "src/antenna/mutual_coupling.hpp"
#include "src/antenna/pattern.hpp"
#include "src/antenna/phased_array.hpp"
#include "src/antenna/ula.hpp"

// Channel.
#include "src/channel/environment.hpp"
#include "src/channel/geometry.hpp"
#include "src/channel/mobility.hpp"
#include "src/channel/doppler.hpp"
#include "src/channel/multipath.hpp"
#include "src/channel/propagation.hpp"
#include "src/channel/raytrace.hpp"

// The paper's core: tag, array, energy.
#include "src/core/energy.hpp"
#include "src/core/harvester.hpp"
#include "src/core/tag.hpp"
#include "src/core/van_atta.hpp"

// PHY.
#include "src/phy/ber.hpp"
#include "src/phy/crc.hpp"
#include "src/phy/fm0.hpp"
#include "src/phy/fft.hpp"
#include "src/phy/frame.hpp"
#include "src/phy/line_code.hpp"
#include "src/phy/modulation.hpp"
#include "src/phy/ook.hpp"
#include "src/phy/pulse.hpp"
#include "src/phy/rate_adaptation.hpp"
#include "src/phy/rate_table.hpp"
#include "src/phy/scrambler.hpp"
#include "src/phy/sync.hpp"
#include "src/phy/timing.hpp"
#include "src/phy/waveform.hpp"

// Reader.
#include "src/reader/detector.hpp"
#include "src/reader/interference.hpp"
#include "src/reader/localization.hpp"
#include "src/reader/reader.hpp"
#include "src/reader/receive_chain.hpp"
#include "src/reader/scanner.hpp"
#include "src/reader/self_interference.hpp"
#include "src/reader/tracking.hpp"

// Baselines.
#include "src/baselines/active_radio.hpp"
#include "src/baselines/backscatter_system.hpp"
#include "src/baselines/fixed_beam_tag.hpp"
#include "src/baselines/specular_plate.hpp"

// MAC and networking.
#include "src/mac/aloha.hpp"
#include "src/mac/event_queue.hpp"
#include "src/mac/inventory.hpp"
#include "src/mac/mimo_reader.hpp"
#include "src/mac/polling.hpp"
#include "src/mac/tdma.hpp"
#include "src/net/arq.hpp"
#include "src/net/fragmentation.hpp"
#include "src/net/session.hpp"

// Reader-backhaul mesh.
#include "src/mesh/backhaul.hpp"
#include "src/mesh/forwarding.hpp"
#include "src/mesh/link_state.hpp"
#include "src/mesh/routing.hpp"
#include "src/mesh/topology.hpp"

// Simulation toolkit.
#include "src/sim/ascii_plot.hpp"
#include "src/sim/link_sim.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/scenario.hpp"
#include "src/sim/sweep.hpp"
#include "src/sim/table.hpp"
