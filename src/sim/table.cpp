#include "src/sim/table.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mmtag::sim {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string Table::fmt_rate(double bps) {
  if (bps <= 0.0) return "-";
  if (bps >= 1e9) return fmt(bps / 1e9, 2) + " Gbps";
  if (bps >= 1e6) return fmt(bps / 1e6, 2) + " Mbps";
  if (bps >= 1e3) return fmt(bps / 1e3, 2) + " kbps";
  return fmt(bps, 0) + " bps";
}

std::string Table::fmt_si(double value, int precision) {
  const struct {
    double scale;
    const char* suffix;
  } kUnits[] = {{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
                {1.0, ""},   {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},
                {1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"}};
  const double magnitude = std::abs(value);
  if (magnitude == 0.0) return fmt(0.0, precision);
  for (const auto& unit : kUnits) {
    if (magnitude >= unit.scale) {
      return fmt(value / unit.scale, precision) + unit.suffix;
    }
  }
  // Below the smallest suffix: scientific notation rather than a value
  // that rounds to zero at the default precision.
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*e", precision, value);
  return buffer;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << "  " << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        out << ' ';
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out << "  " << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(const std::string& title) const {
  std::printf("\n=== %s ===\n%s", title.c_str(), to_string().c_str());
}

}  // namespace mmtag::sim
