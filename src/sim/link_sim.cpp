#include "src/sim/link_sim.hpp"

#include <cassert>
#include <numeric>

#include "src/obs/gate.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/phy/frame.hpp"
#include "src/phy/waveform.hpp"

namespace mmtag::sim {

namespace {

obs::Counter& link_bits_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("sim.link.bits");
  return counter;
}
obs::Counter& link_frames_metric() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("sim.link.frames");
  return counter;
}

}  // namespace

MonteCarloLink::MonteCarloLink(Params params)
    : params_(params), chain_(params.impairments) {
  assert(params_.samples_per_symbol >= 1);
  assert(params_.block_bits >= 2);
}

std::size_t MonteCarloLink::effective_max_bits() const {
  const std::size_t cap =
      params_.max_bits > 0 ? params_.max_bits : 10 * params_.min_bits;
  // The cap can never cut a measurement below min_bits' first block.
  return cap < params_.block_bits ? params_.block_bits : cap;
}

BerMeasurement MonteCarloLink::measure_ber(double snr_db,
                                           std::mt19937_64& rng) const {
  const phy::OokModulator mod(params_.samples_per_symbol,
                              params_.modulation_depth_db);
  const phy::OokDemodulator demod(params_.samples_per_symbol);
  std::bernoulli_distribution coin(0.5);
  const std::size_t max_bits = effective_max_bits();

  BerMeasurement measurement;
  // Adaptive termination: run until BOTH min_bits and target_bit_errors
  // are satisfied (whichever happens later), bounded by max_bits. Noisy
  // points stop at min_bits; nearly-clean points keep sampling until the
  // error count is statistically meaningful or the cap is hit.
  while (measurement.bits_sent < max_bits &&
         (measurement.bits_sent < params_.min_bits ||
          measurement.bit_errors < params_.target_bit_errors)) {
    phy::BitVector bits(params_.block_bits);
    for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = coin(rng);

    phy::Waveform wave = mod.modulate(bits);
    // One impairment seed per block, drawn from the point's stream only
    // when impairments are on — bypass leaves the legacy stream intact.
    std::uint64_t block_seed = 0;
    if (chain_.enabled()) {
      block_seed = rng();
      chain_.apply_tx(wave, block_seed);
    }
    // snr_db is the per-SYMBOL average SNR (the convention of ber.hpp's
    // closed forms). The integrate-and-dump filter averages
    // samples_per_symbol noise samples, so the per-sample noise must be
    // that factor larger to land at the requested symbol SNR. Signal
    // power is measured after the TX-side stages (PA compression is a
    // real power loss, not extra noise).
    const double signal_power = phy::mean_power(wave);
    assert(signal_power > 0.0);
    const double per_sample_noise =
        phy::noise_power_for_snr(signal_power, snr_db) *
        params_.samples_per_symbol;
    phy::add_awgn(wave, per_sample_noise, rng);
    if (chain_.enabled()) {
      chain_.apply_rx(wave, block_seed);
    }

    const phy::BitVector decoded = demod.demodulate(wave);
    measurement.bit_errors += phy::hamming_distance(bits, decoded);
    measurement.bits_sent += bits.size();
  }
  return measurement;
}

BerMeasurement MonteCarloLink::measure_ber_point(double snr_db,
                                                 std::uint64_t seed) const {
  std::mt19937_64 rng = make_rng(seed);
  return measure_ber(snr_db, rng);
}

FerMeasurement MonteCarloLink::run_fer(double snr_db, int frames,
                                       std::size_t payload_bits,
                                       std::mt19937_64& rng) const {
  assert(frames >= 1);
  const reader::ReceiveChain chain(
      reader::ReceiveChain::Params{params_.samples_per_symbol, true});
  std::bernoulli_distribution coin(0.5);

  int failures = 0;
  for (int f = 0; f < frames; ++f) {
    phy::TagFrame frame;
    frame.tag_id = static_cast<std::uint32_t>(f + 1);
    frame.payload.resize(payload_bits);
    for (std::size_t i = 0; i < payload_bits; ++i) frame.payload[i] = coin(rng);

    phy::Waveform wave = chain.encode(frame, params_.modulation_depth_db);
    // Same per-block seeding discipline as measure_ber: one draw per
    // frame, only when impairments are on.
    std::uint64_t frame_seed = 0;
    if (chain_.enabled()) {
      frame_seed = rng();
      chain_.apply_tx(wave, frame_seed);
    }
    const double signal_power = phy::mean_power(wave);
    // Same per-symbol SNR convention as measure_ber.
    phy::add_awgn(wave,
                  phy::noise_power_for_snr(signal_power, snr_db) *
                      params_.samples_per_symbol,
                  rng);

    const reader::ReceiveResult result =
        chain_.enabled() ? chain.receive_impaired(wave, chain_, frame_seed)
                         : chain.receive(wave);
    if (!result.frame.has_value() || !(*result.frame == frame)) ++failures;
  }
  return FerMeasurement{frames, failures};
}

double MonteCarloLink::measure_fer(double snr_db, int frames,
                                   std::size_t payload_bits,
                                   std::mt19937_64& rng) const {
  return run_fer(snr_db, frames, payload_bits, rng).fer();
}

FerMeasurement MonteCarloLink::measure_fer_point(double snr_db, int frames,
                                                 std::size_t payload_bits,
                                                 std::uint64_t seed) const {
  std::mt19937_64 rng = make_rng(seed);
  return run_fer(snr_db, frames, payload_bits, rng);
}

BerSweepResult MonteCarloLink::measure_ber_sweep(
    std::span<const double> snr_db, std::uint64_t base_seed,
    ThreadPool& pool) const {
  MMTAG_OBS_SPAN("sim.link.ber_sweep");
  BerSweepResult result;
  result.points = parallel_monte_carlo(
      pool, snr_db.size(), base_seed,
      [&](std::mt19937_64& rng, std::size_t i) {
        return measure_ber(snr_db[i], rng);
      },
      &result.stats);
  result.stats.units = std::accumulate(
      result.points.begin(), result.points.end(), std::uint64_t{0},
      [](std::uint64_t acc, const BerMeasurement& m) {
        return acc + m.bits_sent;
      });
  if constexpr (obs::kObsEnabled) {
    link_bits_metric().add(result.stats.units);
  }
  return result;
}

BerSweepResult MonteCarloLink::measure_ber_sweep(
    std::span<const double> snr_db, std::uint64_t base_seed) const {
  ThreadPool pool;
  return measure_ber_sweep(snr_db, base_seed, pool);
}

FerSweepResult MonteCarloLink::measure_fer_sweep(
    std::span<const double> snr_db, int frames, std::size_t payload_bits,
    std::uint64_t base_seed, ThreadPool& pool) const {
  MMTAG_OBS_SPAN("sim.link.fer_sweep");
  FerSweepResult result;
  result.points = parallel_monte_carlo(
      pool, snr_db.size(), base_seed,
      [&](std::mt19937_64& rng, std::size_t i) {
        return run_fer(snr_db[i], frames, payload_bits, rng);
      },
      &result.stats);
  result.stats.units = static_cast<std::uint64_t>(frames) * snr_db.size();
  if constexpr (obs::kObsEnabled) {
    link_frames_metric().add(result.stats.units);
  }
  return result;
}

FerSweepResult MonteCarloLink::measure_fer_sweep(
    std::span<const double> snr_db, int frames, std::size_t payload_bits,
    std::uint64_t base_seed) const {
  ThreadPool pool;
  return measure_fer_sweep(snr_db, frames, payload_bits, base_seed, pool);
}

}  // namespace mmtag::sim
