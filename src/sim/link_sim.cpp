#include "src/sim/link_sim.hpp"

#include <cassert>

#include "src/phy/frame.hpp"
#include "src/phy/waveform.hpp"

namespace mmtag::sim {

MonteCarloLink::MonteCarloLink(Params params) : params_(params) {
  assert(params_.samples_per_symbol >= 1);
  assert(params_.block_bits >= 2);
}

BerMeasurement MonteCarloLink::measure_ber(double snr_db,
                                           std::mt19937_64& rng) const {
  const phy::OokModulator mod(params_.samples_per_symbol,
                              params_.modulation_depth_db);
  const phy::OokDemodulator demod(params_.samples_per_symbol);
  std::bernoulli_distribution coin(0.5);

  BerMeasurement measurement;
  while (measurement.bits_sent < params_.min_bits) {
    phy::BitVector bits(params_.block_bits);
    for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = coin(rng);

    phy::Waveform wave = mod.modulate(bits);
    // snr_db is the per-SYMBOL average SNR (the convention of ber.hpp's
    // closed forms). The integrate-and-dump filter averages
    // samples_per_symbol noise samples, so the per-sample noise must be
    // that factor larger to land at the requested symbol SNR.
    const double signal_power = phy::mean_power(wave);
    assert(signal_power > 0.0);
    const double per_sample_noise =
        phy::noise_power_for_snr(signal_power, snr_db) *
        params_.samples_per_symbol;
    phy::add_awgn(wave, per_sample_noise, rng);

    const phy::BitVector decoded = demod.demodulate(wave);
    measurement.bit_errors += phy::hamming_distance(bits, decoded);
    measurement.bits_sent += bits.size();
  }
  return measurement;
}

double MonteCarloLink::measure_fer(double snr_db, int frames,
                                   std::size_t payload_bits,
                                   std::mt19937_64& rng) const {
  assert(frames >= 1);
  const reader::ReceiveChain chain(
      reader::ReceiveChain::Params{params_.samples_per_symbol, true});
  std::bernoulli_distribution coin(0.5);

  int failures = 0;
  for (int f = 0; f < frames; ++f) {
    phy::TagFrame frame;
    frame.tag_id = static_cast<std::uint32_t>(f + 1);
    frame.payload.resize(payload_bits);
    for (std::size_t i = 0; i < payload_bits; ++i) frame.payload[i] = coin(rng);

    phy::Waveform wave = chain.encode(frame, params_.modulation_depth_db);
    const double signal_power = phy::mean_power(wave);
    // Same per-symbol SNR convention as measure_ber.
    phy::add_awgn(wave,
                  phy::noise_power_for_snr(signal_power, snr_db) *
                      params_.samples_per_symbol,
                  rng);

    const reader::ReceiveResult result = chain.receive(wave);
    if (!result.frame.has_value() || !(*result.frame == frame)) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(frames);
}

}  // namespace mmtag::sim
