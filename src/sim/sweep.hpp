// Parameter-sweep helpers.
#pragma once

#include <vector>

namespace mmtag::sim {

/// `count` evenly spaced values from `first` to `last` inclusive.
[[nodiscard]] std::vector<double> linspace(double first, double last,
                                           int count);

/// `count` logarithmically spaced values from `first` to `last` inclusive
/// (both must be positive).
[[nodiscard]] std::vector<double> logspace(double first, double last,
                                           int count);

}  // namespace mmtag::sim
