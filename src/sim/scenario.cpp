#include "src/sim/scenario.hpp"

#include <cassert>
#include <cmath>

#include "src/antenna/codebook.hpp"
#include "src/reader/detector.hpp"
#include "src/sim/rng.hpp"

namespace mmtag::sim {

LinkScenario::LinkScenario(reader::MmWaveReader reader, phy::RateTable rates,
                           Config config)
    : reader_(std::move(reader)),
      rates_(std::move(rates)),
      config_(config) {
  assert(config_.step_s > 0.0);
}

void LinkScenario::set_static_environment(channel::Environment environment) {
  static_env_ = std::move(environment);
}

void LinkScenario::set_tag_trajectory(
    std::shared_ptr<const channel::Mobility> path) {
  tag_path_ = std::move(path);
}

void LinkScenario::add_moving_blocker(
    std::shared_ptr<const channel::Mobility> path, double half_width_m) {
  assert(half_width_m > 0.0);
  blockers_.push_back(Blocker{std::move(path), half_width_m});
}

ScenarioResult LinkScenario::run(double duration_s, std::uint64_t seed) {
  assert(tag_path_ != nullptr && "set_tag_trajectory first");
  assert(duration_s > 0.0);
  auto rng = make_rng(seed);

  const auto codebook = antenna::uniform_codebook(
      config_.sector_min_rad, config_.sector_max_rad, config_.beamwidth_deg);
  reader::BeamTracker tracker(
      reader::BeamScanner(reader_, reader::PowerDetector::mmtag_default()),
      codebook, config_.tracking);
  phy::RateController controller(rates_, config_.rate_control);

  ScenarioResult result;
  double previous_heading = config_.fixed_orientation_rad;
  for (double t = 0.0; t <= duration_s + 1e-12; t += config_.step_s) {
    const channel::Vec2 pos = tag_path_->position(t);

    // Orientation policy.
    double orientation = config_.fixed_orientation_rad;
    switch (config_.orientation) {
      case TagOrientation::kFaceReader:
        orientation = channel::bearing_rad(pos, reader_.pose().position);
        break;
      case TagOrientation::kFixedWorld:
        orientation = config_.fixed_orientation_rad;
        break;
      case TagOrientation::kFollowVelocity: {
        const channel::Vec2 ahead =
            tag_path_->position(t + config_.step_s * 0.1);
        if (channel::distance(pos, ahead) > 1e-9) {
          previous_heading = channel::bearing_rad(pos, ahead);
        }
        orientation = previous_heading;
        break;
      }
    }
    const core::MmTag tag = core::MmTag::prototype_at(
        core::Pose{pos, orientation});

    // Rebuild the environment with this step's blocker positions.
    channel::Environment env = static_env_;
    for (const Blocker& blocker : blockers_) {
      const channel::Vec2 b = blocker.path->position(t);
      env.add_obstacle(channel::Obstacle{
          channel::Segment{{b.x, b.y - blocker.half_width_m},
                           {b.x, b.y + blocker.half_width_m}}});
    }

    // Track, evaluate, adapt.
    const reader::LinkReport link =
        tracker.step(t, tag, env, rates_, rng);
    const double controlled =
        controller.observe_dbm(link.received_power_dbm);

    TimelineRecord record;
    record.t_s = t;
    record.tag_position = pos;
    record.path_kind = link.path.kind;
    record.received_power_dbm = link.received_power_dbm;
    record.instantaneous_rate_bps = link.achievable_rate_bps;
    record.controlled_rate_bps = controlled;
    record.connected = link.achievable_rate_bps > 0.0;
    result.timeline.push_back(record);
  }

  // Summaries.
  std::size_t connected_steps = 0;
  double rate_sum = 0.0;
  for (const TimelineRecord& record : result.timeline) {
    if (record.connected) ++connected_steps;
    rate_sum += record.controlled_rate_bps;
    result.delivered_bits += record.controlled_rate_bps * config_.step_s;
  }
  const double steps = static_cast<double>(result.timeline.size());
  result.connectivity = connected_steps / steps;
  result.mean_rate_bps = rate_sum / steps;
  result.rate_switches = controller.switch_count();
  result.full_scans = tracker.full_scans_used();
  return result;
}

}  // namespace mmtag::sim
