// Parallel Monte-Carlo sweep engine.
//
// Every evaluation in this library — BER/FER curves, Fig. 6/7 sweeps, the
// bench grids — is an embarrassingly parallel map over a grid of points
// (SNR, distance, angle, rate). This module provides the one thread pool
// they all share and two idioms on top of it:
//
//   parallel_sweep(pool, n, fn)            — fn(i) -> Result, any grid
//   parallel_monte_carlo(pool, n, seed, fn) — fn(rng, i) -> Result, where
//       each task gets its OWN engine seeded with derive_seed(seed, i)
//
// The RNG discipline is the load-bearing part: a task never touches a
// shared std::mt19937_64&. Seeding each point from (base_seed, index)
// makes every sweep bit-identical regardless of thread count or scheduling
// order, so "run it on more cores" can never change a result. Shared-rng&
// single-point APIs remain for sequential callers but are deprecated for
// sweeps (see DESIGN.md Sec. 7).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/rng.hpp"
#include "src/sim/table.hpp"

namespace mmtag::sim {

/// Worker count used when a pool is built with `threads <= 0`: the
/// MMTAG_THREADS environment variable when set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (at least 1).
[[nodiscard]] int default_thread_count();

/// A fixed-size pool of std::thread workers executing index ranges.
///
/// There is deliberately no work stealing and no futures: sweep items are
/// claimed one index at a time from an atomic cursor, which balances load
/// across points of unequal cost (low-SNR points terminate early, clean
/// points run to max_bits) without any ordering dependence. The calling
/// thread participates, so ThreadPool(1) runs the body inline with zero
/// synchronisation overhead.
class ThreadPool {
 public:
  /// `threads <= 0` selects default_thread_count().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads applied to each parallel_for (workers + caller).
  [[nodiscard]] int size() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Run `body(i)` for every i in [0, count), blocking until all complete.
  /// `body` may only touch per-index state (each index is claimed by
  /// exactly one thread). Not reentrant.
  ///
  /// Exceptions thrown by `body` propagate: the first failure abandons the
  /// remaining unclaimed indices, every worker quiesces, and the exception
  /// is rethrown on the calling thread (when several claimed indices throw
  /// concurrently, the lowest-indexed failure wins). The pool remains
  /// usable afterwards; results for indices that never ran are whatever
  /// the caller preallocated.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  /// Claim indices from the shared cursor until the range is exhausted.
  /// Never lets an exception escape (failures are parked in error_).
  void drain_items();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::uint64_t generation_ = 0;
  int running_workers_ = 0;
  bool stop_ = false;
  /// First task failure of the current parallel_for (by index).
  std::exception_ptr error_;
  std::size_t error_index_ = std::numeric_limits<std::size_t>::max();
  /// Batch sequence number; batch wall-time is sampled 1-in-8 on it so
  /// the clock reads stay off the empty-batch dispatch floor.
  std::uint64_t obs_batch_tick_ = 0;
};

/// Timing/throughput counters for one sweep, printed by the benches so
/// parallel speedups stay observable.
struct SweepStats {
  std::size_t points = 0;
  int threads = 1;
  double wall_s = 0.0;
  /// Optional work units behind the sweep (bits simulated, frames, ...).
  std::uint64_t units = 0;

  [[nodiscard]] double points_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(points) / wall_s : 0.0;
  }
  [[nodiscard]] double units_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(units) / wall_s : 0.0;
  }
};

/// One-row table of a sweep's counters (threads, points, wall time,
/// points/s, and units/s when `unit_name` is non-empty).
[[nodiscard]] Table sweep_stats_table(const SweepStats& stats,
                                      const std::string& unit_name = "");

/// Map `fn(index) -> Result` over [0, count) on the pool. Results land in
/// index order; Result must be default-constructible and movable. When
/// `stats` is non-null its points/threads/wall_s fields are filled (units
/// is left to the caller — only it knows the work behind a point).
template <typename Fn>
auto parallel_sweep(ThreadPool& pool, std::size_t count, Fn&& fn,
                    SweepStats* stats = nullptr)
    -> std::vector<decltype(fn(std::size_t{}))> {
  using Result = decltype(fn(std::size_t{}));
  std::vector<Result> results(count);
  const auto start = std::chrono::steady_clock::now();
  pool.parallel_for(count,
                    [&](std::size_t i) { results[i] = fn(i); });
  if (stats != nullptr) {
    stats->points = count;
    stats->threads = pool.size();
    stats->wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return results;
}

/// Monte-Carlo variant: `fn(rng, index) -> Result` where `rng` is a fresh
/// engine seeded with derive_seed(base_seed, index). Results are
/// bit-identical for any thread count.
template <typename Fn>
auto parallel_monte_carlo(ThreadPool& pool, std::size_t count,
                          std::uint64_t base_seed, Fn&& fn,
                          SweepStats* stats = nullptr)
    -> std::vector<decltype(fn(std::declval<std::mt19937_64&>(),
                               std::size_t{}))> {
  return parallel_sweep(
      pool, count,
      [&](std::size_t i) {
        std::mt19937_64 rng = make_rng(derive_seed(base_seed, i));
        return fn(rng, i);
      },
      stats);
}

}  // namespace mmtag::sim
