// Scenario engine: a ready-made time-stepped experiment loop.
//
// Every mobility experiment in this repo (and any a downstream user would
// write) has the same skeleton: move the tag and the blockers, rebuild the
// environment, let the reader's tracker re-aim, adapt the rate, log a
// record. LinkScenario packages that loop — configure entities and
// policies, call run(), get a timeline plus summary statistics.
#pragma once

#include <memory>
#include <vector>

#include "src/channel/environment.hpp"
#include "src/channel/mobility.hpp"
#include "src/core/tag.hpp"
#include "src/phy/rate_adaptation.hpp"
#include "src/reader/tracking.hpp"

namespace mmtag::sim {

/// How the tag's boresight evolves along its trajectory.
enum class TagOrientation {
  kFaceReader,      ///< Always faces the reader (worn/badge-like).
  kFixedWorld,      ///< Keeps a fixed world orientation (mounted).
  kFollowVelocity,  ///< Faces the direction of motion (vehicle/headset).
};

/// One simulation step's observables.
struct TimelineRecord {
  double t_s = 0.0;
  channel::Vec2 tag_position;
  channel::PathKind path_kind = channel::PathKind::kLineOfSight;
  double received_power_dbm = -300.0;
  double instantaneous_rate_bps = 0.0;  ///< Rate table on this step's link.
  double controlled_rate_bps = 0.0;     ///< Rate in force (hysteresis).
  bool connected = false;
};

struct ScenarioResult {
  std::vector<TimelineRecord> timeline;
  double connectivity = 0.0;       ///< Fraction of steps with a link.
  double mean_rate_bps = 0.0;      ///< Average of the controlled rate.
  double delivered_bits = 0.0;     ///< Controlled rate integrated over time.
  int rate_switches = 0;           ///< Controller switch count.
  int full_scans = 0;              ///< Tracker re-acquisitions.
};

class LinkScenario {
 public:
  struct Config {
    double step_s = 0.1;
    double fixed_orientation_rad = 0.0;  ///< For kFixedWorld.
    TagOrientation orientation = TagOrientation::kFaceReader;
    phy::RateController::Params rate_control;
    reader::BeamTracker::Params tracking;
    /// Codebook the tracker re-acquires with.
    double sector_min_rad = -1.2;
    double sector_max_rad = 1.2;
    double beamwidth_deg = 17.0;
  };

  /// `reader` is the fixed observer; the tag follows `tag_trajectory`.
  LinkScenario(reader::MmWaveReader reader, phy::RateTable rates,
               Config config);

  /// Static surroundings (walls reflect, obstacles block).
  void set_static_environment(channel::Environment environment);

  /// The tag's path over time (required before run()).
  void set_tag_trajectory(std::shared_ptr<const channel::Mobility> path);

  /// A moving blocker: an opaque segment of `half_width_m` centred on the
  /// mobility's position, oriented across the room (vertical segment).
  void add_moving_blocker(std::shared_ptr<const channel::Mobility> path,
                          double half_width_m = 0.15);

  /// Run for `duration_s`, deterministic under `seed`.
  [[nodiscard]] ScenarioResult run(double duration_s, std::uint64_t seed);

 private:
  reader::MmWaveReader reader_;
  phy::RateTable rates_;
  Config config_;
  channel::Environment static_env_;
  std::shared_ptr<const channel::Mobility> tag_path_;
  struct Blocker {
    std::shared_ptr<const channel::Mobility> path;
    double half_width_m;
  };
  std::vector<Blocker> blockers_;
};

}  // namespace mmtag::sim
