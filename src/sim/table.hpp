// Result tables: aligned console output + CSV, shared by every bench.
//
// Benches print the same rows/series the paper's figures plot, so the
// EXPERIMENTS.md paper-vs-measured comparison can be filled straight from
// bench output.
#pragma once

#include <string>
#include <vector>

namespace mmtag::sim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row of preformatted cells; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Format helpers.
  [[nodiscard]] static std::string fmt(double value, int precision = 2);
  [[nodiscard]] static std::string fmt_rate(double bps);
  [[nodiscard]] static std::string fmt_si(double value, int precision = 2);

  /// Render with aligned columns.
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV.
  [[nodiscard]] std::string to_csv() const;

  /// Print to stdout with a title banner.
  void print(const std::string& title) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mmtag::sim
