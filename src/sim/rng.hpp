// Deterministic RNG construction.
//
// Every stochastic component in the library takes std::mt19937_64& so a
// single seed pins down an entire experiment. Benches and tests construct
// theirs here; per-component seeds are derived with splitmix-style mixing
// so two components never share a stream accidentally.
#pragma once

#include <cstdint>
#include <random>

namespace mmtag::sim {

/// A seeded engine.
[[nodiscard]] inline std::mt19937_64 make_rng(std::uint64_t seed) {
  return std::mt19937_64(seed);
}

/// Derive a stream-specific seed from a base seed and a stream index
/// (splitmix64 finalizer — avalanche mixes even adjacent indices).
[[nodiscard]] inline std::uint64_t derive_seed(std::uint64_t base,
                                               std::uint64_t stream) {
  std::uint64_t z = base + 0x9E3779B97F4A7C15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace mmtag::sim
