// Waveform-level Monte-Carlo link simulation (experiment E4).
//
// The paper converts measured power to rate through an analytic SNR
// threshold. This simulator closes the loop: it runs actual bits through
// the OOK modulator, a complex AWGN channel at a controlled SNR, and the
// blind demodulator, then counts errors — verifying that the analytic
// table and the sample-level system agree. A frame-level variant reports
// frame error rates through the full receive chain (Manchester + CRC).
//
// Sweeps (the hot path of every bench) run through the parallel engine:
// measure_ber_sweep / measure_fer_sweep shard the SNR grid across a
// ThreadPool with one deterministic RNG stream per point, so a sweep is
// bit-identical for any thread count. The shared-rng& single-point entry
// points remain for sequential callers; do not use them to build sweeps.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "src/impair/chain.hpp"
#include "src/phy/ook.hpp"
#include "src/reader/receive_chain.hpp"
#include "src/sim/parallel.hpp"

namespace mmtag::sim {

struct BerMeasurement {
  std::size_t bits_sent = 0;
  std::size_t bit_errors = 0;

  [[nodiscard]] double ber() const {
    return bits_sent == 0
               ? 0.0
               : static_cast<double>(bit_errors) /
                     static_cast<double>(bits_sent);
  }
};

struct FerMeasurement {
  int frames = 0;
  int failures = 0;

  [[nodiscard]] double fer() const {
    return frames == 0
               ? 0.0
               : static_cast<double>(failures) / static_cast<double>(frames);
  }
};

/// One BER point per grid entry plus the sweep's throughput counters
/// (units = bits simulated).
struct BerSweepResult {
  std::vector<BerMeasurement> points;
  SweepStats stats;
};

/// One FER point per grid entry plus counters (units = frames simulated).
struct FerSweepResult {
  std::vector<FerMeasurement> points;
  SweepStats stats;
};

class MonteCarloLink {
 public:
  struct Params {
    int samples_per_symbol = 8;
    double modulation_depth_db = 60.0;
    /// Minimum bits per measurement; actual count rounds up to whole
    /// blocks.
    std::size_t min_bits = 20'000;
    std::size_t block_bits = 1'000;
    /// Adaptive termination: a point keeps running past min_bits until it
    /// has seen this many bit errors (rare-error points get more trials),
    /// and stops early once both thresholds are met — whichever is later.
    std::size_t target_bit_errors = 100;
    /// Hard cap on bits per point; 0 selects 10 * min_bits.
    std::size_t max_bits = 0;
    /// Hardware-impairment stages (DESIGN.md Sec. 16). TX-side stages
    /// run before the AWGN channel, RX-side stages after it, each block
    /// / frame under its own derived seed. The default (all off) is the
    /// bypass mode: no RNG draws, bit-identical to the legacy chain.
    impair::ImpairmentConfig impairments{};
  };

  explicit MonteCarloLink(Params params);

  /// Measure OOK BER at average SNR `snr_db` (signal power averaged over
  /// equiprobable bits; noise in the symbol-rate bandwidth).
  /// Sequential entry point; sweeps must use measure_ber_sweep so each
  /// point gets its own RNG stream.
  [[nodiscard]] BerMeasurement measure_ber(double snr_db,
                                           std::mt19937_64& rng) const;

  /// Self-seeded single point: the unit of work behind the sweeps.
  [[nodiscard]] BerMeasurement measure_ber_point(double snr_db,
                                                 std::uint64_t seed) const;

  /// Frame error rate through the full receive chain at `snr_db`:
  /// `frames` frames of `payload_bits` random payload each.
  [[nodiscard]] double measure_fer(double snr_db, int frames,
                                   std::size_t payload_bits,
                                   std::mt19937_64& rng) const;

  /// Self-seeded single FER point.
  [[nodiscard]] FerMeasurement measure_fer_point(double snr_db, int frames,
                                                 std::size_t payload_bits,
                                                 std::uint64_t seed) const;

  /// Measure every SNR point of `snr_db` on `pool`. Point i uses RNG
  /// stream derive_seed(base_seed, i): results are bit-identical for any
  /// thread count, including 1.
  [[nodiscard]] BerSweepResult measure_ber_sweep(
      std::span<const double> snr_db, std::uint64_t base_seed,
      ThreadPool& pool) const;

  /// Convenience overload on a default-sized pool (MMTAG_THREADS or
  /// hardware concurrency).
  [[nodiscard]] BerSweepResult measure_ber_sweep(
      std::span<const double> snr_db, std::uint64_t base_seed) const;

  /// Frame-error-rate sweep with the same seeding discipline.
  [[nodiscard]] FerSweepResult measure_fer_sweep(
      std::span<const double> snr_db, int frames, std::size_t payload_bits,
      std::uint64_t base_seed, ThreadPool& pool) const;

  [[nodiscard]] FerSweepResult measure_fer_sweep(
      std::span<const double> snr_db, int frames, std::size_t payload_bits,
      std::uint64_t base_seed) const;

  [[nodiscard]] const Params& params() const { return params_; }

  /// The impairment pipeline built from Params::impairments.
  [[nodiscard]] const impair::ImpairmentChain& impairments() const {
    return chain_;
  }

  /// Effective per-point bit cap (resolves the max_bits = 0 default).
  [[nodiscard]] std::size_t effective_max_bits() const;

 private:
  /// Exact frame loop behind every FER entry point.
  [[nodiscard]] FerMeasurement run_fer(double snr_db, int frames,
                                       std::size_t payload_bits,
                                       std::mt19937_64& rng) const;

  Params params_;
  impair::ImpairmentChain chain_;
};

}  // namespace mmtag::sim
