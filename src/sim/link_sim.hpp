// Waveform-level Monte-Carlo link simulation (experiment E4).
//
// The paper converts measured power to rate through an analytic SNR
// threshold. This simulator closes the loop: it runs actual bits through
// the OOK modulator, a complex AWGN channel at a controlled SNR, and the
// blind demodulator, then counts errors — verifying that the analytic
// table and the sample-level system agree. A frame-level variant reports
// frame error rates through the full receive chain (Manchester + CRC).
#pragma once

#include <random>

#include "src/phy/ook.hpp"
#include "src/reader/receive_chain.hpp"

namespace mmtag::sim {

struct BerMeasurement {
  std::size_t bits_sent = 0;
  std::size_t bit_errors = 0;

  [[nodiscard]] double ber() const {
    return bits_sent == 0
               ? 0.0
               : static_cast<double>(bit_errors) /
                     static_cast<double>(bits_sent);
  }
};

class MonteCarloLink {
 public:
  struct Params {
    int samples_per_symbol = 8;
    double modulation_depth_db = 60.0;
    /// Minimum bits per measurement; actual count rounds up to whole
    /// blocks.
    std::size_t min_bits = 20'000;
    std::size_t block_bits = 1'000;
  };

  explicit MonteCarloLink(Params params);

  /// Measure OOK BER at average SNR `snr_db` (signal power averaged over
  /// equiprobable bits; noise in the symbol-rate bandwidth).
  [[nodiscard]] BerMeasurement measure_ber(double snr_db,
                                           std::mt19937_64& rng) const;

  /// Frame error rate through the full receive chain at `snr_db`:
  /// `frames` frames of `payload_bits` random payload each.
  [[nodiscard]] double measure_fer(double snr_db, int frames,
                                   std::size_t payload_bits,
                                   std::mt19937_64& rng) const;

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace mmtag::sim
