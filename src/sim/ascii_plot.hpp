// Terminal line plots for bench output.
//
// The paper's artifacts are *figures*; rendering the reproduced series as
// ASCII plots next to the numeric tables makes the shape comparison
// (slopes, crossings) immediate without leaving the terminal.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace mmtag::sim {

/// One plotted series: y-values over the shared x-axis, drawn with `glyph`.
struct Series {
  std::string label;
  std::vector<double> y;
  char glyph = '*';
};

struct PlotOptions {
  int width = 72;    ///< Plot area columns.
  int height = 20;   ///< Plot area rows.
  std::string x_label;
  std::string y_label;
};

/// Render `series` against shared `x` values (all series must match x's
/// length). Y-axis spans the min/max over every series; x is mapped
/// linearly. Returns a multi-line string including axis annotations and a
/// legend.
[[nodiscard]] std::string ascii_plot(std::span<const double> x,
                                     const std::vector<Series>& series,
                                     const PlotOptions& options = {});

}  // namespace mmtag::sim
